// Reproduces Sec 8.2 Mod 2: "Spread wavefronts from both ends of the
// connection simultaneously... If the marking starts from the free end, the
// blockage will be detected only after marking a very large number of
// points."
//
// We wall in one end of a long connection on an otherwise open board and
// measure the work to *detect* the blockage with one wavefront from the
// free end vs two wavefronts.
//
// Usage: bench_bidir [board_vias]   (default 80)
#include <chrono>
#include <cstdlib>
#include <iostream>

#include "route/lee.hpp"

using namespace grr;

int main(int argc, char** argv) {
  Coord n = argc > 1 ? std::atoi(argv[1]) : 80;
  std::cout << "Sec 8.2 Mod 2: bidirectional wavefronts on a blocked "
               "connection ("
            << n << "x" << n << " vias)\n\n";

  GridSpec spec(n, n);
  LayerStack stack(spec, 4);
  Point a{2, n / 2};
  Point b{n - 3, n / 2};
  stack.drill_via(a, kPinConn);
  stack.drill_via(b, kPinConn);
  // Wall b in on every layer (a tight ring of obstacle metal).
  Point bg = spec.grid_of_via(b);
  for (int li = 0; li < stack.num_layers(); ++li) {
    const Layer& layer = stack.layer(static_cast<LayerId>(li));
    Coord c = layer.across_of(bg), v = layer.along_of(bg);
    for (Coord dc : {Coord{-1}, Coord{1}}) {
      if (!stack.occupied(static_cast<LayerId>(li),
                          layer.point_of(c + dc, v))) {
        stack.insert_span({static_cast<LayerId>(li), c + dc, {v, v}},
                          kObstacleConn);
      }
    }
    for (Coord dv : {Coord{-1}, Coord{1}}) {
      if (!stack.occupied(static_cast<LayerId>(li),
                          layer.point_of(c, v + dv))) {
        stack.insert_span({static_cast<LayerId>(li), c, {v + dv, v + dv}},
                          kObstacleConn);
      }
    }
  }

  Connection conn;
  conn.id = 0;
  conn.a = a;  // marking starts from the free end, the worst case
  conn.b = b;

  LeeSearch lee(stack);
  for (bool bidir : {false, true}) {
    RouterConfig cfg;
    cfg.bidirectional = bidir;
    cfg.max_lee_expansions = 1000000;
    auto t0 = std::chrono::steady_clock::now();
    LeeResult res = lee.search(conn, cfg);
    auto t1 = std::chrono::steady_clock::now();
    std::cout << (bidir ? "  dual wavefronts  " : "  single wavefront ")
              << ": blocked=" << (!res.found) << ", expansions "
              << res.expansions << ", marks " << res.marks << ", rip point ("
              << res.rip_center.x << "," << res.rip_center.y << "), "
              << std::chrono::duration<double>(t1 - t0).count() << " s\n";
  }
  std::cout << "\nThe dual search stops as soon as the walled end's "
               "wavefront is exhausted and points rip-up at the congested "
               "end.\n";
  return 0;
}
