// Reproduces the channel data-structure anecdote of paper Sec 12: "In
// earlier versions, each channel was represented as a binary tree of
// segments... In reality, however, the access pattern to a channel is far
// from random. It is localized... The change from binary tree to doubly
// linked list with a moving head-of-list pointer halved the running time on
// most problems."
//
// The same localized probe/insert/erase workloads and full Trace searches
// run against both implementations.
#include <benchmark/benchmark.h>

#include <random>

#include "grid/grid_spec.hpp"
#include "layer/free_space.hpp"
#include "layer/layer.hpp"

namespace grr {
namespace {

constexpr Coord kExtentHi = 2999;
constexpr int kSegments = 400;

template <typename ChannelT>
void fill_channel(SegmentPool& pool, ChannelT& ch) {
  // Segments of length 4 every 7 positions: plenty of gaps.
  for (Coord lo = 0; lo + 4 <= kExtentHi; lo += 7) {
    Segment s;
    s.span = {lo, lo + 3};
    s.conn = 1;
    ch.insert(pool, s);
    if (ch.count() >= kSegments) break;
  }
}

/// Localized probes: a random walk with small steps, like the probes made
/// while routing one connection.
template <typename ChannelT>
void BM_LocalizedProbes(benchmark::State& state) {
  SegmentPool pool;
  ChannelT ch;
  fill_channel(pool, ch);
  std::mt19937 rng(1);
  std::uniform_int_distribution<Coord> step(-12, 12);
  Coord pos = kExtentHi / 2;
  for (auto _ : state) {
    pos = std::clamp<Coord>(pos + step(rng), 0, kExtentHi);
    benchmark::DoNotOptimize(ch.find_at(pool, pos));
  }
}
BENCHMARK_TEMPLATE(BM_LocalizedProbes, Channel);
BENCHMARK_TEMPLATE(BM_LocalizedProbes, TreeChannel);

/// Uniform random probes — the case binary trees are good at; the paper's
/// point is that this pattern does not occur in practice.
template <typename ChannelT>
void BM_RandomProbes(benchmark::State& state) {
  SegmentPool pool;
  ChannelT ch;
  fill_channel(pool, ch);
  std::mt19937 rng(1);
  std::uniform_int_distribution<Coord> pick(0, kExtentHi);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ch.find_at(pool, pick(rng)));
  }
}
BENCHMARK_TEMPLATE(BM_RandomProbes, Channel);
BENCHMARK_TEMPLATE(BM_RandomProbes, TreeChannel);

/// Localized insert/erase churn, as rip-up and re-route produce.
template <typename ChannelT>
void BM_LocalizedChurn(benchmark::State& state) {
  SegmentPool pool;
  ChannelT ch;
  fill_channel(pool, ch);
  std::mt19937 rng(1);
  std::uniform_int_distribution<Coord> step(-9, 9);
  Coord pos = kExtentHi / 2;
  for (auto _ : state) {
    pos = std::clamp<Coord>(pos + step(rng), 0, kExtentHi - 7);
    Interval gap = ch.free_gap_at(pool, {0, kExtentHi}, pos);
    if (gap.empty() || gap.length() < 2) {
      SegId hit = ch.find_at(pool, pos);
      if (hit != kNoSeg && pool[hit].conn == 2) ch.erase(pool, hit);
      continue;
    }
    Segment s;
    s.span = {gap.lo, std::min<Coord>(gap.lo + 1, gap.hi)};
    s.conn = 2;
    benchmark::DoNotOptimize(ch.insert(pool, s));
  }
}
BENCHMARK_TEMPLATE(BM_LocalizedChurn, Channel);
BENCHMARK_TEMPLATE(BM_LocalizedChurn, TreeChannel);

/// Gap enumeration across a window, the inner loop of the free-space DFS.
template <typename ChannelT>
void BM_GapEnumeration(benchmark::State& state) {
  SegmentPool pool;
  ChannelT ch;
  fill_channel(pool, ch);
  std::mt19937 rng(1);
  std::uniform_int_distribution<Coord> step(-15, 15);
  Coord pos = kExtentHi / 2;
  for (auto _ : state) {
    pos = std::clamp<Coord>(pos + step(rng), 60, kExtentHi - 60);
    Coord total = 0;
    ch.for_gaps_overlapping(pool, {0, kExtentHi}, {pos - 50, pos + 50},
                            [&](Interval g) { total += g.length(); });
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK_TEMPLATE(BM_GapEnumeration, Channel);
BENCHMARK_TEMPLATE(BM_GapEnumeration, TreeChannel);

/// Full Trace searches through identical clutter on both layer flavours.
template <typename LayerT>
void BM_TraceSearch(benchmark::State& state) {
  GridSpec spec(41, 31);
  SegmentPool pool;
  LayerT layer(0, Orientation::kHorizontal, spec.extent());
  std::mt19937 rng(7);
  auto rnd = [&](Coord lo, Coord hi) {
    return std::uniform_int_distribution<Coord>(lo, hi)(rng);
  };
  for (int i = 0; i < 300; ++i) {
    Coord ch = rnd(0, layer.across_extent().hi);
    Coord lo = rnd(0, layer.along_extent().hi - 5);
    Interval span{lo, lo + rnd(0, 4)};
    Interval gap =
        layer.channel(ch).free_gap_at(pool, layer.along_extent(), span.lo);
    if (!gap.contains(span)) continue;
    Segment s;
    s.span = span;
    s.channel = ch;
    s.conn = 1;
    layer.channel(ch).insert(pool, s);
  }
  Point a = spec.grid_of_via({2, 15});
  Point b = spec.grid_of_via({38, 15});
  // End points occupied, as Trace expects.
  for (Point p : {a, b}) {
    if (layer.channel(layer.across_of(p)).find_at(pool, layer.along_of(p)) ==
        kNoSeg) {
      Segment s;
      s.span = {layer.along_of(p), layer.along_of(p)};
      s.channel = layer.across_of(p);
      s.conn = kPinConn;
      layer.channel(layer.across_of(p)).insert(pool, s);
    }
  }
  for (auto _ : state) {
    auto spans = trace_path(layer, pool, a, b, spec.extent(),
                            kDefaultMaxFreeNodes, nullptr, spec.period());
    benchmark::DoNotOptimize(spans);
  }
}
BENCHMARK_TEMPLATE(BM_TraceSearch, Layer);
BENCHMARK_TEMPLATE(BM_TraceSearch, TreeLayer);

}  // namespace
}  // namespace grr

BENCHMARK_MAIN();
