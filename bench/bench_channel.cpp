// Channel data-structure ablation, extending the paper Sec 12 anecdote:
// "In earlier versions, each channel was represented as a binary tree of
// segments... In reality, however, the access pattern to a channel is far
// from random. It is localized... The change from binary tree to doubly
// linked list with a moving head-of-list pointer halved the running time on
// most problems."
//
// Three stores are compared — the paper's linked list with moving cursor,
// the cache-resident flat SoA + bitmap store, and the binary tree the paper
// abandoned — in two regimes:
//
//   * micro: the segments of a routed Table 1 board are mirrored into
//     standalone channels of each flavour, and identical localized probe /
//     gap / enumeration / churn traces replay against all three, timed per
//     operation;
//   * macro: the whole routing problem is solved twice, once with
//     channel_store=list and once with =flat (the LayerStack has no tree
//     mode — the paper already retired it), and the Lee-phase wall time is
//     compared. Discrete statistics must be identical between the two: the
//     store may change only the speed of a run, never its outcome.
//
// Usage: bench_channel [scale] [board-substring] [--json PATH]
//   scale            board scale factor (default 0.4)
//   board-substring  only boards whose name contains it (default: kdj11,nmc)
//   --json PATH      output file (default BENCH_channel.json)
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <random>
#include <string>
#include <vector>

#include "layer/layer.hpp"
#include "layer/tree_channel.hpp"
#include "route/audit.hpp"
#include "route/router.hpp"
#include "workload/suite.hpp"

using namespace grr;

namespace {

// ---------------------------------------------------------------------------
// Micro: replicas of a routed board's channels, one per store flavour.

/// All channels of all layers of one board, mirrored into ChannelT with its
/// own pool. Indexed [layer][across]. Built in place via mirror() — the
/// pool's mutex makes the replica immovable.
template <typename ChannelT>
struct Replica {
  SegmentPool pool;
  std::vector<std::vector<ChannelT>> layers;
  std::vector<Interval> along;  // per-layer along extent
};

template <typename ChannelT, typename ConfigureFn>
void mirror(const LayerStack& stack, ConfigureFn configure,
            Replica<ChannelT>& rep) {
  rep.layers.resize(stack.num_layers());
  rep.along.resize(stack.num_layers());
  for (int li = 0; li < stack.num_layers(); ++li) {
    const Layer& layer = stack.layer(static_cast<LayerId>(li));
    const Interval across = layer.across_extent();
    rep.along[li] = layer.along_extent();
    rep.layers[li].resize(static_cast<std::size_t>(across.hi) + 1);
    for (Coord c = across.lo; c <= across.hi; ++c) {
      ChannelT& out = rep.layers[li][c];
      configure(out, rep.along[li]);
      for (SegId s = layer.channel(c).head(); s != kNoSeg;
           s = stack.pool()[s].next) {
        Segment seg;
        seg.span = stack.pool()[s].span;
        seg.conn = stack.pool()[s].conn;
        seg.channel = c;
        seg.layer = static_cast<LayerId>(li);
        out.insert(rep.pool, seg);
      }
    }
  }
}

/// One probe position in a localized trace.
struct Op {
  std::uint8_t layer;
  Coord chan;
  Coord v;
};

/// A random walk over (channel, along) with occasional jumps — the access
/// pattern of routing one connection after another.
std::vector<Op> make_trace(const LayerStack& stack, std::size_t n,
                           unsigned seed) {
  std::mt19937 rng(seed);
  std::vector<Op> trace;
  trace.reserve(n);
  int li = 0;
  const Layer* layer = &stack.layer(0);
  Coord chan = layer->across_extent().hi / 2;
  Coord v = layer->along_extent().hi / 2;
  std::uniform_int_distribution<int> pct(0, 99);
  std::uniform_int_distribution<Coord> cstep(-2, 2);
  std::uniform_int_distribution<Coord> vstep(-12, 12);
  for (std::size_t i = 0; i < n; ++i) {
    if (pct(rng) < 2) {  // jump: a new connection starts elsewhere
      li = static_cast<int>(rng() % stack.num_layers());
      layer = &stack.layer(static_cast<LayerId>(li));
      chan = static_cast<Coord>(rng() % (layer->across_extent().hi + 1));
      v = static_cast<Coord>(rng() % (layer->along_extent().hi + 1));
    } else {
      chan = std::clamp<Coord>(chan + cstep(rng), 0,
                               layer->across_extent().hi);
      v = std::clamp<Coord>(v + vstep(rng), 0, layer->along_extent().hi);
    }
    trace.push_back({static_cast<std::uint8_t>(li), chan, v});
  }
  return trace;
}

/// Uniform random probes — the case binary trees are good at; the paper's
/// point is that this pattern does not occur in practice.
std::vector<Op> make_random_trace(const LayerStack& stack, std::size_t n,
                                  unsigned seed) {
  std::mt19937 rng(seed);
  std::vector<Op> trace;
  trace.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    int li = static_cast<int>(rng() % stack.num_layers());
    const Layer& layer = stack.layer(static_cast<LayerId>(li));
    trace.push_back(
        {static_cast<std::uint8_t>(li),
         static_cast<Coord>(rng() % (layer.across_extent().hi + 1)),
         static_cast<Coord>(rng() % (layer.along_extent().hi + 1))});
  }
  return trace;
}

struct MicroResult {
  double ns_per_op = 0;
  std::uint64_t checksum = 0;  // anti-DCE + cross-store agreement check
};

template <typename Body>
MicroResult timed(std::size_t ops, Body body) {
  MicroResult r;
  auto t0 = std::chrono::steady_clock::now();
  r.checksum = body();
  auto t1 = std::chrono::steady_clock::now();
  r.ns_per_op =
      std::chrono::duration<double, std::nano>(t1 - t0).count() / ops;
  return r;
}

template <typename ChannelT>
MicroResult micro_seek(Replica<ChannelT>& rep, const std::vector<Op>& trace) {
  return timed(trace.size(), [&] {
    std::uint64_t sum = 0;
    for (const Op& op : trace) {
      SegId s = rep.layers[op.layer][op.chan].find_at(rep.pool, op.v);
      sum += (s != kNoSeg) ? rep.pool[s].conn : 0;
    }
    return sum;
  });
}

template <typename ChannelT>
MicroResult micro_gap(Replica<ChannelT>& rep, const std::vector<Op>& trace) {
  return timed(trace.size(), [&] {
    std::uint64_t sum = 0;
    for (const Op& op : trace) {
      Interval g = rep.layers[op.layer][op.chan].free_gap_at(
          rep.pool, rep.along[op.layer], op.v);
      sum += static_cast<std::uint64_t>(g.empty() ? 0 : g.length());
    }
    return sum;
  });
}

template <typename ChannelT>
MicroResult micro_enum(Replica<ChannelT>& rep, const std::vector<Op>& trace) {
  return timed(trace.size(), [&] {
    std::uint64_t sum = 0;
    for (const Op& op : trace) {
      const Interval along = rep.along[op.layer];
      Interval win{std::max<Coord>(along.lo, op.v - 50),
                   std::min<Coord>(along.hi, op.v + 50)};
      rep.layers[op.layer][op.chan].for_gaps_overlapping(
          rep.pool, along, win,
          [&](Interval g) { sum += static_cast<std::uint64_t>(g.length()); });
    }
    return sum;
  });
}

/// Localized insert/erase churn, as rip-up and re-route produce. The trace
/// is deterministic and the stores are equivalent, so every replica makes
/// the same decisions and ends in the same state.
template <typename ChannelT>
MicroResult micro_churn(Replica<ChannelT>& rep, const std::vector<Op>& trace) {
  return timed(trace.size(), [&] {
    std::uint64_t sum = 0;
    for (const Op& op : trace) {
      ChannelT& ch = rep.layers[op.layer][op.chan];
      Interval gap = ch.free_gap_at(rep.pool, rep.along[op.layer], op.v);
      if (gap.empty() || gap.length() < 2) {
        SegId hit = ch.find_at(rep.pool, op.v);
        if (hit != kNoSeg && rep.pool[hit].conn == kPinConn - 1) {
          ch.erase(rep.pool, hit);
          ++sum;
        }
        continue;
      }
      Segment s;
      s.span = {gap.lo, std::min<Coord>(gap.lo + 1, gap.hi)};
      s.conn = kPinConn - 1;  // a conn id real content never uses
      s.channel = op.chan;
      s.layer = static_cast<LayerId>(op.layer);
      ch.insert(rep.pool, s);
      sum += 2;
    }
    return sum;
  });
}

// ---------------------------------------------------------------------------
// Macro: full route runs, list vs flat.

struct MacroResult {
  double sec_total = 0;
  double sec_lee = 0;
  long searches = 0;
  long expansions = 0;
  long gap_nodes = 0;
  int routed = 0;
  int total = 0;
  long rip_ups = 0;
  long vias_added = 0;
  bool audit_ok = false;
};

MacroResult macro_run(BoardGenParams params, ChannelStore store) {
  params.channel_store = store;
  GeneratedBoard gb = generate_board(params);
  Router router(gb.board->stack(), RouterConfig{});

  auto t0 = std::chrono::steady_clock::now();
  router.route_all(gb.strung.connections);
  auto t1 = std::chrono::steady_clock::now();

  const RouterStats& st = router.stats();
  MacroResult r;
  r.sec_total = std::chrono::duration<double>(t1 - t0).count();
  r.sec_lee = st.sec_lee;
  r.searches = st.lee_searches;
  r.expansions = st.lee_expansions;
  r.gap_nodes = st.lee_gap_nodes;
  r.routed = st.routed;
  r.total = st.total;
  r.rip_ups = st.rip_ups;
  r.vias_added = st.vias_added;
  r.audit_ok =
      audit_all(gb.board->stack(), router.db(), gb.strung.connections).ok();
  return r;
}

bool same_outcome(const MacroResult& a, const MacroResult& b) {
  return a.routed == b.routed && a.searches == b.searches &&
         a.expansions == b.expansions && a.gap_nodes == b.gap_nodes &&
         a.rip_ups == b.rip_ups && a.vias_added == b.vias_added;
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 0.4;
  std::string filter;
  std::string json_path = "BENCH_channel.json";
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (positional == 0) {
      scale = std::atof(argv[i]);
      ++positional;
    } else if (positional == 1) {
      filter = argv[i];
      ++positional;
    } else {
      std::cerr << "unknown argument: " << argv[i] << "\n";
      return 2;
    }
  }
  constexpr std::size_t kProbeOps = 400000;
  constexpr std::size_t kChurnOps = 120000;

  std::cout << "Channel store ablation (scale " << scale << ")\n\n";
  std::ofstream json(json_path);
  json << "{\n  \"scale\": " << scale << ",\n  \"boards\": [\n";

  const char* kStores[3] = {"list", "flat", "tree"};
  bool first_board = true;
  for (const BoardGenParams& params : table1_suite(scale)) {
    const std::string name = params.name;
    if (filter.empty()) {
      // Default: the two boards the paper singles out as Lee-dominated.
      if (name.find("kdj11-2L") == std::string::npos &&
          name.find("nmc-4L") == std::string::npos) {
        continue;
      }
    } else if (name.find(filter) == std::string::npos) {
      continue;
    }

    // Route once (store choice does not change the metal) and mirror the
    // realized content into the three standalone flavours.
    GeneratedBoard gb = generate_board(params);
    {
      Router router(gb.board->stack(), RouterConfig{});
      router.route_all(gb.strung.connections);
    }
    const LayerStack& stack = gb.board->stack();

    auto mk_list = [&](Replica<Channel>& rep) {
      mirror<Channel>(
          stack,
          [](Channel& ch, Interval along) {
            ch.configure(along, ChannelStore::kList);
          },
          rep);
    };
    auto mk_flat = [&](Replica<Channel>& rep) {
      mirror<Channel>(
          stack,
          [](Channel& ch, Interval along) {
            ch.configure(along, ChannelStore::kFlat);
          },
          rep);
    };
    auto mk_tree = [&](Replica<TreeChannel>& rep) {
      mirror<TreeChannel>(stack, [](TreeChannel&, Interval) {}, rep);
    };

    struct Workload {
      const char* label;
      std::size_t ops;
    };
    const Workload workloads[5] = {{"seek", kProbeOps},
                                   {"free_gap", kProbeOps},
                                   {"gap_enum", kProbeOps},
                                   {"churn", kChurnOps},
                                   {"seek_random", kProbeOps}};

    std::cout << name << " micro (ns/op, " << kProbeOps
              << " localized ops):\n";
    std::cout << "  " << std::left << std::setw(10) << "workload"
              << std::right << std::setw(9) << "list" << std::setw(9)
              << "flat" << std::setw(9) << "tree" << std::setw(12)
              << "list/flat" << "\n";

    json << (first_board ? "" : ",\n") << "    {\"board\": \"" << name
         << "\", \"micro\": [\n";
    first_board = false;

    for (int w = 0; w < 5; ++w) {
      // Fresh replicas per workload so churn damage does not leak.
      Replica<Channel> list;
      Replica<Channel> flat;
      Replica<TreeChannel> tree;
      mk_list(list);
      mk_flat(flat);
      mk_tree(tree);
      const std::vector<Op> trace =
          w == 4 ? make_random_trace(stack, workloads[w].ops, 1234u + w)
                 : make_trace(stack, workloads[w].ops, 1234u + w);
      MicroResult r[3];
      switch (w) {
        case 0:
        case 4:
          r[0] = micro_seek(list, trace);
          r[1] = micro_seek(flat, trace);
          r[2] = micro_seek(tree, trace);
          break;
        case 1:
          r[0] = micro_gap(list, trace);
          r[1] = micro_gap(flat, trace);
          r[2] = micro_gap(tree, trace);
          break;
        case 2:
          r[0] = micro_enum(list, trace);
          r[1] = micro_enum(flat, trace);
          r[2] = micro_enum(tree, trace);
          break;
        case 3:
          r[0] = micro_churn(list, trace);
          r[1] = micro_churn(flat, trace);
          r[2] = micro_churn(tree, trace);
          break;
      }
      const bool agree =
          r[0].checksum == r[1].checksum && r[1].checksum == r[2].checksum;
      std::cout << "  " << std::left << std::setw(10) << workloads[w].label
                << std::right << std::fixed << std::setprecision(1)
                << std::setw(9) << r[0].ns_per_op << std::setw(9)
                << r[1].ns_per_op << std::setw(9) << r[2].ns_per_op
                << std::setw(11) << std::setprecision(2)
                << (r[1].ns_per_op > 0 ? r[0].ns_per_op / r[1].ns_per_op : 0)
                << "x" << (agree ? "" : "  STORE MISMATCH") << "\n";
      json << (w == 0 ? "" : ",\n") << "      {\"workload\": \""
           << workloads[w].label << "\", \"ops\": " << workloads[w].ops;
      for (int s = 0; s < 3; ++s) {
        json << ", \"ns_per_op_" << kStores[s] << "\": " << r[s].ns_per_op;
      }
      json << ", \"stores_agree\": " << (agree ? "true" : "false") << "}";
    }
    json << "\n    ], \"macro\": [\n";

    std::cout << name << " macro (full route):\n";
    std::cout << "  " << std::left << std::setw(10) << "store" << std::right
              << std::setw(10) << "sec_total" << std::setw(9) << "sec_lee"
              << std::setw(11) << "expansions" << std::setw(12)
              << "gap_nodes" << std::setw(9) << "routed" << "\n";
    MacroResult mr[2];
    for (int s = 0; s < 2; ++s) {
      const ChannelStore store =
          s == 0 ? ChannelStore::kList : ChannelStore::kFlat;
      // Best of three: route runs are seconds-scale, so the min is the
      // least-noisy estimate of the store's cost on a shared machine.
      mr[s] = macro_run(params, store);
      for (int rep = 1; rep < 3; ++rep) {
        MacroResult again = macro_run(params, store);
        if (!same_outcome(mr[s], again)) {
          std::cout << "  NONDETERMINISM between repeat runs\n";
        }
        if (again.sec_lee < mr[s].sec_lee) {
          again.audit_ok = again.audit_ok && mr[s].audit_ok;
          mr[s] = again;
        }
      }
      std::cout << "  " << std::left << std::setw(10) << kStores[s]
                << std::right << std::fixed << std::setprecision(3)
                << std::setw(10) << mr[s].sec_total << std::setw(9)
                << mr[s].sec_lee << std::setw(11) << mr[s].expansions
                << std::setw(12) << mr[s].gap_nodes << std::setw(6)
                << mr[s].routed << "/" << mr[s].total
                << (mr[s].audit_ok ? "" : "  AUDIT FAILED")
                << (s == 1 && !same_outcome(mr[0], mr[1])
                        ? "  STORE MISMATCH"
                        : "")
                << "\n";
      json << (s == 0 ? "" : ",\n") << "      {\"store\": \"" << kStores[s]
           << "\", \"sec_total\": " << mr[s].sec_total
           << ", \"sec_lee\": " << mr[s].sec_lee
           << ", \"lee_searches\": " << mr[s].searches
           << ", \"lee_expansions\": " << mr[s].expansions
           << ", \"lee_gap_nodes\": " << mr[s].gap_nodes
           << ", \"routed\": " << mr[s].routed
           << ", \"total\": " << mr[s].total
           << ", \"audit_ok\": " << (mr[s].audit_ok ? "true" : "false")
           << "}";
    }
    const double speedup =
        mr[1].sec_lee > 0 ? mr[0].sec_lee / mr[1].sec_lee : 0;
    std::cout << "  Lee-phase speedup (list/flat): " << std::setprecision(2)
              << speedup << "x\n\n";
    json << "\n    ], \"lee_speedup_list_over_flat\": " << speedup << "}";
  }
  json << "\n  ]\n}\n";
  std::cout << "Wrote " << json_path << "\n";
  return 0;
}
