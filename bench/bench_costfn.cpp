// Reproduces the cost-function comparison of paper Sec 8.2 Mod 3:
//   cost(n) = cost(p) + 1          — original Lee: minimum vias, slow;
//   cost(n) = distance(n, target)  — greedy: fast but via-happy;
//   cost(n) = distance * hops      — grr's compromise.
//
// Usage: bench_costfn [scale]   (default 0.8)
#include <chrono>
#include <cstdlib>
#include <iostream>

#include "route/router.hpp"
#include "workload/suite.hpp"

using namespace grr;

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 1.0;
  std::cout << "Sec 8.2 Mod 3 cost function comparison (scale " << scale
            << ")\n"
            << "Paper: dist*hops trades the minimum-via guarantee for a "
               "much shorter search.\n\n";
  std::cout << "  cost fn        routed/total   lee expansions   "
               "expansions/search   vias/conn   CPU s\n";

  struct Entry {
    const char* name;
    CostFn fn;
  };
  const Entry entries[] = {
      {"hops (Lee 61)", CostFn::kUnitHops},
      {"distance     ", CostFn::kDistance},
      {"dist*hops    ", CostFn::kDistTimesHops},
  };

  BoardGenParams params = table1_board("nmc-4L", scale);
  for (const Entry& e : entries) {
    GeneratedBoard gb = generate_board(params);
    RouterConfig cfg;
    cfg.cost_fn = e.fn;
    Router router(gb.board->stack(), cfg);
    auto t0 = std::chrono::steady_clock::now();
    router.route_all(gb.strung.connections);
    auto t1 = std::chrono::steady_clock::now();
    const RouterStats& st = router.stats();
    std::printf("  %s  %6d/%-6d   %14ld   %17.1f   %9.2f   %5.2f\n", e.name,
                st.routed, st.total, st.lee_expansions,
                st.lee_searches
                    ? static_cast<double>(st.lee_expansions) /
                          st.lee_searches
                    : 0.0,
                st.vias_per_conn(),
                std::chrono::duration<double>(t1 - t0).count());
  }
  return 0;
}
