// Post-route improvement pass (Sec 12 methodology as a feature): how much
// of the routing's via count and length is left on the table by the
// one-pass greedy order, and what a cleanup pass recovers.
//
// Usage: bench_improve [scale]   (default 1.0)
#include <chrono>
#include <cstdlib>
#include <iostream>

#include "route/improve.hpp"
#include "workload/suite.hpp"

using namespace grr;

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 1.0;
  std::cout << "Post-route improvement pass (scale " << scale << ")\n\n";
  std::cout << "  board       improved/examined   vias before->after   "
               "inches before->after   CPU s\n";

  for (const char* name : {"nmc-4L", "coproc-6L", "tna-6L"}) {
    GeneratedBoard gb = generate_board(table1_board(name, scale));
    Router router(gb.board->stack());
    router.route_all(gb.strung.connections);

    auto t0 = std::chrono::steady_clock::now();
    ImproveStats st = improve_routes(router, gb.strung.connections, 2);
    auto t1 = std::chrono::steady_clock::now();
    std::printf(
        "  %-10s  %8d/%-9d   %8ld -> %-8ld   %8.1f -> %-8.1f   %5.2f\n",
        name, st.improved, st.examined, st.vias_before, st.vias_after,
        st.mils_before / 1000.0, st.mils_after / 1000.0,
        std::chrono::duration<double>(t1 - t0).count());
  }
  return 0;
}
