// Reproduces the instability observation of paper Sec 12: "A small change
// to one of the algorithms can cause unpredictable global effects when
// repeated in thousands of connections."
//
// We perturb a fixed problem minimally — delete one single connection — and
// measure how much the global outcome moves. A stable process would change
// by about one connection's worth; the heuristics amplify single-connection
// perturbations into swings of rip-ups and Lee usage.
//
// Usage: bench_instability [perturbations]   (default 12)
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "route/router.hpp"
#include "workload/suite.hpp"

using namespace grr;

namespace {

struct Outcome {
  int routed = 0;
  long rip_ups = 0;
  long lee = 0;
  long vias = 0;
};

Outcome run(const BoardGenParams& params, const ConnectionList& conns) {
  GeneratedBoard gb = generate_board(params);
  Router router(gb.board->stack(), RouterConfig{});
  router.route_all(conns);
  return {router.stats().routed, router.stats().rip_ups,
          router.stats().lee_searches, router.stats().vias_added};
}

}  // namespace

int main(int argc, char** argv) {
  int perturbations = argc > 1 ? std::atoi(argv[1]) : 12;
  BoardGenParams params = table1_board("nmc-4L", 1.0);
  GeneratedBoard gb = generate_board(params);
  const ConnectionList& base_conns = gb.strung.connections;

  Outcome base = run(params, base_conns);
  std::cout << "Sec 12 instability: remove ONE connection of "
            << base_conns.size() << " and re-route\n\n";
  std::cout << "  baseline: rip-ups " << base.rip_ups << ", lee searches "
            << base.lee << ", vias " << base.vias << "\n\n";
  std::cout << "  removed conn   rip-ups   lee searches   vias\n";

  long min_rip = base.rip_ups, max_rip = base.rip_ups;
  for (int k = 0; k < perturbations; ++k) {
    std::size_t victim =
        (static_cast<std::size_t>(k) * 7919) % base_conns.size();
    ConnectionList conns;
    for (std::size_t i = 0; i < base_conns.size(); ++i) {
      if (i != victim) conns.push_back(base_conns[i]);
    }
    Outcome o = run(params, conns);
    std::printf("  %12zu   %7ld   %12ld   %4ld\n", victim, o.rip_ups,
                o.lee, o.vias);
    min_rip = std::min(min_rip, o.rip_ups);
    max_rip = std::max(max_rip, o.rip_ups);
  }
  std::cout << "\n  rip-up swing from one-connection perturbations: "
            << min_rip << " .. " << max_rip << " ("
            << (min_rip > 0 ? static_cast<double>(max_rip) / min_rip : 0)
            << "x)\n"
            << "  \"Nearly all heuristic methods seem attractive when "
               "proposed; almost none work in practice.\"\n";
  return 0;
}
