// Lee-search acceleration ablation: measures what each layer of the search
// stack buys — goal-oriented (A*) ordering and the journal-invalidated
// reachability cache — on the boards where Lee's algorithm dominates the
// runtime (kdj11-2L and nmc-4L in Table 1; "well over 90% of CPU time",
// Sec 12).
//
// For each selected board the whole routing problem is solved under the
// four on/off combinations; the table reports the Lee-phase wall time, the
// expansion and gap-node counts, and the derived throughput (expansions/sec
// and gap nodes visited/sec — the honest work rates: a cache hit replays
// its gap nodes instead of walking them, so gap_nodes/sec rising with the
// cache on is the win showing up). Geometry is also cross-checked: every
// configuration with the same expansion ORDER (i.e. same lee_astar) must
// route the identical set.
//
// Usage: bench_lee [scale] [board-substring] [--json PATH]
//   scale            board scale factor (default 0.4)
//   board-substring  only boards whose name contains it (default: kdj11,nmc)
//   --json PATH      output file (default BENCH_lee.json)
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>

#include "route/audit.hpp"
#include "route/router.hpp"
#include "workload/suite.hpp"

using namespace grr;

namespace {

struct RunResult {
  double sec_total = 0;
  double sec_lee = 0;
  long searches = 0;
  long expansions = 0;
  long gap_nodes = 0;
  long cache_hits = 0;
  long cache_misses = 0;
  long cache_evicted = 0;
  long cache_flushes = 0;
  int routed = 0;
  int total = 0;
  bool audit_ok = false;
};

RunResult run(const BoardGenParams& params, bool astar, bool cache) {
  GeneratedBoard gb = generate_board(params);
  RouterConfig cfg;
  cfg.lee_astar = astar;
  cfg.lee_cache = cache;
  Router router(gb.board->stack(), cfg);

  auto t0 = std::chrono::steady_clock::now();
  router.route_all(gb.strung.connections);
  auto t1 = std::chrono::steady_clock::now();

  const RouterStats& st = router.stats();
  RunResult r;
  r.sec_total = std::chrono::duration<double>(t1 - t0).count();
  r.sec_lee = st.sec_lee;
  r.searches = st.lee_searches;
  r.expansions = st.lee_expansions;
  r.gap_nodes = st.lee_gap_nodes;
  r.routed = st.routed;
  r.total = st.total;
  r.cache_hits = router.lee_cache_stats().hits;
  r.cache_misses = router.lee_cache_stats().misses;
  r.cache_evicted = router.lee_cache_stats().evicted;
  r.cache_flushes = router.lee_cache_stats().flushes;
  r.audit_ok =
      audit_all(gb.board->stack(), router.db(), gb.strung.connections).ok();
  return r;
}

double rate(long n, double sec) { return sec > 0 ? n / sec : 0.0; }

}  // namespace

int main(int argc, char** argv) {
  double scale = 0.4;
  std::string filter;
  std::string json_path = "BENCH_lee.json";
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (positional == 0) {
      scale = std::atof(argv[i]);
      ++positional;
    } else if (positional == 1) {
      filter = argv[i];
      ++positional;
    } else {
      std::cerr << "unknown argument: " << argv[i] << "\n";
      return 2;
    }
  }
  std::cout << "Lee search acceleration ablation (scale " << scale << ")\n\n";

  std::ofstream json(json_path);
  json << "{\n  \"scale\": " << scale << ",\n  \"boards\": [\n";

  bool first_board = true;
  for (const BoardGenParams& params : table1_suite(scale)) {
    const std::string name = params.name;
    if (filter.empty()) {
      // Default selection: the two boards the paper singles out as
      // Lee-dominated.
      if (name.find("kdj11-2L") == std::string::npos &&
          name.find("nmc-4L") == std::string::npos) {
        continue;
      }
    } else if (name.find(filter) == std::string::npos) {
      continue;
    }

    struct Config {
      const char* label;
      bool astar, cache;
    };
    const Config configs[4] = {
        {"dijkstra", false, false},
        {"dijkstra+cache", false, true},
        {"astar", true, false},
        {"astar+cache", true, true},
    };

    std::cout << name << ":\n";
    std::cout << "  " << std::left << std::setw(16) << "config"
              << std::right << std::setw(9) << "sec_lee" << std::setw(10)
              << "searches" << std::setw(11) << "expansions" << std::setw(12)
              << "gap_nodes" << std::setw(12) << "exp/sec" << std::setw(13)
              << "gaps/sec" << std::setw(9) << "routed" << "\n";

    json << (first_board ? "" : ",\n") << "    {\"board\": \"" << name
         << "\", \"runs\": [\n";
    first_board = false;

    RunResult base{};
    for (int i = 0; i < 4; ++i) {
      RunResult r = run(params, configs[i].astar, configs[i].cache);
      // The cache may never change the outcome: runs sharing the same
      // lee_astar setting must agree on every discrete count except
      // gap_nodes (deduped walks examine fewer gaps than full logged walks
      // while producing identical marks and geometry).
      if (configs[i].cache &&
          (r.routed != base.routed || r.searches != base.searches ||
           r.expansions != base.expansions)) {
        std::cout << "  CACHE MISMATCH vs " << configs[i - 1].label << "\n";
      }
      if (!configs[i].cache) base = r;
      std::cout << "  " << std::left << std::setw(16) << configs[i].label
                << std::right << std::setw(9) << std::fixed
                << std::setprecision(3) << r.sec_lee << std::setw(10)
                << r.searches << std::setw(11) << r.expansions
                << std::setw(12) << r.gap_nodes << std::setw(12)
                << std::setprecision(0) << rate(r.expansions, r.sec_lee)
                << std::setw(13) << rate(r.gap_nodes, r.sec_lee)
                << std::setw(6) << r.routed << "/" << r.total
                << (r.audit_ok ? "" : "  AUDIT FAILED") << "\n";
      if (configs[i].cache) {
        std::cout << "    cache: " << r.cache_hits << " hits / "
                  << r.cache_misses << " misses, " << r.cache_evicted
                  << " evicted, " << r.cache_flushes << " flushes\n";
      }
      json << (i == 0 ? "" : ",\n") << "      {\"config\": \""
           << configs[i].label << "\", \"astar\": "
           << (configs[i].astar ? "true" : "false")
           << ", \"cache\": " << (configs[i].cache ? "true" : "false")
           << ", \"sec_total\": " << r.sec_total
           << ", \"sec_lee\": " << r.sec_lee
           << ", \"lee_searches\": " << r.searches
           << ", \"lee_expansions\": " << r.expansions
           << ", \"lee_gap_nodes\": " << r.gap_nodes
           << ", \"expansions_per_sec\": " << rate(r.expansions, r.sec_lee)
           << ", \"gap_nodes_per_sec\": " << rate(r.gap_nodes, r.sec_lee)
           << ", \"routed\": " << r.routed << ", \"total\": " << r.total
           << ", \"audit_ok\": " << (r.audit_ok ? "true" : "false") << "}";
    }
    json << "\n    ]}";
    std::cout << "\n";
  }
  json << "\n  ]\n}\n";
  std::cout << "Wrote " << json_path << "\n";
  return 0;
}
