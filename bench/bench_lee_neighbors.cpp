// Reproduces Sec 8.2 Mod 1 (Fig 11): redefining a via's "neighbors" as the
// via sites directly connectable by a one-layer trace, instead of the
// adjacent grid points. The unit-step definition "leads to very slow
// searches, since many individual grid points must be scanned to advance a
// small distance across the board surface."
//
// The same connections are searched on the same partially-routed board by
// the classic unit-step Lee baseline and by grr's generalized Lee; we
// compare nodes touched and wall time.
//
// Usage: bench_lee_neighbors [scale]   (default 0.6)
#include <chrono>
#include <cstdlib>
#include <iostream>

#include "baseline/lee_grid_router.hpp"
#include "baseline/line_search_router.hpp"
#include "route/lee.hpp"
#include "route/router.hpp"
#include "workload/suite.hpp"

using namespace grr;

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 0.6;
  std::cout << "Sec 8.2 Mod 1: via-site neighbors vs unit-step neighbors "
               "(scale "
            << scale << ")\n\n";

  // Route most of a board, then probe a sample of connections on top of
  // the realistic clutter.
  BoardGenParams params = table1_board("nmc-6L", scale);
  GeneratedBoard gb = generate_board(params);
  ConnectionList conns = gb.strung.connections;
  const std::size_t probe_count = std::min<std::size_t>(conns.size() / 5, 200);
  ConnectionList to_route(conns.begin() + static_cast<long>(probe_count),
                          conns.end());
  ConnectionList probes(conns.begin(),
                        conns.begin() + static_cast<long>(probe_count));
  Router router(gb.board->stack(), RouterConfig{});
  router.route_all(to_route);

  LeeGridRouter baseline(gb.board->stack());
  LineSearchRouter lines(gb.board->stack());
  LeeSearch generalized(gb.board->stack());
  RouterConfig cfg;

  long base_nodes = 0, line_nodes = 0, gen_nodes = 0;
  int base_found = 0, line_found = 0, gen_found = 0;
  auto t0 = std::chrono::steady_clock::now();
  for (const Connection& c : probes) {
    if (c.a == c.b) continue;
    LeeGridResult r = baseline.search(c.a, c.b);
    base_nodes += static_cast<long>(r.expansions);
    base_found += r.found;
  }
  auto t1 = std::chrono::steady_clock::now();
  for (const Connection& c : probes) {
    if (c.a == c.b) continue;
    LineSearchResult r = lines.search(c.a, c.b);
    line_nodes += static_cast<long>(r.lines + r.sites_scanned);
    line_found += r.found;
  }
  auto t2 = std::chrono::steady_clock::now();
  for (const Connection& c : probes) {
    if (c.a == c.b) continue;
    LeeResult r = generalized.search(c, cfg);
    gen_nodes += static_cast<long>(r.expansions + r.marks);
    gen_found += r.found;
  }
  auto t3 = std::chrono::steady_clock::now();

  double base_sec = std::chrono::duration<double>(t1 - t0).count();
  double line_sec = std::chrono::duration<double>(t2 - t1).count();
  double gen_sec = std::chrono::duration<double>(t3 - t2).count();
  std::cout << "  probes: " << probes.size() << " connections on a board "
            << "with " << to_route.size() << " routed\n";
  std::cout << "  unit-step Lee (Lee 61)     : " << base_nodes
            << " cells touched, " << base_found << " found, " << base_sec
            << " s\n";
  std::cout << "  line search (Mikami 70)    : " << line_nodes
            << " lines+sites, " << line_found << " found, " << line_sec
            << " s\n";
  std::cout << "  via-site Lee (grr, Mod 1)  : " << gen_nodes
            << " nodes touched, " << gen_found << " found, " << gen_sec
            << " s\n";
  std::cout << "  node ratio vs unit-step: "
            << (gen_nodes ? static_cast<double>(base_nodes) / gen_nodes : 0)
            << "x, time ratio: " << (gen_sec > 0 ? base_sec / gen_sec : 0)
            << "x\n";
  return 0;
}
