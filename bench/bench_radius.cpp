// Reproduces the radius discussion of paper Sec 8.1 (Figs 9-11): "Typical
// values of radius are 1 or 2. Increasing radius allows more vias to be
// reached, but increases channel blockage for later connections. Large
// values of radius are counterproductive for this reason."
//
// Usage: bench_radius [scale]   (default 0.8)
#include <chrono>
#include <cstdlib>
#include <iostream>

#include "route/router.hpp"
#include "workload/suite.hpp"

using namespace grr;

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 1.0;
  std::cout << "Sec 8.1 radius sweep (scale " << scale << ")\n"
            << "Paper: radius 1 or 2 is best; larger radii block channels "
               "and are counterproductive.\n\n";
  std::cout << "  radius   routed/total   %optimal   %lee   rip-ups   "
               "vias/conn   CPU s\n";

  BoardGenParams params = table1_board("nmc-4L", scale);
  for (int radius = 0; radius <= 5; ++radius) {
    GeneratedBoard gb = generate_board(params);
    RouterConfig cfg;
    cfg.radius = radius;
    Router router(gb.board->stack(), cfg);
    auto t0 = std::chrono::steady_clock::now();
    router.route_all(gb.strung.connections);
    auto t1 = std::chrono::steady_clock::now();
    const RouterStats& st = router.stats();
    std::printf("  %6d   %6d/%-6d   %8.1f   %4.1f   %7ld   %9.2f   %5.2f\n",
                radius, st.routed, st.total, st.pct_optimal(), st.pct_lee(),
                st.rip_ups, st.vias_per_conn(),
                std::chrono::duration<double>(t1 - t0).count());
  }
  return 0;
}
