// Reproduces the effect of connection sorting (paper Sec 6): attempting the
// easiest connections first (straightness, then length) against reversed
// and shuffled orders on the same problem. "Attempting the connections in
// the correct order can make the difference between success and failure."
//
// Usage: bench_sorting [scale]   (default 0.8)
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <random>

#include "route/router.hpp"
#include "workload/suite.hpp"

using namespace grr;

namespace {

void run(const char* label, const BoardGenParams& params,
         const ConnectionList& order) {
  GeneratedBoard fresh = generate_board(params);
  RouterConfig cfg;
  cfg.sort_connections = false;  // route exactly in the order given
  Router router(fresh.board->stack(), cfg);
  auto t0 = std::chrono::steady_clock::now();
  router.route_all(order);
  auto t1 = std::chrono::steady_clock::now();
  std::cout << "  " << label << ": "
            << std::chrono::duration<double>(t1 - t0).count()
            << " s, routed " << router.stats().routed << "/"
            << router.stats().total << ", %lee " << router.stats().pct_lee()
            << ", rip-ups " << router.stats().rip_ups << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 1.0;
  std::cout << "Sec 6 connection sorting experiment (scale " << scale
            << ")\n"
            << "Paper: sort by min(dx,dy) then max(dx,dy) — shortest "
               "straight connections first, longest diagonals last.\n\n";

  BoardGenParams params = table1_board("nmc-4L", scale);
  GeneratedBoard gb = generate_board(params);

  ConnectionList sorted = gb.strung.connections;
  sort_connections(sorted);
  run("paper order (easiest first)", params, sorted);

  ConnectionList reversed = sorted;
  std::reverse(reversed.begin(), reversed.end());
  run("reversed (hardest first) ", params, reversed);

  ConnectionList shuffled = gb.strung.connections;
  std::shuffle(shuffled.begin(), shuffled.end(), std::mt19937(99));
  run("shuffled                 ", params, shuffled);

  // Near board capacity the order decides how much completes at all
  // ("the difference between success and failure").
  std::cout << "\nSame experiment at capacity (kdj11-2L):\n";
  BoardGenParams hard = table1_board("kdj11-2L", scale);
  GeneratedBoard gh = generate_board(hard);
  ConnectionList hs = gh.strung.connections;
  sort_connections(hs);
  run("paper order (easiest first)", hard, hs);
  std::reverse(hs.begin(), hs.end());
  run("reversed (hardest first) ", hard, hs);
  std::shuffle(hs.begin(), hs.end(), std::mt19937(99));
  run("shuffled                 ", hard, hs);
  return 0;
}
