// Reproduces the stringing experiment of paper Sec 3: the same routing
// problem strung greedily vs randomly. The paper reports a factor of 25 in
// CPU time (2 min vs 50 min); the shape to reproduce is a large slowdown
// (and more Lee searches / rip-ups) for the random stringing.
//
// Usage: bench_stringing [scale]   (default 0.8)
#include <chrono>
#include <cstdlib>
#include <iostream>

#include "route/audit.hpp"
#include "route/router.hpp"
#include "workload/suite.hpp"

using namespace grr;

namespace {

struct RunResult {
  double sec = 0;
  RouterStats stats;
  long manhattan = 0;
};

RunResult run(const BoardGenParams& params, StringingMethod method) {
  GeneratedBoard gb = generate_board(params);
  StringingResult strung = string_nets(*gb.board, method, params.seed);
  Router router(gb.board->stack(), RouterConfig{});
  auto t0 = std::chrono::steady_clock::now();
  router.route_all(strung.connections);
  auto t1 = std::chrono::steady_clock::now();
  RunResult r;
  r.sec = std::chrono::duration<double>(t1 - t0).count();
  r.stats = router.stats();
  r.manhattan = strung.total_manhattan;
  return r;
}

void report(const char* label, const RunResult& r) {
  std::cout << "  " << label << ": " << r.sec << " s, routed "
            << r.stats.routed << "/" << r.stats.total << ", %lee "
            << r.stats.pct_lee() << ", rip-ups " << r.stats.rip_ups
            << ", total Manhattan " << r.manhattan << " via units\n";
}

}  // namespace

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 1.0;
  std::cout << "Sec 3 stringing experiment (scale " << scale << ")\n"
            << "Paper: greedy stringing 2 CPU min, random stringing 50 CPU "
               "min (25x) on the same problem.\n\n";

  BoardGenParams params = table1_board("nmc-4L", scale);
  RunResult greedy = run(params, StringingMethod::kGreedy);
  RunResult random = run(params, StringingMethod::kRandom);
  report("greedy stringing", greedy);
  report("random stringing", random);
  std::cout << "\n  slowdown from random stringing: "
            << (greedy.sec > 0 ? random.sec / greedy.sec : 0) << "x (length "
            << (greedy.manhattan > 0
                    ? static_cast<double>(random.manhattan) / greedy.manhattan
                    : 0)
            << "x)\n";
  return 0;
}
