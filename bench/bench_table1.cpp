// Reproduces Table 1 (paper Sec 9): the nine-board suite in decreasing
// order of difficulty. The shape to look for, per the paper:
//   * kdj11 on 2 layers fails (%chan far above 50); the same problem on 4
//     layers routes easily — "routing boards of even medium density on two
//     routing layers is difficult";
//   * denser boards (higher %chan) push more connections to Lee's algorithm;
//   * rip-ups are rare except near failure;
//   * vias per connection stays below 1.
//
// Usage: bench_table1 [scale] [threads]
//   scale   board scale factor (default 1.0; e.g. 0.5 for a quick run)
//   threads worker count for the batch router (default 1 = serial engine)
//
// Besides the console table, writes BENCH_table1.json with one record per
// board (wall seconds, completion %, vias, threads) for machine comparison
// of serial vs parallel runs.
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <thread>

#include "report/table.hpp"
#include "route/audit.hpp"
#include "route/batch_router.hpp"
#include "workload/suite.hpp"

using namespace grr;

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 1.0;
  int threads = argc > 2 ? std::atoi(argv[2]) : 1;
  std::cout << "Table 1 reproduction (scale " << scale << ", threads "
            << threads << ")\n\n";

  std::ofstream json("BENCH_table1.json");
  json << "{\n  \"scale\": " << scale << ",\n  \"threads\": " << threads
       << ",\n  \"hardware_concurrency\": "
       << std::thread::hardware_concurrency() << ",\n  \"boards\": [\n";

  std::vector<Table1Row> rows;
  bool first = true;
  for (const BoardGenParams& params : table1_suite(scale)) {
    GeneratedBoard gb = generate_board(params);
    RouterConfig cfg;
    cfg.threads = threads;
    BatchRouter router(gb.board->stack(), cfg);

    auto t0 = std::chrono::steady_clock::now();
    router.route_all(gb.strung.connections);
    auto t1 = std::chrono::steady_clock::now();
    double sec = std::chrono::duration<double>(t1 - t0).count();

    CheckReport audit =
        audit_all(gb.board->stack(), router.db(), gb.strung.connections);
    if (!audit.ok()) {
      std::cout << "AUDIT FAILED on " << params.name << ": "
                << audit.first_error() << "\n";
    }
    rows.push_back(Table1Row::from_run(gb, router.stats(), sec));
    const RouterStats& st = router.stats();
    const BatchStats& bs = router.batch_stats();
    double completion =
        st.total > 0 ? 100.0 * st.routed / st.total : 0.0;
    json << (first ? "" : ",\n") << "    {\"board\": \"" << params.name
         << "\", \"sec\": " << sec << ", \"completion_pct\": " << completion
         << ", \"routed\": " << st.routed << ", \"total\": " << st.total
         << ", \"vias\": " << st.vias_added
         << ", \"vias_per_conn\": " << st.vias_per_conn()
         << ", \"rip_ups\": " << st.rip_ups
         << ", \"plans_installed\": " << bs.installed
         << ", \"plan_conflicts\": " << bs.conflicts
         // Per-phase breakdown (Sec 12's CPU profile, machine-readable):
         // on difficult boards sec_lee should dominate, and it is the
         // phase the search-acceleration work targets.
         << ",\n     \"sec_zero_via\": " << st.sec_zero_via
         << ", \"sec_one_via\": " << st.sec_one_via
         << ", \"sec_lee\": " << st.sec_lee
         << ", \"sec_ripup\": " << st.sec_ripup
         << ", \"sec_putback\": " << st.sec_putback
         << ",\n     \"lee_searches\": " << st.lee_searches
         << ", \"lee_expansions\": " << st.lee_expansions
         << ", \"lee_gap_nodes\": " << st.lee_gap_nodes << "}";
    first = false;
    // Sec 12: on difficult boards, Lee's algorithm is where the CPU goes.
    double strat = st.sec_zero_via + st.sec_one_via + st.sec_lee +
                   st.sec_ripup + st.sec_putback;
    std::cout << "  " << params.name << ": done in " << sec << " s, "
              << st.routed << "/" << st.total
              << " routed, %optimal=" << st.pct_optimal()
              << ", lee share of strategy time="
              << (strat > 0 ? 100.0 * st.sec_lee / strat : 0.0) << "%\n";
  }
  json << "\n  ]\n}\n";

  std::cout << "\n";
  print_table1(std::cout, rows);
  std::cout << "\nWrote BENCH_table1.json\n";
  std::cout << "\nPaper (VAX 11/785 CPU minutes):\n"
            << "  kdj11-2L: FAIL (~80% routed)   nmc-4L: %lee 14, 20 ripups, "
               ".99 vias, 28.5 min\n"
            << "  dpath-6L: %lee 8, .65 vias     coproc-6L: %lee 6, .62 "
               "vias   kdj11-4L: %lee 8, .70 vias\n"
            << "  icache-6L: %lee 3, .41 vias    nmc-6L: %lee 3, .68 vias   "
               "dcache-6L: %lee 2, .40 vias\n"
            << "  tna-6L: %lee 3, .50 vias\n";
  return 0;
}
