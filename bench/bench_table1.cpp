// Reproduces Table 1 (paper Sec 9): the nine-board suite in decreasing
// order of difficulty. The shape to look for, per the paper:
//   * kdj11 on 2 layers fails (%chan far above 50); the same problem on 4
//     layers routes easily — "routing boards of even medium density on two
//     routing layers is difficult";
//   * denser boards (higher %chan) push more connections to Lee's algorithm;
//   * rip-ups are rare except near failure;
//   * vias per connection stays below 1.
//
// Usage: bench_table1 [scale] [threads] [options]
//   scale   board scale factor (default 1.0; e.g. 0.5 for a quick run)
//   threads worker count for the batch router (default 1 = serial engine)
//   --suite table1|giant  board suite (default table1). The giant tier is
//           the ~100k-connection blow-up spatial sharding exists for.
//   --shards N            ShardMap cells for the region-parallel commit
//                         (default 0 = ordered serial commit)
//   --json PATH           output file (default BENCH_table1.json)
//
// The JSON has one record per board (wall seconds, completion %, vias,
// per-phase seconds) plus, when sharding is on, the wave/shard breakdown —
// the machine-readable record ci/check_perf.py gates on.
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#include "report/table.hpp"
#include "route/audit.hpp"
#include "route/batch_router.hpp"
#include "workload/suite.hpp"

using namespace grr;

int main(int argc, char** argv) {
  double scale = 1.0;
  int threads = 1;
  int shards = 0;
  std::string suite = "table1";
  std::string json_path = "BENCH_table1.json";
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--suite") == 0 && i + 1 < argc) {
      suite = argv[++i];
    } else if (positional == 0) {
      scale = std::atof(argv[i]);
      ++positional;
    } else if (positional == 1) {
      threads = std::atoi(argv[i]);
      ++positional;
    } else {
      std::cerr << "unknown argument: " << argv[i] << "\n";
      return 2;
    }
  }
  if (suite != "table1" && suite != "giant") {
    std::cerr << "unknown suite: " << suite << " (want table1 or giant)\n";
    return 2;
  }

  std::cout << (suite == "giant" ? "Giant tier" : "Table 1 reproduction")
            << " (scale " << scale << ", threads " << threads;
  if (shards > 1) std::cout << ", shards " << shards;
  std::cout << ")\n\n";

  std::ofstream json(json_path);
  json << "{\n  \"suite\": \"" << suite << "\",\n  \"scale\": " << scale
       << ",\n  \"threads\": " << threads << ",\n  \"shards\": " << shards
       << ",\n  \"hardware_concurrency\": "
       << std::thread::hardware_concurrency() << ",\n  \"boards\": [\n";

  std::vector<Table1Row> rows;
  bool first = true;
  const std::vector<BoardGenParams> boards =
      suite == "giant" ? giant_suite(scale) : table1_suite(scale);
  for (const BoardGenParams& params : boards) {
    GeneratedBoard gb = generate_board(params);
    RouterConfig cfg;
    cfg.threads = threads;
    cfg.shards = shards;
    BatchRouter router(gb.board->stack(), cfg);

    auto t0 = std::chrono::steady_clock::now();
    router.route_all(gb.strung.connections);
    auto t1 = std::chrono::steady_clock::now();
    double sec = std::chrono::duration<double>(t1 - t0).count();

    CheckReport audit =
        audit_all(gb.board->stack(), router.db(), gb.strung.connections);
    if (!audit.ok()) {
      std::cout << "AUDIT FAILED on " << params.name << ": "
                << audit.first_error() << "\n";
    }
    rows.push_back(Table1Row::from_run(gb, router.stats(), sec));
    const RouterStats& st = router.stats();
    const BatchStats& bs = router.batch_stats();
    double completion =
        st.total > 0 ? 100.0 * st.routed / st.total : 0.0;
    json << (first ? "" : ",\n") << "    {\"board\": \"" << params.name
         << "\", \"sec\": " << sec << ", \"completion_pct\": " << completion
         << ", \"routed\": " << st.routed << ", \"total\": " << st.total
         << ", \"vias\": " << st.vias_added
         << ", \"vias_per_conn\": " << st.vias_per_conn()
         << ", \"rip_ups\": " << st.rip_ups
         << ", \"plans_installed\": " << bs.installed
         << ", \"plan_conflicts\": " << bs.conflicts
         // Per-phase breakdown (Sec 12's CPU profile, machine-readable):
         // on difficult boards sec_lee should dominate, and it is the
         // phase the search-acceleration work targets.
         << ",\n     \"sec_zero_via\": " << st.sec_zero_via
         << ", \"sec_one_via\": " << st.sec_one_via
         << ", \"sec_lee\": " << st.sec_lee
         << ", \"sec_ripup\": " << st.sec_ripup
         << ", \"sec_putback\": " << st.sec_putback
         << ",\n     \"lee_searches\": " << st.lee_searches
         << ", \"lee_expansions\": " << st.lee_expansions
         << ", \"lee_gap_nodes\": " << st.lee_gap_nodes;
    if (shards > 1) {
      // Region-parallel commit breakdown: where the admitted plans landed
      // and what the waves cost. repair_rollbacks must read 0 — the
      // defence-in-depth path that never runs.
      json << ",\n     \"shard_rows\": " << bs.shard_rows
           << ", \"shard_cols\": " << bs.shard_cols
           << ", \"admitted_runs\": " << bs.admitted_runs
           << ", \"wave_rounds\": " << bs.wave_rounds
           << ", \"wave_installs\": " << bs.wave_installs
           << ", \"residual_installs\": " << bs.residual_installs
           << ", \"direct_installs\": " << bs.direct_installs
           << ", \"repair_rollbacks\": " << bs.repair_rollbacks
           << ", \"sec_wave\": " << bs.sec_wave << ",\n     \"per_shard\": [";
      for (std::size_t s = 0; s < bs.per_shard.size(); ++s) {
        json << (s == 0 ? "" : ", ") << "{\"installs\": "
             << bs.per_shard[s].installs
             << ", \"sec\": " << bs.per_shard[s].sec << "}";
      }
      json << "]";
    }
    json << "}";
    first = false;
    // Sec 12: on difficult boards, Lee's algorithm is where the CPU goes.
    double strat = st.sec_zero_via + st.sec_one_via + st.sec_lee +
                   st.sec_ripup + st.sec_putback;
    std::cout << "  " << params.name << ": done in " << sec << " s, "
              << st.routed << "/" << st.total
              << " routed, %optimal=" << st.pct_optimal()
              << ", lee share of strategy time="
              << (strat > 0 ? 100.0 * st.sec_lee / strat : 0.0) << "%\n";
    if (shards > 1) {
      std::cout << "    shards " << bs.shard_rows << "x" << bs.shard_cols
                << ": " << bs.wave_installs << " wave + "
                << bs.residual_installs << " residual + "
                << bs.direct_installs << " direct installs, "
                << bs.wave_rounds << " wave rounds in " << bs.sec_wave
                << " s, " << bs.repair_rollbacks << " repair rollbacks\n";
    }
  }
  json << "\n  ]\n}\n";

  std::cout << "\n";
  print_table1(std::cout, rows);
  std::cout << "\nWrote " << json_path << "\n";
  if (suite == "table1") {
    std::cout << "\nPaper (VAX 11/785 CPU minutes):\n"
              << "  kdj11-2L: FAIL (~80% routed)   nmc-4L: %lee 14, 20 "
                 "ripups, .99 vias, 28.5 min\n"
              << "  dpath-6L: %lee 8, .65 vias     coproc-6L: %lee 6, .62 "
                 "vias   kdj11-4L: %lee 8, .70 vias\n"
              << "  icache-6L: %lee 3, .41 vias    nmc-6L: %lee 3, .68 vias "
                 "  dcache-6L: %lee 2, .40 vias\n"
              << "  tna-6L: %lee 3, .50 vias\n";
  }
  return 0;
}
