// Reproduces the length-tuning discussion of paper Sec 10.1:
//   * the detour method "leads to acceptable performance if there are a few
//     tens of length-tuned wires on a board. It is slow for hundreds";
//   * the rejected cost-function method was "overwhelmed with false
//     solutions" and "unacceptably slow".
//
// Usage: bench_tuning [max_wires]   (default 200)
#include <chrono>
#include <cstdlib>
#include <iostream>

#include "tune/costfn_tuner.hpp"
#include "tune/length_tuner.hpp"
#include "workload/board_gen.hpp"

using namespace grr;

namespace {

/// An open board with rows of pin pairs to tune.
struct Fixture {
  GridSpec spec{121, 101};
  LayerStack stack{spec, 6};
  ConnectionList conns;

  explicit Fixture(int wires) {
    int made = 0;
    for (Coord vy = 2; vy < 99 && made < wires; vy += 2) {
      for (Coord vx = 2; vx + 24 < 119 && made < wires; vx += 30) {
        Connection c;
        c.id = made;
        c.a = {vx, vy};
        c.b = {vx + 20, vy};
        c.target_delay_ns = 0.6;  // direct is ~2000 mils = ~0.31-0.34 ns
        stack.drill_via(c.a, kPinConn);
        stack.drill_via(c.b, kPinConn);
        conns.push_back(c);
        ++made;
      }
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  int max_wires = argc > 1 ? std::atoi(argv[1]) : 200;
  std::cout << "Sec 10.1 length tuning (detour method scaling)\n"
            << "Paper: acceptable for tens of tuned wires, slow for "
               "hundreds.\n\n";
  std::cout << "  wires   tuned   total s   ms/wire\n";
  for (int wires : {10, 25, 50, 100, 200, 400}) {
    if (wires > max_wires) break;
    Fixture fx(wires);
    Router router(fx.stack, RouterConfig{});
    router.route_all(fx.conns);
    DelayModel model;
    model.num_layers = 6;
    LengthTuner tuner(router, model, 0.02);
    auto t0 = std::chrono::steady_clock::now();
    int ok = tuner.tune_all(fx.conns);
    auto t1 = std::chrono::steady_clock::now();
    double sec = std::chrono::duration<double>(t1 - t0).count();
    std::printf("  %5d   %5d   %7.3f   %7.2f\n", wires, ok, sec,
                wires ? 1000.0 * sec / wires : 0.0);
  }

  std::cout << "\nRejected cost-function tuner vs detour tuner (25 wires)\n"
            << "Paper: the cost-function variant generates plausible but "
               "unacceptable solutions and is far slower.\n\n";
  {
    Fixture fx(25);
    Router router(fx.stack, RouterConfig{});
    router.route_all(fx.conns);
    DelayModel model;
    model.num_layers = 6;
    LengthTuner detour(router, model, 0.02);
    auto t0 = std::chrono::steady_clock::now();
    int ok = detour.tune_all(fx.conns);
    auto t1 = std::chrono::steady_clock::now();
    std::cout << "  detour method : " << ok << "/25 tuned, "
              << std::chrono::duration<double>(t1 - t0).count() << " s\n";
  }
  {
    Fixture fx(25);
    Router router(fx.stack, RouterConfig{});
    router.route_all(fx.conns);
    DelayModel model;
    model.num_layers = 6;
    CostFnTuner costfn(router, model, 0.02);
    int ok = 0;
    long expansions = 0, false_solutions = 0;
    auto t0 = std::chrono::steady_clock::now();
    for (const Connection& c : fx.conns) {
      CostFnTuneResult r = costfn.tune(c);
      ok += r.success;
      expansions += static_cast<long>(r.expansions);
      false_solutions += r.false_solutions;
    }
    auto t1 = std::chrono::steady_clock::now();
    std::cout << "  cost-fn method: " << ok << "/25 tuned, "
              << std::chrono::duration<double>(t1 - t0).count() << " s, "
              << expansions << " expansions, " << false_solutions
              << " false solutions\n";
  }
  return 0;
}
