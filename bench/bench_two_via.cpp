// Reproduces the rejected two-via extension of paper Sec 8.1: "It is
// tempting to consider extending this method to two-via solutions, and in
// fact this strategy was tried early in the development of grr...
// Unfortunately there are usually too many possibilities to examine
// exhaustively. The problem is that the large number of candidate vias is
// tried in a pre-determined order without concern for local congestion...
// and a more effective method must be found" — which is the generalized
// Lee's algorithm.
//
// Usage: bench_two_via [scale]   (default 1.0)
#include <chrono>
#include <cstdlib>
#include <iostream>

#include "route/router.hpp"
#include "workload/suite.hpp"

using namespace grr;

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 1.0;
  std::cout << "Sec 8.1 rejected two-via strategy (scale " << scale
            << ")\n\n";
  std::cout << "  config                routed/total   two-via cands   "
               "two-via routed   CPU s\n";

  BoardGenParams params = table1_board("nmc-4L", scale);
  struct Mode {
    const char* name;
    bool two_via;
    bool lee;
  };
  const Mode modes[] = {
      {"lee (shipped)       ", false, true},
      {"two-via instead     ", true, false},
      {"two-via before lee  ", true, true},
  };
  for (const Mode& m : modes) {
    GeneratedBoard gb = generate_board(params);
    RouterConfig cfg;
    cfg.enable_two_via = m.two_via;
    cfg.enable_lee = m.lee;
    cfg.enable_ripup = m.lee;  // rip-up needs Lee's blockage point
    Router router(gb.board->stack(), cfg);
    auto t0 = std::chrono::steady_clock::now();
    router.route_all(gb.strung.connections);
    auto t1 = std::chrono::steady_clock::now();
    const RouterStats& st = router.stats();
    std::printf(
        "  %s  %6d/%-6d   %13ld   %14d   %5.2f\n", m.name, st.routed,
        st.total, st.two_via_candidates,
        st.by_strategy[static_cast<int>(RouteStrategy::kTwoVia)],
        std::chrono::duration<double>(t1 - t0).count());
  }
  std::cout << "\nThe pre-determined candidate order burns thousands of "
               "attempts for what Lee's algorithm finds directly.\n";
  return 0;
}
