// Ablation of this implementation's via-row avoidance (a design choice
// motivated by paper Sec 4: a trace "running over a via site... is avoided
// where possible in practice", because a covered site can never be drilled
// by a later connection).
//
// With avoidance off, straight traces run down the via rows and consume
// drill sites; one-via and Lee solutions then starve for free vias.
//
// Usage: bench_via_avoidance [scale]   (default 1.0)
#include <chrono>
#include <cstdlib>
#include <iostream>

#include "route/router.hpp"
#include "workload/suite.hpp"

using namespace grr;

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 1.0;
  std::cout << "Via-row avoidance ablation (scale " << scale << ")\n\n";
  std::cout << "  board       avoidance   routed/total   free via sites "
               "left   vias/conn   rip-ups   CPU s\n";

  for (const char* name : {"nmc-4L", "dpath-6L"}) {
    for (bool avoid : {true, false}) {
      GeneratedBoard gb = generate_board(table1_board(name, scale));
      RouterConfig cfg;
      cfg.via_avoidance = avoid;
      Router router(gb.board->stack(), cfg);
      auto t0 = std::chrono::steady_clock::now();
      router.route_all(gb.strung.connections);
      auto t1 = std::chrono::steady_clock::now();

      const GridSpec& spec = gb.board->spec();
      long free_sites = 0;
      for (Coord vy = 0; vy < spec.ny_vias(); ++vy) {
        for (Coord vx = 0; vx < spec.nx_vias(); ++vx) {
          free_sites += gb.board->stack().via_free({vx, vy});
        }
      }
      const RouterStats& st = router.stats();
      std::printf("  %-10s  %-9s   %6d/%-6d   %19ld   %9.2f   %7ld   %5.2f\n",
                  name, avoid ? "on" : "off", st.routed, st.total,
                  free_sites, st.vias_per_conn(), st.rip_ups,
                  std::chrono::duration<double>(t1 - t0).count());
    }
  }
  return 0;
}
