// Reproduces the via-map rationale of paper Sec 4: "inquiries about the
// availability of via sites are two to four orders of magnitude more
// frequent than updates of via site usage... Since updates to the routing
// layers are much rarer than probes, maintaining the via map results in
// significant performance improvements."
//
// We measure the probe cost with the incremental map vs probing every
// layer, and a mixed workload at the paper's inquiry:update ratios.
#include <benchmark/benchmark.h>

#include <random>

#include "layer/layer_stack.hpp"

namespace grr {
namespace {

/// Populate a 12x10-inch six-layer board with scattered traces and vias.
/// Out-parameter because SegmentPool (and so LayerStack) is immovable.
void make_stack(bool use_map, LayerStack& stack) {
  stack.set_use_via_map(use_map);
  std::mt19937 rng(3);
  auto rnd = [&](Coord lo, Coord hi) {
    return std::uniform_int_distribution<Coord>(lo, hi)(rng);
  };
  for (int i = 0; i < 4000; ++i) {
    LayerId l = static_cast<LayerId>(rng() % 6);
    const Layer& layer = stack.layer(l);
    Coord ch = rnd(0, layer.across_extent().hi);
    Coord lo = rnd(0, layer.along_extent().hi - 9);
    Interval span{lo, lo + rnd(1, 8)};
    Interval gap =
        layer.channel(ch).free_gap_at(stack.pool(), layer.along_extent(),
                                      span.lo);
    if (!gap.contains(span)) continue;
    stack.insert_span({l, ch, span}, 1);
  }
}

void BM_ViaProbe_WithMap(benchmark::State& state) {
  GridSpec spec(121, 101);
  LayerStack stack(spec, 6);
  make_stack(true, stack);
  std::mt19937 rng(5);
  std::uniform_int_distribution<Coord> px(0, 120), py(0, 100);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stack.via_free({px(rng), py(rng)}));
  }
}
BENCHMARK(BM_ViaProbe_WithMap);

void BM_ViaProbe_ProbingLayers(benchmark::State& state) {
  GridSpec spec(121, 101);
  LayerStack stack(spec, 6);
  make_stack(false, stack);
  std::mt19937 rng(5);
  std::uniform_int_distribution<Coord> px(0, 120), py(0, 100);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stack.via_free({px(rng), py(rng)}));
  }
}
BENCHMARK(BM_ViaProbe_ProbingLayers);

/// Mixed workload: `ratio` inquiries per update (the paper reports the mix
/// is 100:1 to 10000:1). The map pays a small update tax to make every
/// probe O(1); the break-even is far below any realistic ratio.
void BM_MixedWorkload(benchmark::State& state) {
  const bool use_map = state.range(0) != 0;
  const long ratio = state.range(1);
  GridSpec spec(121, 101);
  LayerStack stack(spec, 6);
  make_stack(use_map, stack);
  std::mt19937 rng(5);
  std::uniform_int_distribution<Coord> px(0, 120), py(0, 100);
  SegId last = kNoSeg;
  long ops = 0;
  for (auto _ : state) {
    if (ops++ % ratio == ratio - 1) {
      // One update: add or remove a trace span near a via row.
      if (last == kNoSeg) {
        Coord ch = (py(rng) / 3) * 3;
        Coord lo = px(rng);
        if (stack.span_free({0, ch, {lo, lo + 2}})) {
          last = stack.insert_span({0, ch, {lo, lo + 2}}, 2);
        }
      } else {
        stack.erase_segment(last);
        last = kNoSeg;
      }
    } else {
      benchmark::DoNotOptimize(stack.via_free({px(rng), py(rng)}));
    }
  }
}
BENCHMARK(BM_MixedWorkload)
    ->ArgsProduct({{0, 1}, {100, 1000, 10000}})
    ->ArgNames({"map", "probes_per_update"});

}  // namespace
}  // namespace grr

BENCHMARK_MAIN();
