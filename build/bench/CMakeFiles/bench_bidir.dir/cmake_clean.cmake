file(REMOVE_RECURSE
  "CMakeFiles/bench_bidir.dir/bench_bidir.cpp.o"
  "CMakeFiles/bench_bidir.dir/bench_bidir.cpp.o.d"
  "bench_bidir"
  "bench_bidir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bidir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
