file(REMOVE_RECURSE
  "CMakeFiles/bench_channel.dir/bench_channel.cpp.o"
  "CMakeFiles/bench_channel.dir/bench_channel.cpp.o.d"
  "bench_channel"
  "bench_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
