# Empty dependencies file for bench_channel.
# This may be replaced when dependencies are built.
