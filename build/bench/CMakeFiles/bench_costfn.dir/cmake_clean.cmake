file(REMOVE_RECURSE
  "CMakeFiles/bench_costfn.dir/bench_costfn.cpp.o"
  "CMakeFiles/bench_costfn.dir/bench_costfn.cpp.o.d"
  "bench_costfn"
  "bench_costfn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_costfn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
