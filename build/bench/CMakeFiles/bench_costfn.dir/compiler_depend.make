# Empty compiler generated dependencies file for bench_costfn.
# This may be replaced when dependencies are built.
