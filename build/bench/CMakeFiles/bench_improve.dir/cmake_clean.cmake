file(REMOVE_RECURSE
  "CMakeFiles/bench_improve.dir/bench_improve.cpp.o"
  "CMakeFiles/bench_improve.dir/bench_improve.cpp.o.d"
  "bench_improve"
  "bench_improve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_improve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
