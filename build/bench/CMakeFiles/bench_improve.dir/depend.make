# Empty dependencies file for bench_improve.
# This may be replaced when dependencies are built.
