# Empty compiler generated dependencies file for bench_instability.
# This may be replaced when dependencies are built.
