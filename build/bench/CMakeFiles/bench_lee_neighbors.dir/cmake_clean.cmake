file(REMOVE_RECURSE
  "CMakeFiles/bench_lee_neighbors.dir/bench_lee_neighbors.cpp.o"
  "CMakeFiles/bench_lee_neighbors.dir/bench_lee_neighbors.cpp.o.d"
  "bench_lee_neighbors"
  "bench_lee_neighbors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lee_neighbors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
