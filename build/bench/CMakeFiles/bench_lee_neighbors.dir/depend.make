# Empty dependencies file for bench_lee_neighbors.
# This may be replaced when dependencies are built.
