file(REMOVE_RECURSE
  "CMakeFiles/bench_radius.dir/bench_radius.cpp.o"
  "CMakeFiles/bench_radius.dir/bench_radius.cpp.o.d"
  "bench_radius"
  "bench_radius.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_radius.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
