file(REMOVE_RECURSE
  "CMakeFiles/bench_stringing.dir/bench_stringing.cpp.o"
  "CMakeFiles/bench_stringing.dir/bench_stringing.cpp.o.d"
  "bench_stringing"
  "bench_stringing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stringing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
