# Empty dependencies file for bench_stringing.
# This may be replaced when dependencies are built.
