file(REMOVE_RECURSE
  "CMakeFiles/bench_two_via.dir/bench_two_via.cpp.o"
  "CMakeFiles/bench_two_via.dir/bench_two_via.cpp.o.d"
  "bench_two_via"
  "bench_two_via.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_two_via.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
