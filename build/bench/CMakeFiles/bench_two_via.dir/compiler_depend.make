# Empty compiler generated dependencies file for bench_two_via.
# This may be replaced when dependencies are built.
