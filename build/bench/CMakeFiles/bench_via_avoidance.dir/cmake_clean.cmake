file(REMOVE_RECURSE
  "CMakeFiles/bench_via_avoidance.dir/bench_via_avoidance.cpp.o"
  "CMakeFiles/bench_via_avoidance.dir/bench_via_avoidance.cpp.o.d"
  "bench_via_avoidance"
  "bench_via_avoidance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_via_avoidance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
