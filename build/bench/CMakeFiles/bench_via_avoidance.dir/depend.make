# Empty dependencies file for bench_via_avoidance.
# This may be replaced when dependencies are built.
