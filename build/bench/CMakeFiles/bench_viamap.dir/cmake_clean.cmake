file(REMOVE_RECURSE
  "CMakeFiles/bench_viamap.dir/bench_viamap.cpp.o"
  "CMakeFiles/bench_viamap.dir/bench_viamap.cpp.o.d"
  "bench_viamap"
  "bench_viamap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_viamap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
