# Empty compiler generated dependencies file for bench_viamap.
# This may be replaced when dependencies are built.
