file(REMOVE_RECURSE
  "CMakeFiles/auto_place.dir/auto_place.cpp.o"
  "CMakeFiles/auto_place.dir/auto_place.cpp.o.d"
  "auto_place"
  "auto_place.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auto_place.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
