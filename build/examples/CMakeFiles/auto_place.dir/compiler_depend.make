# Empty compiler generated dependencies file for auto_place.
# This may be replaced when dependencies are built.
