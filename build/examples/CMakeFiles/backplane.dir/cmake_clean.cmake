file(REMOVE_RECURSE
  "CMakeFiles/backplane.dir/backplane.cpp.o"
  "CMakeFiles/backplane.dir/backplane.cpp.o.d"
  "backplane"
  "backplane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backplane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
