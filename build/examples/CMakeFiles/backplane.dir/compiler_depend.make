# Empty compiler generated dependencies file for backplane.
# This may be replaced when dependencies are built.
