file(REMOVE_RECURSE
  "CMakeFiles/eco.dir/eco.cpp.o"
  "CMakeFiles/eco.dir/eco.cpp.o.d"
  "eco"
  "eco.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eco.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
