# Empty dependencies file for eco.
# This may be replaced when dependencies are built.
