file(REMOVE_RECURSE
  "CMakeFiles/grr_tool.dir/grr_tool.cpp.o"
  "CMakeFiles/grr_tool.dir/grr_tool.cpp.o.d"
  "grr_tool"
  "grr_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grr_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
