# Empty dependencies file for grr_tool.
# This may be replaced when dependencies are built.
