file(REMOVE_RECURSE
  "CMakeFiles/mixed_ecl_ttl.dir/mixed_ecl_ttl.cpp.o"
  "CMakeFiles/mixed_ecl_ttl.dir/mixed_ecl_ttl.cpp.o.d"
  "mixed_ecl_ttl"
  "mixed_ecl_ttl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixed_ecl_ttl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
