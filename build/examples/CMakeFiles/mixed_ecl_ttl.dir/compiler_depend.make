# Empty compiler generated dependencies file for mixed_ecl_ttl.
# This may be replaced when dependencies are built.
