file(REMOVE_RECURSE
  "CMakeFiles/surface_mount.dir/surface_mount.cpp.o"
  "CMakeFiles/surface_mount.dir/surface_mount.cpp.o.d"
  "surface_mount"
  "surface_mount.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surface_mount.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
