# Empty compiler generated dependencies file for surface_mount.
# This may be replaced when dependencies are built.
