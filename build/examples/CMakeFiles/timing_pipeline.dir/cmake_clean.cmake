file(REMOVE_RECURSE
  "CMakeFiles/timing_pipeline.dir/timing_pipeline.cpp.o"
  "CMakeFiles/timing_pipeline.dir/timing_pipeline.cpp.o.d"
  "timing_pipeline"
  "timing_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timing_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
