# Empty dependencies file for timing_pipeline.
# This may be replaced when dependencies are built.
