file(REMOVE_RECURSE
  "CMakeFiles/titan_coproc.dir/titan_coproc.cpp.o"
  "CMakeFiles/titan_coproc.dir/titan_coproc.cpp.o.d"
  "titan_coproc"
  "titan_coproc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/titan_coproc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
