# Empty dependencies file for titan_coproc.
# This may be replaced when dependencies are built.
