file(REMOVE_RECURSE
  "CMakeFiles/grr_baseline.dir/baseline/lee_grid_router.cpp.o"
  "CMakeFiles/grr_baseline.dir/baseline/lee_grid_router.cpp.o.d"
  "CMakeFiles/grr_baseline.dir/baseline/line_search_router.cpp.o"
  "CMakeFiles/grr_baseline.dir/baseline/line_search_router.cpp.o.d"
  "libgrr_baseline.a"
  "libgrr_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grr_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
