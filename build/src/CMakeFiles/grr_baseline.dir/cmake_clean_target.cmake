file(REMOVE_RECURSE
  "libgrr_baseline.a"
)
