# Empty dependencies file for grr_baseline.
# This may be replaced when dependencies are built.
