
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/board/board.cpp" "src/CMakeFiles/grr_board.dir/board/board.cpp.o" "gcc" "src/CMakeFiles/grr_board.dir/board/board.cpp.o.d"
  "/root/repo/src/board/design_rules.cpp" "src/CMakeFiles/grr_board.dir/board/design_rules.cpp.o" "gcc" "src/CMakeFiles/grr_board.dir/board/design_rules.cpp.o.d"
  "/root/repo/src/board/dispersion.cpp" "src/CMakeFiles/grr_board.dir/board/dispersion.cpp.o" "gcc" "src/CMakeFiles/grr_board.dir/board/dispersion.cpp.o.d"
  "/root/repo/src/board/footprint.cpp" "src/CMakeFiles/grr_board.dir/board/footprint.cpp.o" "gcc" "src/CMakeFiles/grr_board.dir/board/footprint.cpp.o.d"
  "/root/repo/src/board/lint.cpp" "src/CMakeFiles/grr_board.dir/board/lint.cpp.o" "gcc" "src/CMakeFiles/grr_board.dir/board/lint.cpp.o.d"
  "/root/repo/src/board/netlist.cpp" "src/CMakeFiles/grr_board.dir/board/netlist.cpp.o" "gcc" "src/CMakeFiles/grr_board.dir/board/netlist.cpp.o.d"
  "/root/repo/src/board/power_plane.cpp" "src/CMakeFiles/grr_board.dir/board/power_plane.cpp.o" "gcc" "src/CMakeFiles/grr_board.dir/board/power_plane.cpp.o.d"
  "/root/repo/src/board/tile_map.cpp" "src/CMakeFiles/grr_board.dir/board/tile_map.cpp.o" "gcc" "src/CMakeFiles/grr_board.dir/board/tile_map.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/grr_layer.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/grr_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/grr_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
