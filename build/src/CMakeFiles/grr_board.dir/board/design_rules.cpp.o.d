src/CMakeFiles/grr_board.dir/board/design_rules.cpp.o: \
 /root/repo/src/board/design_rules.cpp /usr/include/stdc-predef.h \
 /root/repo/src/board/design_rules.hpp
