file(REMOVE_RECURSE
  "CMakeFiles/grr_board.dir/board/board.cpp.o"
  "CMakeFiles/grr_board.dir/board/board.cpp.o.d"
  "CMakeFiles/grr_board.dir/board/design_rules.cpp.o"
  "CMakeFiles/grr_board.dir/board/design_rules.cpp.o.d"
  "CMakeFiles/grr_board.dir/board/dispersion.cpp.o"
  "CMakeFiles/grr_board.dir/board/dispersion.cpp.o.d"
  "CMakeFiles/grr_board.dir/board/footprint.cpp.o"
  "CMakeFiles/grr_board.dir/board/footprint.cpp.o.d"
  "CMakeFiles/grr_board.dir/board/lint.cpp.o"
  "CMakeFiles/grr_board.dir/board/lint.cpp.o.d"
  "CMakeFiles/grr_board.dir/board/netlist.cpp.o"
  "CMakeFiles/grr_board.dir/board/netlist.cpp.o.d"
  "CMakeFiles/grr_board.dir/board/power_plane.cpp.o"
  "CMakeFiles/grr_board.dir/board/power_plane.cpp.o.d"
  "CMakeFiles/grr_board.dir/board/tile_map.cpp.o"
  "CMakeFiles/grr_board.dir/board/tile_map.cpp.o.d"
  "libgrr_board.a"
  "libgrr_board.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grr_board.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
