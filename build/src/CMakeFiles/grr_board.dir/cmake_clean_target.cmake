file(REMOVE_RECURSE
  "libgrr_board.a"
)
