# Empty compiler generated dependencies file for grr_board.
# This may be replaced when dependencies are built.
