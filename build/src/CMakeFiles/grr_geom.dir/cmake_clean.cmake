file(REMOVE_RECURSE
  "CMakeFiles/grr_geom.dir/geom/geom.cpp.o"
  "CMakeFiles/grr_geom.dir/geom/geom.cpp.o.d"
  "libgrr_geom.a"
  "libgrr_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grr_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
