file(REMOVE_RECURSE
  "libgrr_geom.a"
)
