# Empty dependencies file for grr_geom.
# This may be replaced when dependencies are built.
