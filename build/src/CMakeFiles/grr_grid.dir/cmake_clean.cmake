file(REMOVE_RECURSE
  "CMakeFiles/grr_grid.dir/grid/grid_spec.cpp.o"
  "CMakeFiles/grr_grid.dir/grid/grid_spec.cpp.o.d"
  "libgrr_grid.a"
  "libgrr_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grr_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
