file(REMOVE_RECURSE
  "libgrr_grid.a"
)
