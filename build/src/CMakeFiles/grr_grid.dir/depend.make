# Empty dependencies file for grr_grid.
# This may be replaced when dependencies are built.
