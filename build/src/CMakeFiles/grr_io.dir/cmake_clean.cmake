file(REMOVE_RECURSE
  "CMakeFiles/grr_io.dir/io/problem_io.cpp.o"
  "CMakeFiles/grr_io.dir/io/problem_io.cpp.o.d"
  "CMakeFiles/grr_io.dir/io/route_io.cpp.o"
  "CMakeFiles/grr_io.dir/io/route_io.cpp.o.d"
  "libgrr_io.a"
  "libgrr_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grr_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
