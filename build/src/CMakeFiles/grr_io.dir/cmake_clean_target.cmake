file(REMOVE_RECURSE
  "libgrr_io.a"
)
