# Empty dependencies file for grr_io.
# This may be replaced when dependencies are built.
