
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/layer/channel.cpp" "src/CMakeFiles/grr_layer.dir/layer/channel.cpp.o" "gcc" "src/CMakeFiles/grr_layer.dir/layer/channel.cpp.o.d"
  "/root/repo/src/layer/free_space.cpp" "src/CMakeFiles/grr_layer.dir/layer/free_space.cpp.o" "gcc" "src/CMakeFiles/grr_layer.dir/layer/free_space.cpp.o.d"
  "/root/repo/src/layer/layer.cpp" "src/CMakeFiles/grr_layer.dir/layer/layer.cpp.o" "gcc" "src/CMakeFiles/grr_layer.dir/layer/layer.cpp.o.d"
  "/root/repo/src/layer/layer_stack.cpp" "src/CMakeFiles/grr_layer.dir/layer/layer_stack.cpp.o" "gcc" "src/CMakeFiles/grr_layer.dir/layer/layer_stack.cpp.o.d"
  "/root/repo/src/layer/segment_pool.cpp" "src/CMakeFiles/grr_layer.dir/layer/segment_pool.cpp.o" "gcc" "src/CMakeFiles/grr_layer.dir/layer/segment_pool.cpp.o.d"
  "/root/repo/src/layer/tree_channel.cpp" "src/CMakeFiles/grr_layer.dir/layer/tree_channel.cpp.o" "gcc" "src/CMakeFiles/grr_layer.dir/layer/tree_channel.cpp.o.d"
  "/root/repo/src/layer/via_map.cpp" "src/CMakeFiles/grr_layer.dir/layer/via_map.cpp.o" "gcc" "src/CMakeFiles/grr_layer.dir/layer/via_map.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/grr_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/grr_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
