file(REMOVE_RECURSE
  "CMakeFiles/grr_layer.dir/layer/channel.cpp.o"
  "CMakeFiles/grr_layer.dir/layer/channel.cpp.o.d"
  "CMakeFiles/grr_layer.dir/layer/free_space.cpp.o"
  "CMakeFiles/grr_layer.dir/layer/free_space.cpp.o.d"
  "CMakeFiles/grr_layer.dir/layer/layer.cpp.o"
  "CMakeFiles/grr_layer.dir/layer/layer.cpp.o.d"
  "CMakeFiles/grr_layer.dir/layer/layer_stack.cpp.o"
  "CMakeFiles/grr_layer.dir/layer/layer_stack.cpp.o.d"
  "CMakeFiles/grr_layer.dir/layer/segment_pool.cpp.o"
  "CMakeFiles/grr_layer.dir/layer/segment_pool.cpp.o.d"
  "CMakeFiles/grr_layer.dir/layer/tree_channel.cpp.o"
  "CMakeFiles/grr_layer.dir/layer/tree_channel.cpp.o.d"
  "CMakeFiles/grr_layer.dir/layer/via_map.cpp.o"
  "CMakeFiles/grr_layer.dir/layer/via_map.cpp.o.d"
  "libgrr_layer.a"
  "libgrr_layer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grr_layer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
