file(REMOVE_RECURSE
  "libgrr_layer.a"
)
