# Empty dependencies file for grr_layer.
# This may be replaced when dependencies are built.
