file(REMOVE_RECURSE
  "CMakeFiles/grr_place.dir/place/placer.cpp.o"
  "CMakeFiles/grr_place.dir/place/placer.cpp.o.d"
  "libgrr_place.a"
  "libgrr_place.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grr_place.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
