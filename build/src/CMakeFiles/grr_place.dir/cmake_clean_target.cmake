file(REMOVE_RECURSE
  "libgrr_place.a"
)
