# Empty dependencies file for grr_place.
# This may be replaced when dependencies are built.
