file(REMOVE_RECURSE
  "CMakeFiles/grr_postprocess.dir/postprocess/miter.cpp.o"
  "CMakeFiles/grr_postprocess.dir/postprocess/miter.cpp.o.d"
  "libgrr_postprocess.a"
  "libgrr_postprocess.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grr_postprocess.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
