file(REMOVE_RECURSE
  "libgrr_postprocess.a"
)
