# Empty compiler generated dependencies file for grr_postprocess.
# This may be replaced when dependencies are built.
