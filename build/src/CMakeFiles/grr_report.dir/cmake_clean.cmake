file(REMOVE_RECURSE
  "CMakeFiles/grr_report.dir/report/gerber.cpp.o"
  "CMakeFiles/grr_report.dir/report/gerber.cpp.o.d"
  "CMakeFiles/grr_report.dir/report/html_report.cpp.o"
  "CMakeFiles/grr_report.dir/report/html_report.cpp.o.d"
  "CMakeFiles/grr_report.dir/report/pattern_stats.cpp.o"
  "CMakeFiles/grr_report.dir/report/pattern_stats.cpp.o.d"
  "CMakeFiles/grr_report.dir/report/svg.cpp.o"
  "CMakeFiles/grr_report.dir/report/svg.cpp.o.d"
  "CMakeFiles/grr_report.dir/report/table.cpp.o"
  "CMakeFiles/grr_report.dir/report/table.cpp.o.d"
  "libgrr_report.a"
  "libgrr_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grr_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
