file(REMOVE_RECURSE
  "libgrr_report.a"
)
