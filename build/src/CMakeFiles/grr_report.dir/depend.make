# Empty dependencies file for grr_report.
# This may be replaced when dependencies are built.
