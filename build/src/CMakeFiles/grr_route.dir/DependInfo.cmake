
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/route/audit.cpp" "src/CMakeFiles/grr_route.dir/route/audit.cpp.o" "gcc" "src/CMakeFiles/grr_route.dir/route/audit.cpp.o.d"
  "/root/repo/src/route/connection.cpp" "src/CMakeFiles/grr_route.dir/route/connection.cpp.o" "gcc" "src/CMakeFiles/grr_route.dir/route/connection.cpp.o.d"
  "/root/repo/src/route/improve.cpp" "src/CMakeFiles/grr_route.dir/route/improve.cpp.o" "gcc" "src/CMakeFiles/grr_route.dir/route/improve.cpp.o.d"
  "/root/repo/src/route/lee.cpp" "src/CMakeFiles/grr_route.dir/route/lee.cpp.o" "gcc" "src/CMakeFiles/grr_route.dir/route/lee.cpp.o.d"
  "/root/repo/src/route/mixed.cpp" "src/CMakeFiles/grr_route.dir/route/mixed.cpp.o" "gcc" "src/CMakeFiles/grr_route.dir/route/mixed.cpp.o.d"
  "/root/repo/src/route/optimal.cpp" "src/CMakeFiles/grr_route.dir/route/optimal.cpp.o" "gcc" "src/CMakeFiles/grr_route.dir/route/optimal.cpp.o.d"
  "/root/repo/src/route/ripup.cpp" "src/CMakeFiles/grr_route.dir/route/ripup.cpp.o" "gcc" "src/CMakeFiles/grr_route.dir/route/ripup.cpp.o.d"
  "/root/repo/src/route/route_db.cpp" "src/CMakeFiles/grr_route.dir/route/route_db.cpp.o" "gcc" "src/CMakeFiles/grr_route.dir/route/route_db.cpp.o.d"
  "/root/repo/src/route/router.cpp" "src/CMakeFiles/grr_route.dir/route/router.cpp.o" "gcc" "src/CMakeFiles/grr_route.dir/route/router.cpp.o.d"
  "/root/repo/src/route/sorting.cpp" "src/CMakeFiles/grr_route.dir/route/sorting.cpp.o" "gcc" "src/CMakeFiles/grr_route.dir/route/sorting.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/grr_board.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/grr_layer.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/grr_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/grr_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
