file(REMOVE_RECURSE
  "CMakeFiles/grr_route.dir/route/audit.cpp.o"
  "CMakeFiles/grr_route.dir/route/audit.cpp.o.d"
  "CMakeFiles/grr_route.dir/route/connection.cpp.o"
  "CMakeFiles/grr_route.dir/route/connection.cpp.o.d"
  "CMakeFiles/grr_route.dir/route/improve.cpp.o"
  "CMakeFiles/grr_route.dir/route/improve.cpp.o.d"
  "CMakeFiles/grr_route.dir/route/lee.cpp.o"
  "CMakeFiles/grr_route.dir/route/lee.cpp.o.d"
  "CMakeFiles/grr_route.dir/route/mixed.cpp.o"
  "CMakeFiles/grr_route.dir/route/mixed.cpp.o.d"
  "CMakeFiles/grr_route.dir/route/optimal.cpp.o"
  "CMakeFiles/grr_route.dir/route/optimal.cpp.o.d"
  "CMakeFiles/grr_route.dir/route/ripup.cpp.o"
  "CMakeFiles/grr_route.dir/route/ripup.cpp.o.d"
  "CMakeFiles/grr_route.dir/route/route_db.cpp.o"
  "CMakeFiles/grr_route.dir/route/route_db.cpp.o.d"
  "CMakeFiles/grr_route.dir/route/router.cpp.o"
  "CMakeFiles/grr_route.dir/route/router.cpp.o.d"
  "CMakeFiles/grr_route.dir/route/sorting.cpp.o"
  "CMakeFiles/grr_route.dir/route/sorting.cpp.o.d"
  "libgrr_route.a"
  "libgrr_route.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grr_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
