file(REMOVE_RECURSE
  "libgrr_route.a"
)
