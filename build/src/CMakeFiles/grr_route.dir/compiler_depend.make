# Empty compiler generated dependencies file for grr_route.
# This may be replaced when dependencies are built.
