file(REMOVE_RECURSE
  "CMakeFiles/grr_stringer.dir/stringer/stringer.cpp.o"
  "CMakeFiles/grr_stringer.dir/stringer/stringer.cpp.o.d"
  "libgrr_stringer.a"
  "libgrr_stringer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grr_stringer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
