file(REMOVE_RECURSE
  "libgrr_stringer.a"
)
