# Empty compiler generated dependencies file for grr_stringer.
# This may be replaced when dependencies are built.
