
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/timing/timing.cpp" "src/CMakeFiles/grr_timing.dir/timing/timing.cpp.o" "gcc" "src/CMakeFiles/grr_timing.dir/timing/timing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/grr_stringer.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/grr_tune.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/grr_route.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/grr_board.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/grr_layer.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/grr_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/grr_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
