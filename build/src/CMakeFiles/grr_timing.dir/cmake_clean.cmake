file(REMOVE_RECURSE
  "CMakeFiles/grr_timing.dir/timing/timing.cpp.o"
  "CMakeFiles/grr_timing.dir/timing/timing.cpp.o.d"
  "libgrr_timing.a"
  "libgrr_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grr_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
