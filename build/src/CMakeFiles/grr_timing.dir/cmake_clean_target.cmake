file(REMOVE_RECURSE
  "libgrr_timing.a"
)
