# Empty compiler generated dependencies file for grr_timing.
# This may be replaced when dependencies are built.
