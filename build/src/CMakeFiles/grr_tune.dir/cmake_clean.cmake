file(REMOVE_RECURSE
  "CMakeFiles/grr_tune.dir/tune/costfn_tuner.cpp.o"
  "CMakeFiles/grr_tune.dir/tune/costfn_tuner.cpp.o.d"
  "CMakeFiles/grr_tune.dir/tune/delay_model.cpp.o"
  "CMakeFiles/grr_tune.dir/tune/delay_model.cpp.o.d"
  "CMakeFiles/grr_tune.dir/tune/length_tuner.cpp.o"
  "CMakeFiles/grr_tune.dir/tune/length_tuner.cpp.o.d"
  "libgrr_tune.a"
  "libgrr_tune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grr_tune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
