file(REMOVE_RECURSE
  "libgrr_tune.a"
)
