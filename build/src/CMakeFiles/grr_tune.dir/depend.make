# Empty dependencies file for grr_tune.
# This may be replaced when dependencies are built.
