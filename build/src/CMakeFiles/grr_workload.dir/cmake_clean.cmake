file(REMOVE_RECURSE
  "CMakeFiles/grr_workload.dir/workload/board_gen.cpp.o"
  "CMakeFiles/grr_workload.dir/workload/board_gen.cpp.o.d"
  "CMakeFiles/grr_workload.dir/workload/suite.cpp.o"
  "CMakeFiles/grr_workload.dir/workload/suite.cpp.o.d"
  "libgrr_workload.a"
  "libgrr_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grr_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
