file(REMOVE_RECURSE
  "libgrr_workload.a"
)
