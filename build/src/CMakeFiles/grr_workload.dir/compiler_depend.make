# Empty compiler generated dependencies file for grr_workload.
# This may be replaced when dependencies are built.
