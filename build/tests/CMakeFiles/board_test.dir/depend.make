# Empty dependencies file for board_test.
# This may be replaced when dependencies are built.
