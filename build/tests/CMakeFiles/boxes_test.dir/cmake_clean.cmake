file(REMOVE_RECURSE
  "CMakeFiles/boxes_test.dir/boxes_test.cpp.o"
  "CMakeFiles/boxes_test.dir/boxes_test.cpp.o.d"
  "boxes_test"
  "boxes_test.pdb"
  "boxes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boxes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
