# Empty compiler generated dependencies file for boxes_test.
# This may be replaced when dependencies are built.
