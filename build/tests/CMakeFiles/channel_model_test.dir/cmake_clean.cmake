file(REMOVE_RECURSE
  "CMakeFiles/channel_model_test.dir/channel_model_test.cpp.o"
  "CMakeFiles/channel_model_test.dir/channel_model_test.cpp.o.d"
  "channel_model_test"
  "channel_model_test.pdb"
  "channel_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/channel_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
