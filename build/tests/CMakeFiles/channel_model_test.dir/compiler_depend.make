# Empty compiler generated dependencies file for channel_model_test.
# This may be replaced when dependencies are built.
