file(REMOVE_RECURSE
  "CMakeFiles/dispersion_test.dir/dispersion_test.cpp.o"
  "CMakeFiles/dispersion_test.dir/dispersion_test.cpp.o.d"
  "dispersion_test"
  "dispersion_test.pdb"
  "dispersion_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dispersion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
