# Empty dependencies file for dispersion_test.
# This may be replaced when dependencies are built.
