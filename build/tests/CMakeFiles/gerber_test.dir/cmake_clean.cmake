file(REMOVE_RECURSE
  "CMakeFiles/gerber_test.dir/gerber_test.cpp.o"
  "CMakeFiles/gerber_test.dir/gerber_test.cpp.o.d"
  "gerber_test"
  "gerber_test.pdb"
  "gerber_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gerber_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
