# Empty compiler generated dependencies file for gerber_test.
# This may be replaced when dependencies are built.
