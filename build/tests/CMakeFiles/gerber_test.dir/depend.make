# Empty dependencies file for gerber_test.
# This may be replaced when dependencies are built.
