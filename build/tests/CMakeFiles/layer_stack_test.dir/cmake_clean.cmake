file(REMOVE_RECURSE
  "CMakeFiles/layer_stack_test.dir/layer_stack_test.cpp.o"
  "CMakeFiles/layer_stack_test.dir/layer_stack_test.cpp.o.d"
  "layer_stack_test"
  "layer_stack_test.pdb"
  "layer_stack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/layer_stack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
