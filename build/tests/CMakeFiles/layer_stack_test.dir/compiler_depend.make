# Empty compiler generated dependencies file for layer_stack_test.
# This may be replaced when dependencies are built.
