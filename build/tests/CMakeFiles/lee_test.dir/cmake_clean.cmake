file(REMOVE_RECURSE
  "CMakeFiles/lee_test.dir/lee_test.cpp.o"
  "CMakeFiles/lee_test.dir/lee_test.cpp.o.d"
  "lee_test"
  "lee_test.pdb"
  "lee_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lee_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
