# Empty dependencies file for lee_test.
# This may be replaced when dependencies are built.
