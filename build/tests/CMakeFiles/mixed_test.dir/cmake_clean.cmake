file(REMOVE_RECURSE
  "CMakeFiles/mixed_test.dir/mixed_test.cpp.o"
  "CMakeFiles/mixed_test.dir/mixed_test.cpp.o.d"
  "mixed_test"
  "mixed_test.pdb"
  "mixed_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
