
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/placer_test.cpp" "tests/CMakeFiles/placer_test.dir/placer_test.cpp.o" "gcc" "tests/CMakeFiles/placer_test.dir/placer_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/grr_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/grr_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/grr_report.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/grr_postprocess.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/grr_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/grr_place.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/grr_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/grr_stringer.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/grr_tune.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/grr_route.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/grr_board.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/grr_layer.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/grr_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/grr_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
