file(REMOVE_RECURSE
  "CMakeFiles/power_plane_test.dir/power_plane_test.cpp.o"
  "CMakeFiles/power_plane_test.dir/power_plane_test.cpp.o.d"
  "power_plane_test"
  "power_plane_test.pdb"
  "power_plane_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_plane_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
