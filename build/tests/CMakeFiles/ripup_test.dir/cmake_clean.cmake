file(REMOVE_RECURSE
  "CMakeFiles/ripup_test.dir/ripup_test.cpp.o"
  "CMakeFiles/ripup_test.dir/ripup_test.cpp.o.d"
  "ripup_test"
  "ripup_test.pdb"
  "ripup_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ripup_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
