# Empty dependencies file for ripup_test.
# This may be replaced when dependencies are built.
