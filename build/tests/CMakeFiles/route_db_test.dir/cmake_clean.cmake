file(REMOVE_RECURSE
  "CMakeFiles/route_db_test.dir/route_db_test.cpp.o"
  "CMakeFiles/route_db_test.dir/route_db_test.cpp.o.d"
  "route_db_test"
  "route_db_test.pdb"
  "route_db_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/route_db_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
