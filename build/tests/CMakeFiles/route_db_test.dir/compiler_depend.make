# Empty compiler generated dependencies file for route_db_test.
# This may be replaced when dependencies are built.
