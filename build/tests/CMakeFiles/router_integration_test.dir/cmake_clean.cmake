file(REMOVE_RECURSE
  "CMakeFiles/router_integration_test.dir/router_integration_test.cpp.o"
  "CMakeFiles/router_integration_test.dir/router_integration_test.cpp.o.d"
  "router_integration_test"
  "router_integration_test.pdb"
  "router_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/router_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
