# Empty dependencies file for router_integration_test.
# This may be replaced when dependencies are built.
