file(REMOVE_RECURSE
  "CMakeFiles/stringer_test.dir/stringer_test.cpp.o"
  "CMakeFiles/stringer_test.dir/stringer_test.cpp.o.d"
  "stringer_test"
  "stringer_test.pdb"
  "stringer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stringer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
