# Empty compiler generated dependencies file for stringer_test.
# This may be replaced when dependencies are built.
