file(REMOVE_RECURSE
  "CMakeFiles/suite_regression_test.dir/suite_regression_test.cpp.o"
  "CMakeFiles/suite_regression_test.dir/suite_regression_test.cpp.o.d"
  "suite_regression_test"
  "suite_regression_test.pdb"
  "suite_regression_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/suite_regression_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
