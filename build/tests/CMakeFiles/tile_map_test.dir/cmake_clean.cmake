file(REMOVE_RECURSE
  "CMakeFiles/tile_map_test.dir/tile_map_test.cpp.o"
  "CMakeFiles/tile_map_test.dir/tile_map_test.cpp.o.d"
  "tile_map_test"
  "tile_map_test.pdb"
  "tile_map_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tile_map_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
