# Empty compiler generated dependencies file for tile_map_test.
# This may be replaced when dependencies are built.
