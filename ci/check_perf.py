#!/usr/bin/env python3
"""Perf regression gate for the bench JSON artifacts.

Compares fresh bench reports against the checked-in baseline
(ci/perf_baseline.json) and fails if any tracked wall-time metric regressed
by more than THRESHOLD, with an absolute floor so sub-jitter timings cannot
flake the job.

Inputs are one BENCH_lee.json followed by one or more bench_table1-style
reports (any suite: the plain Table 1 run, the giant tier, a sharded
ablation). Each table1-style report carries its suite name in its "suite"
field, which becomes the metric prefix — "table1/<board>/sec",
"giant/<board>/sec" — so one baseline file gates every tier. Reports
written before the suite field existed default to "table1", keeping the
historical keys.

CI runners and developer machines differ in absolute speed, so the gate is
deliberately loose (1.3x): it exists to catch gross regressions — an
accidentally quadratic walk, a lost fast path, a debug assert in the hot
loop — not single-digit drift. Refresh the baseline with --write-baseline
after an intentional perf change, on the same class of machine that runs
the gate.

Usage:
  check_perf.py BASELINE BENCH_lee.json TABLE1_JSON [TABLE1_JSON...]
  check_perf.py --write-baseline BASELINE BENCH_lee.json TABLE1_JSON...
"""

import json
import sys

# A fresh timing must be < baseline * THRESHOLD ...
THRESHOLD = 1.3
# ... unless both sides are below the jitter floor (seconds). Timings this
# small are scheduler noise on shared CI runners.
FLOOR_SEC = 0.020


def extract(lee, table1_reports):
    """Flatten the bench reports into {metric_name: seconds}."""
    metrics = {}
    for board in lee.get("boards", []):
        for run in board.get("runs", []):
            key = f"lee/{board['board']}/{run['config']}/sec_lee"
            metrics[key] = run["sec_lee"]
    for report in table1_reports:
        suite = report.get("suite", "table1")
        for row in report.get("boards", []):
            metrics[f"{suite}/{row['board']}/sec"] = row["sec"]
            metrics[f"{suite}/{row['board']}/sec_lee"] = row["sec_lee"]
    return metrics


def main(argv):
    write = "--write-baseline" in argv
    argv = [a for a in argv if a != "--write-baseline"]
    if len(argv) < 4:
        print(__doc__)
        return 2
    baseline_path, lee_path = argv[1:3]
    table1_paths = argv[3:]

    with open(lee_path) as f:
        lee = json.load(f)
    table1_reports = []
    for path in table1_paths:
        with open(path) as f:
            table1_reports.append(json.load(f))
    fresh = extract(lee, table1_reports)

    if write:
        with open(baseline_path, "w") as f:
            json.dump(
                {
                    "threshold": THRESHOLD,
                    "floor_sec": FLOOR_SEC,
                    "metrics": fresh,
                },
                f,
                indent=2,
                sort_keys=True,
            )
            f.write("\n")
        print(f"Wrote {len(fresh)} metrics to {baseline_path}")
        return 0

    with open(baseline_path) as f:
        baseline = json.load(f)
    base = baseline["metrics"]

    failures = []
    missing = []
    for key, base_sec in sorted(base.items()):
        if key not in fresh:
            missing.append(key)
            continue
        got = fresh[key]
        if got <= FLOOR_SEC and base_sec <= FLOOR_SEC:
            status = "ok (sub-floor)"
        elif got > max(base_sec, FLOOR_SEC) * THRESHOLD:
            status = "REGRESSED"
            failures.append(key)
        else:
            status = "ok"
        ratio = got / base_sec if base_sec > 0 else float("inf")
        print(f"  {key}: {base_sec:.3f}s -> {got:.3f}s ({ratio:.2f}x) {status}")

    if missing:
        print(f"MISSING metrics (bench no longer reports them): {missing}")
        failures.extend(missing)
    # The reverse hole: a metric the benches report but the baseline does
    # not track would sail through every future regression unexamined.
    untracked = sorted(set(fresh) - set(base))
    if untracked:
        print(f"UNTRACKED metrics (absent from the baseline): {untracked}")
        print("Refresh the baseline to start tracking them.")
        failures.extend(untracked)
    if failures:
        print(f"\nFAIL: {len(failures)} metric(s) regressed past "
              f"{THRESHOLD}x the checked-in baseline.")
        print("If this slowdown is intentional, refresh the baseline:")
        print("  python3 ci/check_perf.py --write-baseline "
              "ci/perf_baseline.json BENCH_lee.json BENCH_table1.json "
              "BENCH_giant.json")
        return 1
    print(f"\nOK: all {len(base)} metrics within {THRESHOLD}x of baseline.")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
