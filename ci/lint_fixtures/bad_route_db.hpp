// Negative fixture for ci/lint_search_purity.py — NOT built, NOT correct.
//
// A RouteDB whose mutators leaked into the public section and whose friend
// declaration was dropped. The lint's self-test asserts CHOKE-POINT fires
// on both defects.
#pragma once

namespace grr {

class RouteDB {
 public:
  void begin(int id);
  void add_via(int id);
  void commit(int id);

 private:
  void rip(int id);
};

}  // namespace grr
