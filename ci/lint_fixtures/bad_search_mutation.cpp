// Negative fixture for ci/lint_search_purity.py — NOT built, NOT correct.
//
// A "helper" a hurried refactor might drop into the search layer: it takes
// the board by non-const reference and mutates it outside RouteTransaction.
// The lint's self-test asserts this file trips SEARCH-NONCONST (the
// `LayerStack&` parameter) and SEARCH-MUT-CALL (the drill_via/insert_span
// call sites). If it stops tripping, the lint has gone blind.
#include "layer/layer_stack.hpp"

namespace grr {

int sneaky_search_helper(LayerStack& stack) {
  stack.drill_via({4, 4}, 7);
  stack.insert_span({0, 4, {1, 3}}, 7);
  return 0;
}

}  // namespace grr
