#!/usr/bin/env python3
"""Const-discipline lint for the search/commit split.

The engine layering (DESIGN.md) promises that planning is read-only: no code
reachable from the planner/search layer may mutate the board, and all board
mutation funnels through the RouteTransaction choke point. The compiler
enforces most of this through const, but const_cast, a leaked non-const
reference, or a mutator made public in a refactor would all slip through a
build. This lint re-checks the invariant structurally on every PR:

  SEARCH-LAYERING   The transitive include closure of the search roots
                    (planner, Lee search, BoardView, free-space walks) must
                    not pull in the commit layer (RouteTransaction,
                    BatchRouter) or anything above it (io/, check/).
  SEARCH-MUT-CALL   No file in the search closure may contain a member-call
                    site of a named board mutator (insert_span, drill_via,
                    add_hop, ...), except the structure owners themselves
                    (layer_stack.cpp implementing its own API is fine; the
                    planner calling it is not).
  SEARCH-NONCONST   No non-owner file in the search closure may declare a
                    non-const reference or pointer to a mutable board type
                    (LayerStack, RouteDB, Channel, ...). Generic-named
                    mutators (insert, erase, begin, commit, rip, inc, dec)
                    that SEARCH-MUT-CALL cannot match without type info are
                    covered here: they are uncallable without a non-const
                    object of the owning type.
  CHOKE-POINT       route_db.hpp must keep every RouteDB mutator declared
                    private and must befriend exactly RouteTransaction, so
                    the only path to board mutation stays the journaled one.
  MUT-LIST-STALE    Each mutator the lint greps for must still exist in its
                    expected owner header — a rename fails the lint loudly
                    instead of silently narrowing it.

Pure Python on purpose: libclang / clang-query are not available in every
environment that runs this (the CI container installs clang-tidy, developer
images may not), and the patterns above are stable enough for text-level
matching after comments and string literals are stripped.

Usage:
  lint_search_purity.py [--repo DIR]        lint src/ (exit 1 on findings)
  lint_search_purity.py --self-test         lint src/ AND require that the
                                            checked-in negative fixtures in
                                            ci/lint_fixtures/ still trip
                                            every rule
"""

import argparse
import os
import re
import sys

# Roots of the read-only search layer. The lint closes over their includes,
# so new search-side files are covered automatically.
SEARCH_ROOTS = [
    "route/planner.cpp",
    "route/lee.cpp",
    "layer/board_view.hpp",
    "layer/free_space.hpp",
]

# Files the search closure must never contain: the commit layer and
# everything above it. Prefix match against the src/-relative path.
FORBIDDEN_IN_CLOSURE = [
    "route/transaction",
    "route/batch_router",
    "io/",
    "check/",
    "workload/",
]

# Unambiguously named board mutators, keyed by the header that owns them.
# SEARCH-MUT-CALL flags `.name(` / `->name(` in non-owner closure files;
# MUT-LIST-STALE asserts the name still exists in the owner header.
MUTATORS = {
    "layer/layer_stack.hpp": [
        "insert_span",
        "erase_segment",
        "drill_via",
        "set_use_via_map",
    ],
    "route/route_db.hpp": [
        "add_via",
        "add_hop",
        "adopt_geometry",
        "try_putback",
        "install_geom",
        "link_tail",
    ],
    "layer/channel.hpp": [
        "flat_insert",
        "flat_erase",
        "flat_set_bits",
        "flat_clear_bits",
    ],
}

# Mutable board types: a non-const reference or pointer to one of these in
# non-owner search code is a mutation capability and fails SEARCH-NONCONST.
MUTABLE_TYPES = [
    "LayerStack",
    "RouteDB",
    "Layer",
    "Channel",
    "TreeChannel",
    "SegmentPool",
    "ViaMap",
]

# Structure owners: the files that implement the board types. They mutate
# their own state by definition and are exempt from the call/ref rules;
# what keeps them safe from search code is CHOKE-POINT (RouteDB) and the
# fact that their mutators need a non-const receiver (SEARCH-NONCONST).
OWNER_FILES = {
    "layer/layer_stack.hpp",
    "layer/layer_stack.cpp",
    "layer/layer.hpp",
    "layer/layer.cpp",
    "layer/channel.hpp",
    "layer/channel.cpp",
    "layer/tree_channel.hpp",
    "layer/tree_channel.cpp",
    "layer/segment_pool.hpp",
    "layer/segment_pool.cpp",
    "layer/via_map.hpp",
    "layer/via_map.cpp",
    "route/route_db.hpp",
    "route/route_db.cpp",
}

# RouteDB mutators that CHOKE-POINT requires to be declared private.
ROUTE_DB_MUTATORS = [
    "begin",
    "add_via",
    "add_hop",
    "commit",
    "abort",
    "rip",
    "try_putback",
    "adopt_geometry",
]

INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"', re.M)


def strip_code(text):
    """Remove comments, string and char literals (preserving newlines so
    reported line numbers stay correct)."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            i = n if j < 0 else j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append("\n" * text.count("\n", i, j))
            i = j
        elif c == '"' or c == "'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            i = min(j + 1, n)
            out.append(quote + quote)
        else:
            out.append(c)
            i += 1
    return "".join(out)


def read(path):
    with open(path, encoding="utf-8") as f:
        return f.read()


def closure(src_dir, roots):
    """Transitive include closure over src/-relative paths. Every reachable
    header drags in its paired .cpp (the linker makes that code callable
    even though no #include names it)."""
    seen = set()
    work = [r for r in roots if os.path.exists(os.path.join(src_dir, r))]
    while work:
        rel = work.pop()
        if rel in seen:
            continue
        seen.add(rel)
        path = os.path.join(src_dir, rel)
        for inc in INCLUDE_RE.findall(read(path)):
            if os.path.exists(os.path.join(src_dir, inc)):
                work.append(inc)
        if rel.endswith(".hpp"):
            pair = rel[:-4] + ".cpp"
            if os.path.exists(os.path.join(src_dir, pair)):
                work.append(pair)
    return sorted(seen)


def find_lines(code, pattern):
    """Yield (line_number, line_text) for every match of pattern."""
    for m in re.finditer(pattern, code):
        line_no = code.count("\n", 0, m.start()) + 1
        line = code.split("\n")[line_no - 1].strip()
        yield line_no, line


def lint_file(rel, code, findings):
    """Apply SEARCH-MUT-CALL and SEARCH-NONCONST to one closure file."""
    all_mutators = sorted({m for ms in MUTATORS.values() for m in ms})
    call_re = re.compile(
        r"(?:\.|->)\s*(" + "|".join(all_mutators) + r")\s*\(")
    for line_no, line in find_lines(code, call_re):
        findings.append(
            (rel, line_no, "SEARCH-MUT-CALL",
             f"search-layer code calls board mutator: {line}"))

    ref_re = re.compile(
        r"\b(" + "|".join(MUTABLE_TYPES) + r")\b\s*[&*](?!&)")
    for m in re.finditer(ref_re, code):
        before = code[:m.start()].rstrip()
        if before.endswith("const"):
            continue
        line_no = code.count("\n", 0, m.start()) + 1
        line = code.split("\n")[line_no - 1].strip()
        findings.append(
            (rel, line_no, "SEARCH-NONCONST",
             f"non-const {m.group(1)} reference/pointer in search code: "
             f"{line}"))


def check_choke_point(path, findings, rel="route/route_db.hpp"):
    """CHOKE-POINT: RouteDB mutators private, RouteTransaction befriended."""
    code = strip_code(read(path))
    if not re.search(r"\bfriend\s+class\s+RouteTransaction\s*;", code):
        findings.append(
            (rel, 1, "CHOKE-POINT",
             "route_db.hpp no longer befriends RouteTransaction — board "
             "mutation has lost its journaled choke point"))
    access = "public"  # class bodies here open with an explicit `public:`
    decl_res = [
        (name,
         re.compile(r"\b(?:void|bool)\s+" + name + r"\s*\("))
        for name in ROUTE_DB_MUTATORS
    ]
    for idx, raw_line in enumerate(code.split("\n"), start=1):
        line = raw_line.strip()
        if re.match(r"(public|protected|private)\s*:", line):
            access = line.split(":")[0].strip()
            continue
        for name, decl_re in decl_res:
            if decl_re.search(line) and access != "private":
                findings.append(
                    (rel, idx, "CHOKE-POINT",
                     f"RouteDB mutator `{name}` is declared {access}; it "
                     "must be private so only RouteTransaction reaches it"))


def check_mutator_list(src_dir, findings):
    """MUT-LIST-STALE: every greppable mutator still exists where expected."""
    for owner, names in MUTATORS.items():
        path = os.path.join(src_dir, owner)
        if not os.path.exists(path):
            findings.append(
                (owner, 1, "MUT-LIST-STALE",
                 "owner header missing — update MUTATORS in this lint"))
            continue
        code = strip_code(read(path))
        for name in names:
            if not re.search(r"\b" + name + r"\s*\(", code):
                findings.append(
                    (owner, 1, "MUT-LIST-STALE",
                     f"mutator `{name}` not found — renamed? update "
                     "MUTATORS in this lint"))


def lint_tree(src_dir):
    """Run every rule against src/. Returns the finding list."""
    findings = []
    files = closure(src_dir, SEARCH_ROOTS)
    missing_roots = [r for r in SEARCH_ROOTS
                     if not os.path.exists(os.path.join(src_dir, r))]
    for r in missing_roots:
        findings.append((r, 1, "SEARCH-LAYERING",
                         "search root missing — update SEARCH_ROOTS"))
    for rel in files:
        for bad in FORBIDDEN_IN_CLOSURE:
            if rel.startswith(bad):
                findings.append(
                    (rel, 1, "SEARCH-LAYERING",
                     "commit/upper-layer file reachable from the search "
                     "roots' include closure"))
    for rel in files:
        if rel in OWNER_FILES:
            continue
        lint_file(rel, strip_code(read(os.path.join(src_dir, rel))),
                  findings)
    check_choke_point(os.path.join(src_dir, "route/route_db.hpp"), findings)
    check_mutator_list(src_dir, findings)
    return findings, files


def report(findings):
    for rel, line_no, rule, msg in findings:
        print(f"src/{rel}:{line_no}: [{rule}] {msg}")


def self_test(repo, src_dir):
    """The negative fixtures must trip their rules; src/ must stay clean."""
    fix_dir = os.path.join(repo, "ci", "lint_fixtures")
    failures = []

    bad_search = os.path.join(fix_dir, "bad_search_mutation.cpp")
    findings = []
    lint_file("ci/lint_fixtures/bad_search_mutation.cpp",
              strip_code(read(bad_search)), findings)
    rules = {f[2] for f in findings}
    for want in ("SEARCH-MUT-CALL", "SEARCH-NONCONST"):
        if want not in rules:
            failures.append(f"fixture bad_search_mutation.cpp did not trip "
                            f"{want}")

    bad_db = os.path.join(fix_dir, "bad_route_db.hpp")
    findings = []
    check_choke_point(bad_db, findings,
                      rel="ci/lint_fixtures/bad_route_db.hpp")
    if not any(f[2] == "CHOKE-POINT" for f in findings):
        failures.append("fixture bad_route_db.hpp did not trip CHOKE-POINT")

    if failures:
        for f in failures:
            print(f"SELF-TEST FAIL: {f}")
        return 1
    print("self-test: all negative fixtures trip their rules")
    return 0


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--repo", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    ap.add_argument("--self-test", action="store_true")
    args = ap.parse_args(argv)

    src_dir = os.path.join(args.repo, "src")
    findings, files = lint_tree(src_dir)
    if findings:
        report(findings)
        print(f"\nFAIL: {len(findings)} const-discipline finding(s) across "
              f"a {len(files)}-file search closure.")
        return 1
    print(f"OK: search closure ({len(files)} files) is mutation-free; "
          "RouteDB choke point intact.")

    if args.self_test:
        return self_test(args.repo, src_dir)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
