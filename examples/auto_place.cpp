// Automatic placement ahead of routing.
//
// The Titan coprocessor's placement was produced manually over months
// (paper Sec 13); this example shows the automatic equivalent: the same
// netlist is placed once naively (cells in netlist order) and once by
// simulated annealing, then both placements are routed. The annealed
// placement yields a much shorter problem and an easier route.
#include <chrono>
#include <iostream>
#include <random>

#include "board/board.hpp"
#include "place/placer.hpp"
#include "route/audit.hpp"
#include "route/router.hpp"
#include "stringer/stringer.hpp"
#include "workload/board_gen.hpp"

using namespace grr;

namespace {

constexpr int kCellsX = 6, kCellsY = 4;
constexpr int kCells = kCellsX * kCellsY;
constexpr int kBusesPerCell = 2;
constexpr int kBusBits = 4;

/// Cell-level connectivity: each cell drives a few 4-bit buses to other
/// cells (a ring plus random chords, like datapath slices).
std::vector<PlaceNet> make_cell_netlist(std::uint32_t seed) {
  std::vector<PlaceNet> nets;
  std::mt19937 rng(seed);
  for (int c = 0; c < kCells; ++c) {
    nets.push_back({{c, (c + 1) % kCells}, 1.0});  // ring
    for (int b = 1; b < kBusesPerCell; ++b) {
      int to = static_cast<int>(rng() % kCells);
      if (to != c) nets.push_back({{c, to}, 1.0});
    }
  }
  return nets;
}

struct RunOutcome {
  long manhattan = 0;
  int routed = 0, total = 0;
  double pct_lee = 0;
  double sec = 0;
};

/// Build a board with the given cell placement and route it.
RunOutcome build_and_route(const std::vector<PlaceNet>& cell_nets,
                           const std::vector<Point>& site_of_cell) {
  GridSpec spec(61, 51);  // 6 x 5 inches
  Board board(spec, 4);
  int dip = board.add_footprint(Footprint::dip(24, 3));

  std::vector<PartId> part_of_cell;
  std::vector<int> next_pin(kCells, 1);  // pin 0 reserved as power
  for (int c = 0; c < kCells; ++c) {
    Point site = site_of_cell[static_cast<std::size_t>(c)];
    Point origin{3 + site.x * 9, 3 + site.y * 12};
    part_of_cell.push_back(
        board.add_part("U" + std::to_string(c), dip, origin));
  }
  for (const PlaceNet& cn : cell_nets) {
    for (int bit = 0; bit < kBusBits; ++bit) {
      Net net;
      net.klass = SignalClass::kTTL;  // keep it simple: no terminators
      net.name = "N" + std::to_string(board.netlist().nets.size());
      bool ok = true;
      for (std::size_t k = 0; k < cn.cells.size(); ++k) {
        int cell = cn.cells[k];
        if (next_pin[static_cast<std::size_t>(cell)] >= 23) {
          ok = false;
          break;
        }
        NetPin np;
        np.part = part_of_cell[static_cast<std::size_t>(cell)];
        np.pin = next_pin[static_cast<std::size_t>(cell)]++;
        np.role = k == 0 ? PinRole::kOutput : PinRole::kInput;
        net.pins.push_back(np);
      }
      if (ok) board.netlist().add(std::move(net));
    }
  }

  StringingResult strung = string_nets(board);
  Router router(board.stack());
  auto t0 = std::chrono::steady_clock::now();
  router.route_all(strung.connections);
  auto t1 = std::chrono::steady_clock::now();

  RunOutcome out;
  out.manhattan = strung.total_manhattan;
  out.routed = router.stats().routed;
  out.total = router.stats().total;
  out.pct_lee = router.stats().pct_lee();
  out.sec = std::chrono::duration<double>(t1 - t0).count();
  CheckReport audit =
      audit_all(board.stack(), router.db(), strung.connections);
  if (!audit.ok()) std::cout << "AUDIT: " << audit.first_error() << "\n";
  return out;
}

}  // namespace

int main() {
  std::vector<PlaceNet> cell_nets = make_cell_netlist(17);

  PlacementProblem prob;
  prob.sites_x = kCellsX;
  prob.sites_y = kCellsY;
  prob.num_cells = kCells;
  prob.nets = cell_nets;

  // Naive: cells dropped onto sites in index order.
  std::vector<Point> naive(kCells);
  for (int c = 0; c < kCells; ++c) {
    naive[static_cast<std::size_t>(c)] = {c % kCellsX, c / kCellsX};
  }
  PlacementResult annealed = place_anneal(prob);

  std::cout << "cell-level HPWL: naive " << placement_hpwl(prob, naive)
            << ", annealed " << annealed.final_hpwl << " ("
            << annealed.moves_accepted << "/" << annealed.moves_tried
            << " moves accepted)\n\n";

  RunOutcome a = build_and_route(cell_nets, naive);
  RunOutcome b = build_and_route(cell_nets, annealed.site_of_cell);
  std::cout << "naive placement  : " << a.routed << "/" << a.total
            << " routed, Manhattan " << a.manhattan << " via units, %lee "
            << a.pct_lee << ", " << a.sec << " s\n";
  std::cout << "annealed placement: " << b.routed << "/" << b.total
            << " routed, Manhattan " << b.manhattan << " via units, %lee "
            << b.pct_lee << ", " << b.sec << " s\n";
  std::cout << "\nwirelength ratio "
            << static_cast<double>(a.manhattan) / b.manhattan << "x\n";
  return b.routed == b.total ? 0 : 1;
}
