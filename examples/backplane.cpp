// A backplane scenario: the Titan's 15x15-inch backplane carried the buses
// between board slots (paper Sec 9). Two columns of high-pin-count slot
// connectors are wired with bit-parallel buses; slot-to-slot nets are long
// and highly parallel, exactly where the channel representation and the
// sorted connection order shine.
#include <chrono>
#include <iostream>

#include "board/board.hpp"
#include "report/pattern_stats.hpp"
#include "route/audit.hpp"
#include "route/router.hpp"
#include "stringer/stringer.hpp"

using namespace grr;

int main() {
  GridSpec spec(151, 151);  // 15 x 15 inches
  Board board(spec, 6);

  // Four slots per column, 96-pin (4x24) connectors.
  int conn96 = board.add_footprint(Footprint::connector(4, 24));
  std::vector<PartId> left, right;
  for (int s = 0; s < 4; ++s) {
    left.push_back(board.add_part("SLOTL" + std::to_string(s), conn96,
                                  {12, 6 + s * 34}));
    right.push_back(board.add_part("SLOTR" + std::to_string(s), conn96,
                                   {132, 6 + s * 34}));
  }

  // Buses: every left slot drives a 24-bit bus to every right slot, plus
  // daisy chains down each column.
  auto bus = [&](PartId from, PartId to, int from_base, int to_base,
                 int bits) {
    for (int b = 0; b < bits; ++b) {
      Net net;
      net.klass = SignalClass::kTTL;
      net.name = "B" + std::to_string(board.netlist().nets.size());
      net.pins.push_back({from, from_base + b, PinRole::kOutput});
      net.pins.push_back({to, to_base + b, PinRole::kInput});
      board.netlist().add(std::move(net));
    }
  };
  // Pins 0..47 carry the cross buses, 48..55 the daisy-chain outputs,
  // 56..63 the daisy-chain inputs; 64..95 stay free for power/spares.
  for (int s = 0; s < 4; ++s) {
    for (int d = 0; d < 4; ++d) {
      bus(left[static_cast<std::size_t>(s)],
          right[static_cast<std::size_t>(d)], d * 12, s * 12, 12);
    }
    if (s + 1 < 4) {
      bus(left[static_cast<std::size_t>(s)],
          left[static_cast<std::size_t>(s + 1)], 48, 56, 8);
      bus(right[static_cast<std::size_t>(s)],
          right[static_cast<std::size_t>(s + 1)], 48, 56, 8);
    }
  }

  StringingResult strung = string_nets(board);
  std::cout << "backplane: " << board.parts().size() << " slot connectors, "
            << board.total_pins() << " pins, "
            << strung.connections.size() << " connections\n";

  Router router(board.stack());
  auto t0 = std::chrono::steady_clock::now();
  bool ok = router.route_all(strung.connections);
  auto t1 = std::chrono::steady_clock::now();
  const RouterStats& st = router.stats();
  std::cout << (ok ? "routed all " : "INCOMPLETE: ") << st.routed << "/"
            << st.total << " in "
            << std::chrono::duration<double>(t1 - t0).count() << " s ("
            << st.pct_optimal() << "% optimal, " << st.vias_per_conn()
            << " vias/conn)\n";

  CheckReport audit =
      audit_all(board.stack(), router.db(), strung.connections);
  std::cout << "audit: " << (audit.ok() ? "clean" : "VIOLATIONS") << "\n";
  print_pattern_stats(std::cout,
                      analyze_patterns(board.stack(), router.db(),
                                       strung.connections));
  return ok && audit.ok() ? 0 : 1;
}
