// Clock distribution with length tuning (paper Sec 10.1, Figs 16-17).
//
// All clock pulses derive from a single oscillator at the root of a tree of
// nets joined by buffers. Clock pulses must reach every register
// simultaneously, so the trace delays at each level of the tree are
// equalized: every branch is tuned to the delay of the slowest branch.
// In common epoxy/glass boards signals travel ~6 in/ns, so tuning to a few
// tens of mils adjusts delays by hundreds of picoseconds.
#include <algorithm>
#include <iostream>
#include <vector>

#include "board/board.hpp"
#include "route/audit.hpp"
#include "route/router.hpp"
#include "tune/length_tuner.hpp"

using namespace grr;

int main() {
  GridSpec spec(101, 81);  // 10 x 8 inch board
  Board board(spec, 6);
  int sip2 = board.add_footprint(Footprint::sip(2));

  // One oscillator driving four buffers at different distances; each buffer
  // output pin is pin 1 of its part (pin 0 is the input).
  PartId osc = board.add_part("OSC", sip2, {50, 40});
  const Point buf_at[4] = {{20, 15}, {78, 18}, {25, 62}, {70, 60}};
  std::vector<PartId> bufs;
  for (int i = 0; i < 4; ++i) {
    bufs.push_back(board.add_part("BUF" + std::to_string(i), sip2,
                                  buf_at[i]));
  }

  // Root-level connections: oscillator output to each buffer input.
  ConnectionList conns;
  for (int i = 0; i < 4; ++i) {
    Connection c;
    c.id = i;
    c.a = board.pin_via(osc, 1);
    c.b = board.pin_via(bufs[static_cast<std::size_t>(i)], 0);
    conns.push_back(c);
  }

  Router router(board.stack(), RouterConfig{});
  if (!router.route_all(conns)) {
    std::cout << "routing failed\n";
    return 1;
  }

  DelayModel model;
  model.num_layers = 6;
  auto report = [&](const char* when) {
    std::cout << when << ":\n";
    double lo = 1e9, hi = 0;
    for (const Connection& c : conns) {
      double ns = model.route_delay_ns(spec, router.db().rec(c.id).geom);
      lo = std::min(lo, ns);
      hi = std::max(hi, ns);
      std::cout << "  OSC -> BUF" << c.id << ": " << ns * 1000 << " ps\n";
    }
    std::cout << "  skew: " << (hi - lo) * 1000 << " ps\n";
    return hi;
  };
  double slowest = report("untuned branch delays");

  // Tune every branch to the slowest branch's delay (plus a hair of slack
  // so the slowest branch itself is already in tolerance).
  const double tol = 0.015;
  int tuned = equalize_delays(router, conns, model, tol);
  std::cout << "\ntuned " << tuned << "/4 branches to "
            << (slowest + tol) * 1000 << " ps (+-" << tol * 1000
            << " ps)\n\n";
  report("tuned branch delays");

  CheckReport audit = audit_all(board.stack(), router.db(), conns);
  std::cout << "\naudit: " << (audit.ok() ? "clean" : "VIOLATIONS") << "\n";
  return tuned == 4 && audit.ok() ? 0 : 1;
}
