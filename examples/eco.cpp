// Engineering-change flow: logic revisions on a routed board.
//
// The paper's practice was blunt: "Logic revisions were always made by
// re-routing the entire board, never by manual wiring fixes" (Sec 9) —
// total re-route was cheap enough. This example shows both options on a
// revision that adds nets to a finished board:
//
//   1. full re-route of the revised netlist (the paper's way), and
//   2. incremental ECO: reload the shipped metal from a saved routes file
//      and route only the new connections around it (the shipped routes
//      are not rippable in the incremental pass, so nothing that already
//      shipped moves).
#include <chrono>
#include <iostream>

#include "io/route_io.hpp"
#include "route/audit.hpp"
#include "route/router.hpp"
#include "stringer/stringer.hpp"
#include "workload/board_gen.hpp"

using namespace grr;

namespace {

BoardGenParams base_params() {
  BoardGenParams p;
  p.name = "eco";
  p.width_in = 6;
  p.height_in = 5;
  p.layers = 4;
  p.target_connections = 500;
  p.locality = 0.3;
  p.seed = 31;
  return p;
}

/// The revision: a handful of new two-pin nets between existing DIPs.
/// Appending nets keeps the original connections' ids stable (the
/// stringer output for the old nets is a prefix of the new output).
void add_revision_nets(Board& board) {
  int added = 0;
  for (std::size_t pi = 0; pi + 10 < board.parts().size() && added < 6;
       pi += 4) {
    const Part& pa = board.parts()[pi];
    const Part& pb = board.parts()[pi + 10];
    if (board.footprint(pa.footprint).pin_count() < 24 ||
        board.footprint(pb.footprint).pin_count() < 24) {
      continue;  // resistor packs are not logic parts
    }
    Net net;
    net.klass = SignalClass::kTTL;
    net.name = "ECO" + std::to_string(added);
    net.pins.push_back(
        {static_cast<PartId>(pi), 1 + added, PinRole::kOutput});
    net.pins.push_back(
        {static_cast<PartId>(pi + 10), 22 - added, PinRole::kInput});
    board.netlist().add(std::move(net));
    ++added;
  }
}

}  // namespace

int main() {
  // Ship the original board and save its routes.
  GeneratedBoard original = generate_board(base_params());
  Router router0(original.board->stack());
  router0.route_all(original.strung.connections);
  const std::size_t shipped = original.strung.connections.size();
  std::string saved =
      write_routes_string(router0.db(), original.strung.connections);
  std::cout << "shipped board: " << router0.stats().routed << "/"
            << router0.stats().total << " routed, routes saved\n\n";

  // Option 1: the paper's way — revise the netlist, re-route everything.
  {
    GeneratedBoard rev = generate_board(base_params());
    add_revision_nets(*rev.board);
    StringingResult strung = string_nets(*rev.board);
    Router router(rev.board->stack());
    auto t0 = std::chrono::steady_clock::now();
    bool ok = router.route_all(strung.connections);
    auto t1 = std::chrono::steady_clock::now();
    CheckReport audit =
        audit_all(rev.board->stack(), router.db(), strung.connections);
    std::cout << "full re-route: " << router.stats().routed << "/"
              << router.stats().total << (ok ? "" : " INCOMPLETE") << " in "
              << std::chrono::duration<double>(t1 - t0).count()
              << " s, audit " << (audit.ok() ? "clean" : "VIOLATIONS")
              << "\n";
  }

  // Option 2: incremental ECO.
  {
    GeneratedBoard rev = generate_board(base_params());
    add_revision_nets(*rev.board);
    StringingResult strung = string_nets(*rev.board);

    // Reload the shipped metal exactly where it was.
    RoutesReadResult rr = read_routes_string(saved);
    RouteDB shipped_db(strung.connections.size());
    int installed = install_routes(rev.board->stack(), shipped_db,
                                   rr.routes);

    // Route only the new connections; the shipped metal belongs to another
    // database, so the incremental pass cannot rip it up.
    ConnectionList fresh(strung.connections.begin() +
                             static_cast<long>(shipped),
                         strung.connections.end());
    Router eco(rev.board->stack());
    auto t0 = std::chrono::steady_clock::now();
    bool ok = eco.route_all(fresh);
    auto t1 = std::chrono::steady_clock::now();

    ConnectionList shipped_conns(strung.connections.begin(),
                                 strung.connections.begin() +
                                     static_cast<long>(shipped));
    CheckReport a1 =
        audit_all(rev.board->stack(), shipped_db, shipped_conns);
    CheckReport a2 = audit_all(rev.board->stack(), eco.db(), fresh);
    std::cout << "incremental  : kept " << installed
              << " shipped routes untouched, routed " << fresh.size()
              << " new in "
              << std::chrono::duration<double>(t1 - t0).count() << " s"
              << (ok ? "" : " INCOMPLETE") << ", audit "
              << (a1.ok() && a2.ok() ? "clean" : "VIOLATIONS") << "\n";
  }
  return 0;
}
