// grr_check — the static-analysis front end: run the whole checker
// battery (netlist lint, router-state audits, geometric DRC) over a
// problem file and, optionally, a routes file, without executing the
// router.
//
//   grr_check <problem.grr> [routes.grr] [options]
//       --only NAME[,NAME...]   run only the named checkers (see --list)
//       --strict                warnings also fail the run
//       --max-findings N        cap the number of reported findings
//       --list                  list registered checkers and exit
//
// Findings are printed one per line in a machine-readable form:
//
//   <file>:<rule>:<severity>:<location>: <message>
//
// Exit status: 0 = clean, 1 = findings (errors, or any finding with
// --strict), 2 = usage or I/O error.
//
// With a routes file, the DRC engine checks the *claimed* geometry before
// anything is installed — exactly what one wants to know about a file one
// is about to trust — and the audits then re-check the stack after a fresh
// install of the same file.
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "check/registry.hpp"
#include "io/problem_io.hpp"
#include "io/route_io.hpp"
#include "stringer/stringer.hpp"

using namespace grr;

namespace {

int usage() {
  std::cerr << "usage: grr_check <problem.grr> [routes.grr] "
               "[--only NAME[,NAME...]] [--strict] [--max-findings N] "
               "[--list]\n";
  return 2;
}

std::vector<std::string> split_names(const char* arg) {
  std::vector<std::string> out;
  std::string cur;
  for (const char* p = arg;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
      if (*p == '\0') break;
    } else {
      cur.push_back(*p);
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const char* problem_path = nullptr;
  const char* routes_path = nullptr;
  std::vector<std::string> only;
  bool strict = false;
  bool list = false;
  DrcOptions drc;

  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--only") && i + 1 < argc) {
      only = split_names(argv[++i]);
    } else if (!std::strcmp(argv[i], "--strict")) {
      strict = true;
    } else if (!std::strcmp(argv[i], "--max-findings") && i + 1 < argc) {
      drc.max_findings = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (!std::strcmp(argv[i], "--list")) {
      list = true;
    } else if (argv[i][0] == '-') {
      std::cerr << "unknown option " << argv[i] << "\n";
      return usage();
    } else if (problem_path == nullptr) {
      problem_path = argv[i];
    } else if (routes_path == nullptr) {
      routes_path = argv[i];
    } else {
      return usage();
    }
  }

  CheckSuite suite = CheckSuite::standard();
  if (list) {
    for (const Checker& c : suite.checkers()) {
      std::cout << c.name << "\t" << c.description << "\n";
    }
    return 0;
  }
  if (problem_path == nullptr) return usage();

  ProblemReadResult pr = read_problem(problem_path);
  if (!pr.ok()) {
    std::cerr << "grr_check: " << problem_path << ": " << pr.error << "\n";
    return 2;
  }
  StringingResult strung = string_nets(*pr.board);

  CheckContext ctx;
  ctx.board = pr.board.get();
  ctx.conns = &strung.connections;
  ctx.drc = drc;
  if (!pr.tiles.tiles().empty()) ctx.tiles = &pr.tiles;

  RoutesReadResult rr;
  RouteDB db(0);
  if (routes_path != nullptr) {
    rr = read_routes(routes_path);
    if (!rr.ok()) {
      std::cerr << "grr_check: " << routes_path << ": " << rr.error << "\n";
      return 2;
    }
    ctx.routes = &rr.routes;
    // Re-install the claims on the fresh board so the audit checkers can
    // re-derive every structural invariant from the stack itself.
    std::size_t db_size = strung.connections.size();
    for (const SavedRoute& sr : rr.routes) {
      db_size = std::max(db_size, static_cast<std::size_t>(sr.id) + 1);
    }
    db = RouteDB(db_size);
    install_routes(pr.board->stack(), db, rr.routes);
    ctx.db = &db;
  }

  CheckReport rep = suite.run(ctx, only);

  for (const Finding& f : rep.findings) {
    const bool about_problem =
        f.rule.rfind("LINT-", 0) == 0 || routes_path == nullptr;
    std::cout << (about_problem ? problem_path : routes_path) << ":"
              << format_finding(f) << "\n";
  }
  std::cerr << "grr_check: " << rep.error_count() << " errors, "
            << rep.warning_count() << " warnings (" << rep.segments_checked
            << " segments, " << rep.connections_checked
            << " connections checked)\n";

  if (rep.error_count() > 0) return 1;
  if (strict && !rep.findings.empty()) return 1;
  return 0;
}
