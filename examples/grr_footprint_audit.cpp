// grr_footprint_audit — route the Table 1 suite with the shadow access
// tracker on and hold every speculative plan to its declared ReadFootprint.
//
//   grr_footprint_audit [options]
//       --scale S        suite scale (default 1.0 = the paper's boards)
//       --board NAME     one Table 1 row instead of the whole suite
//       --threads LIST   comma list of worker counts (default 1,4)
//       --slack-ratio R  FOOT-SLACK threshold (default 64)
//       --verbose        print every finding, not just the first
//
// For every board x thread count x channel store, the batch router runs
// with access auditing enabled, the FOOT-* checkers compare declared
// against actual, and a tightness summary (read area / declared area per
// audited plan) quantifies the over-conservatism that will throttle
// footprint-based sharding (ROADMAP item 2; numbers in EXPERIMENTS.md).
//
// Exit status: 0 = no read/write escapes anywhere, 1 = any escape.
#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "check/footprint_check.hpp"
#include "route/batch_router.hpp"
#include "workload/suite.hpp"

using namespace grr;

namespace {

int usage() {
  std::cerr << "usage: grr_footprint_audit [--scale S] [--board NAME] "
               "[--threads LIST] [--slack-ratio R] [--verbose]\n";
  return 2;
}

struct Tightness {
  std::size_t plans = 0;    // audited plans with a bounded declaration
  double sum_ratio = 0;     // sum of read/declared area ratios
  double min_ratio = 1.0;
  std::vector<double> ratios;

  void note(double r) {
    ++plans;
    sum_ratio += r;
    min_ratio = std::min(min_ratio, r);
    ratios.push_back(r);
  }
  double mean() const { return plans == 0 ? 1.0 : sum_ratio / plans; }
  double percentile(double p) {
    if (ratios.empty()) return 1.0;
    std::sort(ratios.begin(), ratios.end());
    std::size_t i = static_cast<std::size_t>(p * (ratios.size() - 1));
    return ratios[i];
  }
};

}  // namespace

int main(int argc, char** argv) {
  double scale = 1.0;
  double slack_ratio = 64.0;
  std::string board;
  std::vector<int> threads = {1, 4};
  bool verbose = false;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc) {
      scale = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--board") == 0 && i + 1 < argc) {
      board = argv[++i];
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads.clear();
      for (const char* p = argv[++i]; *p != '\0';) {
        threads.push_back(std::atoi(p));
        while (*p != '\0' && *p != ',') ++p;
        if (*p == ',') ++p;
      }
    } else if (std::strcmp(argv[i], "--slack-ratio") == 0 && i + 1 < argc) {
      slack_ratio = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      verbose = true;
    } else {
      return usage();
    }
  }

  std::vector<BoardGenParams> suite;
  if (board.empty()) {
    suite = table1_suite(scale);
  } else {
    suite.push_back(table1_board(board, scale));
  }

  FootprintCheckOptions opts;
  opts.slack_ratio = slack_ratio;

  long escapes = 0;
  std::size_t total_plans = 0;
  Tightness overall;
  for (const BoardGenParams& base : suite) {
    for (int nthreads : threads) {
      for (ChannelStore store :
           {ChannelStore::kList, ChannelStore::kFlat}) {
        BoardGenParams params = base;
        params.channel_store = store;
        GeneratedBoard gb = generate_board(params);

        RouterConfig cfg;
        cfg.threads = nthreads;
        cfg.access_audit = true;
        BatchRouter br(gb.board->stack(), cfg);
        br.route_all(gb.strung.connections);

        const FootprintAuditLog& log = br.footprint_log();
        CheckReport rep = check_footprints(log, opts);
        const std::size_t read_esc = rep.count_rule("FOOT-READ-ESCAPE");
        const std::size_t write_esc = rep.count_rule("FOOT-WRITE-ESCAPE");
        const std::size_t slack = rep.count_rule("FOOT-SLACK");
        escapes += static_cast<long>(read_esc + write_esc);
        total_plans += log.records.size();

        Tightness tight;
        for (const PlanAuditRecord& rec : log.records) {
          if (!rec.found || rec.declared.everything || rec.reads.empty()) {
            continue;
          }
          const std::int64_t da = union_area(
              footprint_cover_rects(rec.declared, log.extent));
          const std::int64_t ra = union_area(rec.reads);
          if (da <= 0) continue;
          const double r =
              static_cast<double>(ra) / static_cast<double>(da);
          tight.note(r);
          overall.note(r);
        }

        std::cout << base.name << " store="
                  << (store == ChannelStore::kFlat ? "flat" : "list")
                  << " threads=" << nthreads << ": plans="
                  << log.records.size() << " installed="
                  << br.batch_stats().installed << " read-escapes="
                  << read_esc << " write-escapes=" << write_esc
                  << " slack-warnings=" << slack;
        if (tight.plans > 0) {
          std::cout << " tightness mean=" << tight.mean()
                    << " p10=" << tight.percentile(0.10)
                    << " min=" << tight.min_ratio;
        }
        std::cout << "\n";
        if (verbose || read_esc + write_esc > 0) {
          for (const Finding& f : rep.findings) {
            std::cout << "  " << format_finding(f) << "\n";
          }
        }
      }
    }
  }

  std::cout << "total: " << total_plans << " plans audited, " << escapes
            << " escapes";
  if (overall.plans > 0) {
    std::cout << "; tightness (read/declared area) mean=" << overall.mean()
              << " p10=" << overall.percentile(0.10)
              << " min=" << overall.min_ratio << " over " << overall.plans
              << " bounded plans";
  }
  std::cout << "\n";
  return escapes == 0 ? 0 : 1;
}
