// grr_tool — a command-line driver around the library, the shape a
// downstream user consumes:
//
//   grr_tool gen <table1-board|name> <problem.grr> [scale]
//       Generate a synthetic problem file (e.g. "coproc-6L", scale 0.5).
//
//   grr_tool route <problem.grr> [options]
//       Route a problem file fully automatically.
//       --radius N        radius control parameter (default 1)
//       --routes FILE     write the realized routes
//       --svg PREFIX      write PREFIX_layerK.svg for every signal layer,
//                         plus PREFIX_problem.svg
//       --gerber PREFIX   write RS-274X Gerbers (layers + power planes)
//       --html FILE       write a self-contained HTML board report
//       --improve         run the post-route cleanup pass
//       --report          print the per-strategy profile and pattern stats
//
//   grr_tool check <problem.grr> <routes.grr>
//       Re-install saved routes on a fresh board and audit every invariant.
//
//   grr_tool stats <problem.grr> <routes.grr>
//       Pattern statistics (Sec 12) of a saved routing.
#include <cstring>
#include <iostream>

#include "board/lint.hpp"
#include "io/problem_io.hpp"
#include "io/route_io.hpp"
#include "report/gerber.hpp"
#include "report/html_report.hpp"
#include "report/pattern_stats.hpp"
#include "report/svg.hpp"
#include "route/audit.hpp"
#include "route/improve.hpp"
#include "route/mixed.hpp"
#include "route/router.hpp"
#include "stringer/stringer.hpp"
#include "workload/suite.hpp"

using namespace grr;

namespace {

int cmd_gen(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: grr_tool gen <board-name> <out.grr> [scale]\n"
              << "       grr_tool gen custom <out.grr> <w_in> <h_in> "
                 "<layers> <connections> [locality] [seed]\n";
    return 2;
  }
  GeneratedBoard gb;
  if (!std::strcmp(argv[0], "custom")) {
    if (argc < 6) {
      std::cerr << "usage: grr_tool gen custom <out.grr> <w_in> <h_in> "
                   "<layers> <connections> [locality] [seed]\n";
      return 2;
    }
    BoardGenParams p;
    p.name = "custom";
    p.width_in = std::atof(argv[2]);
    p.height_in = std::atof(argv[3]);
    p.layers = std::atoi(argv[4]);
    p.target_connections = std::atoi(argv[5]);
    if (argc > 6) p.locality = std::atof(argv[6]);
    if (argc > 7) p.seed = static_cast<std::uint32_t>(std::atoi(argv[7]));
    if (p.width_in < 1 || p.height_in < 1 || p.layers < 1 ||
        p.layers > 64) {
      std::cerr << "bad custom board parameters\n";
      return 2;
    }
    gb = generate_board(p);
  } else {
    double scale = argc > 2 ? std::atof(argv[2]) : 1.0;
    gb = generate_board(table1_board(argv[0], scale));
  }
  if (!write_problem(*gb.board, argv[1])) {
    std::cerr << "cannot write " << argv[1] << "\n";
    return 1;
  }
  std::cout << "wrote " << argv[1] << ": " << gb.board->parts().size()
            << " parts, " << gb.board->netlist().nets.size() << " nets, "
            << gb.strung.connections.size() << " connections after "
            << "stringing, %chan " << gb.pct_chan << "\n";
  return 0;
}

int cmd_route(int argc, char** argv) {
  if (argc < 1) {
    std::cerr << "usage: grr_tool route <problem.grr> [options]\n";
    return 2;
  }
  ProblemReadResult pr = read_problem(argv[0]);
  if (!pr.ok()) {
    std::cerr << "parse error: " << pr.error << "\n";
    return 1;
  }
  RouterConfig cfg;
  const char* routes_path = nullptr;
  const char* svg_prefix = nullptr;
  const char* gerber_prefix = nullptr;
  const char* html_path = nullptr;
  bool report = false;
  bool improve = false;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--radius") && i + 1 < argc) {
      cfg.radius = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--routes") && i + 1 < argc) {
      routes_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--svg") && i + 1 < argc) {
      svg_prefix = argv[++i];
    } else if (!std::strcmp(argv[i], "--gerber") && i + 1 < argc) {
      gerber_prefix = argv[++i];
    } else if (!std::strcmp(argv[i], "--html") && i + 1 < argc) {
      html_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--report")) {
      report = true;
    } else if (!std::strcmp(argv[i], "--improve")) {
      improve = true;
    } else {
      std::cerr << "unknown option " << argv[i] << "\n";
      return 2;
    }
  }

  Board& board = *pr.board;
  CheckReport lint = lint_netlist(board);
  for (const std::string& w : lint.warnings()) {
    std::cerr << "lint warning: " << w << "\n";
  }
  if (!lint.ok()) {
    for (const std::string& e : lint.errors()) {
      std::cerr << "lint error: " << e << "\n";
    }
    return 1;
  }
  StringingResult strung = string_nets(board);
  // Tesselated boards route as two superimposed problems (Sec 10.2).
  if (!pr.tiles.tiles().empty()) {
    MixedRouteResult mixed =
        route_mixed(board.stack(), pr.tiles, strung.connections, cfg);
    std::cout << "mixed board: ECL "
              << mixed.ecl->stats().routed << "/"
              << mixed.ecl->stats().total << ", TTL "
              << mixed.ttl->stats().routed << "/"
              << mixed.ttl->stats().total
              << (mixed.ok ? "" : " INCOMPLETE") << "\n";
    CheckReport am1 = audit_all(board.stack(), mixed.ecl->db(),
                                mixed.ecl_conns, &pr.tiles);
    CheckReport am2 = audit_all(board.stack(), mixed.ttl->db(),
                                mixed.ttl_conns, &pr.tiles);
    std::cout << "audit: "
              << (am1.ok() && am2.ok() ? "clean" : "VIOLATIONS") << "\n";
    return mixed.ok && am1.ok() && am2.ok() ? 0 : 1;
  }
  Router router(board.stack(), cfg);
  bool ok = router.route_all(strung.connections);
  if (improve) {
    ImproveStats ist = improve_routes(router, strung.connections, 2);
    std::cout << "improvement pass: " << ist.improved << " connections "
              << "improved, vias " << ist.vias_before << " -> "
              << ist.vias_after << "\n";
  }
  const RouterStats& st = router.stats();
  std::cout << (ok ? "routed " : "INCOMPLETE: ") << st.routed << "/"
            << st.total << " connections (" << st.pct_optimal()
            << "% optimal, " << st.pct_lee() << "% lee, " << st.rip_ups
            << " rip-ups, " << st.vias_per_conn() << " vias/conn)\n";

  CheckReport audit =
      audit_all(board.stack(), router.db(), strung.connections);
  if (!audit.ok()) {
    std::cerr << "AUDIT FAILED: " << audit.first_error() << "\n";
    return 1;
  }
  if (report) {
    std::cout << "strategy profile: zero-via " << st.sec_zero_via
              << " s, one-via " << st.sec_one_via << " s, lee " << st.sec_lee
              << " s, rip-up " << st.sec_ripup << " s, put-back "
              << st.sec_putback << " s\n";
    print_pattern_stats(
        std::cout,
        analyze_patterns(board.stack(), router.db(), strung.connections));
  }
  if (routes_path) {
    if (!write_routes(router.db(), strung.connections, routes_path)) {
      std::cerr << "cannot write " << routes_path << "\n";
      return 1;
    }
    std::cout << "wrote " << routes_path << "\n";
  }
  if (svg_prefix) {
    std::string prefix = svg_prefix;
    write_file(prefix + "_problem.svg",
               svg_string_art(board, strung.connections));
    for (int l = 0; l < board.stack().num_layers(); ++l) {
      write_file(prefix + "_layer" + std::to_string(l) + ".svg",
                 svg_signal_layer(board, router.db(), strung.connections,
                                  static_cast<LayerId>(l)));
    }
    std::cout << "wrote " << prefix << "_problem.svg and "
              << board.stack().num_layers() << " layer SVGs\n";
  }
  if (gerber_prefix) {
    std::string prefix = gerber_prefix;
    for (int l = 0; l < board.stack().num_layers(); ++l) {
      write_file(prefix + "_layer" + std::to_string(l) + ".gbr",
                 gerber_signal_layer(board, router.db(),
                                     strung.connections,
                                     static_cast<LayerId>(l)));
    }
    for (const auto& [net, pins] : board.power_assignments()) {
      (void)pins;
      write_file(prefix + "_plane_" + net + ".gbr",
                 gerber_power_plane(board,
                                    generate_power_plane(board, net)));
    }
    std::cout << "wrote " << board.stack().num_layers()
              << " layer Gerbers and " << board.power_assignments().size()
              << " plane Gerbers\n";
  }
  if (html_path) {
    write_file(html_path,
               html_board_report(board, router, strung.connections,
                                 std::string("grr report: ") + argv[0]));
    std::cout << "wrote " << html_path << "\n";
  }
  return ok ? 0 : 1;
}

int cmd_check(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: grr_tool check <problem.grr> <routes.grr>\n";
    return 2;
  }
  ProblemReadResult pr = read_problem(argv[0]);
  if (!pr.ok()) {
    std::cerr << "parse error: " << pr.error << "\n";
    return 1;
  }
  RoutesReadResult rr = read_routes(argv[1]);
  if (!rr.ok()) {
    std::cerr << "parse error: " << rr.error << "\n";
    return 1;
  }
  StringingResult strung = string_nets(*pr.board);
  ConnId max_id = -1;
  for (const SavedRoute& sr : rr.routes) max_id = std::max(max_id, sr.id);
  RouteDB db(static_cast<std::size_t>(max_id + 1));
  int installed = install_routes(pr.board->stack(), db, rr.routes);
  std::cout << "installed " << installed << "/" << rr.routes.size()
            << " routes\n";
  CheckReport audit =
      audit_all(pr.board->stack(), db, strung.connections);
  std::cout << "audit: " << (audit.ok() ? "clean" : "VIOLATIONS") << "\n";
  for (const std::string& e : audit.errors()) std::cout << "  " << e << "\n";
  return installed == static_cast<int>(rr.routes.size()) && audit.ok() ? 0
                                                                       : 1;
}

int cmd_stats(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: grr_tool stats <problem.grr> <routes.grr>\n";
    return 2;
  }
  ProblemReadResult pr = read_problem(argv[0]);
  if (!pr.ok()) {
    std::cerr << "parse error: " << pr.error << "\n";
    return 1;
  }
  RoutesReadResult rr = read_routes(argv[1]);
  if (!rr.ok()) {
    std::cerr << "parse error: " << rr.error << "\n";
    return 1;
  }
  StringingResult strung = string_nets(*pr.board);
  ConnId max_id = -1;
  for (const SavedRoute& sr : rr.routes) max_id = std::max(max_id, sr.id);
  RouteDB db(static_cast<std::size_t>(max_id + 1));
  int installed = install_routes(pr.board->stack(), db, rr.routes);
  std::cout << "installed " << installed << "/" << rr.routes.size()
            << " routes\n";
  print_pattern_stats(std::cout,
                      analyze_patterns(pr.board->stack(), db,
                                       strung.connections));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: grr_tool <gen|route|check|stats> ...\n";
    return 2;
  }
  if (!std::strcmp(argv[1], "gen")) return cmd_gen(argc - 2, argv + 2);
  if (!std::strcmp(argv[1], "route")) return cmd_route(argc - 2, argv + 2);
  if (!std::strcmp(argv[1], "check")) return cmd_check(argc - 2, argv + 2);
  if (!std::strcmp(argv[1], "stats")) return cmd_stats(argc - 2, argv + 2);
  std::cerr << "unknown command " << argv[1] << "\n";
  return 2;
}
