// Routing a board with mixed ECL and TTL parts (paper Sec 10.2, Fig 18).
//
// ECL signal swings are under a volt; a nearby 5-volt TTL transition can
// induce a false ECL logic value, so ECL and TTL wiring must be separated.
// Each signal layer is tesselated into areas reserved for one family, and
// the board is routed as two separate, superimposed problems: to route one
// class, all free space in the other class's tiles is filled first and the
// filler removed afterwards.
#include <iostream>

#include "board/board.hpp"
#include "board/tile_map.hpp"
#include "route/audit.hpp"
#include "route/mixed.hpp"
#include "stringer/stringer.hpp"

using namespace grr;

int main() {
  GridSpec spec(81, 61);  // 8 x 6 inch board
  Board board(spec, 4);
  int dip16 = board.add_footprint(Footprint::dip(16, 3));

  // ECL parts on the left half, TTL (memory/IO) parts on the right half —
  // "usually the chips of one or other technology can be arranged in a
  // compact area on the board".
  std::vector<PartId> ecl_parts, ttl_parts;
  for (int i = 0; i < 6; ++i) {
    ecl_parts.push_back(board.add_part(
        "E" + std::to_string(i), dip16,
        {4 + (i % 2) * 9, 6 + (i / 2) * 14}));
    ttl_parts.push_back(board.add_part(
        "T" + std::to_string(i), dip16,
        {52 + (i % 2) * 9, 6 + (i / 2) * 14}));
  }

  // The tesselation: the left 45 via columns of every layer are ECL, the
  // rest TTL (tiles are in routing-grid coordinates).
  TileMap tiles(SignalClass::kECL);
  const Coord split = spec.grid_of_via(45);
  for (int l = 0; l < 4; ++l) {
    tiles.add_tile(static_cast<LayerId>(l),
                   {{0, split - 1}, {0, spec.extent().y.hi}},
                   SignalClass::kECL);
    tiles.add_tile(static_cast<LayerId>(l),
                   {{split, spec.extent().x.hi}, {0, spec.extent().y.hi}},
                   SignalClass::kTTL);
  }

  // Nets within each family.
  auto wire = [&](const std::vector<PartId>& parts, SignalClass k) {
    for (int i = 0; i < 16; ++i) {
      Net net;
      net.name = (k == SignalClass::kECL ? "E" : "T") + std::to_string(i);
      net.klass = k;
      PartId src = parts[static_cast<std::size_t>(i % 3)];
      PartId dst = parts[static_cast<std::size_t>(3 + i % 3)];
      net.pins.push_back({src, i % 16, PinRole::kOutput});
      net.pins.push_back({dst, (i + 5) % 16, PinRole::kInput});
      board.netlist().add(std::move(net));
    }
  };
  wire(ecl_parts, SignalClass::kECL);
  wire(ttl_parts, SignalClass::kTTL);

  StringingResult strung = string_nets(board);

  // Two passes over the board, each with the other family's tiles filled
  // (route_mixed runs the fill / route / unfill dance for both classes).
  MixedRouteResult mixed =
      route_mixed(board.stack(), tiles, strung.connections);
  std::cout << "mixed board: " << mixed.ecl_conns.size() << " ECL + "
            << mixed.ttl_conns.size() << " TTL connections\n";
  std::cout << "ECL pass "
            << (mixed.ecl->stats().failed == 0 ? "complete" : "INCOMPLETE")
            << ", TTL pass "
            << (mixed.ttl->stats().failed == 0 ? "complete" : "INCOMPLETE")
            << "\n";

  // Audit both route databases and the tesselation conformance.
  CheckReport a1 =
      audit_all(board.stack(), mixed.ecl->db(), mixed.ecl_conns, &tiles);
  CheckReport a2 =
      audit_all(board.stack(), mixed.ttl->db(), mixed.ttl_conns, &tiles);
  std::cout << "audit: " << (a1.ok() && a2.ok() ? "clean" : "VIOLATIONS")
            << " (ECL and TTL routes confined to their tiles)\n";
  for (const auto& e : a1.errors()) std::cout << "  " << e << "\n";
  for (const auto& e : a2.errors()) std::cout << "  " << e << "\n";
  return mixed.ok && a1.ok() && a2.ok() ? 0 : 1;
}
