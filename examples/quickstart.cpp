// Quickstart: build a small board, describe a few nets, string them, route
// them, audit the result, and print statistics. This walks the public API
// end to end; the other examples exercise domain scenarios.
#include <iostream>

#include "board/board.hpp"
#include "report/svg.hpp"
#include "route/audit.hpp"
#include "route/router.hpp"
#include "stringer/stringer.hpp"

using namespace grr;

int main() {
  // A 4 x 3 inch board, 100-mil via pitch, 2 routing tracks between vias,
  // four signal layers (H,V,H,V).
  GridSpec spec(/*nx_vias=*/41, /*ny_vias=*/31);
  Board board(spec, /*num_layers=*/4);

  // Two DIP-16s facing each other and a SIP-8 resistor pack.
  int dip16 = board.add_footprint(Footprint::dip(16, 3));
  int sip8 = board.add_footprint(Footprint::sip(8));
  PartId u1 = board.add_part("U1", dip16, {5, 8});
  PartId u2 = board.add_part("U2", dip16, {20, 12});
  PartId r1 = board.add_part("R1", sip8, {30, 8});
  for (int pin = 0; pin < 8; ++pin) board.add_terminator(r1, pin);

  // Three ECL nets: U1 outputs drive U2 inputs; the stringer will pick the
  // chain order and append the nearest free terminating resistor.
  for (int i = 0; i < 3; ++i) {
    Net net;
    net.name = "NET" + std::to_string(i);
    net.klass = SignalClass::kECL;
    net.needs_terminator = true;
    net.pins.push_back({u1, 2 + i, PinRole::kOutput});
    net.pins.push_back({u2, 3 + i, PinRole::kInput});
    net.pins.push_back({u2, 12 - i, PinRole::kInput});
    board.netlist().add(std::move(net));
  }

  StringingResult strung = string_nets(board);
  std::cout << "stringer produced " << strung.connections.size()
            << " pin-to-pin connections, total Manhattan length "
            << strung.total_manhattan << " via units\n";

  Router router(board.stack(), RouterConfig{});
  bool ok = router.route_all(strung.connections);
  const RouterStats& st = router.stats();
  std::cout << (ok ? "routed all " : "FAILED, routed ") << st.routed << "/"
            << st.total << " connections in " << st.passes << " pass(es)\n"
            << "  zero-via: "
            << st.by_strategy[static_cast<int>(RouteStrategy::kZeroVia)]
            << ", one-via: "
            << st.by_strategy[static_cast<int>(RouteStrategy::kOneVia)]
            << ", lee: "
            << st.by_strategy[static_cast<int>(RouteStrategy::kLee)]
            << ", rip-ups: " << st.rip_ups
            << ", vias/conn: " << st.vias_per_conn() << "\n";

  CheckReport audit =
      audit_all(board.stack(), router.db(), strung.connections);
  std::cout << "audit: " << (audit.ok() ? "clean" : "VIOLATIONS") << " ("
            << audit.segments_checked << " segments checked)\n";
  for (const std::string& e : audit.errors()) std::cout << "  " << e << "\n";

  write_file("quickstart_layer0.svg",
             svg_signal_layer(board, router.db(), strung.connections, 0));
  std::cout << "wrote quickstart_layer0.svg\n";
  return ok && audit.ok() ? 0 : 1;
}
