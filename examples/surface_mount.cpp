// Surface-mount parts via dispersion patterns (paper Sec 11).
//
// SMD pads connect only to the surface layer, so each pad is first fanned
// out to a nearby via with a top-layer trace ("a dispersion pattern...
// connect[s] the pads to a regular array of vias by traces lying only on
// the top surface. The router was told to consider the vias as the end
// points of the connections"). The connections are then routed normally
// between the dispersion vias.
#include <iostream>

#include "board/board.hpp"
#include "board/dispersion.hpp"
#include "route/audit.hpp"
#include "route/router.hpp"

using namespace grr;

int main() {
  GridSpec spec(41, 31);  // 4 x 3 inch board
  Board board(spec, 4);

  // Two 8-pad SMD packages facing each other. Fine-pitch pads sit on the
  // routing grid but off the via grid (one pad per routing track).
  std::vector<Point> left_pads, right_pads;
  for (int i = 0; i < 8; ++i) {
    left_pads.push_back({20, 20 + 4 * i});
    right_pads.push_back({100, 22 + 4 * i});
  }

  DispersionResult left = build_dispersion(board.stack(), left_pads);
  DispersionResult right = build_dispersion(board.stack(), right_pads);
  if (!left.ok() || !right.ok()) {
    std::cout << "dispersion failed: " << left.error << right.error << "\n";
    return 1;
  }
  std::cout << "dispersed " << left.pins.size() + right.pins.size()
            << " SMD pads to via end points\n";

  // Route pad i of the left package to pad i of the right package, using
  // the dispersion vias as the connection end points.
  ConnectionList conns;
  for (int i = 0; i < 8; ++i) {
    Connection c;
    c.id = i;
    c.a = left.pins[static_cast<std::size_t>(i)].via;
    c.b = right.pins[static_cast<std::size_t>(i)].via;
    conns.push_back(c);
  }
  Router router(board.stack());
  bool ok = router.route_all(conns);
  std::cout << (ok ? "routed all " : "INCOMPLETE: ")
            << router.stats().routed << "/" << router.stats().total
            << " pad-to-pad connections ("
            << router.stats().vias_per_conn() << " vias/conn)\n";

  CheckReport audit = audit_all(board.stack(), router.db(), conns);
  std::cout << "audit: " << (audit.ok() ? "clean" : "VIOLATIONS") << "\n";
  return ok && audit.ok() ? 0 : 1;
}
