// Static timing verification of a routed pipeline stage.
//
// The Titan's placement was tuned against "the critical timing paths found
// by the timing verifier" (paper Sec 13). This example builds a small
// register -> logic -> register pipeline, checks timing with pre-route
// Manhattan estimates, routes the board, and re-checks with the realized
// trace delays.
#include <iomanip>
#include <iostream>

#include "route/audit.hpp"
#include "route/router.hpp"
#include "timing/timing.hpp"

using namespace grr;

int main() {
  GridSpec spec(81, 51);  // 8 x 5 inch board
  Board board(spec, 4);
  int sip4 = board.add_footprint(Footprint::sip(4));

  // One launch register, two logic levels (2 + 1 gates), one capture
  // register. SIP-4: pins 0,1 inputs; pins 2,3 outputs.
  PartId reg1 = board.add_part("REG1", sip4, {4, 20});
  PartId g1 = board.add_part("G1", sip4, {24, 8});
  PartId g2 = board.add_part("G2", sip4, {24, 34});
  PartId g3 = board.add_part("G3", sip4, {50, 22});
  PartId reg2 = board.add_part("REG2", sip4, {72, 20});

  auto wire = [&](PartId from, int out, PartId to, int in) {
    Net net;
    net.klass = SignalClass::kTTL;
    net.name = "N" + std::to_string(board.netlist().nets.size());
    net.pins.push_back({from, out, PinRole::kOutput});
    net.pins.push_back({to, in, PinRole::kInput});
    board.netlist().add(std::move(net));
  };
  wire(reg1, 2, g1, 0);
  wire(reg1, 3, g2, 0);
  wire(g1, 2, g3, 0);
  wire(g2, 2, g3, 1);
  wire(g3, 2, reg2, 0);

  TimingSpec ts;
  for (PartId g : {g1, g2, g3}) {
    ts.arcs.push_back({g, 0, 2, 0.9});  // gate delay in0 -> out0
    ts.arcs.push_back({g, 1, 2, 0.9});
  }
  ts.launch_pins = {{reg1, 2, PinRole::kOutput},
                    {reg1, 3, PinRole::kOutput}};
  ts.capture_pins = {{reg2, 0, PinRole::kInput}};
  ts.clock_period_ns = 3.5;

  DelayModel model;
  model.num_layers = 4;
  StringingResult strung = string_nets(board);

  auto show = [&](const char* when, const TimingReport& rep) {
    std::cout << when << ": worst path " << std::fixed
              << std::setprecision(3) << rep.worst_ns << " ns, slack "
              << rep.worst_slack_ns << " ns ("
              << (rep.worst_slack_ns >= 0 ? "MET" : "VIOLATED") << ")\n";
    for (const TimingPathStep& s : rep.critical_path) {
      std::cout << "    " << board.part(s.part).name << ":" << s.pin
                << "  @" << s.arrival_ns << " ns"
                << (s.through_net ? "  (net)" : "") << "\n";
    }
  };

  TimingReport pre = verify_timing(board, strung, nullptr, model, ts);
  if (!pre.ok) {
    std::cout << "timing error: " << pre.error << "\n";
    return 1;
  }
  show("pre-route estimate", pre);

  Router router(board.stack());
  bool ok = router.route_all(strung.connections);
  CheckReport audit =
      audit_all(board.stack(), router.db(), strung.connections);
  std::cout << "\nrouted " << router.stats().routed << "/"
            << router.stats().total << ", audit "
            << (audit.ok() ? "clean" : "VIOLATIONS") << "\n\n";

  TimingReport post = verify_timing(board, strung, &router.db(), model, ts);
  show("post-route (realized metal)", post);
  return ok && audit.ok() && post.ok && post.worst_slack_ns >= 0 ? 0 : 1;
}
