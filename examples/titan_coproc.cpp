// The paper's appendix walk-through (Sec 13, Figs 19-22): a Titan floating
// point coprocessor-like board — 16 x 22 inches, six signal layers, DIP-24
// ECL parts flanked by SIP-12 termination resistor packs — is generated,
// strung, routed fully automatically, and rendered:
//
//   coproc_placement.svg    the board placement            (Fig 19)
//   coproc_problem.svg      the stringer output, one line
//                           per pin-to-pin connection      (Fig 20)
//   coproc_layer0.svg       one routed signal layer, with
//                           45-degree postprocessing       (Fig 21)
//   coproc_ground.svg       the generated ground plane     (Fig 22)
//
// Usage: titan_coproc [scale]   (default 0.5 for a quick run; 1.0 = paper
// size)
#include <chrono>
#include <cstdlib>
#include <iostream>

#include "report/svg.hpp"
#include "route/audit.hpp"
#include "workload/suite.hpp"

using namespace grr;

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 0.5;
  GeneratedBoard gb = generate_board(table1_board("coproc-6L", scale));
  Board& board = *gb.board;
  std::cout << "coproc-like board: " << board.spec().board_width_inches()
            << "x" << board.spec().board_height_inches() << " in, "
            << board.stack().num_layers() << " signal layers, "
            << board.parts().size() << " parts, " << board.total_pins()
            << " pins, " << gb.strung.connections.size()
            << " connections (%chan " << gb.pct_chan << ")\n";

  Router router(board.stack(), RouterConfig{});
  auto t0 = std::chrono::steady_clock::now();
  bool ok = router.route_all(gb.strung.connections);
  auto t1 = std::chrono::steady_clock::now();
  std::cout << (ok ? "routed completely" : "INCOMPLETE") << " in "
            << std::chrono::duration<double>(t1 - t0).count() << " s ("
            << router.stats().pct_optimal() << "% optimal, "
            << router.stats().pct_lee() << "% lee, "
            << router.stats().rip_ups << " rip-ups, "
            << router.stats().vias_per_conn() << " vias/conn)\n";

  CheckReport audit =
      audit_all(board.stack(), router.db(), gb.strung.connections);
  std::cout << "audit: " << (audit.ok() ? "clean" : "VIOLATIONS") << "\n";

  // The ground plane connects the ground pins the generator assigned to
  // the "GND" power net; everything else gets isolation disks.
  PowerPlaneArt ground = generate_power_plane(board, "GND");
  std::cout << "ground plane: " << ground.disks.size()
            << " etched features ("
            << board.power_pin_vias("GND").size()
            << " thermal-relief ground pins)\n";

  write_file("coproc_placement.svg", svg_placement(board));
  write_file("coproc_problem.svg",
             svg_string_art(board, gb.strung.connections));
  write_file("coproc_layer0.svg",
             svg_signal_layer(board, router.db(), gb.strung.connections, 0,
                              /*mitered=*/true));
  write_file("coproc_ground.svg", svg_power_plane(ground));
  std::cout << "wrote coproc_placement.svg, coproc_problem.svg, "
               "coproc_layer0.svg, coproc_ground.svg\n";
  return ok && audit.ok() ? 0 : 1;
}
