#include "baseline/lee_grid_router.hpp"

#include <deque>

namespace grr {

LeeGridRouter::LeeGridRouter(const LayerStack& stack)
    : spec_(stack.spec()),
      num_layers_(stack.num_layers()),
      width_(spec_.extent().x.length()),
      height_(spec_.extent().y.length()) {
  const std::size_t cells = static_cast<std::size_t>(num_layers_) * width_ *
                            static_cast<std::size_t>(height_);
  occupied_.assign(cells, 0);
  parent_.assign(cells, -1);
  mark_.assign(cells, 0);

  // Snapshot per-layer occupancy by walking every channel's segments.
  const SegmentPool& pool = stack.pool();
  for (int li = 0; li < num_layers_; ++li) {
    const Layer& layer = stack.layer(static_cast<LayerId>(li));
    const Interval across = layer.across_extent();
    for (Coord c = across.lo; c <= across.hi; ++c) {
      for (SegId s = layer.channel(c).head(); s != kNoSeg;
           s = pool[s].next) {
        const Segment& seg = pool[s];
        for (Coord v = seg.span.lo; v <= seg.span.hi; ++v) {
          occupied_[cell_index(li, layer.point_of(c, v))] = 1;
        }
      }
    }
  }

  via_blocked_.assign(
      static_cast<std::size_t>(spec_.nx_vias()) * spec_.ny_vias(), 0);
  for (Coord vy = 0; vy < spec_.ny_vias(); ++vy) {
    for (Coord vx = 0; vx < spec_.nx_vias(); ++vx) {
      if (!stack.via_free({vx, vy})) {
        via_blocked_[static_cast<std::size_t>(vy) * spec_.nx_vias() + vx] =
            1;
      }
    }
  }
}

std::size_t LeeGridRouter::cell_index(int layer, Point g) const {
  return (static_cast<std::size_t>(layer) * height_ + g.y) * width_ + g.x;
}

LeeGridResult LeeGridRouter::search(Point a_via, Point b_via,
                                    std::size_t max_expansions) {
  LeeGridResult res;
  ++epoch_;
  const Point ag = spec_.grid_of_via(a_via);
  const Point bg = spec_.grid_of_via(b_via);

  // The end points themselves are occupied (pin pads); seed the wave with
  // their free neighbors on every layer, and accept any cell adjacent to b.
  std::deque<std::size_t> wave;
  auto try_mark = [&](int layer, Point g, std::int32_t par) {
    if (g.x < 0 || g.y < 0 || g.x >= width_ || g.y >= height_) return false;
    std::size_t idx = cell_index(layer, g);
    if (occupied_[idx] || mark_[idx] == epoch_) return false;
    mark_[idx] = epoch_;
    parent_[idx] = par;
    wave.push_back(idx);
    return true;
  };

  for (int l = 0; l < num_layers_; ++l) {
    try_mark(l, {ag.x - 1, ag.y}, -1);
    try_mark(l, {ag.x + 1, ag.y}, -1);
    try_mark(l, {ag.x, ag.y - 1}, -1);
    try_mark(l, {ag.x, ag.y + 1}, -1);
  }

  std::size_t goal = static_cast<std::size_t>(-1);
  while (!wave.empty() && res.expansions < max_expansions) {
    std::size_t idx = wave.front();
    wave.pop_front();
    ++res.expansions;
    const int layer = static_cast<int>(idx / (static_cast<std::size_t>(width_) * height_));
    const std::size_t rem = idx % (static_cast<std::size_t>(width_) * height_);
    const Point g{static_cast<Coord>(rem % width_),
                  static_cast<Coord>(rem / width_)};

    if (manhattan(g, bg) == 1) {
      goal = idx;
      break;
    }

    const std::int32_t par = static_cast<std::int32_t>(idx);
    try_mark(layer, {g.x - 1, g.y}, par);
    try_mark(layer, {g.x + 1, g.y}, par);
    try_mark(layer, {g.x, g.y - 1}, par);
    try_mark(layer, {g.x, g.y + 1}, par);

    // Layer change through a drillable via site.
    if (spec_.is_via_site(g)) {
      Point v = spec_.via_of_grid(g);
      if (!via_blocked_[static_cast<std::size_t>(v.y) * spec_.nx_vias() +
                        v.x]) {
        for (int l2 = 0; l2 < num_layers_; ++l2) {
          if (l2 != layer) try_mark(l2, g, par);
        }
      }
    }
  }

  if (goal == static_cast<std::size_t>(-1)) return res;
  res.found = true;
  // Retrace for path statistics.
  std::size_t cur = goal;
  const std::size_t plane = static_cast<std::size_t>(width_) * height_;
  while (true) {
    std::int32_t par = parent_[cur];
    if (par < 0) break;
    if (cur / plane != static_cast<std::size_t>(par) / plane) {
      ++res.vias_used;  // layer change
    } else {
      ++res.path_grid_steps;
    }
    cur = static_cast<std::size_t>(par);
  }
  return res;
}

}  // namespace grr
