// Classic Lee/Moore maze routing on the raw routing grid (paper Sec 8.2,
// the algorithm grr generalizes; [Moore 59, Lee 61]).
//
// The "neighbors" of a point are the adjacent grid points, so the search is
// O(n^2) in the distance between the vias: many individual grid points must
// be scanned to advance a small distance across the board. bench_lee_neighbors
// compares this against grr's Mod 1 (via-site neighbors) on identical
// problems.
//
// Layer changes are allowed at free via sites (a drill hole makes a
// potential connection to all layers). The search is read-only against a
// snapshot of the layer stack's occupancy.
#pragma once

#include <cstdint>
#include <vector>

#include "layer/layer_stack.hpp"

namespace grr {

struct LeeGridResult {
  bool found = false;
  std::size_t expansions = 0;  // grid cells dequeued
  long path_grid_steps = 0;    // unit steps in the found path
  int vias_used = 0;           // layer changes in the found path
};

class LeeGridRouter {
 public:
  /// Snapshots the stack's occupancy (one bit per layer/grid cell).
  explicit LeeGridRouter(const LayerStack& stack);

  /// Breadth-first wave from a to b (via coordinates), unit-cost.
  LeeGridResult search(Point a_via, Point b_via,
                       std::size_t max_expansions = 50'000'000);

 private:
  std::size_t cell_index(int layer, Point g) const;
  bool blocked(int layer, Point g) const {
    return occupied_[cell_index(layer, g)] != 0;
  }

  const GridSpec spec_;
  int num_layers_;
  Coord width_, height_;  // grid points per dimension
  std::vector<std::uint8_t> occupied_;
  std::vector<std::uint8_t> via_blocked_;  // per via site: not drillable
  std::vector<std::int32_t> parent_;       // per cell, for retracing
  std::vector<std::uint32_t> mark_;
  std::uint32_t epoch_ = 0;
};

}  // namespace grr
