#include "baseline/line_search_router.hpp"

#include <deque>
#include <map>
#include <unordered_set>

namespace grr {
namespace {

struct Line {
  LayerId layer;
  Coord channel;  // across coordinate
  Interval span;  // along interval
  int depth;
};

std::uint64_t line_key(LayerId l, Coord ch, Coord lo) {
  return (static_cast<std::uint64_t>(l) << 56) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(ch))
          << 28) |
         static_cast<std::uint32_t>(lo);
}

/// Per-side index of generated lines, split by orientation for crossing
/// queries: horizontal lines keyed by their y (channel), vertical by x.
struct Side {
  std::deque<Line> frontier;
  std::map<Coord, std::vector<Line>> by_channel[2];  // [orientation]
  std::unordered_set<std::uint64_t> visited;
};

}  // namespace

LineSearchResult LineSearchRouter::search(Point a_via, Point b_via,
                                          std::size_t max_lines) {
  const GridSpec& spec = stack_.spec();
  const SegmentPool& pool = stack_.pool();
  const int period = spec.period();
  LineSearchResult res;

  Side sides[2];
  const Point src[2] = {a_via, b_via};

  // Does a new line meet the opposite tree? Either a collinear overlap in
  // the same channel/layer (same free gap), or a perpendicular crossing at
  // a drillable via site.
  auto meets = [&](int s, const Line& ln) {
    const Side& other = sides[1 - s];
    const Orientation o = stack_.layer(ln.layer).orientation();
    // Collinear: any other-side line in the same channel of any layer with
    // the same orientation, overlapping at a drillable via site (or the
    // same layer: plain overlap).
    for (int oi = 0; oi < 2; ++oi) {
      const Orientation oo = static_cast<Orientation>(oi);
      if (oo == o) {
        auto it = other.by_channel[oi].find(ln.channel);
        if (it != other.by_channel[oi].end()) {
          for (const Line& ol : it->second) {
            Interval ov = ol.span.intersect(ln.span);
            if (ov.empty()) continue;
            if (ol.layer == ln.layer) return true;
            // Different layers: need a drillable via site in the overlap,
            // on a via-row channel.
            if (ln.channel % period != 0) continue;
            Coord first = ((ov.lo + period - 1) / period) * period;
            for (Coord v = first; v <= ov.hi; v += period) {
              Point g = stack_.layer(ln.layer).point_of(ln.channel, v);
              if (stack_.via_free(spec.via_of_grid(g))) return true;
            }
          }
        }
      } else {
        // Perpendicular: other-side lines whose channel lies inside our
        // span and whose span contains our channel; the crossing must be
        // a drillable via site.
        auto lo = other.by_channel[oi].lower_bound(ln.span.lo);
        auto hi = other.by_channel[oi].upper_bound(ln.span.hi);
        for (auto it = lo; it != hi; ++it) {
          for (const Line& ol : it->second) {
            if (!ol.span.contains(ln.channel)) continue;
            if (ln.channel % period != 0 || ol.channel % period != 0) {
              continue;
            }
            Point g = stack_.layer(ln.layer).point_of(ln.channel,
                                                      ol.channel);
            if (stack_.layer(ol.layer).orientation() ==
                stack_.layer(ln.layer).orientation()) {
              continue;  // same orientation cannot cross
            }
            if (stack_.via_free(spec.via_of_grid(g))) return true;
          }
        }
      }
    }
    return false;
  };

  bool met = false;
  auto add_line = [&](int s, LayerId l, Coord ch, Interval span,
                      int depth) {
    if (span.empty() || met || res.lines >= max_lines) return;
    if (!sides[s].visited.insert(line_key(l, ch, span.lo)).second) return;
    Line ln{l, ch, span, depth};
    ++res.lines;
    if (meets(s, ln)) {
      met = true;
      res.found = true;
      res.depth = depth;
      return;
    }
    const int oi =
        static_cast<int>(stack_.layer(l).orientation());
    sides[s].by_channel[oi][ch].push_back(ln);
    sides[s].frontier.push_back(ln);
  };

  // Seed: the free gaps bordering each source on every layer.
  for (int s = 0; s < 2 && !met; ++s) {
    Point g = spec.grid_of_via(src[s]);
    for (int li = 0; li < stack_.num_layers() && !met; ++li) {
      const Layer& layer = stack_.layer(static_cast<LayerId>(li));
      Coord ac = layer.across_of(g), av = layer.along_of(g);
      for (Coord probe : {av - 1, av + 1}) {
        Interval gap =
            layer.channel(ac).free_gap_at(pool, layer.along_extent(),
                                          probe);
        if (gap.contains(probe)) {
          add_line(s, static_cast<LayerId>(li), ac, gap, 0);
        }
      }
      for (Coord ch : {ac - 1, ac + 1}) {
        if (!layer.across_extent().contains(ch)) continue;
        Interval gap =
            layer.channel(ch).free_gap_at(pool, layer.along_extent(), av);
        if (gap.contains(av)) {
          add_line(s, static_cast<LayerId>(li), ch, gap, 0);
        }
      }
    }
  }

  // Alternate breadth-first expansion: from every drillable via site on a
  // line, spawn the free lines through that site on the other layers.
  int side = 0;
  while (!met && res.lines < max_lines) {
    if (sides[0].frontier.empty() && sides[1].frontier.empty()) break;
    if (sides[side].frontier.empty()) side = 1 - side;
    Line ln = sides[side].frontier.front();
    sides[side].frontier.pop_front();

    if (ln.channel % period == 0) {
      Coord first = ((ln.span.lo + period - 1) / period) * period;
      for (Coord v = first; v <= ln.span.hi && !met; v += period) {
        ++res.sites_scanned;
        Point g = stack_.layer(ln.layer).point_of(ln.channel, v);
        Point via = spec.via_of_grid(g);
        if (!spec.is_via_site(g) || !stack_.via_free(via)) continue;
        for (int li = 0; li < stack_.num_layers() && !met; ++li) {
          if (li == ln.layer) continue;
          const Layer& layer = stack_.layer(static_cast<LayerId>(li));
          Coord ch = layer.across_of(g);
          Interval gap = layer.channel(ch).free_gap_at(
              pool, layer.along_extent(), layer.along_of(g));
          if (!gap.empty()) {
            add_line(side, static_cast<LayerId>(li), ch, gap,
                     ln.depth + 1);
          }
        }
      }
    }
    side = 1 - side;
  }
  return res;
}

}  // namespace grr
