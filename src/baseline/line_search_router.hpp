// Line-search maze routing (Mikami-Tabuchi style), the second classic the
// paper positions itself against: grr's "concept of neighbors radiating in
// lines from a via is a generalization of the line-searching method of
// Hightower [Hightower 69]. Combinations of the Lee and Hightower
// algorithms have also been made by Mikami [Mikami 70]..." (Sec 8.2).
//
// Escape lines (maximal free intervals through a point) grow alternately
// from both ends; from every drillable via site on a line, perpendicular
// lines are spawned on the other layers. Two lines of opposite trees that
// cross at a drillable site (or overlap in the same channel) complete the
// connection. Like the unit-step baseline, the search is read-only and
// exists for head-to-head comparison with grr's generalized Lee.
#pragma once

#include <cstdint>
#include <vector>

#include "layer/layer_stack.hpp"

namespace grr {

struct LineSearchResult {
  bool found = false;
  std::size_t lines = 0;       // escape lines generated
  std::size_t sites_scanned = 0;  // via sites examined along lines
  int depth = 0;               // line depth at the meet (~ vias used)
};

class LineSearchRouter {
 public:
  explicit LineSearchRouter(const LayerStack& stack) : stack_(stack) {}

  LineSearchResult search(Point a_via, Point b_via,
                          std::size_t max_lines = 200000);

 private:
  const LayerStack& stack_;
};

}  // namespace grr
