#include "board/board.hpp"

#include <cassert>

namespace grr {

Board::Board(const GridSpec& spec, int num_layers, DesignRules rules,
             std::vector<Orientation> orients, ChannelStore channel_store)
    : rules_(rules),
      stack_(spec, num_layers, std::move(orients), channel_store) {}

int Board::add_footprint(Footprint fp) {
  footprints_.push_back(std::move(fp));
  return static_cast<int>(footprints_.size() - 1);
}

PartId Board::add_part(std::string name, int footprint, Point origin_via) {
  assert(footprint >= 0 &&
         footprint < static_cast<int>(footprints_.size()));
  Part p{std::move(name), footprint, origin_via};
  const Footprint& fp = footprints_[static_cast<std::size_t>(footprint)];
  for (Point off : fp.pin_offsets) {
    Point via{origin_via.x + off.x, origin_via.y + off.y};
    assert(spec().via_in_board(via));
    assert(stack_.via_free(via));
    stack_.drill_via(via, kPinConn);
    ++total_pins_;
  }
  parts_.push_back(std::move(p));
  return static_cast<PartId>(parts_.size() - 1);
}

Point Board::pin_via(PartId part_id, int pin) const {
  const Part& p = part(part_id);
  const Footprint& fp = footprints_[static_cast<std::size_t>(p.footprint)];
  assert(pin >= 0 && pin < fp.pin_count());
  Point off = fp.pin_offsets[static_cast<std::size_t>(pin)];
  return {p.origin.x + off.x, p.origin.y + off.y};
}

void Board::add_obstacle(Point via) {
  assert(stack_.via_free(via));
  stack_.drill_via(via, kObstacleConn);
  obstacles_.push_back(via);
}

void Board::assign_power_pin(const std::string& net, PartId part, int pin) {
  power_[net].push_back({part, pin, PinRole::kInput});
}

std::vector<Point> Board::power_pin_vias(const std::string& net) const {
  std::vector<Point> vias;
  auto it = power_.find(net);
  if (it == power_.end()) return vias;
  vias.reserve(it->second.size());
  for (const NetPin& np : it->second) vias.push_back(pin_via(np));
  return vias;
}

double Board::pins_per_sq_inch() const {
  double area =
      spec().board_width_inches() * spec().board_height_inches();
  return area > 0 ? total_pins_ / area : 0.0;
}

}  // namespace grr
