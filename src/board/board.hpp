// The board: grid spec, layer stack, placed parts, pins and keep-outs
// (paper Sec 2). Through-hole pins are drilled vias connected to all layers;
// instantiating a part occupies its pins' via sites on every signal layer.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "board/design_rules.hpp"
#include "board/footprint.hpp"
#include "board/netlist.hpp"
#include "layer/layer_stack.hpp"

namespace grr {

struct Part {
  std::string name;
  int footprint = -1;  // index into Board's footprint table
  Point origin;        // via-grid position of pin 0's reference
};

class Board {
 public:
  Board(const GridSpec& spec, int num_layers,
        DesignRules rules = DesignRules::paper_process(),
        std::vector<Orientation> orients = {},
        ChannelStore channel_store = kDefaultChannelStore);

  const GridSpec& spec() const { return stack_.spec(); }
  const DesignRules& rules() const { return rules_; }
  LayerStack& stack() { return stack_; }
  const LayerStack& stack() const { return stack_; }

  int add_footprint(Footprint fp);
  const Footprint& footprint(int idx) const {
    return footprints_[static_cast<std::size_t>(idx)];
  }
  const std::vector<Footprint>& footprints() const { return footprints_; }

  /// Place a part; its pins are drilled immediately (they must all land on
  /// free via sites inside the board).
  PartId add_part(std::string name, int footprint, Point origin_via);

  const std::vector<Part>& parts() const { return parts_; }
  const Part& part(PartId id) const {
    return parts_[static_cast<std::size_t>(id)];
  }

  /// Via-grid location of a part pin.
  Point pin_via(PartId part, int pin) const;
  Point pin_via(const NetPin& np) const { return pin_via(np.part, np.pin); }

  /// Register a pin as an available ECL terminating resistor (Sec 3).
  void add_terminator(PartId part, int pin) {
    terminators_.push_back({part, pin, PinRole::kInput});
  }
  const std::vector<NetPin>& terminators() const { return terminators_; }

  /// Mounting hole / keep-out: permanently occupies the via site.
  void add_obstacle(Point via);
  const std::vector<Point>& obstacles() const { return obstacles_; }

  /// Power nets (Sec 2): nearly every part connects to at least two of
  /// them; their pins are served by dedicated power planes, never by
  /// signal routing. generate_power_plane() draws its member pins from
  /// these assignments.
  void assign_power_pin(const std::string& net, PartId part, int pin);
  const std::map<std::string, std::vector<NetPin>>& power_assignments()
      const {
    return power_;
  }
  /// Via sites of a power net's pins (empty if the net is unknown).
  std::vector<Point> power_pin_vias(const std::string& net) const;

  Netlist& netlist() { return netlist_; }
  const Netlist& netlist() const { return netlist_; }

  /// Average pin density (pins per square inch), as in Table 1.
  double pins_per_sq_inch() const;
  int total_pins() const { return total_pins_; }

 private:
  DesignRules rules_;
  LayerStack stack_;
  std::vector<Footprint> footprints_;
  std::vector<Part> parts_;
  std::vector<NetPin> terminators_;
  std::vector<Point> obstacles_;
  std::map<std::string, std::vector<NetPin>> power_;
  Netlist netlist_;
  int total_pins_ = 0;
};

}  // namespace grr
