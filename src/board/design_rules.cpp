#include "board/design_rules.hpp"

// Header-only; this file anchors the translation unit for the library.
