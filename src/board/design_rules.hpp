// Manufacturing design rules (paper Sec 2, Fig 1). These determine the grid
// embedding: how many routing tracks fit between via sites, and the pad and
// clearance geometry the power-plane generator needs.
#pragma once

namespace grr {

struct DesignRules {
  int trace_width_mils = 8;
  int trace_gap_mils = 8;
  int via_pad_mils = 60;    // pad diameter
  int via_drill_mils = 37;  // finished hole
  int pin_pitch_mils = 100;
  int tracks_between_vias = 2;

  // Power plane artwork (appendix, Fig 22).
  int plane_clearance_mils = 70;        // isolation disk around foreign holes
  int thermal_relief_outer_mils = 80;   // thermal relief around member pins
  int mounting_clearance_mils = 250;    // keep-out around mounting screws

  /// The process of Fig 1: 8/8 mil traces, 60 mil pads, 100 mil pitch,
  /// two tracks between vias.
  static DesignRules paper_process() { return DesignRules{}; }
};

}  // namespace grr
