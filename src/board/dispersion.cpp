#include "board/dispersion.hpp"

#include <algorithm>

namespace grr {
namespace {

/// Via-site candidates around a grid point, nearest first.
std::vector<Point> candidates_near(const GridSpec& spec, Point pad_grid,
                                   int search_radius) {
  Point center = spec.nearest_via(pad_grid);
  struct Cand {
    long dist;
    Point v;
  };
  std::vector<Cand> cands;
  for (Coord dx = -search_radius; dx <= search_radius; ++dx) {
    for (Coord dy = -search_radius; dy <= search_radius; ++dy) {
      Point v{center.x + dx, center.y + dy};
      if (!spec.via_in_board(v)) continue;
      Point g = spec.grid_of_via(v);
      cands.push_back({manhattan(g, pad_grid), v});
    }
  }
  std::sort(cands.begin(), cands.end(), [](const Cand& a, const Cand& b) {
    return std::tie(a.dist, a.v.x, a.v.y) < std::tie(b.dist, b.v.x, b.v.y);
  });
  std::vector<Point> out;
  out.reserve(cands.size());
  for (const Cand& c : cands) out.push_back(c.v);
  return out;
}

}  // namespace

DispersionResult build_dispersion(LayerStack& stack,
                                  const std::vector<Point>& pads_grid,
                                  LayerId surface, int search_radius,
                                  bool through_hole) {
  const GridSpec& spec = stack.spec();
  DispersionResult result;

  auto undo_all = [&] {
    for (auto it = result.pins.rbegin(); it != result.pins.rend(); ++it) {
      for (auto sit = it->segs.rbegin(); sit != it->segs.rend(); ++sit) {
        stack.erase_segment(*sit);
      }
    }
    result.pins.clear();
  };
  auto undo_pin = [&](DispersedPin& pin) {
    for (auto it = pin.segs.rbegin(); it != pin.segs.rend(); ++it) {
      stack.erase_segment(*it);
    }
    pin.segs.clear();
  };

  // Layers the fan-out trace may run on: the surface for SMD pads (they
  // connect only to the surface layer), any layer for through-hole pins.
  std::vector<LayerId> fan_layers;
  if (through_hole) {
    for (int l = 0; l < stack.num_layers(); ++l) {
      fan_layers.push_back(static_cast<LayerId>(l));
    }
  } else {
    fan_layers.push_back(surface);
  }

  // Pads of one part land in the same few channels, so keep one walk-start
  // cursor per layer across the pad loop (the paper's locality speedup; a
  // pad in a different channel just invalidates the hint).
  std::vector<SegId> occ_cursors(
      static_cast<std::size_t>(stack.num_layers()), kNoSeg);

  for (Point pad : pads_grid) {
    if (!spec.in_board(pad)) {
      undo_all();
      result.error = "pad off board";
      return result;
    }
    bool free_everywhere = true;
    for (LayerId l : through_hole ? fan_layers
                                  : std::vector<LayerId>{surface}) {
      free_everywhere &=
          !stack.layer(l).occupied(stack.pool(), pad, &occ_cursors[l]);
    }
    if (!free_everywhere) {
      undo_all();
      result.error = "pad location occupied";
      return result;
    }

    DispersedPin pin;
    pin.pad_grid = pad;
    if (through_hole) {
      // The off-grid hole penetrates (and blocks) every layer.
      for (int l = 0; l < stack.num_layers(); ++l) {
        const Layer& layer = stack.layer(static_cast<LayerId>(l));
        pin.segs.push_back(stack.insert_span(
            {static_cast<LayerId>(l), layer.across_of(pad),
             {layer.along_of(pad), layer.along_of(pad)}},
            kPinConn, /*is_via=*/true));
      }
    } else {
      const Layer& layer = stack.layer(surface);
      pin.segs.push_back(stack.insert_span(
          {surface, layer.across_of(pad),
           {layer.along_of(pad), layer.along_of(pad)}},
          kPinConn, /*is_via=*/true));
    }

    bool placed = false;
    for (Point v : candidates_near(spec, pad, search_radius)) {
      if (placed) break;
      if (!stack.via_free(v)) continue;
      Point vg = spec.grid_of_via(v);
      if (vg == pad) continue;  // the pad itself covers this site
      for (LayerId fl : fan_layers) {
        // Claim the via, then fan out on one layer within a small box.
        std::vector<SegId> via_segs = stack.drill_via(v, kPinConn);
        Rect box = Rect::bounding(pad, vg)
                       .inflated(spec.period() * (search_radius + 1))
                       .intersect(spec.extent());
        auto spans =
            trace_path(stack.layer(fl), stack.pool(), pad, vg, box,
                       kDefaultMaxFreeNodes, nullptr, spec.period());
        if (!spans) {
          for (auto it = via_segs.rbegin(); it != via_segs.rend(); ++it) {
            stack.erase_segment(*it);
          }
          continue;
        }
        for (SegId s : via_segs) pin.segs.push_back(s);
        for (const ChannelSpan& cs : *spans) {
          pin.segs.push_back(
              stack.insert_span({fl, cs.channel, cs.span}, kPinConn));
        }
        pin.via = v;
        placed = true;
        break;
      }
    }
    if (!placed) {
      undo_pin(pin);
      undo_all();
      result.error = "no reachable free via site for pad";
      return result;
    }
    result.pins.push_back(std::move(pin));
  }
  return result;
}

void remove_dispersion(LayerStack& stack,
                       const std::vector<DispersedPin>& pins) {
  for (const DispersedPin& pin : pins) {
    for (SegId s : pin.segs) stack.erase_segment(s);
  }
}

}  // namespace grr
