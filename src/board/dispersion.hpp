// Surface-mount dispersion patterns (paper Sec 11).
//
// Surface-mount pads connect only to the surface routing layer, which
// breaks grr's assumption that a connection can start on any layer. The
// paper's practice: "a hand-designed dispersion pattern was generated to
// connect the pads to a regular array of vias by traces lying only on the
// top surface. The router was told to consider the vias as the end points
// of the connections." This module automates that pattern generation: each
// pad (which may sit off the via grid — Trace connects arbitrary grid
// points, as Sec 11 suggests) is fanned out to a nearby free via site with
// a surface-layer trace.
#pragma once

#include <string>
#include <vector>

#include "layer/free_space.hpp"
#include "layer/layer_stack.hpp"

namespace grr {

struct DispersedPin {
  Point pad_grid;            // the pad, in routing-grid coordinates
  Point via;                 // the via site the router should use
  std::vector<SegId> segs;   // pad, fan-out trace, and via segments
};

struct DispersionResult {
  std::vector<DispersedPin> pins;
  std::string error;  // empty on success

  bool ok() const { return error.empty(); }
};

/// Fan a set of surface pads out to free via sites. Pads occupy only the
/// `surface` layer; each is connected by a surface trace to the nearest
/// free via site within `search_radius` via pitches (candidates are tried
/// nearest-first until one is reachable). On any failure everything built
/// so far is removed and an error is reported.
///
/// With `through_hole = true` the pins are off-grid *through-hole* pins
/// instead (Sec 11: "parts with off-grid pins were also handled by
/// manually creating a dispersion pattern to nearby vias"): the hole
/// occupies every layer, and the fan-out trace may use any layer.
DispersionResult build_dispersion(LayerStack& stack,
                                  const std::vector<Point>& pads_grid,
                                  LayerId surface = 0, int search_radius = 2,
                                  bool through_hole = false);

/// Remove a dispersion pattern (pads, traces and vias).
void remove_dispersion(LayerStack& stack,
                       const std::vector<DispersedPin>& pins);

}  // namespace grr
