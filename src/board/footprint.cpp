#include "board/footprint.hpp"

#include <cassert>

namespace grr {

Footprint Footprint::dip(int pins, Coord row_span) {
  assert(pins >= 2 && pins % 2 == 0);
  Footprint fp;
  fp.name = "DIP-" + std::to_string(pins);
  const Coord half = pins / 2;
  for (Coord i = 0; i < half; ++i) fp.pin_offsets.push_back({0, i});
  for (Coord i = half - 1; i >= 0; --i) {
    fp.pin_offsets.push_back({row_span, i});
  }
  return fp;
}

Footprint Footprint::sip(int pins) {
  assert(pins >= 1);
  Footprint fp;
  fp.name = "SIP-" + std::to_string(pins);
  for (Coord i = 0; i < pins; ++i) fp.pin_offsets.push_back({0, i});
  return fp;
}

Footprint Footprint::connector(Coord cols, Coord rows) {
  Footprint fp;
  fp.name = "CONN-" + std::to_string(cols * rows);
  for (Coord x = 0; x < cols; ++x) {
    for (Coord y = 0; y < rows; ++y) fp.pin_offsets.push_back({x, y});
  }
  return fp;
}

}  // namespace grr
