// Part footprints: pin patterns on the via grid (paper Sec 2). Through-hole
// pins sit on the 100-mil via grid and connect to every layer.
#pragma once

#include <string>
#include <vector>

#include "geom/geom.hpp"

namespace grr {

struct Footprint {
  std::string name;
  std::vector<Point> pin_offsets;  // via-grid offsets from part origin

  int pin_count() const { return static_cast<int>(pin_offsets.size()); }

  /// Dual in-line package: `pins` pins in two columns `row_span` via units
  /// apart (e.g. DIP-24 with 300-mil row spacing -> dip(24, 3)).
  /// Pin numbering follows convention: down the left column, up the right.
  static Footprint dip(int pins, Coord row_span);

  /// Single in-line package: `pins` pins in one column (resistor packs).
  static Footprint sip(int pins);

  /// Connector: a cols x rows grid of pins.
  static Footprint connector(Coord cols, Coord rows);
};

}  // namespace grr
