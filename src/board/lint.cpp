#include "board/lint.hpp"

#include <set>

namespace grr {

CheckReport lint_netlist(const Board& board) {
  CheckReport rep;
  const Netlist& nl = board.netlist();

  std::set<std::pair<PartId, int>> power_pins;
  for (const auto& [net, pins] : board.power_assignments()) {
    for (const NetPin& p : pins) power_pins.insert({p.part, p.pin});
  }

  std::set<std::pair<PartId, int>> seen_anywhere;
  int terminators_needed = 0;
  for (std::size_t ni = 0; ni < nl.nets.size(); ++ni) {
    const Net& net = nl.nets[ni];
    const std::string loc = "net '" + net.name + "'";
    auto fail = [&](const char* rule, const std::string& msg) {
      rep.add(rule, CheckSeverity::kError, loc,
              "net '" + net.name + "': " + msg);
    };
    auto warn = [&](const char* rule, const std::string& msg) {
      rep.add(rule, CheckSeverity::kWarning, loc, msg);
    };

    if (net.pins.empty()) {
      warn("LINT-NET-EMPTY", "net '" + net.name + "' has no pins");
      continue;
    }
    if (net.pins.size() == 1 && !net.needs_terminator) {
      warn("LINT-NET-SINGLE", "net '" + net.name + "' has a single pin");
    }

    std::set<std::pair<PartId, int>> in_net;
    bool saw_input = false;
    int outputs = 0;
    for (const NetPin& np : net.pins) {
      if (np.part < 0 ||
          static_cast<std::size_t>(np.part) >= board.parts().size()) {
        fail("LINT-PIN-PART", "references a nonexistent part");
        continue;
      }
      const Footprint& fp =
          board.footprint(board.part(np.part).footprint);
      if (np.pin < 0 || np.pin >= fp.pin_count()) {
        fail("LINT-PIN-INDEX", "references pin " + std::to_string(np.pin) +
                                   " of " + board.part(np.part).name +
                                   " (only " +
                                   std::to_string(fp.pin_count()) + " pins)");
        continue;
      }
      if (!in_net.insert({np.part, np.pin}).second) {
        fail("LINT-PIN-DUP", "lists " + board.part(np.part).name + ":" +
                                 std::to_string(np.pin) + " twice");
      }
      if (!seen_anywhere.insert({np.part, np.pin}).second) {
        fail("LINT-PIN-SHARED", "shares " + board.part(np.part).name + ":" +
                                    std::to_string(np.pin) +
                                    " with another net");
      }
      if (power_pins.contains({np.part, np.pin})) {
        fail("LINT-PIN-POWER", "uses power pin " + board.part(np.part).name +
                                   ":" + std::to_string(np.pin) +
                                   " as a signal");
      }
      if (np.role == PinRole::kOutput) {
        ++outputs;
        if (saw_input) {
          fail("LINT-ECL-ORDER",
               "output listed after an input (Sec 3: all outputs must "
               "precede the inputs)");
        }
      } else {
        saw_input = true;
      }
    }
    if (net.klass == SignalClass::kECL && outputs == 0) {
      warn("LINT-ECL-NO-OUTPUT", "ECL net '" + net.name +
                                     "' has no output pin to drive it");
    }
    if (net.needs_terminator) ++terminators_needed;
  }

  if (terminators_needed >
      static_cast<int>(board.terminators().size())) {
    rep.add("LINT-TERM-SHORTAGE", CheckSeverity::kError, "board",
            std::to_string(terminators_needed) +
                " nets need terminating resistors but only " +
                std::to_string(board.terminators().size()) +
                " are registered");
  }
  return rep;
}

}  // namespace grr
