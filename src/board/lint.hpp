// Netlist lint: catch malformed inputs before stringing and routing, the
// checks a board designer's netlist compiler would run.
//
//   * every net pin references an existing part and pin;
//   * no pin appears twice within a net, or in two different nets;
//   * ECL nets have at least one output and "all output pins must precede
//     the input pins" (paper Sec 3);
//   * ECL nets that need terminators can get one (enough terminator pins
//     registered board-wide);
//   * power-assigned pins do not appear in signal nets.
//
// Findings are reported through the unified CheckReport (rule IDs
// LINT-*, documented in doc/DRC.md).
#pragma once

#include "board/board.hpp"
#include "check/check_report.hpp"

namespace grr {

CheckReport lint_netlist(const Board& board);

}  // namespace grr
