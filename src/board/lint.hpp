// Netlist lint: catch malformed inputs before stringing and routing, the
// checks a board designer's netlist compiler would run.
//
//   * every net pin references an existing part and pin;
//   * no pin appears twice within a net, or in two different nets;
//   * ECL nets have at least one output and "all output pins must precede
//     the input pins" (paper Sec 3);
//   * ECL nets that need terminators can get one (enough terminator pins
//     registered board-wide);
//   * power-assigned pins do not appear in signal nets.
#pragma once

#include <string>
#include <vector>

#include "board/board.hpp"

namespace grr {

struct LintReport {
  std::vector<std::string> errors;
  std::vector<std::string> warnings;

  bool ok() const { return errors.empty(); }
};

LintReport lint_netlist(const Board& board);

}  // namespace grr
