// Nets: collections of pins that must be electrically interconnected
// (paper Secs 2, 3). ECL nets are transmission lines — outputs at the head
// of the chain, a terminating resistor at the tail; TTL nets allow arbitrary
// pin order.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace grr {

enum class SignalClass : std::uint8_t { kECL, kTTL };

enum class PinRole : std::uint8_t { kOutput, kInput };

using PartId = std::int32_t;
using NetId = std::int32_t;

struct NetPin {
  PartId part = -1;
  int pin = 0;
  PinRole role = PinRole::kInput;
};

struct Net {
  std::string name;
  SignalClass klass = SignalClass::kECL;
  bool needs_terminator = false;  // ECL transmission lines end in a resistor
  std::vector<NetPin> pins;       // all outputs precede all inputs
};

struct Netlist {
  std::vector<Net> nets;

  NetId add(Net net) {
    nets.push_back(std::move(net));
    return static_cast<NetId>(nets.size() - 1);
  }
};

}  // namespace grr
