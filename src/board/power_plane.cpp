#include "board/power_plane.hpp"

namespace grr {

PowerPlaneArt generate_power_plane(const Board& board,
                                   const std::string& net_name) {
  return generate_power_plane(board, net_name,
                              board.power_pin_vias(net_name));
}

PowerPlaneArt generate_power_plane(const Board& board,
                                   const std::string& net_name,
                                   const std::vector<Point>& member_pins) {
  const GridSpec& spec = board.spec();
  const DesignRules& rules = board.rules();
  const LayerStack& stack = board.stack();

  PowerPlaneArt art;
  art.net_name = net_name;
  art.width_mils = (spec.nx_vias() - 1) * spec.via_pitch_mils();
  art.height_mils = (spec.ny_vias() - 1) * spec.via_pitch_mils();

  std::unordered_set<Point> members(member_pins.begin(), member_pins.end());
  std::unordered_set<Point> mounts(board.obstacles().begin(),
                                   board.obstacles().end());

  // Every via site used on all layers is a drilled hole (via or pin).
  const int nl = stack.num_layers();
  for (Coord vy = 0; vy < spec.ny_vias(); ++vy) {
    for (Coord vx = 0; vx < spec.nx_vias(); ++vx) {
      Point v{vx, vy};
      if (stack.via_use_count(v) < nl) continue;  // not a drill hole
      Point c{v.x * spec.via_pitch_mils(), v.y * spec.via_pitch_mils()};
      if (mounts.contains(v)) {
        art.disks.push_back(
            {c, rules.mounting_clearance_mils / 2,
             PlaneFeature::kMountClearance});
      } else if (members.contains(v)) {
        art.disks.push_back({c, rules.thermal_relief_outer_mils / 2,
                             PlaneFeature::kThermalRelief});
      } else {
        art.disks.push_back(
            {c, rules.plane_clearance_mils / 2, PlaneFeature::kClearance});
      }
    }
  }
  return art;
}

}  // namespace grr
