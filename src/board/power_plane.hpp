// Power-plane etch generation (paper Sec 2 and Appendix, Fig 22).
//
// A power layer is left as solid copper except for small isolation disks
// etched around every drilled hole that is not a member of the plane's net,
// thermal-relief rings around member pins (so soldering heat does not sink
// into the copper mass), and large clearances around mounting screws. The
// pattern is straightforward to generate once the complete via pattern is
// known — i.e. after routing.
#pragma once

#include <string>
#include <unordered_set>
#include <vector>

#include "board/board.hpp"

namespace grr {

enum class PlaneFeature : std::uint8_t {
  kClearance,       // isolation disk: hole passes through, no contact
  kThermalRelief,   // member pin: connected through a spoked ring
  kMountClearance,  // mounting screw keep-out
};

struct PlaneDisk {
  Point center_mils;  // physical position
  int radius_mils = 0;
  PlaneFeature feature = PlaneFeature::kClearance;
};

struct PowerPlaneArt {
  std::string net_name;
  int width_mils = 0;
  int height_mils = 0;
  std::vector<PlaneDisk> disks;
};

/// Generate the etch artwork of one power plane. `member_pins` are the via
/// sites (via coordinates) of pins belonging to the plane's net; every other
/// drilled hole in the stack gets an isolation disk.
PowerPlaneArt generate_power_plane(
    const Board& board, const std::string& net_name,
    const std::vector<Point>& member_pins);

/// Convenience overload: member pins come from the board's power-net
/// assignments (Board::assign_power_pin).
PowerPlaneArt generate_power_plane(const Board& board,
                                   const std::string& net_name);

}  // namespace grr
