#include "board/tile_map.hpp"

#include <algorithm>

namespace grr {

SignalClass TileMap::class_at(LayerId layer, Point g) const {
  SignalClass k = default_class_;
  for (const Tile& t : tiles_) {
    if (t.layer == layer && t.rect.contains(g)) k = t.klass;
  }
  return k;
}

std::vector<SegId> TileMap::fill_foreign(LayerStack& stack,
                                         SignalClass klass) const {
  std::vector<SegId> filler;
  std::vector<Coord> cuts;
  std::vector<Interval> gaps;
  for (int li = 0; li < stack.num_layers(); ++li) {
    const auto lid = static_cast<LayerId>(li);
    Layer& layer = stack.layer(lid);
    const Interval across_ext = layer.across_extent();
    const Interval along_ext = layer.along_extent();
    for (Coord c = across_ext.lo; c <= across_ext.hi; ++c) {
      // Elementary along-intervals bounded by tile edges on this channel.
      cuts.clear();
      cuts.push_back(along_ext.lo);
      cuts.push_back(along_ext.hi + 1);
      const bool horiz = layer.orientation() == Orientation::kHorizontal;
      for (const Tile& t : tiles_) {
        if (t.layer != lid) continue;
        Interval t_across = horiz ? t.rect.y : t.rect.x;
        if (!t_across.contains(c)) continue;
        Interval t_along = (horiz ? t.rect.x : t.rect.y);
        cuts.push_back(std::max(t_along.lo, along_ext.lo));
        cuts.push_back(std::min(t_along.hi + 1, along_ext.hi + 1));
      }
      std::sort(cuts.begin(), cuts.end());
      cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
      for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
        Interval piece{cuts[i], cuts[i + 1] - 1};
        if (piece.empty()) continue;
        if (class_at(lid, layer.point_of(c, piece.lo)) == klass) continue;
        // Foreign piece: occupy its free space. Collect gaps first —
        // inserting while enumerating would invalidate the walk.
        gaps.clear();
        layer.channel(c).for_gaps_overlapping(
            stack.pool(), along_ext, piece,
            [&](Interval g) { gaps.push_back(g.intersect(piece)); });
        for (Interval g : gaps) {
          if (g.empty()) continue;
          filler.push_back(stack.insert_span({lid, c, g}, kFillerConn));
        }
      }
    }
  }
  return filler;
}

void TileMap::unfill(LayerStack& stack, const std::vector<SegId>& filler) {
  for (SegId id : filler) stack.erase_segment(id);
}

}  // namespace grr
