// ECL/TTL tesselation (paper Sec 10.2, Fig 18).
//
// Each signal layer is tesselated into rectangular areas reserved for ECL or
// TTL wiring. To route one class, all free space inside the other class's
// tiles is temporarily filled with pseudo-segments, making it unavailable
// for traces and vias; the filler is removed after the pass.
#pragma once

#include <vector>

#include "board/netlist.hpp"
#include "layer/layer_stack.hpp"

namespace grr {

struct Tile {
  LayerId layer = 0;
  Rect rect;  // grid coordinates
  SignalClass klass = SignalClass::kECL;
};

class TileMap {
 public:
  /// Default class applies everywhere no tile is declared.
  explicit TileMap(SignalClass default_class = SignalClass::kECL)
      : default_class_(default_class) {}

  void add_tile(LayerId layer, Rect grid_rect, SignalClass klass) {
    tiles_.push_back({layer, grid_rect, klass});
  }
  const std::vector<Tile>& tiles() const { return tiles_; }
  SignalClass default_class() const { return default_class_; }

  /// Signal class allowed at a grid point of a layer (last declared tile
  /// containing the point wins; default class if none).
  SignalClass class_at(LayerId layer, Point g) const;

  /// Fill all free space in tiles NOT belonging to `klass` with filler
  /// segments (kFillerConn), blocking foreign traces and vias. Returns the
  /// filler segments for a later unfill().
  std::vector<SegId> fill_foreign(LayerStack& stack, SignalClass klass) const;

  /// Remove previously inserted filler.
  static void unfill(LayerStack& stack, const std::vector<SegId>& filler);

 private:
  SignalClass default_class_;
  std::vector<Tile> tiles_;
};

}  // namespace grr
