// The unified static-analysis report: every checker in the repo — the
// netlist lint, the data-structure audits and the geometric DRC engine —
// emits findings of one shape: a stable rule ID, a severity, a location and
// a message. One shape means one CLI (`grr_check`), one overlay renderer
// and one CI gate instead of three ad-hoc report structs.
//
// Rule IDs are documented, with their paper provenance, in doc/DRC.md.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geom/geom.hpp"

namespace grr {

enum class CheckSeverity : std::uint8_t { kInfo, kWarning, kError };

inline const char* to_string(CheckSeverity s) {
  switch (s) {
    case CheckSeverity::kInfo:
      return "info";
    case CheckSeverity::kWarning:
      return "warning";
    case CheckSeverity::kError:
      return "error";
  }
  return "error";
}

struct Finding {
  std::string rule;  // stable machine-readable rule ID, e.g. "DRC-SHORT"
  CheckSeverity severity = CheckSeverity::kError;
  std::string where;    // location text ("layer 2 ch 14 [5,9]"); may be empty
  std::string message;  // human explanation

  // Overlay hints for the SVG/HTML renderers: the grid-coordinate area the
  // finding points at, and the layer it lies on (-1 = no single layer).
  int layer = -1;
  Rect rect{{0, -1}, {0, -1}};

  bool has_overlay() const { return !rect.empty(); }
};

/// Machine-readable one-line form: `rule:severity:location: message`.
inline std::string format_finding(const Finding& f) {
  std::string out = f.rule;
  out += ':';
  out += to_string(f.severity);
  out += ':';
  out += f.where;
  out += ": ";
  out += f.message;
  return out;
}

struct CheckReport {
  std::vector<Finding> findings;
  std::size_t segments_checked = 0;
  std::size_t connections_checked = 0;

  /// No error-severity findings (warnings do not fail a check).
  bool ok() const {
    for (const Finding& f : findings) {
      if (f.severity == CheckSeverity::kError) return false;
    }
    return true;
  }

  std::size_t error_count() const {
    std::size_t n = 0;
    for (const Finding& f : findings) {
      if (f.severity == CheckSeverity::kError) ++n;
    }
    return n;
  }
  std::size_t warning_count() const {
    std::size_t n = 0;
    for (const Finding& f : findings) {
      if (f.severity == CheckSeverity::kWarning) ++n;
    }
    return n;
  }

  std::size_t count_rule(const std::string& rule) const {
    std::size_t n = 0;
    for (const Finding& f : findings) {
      if (f.rule == rule) ++n;
    }
    return n;
  }

  /// Formatted error findings, in insertion order.
  std::vector<std::string> errors() const {
    std::vector<std::string> out;
    for (const Finding& f : findings) {
      if (f.severity == CheckSeverity::kError) {
        out.push_back(format_finding(f));
      }
    }
    return out;
  }
  /// Formatted warning findings, in insertion order.
  std::vector<std::string> warnings() const {
    std::vector<std::string> out;
    for (const Finding& f : findings) {
      if (f.severity == CheckSeverity::kWarning) {
        out.push_back(format_finding(f));
      }
    }
    return out;
  }

  /// First error finding, formatted ("" if clean) — the one-line diagnosis
  /// tests and tools print on failure.
  std::string first_error() const {
    for (const Finding& f : findings) {
      if (f.severity == CheckSeverity::kError) return format_finding(f);
    }
    return {};
  }

  Finding& add(std::string rule, CheckSeverity severity, std::string where,
               std::string message) {
    findings.push_back(Finding{std::move(rule), severity, std::move(where),
                               std::move(message)});
    return findings.back();
  }

  void merge(CheckReport other) {
    findings.insert(findings.end(),
                    std::make_move_iterator(other.findings.begin()),
                    std::make_move_iterator(other.findings.end()));
    segments_checked += other.segments_checked;
    connections_checked += other.connections_checked;
  }
};

}  // namespace grr
