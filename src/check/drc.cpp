#include "check/drc.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <unordered_map>
#include <vector>

namespace grr {
namespace {

enum class CopperKind : std::uint8_t { kTrace, kVia, kPin, kObstacle };

const char* kind_name(CopperKind k) {
  switch (k) {
    case CopperKind::kTrace:
      return "trace";
    case CopperKind::kVia:
      return "via";
    case CopperKind::kPin:
      return "pin";
    case CopperKind::kObstacle:
      return "obstacle";
  }
  return "?";
}

/// One piece of copper in a layer's channel space. Drills (vias, pins,
/// obstacles) appear as a unit span in every layer; traces in one.
struct CopperItem {
  Coord channel = 0;
  Interval span;
  ConnId conn = kNoConn;
  NetId net = -1;
  CopperKind kind = CopperKind::kTrace;
  Point site;  // via-grid site (drills only)

  bool is_route() const {
    return kind == CopperKind::kTrace || kind == CopperKind::kVia;
  }
  bool is_drill() const { return kind != CopperKind::kTrace; }
};

/// Element of one connection's connectivity graph.
struct ConnElem {
  bool drill = false;
  Point g;           // grid coords of the drill site
  LayerId layer = 0;  // traces only
  Coord channel = 0;
  Interval span;
  int degree = 0;
  std::size_t hop = 0;  // trace provenance, for messages
};

struct UnionFind {
  std::vector<int> parent;
  explicit UnionFind(std::size_t n) : parent(n) {
    for (std::size_t i = 0; i < n; ++i) parent[i] = static_cast<int>(i);
  }
  int find(int x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(
              parent[static_cast<std::size_t>(x)])];
      x = parent[static_cast<std::size_t>(x)];
    }
    return x;
  }
  void unite(int a, int b) {
    parent[static_cast<std::size_t>(find(a))] = find(b);
  }
};

std::string str(Point p) {
  std::ostringstream os;
  os << p;
  return os.str();
}

class DrcEngine {
 public:
  DrcEngine(const Board& board, const ConnectionList& conns,
            const DrcOptions& opts)
      : board_(board),
        spec_(board.spec()),
        rules_(board.rules()),
        conns_(conns),
        opts_(opts) {
    for (const Connection& c : conns_) {
      site_net_[c.a] = c.net;
      site_net_[c.b] = c.net;
    }
    channels_.resize(static_cast<std::size_t>(board_.stack().num_layers()));
    for (int l = 0; l < board_.stack().num_layers(); ++l) {
      const Layer& layer = board_.stack().layer(static_cast<LayerId>(l));
      channels_[static_cast<std::size_t>(l)].resize(
          static_cast<std::size_t>(layer.across_extent().length()));
    }
  }

  CheckReport run(const std::vector<const RouteGeom*>& claims) {
    build(claims);
    if (opts_.shorts) check_shorts();
    if (opts_.clearance) check_clearance();
    if (opts_.opens) check_connectivity(claims);
    rep_.connections_checked = conns_.size();
    if (truncated_) {
      rep_.add("DRC-TRUNCATED", CheckSeverity::kInfo, "board",
               "finding limit reached; report is incomplete");
    }
    return std::move(rep_);
  }

 private:
  using ChannelItems = std::vector<CopperItem>;

  const Layer& layer(LayerId l) const { return board_.stack().layer(l); }

  ChannelItems& channel_items(LayerId l, Coord across) {
    const Interval ext = layer(l).across_extent();
    return channels_[static_cast<std::size_t>(l)]
                    [static_cast<std::size_t>(across - ext.lo)];
  }

  bool room() {
    if (opts_.max_findings == 0 ||
        rep_.findings.size() < opts_.max_findings) {
      return true;
    }
    truncated_ = true;
    return false;
  }

  Finding* add(const char* rule, CheckSeverity sev, std::string where,
               std::string message) {
    if (!room()) return nullptr;
    return &rep_.add(rule, sev, std::move(where), std::move(message));
  }

  /// Grid-coordinate rect of a channel-space span (for overlays).
  Rect span_rect(LayerId l, Coord channel, Interval span) const {
    return layer(l).orientation() == Orientation::kHorizontal
               ? Rect{span, {channel, channel}}
               : Rect{{channel, channel}, span};
  }

  std::string net_name(NetId net) const {
    const auto& nets = board_.netlist().nets;
    if (net >= 0 && static_cast<std::size_t>(net) < nets.size()) {
      return "'" + nets[static_cast<std::size_t>(net)].name + "'";
    }
    return "(none)";
  }

  std::string item_desc(const CopperItem& it) const {
    std::string d = kind_name(it.kind);
    if (it.is_drill()) {
      d += " at " + str(it.site);
    }
    if (it.kind == CopperKind::kTrace || it.kind == CopperKind::kVia) {
      d += " of net " + net_name(it.net);
    } else if (it.kind == CopperKind::kPin && it.net >= 0) {
      d += " of net " + net_name(it.net);
    }
    return d;
  }

  void add_drill(Point site, ConnId conn, NetId net, CopperKind kind) {
    Point g = spec_.grid_of_via(site);
    for (int l = 0; l < board_.stack().num_layers(); ++l) {
      const Layer& ly = layer(static_cast<LayerId>(l));
      CopperItem it;
      it.channel = ly.across_of(g);
      it.span = {ly.along_of(g), ly.along_of(g)};
      it.conn = conn;
      it.net = net;
      it.kind = kind;
      it.site = site;
      channel_items(static_cast<LayerId>(l), it.channel).push_back(it);
      ++rep_.segments_checked;
    }
  }

  /// Validate one claimed span against the board; report DRC-BOUNDS and
  /// return false if it cannot be placed.
  bool span_in_bounds(ConnId conn, LayerId l, const ChannelSpan& cs) {
    const bool bad_layer = l >= board_.stack().num_layers();
    const bool bad_geom =
        bad_layer || cs.span.empty() ||
        !layer(l).across_extent().contains(cs.channel) ||
        !layer(l).along_extent().contains(cs.span.lo) ||
        !layer(l).along_extent().contains(cs.span.hi);
    if (bad_geom) {
      add("DRC-BOUNDS", CheckSeverity::kError,
          "conn " + std::to_string(conn),
          "claimed span (layer " + std::to_string(int{l}) + " ch " +
              std::to_string(cs.channel) + ") lies outside the board");
    }
    return !bad_geom;
  }

  bool via_in_bounds(ConnId conn, Point v) {
    if (spec_.via_in_board(v)) return true;
    add("DRC-BOUNDS", CheckSeverity::kError, "conn " + std::to_string(conn),
        "claimed via " + str(v) + " lies outside the board");
    return false;
  }

  void build(const std::vector<const RouteGeom*>& claims) {
    // Static board copper: part pins and keep-out obstacles.
    for (std::size_t pi = 0; pi < board_.parts().size(); ++pi) {
      const Footprint& fp =
          board_.footprint(board_.parts()[pi].footprint);
      for (int pin = 0; pin < fp.pin_count(); ++pin) {
        Point site = board_.pin_via(static_cast<PartId>(pi), pin);
        auto it = site_net_.find(site);
        NetId net = it == site_net_.end() ? -1 : it->second;
        add_drill(site, kPinConn, net, CopperKind::kPin);
      }
    }
    for (Point site : board_.obstacles()) {
      add_drill(site, kObstacleConn, -1, CopperKind::kObstacle);
    }

    // Claimed route copper.
    for (std::size_t i = 0; i < conns_.size(); ++i) {
      const Connection& c = conns_[i];
      const RouteGeom* geom = claims[i];
      if (geom == nullptr || c.a == c.b) continue;
      for (Point v : geom->vias) {
        if (via_in_bounds(c.id, v)) {
          add_drill(v, c.id, c.net, CopperKind::kVia);
        }
      }
      for (const RouteHop& hop : geom->hops) {
        for (const ChannelSpan& cs : hop.spans) {
          if (!span_in_bounds(c.id, hop.layer, cs)) continue;
          CopperItem it;
          it.channel = cs.channel;
          it.span = cs.span;
          it.conn = c.id;
          it.net = c.net;
          it.kind = CopperKind::kTrace;
          channel_items(hop.layer, cs.channel).push_back(it);
          ++rep_.segments_checked;
        }
      }
    }

    for (auto& per_layer : channels_) {
      for (ChannelItems& items : per_layer) {
        std::sort(items.begin(), items.end(),
                  [](const CopperItem& a, const CopperItem& b) {
                    return a.span.lo < b.span.lo;
                  });
      }
    }
  }

  /// Two items conflict if they belong to different nets and at least one
  /// is route copper (the board's own pin/obstacle artwork is the
  /// placer's business, not the router's).
  bool checkable_pair(const CopperItem& a, const CopperItem& b) const {
    if (!a.is_route() && !b.is_route()) return false;
    if (a.conn >= 0 && a.conn == b.conn) return false;
    if (a.net >= 0 && a.net == b.net) return false;
    return true;
  }

  // --- DRC-SHORT: sweep each channel's sorted segment list. -------------

  void check_shorts() {
    for (std::size_t l = 0; l < channels_.size(); ++l) {
      for (const ChannelItems& items : channels_[l]) {
        std::vector<const CopperItem*> active;
        for (const CopperItem& cur : items) {
          std::erase_if(active, [&](const CopperItem* a) {
            return a->span.hi < cur.span.lo;
          });
          for (const CopperItem* a : active) {
            if (!checkable_pair(*a, cur)) continue;
            Finding* f = add(
                "DRC-SHORT", CheckSeverity::kError,
                "layer " + std::to_string(l) + " ch " +
                    std::to_string(cur.channel) + " [" +
                    std::to_string(std::max(a->span.lo, cur.span.lo)) + "," +
                    std::to_string(std::min(a->span.hi, cur.span.hi)) + "]",
                item_desc(cur) + " overlaps " + item_desc(*a));
            if (f) {
              f->layer = static_cast<int>(l);
              f->rect = span_rect(static_cast<LayerId>(l), cur.channel,
                                  cur.span.intersect(a->span));
            }
          }
          active.push_back(&cur);
        }
      }
    }
  }

  // --- DRC-CLEARANCE: physical air gaps in mils. ------------------------

  int pad_radius() const { return rules_.via_pad_mils / 2; }
  int half_width(const CopperItem& it) const {
    return it.is_drill() ? pad_radius() : rules_.trace_width_mils / 2;
  }
  int along_ext(const CopperItem& it) const {
    return it.is_drill() ? pad_radius() : 0;
  }

  int min_grid_step_mils() const {
    int step = spec_.via_pitch_mils();
    for (int g = 0; g < spec_.period(); ++g) {
      step = std::min(step, spec_.mils_of_grid(g + 1) -
                                spec_.mils_of_grid(g));
    }
    return std::max(step, 1);
  }

  void maybe_clearance(std::size_t l, const CopperItem& a,
                       const CopperItem& b, int d_across_mils) {
    if (!checkable_pair(a, b)) return;
    const int req = rules_.trace_gap_mils;
    // Grid-level overlap in the same channel is already a DRC-SHORT.
    if (d_across_mils == 0 && a.span.overlaps(b.span)) return;
    const int a_lo = spec_.mils_of_grid(a.span.lo) - along_ext(a);
    const int a_hi = spec_.mils_of_grid(a.span.hi) + along_ext(a);
    const int b_lo = spec_.mils_of_grid(b.span.lo) - along_ext(b);
    const int b_hi = spec_.mils_of_grid(b.span.hi) + along_ext(b);
    const int dx = std::max(b_lo - a_hi, a_lo - b_hi);  // <=0: along overlap
    const int dy = d_across_mils - half_width(a) - half_width(b);
    bool violation;
    if (dx >= req || dy >= req) {
      violation = false;
    } else if (dx > 0 && dy > 0) {
      violation = dx * dx + dy * dy < req * req;
    } else {
      violation = std::max(dx, dy) < req;
    }
    if (!violation) return;
    const int gap = std::max(std::min(dx, dy), std::max(dx, dy));
    Finding* f =
        add("DRC-CLEARANCE", CheckSeverity::kError,
            "layer " + std::to_string(l) + " ch " +
                std::to_string(a.channel) + "/" + std::to_string(b.channel),
            item_desc(a) + " to " + item_desc(b) + " gap " +
                std::to_string(std::max(gap, 0)) + " mils < " +
                std::to_string(req) + " mils");
    if (f) {
      f->layer = static_cast<int>(l);
      f->rect = span_rect(static_cast<LayerId>(l), a.channel, a.span)
                    .inflated(1);
    }
  }

  /// Check every relevant pair between two channel lists at physical
  /// across-distance `d_across_mils` (0 = same list).
  void check_channel_pair(std::size_t l, const ChannelItems& xs,
                          const ChannelItems& ys, int d_across_mils,
                          Coord reach_grid) {
    const bool same = &xs == &ys;
    std::size_t start = 0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const CopperItem& a = xs[i];
      while (start < ys.size() &&
             ys[start].span.hi < a.span.lo - reach_grid) {
        ++start;
      }
      for (std::size_t j = same ? std::max(start, i + 1) : start;
           j < ys.size() && ys[j].span.lo <= a.span.hi + reach_grid; ++j) {
        maybe_clearance(l, a, ys[j], d_across_mils);
      }
    }
  }

  void check_clearance() {
    const int req = rules_.trace_gap_mils;
    // Reach: beyond this center distance no pair can violate (pads are the
    // widest copper).
    const int reach_mils = req + 2 * pad_radius();
    const Coord reach_grid =
        static_cast<Coord>(reach_mils / min_grid_step_mils() + 1);
    for (std::size_t l = 0; l < channels_.size(); ++l) {
      const Layer& ly = layer(static_cast<LayerId>(l));
      const Interval across = ly.across_extent();
      auto& per_channel = channels_[l];
      for (Coord c = across.lo; c <= across.hi; ++c) {
        const ChannelItems& xs =
            per_channel[static_cast<std::size_t>(c - across.lo)];
        if (xs.empty()) continue;
        check_channel_pair(l, xs, xs, 0, reach_grid);
        for (Coord c2 = c + 1; c2 <= across.hi; ++c2) {
          const int d =
              spec_.mils_of_grid(c2) - spec_.mils_of_grid(c);
          if (d >= reach_mils) break;
          const ChannelItems& ys =
              per_channel[static_cast<std::size_t>(c2 - across.lo)];
          if (!ys.empty()) check_channel_pair(l, xs, ys, d, reach_grid);
        }
      }
    }
  }

  // --- DRC-OPEN / DRC-STUB / DRC-VIA-ORPHAN: per-connection graphs. -----

  static bool drill_touches_trace(const Layer& ly, Point g,
                                  const ConnElem& t) {
    const Coord pc = ly.across_of(g);
    const Coord pv = ly.along_of(g);
    if (t.channel == pc) {
      return t.span.hi == pv - 1 || t.span.lo == pv + 1 ||
             t.span.contains(pv);
    }
    if (t.channel == pc - 1 || t.channel == pc + 1) {
      return t.span.contains(pv);
    }
    return false;
  }

  bool in_contact(const ConnElem& a, const ConnElem& b) const {
    if (a.drill && b.drill) return manhattan(a.g, b.g) <= 1;
    if (a.drill != b.drill) {
      const ConnElem& d = a.drill ? a : b;
      const ConnElem& t = a.drill ? b : a;
      // A drill exists on every layer; contact is judged on the trace's.
      return drill_touches_trace(layer(t.layer), d.g, t);
    }
    if (a.layer != b.layer) return false;
    const Coord dc = std::abs(a.channel - b.channel);
    if (dc == 0) {
      return a.span.overlaps(b.span) || a.span.hi + 1 == b.span.lo ||
             b.span.hi + 1 == a.span.lo;
    }
    return dc == 1 && a.span.overlaps(b.span);
  }

  void check_connectivity(const std::vector<const RouteGeom*>& claims) {
    for (std::size_t i = 0; i < conns_.size(); ++i) {
      const Connection& c = conns_[i];
      if (c.a == c.b) continue;
      const std::string loc = "conn " + std::to_string(c.id) + " " +
                              str(c.a) + "->" + str(c.b);
      const Rect conn_rect =
          Rect::bounding(spec_.grid_of_via(c.a), spec_.grid_of_via(c.b));
      if (claims[i] == nullptr) {
        Finding* f = add("DRC-OPEN", CheckSeverity::kError, loc,
                         "net " + net_name(c.net) + " connection " +
                             std::to_string(c.id) + " is unrouted");
        if (f) f->rect = conn_rect;
        continue;
      }
      const RouteGeom& geom = *claims[i];

      std::vector<ConnElem> elems;
      auto add_drill_elem = [&](Point site) {
        ConnElem e;
        e.drill = true;
        e.g = spec_.grid_of_via(site);
        elems.push_back(e);
      };
      add_drill_elem(c.a);
      add_drill_elem(c.b);
      std::size_t first_via = elems.size();
      for (Point v : geom.vias) {
        if (spec_.via_in_board(v)) add_drill_elem(v);
      }
      std::size_t first_trace = elems.size();
      for (std::size_t h = 0; h < geom.hops.size(); ++h) {
        const RouteHop& hop = geom.hops[h];
        if (hop.layer >= board_.stack().num_layers()) continue;
        for (const ChannelSpan& cs : hop.spans) {
          if (cs.span.empty() ||
              !layer(hop.layer).across_extent().contains(cs.channel) ||
              !layer(hop.layer).along_extent().contains(cs.span.lo) ||
              !layer(hop.layer).along_extent().contains(cs.span.hi)) {
            continue;  // reported by DRC-BOUNDS during build
          }
          ConnElem e;
          e.layer = hop.layer;
          e.channel = cs.channel;
          e.span = cs.span;
          e.hop = h;
          elems.push_back(e);
        }
      }

      UnionFind uf(elems.size());
      for (std::size_t x = 0; x < elems.size(); ++x) {
        for (std::size_t y = x + 1; y < elems.size(); ++y) {
          if (in_contact(elems[x], elems[y])) {
            uf.unite(static_cast<int>(x), static_cast<int>(y));
            ++elems[x].degree;
            ++elems[y].degree;
          }
        }
      }

      if (uf.find(0) != uf.find(1)) {
        Finding* f =
            add("DRC-OPEN", CheckSeverity::kError, loc,
                "net " + net_name(c.net) + " connection " +
                    std::to_string(c.id) +
                    ": claimed geometry does not connect its end points");
        if (f) f->rect = conn_rect;
      }
      for (std::size_t x = first_via; x < first_trace; ++x) {
        if (elems[x].degree == 0) {
          Point site = spec_.via_of_grid(elems[x].g);
          Finding* f = add("DRC-VIA-ORPHAN", CheckSeverity::kWarning, loc,
                           "net " + net_name(c.net) + " via at " +
                               str(site) + " is touched by no trace");
          if (f) {
            f->rect = Rect{{elems[x].g.x, elems[x].g.x},
                           {elems[x].g.y, elems[x].g.y}};
          }
        }
      }
      for (std::size_t x = first_trace; x < elems.size(); ++x) {
        if (elems[x].degree <= 1) {
          Finding* f =
              add("DRC-STUB", CheckSeverity::kWarning, loc,
                  "net " + net_name(c.net) + " hop " +
                      std::to_string(elems[x].hop) + " span (layer " +
                      std::to_string(int{elems[x].layer}) + " ch " +
                      std::to_string(elems[x].channel) + ") dangles");
          if (f) {
            f->layer = elems[x].layer;
            f->rect =
                span_rect(elems[x].layer, elems[x].channel, elems[x].span);
          }
        }
      }
    }
  }

  const Board& board_;
  const GridSpec& spec_;
  const DesignRules& rules_;
  const ConnectionList& conns_;
  DrcOptions opts_;
  CheckReport rep_;
  bool truncated_ = false;
  std::unordered_map<Point, NetId> site_net_;
  // channels_[layer][channel - across.lo] = copper items, sorted by lo.
  std::vector<std::vector<ChannelItems>> channels_;
};

}  // namespace

CheckReport drc_check(const Board& board, const ConnectionList& conns,
                      const std::vector<SavedRoute>& routes,
                      const DrcOptions& opts) {
  std::unordered_map<ConnId, const RouteGeom*> by_id;
  for (const SavedRoute& sr : routes) by_id[sr.id] = &sr.geom;
  std::vector<const RouteGeom*> claims(conns.size(), nullptr);
  for (std::size_t i = 0; i < conns.size(); ++i) {
    auto it = by_id.find(conns[i].id);
    if (it != by_id.end()) claims[i] = it->second;
  }
  return DrcEngine(board, conns, opts).run(claims);
}

CheckReport drc_check(const Board& board, const ConnectionList& conns,
                      const RouteDB& db, const DrcOptions& opts) {
  std::vector<const RouteGeom*> claims(conns.size(), nullptr);
  for (std::size_t i = 0; i < conns.size(); ++i) {
    const ConnId id = conns[i].id;
    if (id >= 0 && static_cast<std::size_t>(id) < db.size() &&
        db.routed(id)) {
      claims[i] = &db.rec(id).geom;
    }
  }
  return DrcEngine(board, conns, opts).run(claims);
}

}  // namespace grr
