// Geometric design-rule checker: a static-analysis pass over a routed
// board's *claimed* geometry that runs without executing the router.
//
// Where route/audit re-checks the router's live data structures (channel
// lists, via map, trace links), the DRC engine rebuilds the manufactured
// copper — pin pads, drilled vias, trace spans — from the board description
// plus per-connection route geometry (a RouteDB or a routes file), and then
// checks the physical design rules of paper Sec 2 / Fig 1:
//
//   DRC-BOUNDS      claimed geometry outside the board or layer stack
//   DRC-SHORT       cross-net copper overlap (sweep over per-channel
//                   segment lists, including traces covering foreign via
//                   or pin sites and keep-out obstacles)
//   DRC-CLEARANCE   copper-to-copper air gap below design_rules
//                   trace_gap_mils (parallel traces, colinear traces,
//                   via-pad-to-trace), computed in physical mils from the
//                   irregular 42/16/42 grid spacing
//   DRC-OPEN        connection end points not connected by the claimed
//                   geometry (connectivity-graph reachability), including
//                   connections with no route at all
//   DRC-STUB        dangling trace span: contacts the rest of its
//                   connection at most once (dead end / disconnected)
//   DRC-VIA-ORPHAN  drilled via touched by no trace of its connection
//
// Because it consumes the io/route_io claim rather than the installed
// layer stack, it catches exactly the class of silent corruption that
// rip-up/put-back (Sec 8) or a corrupted interchange file can introduce
// while every structural invariant still holds.
#pragma once

#include "board/board.hpp"
#include "check/check_report.hpp"
#include "io/route_io.hpp"
#include "route/route_db.hpp"

namespace grr {

struct DrcOptions {
  bool shorts = true;     // grid-level cross-net overlap sweep
  bool clearance = true;  // physical (mils) clearance checks
  bool opens = true;      // reachability, stubs, orphan vias
  /// Report at most this many findings (0 = unlimited); a corrupted file
  /// can otherwise flood the report.
  std::size_t max_findings = 1000;
};

/// Check claimed route geometry from an interchange file (io/route_io).
/// Connections without a usable claim are reported as DRC-OPEN.
CheckReport drc_check(const Board& board, const ConnectionList& conns,
                      const std::vector<SavedRoute>& routes,
                      const DrcOptions& opts = {});

/// Check the geometry recorded in a route database (post-routing).
CheckReport drc_check(const Board& board, const ConnectionList& conns,
                      const RouteDB& db, const DrcOptions& opts = {});

}  // namespace grr
