#include "check/footprint_check.hpp"

#include <sstream>

namespace grr {
namespace {

/// The (up to four) pieces of `r` left after removing its overlap with `d`.
void subtract_into(const Rect& r, const Rect& d, std::vector<Rect>* out) {
  if (!r.overlaps(d)) {
    out->push_back(r);
    return;
  }
  const Rect o = r.intersect(d);
  // Bands above and below the overlap, full width of r...
  if (r.y.lo < o.y.lo) out->push_back({r.x, {r.y.lo, o.y.lo - 1}});
  if (o.y.hi < r.y.hi) out->push_back({r.x, {o.y.hi + 1, r.y.hi}});
  // ...and the side pieces at the overlap's own height.
  if (r.x.lo < o.x.lo) out->push_back({{r.x.lo, o.x.lo - 1}, o.y});
  if (o.x.hi < r.x.hi) out->push_back({{o.x.hi + 1, r.x.hi}, o.y});
}

std::string conn_label(ConnId id) {
  std::ostringstream os;
  os << "conn " << id;
  return os.str();
}

std::string rect_text(const Rect& r) {
  std::ostringstream os;
  os << "x[" << r.x.lo << "," << r.x.hi << "] y[" << r.y.lo << "," << r.y.hi
     << "]";
  return os.str();
}

}  // namespace

std::vector<Rect> footprint_cover_rects(const ReadFootprint& fp,
                                        const Rect& extent) {
  std::vector<Rect> cover;
  if (fp.everything) {
    cover.push_back(extent);
    return cover;
  }
  cover.reserve(fp.rects.size() + fp.xbands.size() + fp.ybands.size());
  for (const Rect& r : fp.rects) {
    Rect c = r.intersect(extent);
    if (!c.empty()) cover.push_back(c);
  }
  for (const Interval& b : fp.xbands) {
    Interval x = b.intersect(extent.x);
    if (!x.empty()) cover.push_back({x, extent.y});
  }
  for (const Interval& b : fp.ybands) {
    Interval y = b.intersect(extent.y);
    if (!y.empty()) cover.push_back({{extent.x}, y});
  }
  return cover;
}

std::vector<Rect> uncovered_pieces(const Rect& r,
                                   const std::vector<Rect>& cover) {
  std::vector<Rect> pieces{r};
  std::vector<Rect> next;
  for (const Rect& c : cover) {
    if (pieces.empty()) break;
    next.clear();
    for (const Rect& p : pieces) subtract_into(p, c, &next);
    pieces.swap(next);
  }
  return pieces;
}

std::int64_t union_area(std::vector<Rect> rects) {
  // Incremental disjoint decomposition: each rect contributes only the
  // pieces no earlier rect covered. Quadratic in the rect count, which the
  // per-plan logs keep small (dedup upstream, band coalescing downstream).
  std::vector<Rect> disjoint;
  std::int64_t total = 0;
  for (const Rect& r : rects) {
    if (r.empty()) continue;
    std::vector<Rect> pieces = uncovered_pieces(r, disjoint);
    for (const Rect& p : pieces) {
      total += p.area();
      disjoint.push_back(p);
    }
  }
  return total;
}

CheckReport check_footprints(const FootprintAuditLog& log,
                             const FootprintCheckOptions& opts) {
  CheckReport rep;
  rep.connections_checked = log.records.size();
  std::size_t read_findings = 0, write_findings = 0, slack_findings = 0;

  for (const PlanAuditRecord& rec : log.records) {
    const std::vector<Rect> declared =
        footprint_cover_rects(rec.declared, log.extent);

    if (read_findings < opts.max_findings_per_rule) {
      for (const Rect& r : rec.reads) {
        std::vector<Rect> escaped = uncovered_pieces(r, declared);
        if (escaped.empty()) continue;
        Finding& f = rep.add(
            "FOOT-READ-ESCAPE", CheckSeverity::kError, conn_label(rec.id),
            "actual read " + rect_text(r) +
                " escapes the declared footprint at " +
                rect_text(escaped.front()) +
                " — a commit there would not invalidate this plan");
        f.rect = escaped.front();
        if (++read_findings >= opts.max_findings_per_rule) break;
      }
    }

    if (rec.installed && write_findings < opts.max_findings_per_rule) {
      for (const Rect& w : rec.writes) {
        std::vector<Rect> escaped = uncovered_pieces(w, rec.cover);
        if (escaped.empty()) continue;
        Finding& f = rep.add(
            "FOOT-WRITE-ESCAPE", CheckSeverity::kError, conn_label(rec.id),
            "install mutated " + rect_text(w) +
                " outside the plan's own geometry (escape at " +
                rect_text(escaped.front()) + ")");
        f.rect = escaped.front();
        if (++write_findings >= opts.max_findings_per_rule) break;
      }
    }

    // Over-conservatism: only meaningful for found plans with a bounded
    // declaration (failed searches legitimately declare everything).
    if (rec.found && !rec.declared.everything &&
        slack_findings < opts.max_findings_per_rule) {
      const std::int64_t da = union_area(declared);
      const std::int64_t ra = union_area(rec.reads);
      if (da > opts.slack_min_area &&
          static_cast<double>(da) >
              opts.slack_ratio * static_cast<double>(ra < 1 ? 1 : ra)) {
        std::ostringstream os;
        os << "declared footprint covers " << da << " grid cells but only "
           << ra << " were read (ratio "
           << (static_cast<double>(da) /
               static_cast<double>(ra < 1 ? 1 : ra))
           << ") — over-conservative declarations throttle sharding";
        rep.add("FOOT-SLACK", CheckSeverity::kWarning, conn_label(rec.id),
                os.str());
        ++slack_findings;
      }
    }
  }
  return rep;
}

}  // namespace grr
