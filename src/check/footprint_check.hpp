// Footprint soundness checker (FOOT-*).
//
// The BatchRouter's serial equivalence rests on two claims about every
// speculative plan: the declared ReadFootprint conservatively covers every
// board region the search actually read (otherwise a stale plan could pass
// the commit-time conflict check), and installing the plan mutates only the
// metal the plan itself describes (otherwise a commit could invalidate a
// neighbor the journal check cleared). With RouterConfig::access_audit on,
// the BatchRouter collects the evidence — actual reads from the shadow
// AccessLog, actual writes from the mutation journal — into a
// FootprintAuditLog, and check_footprints proves both claims per plan:
//
//   FOOT-READ-ESCAPE   (error)    an actual read region is not fully covered
//                                 by the declared footprint;
//   FOOT-WRITE-ESCAPE  (error)    an installed plan's journalled mutation
//                                 falls outside its own geometry;
//   FOOT-SLACK         (warning)  the declared footprint covers vastly more
//                                 area than was read — over-conservatism
//                                 that will throttle footprint-based
//                                 sharding (ROADMAP item 2).
//
// Rule documentation: doc/DRC.md.
#pragma once

#include <cstdint>
#include <vector>

#include "check/check_report.hpp"
#include "route/footprint_audit.hpp"

namespace grr {

struct FootprintCheckOptions {
  /// FOOT-SLACK fires when declared_area > slack_ratio * read_area and the
  /// declared area also exceeds slack_min_area (tiny plans are noise). The
  /// defaults only flag egregious over-coverage; grr_footprint_audit
  /// reports the full tightness distribution regardless.
  double slack_ratio = 64.0;
  std::int64_t slack_min_area = 1 << 16;
  /// Stop adding findings per rule after this many (the suite routes
  /// thousands of plans; a systematic escape needs no more witnesses).
  std::size_t max_findings_per_rule = 32;
};

/// The declared footprint as a list of rects, bands expanded to full-extent
/// strips and everything clipped to `extent`.
std::vector<Rect> footprint_cover_rects(const ReadFootprint& fp,
                                        const Rect& extent);

/// Area of the union of `rects` (overlaps counted once).
std::int64_t union_area(std::vector<Rect> rects);

/// Pieces of `r` not covered by any rect in `cover` (empty = fully covered).
std::vector<Rect> uncovered_pieces(const Rect& r,
                                   const std::vector<Rect>& cover);

CheckReport check_footprints(const FootprintAuditLog& log,
                             const FootprintCheckOptions& opts = {});

}  // namespace grr
