#include "check/registry.hpp"

#include <utility>

#include "board/lint.hpp"
#include "route/audit.hpp"

namespace grr {

CheckSuite& CheckSuite::add(Checker checker) {
  checkers_.push_back(std::move(checker));
  return *this;
}

const Checker* CheckSuite::find(const std::string& name) const {
  for (const Checker& c : checkers_) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

CheckSuite& CheckSuite::override_severity(std::string rule,
                                          CheckSeverity severity) {
  severity_overrides_[std::move(rule)] = severity;
  return *this;
}

CheckReport CheckSuite::run(const CheckContext& ctx,
                            const std::vector<std::string>& only) const {
  CheckReport rep;
  auto wanted = [&](const Checker& c) {
    if (only.empty()) return true;
    for (const std::string& name : only) {
      if (name == c.name) return true;
    }
    return false;
  };
  for (const std::string& name : only) {
    if (find(name) == nullptr) {
      rep.add("CHECK-UNKNOWN", CheckSeverity::kError, "suite",
              "no checker named '" + name + "' is registered");
    }
  }
  for (const Checker& c : checkers_) {
    if (!wanted(c) || !c.applicable(ctx)) continue;
    rep.merge(c.run(ctx));
  }
  for (Finding& f : rep.findings) {
    auto it = severity_overrides_.find(f.rule);
    if (it != severity_overrides_.end()) f.severity = it->second;
  }
  return rep;
}

CheckSuite CheckSuite::standard() {
  CheckSuite suite;
  suite.add({
      "lint",
      "netlist well-formedness (LINT-*)",
      [](const CheckContext& ctx) { return ctx.board != nullptr; },
      [](const CheckContext& ctx) { return lint_netlist(*ctx.board); },
  });
  suite.add({
      "audit.stack",
      "layer-stack structural invariants (AUDIT-CHAN-*, AUDIT-VIAMAP-*)",
      [](const CheckContext& ctx) {
        return ctx.board != nullptr && ctx.db != nullptr;
      },
      [](const CheckContext& ctx) { return audit_stack(ctx.board->stack()); },
  });
  suite.add({
      "audit.routes",
      "per-connection router invariants (AUDIT-TRACE-*, AUDIT-HOP-*, "
      "AUDIT-VIA-COVER)",
      [](const CheckContext& ctx) {
        return ctx.board != nullptr && ctx.db != nullptr &&
               ctx.conns != nullptr;
      },
      [](const CheckContext& ctx) {
        return audit_routes(ctx.board->stack(), *ctx.db, *ctx.conns);
      },
  });
  suite.add({
      "audit.tiles",
      "ECL/TTL tesselation conformance (AUDIT-TILE-*)",
      [](const CheckContext& ctx) {
        return ctx.board != nullptr && ctx.db != nullptr &&
               ctx.conns != nullptr && ctx.tiles != nullptr;
      },
      [](const CheckContext& ctx) {
        return audit_tiles(ctx.board->stack(), *ctx.db, *ctx.conns,
                           *ctx.tiles);
      },
  });
  suite.add({
      "footprint",
      "speculative-plan footprint soundness (FOOT-*)",
      [](const CheckContext& ctx) { return ctx.footprints != nullptr; },
      [](const CheckContext& ctx) {
        return check_footprints(*ctx.footprints, ctx.foot);
      },
  });
  suite.add({
      "drc",
      "geometric design rules on claimed route geometry (DRC-*)",
      [](const CheckContext& ctx) {
        return ctx.board != nullptr && ctx.conns != nullptr &&
               (ctx.routes != nullptr || ctx.db != nullptr);
      },
      [](const CheckContext& ctx) {
        if (ctx.routes != nullptr) {
          return drc_check(*ctx.board, *ctx.conns, *ctx.routes, ctx.drc);
        }
        return drc_check(*ctx.board, *ctx.conns, *ctx.db, ctx.drc);
      },
  });
  return suite;
}

}  // namespace grr
