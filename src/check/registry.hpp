// Checker registry: one front door for every static-analysis pass in the
// repo. Netlist lint (board/lint), the router-state audits (route/audit)
// and the geometric DRC engine (check/drc) all plug into a CheckSuite as
// named checkers; callers build a CheckContext from whatever artifacts
// they have (a board, a route database, an interchange file) and the suite
// runs every checker whose inputs are present, merging the findings into
// one CheckReport.
//
// Checkers are pure: they never mutate the context. Severity overrides
// let a caller demote or promote individual rule IDs (e.g. treat
// DRC-STUB as an error in CI) without touching the checkers themselves.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "board/board.hpp"
#include "board/tile_map.hpp"
#include "check/check_report.hpp"
#include "check/drc.hpp"
#include "check/footprint_check.hpp"
#include "io/route_io.hpp"
#include "route/connection.hpp"
#include "route/route_db.hpp"

namespace grr {

/// Everything a checker may look at. Optional members are null when the
/// caller has nothing to offer (e.g. lint-only runs before routing).
struct CheckContext {
  const Board* board = nullptr;
  const ConnectionList* conns = nullptr;
  /// Live router state (enables the audit.* checkers and DRC on the
  /// recorded geometry).
  const RouteDB* db = nullptr;
  /// Claimed geometry from an interchange file; when present the DRC
  /// checker prefers it over `db` — that is the whole point of checking a
  /// file one is about to install.
  const std::vector<SavedRoute>* routes = nullptr;
  const TileMap* tiles = nullptr;
  DrcOptions drc;
  /// Declared-vs-actual footprint evidence from an access-audited batch
  /// route (enables the footprint checker).
  const FootprintAuditLog* footprints = nullptr;
  FootprintCheckOptions foot;
};

struct Checker {
  std::string name;  // e.g. "drc", "audit.stack", "lint"
  std::string description;
  /// True when the context carries the inputs this checker needs.
  std::function<bool(const CheckContext&)> applicable;
  std::function<CheckReport(const CheckContext&)> run;
};

class CheckSuite {
 public:
  CheckSuite& add(Checker checker);

  /// The full standard battery: lint, audit.stack, audit.routes,
  /// audit.tiles, drc.
  static CheckSuite standard();

  const std::vector<Checker>& checkers() const { return checkers_; }
  const Checker* find(const std::string& name) const;

  /// Force the severity of every finding with this rule ID.
  CheckSuite& override_severity(std::string rule, CheckSeverity severity);

  /// Run all applicable checkers — or, if `only` is non-empty, just the
  /// named ones (unknown names are reported as a CHECK-UNKNOWN error) —
  /// and merge their reports.
  CheckReport run(const CheckContext& ctx,
                  const std::vector<std::string>& only = {}) const;

 private:
  std::vector<Checker> checkers_;
  std::map<std::string, CheckSeverity> severity_overrides_;
};

}  // namespace grr
