#include "geom/geom.hpp"

namespace grr {

std::ostream& operator<<(std::ostream& os, Point p) {
  return os << '(' << p.x << ',' << p.y << ')';
}

std::ostream& operator<<(std::ostream& os, Interval iv) {
  return os << '[' << iv.lo << ',' << iv.hi << ']';
}

std::ostream& operator<<(std::ostream& os, const Rect& r) {
  return os << r.x << 'x' << r.y;
}

}  // namespace grr
