// Basic integer geometry for the routing grid: points, intervals, rectangles
// and Manhattan metrics. All coordinates are routing-grid or via-grid indices
// (signed 32-bit); physical units (mils) appear only in grid::GridSpec.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <ostream>

namespace grr {

using Coord = std::int32_t;

/// A point on an integer grid (routing grid or via grid depending on context).
struct Point {
  Coord x = 0;
  Coord y = 0;

  friend bool operator==(const Point&, const Point&) = default;
};

/// Manhattan distance between two points.
inline Coord manhattan(Point a, Point b) {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

/// Chebyshev (max-coordinate) distance between two points.
inline Coord chebyshev(Point a, Point b) {
  return std::max(std::abs(a.x - b.x), std::abs(a.y - b.y));
}

std::ostream& operator<<(std::ostream& os, Point p);

/// A closed integer interval [lo, hi]. Empty iff lo > hi.
struct Interval {
  Coord lo = 0;
  Coord hi = -1;

  bool empty() const { return lo > hi; }
  Coord length() const { return empty() ? 0 : hi - lo + 1; }
  bool contains(Coord v) const { return lo <= v && v <= hi; }
  bool contains(Interval o) const { return lo <= o.lo && o.hi <= hi; }
  bool overlaps(Interval o) const {
    return std::max(lo, o.lo) <= std::min(hi, o.hi);
  }

  Interval intersect(Interval o) const {
    return {std::max(lo, o.lo), std::min(hi, o.hi)};
  }

  /// Smallest interval containing both (assumes neither is empty).
  Interval hull(Interval o) const {
    return {std::min(lo, o.lo), std::max(hi, o.hi)};
  }

  /// Nearest value inside the interval to v (assumes non-empty).
  Coord clamp(Coord v) const { return std::clamp(v, lo, hi); }

  friend bool operator==(const Interval&, const Interval&) = default;
};

std::ostream& operator<<(std::ostream& os, Interval iv);

/// A closed axis-aligned rectangle [x.lo,x.hi] x [y.lo,y.hi].
struct Rect {
  Interval x;
  Interval y;

  static Rect bounding(Point a, Point b) {
    return {{std::min(a.x, b.x), std::max(a.x, b.x)},
            {std::min(a.y, b.y), std::max(a.y, b.y)}};
  }

  bool empty() const { return x.empty() || y.empty(); }
  bool contains(Point p) const { return x.contains(p.x) && y.contains(p.y); }
  bool contains(const Rect& o) const {
    return x.contains(o.x) && y.contains(o.y);
  }
  bool overlaps(const Rect& o) const {
    return x.overlaps(o.x) && y.overlaps(o.y);
  }
  Rect intersect(const Rect& o) const {
    return {x.intersect(o.x), y.intersect(o.y)};
  }

  /// Rectangle grown by d on all four sides.
  Rect inflated(Coord d) const {
    return {{x.lo - d, x.hi + d}, {y.lo - d, y.hi + d}};
  }

  Coord width() const { return x.length(); }
  Coord height() const { return y.length(); }
  std::int64_t area() const {
    return std::int64_t{width()} * std::int64_t{height()};
  }

  friend bool operator==(const Rect&, const Rect&) = default;
};

std::ostream& operator<<(std::ostream& os, const Rect& r);

/// The two trace orientations a signal layer is optimized for (Sec 4).
enum class Orientation : std::uint8_t { kHorizontal, kVertical };

inline Orientation other(Orientation o) {
  return o == Orientation::kHorizontal ? Orientation::kVertical
                                       : Orientation::kHorizontal;
}

/// Coordinate of p along a channel of the given orientation (the coordinate
/// that varies as you walk the channel).
inline Coord along(Orientation o, Point p) {
  return o == Orientation::kHorizontal ? p.x : p.y;
}

/// Coordinate of p across channels (selects which channel p lies in).
inline Coord across(Orientation o, Point p) {
  return o == Orientation::kHorizontal ? p.y : p.x;
}

/// Rebuild a point from channel-space (across = channel index, along =
/// position within the channel).
inline Point from_channel(Orientation o, Coord across_v, Coord along_v) {
  return o == Orientation::kHorizontal ? Point{along_v, across_v}
                                       : Point{across_v, along_v};
}

}  // namespace grr

template <>
struct std::hash<grr::Point> {
  std::size_t operator()(const grr::Point& p) const noexcept {
    return (static_cast<std::size_t>(static_cast<std::uint32_t>(p.x)) << 32) ^
           static_cast<std::uint32_t>(p.y);
  }
};
