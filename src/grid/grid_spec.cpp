#include "grid/grid_spec.hpp"

#include <cassert>

namespace grr {

GridSpec::GridSpec(Coord nx_vias, Coord ny_vias, int tracks_between_vias,
                   int via_pitch_mils)
    : nx_vias_(nx_vias),
      ny_vias_(ny_vias),
      period_(tracks_between_vias + 1),
      via_pitch_mils_(via_pitch_mils) {
  assert(nx_vias >= 2 && ny_vias >= 2);
  assert(tracks_between_vias >= 0);
  extent_ = {{0, (nx_vias_ - 1) * period_}, {0, (ny_vias_ - 1) * period_}};
  via_extent_ = {{0, nx_vias_ - 1}, {0, ny_vias_ - 1}};

  offsets_mils_.resize(static_cast<std::size_t>(period_));
  if (period_ == 3 && via_pitch_mils_ == 100) {
    // Paper Fig 3: via point, then 42 mils to the first routing point,
    // 16 mils between routing points, 42 mils back to the next via.
    offsets_mils_ = {0, 42, 58};
  } else {
    for (int i = 0; i < period_; ++i) {
      offsets_mils_[static_cast<std::size_t>(i)] =
          i * via_pitch_mils_ / period_;
    }
  }
}

Coord GridSpec::via_floor(Coord g) const {
  // Floor division for possibly negative g.
  Coord q = g / period_;
  if (g % period_ != 0 && g < 0) --q;
  return q;
}

Coord GridSpec::via_ceil(Coord g) const {
  Coord q = g / period_;
  if (g % period_ != 0 && g > 0) ++q;
  return q;
}

Point GridSpec::nearest_via(Point g) const {
  auto nearest = [&](Coord c, Interval ext) {
    Coord lo = via_floor(c);
    Coord hi = via_ceil(c);
    Coord pick =
        (c - grid_of_via(lo) <= grid_of_via(hi) - c) ? lo : hi;
    return ext.clamp(pick);
  };
  return {nearest(g.x, via_extent_.x), nearest(g.y, via_extent_.y)};
}

int GridSpec::mils_of_grid(Coord g) const {
  Coord v = via_floor(g);
  Coord rem = g - grid_of_via(v);
  return v * via_pitch_mils_ +
         offsets_mils_[static_cast<std::size_t>(rem)];
}

}  // namespace grr
