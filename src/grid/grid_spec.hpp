// The routing grid and the embedded via grid (paper Sec 4, Figs 1 and 3).
//
// All traces lie on the routing grid; vias and pins lie on the coarser via
// grid. With the paper's process, via pitch is 100 mils and two routing
// tracks fit between adjacent via points, so the grid period is 3 routing
// points per via pitch. Grid spacing is irregular (42 / 16 / 42 mils); the
// spec carries the per-period mil offsets so physical lengths (for length
// tuning) are exact.
#pragma once

#include <optional>
#include <vector>

#include "geom/geom.hpp"

namespace grr {

class GridSpec {
 public:
  /// A board nx_vias x ny_vias via sites in extent. `tracks_between_vias`
  /// routing tracks fit between adjacent via points (paper: 2).
  GridSpec(Coord nx_vias, Coord ny_vias, int tracks_between_vias = 2,
           int via_pitch_mils = 100);

  int period() const { return period_; }
  int via_pitch_mils() const { return via_pitch_mils_; }

  Coord nx_vias() const { return nx_vias_; }
  Coord ny_vias() const { return ny_vias_; }

  /// Full routing-grid extent (closed rect of valid grid coordinates).
  const Rect& extent() const { return extent_; }
  /// Full via-grid extent (closed rect of valid via coordinates).
  const Rect& via_extent() const { return via_extent_; }

  /// Routing-grid coordinate of a via-grid coordinate.
  Coord grid_of_via(Coord v) const { return v * period_; }
  Point grid_of_via(Point v) const {
    return {grid_of_via(v.x), grid_of_via(v.y)};
  }

  /// Via-grid coordinate of a routing-grid coordinate that is a via site.
  /// (Simple integer quotient, as in the paper's via map indexing.)
  Coord via_of_grid(Coord g) const { return g / period_; }
  Point via_of_grid(Point g) const {
    return {via_of_grid(g.x), via_of_grid(g.y)};
  }

  bool is_via_coord(Coord g) const { return g % period_ == 0; }
  bool is_via_site(Point g) const {
    return is_via_coord(g.x) && is_via_coord(g.y);
  }

  bool in_board(Point g) const { return extent_.contains(g); }
  bool via_in_board(Point v) const { return via_extent_.contains(v); }

  /// Nearest via-grid coordinate at or below / above g.
  Coord via_floor(Coord g) const;
  Coord via_ceil(Coord g) const;
  /// Via site nearest to an arbitrary grid point (clamped to the board).
  Point nearest_via(Point g) const;

  /// Physical position (mils from board origin) of a routing-grid coordinate.
  int mils_of_grid(Coord g) const;
  /// Physical length in mils of a grid-aligned run from ga to gb (same axis).
  int mils_between(Coord ga, Coord gb) const {
    return std::abs(mils_of_grid(ga) - mils_of_grid(gb));
  }

  double board_width_inches() const {
    return static_cast<double>(nx_vias_ - 1) * via_pitch_mils_ / 1000.0;
  }
  double board_height_inches() const {
    return static_cast<double>(ny_vias_ - 1) * via_pitch_mils_ / 1000.0;
  }

 private:
  Coord nx_vias_;
  Coord ny_vias_;
  int period_;
  int via_pitch_mils_;
  Rect extent_;
  Rect via_extent_;
  std::vector<int> offsets_mils_;  // size period_: mils of g % period within pitch
};

}  // namespace grr
