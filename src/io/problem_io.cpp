#include "io/problem_io.hpp"

#include <fstream>
#include <map>
#include <sstream>

namespace grr {
namespace {

std::string class_name(SignalClass k) {
  return k == SignalClass::kECL ? "ecl" : "ttl";
}

struct Parser {
  std::map<std::string, int> footprints;  // name -> board footprint index
  std::map<std::string, PartId> parts;    // name -> part id
  std::unique_ptr<Board> board;
  TileMap tiles{SignalClass::kECL};
  std::string error;
  int line_no = 0;

  bool fail(const std::string& msg) {
    error = "line " + std::to_string(line_no) + ": " + msg;
    board.reset();
    return false;
  }

  bool handle(const std::string& line) {
    std::istringstream is(line);
    std::string kw;
    if (!(is >> kw) || kw[0] == '#') return true;  // blank/comment

    if (kw == "board") {
      if (board) return fail("duplicate board line");
      Coord nx, ny;
      int layers, tracks = 2, pitch = 100;
      if (!(is >> nx >> ny >> layers)) return fail("bad board line");
      is >> tracks >> pitch;  // optional
      if (nx < 2 || ny < 2 || nx > 4000 || ny > 4000 || layers < 1 ||
          layers > 64 || tracks < 0 || tracks > 16 || pitch < 1 ||
          pitch > 10000) {
        return fail("bad board geometry");
      }
      board = std::make_unique<Board>(GridSpec(nx, ny, tracks, pitch),
                                      layers);
      return true;
    }
    if (!board) return fail("'" + kw + "' before board line");

    if (kw == "footprint") {
      std::string kind, name;
      if (!(is >> kind >> name)) return fail("bad footprint line");
      if (footprints.contains(name)) return fail("duplicate footprint");
      constexpr int kMaxPins = 4096;
      Footprint fp;
      if (kind == "dip") {
        int pins;
        Coord span;
        if (!(is >> pins >> span)) return fail("bad dip footprint");
        if (pins < 2 || pins % 2 != 0 || pins > kMaxPins || span < 1) {
          return fail("bad dip footprint geometry");
        }
        fp = Footprint::dip(pins, span);
      } else if (kind == "sip") {
        int pins;
        if (!(is >> pins)) return fail("bad sip footprint");
        if (pins < 1 || pins > kMaxPins) return fail("bad sip pin count");
        fp = Footprint::sip(pins);
      } else if (kind == "conn") {
        Coord cols, rows;
        if (!(is >> cols >> rows)) return fail("bad conn footprint");
        if (cols < 1 || rows < 1 || cols * rows > kMaxPins) {
          return fail("bad conn footprint geometry");
        }
        fp = Footprint::connector(cols, rows);
      } else if (kind == "raw") {
        int pins;
        if (!(is >> pins)) return fail("bad raw footprint");
        if (pins < 0 || pins > kMaxPins) return fail("bad raw pin count");
        for (int i = 0; i < pins; ++i) {
          char comma;
          Point off;
          if (!(is >> off.x >> comma >> off.y) || comma != ',') {
            return fail("bad raw footprint offsets");
          }
          fp.pin_offsets.push_back(off);
        }
      } else {
        return fail("unknown footprint kind '" + kind + "'");
      }
      fp.name = name;
      footprints[name] = board->add_footprint(std::move(fp));
      return true;
    }

    if (kw == "part") {
      std::string name, fp_name;
      Point origin;
      if (!(is >> name >> fp_name >> origin.x >> origin.y)) {
        return fail("bad part line");
      }
      auto it = footprints.find(fp_name);
      if (it == footprints.end()) {
        return fail("unknown footprint '" + fp_name + "'");
      }
      if (parts.contains(name)) return fail("duplicate part '" + name + "'");
      // Validate before add_part so a malformed file cannot trip asserts.
      const Footprint& fp = board->footprint(it->second);
      for (Point off : fp.pin_offsets) {
        Point via{origin.x + off.x, origin.y + off.y};
        if (!board->spec().via_in_board(via)) {
          return fail("part '" + name + "' pin off board");
        }
        if (!board->stack().via_free(via)) {
          return fail("part '" + name + "' pin collides");
        }
      }
      parts[name] = board->add_part(name, it->second, origin);
      return true;
    }

    if (kw == "terminator") {
      std::string part;
      int pin;
      if (!(is >> part >> pin)) return fail("bad terminator line");
      auto it = parts.find(part);
      if (it == parts.end()) return fail("unknown part '" + part + "'");
      board->add_terminator(it->second, pin);
      return true;
    }

    if (kw == "power") {
      std::string net, part;
      int pin;
      if (!(is >> net >> part >> pin)) return fail("bad power line");
      auto it = parts.find(part);
      if (it == parts.end()) return fail("unknown part '" + part + "'");
      board->assign_power_pin(net, it->second, pin);
      return true;
    }

    if (kw == "tile") {
      // tile <layer> <x1> <y1> <x2> <y2> <ecl|ttl>   (grid coordinates)
      int layer;
      Rect r;
      std::string klass;
      if (!(is >> layer >> r.x.lo >> r.y.lo >> r.x.hi >> r.y.hi >> klass)) {
        return fail("bad tile line");
      }
      if (layer < 0 || layer >= board->stack().num_layers() || r.empty() ||
          !board->spec().extent().contains(r)) {
        return fail("tile outside the board");
      }
      if (klass != "ecl" && klass != "ttl") {
        return fail("unknown tile class '" + klass + "'");
      }
      tiles.add_tile(static_cast<LayerId>(layer), r,
                     klass == "ecl" ? SignalClass::kECL
                                    : SignalClass::kTTL);
      return true;
    }

    if (kw == "obstacle") {
      Point via;
      if (!(is >> via.x >> via.y)) return fail("bad obstacle line");
      if (!board->spec().via_in_board(via) ||
          !board->stack().via_free(via)) {
        return fail("obstacle off board or colliding");
      }
      board->add_obstacle(via);
      return true;
    }

    if (kw == "net") {
      std::string name, klass, term;
      if (!(is >> name >> klass >> term)) return fail("bad net line");
      Net net;
      net.name = name;
      if (klass == "ecl") {
        net.klass = SignalClass::kECL;
      } else if (klass == "ttl") {
        net.klass = SignalClass::kTTL;
      } else {
        return fail("unknown signal class '" + klass + "'");
      }
      if (term == "term") {
        net.needs_terminator = true;
      } else if (term != "noterm") {
        return fail("expected term|noterm");
      }
      std::string pin_spec;
      while (is >> pin_spec) {
        std::size_t c1 = pin_spec.find(':');
        std::size_t c2 = pin_spec.rfind(':');
        if (c1 == std::string::npos || c2 == c1) {
          return fail("bad pin spec '" + pin_spec + "'");
        }
        std::string part = pin_spec.substr(0, c1);
        auto it = parts.find(part);
        if (it == parts.end()) return fail("unknown part '" + part + "'");
        NetPin np;
        np.part = it->second;
        try {
          np.pin = std::stoi(pin_spec.substr(c1 + 1, c2 - c1 - 1));
        } catch (...) {
          return fail("bad pin number in '" + pin_spec + "'");
        }
        const Footprint& fp =
            board->footprint(board->part(np.part).footprint);
        if (np.pin < 0 || np.pin >= fp.pin_count()) {
          return fail("pin out of range in '" + pin_spec + "'");
        }
        std::string role = pin_spec.substr(c2 + 1);
        if (role == "out") {
          np.role = PinRole::kOutput;
        } else if (role == "in") {
          np.role = PinRole::kInput;
        } else {
          return fail("bad pin role '" + role + "'");
        }
        net.pins.push_back(np);
      }
      board->netlist().add(std::move(net));
      return true;
    }

    return fail("unknown keyword '" + kw + "'");
  }
};

}  // namespace

ProblemReadResult read_problem_string(const std::string& text) {
  Parser p;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    ++p.line_no;
    if (!p.handle(line)) break;
  }
  ProblemReadResult result;
  if (!p.error.empty()) {
    result.error = p.error;
    return result;
  }
  if (!p.board) {
    result.error = "no board line";
    return result;
  }
  result.board = std::move(p.board);
  result.tiles = std::move(p.tiles);
  return result;
}

ProblemReadResult read_problem(const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    ProblemReadResult result;
    result.error = "cannot open " + path;
    return result;
  }
  std::ostringstream buf;
  buf << f.rdbuf();
  return read_problem_string(buf.str());
}

std::string write_problem_string(const Board& board, const TileMap* tiles) {
  std::ostringstream os;
  const GridSpec& spec = board.spec();
  os << "# grr problem file\n";
  os << "board " << spec.nx_vias() << ' ' << spec.ny_vias() << ' '
     << board.stack().num_layers() << ' ' << spec.period() - 1 << ' '
     << spec.via_pitch_mils() << "\n";

  // Footprints get synthesized unique names (the stored names may repeat,
  // e.g. many identical "DIP-24"s); pin geometry round-trips losslessly.
  for (std::size_t i = 0; i < board.footprints().size(); ++i) {
    const Footprint& fp = board.footprints()[i];
    os << "footprint raw FP" << i << ' ' << fp.pin_count();
    for (Point off : fp.pin_offsets) os << ' ' << off.x << ',' << off.y;
    os << "\n";
  }
  for (const Part& part : board.parts()) {
    os << "part " << part.name << " FP" << part.footprint << ' '
       << part.origin.x << ' ' << part.origin.y << "\n";
  }
  for (const NetPin& t : board.terminators()) {
    os << "terminator " << board.part(t.part).name << ' ' << t.pin << "\n";
  }
  for (const auto& [net, pins] : board.power_assignments()) {
    for (const NetPin& p : pins) {
      os << "power " << net << ' ' << board.part(p.part).name << ' '
         << p.pin << "\n";
    }
  }
  for (Point o : board.obstacles()) {
    os << "obstacle " << o.x << ' ' << o.y << "\n";
  }
  if (tiles != nullptr) {
    for (const Tile& t : tiles->tiles()) {
      os << "tile " << static_cast<int>(t.layer) << ' ' << t.rect.x.lo
         << ' ' << t.rect.y.lo << ' ' << t.rect.x.hi << ' ' << t.rect.y.hi
         << ' ' << (t.klass == SignalClass::kECL ? "ecl" : "ttl") << "\n";
    }
  }
  for (const Net& net : board.netlist().nets) {
    os << "net " << net.name << ' ' << class_name(net.klass) << ' '
       << (net.needs_terminator ? "term" : "noterm");
    for (const NetPin& np : net.pins) {
      os << ' ' << board.part(np.part).name << ':' << np.pin << ':'
         << (np.role == PinRole::kOutput ? "out" : "in");
    }
    os << "\n";
  }
  return os.str();
}

bool write_problem(const Board& board, const std::string& path,
                   const TileMap* tiles) {
  std::ofstream f(path);
  if (!f) return false;
  f << write_problem_string(board, tiles);
  return static_cast<bool>(f);
}

}  // namespace grr
