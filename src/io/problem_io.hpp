// Text-file interchange for routing problems: the board (grid, layers,
// footprints, placed parts, terminators, obstacles) and the netlist.
//
// The format is line-oriented; '#' starts a comment. Example:
//
//   board 41 31 4 2 100
//   footprint dip DIP16 16 3
//   footprint sip SIP8 8
//   part U1 DIP16 5 8
//   part R1 SIP8 30 8
//   terminator R1 0
//   obstacle 1 1
//   net NET0 ecl term U1:2:out U2:3:in
//
// write_problem() emits a file any other tool (or a later session) can
// read back with read_problem().
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "board/board.hpp"
#include "board/tile_map.hpp"

namespace grr {

struct ProblemReadResult {
  std::unique_ptr<Board> board;
  /// ECL/TTL tesselation (Sec 10.2), from `tile` lines; empty tile list =
  /// single-technology board.
  TileMap tiles{SignalClass::kECL};
  std::string error;  // empty on success

  bool ok() const { return board != nullptr; }
};

/// Parse a problem file into a fully built board (pins drilled, netlist
/// populated). On failure, `board` is null and `error` names the line.
ProblemReadResult read_problem(const std::string& path);
ProblemReadResult read_problem_string(const std::string& text);

/// Serialize a board + netlist (and optionally its ECL/TTL tesselation)
/// to the problem format.
std::string write_problem_string(const Board& board,
                                 const TileMap* tiles = nullptr);
bool write_problem(const Board& board, const std::string& path,
                   const TileMap* tiles = nullptr);

}  // namespace grr
