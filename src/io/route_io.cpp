#include "io/route_io.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "route/transaction.hpp"

namespace grr {
namespace {

const char* strategy_name(RouteStrategy s) {
  switch (s) {
    case RouteStrategy::kNone:
      return "none";
    case RouteStrategy::kTrivial:
      return "trivial";
    case RouteStrategy::kZeroVia:
      return "zerovia";
    case RouteStrategy::kOneVia:
      return "onevia";
    case RouteStrategy::kLee:
      return "lee";
    case RouteStrategy::kTuned:
      return "tuned";
    case RouteStrategy::kTwoVia:
      return "twovia";
  }
  return "none";
}

bool strategy_of(const std::string& name, RouteStrategy* out) {
  const struct {
    const char* n;
    RouteStrategy s;
  } table[] = {
      {"none", RouteStrategy::kNone},       {"trivial", RouteStrategy::kTrivial},
      {"zerovia", RouteStrategy::kZeroVia}, {"onevia", RouteStrategy::kOneVia},
      {"lee", RouteStrategy::kLee},         {"tuned", RouteStrategy::kTuned},
      {"twovia", RouteStrategy::kTwoVia},
  };
  for (const auto& e : table) {
    if (name == e.n) {
      *out = e.s;
      return true;
    }
  }
  return false;
}

}  // namespace

std::string write_routes_string(const RouteDB& db,
                                const ConnectionList& conns) {
  std::ostringstream os;
  os << "# grr routes file\n";
  for (const Connection& c : conns) {
    const RouteRecord& r = db.rec(c.id);
    if (r.status != RouteStatus::kRouted) continue;
    os << "route " << c.id << ' ' << strategy_name(r.strategy) << " vias";
    for (Point v : r.geom.vias) os << ' ' << v.x << ',' << v.y;
    os << " hops";
    for (const RouteHop& hop : r.geom.hops) {
      os << ' ' << static_cast<int>(hop.layer);
      for (const ChannelSpan& cs : hop.spans) {
        os << ' ' << cs.channel << ':' << cs.span.lo << ':' << cs.span.hi;
      }
      os << " ;";
    }
    os << "\n";
  }
  return os.str();
}

bool write_routes(const RouteDB& db, const ConnectionList& conns,
                  const std::string& path) {
  std::ofstream f(path);
  if (!f) return false;
  f << write_routes_string(db, conns);
  return static_cast<bool>(f);
}

RoutesReadResult read_routes_string(const std::string& text) {
  RoutesReadResult result;
  std::istringstream is(text);
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    std::istringstream ls(line);
    std::string kw;
    if (!(ls >> kw) || kw[0] == '#') continue;
    if (kw != "route") {
      result.error = "line " + std::to_string(line_no) +
                     ": unknown keyword '" + kw + "'";
      return result;
    }
    SavedRoute sr;
    std::string strat, section;
    if (!(ls >> sr.id >> strat) || !strategy_of(strat, &sr.strategy)) {
      result.error = "line " + std::to_string(line_no) + ": bad header";
      return result;
    }
    if (!(ls >> section) || section != "vias") {
      result.error = "line " + std::to_string(line_no) + ": expected vias";
      return result;
    }
    std::string tok;
    bool in_hops = false;
    while (ls >> tok) {
      if (tok == "hops") {
        in_hops = true;
        continue;
      }
      if (!in_hops) {
        Point v;
        char comma;
        std::istringstream ts(tok);
        if (!(ts >> v.x >> comma >> v.y) || comma != ',') {
          result.error =
              "line " + std::to_string(line_no) + ": bad via '" + tok + "'";
          return result;
        }
        sr.geom.vias.push_back(v);
      } else if (tok == ";") {
        continue;  // hop terminator; next token is a layer id
      } else if (tok.find(':') == std::string::npos) {
        RouteHop hop;
        try {
          hop.layer = static_cast<LayerId>(std::stoi(tok));
        } catch (...) {
          result.error = "line " + std::to_string(line_no) +
                         ": bad layer '" + tok + "'";
          return result;
        }
        sr.geom.hops.push_back(std::move(hop));
      } else {
        ChannelSpan cs;
        char c1, c2;
        std::istringstream ts(tok);
        if (!(ts >> cs.channel >> c1 >> cs.span.lo >> c2 >> cs.span.hi) ||
            c1 != ':' || c2 != ':' || sr.geom.hops.empty()) {
          result.error =
              "line " + std::to_string(line_no) + ": bad span '" + tok + "'";
          return result;
        }
        sr.geom.hops.back().spans.push_back(cs);
      }
    }
    result.routes.push_back(std::move(sr));
  }
  return result;
}

RoutesReadResult read_routes(const std::string& path) {
  std::ifstream f(path);
  if (!f) return {{}, "cannot open " + path};
  std::ostringstream buf;
  buf << f.rdbuf();
  return read_routes_string(buf.str());
}

namespace {

/// Saved files are untrusted: validate geometry bounds before letting any
/// of it near the layer stack.
bool geometry_in_bounds(const LayerStack& stack, const RouteGeom& geom) {
  const GridSpec& spec = stack.spec();
  for (Point v : geom.vias) {
    if (!spec.via_in_board(v)) return false;
  }
  for (const RouteHop& hop : geom.hops) {
    if (hop.layer >= stack.num_layers()) return false;
    const Layer& layer = stack.layer(hop.layer);
    for (const ChannelSpan& cs : hop.spans) {
      if (cs.span.empty()) return false;
      if (!layer.across_extent().contains(cs.channel)) return false;
      if (!layer.along_extent().contains(cs.span.lo) ||
          !layer.along_extent().contains(cs.span.hi)) {
        return false;
      }
    }
  }
  // The route must not overlap itself either (the free-space check during
  // install only guards against the rest of the board).
  std::vector<PlacedSpan> all;
  for (const RouteHop& hop : geom.hops) {
    for (const ChannelSpan& cs : hop.spans) {
      all.push_back({hop.layer, cs.channel, cs.span});
    }
  }
  for (Point v : geom.vias) {
    for (int l = 0; l < stack.num_layers(); ++l) {
      all.push_back(stack.via_span(static_cast<LayerId>(l), v));
    }
  }
  std::sort(all.begin(), all.end(),
            [](const PlacedSpan& a, const PlacedSpan& b) {
              return std::tie(a.layer, a.channel, a.span.lo) <
                     std::tie(b.layer, b.channel, b.span.lo);
            });
  for (std::size_t i = 0; i + 1 < all.size(); ++i) {
    if (all[i].layer == all[i + 1].layer &&
        all[i].channel == all[i + 1].channel &&
        all[i].span.hi >= all[i + 1].span.lo) {
      return false;
    }
  }
  return true;
}

}  // namespace

int install_routes(LayerStack& stack, RouteDB& db,
                   const std::vector<SavedRoute>& routes) {
  int installed = 0;
  for (const SavedRoute& sr : routes) {
    if (sr.id < 0 || static_cast<std::size_t>(sr.id) >= db.size()) continue;
    if (db.routed(sr.id)) continue;
    if (!geometry_in_bounds(stack, sr.geom)) continue;
    RouteTransaction::adopt_geometry(db, sr.id, sr.geom, sr.strategy);
    if (RouteTransaction::putback(stack, db, sr.id)) ++installed;
  }
  return installed;
}

}  // namespace grr
