// Text-file interchange for routing results. One line per realized
// connection:
//
//   route <conn-id> <strategy> vias <vx>,<vy> ... hops <layer> ...
//       <channel>:<lo>:<hi> ... ; <layer> ... ;
//
// read_routes() + install_routes() re-create the exact metal on a freshly
// built board (the geometry is validated against free space on insert), so
// a routed board can be saved and reloaded across runs or tools.
#pragma once

#include <string>
#include <vector>

#include "route/route_db.hpp"

namespace grr {

struct SavedRoute {
  ConnId id = kNoConn;
  RouteStrategy strategy = RouteStrategy::kNone;
  RouteGeom geom;
};

/// Serialize all routed connections among `conns`.
std::string write_routes_string(const RouteDB& db,
                                const ConnectionList& conns);
bool write_routes(const RouteDB& db, const ConnectionList& conns,
                  const std::string& path);

struct RoutesReadResult {
  std::vector<SavedRoute> routes;
  std::string error;  // empty on success

  bool ok() const { return error.empty(); }
};

RoutesReadResult read_routes_string(const std::string& text);
RoutesReadResult read_routes(const std::string& path);

/// Install saved routes into a route database / layer stack. Returns the
/// number successfully installed (a route whose space is taken is skipped).
int install_routes(LayerStack& stack, RouteDB& db,
                   const std::vector<SavedRoute>& routes);

}  // namespace grr
