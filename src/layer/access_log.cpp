#include "layer/access_log.hpp"

#include <cstdlib>
#include <cstring>

namespace grr {

bool access_audit_env() {
  // Read once before any worker threads exist; the cached value keeps the
  // hot path free of libc calls.
  static const bool on = [] {
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    const char* v = std::getenv("GRR_ACCESS_AUDIT");
    return v != nullptr && *v != '\0' && std::strcmp(v, "0") != 0;
  }();
  return on;
}

}  // namespace grr
