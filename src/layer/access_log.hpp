// Shadow access tracking (footprint soundness analysis).
//
// An AccessLog records, in grid coordinates, every region of shared board
// state a search worker actually read: point probes (via map, occupancy),
// span probes, and the clipped boxes of free-space walks. The log is the
// ground truth the FOOT-* checkers compare a plan's declared ReadFootprint
// against — an access outside the declaration is exactly the condition that
// would let the batch router install a stale plan.
//
// Box-level recording is semantically exact for the free-space walks: a
// FreeSpaceQuery clips its box to the layer extents up front and clips every
// reported gap back to the box, so the walk's *results* depend only on
// segment state inside the box even where the underlying list traversal
// physically strays past an edge. CursorCache hints are exempt by the same
// argument — a hint is validated before use and a stale one degrades to a
// fresh walk with identical results, so hints carry no state a plan's
// correctness can depend on.
//
// The tracker is opt-in (RouterConfig::access_audit or GRR_ACCESS_AUDIT) and
// zero-cost when off: every recording site is a single pointer test against
// a log that is only attached while auditing.
#pragma once

#include <cstddef>
#include <unordered_set>
#include <vector>

#include "geom/geom.hpp"

namespace grr {

/// Per-worker log of actual read regions, grid coordinates. Exact duplicate
/// rects are dropped (a Lee search re-reads the same strip thousands of
/// times); distinct rects are all kept, so no escape can hide behind dedup.
class AccessLog {
 public:
  void clear() {
    rects_.clear();
    seen_.clear();
  }

  void note(const Rect& r) {
    if (r.empty()) return;
    if (seen_.insert(key_of(r)).second) rects_.push_back(r);
  }

  void note_point(Point g) { note({{g.x, g.x}, {g.y, g.y}}); }

  bool empty() const { return rects_.empty(); }
  const std::vector<Rect>& rects() const { return rects_; }

 private:
  struct Key {
    Rect r;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      auto mix = [](std::size_t h, Coord v) {
        h ^= static_cast<std::size_t>(static_cast<std::uint32_t>(v)) +
             0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
        return h;
      };
      std::size_t h = 0;
      h = mix(h, k.r.x.lo);
      h = mix(h, k.r.x.hi);
      h = mix(h, k.r.y.lo);
      h = mix(h, k.r.y.hi);
      return h;
    }
  };

  static Key key_of(const Rect& r) { return Key{r}; }

  std::vector<Rect> rects_;
  std::unordered_set<Key, KeyHash> seen_;
};

/// Process-wide opt-in: true when the GRR_ACCESS_AUDIT environment variable
/// is set to anything but "" or "0". Read once, at first use.
bool access_audit_env();

}  // namespace grr
