// Read-only view of a board's wiring state (search/commit split).
//
// Search workers plan routes against the shared LayerStack concurrently;
// this façade is the type-level guarantee that they can only query it.
// Every accessor forwards to a const method of the underlying stack, so a
// BoardView is freely copyable and safe to hand to any number of threads as
// long as nobody mutates the stack underneath (the batch router mutates only
// between planning phases, from the commit thread).
//
// The view doubles as the instrumentation seam for footprint soundness
// audits: with an AccessLog attached (set_access_log), every accessor that
// reads wiring *state* records the grid region it examined. via_span is
// deliberately not recorded — it is pure geometry (which channel/position a
// drill would occupy), computable from the grid spec alone.
#pragma once

#include "layer/access_log.hpp"
#include "layer/layer_stack.hpp"

namespace grr {

class BoardView {
 public:
  explicit BoardView(const LayerStack& stack) : stack_(&stack) {}

  const GridSpec& spec() const { return stack_->spec(); }
  ChannelStore channel_store() const { return stack_->channel_store(); }
  int num_layers() const { return stack_->num_layers(); }
  const Layer& layer(LayerId l) const { return stack_->layer(l); }
  const SegmentPool& pool() const { return stack_->pool(); }

  bool via_free(Point via) const {
    if (access_ != nullptr) access_->note(stack_->grid_rect_of_via(via));
    return stack_->via_free(via);
  }
  int via_use_count(Point via) const {
    if (access_ != nullptr) access_->note(stack_->grid_rect_of_via(via));
    return stack_->via_use_count(via);
  }
  bool span_free(const PlacedSpan& ps) const {
    if (access_ != nullptr) access_->note(stack_->grid_rect_of(ps));
    return stack_->span_free(ps);
  }
  PlacedSpan via_span(LayerId l, Point via) const {
    return stack_->via_span(l, via);
  }

  bool occupied(LayerId l, Point g) const {
    if (access_ != nullptr) access_->note_point(g);
    return stack_->occupied(l, g);
  }
  ConnId conn_at(LayerId l, Point g) const {
    if (access_ != nullptr) access_->note_point(g);
    return stack_->conn_at(l, g);
  }

  /// Attach (or detach, with nullptr) the shadow access tracker. Read-only
  /// helpers that bypass the view through stack() — LeeSearch, the
  /// free-space walks — carry their own log hookups; the planner attaches
  /// the same log to all of them.
  void set_access_log(AccessLog* log) { access_ = log; }

  /// The underlying stack, const. For handing to read-only helpers
  /// (LeeSearch, audits) that take a `const LayerStack&`.
  const LayerStack& stack() const { return *stack_; }

 private:
  const LayerStack* stack_;
  AccessLog* access_ = nullptr;
};

}  // namespace grr
