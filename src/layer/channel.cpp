#include "layer/channel.hpp"

namespace grr {

SegId Channel::seek(const SegmentPool& pool, Coord v, SegId hint) const {
  if (head_ == kNoSeg) return kNoSeg;
  SegId s = (hint != kNoSeg) ? hint : head_;
  if (pool[s].span.lo <= v) {
    // Walk up while the next segment still starts at or below v.
    while (true) {
      SegId nxt = pool[s].next;
      if (nxt == kNoSeg || pool[nxt].span.lo > v) break;
      s = nxt;
    }
  } else {
    // Walk down until a segment starts at or below v (or run off the head).
    while (s != kNoSeg && pool[s].span.lo > v) s = pool[s].prev;
    if (s == kNoSeg) return kNoSeg;
  }
  return s;
}

Interval Channel::free_gap_at(const SegmentPool& pool, Interval extent,
                              Coord v, SegId* cursor) const {
  if (!extent.contains(v)) return {};
  SegId s = seek(pool, v, cursor ? *cursor : kNoSeg);
  if (cursor) *cursor = (s == kNoSeg) ? head_ : s;
  if (s != kNoSeg && pool[s].span.hi >= v) return {};  // occupied
  Coord lo = (s == kNoSeg) ? extent.lo : pool[s].span.hi + 1;
  SegId nxt = (s == kNoSeg) ? head_ : pool[s].next;
  Coord hi = (nxt == kNoSeg) ? extent.hi : pool[nxt].span.lo - 1;
  return {lo, hi};
}

SegId Channel::insert(SegmentPool& pool, Segment seg) {
  assert(!seg.span.empty());
  SegId below = seek(pool, seg.span.lo);
  assert(below == kNoSeg || pool[below].span.hi < seg.span.lo);
  SegId above = (below == kNoSeg) ? head_ : pool[below].next;
  assert(above == kNoSeg || pool[above].span.lo > seg.span.hi);

  seg.prev = below;
  seg.next = above;
  SegId id = pool.allocate(seg);
  if (below != kNoSeg) {
    pool[below].next = id;
  } else {
    head_ = id;
  }
  if (above != kNoSeg) pool[above].prev = id;
  ++count_;
  return id;
}

void Channel::erase(SegmentPool& pool, SegId id) {
  const Segment& seg = pool[id];
  SegId below = seg.prev;
  SegId above = seg.next;
  if (below != kNoSeg) {
    pool[below].next = above;
  } else {
    head_ = above;
  }
  if (above != kNoSeg) pool[above].prev = below;
  pool.release(id);
  assert(count_ > 0);
  --count_;
}

}  // namespace grr
