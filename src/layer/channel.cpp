#include "layer/channel.hpp"

namespace grr {

namespace {

/// 64-bit masks for bit positions >= b / <= b within one word.
inline std::uint64_t mask_from(unsigned b) { return ~std::uint64_t{0} << b; }
inline std::uint64_t mask_upto(unsigned b) {
  return ~std::uint64_t{0} >> (63 - b);
}

}  // namespace

SegId Channel::seek(const SegmentPool& pool, Coord v, SegId hint) const {
  if (flat_) {
    const std::size_t n = id_.size();
    if (n == 0) return kNoSeg;
    std::size_t cnt;
    if (hint != kNoSeg && pool[hint].chan_slot < n &&
        id_[pool[hint].chan_slot] == hint) {
      cnt = flat_count_lo_le_from(v, pool[hint].chan_slot);
    } else {
      cnt = count_le(lo_.data(), n, v);
    }
    return cnt == 0 ? kNoSeg : id_[cnt - 1];
  }
  if (head_ == kNoSeg) return kNoSeg;
  SegId s = (hint != kNoSeg) ? hint : head_;
  if (pool[s].span.lo <= v) {
    // Walk up while the next segment still starts at or below v.
    while (true) {
      SegId nxt = pool[s].next;
      if (nxt == kNoSeg || pool[nxt].span.lo > v) break;
      s = nxt;
    }
  } else {
    // Walk down until a segment starts at or below v (or run off the head).
    while (s != kNoSeg && pool[s].span.lo > v) s = pool[s].prev;
    if (s == kNoSeg) return kNoSeg;
  }
  return s;
}

std::size_t Channel::flat_count_lo_le_from(Coord v,
                                           std::size_t hint_slot) const {
  const Coord* a = lo_.data();
  const std::size_t n = lo_.size();
  // Bracket the boundary (the first index with a[i] > v) around the hint
  // with exponentially growing probes, then finish branchlessly inside.
  std::size_t b, e;  // boundary is in [b, e]
  if (a[hint_slot] <= v) {
    std::size_t last_le = hint_slot;
    std::size_t off = 1;
    while (true) {
      const std::size_t p = hint_slot + off;
      if (p >= n) {
        e = n;
        break;
      }
      if (a[p] > v) {
        e = p;
        break;
      }
      last_le = p;
      off <<= 1;
    }
    b = last_le + 1;
  } else {
    std::size_t first_gt = hint_slot;
    std::size_t off = 1;
    std::ptrdiff_t last_le = -1;
    while (true) {
      if (off > hint_slot) break;  // ran past the front: last_le stays -1
      const std::size_t p = hint_slot - off;
      if (a[p] <= v) {
        last_le = static_cast<std::ptrdiff_t>(p);
        break;
      }
      first_gt = p;
      off <<= 1;
    }
    b = static_cast<std::size_t>(last_le + 1);
    e = first_gt;
  }
  // Candidates strictly inside the bracket: a[b-1] <= v (or b == 0) and
  // a[e] > v (or e == n) are already known.
  return b + count_le(a + b, e - b, v);
}

std::ptrdiff_t Channel::flat_next_occupied(std::size_t i) const {
  const std::size_t nw = bits_.size();
  std::size_t w = i >> 6;
  if (w >= nw) return -1;
  const std::uint64_t m = bits_[w] & mask_from(i & 63);
  if (m != 0) {
    return static_cast<std::ptrdiff_t>((w << 6) + std::countr_zero(m));
  }
  // Coarse level: find the next non-empty word.
  std::size_t ww = w + 1;
  while (ww < nw) {
    const std::size_t sw = ww >> 6;
    const std::uint64_t sm = summary_[sw] & mask_from(ww & 63);
    if (sm != 0) {
      const std::size_t w2 = (sw << 6) + std::countr_zero(sm);
      return static_cast<std::ptrdiff_t>((w2 << 6) +
                                         std::countr_zero(bits_[w2]));
    }
    ww = (sw + 1) << 6;
  }
  return -1;
}

std::ptrdiff_t Channel::flat_prev_occupied(std::ptrdiff_t i) const {
  if (i < 0) return -1;
  const std::size_t w = static_cast<std::size_t>(i) >> 6;
  const std::uint64_t m = bits_[w] & mask_upto(i & 63);
  if (m != 0) {
    return static_cast<std::ptrdiff_t>((w << 6) + 63 -
                                       std::countl_zero(m));
  }
  // Coarse level: find the previous non-empty word.
  std::ptrdiff_t ww = static_cast<std::ptrdiff_t>(w) - 1;
  while (ww >= 0) {
    const std::size_t sw = static_cast<std::size_t>(ww) >> 6;
    const std::uint64_t sm = summary_[sw] & mask_upto(ww & 63);
    if (sm != 0) {
      const std::size_t w2 = (sw << 6) + 63 - std::countl_zero(sm);
      return static_cast<std::ptrdiff_t>((w2 << 6) + 63 -
                                         std::countl_zero(bits_[w2]));
    }
    ww = static_cast<std::ptrdiff_t>(sw << 6) - 1;
  }
  return -1;
}

Interval Channel::free_gap_at(const SegmentPool& pool, Interval extent,
                              Coord v, SegId* cursor) const {
  if (!extent.contains(v)) return {};
  if (flat_) {
    if (extent_.contains(v)) {
      const std::size_t c = cell_of(v);
      if (bit_test(c)) return {};  // occupied
      const std::ptrdiff_t below =
          flat_prev_occupied(static_cast<std::ptrdiff_t>(c) - 1);
      const std::ptrdiff_t above = flat_next_occupied(c + 1);
      const Coord lo =
          below < 0 ? extent.lo : extent_.lo + static_cast<Coord>(below) + 1;
      const Coord hi =
          above < 0 ? extent.hi : extent_.lo + static_cast<Coord>(above) - 1;
      return {lo, hi};
    }
    // Probe outside the configured universe (test-only): derive the gap
    // from the arrays directly.
    const std::size_t n = id_.size();
    const std::size_t cnt = count_le(lo_.data(), n, v);
    if (cnt > 0 && hi_[cnt - 1] >= v) return {};  // occupied
    const Coord lo = (cnt == 0) ? extent.lo : hi_[cnt - 1] + 1;
    const Coord hi = (cnt == n) ? extent.hi : lo_[cnt] - 1;
    return {lo, hi};
  }
  SegId s = seek(pool, v, cursor ? *cursor : kNoSeg);
  if (cursor) *cursor = (s == kNoSeg) ? head_ : s;
  if (s != kNoSeg && pool[s].span.hi >= v) return {};  // occupied
  Coord lo = (s == kNoSeg) ? extent.lo : pool[s].span.hi + 1;
  SegId nxt = (s == kNoSeg) ? head_ : pool[s].next;
  Coord hi = (nxt == kNoSeg) ? extent.hi : pool[nxt].span.lo - 1;
  return {lo, hi};
}

void Channel::flat_set_bits(Interval span) {
  const std::size_t a = cell_of(span.lo);
  const std::size_t b = cell_of(span.hi);
  const std::size_t wa = a >> 6;
  const std::size_t wb = b >> 6;
  if (wa == wb) {
    bits_[wa] |= mask_from(a & 63) & mask_upto(b & 63);
  } else {
    bits_[wa] |= mask_from(a & 63);
    for (std::size_t w = wa + 1; w < wb; ++w) bits_[w] = ~std::uint64_t{0};
    bits_[wb] |= mask_upto(b & 63);
  }
  for (std::size_t w = wa; w <= wb; ++w) {
    summary_[w >> 6] |= std::uint64_t{1} << (w & 63);
  }
}

void Channel::flat_clear_bits(Interval span) {
  const std::size_t a = cell_of(span.lo);
  const std::size_t b = cell_of(span.hi);
  const std::size_t wa = a >> 6;
  const std::size_t wb = b >> 6;
  if (wa == wb) {
    bits_[wa] &= ~(mask_from(a & 63) & mask_upto(b & 63));
  } else {
    bits_[wa] &= ~mask_from(a & 63);
    for (std::size_t w = wa + 1; w < wb; ++w) bits_[w] = 0;
    bits_[wb] &= ~mask_upto(b & 63);
  }
  for (std::size_t w = wa; w <= wb; ++w) {
    if (bits_[w] == 0) {
      summary_[w >> 6] &= ~(std::uint64_t{1} << (w & 63));
    }
  }
}

SegId Channel::insert(SegmentPool& pool, Segment seg) {
  assert(!seg.span.empty());
  if (flat_) return flat_insert(pool, seg);
  SegId below = seek(pool, seg.span.lo);
  assert(below == kNoSeg || pool[below].span.hi < seg.span.lo);
  SegId above = (below == kNoSeg) ? head_ : pool[below].next;
  assert(above == kNoSeg || pool[above].span.lo > seg.span.hi);

  seg.prev = below;
  seg.next = above;
  SegId id = pool.allocate(seg);
  if (below != kNoSeg) {
    pool[below].next = id;
  } else {
    head_ = id;
  }
  if (above != kNoSeg) pool[above].prev = id;
  ++count_;
  return id;
}

SegId Channel::flat_insert(SegmentPool& pool, Segment seg) {
  assert(extent_.contains(seg.span) &&
         "flat store requires spans inside the configured extent");
  const std::size_t pos = count_le(lo_.data(), lo_.size(), seg.span.lo);
  assert(pos == 0 || hi_[pos - 1] < seg.span.lo);
  assert(pos == id_.size() || lo_[pos] > seg.span.hi);
  const SegId below = (pos == 0) ? kNoSeg : id_[pos - 1];
  const SegId above = (pos == id_.size()) ? kNoSeg : id_[pos];

  // Pool links are maintained exactly as in list mode so that external
  // walkers (audits, stats, the seed baseline) see the same structure.
  seg.prev = below;
  seg.next = above;
  seg.chan_slot = static_cast<std::uint32_t>(pos);
  const SegId id = pool.allocate(seg);
  if (below != kNoSeg) {
    pool[below].next = id;
  } else {
    head_ = id;
  }
  if (above != kNoSeg) pool[above].prev = id;

  lo_.insert(lo_.begin() + static_cast<std::ptrdiff_t>(pos), seg.span.lo);
  hi_.insert(hi_.begin() + static_cast<std::ptrdiff_t>(pos), seg.span.hi);
  id_.insert(id_.begin() + static_cast<std::ptrdiff_t>(pos), id);
  conn_.insert(conn_.begin() + static_cast<std::ptrdiff_t>(pos), seg.conn);
  for (std::size_t i = pos + 1; i < id_.size(); ++i) {
    pool[id_[i]].chan_slot = static_cast<std::uint32_t>(i);
  }
  flat_set_bits(seg.span);
  ++count_;
  return id;
}

void Channel::erase(SegmentPool& pool, SegId id) {
  if (flat_) {
    flat_erase(pool, id);
    return;
  }
  const Segment& seg = pool[id];
  SegId below = seg.prev;
  SegId above = seg.next;
  if (below != kNoSeg) {
    pool[below].next = above;
  } else {
    head_ = above;
  }
  if (above != kNoSeg) pool[above].prev = below;
  pool.release(id);
  assert(count_ > 0);
  --count_;
}

void Channel::flat_erase(SegmentPool& pool, SegId id) {
  const Segment& seg = pool[id];
  const std::size_t pos = seg.chan_slot;
  assert(pos < id_.size() && id_[pos] == id);
  const SegId below = seg.prev;
  const SegId above = seg.next;
  if (below != kNoSeg) {
    pool[below].next = above;
  } else {
    head_ = above;
  }
  if (above != kNoSeg) pool[above].prev = below;

  flat_clear_bits(seg.span);
  lo_.erase(lo_.begin() + static_cast<std::ptrdiff_t>(pos));
  hi_.erase(hi_.begin() + static_cast<std::ptrdiff_t>(pos));
  id_.erase(id_.begin() + static_cast<std::ptrdiff_t>(pos));
  conn_.erase(conn_.begin() + static_cast<std::ptrdiff_t>(pos));
  for (std::size_t i = pos; i < id_.size(); ++i) {
    pool[id_[i]].chan_slot = static_cast<std::uint32_t>(i);
  }
  pool.release(id);
  assert(count_ > 0);
  --count_;
}

bool Channel::store_consistent(const SegmentPool& pool) const {
  if (!flat_) return true;
  if (lo_.size() != count_ || hi_.size() != count_ ||
      id_.size() != count_ || conn_.size() != count_) {
    return false;
  }
  // Arrays sorted, disjoint, mirroring the pool and the chan_slot
  // indirection; head_/prev/next agree with the slot order.
  if (count_ == 0 && head_ != kNoSeg) return false;
  if (count_ > 0 && head_ != id_[0]) return false;
  for (std::size_t i = 0; i < count_; ++i) {
    const Segment& s = pool[id_[i]];
    if (s.span.lo != lo_[i] || s.span.hi != hi_[i] || s.conn != conn_[i]) {
      return false;
    }
    if (s.chan_slot != i) return false;
    if (i > 0 && hi_[i - 1] >= lo_[i]) return false;
    if (s.prev != (i == 0 ? kNoSeg : id_[i - 1])) return false;
    if (s.next != (i + 1 == count_ ? kNoSeg : id_[i + 1])) return false;
    if (!extent_.contains(Interval{lo_[i], hi_[i]})) return false;
  }
  // Bitmap and summary agree with the segments exactly.
  std::vector<std::uint64_t> want(bits_.size(), 0);
  for (std::size_t i = 0; i < count_; ++i) {
    for (Coord v = lo_[i]; v <= hi_[i]; ++v) {
      const std::size_t c = cell_of(v);
      want[c >> 6] |= std::uint64_t{1} << (c & 63);
    }
  }
  if (want != bits_) return false;
  for (std::size_t w = 0; w < bits_.size(); ++w) {
    const bool summarized = (summary_[w >> 6] >> (w & 63)) & 1u;
    if (summarized != (bits_[w] != 0)) return false;
  }
  return true;
}

}  // namespace grr
