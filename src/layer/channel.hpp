// A channel: one grid line of a layer, holding the used segments on it
// (paper Secs 4 and 12).
//
// Two interchangeable representations live behind one API, selected per
// board at construction (ChannelStore):
//
//  * kList — the paper's sorted doubly linked list. The access pattern
//    while routing one connection is strongly localized, so searches start
//    from the segment touched last and walk the list; the paper reports
//    that replacing a binary tree with exactly this structure halved total
//    routing time. The paper kept that moving cursor inside the channel;
//    here it lives in a per-worker CursorCache instead and is threaded
//    through queries as an optional `hint`, so that a Channel is genuinely
//    const and any number of search workers can read the board
//    concurrently.
//
//  * kFlat — a cache-resident structure-of-arrays store: the segment
//    bounds live in contiguous sorted arrays (`lo_`, `hi_`, plus the owning
//    conn and the SegId handle per slot), so seek is a branchless binary
//    search over one or two cache lines instead of a chain of dependent
//    loads, and enumeration is a linear array walk. Occupancy is mirrored
//    into a per-cell bitmap packed into 64-bit words with a one-bit-per-word
//    summary level, so occupied() is a single bit test and free_gap_at()
//    resolves by countl_zero/countr_zero word scans. SegId stays the stable
//    handle: Segment::chan_slot is the indirection from a pool id to its
//    current flat slot, maintained on every insert/erase. The pool's
//    prev/next links and head_ are still maintained so external walkers
//    (audits, stats, the seed baseline) read either store identically.
//
// Both stores produce bit-identical query results — the same segments, the
// same maximal gaps, in the same order; cursor hints only change where a
// list walk starts, never what it returns. Free space is not represented
// explicitly as segments: it is inferred from the gaps (list) or the zero
// runs (flat).
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>
#include <vector>

#include "layer/segment_pool.hpp"

namespace grr {

/// Which per-channel representation a board's channels use. Chosen once at
/// board construction; the two stores are bit-identical in outcome (held to
/// it by lee_equivalence_test, SuiteDeterminism and channel_store_test) and
/// differ only in speed.
enum class ChannelStore : std::uint8_t {
  kList,  // paper Secs 4/12: sorted doubly linked list + cursor hints
  kFlat,  // flat SoA arrays + word-scan occupancy bitmap
};

/// Default for newly built boards: the cache-resident store. The list store
/// remains selectable for the ablation benches and the equivalence tests.
inline constexpr ChannelStore kDefaultChannelStore = ChannelStore::kFlat;

class Channel {
 public:
  /// Select the representation and (for kFlat) size the occupancy bitmap to
  /// the channel's coordinate universe. Must be called before any insert; a
  /// default-constructed Channel is a list-store channel, so existing
  /// direct users are unaffected.
  void configure(Interval extent, ChannelStore store) {
    assert(count_ == 0 && "configure() must precede any insert");
    flat_ = (store == ChannelStore::kFlat);
    extent_ = extent;
    if (flat_ && !extent.empty()) {
      const auto cells = static_cast<std::size_t>(extent.length());
      bits_.assign((cells + 63) / 64, 0);
      summary_.assign((bits_.size() + 63) / 64, 0);
    }
  }

  ChannelStore store() const {
    return flat_ ? ChannelStore::kFlat : ChannelStore::kList;
  }

  bool empty() const { return count_ == 0; }
  SegId head() const { return head_; }

  /// Last segment s with s.span.lo <= v, or kNoSeg if none. `hint` names a
  /// segment of this channel to start from (kNoSeg: the head); pass a
  /// CursorCache-validated hint to keep the paper's locality speedup. The
  /// flat store gallops from the hint's slot instead of walking links; the
  /// result never depends on the hint.
  SegId seek(const SegmentPool& pool, Coord v, SegId hint = kNoSeg) const;

  /// Segment containing v, or kNoSeg.
  SegId find_at(const SegmentPool& pool, Coord v,
                SegId hint = kNoSeg) const {
    if (flat_) {
      const std::size_t s = flat_slot_at(v);
      return s == kNoSlot ? kNoSeg : id_[s];
    }
    SegId s = seek(pool, v, hint);
    return (s != kNoSeg && pool[s].span.hi >= v) ? s : kNoSeg;
  }

  /// Is v covered by a segment? `cursor`, when non-null, is the caller's
  /// in/out walk-start hint for this channel (already validated as a live
  /// segment of this channel — see CursorCache::hint / Layer::occupied).
  /// The flat store answers with one bit test and ignores the hint.
  bool occupied(const SegmentPool& pool, Coord v,
                SegId* cursor = nullptr) const {
    if (flat_) return extent_.contains(v) && bit_test(cell_of(v));
    SegId s = seek(pool, v, cursor != nullptr ? *cursor : kNoSeg);
    if (cursor != nullptr) *cursor = (s == kNoSeg) ? head_ : s;
    return s != kNoSeg && pool[s].span.hi >= v;
  }

  /// Connection occupying v, or kNoConn. The flat store reads the conn from
  /// its own array — no pool dereference on the hot path.
  ConnId conn_at(const SegmentPool& pool, Coord v,
                 SegId hint = kNoSeg) const {
    if (flat_) {
      const std::size_t s = flat_slot_at(v);
      return s == kNoSlot ? kNoConn : conn_[s];
    }
    SegId s = find_at(pool, v, hint);
    return s == kNoSeg ? kNoConn : pool[s].conn;
  }

  /// Maximal free interval containing v, clipped to `extent` (the channel's
  /// valid coordinate range). Returns an empty interval if v is occupied or
  /// outside the extent. `cursor`, when non-null, is the worker's in/out
  /// walk-start hint for this channel.
  Interval free_gap_at(const SegmentPool& pool, Interval extent, Coord v,
                       SegId* cursor = nullptr) const;

  /// Invoke fn(SegId) for every used segment overlapping `range`, in
  /// ascending order.
  template <typename Fn>
  void for_segs_overlapping(const SegmentPool& pool, Interval range,
                            Fn&& fn, SegId* cursor = nullptr) const {
    if (range.empty()) return;
    if (flat_) {
      // Segments are disjoint, so hi_ is sorted too: the first overlap
      // candidate is the first segment ending at or after range.lo.
      const std::size_t n = id_.size();
      for (std::size_t i = count_lt(hi_.data(), n, range.lo);
           i < n && lo_[i] <= range.hi; ++i) {
        fn(id_[i]);
      }
      return;
    }
    SegId s = seek(pool, range.lo, cursor ? *cursor : kNoSeg);
    if (cursor) *cursor = (s == kNoSeg) ? head_ : s;
    if (s == kNoSeg || pool[s].span.hi < range.lo) {
      s = (s == kNoSeg) ? head_ : pool[s].next;
    }
    while (s != kNoSeg && pool[s].span.lo <= range.hi) {
      fn(s);
      s = pool[s].next;
    }
  }

  /// Invoke fn(Interval) for every maximal free gap that overlaps `range`,
  /// in ascending order. Gaps are reported in full (clipped to `extent`
  /// only, not to `range`) so that a gap has one canonical identity no
  /// matter which probe interval discovered it.
  template <typename Fn>
  void for_gaps_overlapping(const SegmentPool& pool, Interval extent,
                            Interval range, Fn&& fn,
                            SegId* cursor = nullptr) const {
    range = range.intersect(extent);
    if (range.empty()) return;
    if (flat_) {
      // Mirror of the list walk below over the flat arrays: slot `nxt` is
      // the segment bounding the current candidate gap from above.
      const std::size_t n = id_.size();
      std::size_t nxt = count_le(lo_.data(), n, range.lo);
      Coord lo = (nxt == 0) ? extent.lo : hi_[nxt - 1] + 1;
      while (lo <= range.hi) {
        const Coord hi = (nxt == n) ? extent.hi : lo_[nxt] - 1;
        const Interval gap{lo, hi};
        if (!gap.empty() && gap.overlaps(range)) fn(gap);
        if (nxt == n) break;
        lo = hi_[nxt] + 1;
        ++nxt;
      }
      return;
    }
    SegId s = seek(pool, range.lo, cursor ? *cursor : kNoSeg);
    if (cursor) *cursor = (s == kNoSeg) ? head_ : s;
    // `lo` walks the lower boundary of the next candidate gap.
    Coord lo = (s == kNoSeg) ? extent.lo : pool[s].span.hi + 1;
    SegId nxt = (s == kNoSeg) ? head_ : pool[s].next;
    while (lo <= range.hi) {
      Coord hi = (nxt == kNoSeg) ? extent.hi : pool[nxt].span.lo - 1;
      Interval gap{lo, hi};
      if (!gap.empty() && gap.overlaps(range)) fn(gap);
      if (nxt == kNoSeg) break;
      lo = pool[nxt].span.hi + 1;
      nxt = pool[nxt].next;
    }
  }

  /// Insert a segment occupying `seg.span`. The span must not overlap any
  /// existing segment (and, for the flat store, must lie within the
  /// configured extent). Returns the new segment's id.
  SegId insert(SegmentPool& pool, Segment seg);

  /// Remove a segment from the channel (and release it from the pool).
  void erase(SegmentPool& pool, SegId id);

  std::size_t count() const { return count_; }

  /// Internal-consistency check for audits: flat arrays sorted, disjoint
  /// and in exact agreement with the pool links, the chan_slot indirection,
  /// the bitmap and its summary. Trivially true for the list store (its
  /// only invariants are the pool links the audit already walks).
  bool store_consistent(const SegmentPool& pool) const;

 private:
  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

  /// Number of values in a[0..n) that are <= v (branchless binary search:
  /// the loop is a fixed halving with a conditional move, no hard-to-predict
  /// branch on the comparison).
  static std::size_t count_le(const Coord* a, std::size_t n, Coord v) {
    const Coord* base = a;
    while (n > 1) {
      const std::size_t half = n >> 1;
      base += (base[half - 1] <= v) ? half : 0;
      n -= half;
    }
    return static_cast<std::size_t>(base - a) +
           (n == 1 && base[0] <= v ? 1 : 0);
  }

  /// Number of values in a[0..n) that are < v.
  static std::size_t count_lt(const Coord* a, std::size_t n, Coord v) {
    const Coord* base = a;
    while (n > 1) {
      const std::size_t half = n >> 1;
      base += (base[half - 1] < v) ? half : 0;
      n -= half;
    }
    return static_cast<std::size_t>(base - a) +
           (n == 1 && base[0] < v ? 1 : 0);
  }

  /// count_le over lo_, galloping out from a hinted slot: exponential probes
  /// bracket the boundary near the hint, then the branchless search finishes
  /// inside the bracket. Equal to count_le(lo_, n, v) for any hint.
  std::size_t flat_count_lo_le_from(Coord v, std::size_t hint_slot) const;

  /// Flat slot covering v, or kNoSlot.
  std::size_t flat_slot_at(Coord v) const {
    if (!extent_.contains(v) || !bit_test(cell_of(v))) return kNoSlot;
    // Covered, so the covering segment is the first with hi >= v.
    return count_lt(hi_.data(), hi_.size(), v);
  }

  std::size_t cell_of(Coord v) const {
    return static_cast<std::size_t>(v - extent_.lo);
  }
  bool bit_test(std::size_t i) const {
    return (bits_[i >> 6] >> (i & 63)) & 1u;
  }

  /// Index of the nearest occupied cell at or after `i` / at or before `i`;
  /// -1 if none. The summary word level skips runs of empty words.
  std::ptrdiff_t flat_next_occupied(std::size_t i) const;
  std::ptrdiff_t flat_prev_occupied(std::ptrdiff_t i) const;

  void flat_set_bits(Interval span);
  void flat_clear_bits(Interval span);

  SegId flat_insert(SegmentPool& pool, Segment seg);
  void flat_erase(SegmentPool& pool, SegId id);

  SegId head_ = kNoSeg;
  std::size_t count_ = 0;
  bool flat_ = false;

  // Flat store (unused and empty in list mode). The bound arrays are what
  // the hot queries touch; id_/conn_ ride along one index away.
  Interval extent_;             // configured coordinate universe
  std::vector<Coord> lo_;       // span.lo per slot, ascending
  std::vector<Coord> hi_;       // span.hi per slot (ascending too: disjoint)
  std::vector<SegId> id_;       // stable pool handle per slot
  std::vector<ConnId> conn_;    // owning connection per slot
  std::vector<std::uint64_t> bits_;     // one occupancy bit per cell
  std::vector<std::uint64_t> summary_;  // bit w: bits_[w] has any bit set
};

}  // namespace grr
