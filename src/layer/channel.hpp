// A channel: one grid line of a layer, holding the used segments on it as a
// sorted doubly linked list (paper Secs 4 and 12).
//
// The access pattern while routing one connection is strongly localized, so
// searches start from the segment touched last and walk the list; the paper
// reports that replacing a binary tree with exactly this structure halved
// total routing time. The paper kept that moving cursor inside the channel;
// here it lives in a per-worker CursorCache instead and is threaded through
// queries as an optional `hint`, so that a Channel is genuinely const and
// any number of search workers can read the board concurrently. Free space
// is not represented explicitly: it is inferred from the gaps between
// segments.
#pragma once

#include <cassert>

#include "layer/segment_pool.hpp"

namespace grr {

class Channel {
 public:
  bool empty() const { return head_ == kNoSeg; }
  SegId head() const { return head_; }

  /// Last segment s with s.span.lo <= v, or kNoSeg if none. `hint` names a
  /// segment of this channel to start walking from (kNoSeg: the head); pass
  /// a CursorCache-validated hint to keep the paper's locality speedup.
  SegId seek(const SegmentPool& pool, Coord v, SegId hint = kNoSeg) const;

  /// Segment containing v, or kNoSeg.
  SegId find_at(const SegmentPool& pool, Coord v,
                SegId hint = kNoSeg) const {
    SegId s = seek(pool, v, hint);
    return (s != kNoSeg && pool[s].span.hi >= v) ? s : kNoSeg;
  }

  bool occupied(const SegmentPool& pool, Coord v) const {
    return find_at(pool, v) != kNoSeg;
  }

  /// Maximal free interval containing v, clipped to `extent` (the channel's
  /// valid coordinate range). Returns an empty interval if v is occupied or
  /// outside the extent. `cursor`, when non-null, is the worker's in/out
  /// walk-start hint for this channel.
  Interval free_gap_at(const SegmentPool& pool, Interval extent, Coord v,
                       SegId* cursor = nullptr) const;

  /// Invoke fn(SegId) for every used segment overlapping `range`, in
  /// ascending order.
  template <typename Fn>
  void for_segs_overlapping(const SegmentPool& pool, Interval range,
                            Fn&& fn, SegId* cursor = nullptr) const {
    if (range.empty()) return;
    SegId s = seek(pool, range.lo, cursor ? *cursor : kNoSeg);
    if (cursor) *cursor = (s == kNoSeg) ? head_ : s;
    if (s == kNoSeg || pool[s].span.hi < range.lo) {
      s = (s == kNoSeg) ? head_ : pool[s].next;
    }
    while (s != kNoSeg && pool[s].span.lo <= range.hi) {
      fn(s);
      s = pool[s].next;
    }
  }

  /// Invoke fn(Interval) for every maximal free gap that overlaps `range`,
  /// in ascending order. Gaps are reported in full (clipped to `extent`
  /// only, not to `range`) so that a gap has one canonical identity no
  /// matter which probe interval discovered it.
  template <typename Fn>
  void for_gaps_overlapping(const SegmentPool& pool, Interval extent,
                            Interval range, Fn&& fn,
                            SegId* cursor = nullptr) const {
    range = range.intersect(extent);
    if (range.empty()) return;
    SegId s = seek(pool, range.lo, cursor ? *cursor : kNoSeg);
    if (cursor) *cursor = (s == kNoSeg) ? head_ : s;
    // `lo` walks the lower boundary of the next candidate gap.
    Coord lo = (s == kNoSeg) ? extent.lo : pool[s].span.hi + 1;
    SegId nxt = (s == kNoSeg) ? head_ : pool[s].next;
    while (lo <= range.hi) {
      Coord hi = (nxt == kNoSeg) ? extent.hi : pool[nxt].span.lo - 1;
      Interval gap{lo, hi};
      if (!gap.empty() && gap.overlaps(range)) fn(gap);
      if (nxt == kNoSeg) break;
      lo = pool[nxt].span.hi + 1;
      nxt = pool[nxt].next;
    }
  }

  /// Insert a segment occupying `seg.span`. The span must not overlap any
  /// existing segment. Returns the new segment's id.
  SegId insert(SegmentPool& pool, Segment seg);

  /// Remove a segment from the channel (and release it from the pool).
  void erase(SegmentPool& pool, SegId id);

  std::size_t count() const { return count_; }

 private:
  SegId head_ = kNoSeg;
  std::size_t count_ = 0;
};

}  // namespace grr
