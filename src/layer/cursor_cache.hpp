// Per-worker channel cursors (paper Secs 4 and 12).
//
// The paper's Channel kept a moving head-of-list cursor inside the data
// structure itself ("searches start from the segment touched last"); that
// made every "const" query secretly mutating and the whole board unsafe to
// read concurrently. The cursor survives here as a thread-local *hint*: a
// small direct-mapped cache, owned by each search worker, mapping
// (layer, channel) to the segment that worker touched last. The shared
// Channel stays genuinely read-only; the locality speedup is preserved
// because the access pattern that made the cursor pay off — one connection
// probing the same few channels over and over — is per-worker anyway.
#pragma once

#include <cstdint>
#include <vector>

#include "layer/segment_pool.hpp"

namespace grr {

class CursorCache {
 public:
  CursorCache() : slots_(kSlots) {}

  /// Validated hint for (layer, channel): the cached segment if it is still
  /// live in that exact channel, else kNoSeg. A stale id whose pool slot was
  /// recycled into another channel would corrupt the list walk, so the hint
  /// is only trusted when the pool's own bookkeeping confirms it.
  SegId hint(const SegmentPool& pool, LayerId layer, Coord channel) const {
    const Entry& e = slots_[index(layer, channel)];
    if (e.key != key(layer, channel) || e.seg == kNoSeg) return kNoSeg;
    if (e.seg >= pool.capacity()) return kNoSeg;
    const Segment& s = pool[e.seg];
    if (s.conn == kNoConn || s.layer != layer || s.channel != channel) {
      return kNoSeg;
    }
    return e.seg;
  }

  void remember(LayerId layer, Coord channel, SegId seg) {
    slots_[index(layer, channel)] = {key(layer, channel), seg};
  }

  void clear() {
    for (Entry& e : slots_) e = Entry{};
  }

 private:
  static constexpr std::size_t kSlots = 512;  // power of two

  struct Entry {
    std::uint64_t key = ~std::uint64_t{0};
    SegId seg = kNoSeg;
  };

  static std::uint64_t key(LayerId layer, Coord channel) {
    return (std::uint64_t{layer} << 32) |
           static_cast<std::uint32_t>(channel);
  }
  static std::size_t index(LayerId layer, Coord channel) {
    std::uint64_t k = key(layer, channel);
    k ^= k >> 33;
    k *= 0xff51afd7ed558ccdULL;
    k ^= k >> 33;
    return static_cast<std::size_t>(k) & (kSlots - 1);
  }

  std::vector<Entry> slots_;
};

}  // namespace grr
