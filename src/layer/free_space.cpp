#include "layer/free_space.hpp"

namespace grr {

// Anchor instantiations for the two channel flavours.
template std::optional<std::vector<ChannelSpan>> trace_path<Layer>(
    const Layer&, const SegmentPool&, Point, Point, Rect, std::size_t,
    FreeSpaceStats*, int, CursorCache*, const PlanOverlay*,
    FreeSpaceScratch*);
template std::optional<std::vector<ChannelSpan>> trace_path<TreeLayer>(
    const TreeLayer&, const SegmentPool&, Point, Point, Rect, std::size_t,
    FreeSpaceStats*, int, CursorCache*, const PlanOverlay*,
    FreeSpaceScratch*);

}  // namespace grr
