// The three single-layer algorithms (paper Sec 7): Trace, Vias and
// Obstructions. All three are variations of one method — recursive
// enumeration of the free space around a point, where a search step moves
// from a maximal free gap to overlapping free gaps in the two adjacent
// channels. The cost is proportional to the number of free segments
// examined, not to the distance between the end points.
//
// They are templates over the layer type so that the linked-list Channel and
// the binary-tree TreeChannel (Sec 12 ablation) run through identical code.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "layer/access_log.hpp"
#include "layer/cursor_cache.hpp"
#include "layer/layer.hpp"
#include "layer/plan_overlay.hpp"

namespace grr {

/// A used span in a single layer's channel space (no layer id); the
/// building block Trace returns.
struct ChannelSpan {
  Coord channel = 0;
  Interval span;

  friend bool operator==(const ChannelSpan&, const ChannelSpan&) = default;
};

inline constexpr std::size_t kDefaultMaxFreeNodes = 1u << 20;

namespace detail {

/// Search box translated into one layer's channel space. Optionally carries
/// a per-worker CursorCache (walk-start hints, the paper's moving-cursor
/// speedup) and a PlanOverlay (tentative metal of the plan under
/// construction, subtracted from every reported gap).
template <typename LayerT>
struct FreeSpaceQuery {
  const LayerT& layer;
  const SegmentPool& pool;
  CursorCache* cursors = nullptr;
  const PlanOverlay* overlay = nullptr;
  Interval box_across;
  Interval box_along;

  FreeSpaceQuery(const LayerT& l, const SegmentPool& p, Rect box,
                 CursorCache* cur = nullptr,
                 const PlanOverlay* ov = nullptr)
      : layer(l), pool(p), cursors(cur), overlay(ov) {
    const bool horiz = l.orientation() == Orientation::kHorizontal;
    box_across = (horiz ? box.y : box.x).intersect(l.across_extent());
    box_along = (horiz ? box.x : box.y).intersect(l.along_extent());
    // The flat store answers every probe positionlessly (bit tests and
    // array searches), so hint upkeep would be pure overhead: drop it.
    if (l.store() == ChannelStore::kFlat) cursors = nullptr;
  }

  bool valid() const { return !box_across.empty() && !box_along.empty(); }

  /// The clipped box back in grid coordinates — the region this walk's
  /// results can depend on (every reported gap is clipped to it), i.e. what
  /// the shadow access tracker records for the whole walk.
  Rect grid_box() const {
    if (layer.orientation() == Orientation::kHorizontal) {
      return {box_along, box_across};
    }
    return {box_across, box_along};
  }

  /// Maximal free gap containing `v` in channel `ch`, clipped to the box.
  /// Empty if occupied or outside the box.
  Interval gap_at(Coord ch, Coord v) const {
    if (!box_across.contains(ch) || !box_along.contains(v)) return {};
    Interval g;
    if (cursors != nullptr) {
      SegId cur = cursors->hint(pool, layer.id(), ch);
      g = layer.channel(ch).free_gap_at(pool, layer.along_extent(), v, &cur);
      cursors->remember(layer.id(), ch, cur);
    } else {
      g = layer.channel(ch).free_gap_at(pool, layer.along_extent(), v);
    }
    if (overlay != nullptr) g = overlay->clip_gap_at(layer.id(), ch, g, v);
    return g.intersect(box_along);
  }

  /// fn(Interval) for every maximal free gap overlapping `range` in channel
  /// `ch`, extent-clipped and overlay-split, ascending. Sub-gaps produced by
  /// the overlay may fall outside `range`; callers filter, as they already
  /// must for gaps reported in full.
  template <typename Fn>
  void for_gaps(Coord ch, Interval range, Fn&& fn) const {
    const auto& chan = layer.channel(ch);
    auto emit = [&](Interval g) {
      if (overlay != nullptr) {
        overlay->split_gap(layer.id(), ch, g, fn);
      } else {
        fn(g);
      }
    };
    if (cursors != nullptr) {
      SegId cur = cursors->hint(pool, layer.id(), ch);
      chan.for_gaps_overlapping(pool, layer.along_extent(), range, emit,
                                &cur);
      cursors->remember(layer.id(), ch, cur);
    } else {
      chan.for_gaps_overlapping(pool, layer.along_extent(), range, emit);
    }
  }

  /// fn(SegId) for every used segment overlapping `range` in channel `ch`.
  template <typename Fn>
  void for_segs(Coord ch, Interval range, Fn&& fn) const {
    const auto& chan = layer.channel(ch);
    if (cursors != nullptr) {
      SegId cur = cursors->hint(pool, layer.id(), ch);
      chan.for_segs_overlapping(pool, range, fn, &cur);
      cursors->remember(layer.id(), ch, cur);
    } else {
      chan.for_segs_overlapping(pool, range, fn);
    }
  }

  /// Segment containing (ch, v), or kNoSeg, with a cursor-hinted walk.
  SegId find_at(Coord ch, Coord v) const {
    SegId hint = cursors != nullptr ? cursors->hint(pool, layer.id(), ch)
                                    : kNoSeg;
    SegId s = layer.channel(ch).find_at(pool, v, hint);
    if (cursors != nullptr && s != kNoSeg) {
      cursors->remember(layer.id(), ch, s);
    }
    return s;
  }

  /// Does the clipped gap (ch, g) touch the grid point whose channel-space
  /// position is (pc, pv)? Touching means: bordering it in its own channel,
  /// or overlapping its along-coordinate from an adjacent channel (one
  /// orthogonal crossing step away).
  static bool touches(Coord ch, Interval g, Coord pc, Coord pv) {
    if (ch == pc) {
      return g.contains(pv - 1) || g.contains(pv + 1) || g.contains(pv);
    }
    if (ch == pc - 1 || ch == pc + 1) return g.contains(pv);
    return false;
  }
};

struct GapNode {
  Coord ch;
  Interval gap;
  std::int32_t parent;
};

inline std::uint64_t gap_key(Coord ch, Coord lo) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(ch)) << 32) |
         static_cast<std::uint32_t>(lo);
}

/// Visited-gap membership set with epoch-stamped slots: begin() is O(1), so
/// one set is reused across millions of gap walks without per-call clearing
/// or allocation (the seed used a freshly constructed std::unordered_set per
/// walk — the dominant allocation source of the Lee hot loop). Linear-probe
/// open addressing; the table only allocates when it grows, which stops once
/// it covers the largest walk seen (warm-up).
class VisitedSet {
 public:
  /// Start a new walk: previously inserted keys become stale in O(1).
  void begin() {
    ++epoch_;
    count_ = 0;
    if (epoch_ == 0) {  // epoch wrap: stamp everything stale for real
      std::fill(epochs_.begin(), epochs_.end(), 0u);
      epoch_ = 1;
    }
  }

  /// True iff `key` was not yet inserted in the current walk.
  bool insert(std::uint64_t key) {
    if ((count_ + 1) * 4 >= capacity() * 3) grow();
    std::size_t i = slot_of(key);
    while (epochs_[i] == epoch_) {
      if (keys_[i] == key) return false;
      i = (i + 1) & mask_;
    }
    keys_[i] = key;
    epochs_[i] = epoch_;
    ++count_;
    return true;
  }

  std::size_t size() const { return count_; }

 private:
  std::size_t capacity() const { return keys_.size(); }

  std::size_t slot_of(std::uint64_t key) const {
    std::uint64_t h = key;
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 29;
    return static_cast<std::size_t>(h) & mask_;
  }

  void grow() {
    std::size_t new_cap = capacity() == 0 ? 64 : capacity() * 2;
    std::vector<std::uint64_t> old_keys = std::move(keys_);
    std::vector<std::uint32_t> old_epochs = std::move(epochs_);
    keys_.assign(new_cap, 0);
    epochs_.assign(new_cap, 0);
    mask_ = new_cap - 1;
    for (std::size_t i = 0; i < old_keys.size(); ++i) {
      if (old_epochs[i] != epoch_) continue;
      std::size_t j = slot_of(old_keys[i]);
      while (epochs_[j] == epoch_) j = (j + 1) & mask_;
      keys_[j] = old_keys[i];
      epochs_[j] = epoch_;
    }
  }

  std::vector<std::uint64_t> keys_;
  std::vector<std::uint32_t> epochs_;
  std::size_t mask_ = 0;
  std::size_t count_ = 0;
  std::uint32_t epoch_ = 1;
};

/// trace_path's per-expansion child record (sorted best-first).
struct TraceChild {
  Coord ch;
  Interval gap;
  Coord dist;
};

}  // namespace detail

/// Reusable per-worker state for the free-space walks. All three algorithms
/// (Trace, Vias, Obstructions) enumerate gaps through a node arena, a DFS
/// stack and a visited set; owning them per worker makes the steady-state
/// walk allocation-free. Passing nullptr falls back to a function-local
/// scratch (the seed's per-call behavior — convenient for tests and tools).
struct FreeSpaceScratch {
  std::vector<detail::GapNode> nodes;
  std::vector<std::int32_t> stack;
  detail::VisitedSet visited;
  std::vector<detail::TraceChild> kids;  // trace_path only
  /// Shadow access tracker (footprint soundness audits). When attached,
  /// every walk through this scratch records its clipped query box; null —
  /// the default — costs one pointer test per walk.
  AccessLog* access = nullptr;

  void begin() {
    nodes.clear();
    stack.clear();
    visited.begin();
  }
};

/// Statistics a free-space search reports back (for benches and tests).
struct FreeSpaceStats {
  std::size_t nodes = 0;  // free gaps visited
  /// For reachable_vias with a touch target: did any visited gap touch it?
  bool touched = false;
};

/// Penalty (in grid units of estimated distance) for routing through a
/// channel that lies on a via row/column: traces there cover via sites,
/// which "is avoided where possible in practice" (Sec 4, Fig 4) because a
/// covered site can no longer be drilled by later connections.
inline constexpr Coord kViaChannelPenalty = 4;

/// Trace (Sec 7.1): find a rectilinear path between grid points a and b on
/// one layer, lying entirely within `box`. Both end points are expected to
/// be occupied by via/pin unit segments; the returned spans abut them. On
/// success the spans, one per channel traversed with overlaps trimmed back
/// to single crossing points (Fig 6 -> Fig 7), are returned in a-to-b order.
/// `period` (the via-grid embedding period) steers the search away from
/// via rows/columns; pass 0 to disable via avoidance.
template <typename LayerT>
std::optional<std::vector<ChannelSpan>> trace_path(
    const LayerT& layer, const SegmentPool& pool, Point a, Point b, Rect box,
    std::size_t max_nodes = kDefaultMaxFreeNodes,
    FreeSpaceStats* stats = nullptr, int period = 3,
    CursorCache* cursors = nullptr, const PlanOverlay* overlay = nullptr,
    FreeSpaceScratch* scratch = nullptr) {
  detail::FreeSpaceQuery<LayerT> q(layer, pool, box, cursors, overlay);
  if (!q.valid()) return std::nullopt;
  if (scratch != nullptr && scratch->access != nullptr) {
    scratch->access->note(q.grid_box());
  }
  const Coord ac = layer.across_of(a), av = layer.along_of(a);
  const Coord bc = layer.across_of(b), bv = layer.along_of(b);

  // Grid neighbors are already electrically adjacent: no metal needed.
  if (manhattan(a, b) == 1) return std::vector<ChannelSpan>{};

  FreeSpaceScratch local;
  FreeSpaceScratch& s = scratch != nullptr ? *scratch : local;
  s.begin();
  std::vector<detail::GapNode>& nodes = s.nodes;
  std::vector<std::int32_t>& stack = s.stack;
  detail::VisitedSet& visited = s.visited;
  std::int32_t goal = -1;

  auto add_node = [&](Coord ch, Interval gap, std::int32_t parent) {
    if (gap.empty()) return false;
    if (!visited.insert(detail::gap_key(ch, gap.lo))) return false;
    nodes.push_back({ch, gap, parent});
    const auto idx = static_cast<std::int32_t>(nodes.size() - 1);
    if (detail::FreeSpaceQuery<LayerT>::touches(ch, gap, bc, bv)) {
      goal = idx;
      return true;
    }
    stack.push_back(idx);
    return false;
  };

  // Estimated cost of continuing from a gap: distance to the target plus a
  // penalty for via-row channels (traces there cover drillable sites).
  auto gap_cost = [&](Coord ch, Interval g) {
    Coord d = std::abs(ch - bc) +
              (g.contains(bv)
                   ? 0
                   : std::min(std::abs(g.lo - bv), std::abs(g.hi - bv)));
    if (period > 0 && ch % period == 0) d += kViaChannelPenalty;
    return d;
  };

  using Child = detail::TraceChild;
  std::vector<Child>& kids = s.kids;
  kids.clear();

  // Seed with the free gaps bordering a, best-first.
  {
    const Coord seeds[4][2] = {
        {ac, av - 1}, {ac, av + 1}, {ac - 1, av}, {ac + 1, av}};
    for (const auto& s : seeds) {
      Interval g = q.gap_at(s[0], s[1]);
      if (!g.empty() && g.contains(s[1])) {
        kids.push_back({s[0], g, gap_cost(s[0], g)});
      }
    }
    std::sort(kids.begin(), kids.end(),
              [](const Child& x, const Child& y) { return x.dist < y.dist; });
    for (const Child& k : kids) {
      if (detail::FreeSpaceQuery<LayerT>::touches(k.ch, k.gap, bc, bv)) {
        if (add_node(k.ch, k.gap, -1)) break;
      }
    }
    if (goal < 0) {
      for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
        add_node(it->ch, it->gap, -1);
      }
    }
  }

  while (goal < 0 && !stack.empty() && nodes.size() < max_nodes) {
    const std::int32_t cur = stack.back();
    stack.pop_back();
    const Coord ch = nodes[static_cast<std::size_t>(cur)].ch;
    const Interval span = nodes[static_cast<std::size_t>(cur)].gap;

    kids.clear();
    for (Coord dc : {Coord{-1}, Coord{1}}) {
      const Coord c2 = ch + dc;
      if (!q.box_across.contains(c2)) continue;
      q.for_gaps(c2, span, [&](Interval g) {
        g = g.intersect(q.box_along);
        if (g.empty() || !g.overlaps(span)) return;
        kids.push_back({c2, g, gap_cost(c2, g)});
      });
    }
    std::sort(kids.begin(), kids.end(),
              [](const Child& x, const Child& y) { return x.dist < y.dist; });
    // Check best-first whether a child reaches the target...
    bool done = false;
    for (const Child& k : kids) {
      if (detail::FreeSpaceQuery<LayerT>::touches(k.ch, k.gap, bc, bv)) {
        done = add_node(k.ch, k.gap, cur);
        if (done) break;
      }
    }
    if (done) break;
    // ...otherwise push them worst-first so the best is on top of the stack
    // ("the one nearest the destination is searched first").
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      add_node(it->ch, it->gap, cur);
    }
  }

  if (stats) stats->nodes = nodes.size();
  if (goal < 0) return std::nullopt;

  // Reconstruct the node path a -> b.
  std::vector<std::int32_t> path;
  for (std::int32_t i = goal; i >= 0;
       i = nodes[static_cast<std::size_t>(i)].parent) {
    path.push_back(i);
  }
  std::reverse(path.begin(), path.end());

  // Anchor coordinate of an endpoint inside a terminal gap.
  auto anchor = [](Coord ch, Interval g, Coord pc, Coord pv) -> Coord {
    if (ch != pc) return pv;             // adjacent channel: cross at pv
    if (g.contains(pv)) return pv;       // endpoint unexpectedly free
    return g.lo > pv ? pv + 1 : pv - 1;  // border the endpoint's segment
  };

  const auto& first = nodes[static_cast<std::size_t>(path.front())];
  const auto& last = nodes[static_cast<std::size_t>(path.back())];
  Coord prev = anchor(first.ch, first.gap, ac, av);
  const Coord end = anchor(last.ch, last.gap, bc, bv);

  // Crossing choice: run straight until forced to jog, but nudge crossings
  // in via rows/columns off the drillable positions when possible.
  auto pick_crossing = [&](Interval ov, Coord straight, Coord ch0,
                           Coord ch1) {
    Coord v = ov.clamp(straight);
    if (period <= 0 || v % period != 0) return v;
    if (ch0 % period != 0 && ch1 % period != 0) return v;
    for (Coord d = 1; d < period; ++d) {
      if (ov.contains(v + d)) return v + d;
      if (ov.contains(v - d)) return v - d;
    }
    return v;
  };

  std::vector<ChannelSpan> spans;
  spans.reserve(path.size());
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const auto& n0 = nodes[static_cast<std::size_t>(path[i])];
    const auto& n1 = nodes[static_cast<std::size_t>(path[i + 1])];
    Interval ov = n0.gap.intersect(n1.gap);
    Coord v = pick_crossing(ov, prev, n0.ch, n1.ch);
    spans.push_back({n0.ch, {std::min(prev, v), std::max(prev, v)}});
    prev = v;
  }
  spans.push_back({last.ch, {std::min(prev, end), std::max(prev, end)}});
  return spans;
}

/// Vias (Sec 7.2): enumerate every via site reachable from `a` on one layer
/// by a path lying entirely within `box`. `on_via` receives the via site in
/// grid coordinates. The enumeration of free space is exhaustive.
///
/// `touch` (optional, grid coordinates) names an occupied point — in
/// practice the opposite end of the connection being routed — and
/// stats.touched reports whether any visited gap touches it, i.e. whether a
/// direct Trace from `a` to it exists on this layer within `box`.
/// `dedup` (optional) is a visited set whose lifetime spans *several* walks
/// sharing the identical search box (`dedup_ctx` must uniquely identify that
/// box; walks with different boxes must use different contexts): gaps
/// already inserted by an earlier same-box walk are neither re-entered nor
/// re-emitted, and the walk does not continue through them. Safe whenever
/// every gap's emissions are idempotent for the caller (Lee's wavefront
/// marking qualifies: a re-emitted via is already marked on its side, and a
/// cross-side contact would have ended the search at the first emission).
/// The traversal block is then also lossless: in the same box, anything
/// reachable through a previously visited gap was already visited from it
/// (the enumeration is exhaustive), so the skipped work consists entirely
/// of no-ops. Incompatible with `node_log`: a logged walk must be
/// self-contained (the log is replayed in contexts with different dedup
/// state), so pass one or the other.
template <typename LayerT, typename Fn>
FreeSpaceStats reachable_vias(const LayerT& layer, const SegmentPool& pool,
                              int period, Point a, Rect box, Fn&& on_via,
                              std::size_t max_nodes = kDefaultMaxFreeNodes,
                              const Point* touch = nullptr,
                              CursorCache* cursors = nullptr,
                              FreeSpaceScratch* scratch = nullptr,
                              std::vector<ChannelSpan>* node_log = nullptr,
                              detail::VisitedSet* dedup = nullptr,
                              std::uint64_t dedup_ctx = 0) {
  detail::FreeSpaceQuery<LayerT> q(layer, pool, box, cursors);
  FreeSpaceStats st;
  if (!q.valid()) return st;
  if (scratch != nullptr && scratch->access != nullptr) {
    scratch->access->note(q.grid_box());
  }
  const Coord ac = layer.across_of(a), av = layer.along_of(a);
  const Coord tc = touch ? layer.across_of(*touch) : 0;
  const Coord tv = touch ? layer.along_of(*touch) : 0;

  FreeSpaceScratch local;
  FreeSpaceScratch& s = scratch != nullptr ? *scratch : local;
  if (dedup != nullptr) {
    s.nodes.clear();  // the visited epoch is the caller's to manage
    s.stack.clear();
  } else {
    s.begin();
  }
  std::vector<detail::GapNode>& nodes = s.nodes;
  std::vector<std::int32_t>& stack = s.stack;
  detail::VisitedSet& visited = dedup != nullptr ? *dedup : s.visited;

  auto emit_vias = [&](Coord ch, Interval g) {
    if (ch % period != 0) return;  // channel not on a via row/column
    Coord first = ((g.lo + period - 1) / period) * period;
    for (Coord v = first; v <= g.hi; v += period) {
      on_via(layer.point_of(ch, v));
    }
  };

  // Same-box dedup keys carry the context in the top bits; coordinates on
  // any realistic board fit 22 bits each.
  auto vkey = [&](Coord ch, Coord lo) {
    if (dedup == nullptr) return detail::gap_key(ch, lo);
    return (dedup_ctx << 44) |
           ((static_cast<std::uint64_t>(static_cast<std::uint32_t>(ch)) &
             0x3fffffu)
            << 22) |
           (static_cast<std::uint64_t>(static_cast<std::uint32_t>(lo)) &
            0x3fffffu);
  };

  auto add_node = [&](Coord ch, Interval gap) {
    if (gap.empty()) return;
    if (!visited.insert(vkey(ch, gap.lo))) return;
    nodes.push_back({ch, gap, -1});
    // The accepted-node log is the walk's replayable trace: the free-space
    // cache stores it and can re-derive the via emissions and any touch
    // test from it without repeating the walk (see FreeSpaceCache).
    if (node_log != nullptr) node_log->push_back({ch, gap});
    emit_vias(ch, gap);
    if (touch && detail::FreeSpaceQuery<LayerT>::touches(ch, gap, tc, tv)) {
      st.touched = true;
    }
    stack.push_back(static_cast<std::int32_t>(nodes.size() - 1));
  };

  const Coord seeds[4][2] = {
      {ac, av - 1}, {ac, av + 1}, {ac - 1, av}, {ac + 1, av}};
  for (const auto& s : seeds) {
    Interval g = q.gap_at(s[0], s[1]);
    if (!g.empty() && g.contains(s[1])) add_node(s[0], g);
  }

  while (!stack.empty() && nodes.size() < max_nodes) {
    const std::int32_t cur = stack.back();
    stack.pop_back();
    const Coord ch = nodes[static_cast<std::size_t>(cur)].ch;
    const Interval span = nodes[static_cast<std::size_t>(cur)].gap;
    for (Coord dc : {Coord{-1}, Coord{1}}) {
      const Coord c2 = ch + dc;
      if (!q.box_across.contains(c2)) continue;
      q.for_gaps(c2, span, [&](Interval g) {
        g = g.intersect(q.box_along);
        if (!g.empty() && g.overlaps(span)) add_node(c2, g);
      });
    }
  }
  st.nodes = nodes.size();
  return st;
}

/// Obstructions (Sec 7.3): report the connection id of every used segment or
/// via bordering the free space around `a` within `box` — the immediate
/// obstacles to select rip-up victims from. `on_conn` may see duplicates.
template <typename LayerT, typename Fn>
FreeSpaceStats obstructions(const LayerT& layer, const SegmentPool& pool,
                            Point a, Rect box, Fn&& on_conn,
                            std::size_t max_nodes = kDefaultMaxFreeNodes,
                            CursorCache* cursors = nullptr,
                            FreeSpaceScratch* scratch = nullptr) {
  detail::FreeSpaceQuery<LayerT> q(layer, pool, box, cursors);
  FreeSpaceStats st;
  if (!q.valid()) return st;
  if (scratch != nullptr && scratch->access != nullptr) {
    // The walk reads the box; report_at additionally probes the four grid
    // neighbors of `a`, which the +1 inflation covers.
    scratch->access->note(q.grid_box().inflated(1));
  }
  const Coord ac = layer.across_of(a), av = layer.along_of(a);

  auto report_at = [&](Coord ch, Coord v) {
    if (!q.box_across.contains(ch)) return;
    SegId s = q.find_at(ch, v);
    if (s != kNoSeg) on_conn(pool[s].conn);
  };

  // Even when a is completely walled in (no adjacent free space at all),
  // the walls themselves are obstructions.
  report_at(ac, av - 1);
  report_at(ac, av + 1);
  report_at(ac - 1, av);
  report_at(ac + 1, av);

  FreeSpaceScratch local;
  FreeSpaceScratch& s = scratch != nullptr ? *scratch : local;
  s.begin();
  std::vector<detail::GapNode>& nodes = s.nodes;
  std::vector<std::int32_t>& stack = s.stack;
  detail::VisitedSet& visited = s.visited;

  auto add_node = [&](Coord ch, Interval gap) {
    if (gap.empty()) return;
    if (!visited.insert(detail::gap_key(ch, gap.lo))) return;
    nodes.push_back({ch, gap, -1});
    stack.push_back(static_cast<std::int32_t>(nodes.size() - 1));
    // The used segments bounding this gap in its own channel.
    q.for_segs(ch, {gap.lo - 1, gap.hi + 1},
               [&](SegId s) { on_conn(pool[s].conn); });
  };

  const Coord seeds[4][2] = {
      {ac, av - 1}, {ac, av + 1}, {ac - 1, av}, {ac + 1, av}};
  for (const auto& s : seeds) {
    Interval g = q.gap_at(s[0], s[1]);
    if (!g.empty() && g.contains(s[1])) add_node(s[0], g);
  }

  while (!stack.empty() && nodes.size() < max_nodes) {
    const std::int32_t cur = stack.back();
    stack.pop_back();
    const Coord ch = nodes[static_cast<std::size_t>(cur)].ch;
    const Interval span = nodes[static_cast<std::size_t>(cur)].gap;
    for (Coord dc : {Coord{-1}, Coord{1}}) {
      const Coord c2 = ch + dc;
      if (!q.box_across.contains(c2)) continue;
      // Used segments across the channel boundary are obstructions...
      q.for_segs(c2, span, [&](SegId s) { on_conn(pool[s].conn); });
      // ...and free gaps continue the enumeration.
      q.for_gaps(c2, span, [&](Interval g) {
        g = g.intersect(q.box_along);
        if (!g.empty() && g.overlaps(span)) add_node(c2, g);
      });
    }
  }
  st.nodes = nodes.size();
  return st;
}

}  // namespace grr
