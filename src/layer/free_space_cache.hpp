// Journal-invalidated reachability cache (per search worker).
//
// The Lee expansion of a wavefront point p on layer l enumerates the free
// space of one radius strip — a gap walk whose cost is proportional to the
// number of free segments examined. On hard boards the same strips are
// walked over and over: optimal passes probe the same corridors, every
// rip-up round re-runs the search over a nearly unchanged board, and the
// improvement/tuning passes re-route connections whose surroundings did not
// move. This cache memoizes the *accepted-node log* of a walk — the ordered
// (channel, gap) list reachable_vias visits — keyed by (via, layer). A hit
// replays the log: the via emissions and any touch test are re-derived from
// the stored gaps in the original visit order, so a replayed expansion is
// bit-identical to a fresh walk (SuiteDeterminism covers cache-on vs
// cache-off).
//
// Invalidation contract: a cached walk is a pure function of the board
// metal inside its strip box. Two mechanisms keep entries truthful:
//
//   1. Journal feed (precise): every add/remove footprint recorded by
//      MutationJournal — the same rectangles the batch router's conflict
//      check consumes — is applied via invalidate(): entries whose box
//      intersects a touched rectangle are evicted. The owner then calls
//      set_synced(stack.mutation_seq()) to record that the cache has seen
//      every mutation up to that sequence number.
//   2. Sequence backstop (safe): before any lookup cycle the owner calls
//      ensure_synced(stack.mutation_seq()); a mismatch means mutations
//      happened that no journal fed to us (an unwired tool, a test poking
//      the stack directly), and the whole cache is dropped. Correctness
//      therefore never depends on the journal wiring; the wiring only
//      preserves entries across mutations that happened elsewhere.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "layer/free_space.hpp"

namespace grr {

class FreeSpaceCache {
 public:
  struct Stats {
    long hits = 0;
    long misses = 0;
    long evicted = 0;   // entries dropped by journal rectangles
    long flushes = 0;   // whole-cache drops (budget, params, backstop)
  };

  struct Entry {
    Rect box;                       // strip box in grid coordinates
    std::vector<ChannelSpan> gaps;  // accepted nodes in visit order
  };

  /// Per-entry cap: walks larger than this are not cached (they are rare
  /// and would crowd out the small strips that repeat).
  static constexpr std::size_t kMaxEntryGaps = 4096;

  /// Flush if the walk-shaping parameters change (they define the strip
  /// geometry and the enumeration budget, hence the cached results).
  void set_params(int radius, std::size_t max_nodes,
                  std::size_t max_total_gaps) {
    if (radius == radius_ && max_nodes == max_nodes_ &&
        max_total_gaps == max_total_gaps_) {
      return;
    }
    radius_ = radius;
    max_nodes_ = max_nodes;
    max_total_gaps_ = max_total_gaps;
    flush();
  }

  /// Backstop: drop everything if mutations happened that the journal feed
  /// did not cover.
  void ensure_synced(std::uint64_t stack_seq) {
    if (stack_seq != synced_seq_) {
      flush();
      synced_seq_ = stack_seq;
    }
  }

  /// Precise feed: evict entries whose box intersects any touched
  /// rectangle, then record the mutation sequence the feed brings us to.
  void apply(const std::vector<Rect>& touched, std::uint64_t stack_seq) {
    if (!touched.empty() && !entries_.empty()) {
      for (std::size_t slot = 0; slot < entries_.size(); ++slot) {
        if (!live_[slot]) continue;
        for (const Rect& r : touched) {
          if (entries_[slot].box.overlaps(r)) {
            evict(slot);
            ++stats_.evicted;
            break;
          }
        }
      }
    }
    synced_seq_ = stack_seq;
  }

  const Entry* lookup(Point via, LayerId layer) {
    auto it = index_.find(key_of(via, layer));
    if (it == index_.end()) {
      ++stats_.misses;
      return nullptr;
    }
    ++stats_.hits;
    return &entries_[it->second];
  }

  /// Start recording the walk for a missed (via, layer): returns the gap
  /// log to hand to reachable_vias. finish_insert() publishes it (or
  /// discards an over-budget walk).
  std::vector<ChannelSpan>* begin_insert(Point via, LayerId layer,
                                         Rect box) {
    pending_key_ = key_of(via, layer);
    std::size_t slot;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
    } else {
      slot = entries_.size();
      entries_.emplace_back();
      entry_keys_.push_back(0);
      live_.push_back(false);
    }
    pending_slot_ = static_cast<std::int64_t>(slot);
    entries_[slot].box = box;
    entries_[slot].gaps.clear();  // keeps capacity
    return &entries_[slot].gaps;
  }

  void finish_insert() {
    if (pending_slot_ < 0) return;
    const auto slot = static_cast<std::size_t>(pending_slot_);
    pending_slot_ = -1;
    const std::size_t n = entries_[slot].gaps.size();
    if (n > kMaxEntryGaps) {
      free_slots_.push_back(slot);
      return;
    }
    if (total_gaps_ + n > max_total_gaps_) {
      // Over budget: restart the cache rather than thrash at the rim.
      flush();
      // flush() pushed slots 0..size-1 in index order, so `slot` sits at
      // position `slot` of the free list; reclaim it for this entry.
      std::swap(free_slots_[slot], free_slots_.back());
      free_slots_.pop_back();
    }
    live_[slot] = true;
    total_gaps_ += n;
    entry_keys_[slot] = pending_key_;
    index_[pending_key_] = static_cast<std::uint32_t>(slot);
  }

  void flush() {
    index_.clear();
    free_slots_.clear();
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      live_[i] = false;
      free_slots_.push_back(i);
    }
    total_gaps_ = 0;
    ++stats_.flushes;
  }

  std::uint64_t synced_seq() const { return synced_seq_; }
  const Stats& stats() const { return stats_; }
  std::size_t live_entries() const { return index_.size(); }

 private:
  static std::uint64_t key_of(Point via, LayerId layer) {
    return (static_cast<std::uint64_t>(layer) << 48) |
           (static_cast<std::uint64_t>(static_cast<std::uint32_t>(via.x) &
                                       0xffffffu)
            << 24) |
           (static_cast<std::uint32_t>(via.y) & 0xffffffu);
  }

  void evict(std::size_t slot) {
    live_[slot] = false;
    total_gaps_ -= entries_[slot].gaps.size();
    index_.erase(entry_keys_[slot]);
    free_slots_.push_back(slot);
  }

  int radius_ = -1;
  std::size_t max_nodes_ = 0;
  std::size_t max_total_gaps_ = 0;
  std::uint64_t synced_seq_ = ~std::uint64_t{0};
  std::uint64_t pending_key_ = 0;
  std::int64_t pending_slot_ = -1;
  std::size_t total_gaps_ = 0;
  std::unordered_map<std::uint64_t, std::uint32_t> index_;
  std::vector<std::size_t> free_slots_;
  std::vector<Entry> entries_;
  std::vector<std::uint64_t> entry_keys_;
  std::vector<bool> live_;
  Stats stats_;
};

}  // namespace grr
