#include "layer/layer.hpp"

namespace grr {

// Explicit instantiations of the two channel flavours used by the library
// and the Sec 12 ablation benchmark.
template class BasicLayer<Channel>;
template class BasicLayer<TreeChannel>;

}  // namespace grr
