// One signal layer: an array of channels, horizontal or vertical (Sec 4).
//
// For a vertical layer the channels run vertically and the array is indexed
// by x; for a horizontal layer the channels run horizontally and the array is
// indexed by y. BasicLayer is parameterized on the channel implementation so
// the doubly-linked-list Channel and the binary-tree TreeChannel (Sec 12
// ablation) can be exercised by identical algorithm code.
#pragma once

#include <vector>

#include "geom/geom.hpp"
#include "layer/channel.hpp"
#include "layer/tree_channel.hpp"

namespace grr {

template <typename ChannelT>
class BasicLayer {
 public:
  BasicLayer(LayerId id, Orientation orient, Rect grid_extent,
             ChannelStore store = kDefaultChannelStore)
      : id_(id), orient_(orient) {
    along_ = (orient == Orientation::kHorizontal) ? grid_extent.x
                                                  : grid_extent.y;
    across_ = (orient == Orientation::kHorizontal) ? grid_extent.y
                                                   : grid_extent.x;
    channels_.resize(static_cast<std::size_t>(across_.length()));
    if constexpr (requires(ChannelT& c) { c.configure(along_, store); }) {
      store_ = store;
      for (ChannelT& ch : channels_) ch.configure(along_, store);
    } else {
      // TreeChannel has a single representation; report it as the
      // hint-indifferent list family so cursor handling stays enabled.
      store_ = ChannelStore::kList;
    }
  }

  LayerId id() const { return id_; }
  Orientation orientation() const { return orient_; }
  /// The channel representation this layer's channels were built with.
  ChannelStore store() const { return store_; }
  /// Valid coordinate range along a channel.
  Interval along_extent() const { return along_; }
  /// Valid channel indices (across coordinate range).
  Interval across_extent() const { return across_; }

  Coord along_of(Point g) const { return along(orient_, g); }
  Coord across_of(Point g) const { return across(orient_, g); }
  Point point_of(Coord across_v, Coord along_v) const {
    return from_channel(orient_, across_v, along_v);
  }

  const ChannelT& channel(Coord across_v) const {
    return channels_[static_cast<std::size_t>(across_v - across_.lo)];
  }
  ChannelT& channel(Coord across_v) {
    return channels_[static_cast<std::size_t>(across_v - across_.lo)];
  }

  bool in_extent(Point g) const {
    return across_.contains(across_of(g)) && along_.contains(along_of(g));
  }

  /// Is g covered by a segment? `cursor`, when non-null, is the caller's
  /// raw in/out walk-start hint. Unlike CursorCache-managed hints it may be
  /// stale or point into another channel (callers probing many points keep
  /// one per layer), so it is validated here before the channel trusts it.
  bool occupied(const SegmentPool& pool, Point g,
                SegId* cursor = nullptr) const {
    const Coord across_v = across_of(g);
    if (cursor != nullptr && *cursor != kNoSeg) {
      if (*cursor >= pool.capacity()) {
        *cursor = kNoSeg;
      } else {
        const Segment& s = pool[*cursor];
        if (s.conn == kNoConn || s.layer != id_ || s.channel != across_v) {
          *cursor = kNoSeg;
        }
      }
    }
    return channel(across_v).occupied(pool, along_of(g), cursor);
  }

  /// Connection occupying g, or kNoConn.
  ConnId conn_at(const SegmentPool& pool, Point g) const {
    return channel(across_of(g)).conn_at(pool, along_of(g));
  }

  /// Maximal free interval (along the channel) containing g; empty if g is
  /// occupied.
  Interval free_gap(const SegmentPool& pool, Point g) const {
    return channel(across_of(g)).free_gap_at(pool, along_, along_of(g));
  }

  /// Insert a used span into channel `across_v`. Does not touch the via map;
  /// use LayerStack::insert_span for that.
  SegId insert(SegmentPool& pool, Coord across_v, Interval span, ConnId conn,
               bool is_via) {
    Segment seg;
    seg.span = span;
    seg.channel = across_v;
    seg.conn = conn;
    seg.layer = id_;
    seg.is_via = is_via;
    return channel(across_v).insert(pool, seg);
  }

  void erase(SegmentPool& pool, SegId id) {
    channel(pool[id].channel).erase(pool, id);
  }

  std::size_t segment_count() const {
    std::size_t n = 0;
    for (const auto& ch : channels_) n += ch.count();
    return n;
  }

 private:
  LayerId id_;
  Orientation orient_;
  ChannelStore store_ = kDefaultChannelStore;
  Interval along_;
  Interval across_;
  std::vector<ChannelT> channels_;
};

using Layer = BasicLayer<Channel>;
using TreeLayer = BasicLayer<TreeChannel>;

}  // namespace grr
