#include "layer/layer_stack.hpp"

#include <cassert>

namespace grr {

LayerStack::LayerStack(const GridSpec& spec, int num_layers,
                       std::vector<Orientation> orients,
                       ChannelStore channel_store)
    : spec_(spec), via_map_(spec.nx_vias(), spec.ny_vias()),
      channel_store_(channel_store) {
  assert(num_layers >= 1);
  if (orients.empty()) {
    orients.reserve(static_cast<std::size_t>(num_layers));
    for (int i = 0; i < num_layers; ++i) {
      orients.push_back(i % 2 == 0 ? Orientation::kHorizontal
                                   : Orientation::kVertical);
    }
  }
  assert(static_cast<int>(orients.size()) == num_layers);
  layers_.reserve(static_cast<std::size_t>(num_layers));
  for (int i = 0; i < num_layers; ++i) {
    layers_.emplace_back(static_cast<LayerId>(i),
                         orients[static_cast<std::size_t>(i)],
                         spec_.extent(), channel_store);
  }
}

bool LayerStack::via_free(Point via) const {
  if (use_via_map_) return via_map_.free(via);
  return via_use_count(via) == 0;
}

int LayerStack::via_use_count(Point via) const {
  if (use_via_map_) return via_map_.count(via);
  Point g = spec_.grid_of_via(via);
  int n = 0;
  for (const Layer& l : layers_) {
    if (l.occupied(pool_, g)) ++n;
  }
  return n;
}

void LayerStack::update_via_map(const Layer& layer, Coord channel,
                                Interval span, int delta) {
  const int period = spec_.period();
  if (channel % period != 0) return;  // channel not on a via row/column
  Coord first = spec_.grid_of_via(spec_.via_ceil(span.lo));
  for (Coord g = first; g <= span.hi; g += period) {
    Point grid_pt = layer.point_of(channel, g);
    Point via = spec_.via_of_grid(grid_pt);
    if (delta > 0) {
      via_map_.inc(via);
    } else {
      via_map_.dec(via);
    }
  }
}

SegId LayerStack::insert_span(const PlacedSpan& ps, ConnId conn,
                              bool is_via) {
  Layer& l = layers_[ps.layer];
  SegId id = l.insert(pool_, ps.channel, ps.span, conn, is_via);
  if (use_via_map_) update_via_map(l, ps.channel, ps.span, +1);
  mutation_seq_.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void LayerStack::erase_segment(SegId id) {
  const Segment& seg = pool_[id];
  Layer& l = layers_[seg.layer];
  if (use_via_map_) update_via_map(l, seg.channel, seg.span, -1);
  l.erase(pool_, id);
  mutation_seq_.fetch_add(1, std::memory_order_relaxed);
}

PlacedSpan LayerStack::placed_span(SegId id) const {
  const Segment& seg = pool_[id];
  return {seg.layer, seg.channel, seg.span};
}

PlacedSpan LayerStack::via_span(LayerId l, Point via) const {
  Point g = spec_.grid_of_via(via);
  const Layer& layer = layers_[l];
  return {l, layer.across_of(g), {layer.along_of(g), layer.along_of(g)}};
}

bool LayerStack::span_free(const PlacedSpan& ps) const {
  const Layer& l = layers_[ps.layer];
  Interval gap =
      l.channel(ps.channel).free_gap_at(pool_, l.along_extent(), ps.span.lo);
  return gap.contains(ps.span);
}

std::vector<SegId> LayerStack::drill_via(Point via, ConnId conn) {
  assert(via_free(via));
  std::vector<SegId> segs;
  segs.reserve(layers_.size());
  for (const Layer& l : layers_) {
    segs.push_back(insert_span(via_span(l.id(), via), conn, /*is_via=*/true));
  }
  return segs;
}

}  // namespace grr
