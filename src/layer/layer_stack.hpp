// The complete wiring state of a board: all signal layers, the shared segment
// pool, and the via map, kept mutually consistent (Sec 4).
#pragma once

#include <atomic>
#include <optional>
#include <vector>

#include "grid/grid_spec.hpp"
#include "layer/layer.hpp"
#include "layer/via_map.hpp"

namespace grr {

/// A used span placed on a specific layer/channel — the unit of route
/// geometry stored by the route database and re-inserted by put-back.
struct PlacedSpan {
  LayerId layer = 0;
  Coord channel = 0;  // across coordinate
  Interval span;      // along interval

  friend bool operator==(const PlacedSpan&, const PlacedSpan&) = default;
};

class LayerStack {
 public:
  /// Build a stack of `num_layers` signal layers. By default orientations
  /// alternate H,V,H,V,…; pass `orients` to override (must match count).
  /// `channel_store` selects the per-channel representation for every
  /// channel of every layer (outcome-identical; see ChannelStore).
  LayerStack(const GridSpec& spec, int num_layers,
             std::vector<Orientation> orients = {},
             ChannelStore channel_store = kDefaultChannelStore);

  const GridSpec& spec() const { return spec_; }
  ChannelStore channel_store() const { return channel_store_; }
  int num_layers() const { return static_cast<int>(layers_.size()); }
  const Layer& layer(LayerId l) const { return layers_[l]; }
  Layer& layer(LayerId l) { return layers_[l]; }
  const SegmentPool& pool() const { return pool_; }
  SegmentPool& pool() { return pool_; }
  const ViaMap& via_map() const { return via_map_; }

  /// Disable/enable incremental via-map maintenance (bench_viamap measures
  /// the cost of living without it). When disabled, via_free probes every
  /// layer directly.
  void set_use_via_map(bool on) { use_via_map_ = on; }
  bool use_via_map() const { return use_via_map_; }

  /// Is the via site (via coordinates) free for drilling? With the via map
  /// this is one array read; without it, one channel probe per layer.
  bool via_free(Point via) const;
  /// Count of layer coverings at a via site (probes layers if map disabled).
  int via_use_count(Point via) const;

  /// Insert a trace span; updates the via map for any via sites it covers.
  SegId insert_span(const PlacedSpan& ps, ConnId conn, bool is_via = false);
  /// Erase a segment; updates the via map.
  void erase_segment(SegId id);

  /// Monotone counter bumped by every geometry mutation (insert or erase).
  /// Consumers holding derived read-side state (the per-worker free-space
  /// cache) compare it against the sequence they last synchronized at: a
  /// mismatch means mutations happened that their journal feed did not
  /// cover, and the derived state must be dropped wholesale. This makes
  /// journal-driven invalidation a pure optimization — correctness never
  /// depends on every mutation path being wired to a journal.
  /// Atomic because the batch router's install waves mutate disjoint
  /// channels from several threads; relaxed suffices — the total is
  /// deterministic and consumers read it only from serial sections (the
  /// wave barriers order the increments before any read).
  std::uint64_t mutation_seq() const {
    return mutation_seq_.load(std::memory_order_relaxed);
  }
  /// Geometry of a live segment (for recording before erase).
  PlacedSpan placed_span(SegId id) const;

  /// Drill a via at a via-grid site: one unit segment per layer. The site
  /// must be free. Returns the created segments (one per layer).
  std::vector<SegId> drill_via(Point via, ConnId conn);

  /// Convenience probes in grid coordinates. `cursor` is an optional raw
  /// walk-start hint for the probed channel (validated by Layer::occupied).
  bool occupied(LayerId l, Point g, SegId* cursor = nullptr) const {
    return layers_[l].occupied(pool_, g, cursor);
  }
  ConnId conn_at(LayerId l, Point g) const {
    return layers_[l].conn_at(pool_, g);
  }

  /// Unit-length placed span for a via site on a given layer.
  PlacedSpan via_span(LayerId l, Point via) const;

  /// Is the whole span free (no segment overlaps it)?
  bool span_free(const PlacedSpan& ps) const;

  /// Grid-coordinate rectangle covered by one placed span — the unit the
  /// mutation journal logs and the access tracker records.
  Rect grid_rect_of(const PlacedSpan& ps) const {
    const Layer& l = layers_[ps.layer];
    if (l.orientation() == Orientation::kHorizontal) {
      return {ps.span, {ps.channel, ps.channel}};
    }
    return {{ps.channel, ps.channel}, ps.span};
  }

  /// A via covers the same single grid point on every layer.
  Rect grid_rect_of_via(Point via) const {
    Point g = spec_.grid_of_via(via);
    return {{g.x, g.x}, {g.y, g.y}};
  }

  std::size_t segment_count() const { return pool_.size(); }

 private:
  void update_via_map(const Layer& layer, Coord channel, Interval span,
                      int delta);

  GridSpec spec_;
  SegmentPool pool_;
  std::vector<Layer> layers_;
  ViaMap via_map_;
  ChannelStore channel_store_ = kDefaultChannelStore;
  bool use_via_map_ = true;
  std::atomic<std::uint64_t> mutation_seq_{0};
};

}  // namespace grr
