// Tentative metal of an in-flight route plan (search/commit split).
//
// The serial router places metal as it goes: one-via routing drills the
// candidate via before tracing either leg, and Lee realization drills every
// intermediate via before tracing the hops, so each trace sees the metal of
// the earlier steps. A read-only planner cannot touch the shared board, so
// it records that would-be metal here and the free-space queries subtract it
// from every gap they report. A gap split by an overlay span has exactly the
// bounds it would have had if the span were a real segment, so gap
// identities (the gap.lo visited keys) — and therefore whole search results
// — match the serial router bit for bit.
//
// The number of spans per plan is tiny (a handful of hops plus one unit span
// per layer per via), so linear scans beat any indexed structure here.
#pragma once

#include <cstddef>
#include <vector>

#include "layer/segment_pool.hpp"

namespace grr {

class PlanOverlay {
 public:
  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }
  void clear() { entries_.clear(); }
  /// Roll the overlay back to a previous size() mark (candidate rejected).
  void truncate(std::size_t mark) { entries_.resize(mark); }

  void add(LayerId layer, Coord channel, Interval span) {
    entries_.push_back({span, channel, layer});
  }

  /// Clip a raw free gap of (layer, channel) down to the sub-gap containing
  /// v, as if the overlay spans were real segments. Empty if v is covered.
  Interval clip_gap_at(LayerId layer, Coord channel, Interval gap,
                       Coord v) const {
    if (gap.empty()) return gap;
    for (const Entry& e : entries_) {
      if (e.layer != layer || e.channel != channel) continue;
      if (e.span.contains(v)) return {};
      if (e.span.hi < v) {
        if (e.span.hi + 1 > gap.lo) gap.lo = e.span.hi + 1;
      } else if (e.span.lo - 1 < gap.hi) {
        gap.hi = e.span.lo - 1;
      }
    }
    return gap;
  }

  /// Invoke fn(Interval) for each sub-gap of a raw free gap after
  /// subtracting the overlay spans, in ascending order. Matches the gap
  /// sequence a channel walk would report if the spans were real segments.
  template <typename Fn>
  void split_gap(LayerId layer, Coord channel, Interval gap, Fn&& fn) const {
    if (gap.empty()) return;
    // Collect the overlay spans cutting this gap (few; insertion-sort).
    Interval cuts[kMaxCuts];
    int n = 0;
    for (const Entry& e : entries_) {
      if (e.layer != layer || e.channel != channel) continue;
      if (!e.span.overlaps(gap)) continue;
      if (n == kMaxCuts) {  // degenerate; bail to the conservative answer
        fn(gap);
        return;
      }
      int i = n++;
      while (i > 0 && cuts[i - 1].lo > e.span.lo) {
        cuts[i] = cuts[i - 1];
        --i;
      }
      cuts[i] = e.span;
    }
    if (n == 0) {
      fn(gap);
      return;
    }
    Coord lo = gap.lo;
    for (int i = 0; i < n; ++i) {
      Interval sub{lo, cuts[i].lo - 1};
      if (!sub.empty()) fn(sub);
      if (cuts[i].hi + 1 > lo) lo = cuts[i].hi + 1;
    }
    Interval tail{lo, gap.hi};
    if (!tail.empty()) fn(tail);
  }

 private:
  struct Entry {
    Interval span;
    Coord channel = 0;
    LayerId layer = 0;
  };

  static constexpr int kMaxCuts = 64;

  std::vector<Entry> entries_;
};

}  // namespace grr
