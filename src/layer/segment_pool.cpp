#include "layer/segment_pool.hpp"

namespace grr {

SegId SegmentPool::allocate(const Segment& seg) {
  ++live_;
  if (!free_.empty()) {
    SegId id = free_.back();
    free_.pop_back();
    slots_[id] = seg;
    return id;
  }
  slots_.push_back(seg);
  return static_cast<SegId>(slots_.size() - 1);
}

void SegmentPool::release(SegId id) {
  assert(id < slots_.size());
  assert(live_ > 0);
  --live_;
  slots_[id] = Segment{};
  free_.push_back(id);
}

}  // namespace grr
