#include "layer/segment_pool.hpp"

namespace grr {

SegId SegmentPool::allocate_locked(const Segment& seg) {
  ++live_;
  if (!free_.empty()) {
    SegId id = free_.back();
    free_.pop_back();
    slots_[id] = seg;
    return id;
  }
  assert(!concurrent_ && "concurrent allocate must be covered by "
                         "reserve_free (vector growth moves slots)");
  slots_.push_back(seg);
  return static_cast<SegId>(slots_.size() - 1);
}

void SegmentPool::release_locked(SegId id) {
  assert(id < slots_.size());
  assert(live_ > 0);
  --live_;
  slots_[id] = Segment{};
  free_.push_back(id);
}

SegId SegmentPool::allocate(const Segment& seg) {
  if (concurrent_) {
    // Only the free-list handout is under the lock; the slot assignment
    // races with nothing (each id is handed to exactly one thread).
    SegId id;
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++live_;
      assert(!free_.empty() && "concurrent allocate must be covered by "
                               "reserve_free");
      id = free_.back();
      free_.pop_back();
    }
    slots_[id] = seg;
    return id;
  }
  return allocate_locked(seg);
}

void SegmentPool::release(SegId id) {
  if (concurrent_) {
    slots_[id] = Segment{};
    std::lock_guard<std::mutex> lk(mu_);
    assert(live_ > 0);
    --live_;
    free_.push_back(id);
    return;
  }
  release_locked(id);
}

void SegmentPool::reserve_free(std::size_t n) {
  assert(!concurrent_ && "reserve from a serial section only");
  while (free_.size() < n) {
    slots_.emplace_back();
    free_.push_back(static_cast<SegId>(slots_.size() - 1));
  }
}

}  // namespace grr
