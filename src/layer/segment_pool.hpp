// Pool of channel segments (paper Sec 4).
//
// A segment is an interval of a channel used by some trace, doubly linked to
// the next lower/higher segment in the same channel, and singly linked to the
// next segment of the same trace (across channels and layers) so that all
// space occupied by a trace can be found easily. Segments are identified by
// 32-bit indices into a pool shared by all layers of a board; erased slots go
// on a free list.
#pragma once

#include <cassert>
#include <cstdint>
#include <mutex>
#include <vector>

#include "geom/geom.hpp"

namespace grr {

/// Identifier of a routed connection. Non-negative ids are real connections;
/// negative ids mark permanent or pseudo occupancy.
using ConnId = std::int32_t;

inline constexpr ConnId kNoConn = -1;
/// Part pin (drilled through all layers; never rippable).
inline constexpr ConnId kPinConn = -2;
/// Board obstacle (mounting hole, keep-out; never rippable).
inline constexpr ConnId kObstacleConn = -3;
/// ECL/TTL tesselation filler (temporarily blocks foreign tiles, Sec 10.2).
inline constexpr ConnId kFillerConn = -4;

inline bool is_rippable(ConnId c) { return c >= 0; }

using SegId = std::uint32_t;
inline constexpr SegId kNoSeg = 0xffffffffu;

using LayerId = std::uint8_t;

struct Segment {
  Interval span;              // used interval along the channel
  Coord channel = 0;          // across-coordinate of the channel
  SegId prev = kNoSeg;        // next lower segment in this channel
  SegId next = kNoSeg;        // next higher segment in this channel
  SegId trace_next = kNoSeg;  // next segment of the same trace (any layer)
  /// Slot of this segment in its channel's flat arrays (ChannelStore::kFlat
  /// only; unused by the list store). Maintained by Channel on every
  /// insert/erase, it is the indirection that keeps SegId a stable handle
  /// while the flat arrays shift underneath.
  std::uint32_t chan_slot = 0;
  ConnId conn = kNoConn;      // owning connection
  LayerId layer = 0;          // layer the segment lies on
  bool is_via = false;        // unit segment representing a drill hole/pin
};

class SegmentPool {
 public:
  SegId allocate(const Segment& seg);
  void release(SegId id);

  /// Pre-create free slots until at least `n` are on the free list. In
  /// concurrent mode allocate() must never grow `slots_` — growth would
  /// move the vector under readers holding references from other threads —
  /// so the batch router reserves the whole demand of a parallel install
  /// wave up front, from the serial section before the wave.
  void reserve_free(std::size_t n);

  /// Serialize allocate/release behind a mutex. Toggled only from serial
  /// sections (the batch router brackets its install waves with it); the
  /// slot contents themselves are written by the allocating thread, which
  /// is safe because distinct slots are distinct objects.
  void set_concurrent(bool on) { concurrent_ = on; }

  Segment& operator[](SegId id) {
    assert(id < slots_.size());
    return slots_[id];
  }
  const Segment& operator[](SegId id) const {
    assert(id < slots_.size());
    return slots_[id];
  }

  /// Number of live segments.
  std::size_t size() const { return live_; }
  /// Number of slots ever allocated (released slots keep their ids valid
  /// for bounds checks; their conn is reset to kNoConn).
  std::size_t capacity() const { return slots_.size(); }

 private:
  SegId allocate_locked(const Segment& seg);
  void release_locked(SegId id);

  std::vector<Segment> slots_;
  std::vector<SegId> free_;
  std::size_t live_ = 0;
  bool concurrent_ = false;
  std::mutex mu_;
};

}  // namespace grr
