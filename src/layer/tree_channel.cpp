#include "layer/tree_channel.hpp"

namespace grr {

Interval TreeChannel::free_gap_at(const SegmentPool& pool, Interval extent,
                                  Coord v, SegId* cursor) const {
  (void)cursor;
  if (!extent.contains(v)) return {};
  SegId s = seek(pool, v);
  if (s != kNoSeg && pool[s].span.hi >= v) return {};
  Coord lo = (s == kNoSeg) ? extent.lo : pool[s].span.hi + 1;
  auto it = by_lo_.upper_bound(v);
  Coord hi = (it == by_lo_.end()) ? extent.hi : it->first - 1;
  return {lo, hi};
}

SegId TreeChannel::insert(SegmentPool& pool, Segment seg) {
  assert(!seg.span.empty());
  SegId below = seek(pool, seg.span.lo);
  assert(below == kNoSeg || pool[below].span.hi < seg.span.lo);
  SegId above = (below == kNoSeg)
                    ? head()
                    : [&] {
                        auto it =
                            std::next(by_lo_.find(pool[below].span.lo));
                        return it == by_lo_.end() ? kNoSeg : it->second;
                      }();
  assert(above == kNoSeg || pool[above].span.lo > seg.span.hi);
  seg.prev = below;
  seg.next = above;
  SegId id = pool.allocate(seg);
  if (below != kNoSeg) pool[below].next = id;
  if (above != kNoSeg) pool[above].prev = id;
  by_lo_.emplace(seg.span.lo, id);
  return id;
}

void TreeChannel::erase(SegmentPool& pool, SegId id) {
  const Segment& seg = pool[id];
  if (seg.prev != kNoSeg) pool[seg.prev].next = seg.next;
  if (seg.next != kNoSeg) pool[seg.next].prev = seg.prev;
  by_lo_.erase(seg.span.lo);
  pool.release(id);
}

}  // namespace grr
