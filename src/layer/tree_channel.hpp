// Binary-tree channel implementation, kept for the Sec 12 ablation.
//
// Early versions of grr represented each channel as a balanced binary tree of
// segments; the paper reports that replacing it with the doubly linked list
// plus moving cursor (Channel) halved total routing time, because channel
// accesses are localized rather than random. This class provides the same
// interface as Channel on top of a red-black tree (std::map) so the two can
// be compared head-to-head by bench_channel.
#pragma once

#include <cassert>
#include <map>

#include "layer/segment_pool.hpp"

namespace grr {

class TreeChannel {
 public:
  bool empty() const { return by_lo_.empty(); }
  SegId head() const {
    return by_lo_.empty() ? kNoSeg : by_lo_.begin()->second;
  }

  /// Last segment s with s.span.lo <= v, or kNoSeg (O(log n) tree search).
  /// The hint/cursor parameters exist for interface parity with Channel and
  /// are ignored: a tree search has no locality to exploit.
  SegId seek(const SegmentPool& pool, Coord v, SegId hint = kNoSeg) const {
    (void)pool;
    (void)hint;
    auto it = by_lo_.upper_bound(v);
    if (it == by_lo_.begin()) return kNoSeg;
    return std::prev(it)->second;
  }

  SegId find_at(const SegmentPool& pool, Coord v,
                SegId hint = kNoSeg) const {
    SegId s = seek(pool, v, hint);
    return (s != kNoSeg && pool[s].span.hi >= v) ? s : kNoSeg;
  }

  bool occupied(const SegmentPool& pool, Coord v,
                SegId* cursor = nullptr) const {
    (void)cursor;
    return find_at(pool, v) != kNoSeg;
  }

  ConnId conn_at(const SegmentPool& pool, Coord v,
                 SegId hint = kNoSeg) const {
    SegId s = find_at(pool, v, hint);
    return s == kNoSeg ? kNoConn : pool[s].conn;
  }

  Interval free_gap_at(const SegmentPool& pool, Interval extent, Coord v,
                       SegId* cursor = nullptr) const;

  template <typename Fn>
  void for_segs_overlapping(const SegmentPool& pool, Interval range,
                            Fn&& fn, SegId* cursor = nullptr) const {
    (void)cursor;
    if (range.empty()) return;
    auto it = by_lo_.upper_bound(range.lo);
    if (it != by_lo_.begin() &&
        pool[std::prev(it)->second].span.hi >= range.lo) {
      --it;
    }
    for (; it != by_lo_.end() && it->first <= range.hi; ++it) {
      fn(it->second);
    }
  }

  template <typename Fn>
  void for_gaps_overlapping(const SegmentPool& pool, Interval extent,
                            Interval range, Fn&& fn,
                            SegId* cursor = nullptr) const {
    (void)cursor;
    range = range.intersect(extent);
    if (range.empty()) return;
    SegId s = seek(pool, range.lo);
    Coord lo = (s == kNoSeg) ? extent.lo : pool[s].span.hi + 1;
    auto it = (s == kNoSeg) ? by_lo_.begin()
                            : std::next(by_lo_.find(pool[s].span.lo));
    while (lo <= range.hi) {
      Coord hi = (it == by_lo_.end()) ? extent.hi : it->first - 1;
      Interval gap{lo, hi};
      if (!gap.empty() && gap.overlaps(range)) fn(gap);
      if (it == by_lo_.end()) break;
      lo = pool[it->second].span.hi + 1;
      ++it;
    }
  }

  SegId insert(SegmentPool& pool, Segment seg);
  void erase(SegmentPool& pool, SegId id);

  std::size_t count() const { return by_lo_.size(); }

 private:
  std::map<Coord, SegId> by_lo_;
};

}  // namespace grr
