#include "layer/via_map.hpp"

// Header-only; this file anchors the translation unit for the library.
