// The via map (Sec 4): for every via-grid site, the number of traces (layer
// coverings) using that location on any layer.
//
// Inquiries about via-site availability are two to four orders of magnitude
// more frequent than updates, so the count is maintained incrementally on
// every segment insert/erase rather than recomputed by probing each layer.
// A count of zero means the site is free (drillable); a count equal to the
// number of signal layers means a drilled (or pin) via.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "geom/geom.hpp"

namespace grr {

class ViaMap {
 public:
  ViaMap(Coord nx_vias, Coord ny_vias)
      : nx_(nx_vias), ny_(ny_vias),
        counts_(static_cast<std::size_t>(nx_vias) * ny_vias) {}

  /// p is in via coordinates.
  std::uint16_t count(Point p) const { return counts_[index(p)]; }
  bool free(Point p) const { return counts_[index(p)] == 0; }

  void inc(Point p) { ++counts_[index(p)]; }
  void dec(Point p) {
    assert(counts_[index(p)] > 0);
    --counts_[index(p)];
  }

 private:
  std::size_t index(Point p) const {
    // An out-of-range point would silently alias a neighboring row.
    assert(p.x >= 0 && p.x < nx_);
    assert(p.y >= 0 && p.y < ny_);
    return static_cast<std::size_t>(p.y) * nx_ + p.x;
  }

  Coord nx_;
  Coord ny_;
  std::vector<std::uint16_t> counts_;
};

}  // namespace grr
