#include "place/placer.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <random>

namespace grr {
namespace {

double net_hpwl(const PlaceNet& net, const std::vector<Point>& pos) {
  if (net.cells.size() < 2) return 0;
  Coord min_x = pos[static_cast<std::size_t>(net.cells[0])].x;
  Coord max_x = min_x;
  Coord min_y = pos[static_cast<std::size_t>(net.cells[0])].y;
  Coord max_y = min_y;
  for (int c : net.cells) {
    Point p = pos[static_cast<std::size_t>(c)];
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
    min_y = std::min(min_y, p.y);
    max_y = std::max(max_y, p.y);
  }
  return net.weight * ((max_x - min_x) + (max_y - min_y));
}

}  // namespace

double placement_hpwl(const PlacementProblem& problem,
                      const std::vector<Point>& site_of_cell) {
  double total = 0;
  for (const PlaceNet& net : problem.nets) {
    total += net_hpwl(net, site_of_cell);
  }
  return total;
}

PlacementResult place_anneal(const PlacementProblem& problem,
                             const PlacementParams& params) {
  assert(problem.num_cells <=
         static_cast<int>(problem.sites_x) * problem.sites_y);
  PlacementResult result;
  const int n_sites = static_cast<int>(problem.sites_x) * problem.sites_y;
  const int n_cells = problem.num_cells;
  if (n_cells == 0) return result;

  // State: cell index occupying each site (-1 = empty), and the inverse.
  std::vector<int> cell_at(static_cast<std::size_t>(n_sites), -1);
  std::vector<Point> pos(static_cast<std::size_t>(n_cells));
  auto site_point = [&](int site) {
    return Point{site % problem.sites_x, site / problem.sites_x};
  };
  for (int c = 0; c < n_cells; ++c) {
    cell_at[static_cast<std::size_t>(c)] = c;
    pos[static_cast<std::size_t>(c)] = site_point(c);
  }

  // Incidence: nets touching each cell, for incremental deltas.
  std::vector<std::vector<int>> nets_of_cell(
      static_cast<std::size_t>(n_cells));
  for (std::size_t ni = 0; ni < problem.nets.size(); ++ni) {
    for (int c : problem.nets[ni].cells) {
      nets_of_cell[static_cast<std::size_t>(c)].push_back(
          static_cast<int>(ni));
    }
  }

  result.initial_hpwl = placement_hpwl(problem, pos);
  double current = result.initial_hpwl;

  std::mt19937 rng(params.seed);
  std::uniform_int_distribution<int> pick_cell(0, n_cells - 1);
  std::uniform_int_distribution<int> pick_site(0, n_sites - 1);
  std::uniform_real_distribution<double> coin(0.0, 1.0);

  // Cost delta of moving cell a to `to` (and its occupant, if any, to a's
  // old site): recompute the nets touching the moved cells.
  auto affected_cost = [&](int a, int b) {
    double cost = 0;
    for (int ni : nets_of_cell[static_cast<std::size_t>(a)]) {
      cost += net_hpwl(problem.nets[static_cast<std::size_t>(ni)], pos);
    }
    if (b >= 0) {
      for (int ni : nets_of_cell[static_cast<std::size_t>(b)]) {
        cost += net_hpwl(problem.nets[static_cast<std::size_t>(ni)], pos);
      }
    }
    return cost;
  };

  auto apply_move = [&](int cell, int from_site, int to_site) {
    int other = cell_at[static_cast<std::size_t>(to_site)];
    cell_at[static_cast<std::size_t>(to_site)] = cell;
    cell_at[static_cast<std::size_t>(from_site)] = other;
    pos[static_cast<std::size_t>(cell)] = site_point(to_site);
    if (other >= 0) {
      pos[static_cast<std::size_t>(other)] = site_point(from_site);
    }
    return other;
  };

  // Initial temperature: the magnitude of typical move deltas.
  double t = 0;
  {
    double sum = 0;
    int samples = 0;
    for (int i = 0; i < 64; ++i) {
      int cell = pick_cell(rng);
      int from = -1;
      for (int s = 0; s < n_sites; ++s) {
        if (cell_at[static_cast<std::size_t>(s)] == cell) {
          from = s;
          break;
        }
      }
      int to = pick_site(rng);
      if (to == from) continue;
      int other = cell_at[static_cast<std::size_t>(to)];
      double before = affected_cost(cell, other);
      apply_move(cell, from, to);
      double after = affected_cost(cell, other);
      apply_move(cell, to, from);  // undo
      sum += std::abs(after - before);
      ++samples;
    }
    t = samples ? 2.0 * sum / samples : 1.0;
    if (t <= 0) t = 1.0;
  }

  // Site of each cell, maintained for O(1) "from" lookup.
  std::vector<int> site_of(static_cast<std::size_t>(n_cells));
  for (int s = 0; s < n_sites; ++s) {
    if (cell_at[static_cast<std::size_t>(s)] >= 0) {
      site_of[static_cast<std::size_t>(
          cell_at[static_cast<std::size_t>(s)])] = s;
    }
  }

  const long total_moves =
      static_cast<long>(params.moves_per_cell) * n_cells;
  const long stage_len =
      std::max<long>(1, static_cast<long>(params.moves_per_stage_factor) *
                            n_cells);
  // The last quarter is a zero-temperature quench: greedy improvement only.
  const long quench_at = total_moves * 3 / 4;
  for (long move = 0; move < total_moves; ++move) {
    if (move % stage_len == stage_len - 1) t *= params.cooling;
    const bool quench = move >= quench_at;
    int cell = pick_cell(rng);
    int from = site_of[static_cast<std::size_t>(cell)];
    int to = pick_site(rng);
    if (to == from) continue;
    ++result.moves_tried;

    int other = cell_at[static_cast<std::size_t>(to)];
    double before = affected_cost(cell, other);
    apply_move(cell, from, to);
    double after = affected_cost(cell, other);
    double delta = after - before;
    if (delta <= 0 ||
        (!quench && coin(rng) < std::exp(-delta / std::max(t, 1e-9)))) {
      ++result.moves_accepted;
      current += delta;
      site_of[static_cast<std::size_t>(cell)] = to;
      if (other >= 0) site_of[static_cast<std::size_t>(other)] = from;
    } else {
      apply_move(cell, to, from);  // reject: undo
    }
  }

  result.site_of_cell = pos;
  result.final_hpwl = current;
  return result;
}

}  // namespace grr
