// Automatic cell placement by simulated annealing.
//
// The paper's placements were produced manually with an interactive
// graphics editor "over a period of months. Most of the time was devoted
// to shortening the critical timing paths" (Sec 13, Fig 19). This module
// is the automatic substrate for that step: cells (part macros) are
// assigned to legal sites on a grid, minimizing weighted half-perimeter
// wirelength (HPWL); timing-critical nets can be weighted so the annealer
// pulls them short, as the manual process did.
//
// Placement is deliberately decoupled from Board (whose parts drill their
// pins on construction): solve the abstract problem first, then build the
// Board from the resulting coordinates.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geom/geom.hpp"

namespace grr {

struct PlaceNet {
  std::vector<int> cells;  // indices of the cells this net connects
  double weight = 1.0;     // >1 pulls timing-critical nets shorter
};

struct PlacementProblem {
  Coord sites_x = 0;  // legal site grid
  Coord sites_y = 0;
  int num_cells = 0;  // must be <= sites_x * sites_y
  std::vector<PlaceNet> nets;
};

struct PlacementParams {
  std::uint32_t seed = 1;
  /// Total annealing moves = moves_per_cell * num_cells.
  int moves_per_cell = 400;
  double cooling = 0.95;        // geometric temperature decay per stage
  int moves_per_stage_factor = 8;  // stage length = factor * num_cells
};

struct PlacementResult {
  std::vector<Point> site_of_cell;  // site coordinates per cell
  double initial_hpwl = 0;
  double final_hpwl = 0;
  long moves_tried = 0;
  long moves_accepted = 0;
};

/// Weighted half-perimeter wirelength of an assignment.
double placement_hpwl(const PlacementProblem& problem,
                      const std::vector<Point>& site_of_cell);

/// Deterministic (seeded) annealing placement. Cells start on sites in
/// index order; moves swap a random cell with a random site (occupied or
/// empty); worsening moves are accepted with probability exp(-delta/T).
PlacementResult place_anneal(const PlacementProblem& problem,
                             const PlacementParams& params = {});

}  // namespace grr
