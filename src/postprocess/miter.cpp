#include "postprocess/miter.hpp"

#include <cmath>

namespace grr {
namespace {

/// Drop consecutive duplicates and interior collinear points.
void compress(std::vector<Point>& pts) {
  std::vector<Point> out;
  for (const Point& p : pts) {
    if (!out.empty() && out.back() == p) continue;
    while (out.size() >= 2) {
      const Point& a = out[out.size() - 2];
      const Point& b = out.back();
      const bool collinear =
          (a.x == b.x && b.x == p.x) || (a.y == b.y && b.y == p.y);
      if (!collinear) break;
      out.pop_back();
    }
    out.push_back(p);
  }
  pts = std::move(out);
}

}  // namespace

HopPolyline hop_polyline(const GridSpec& spec, const LayerStack& stack,
                         const RouteHop& hop, Point a_via, Point b_via) {
  const Layer& layer = stack.layer(hop.layer);
  HopPolyline poly;
  poly.layer = hop.layer;

  const Point ag = spec.grid_of_via(a_via);
  const Point bg = spec.grid_of_via(b_via);
  poly.points.push_back(ag);
  if (hop.spans.empty()) {
    poly.points.push_back(bg);
    return poly;
  }

  const Coord ac = layer.across_of(ag), av = layer.along_of(ag);
  const ChannelSpan& s0 = hop.spans.front();
  // Entry coordinate in the first span (replays Trace's anchor rule).
  Coord prev;
  if (s0.channel == ac) {
    prev = s0.span.contains(av) ? av : (s0.span.lo > av ? av + 1 : av - 1);
  } else {
    prev = av;
  }
  poly.points.push_back(layer.point_of(s0.channel, prev));

  for (std::size_t i = 0; i + 1 < hop.spans.size(); ++i) {
    const ChannelSpan& cur = hop.spans[i];
    const ChannelSpan& nxt = hop.spans[i + 1];
    Coord v = cur.span.intersect(nxt.span).clamp(prev);
    poly.points.push_back(layer.point_of(cur.channel, v));
    poly.points.push_back(layer.point_of(nxt.channel, v));
    prev = v;
  }

  const ChannelSpan& sl = hop.spans.back();
  const Coord bc = layer.across_of(bg), bv = layer.along_of(bg);
  Coord end;
  if (sl.channel == bc) {
    end = sl.span.contains(bv) ? bv : (sl.span.lo > bv ? bv + 1 : bv - 1);
  } else {
    end = bv;
  }
  poly.points.push_back(layer.point_of(sl.channel, end));
  poly.points.push_back(bg);

  compress(poly.points);
  return poly;
}

HopPolyline miter45(const HopPolyline& poly, Coord depth) {
  if (poly.points.size() < 3) return poly;
  HopPolyline out;
  out.layer = poly.layer;
  out.points.push_back(poly.points.front());
  for (std::size_t i = 1; i + 1 < poly.points.size(); ++i) {
    const Point a = poly.points[i - 1];
    const Point b = poly.points[i];
    const Point c = poly.points[i + 1];
    const bool in_h = a.y == b.y, out_h = b.y == c.y;
    if (in_h == out_h) {  // not a right-angle corner
      out.points.push_back(b);
      continue;
    }
    const Coord len_in = in_h ? std::abs(b.x - a.x) : std::abs(b.y - a.y);
    const Coord len_out = out_h ? std::abs(c.x - b.x) : std::abs(c.y - b.y);
    const Coord cut = std::min({depth, len_in / 2, len_out / 2});
    if (cut == 0) {
      out.points.push_back(b);
      continue;
    }
    auto step_back = [&](Point from, Point toward, Coord d) {
      Point r = from;
      if (from.x != toward.x) r.x += (toward.x > from.x ? d : -d);
      if (from.y != toward.y) r.y += (toward.y > from.y ? d : -d);
      return r;
    };
    out.points.push_back(step_back(b, a, cut));
    out.points.push_back(step_back(b, c, cut));
  }
  out.points.push_back(poly.points.back());
  return out;
}

double polyline_length_mils(const GridSpec& spec, const HopPolyline& poly) {
  double mils = 0;
  for (std::size_t i = 0; i + 1 < poly.points.size(); ++i) {
    const Point a = poly.points[i];
    const Point b = poly.points[i + 1];
    const double dx = spec.mils_between(a.x, b.x);
    const double dy = spec.mils_between(a.y, b.y);
    mils += (dx == 0 || dy == 0) ? dx + dy : std::hypot(dx, dy);
  }
  return mils;
}

}  // namespace grr
