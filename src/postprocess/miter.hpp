// Photoplot postprocessing (paper footnote 2 and Sec 13): grr's output is
// rectilinear; diagonal traces in the shipped artwork come from a
// postprocessing step that replaces staircase corners with 45-degree miters.
// This improves manufacturing yield and electrical characteristics and
// shortens the traces slightly.
#pragma once

#include <vector>

#include "grid/grid_spec.hpp"
#include "route/route_db.hpp"

namespace grr {

/// A hop rendered as a polyline of grid points (rectilinear), or with the
/// corner points pulled in for 45-degree mitering (then consecutive points
/// may differ in both coordinates).
struct HopPolyline {
  LayerId layer = 0;
  std::vector<Point> points;  // grid coordinates
};

/// Reconstruct the rectilinear polyline of one hop: the via end points plus
/// every channel-crossing corner.
HopPolyline hop_polyline(const GridSpec& spec, const LayerStack& stack,
                         const RouteHop& hop, Point a_via, Point b_via);

/// Replace each 90-degree corner with a 45-degree miter cutting `depth`
/// grid steps off both arms (clamped to half of each arm).
HopPolyline miter45(const HopPolyline& poly, Coord depth = 1);

/// Physical length of a polyline in mils (diagonal segments measured as
/// Euclidean length).
double polyline_length_mils(const GridSpec& spec, const HopPolyline& poly);

}  // namespace grr
