#include "report/gerber.hpp"

#include <sstream>

#include "postprocess/miter.hpp"

namespace grr {
namespace {

/// 2.4 inch format: 1 unit = 0.1 mil.
long gerber_units(int mils) { return static_cast<long>(mils) * 10; }

void coord(std::ostringstream& os, long x, long y, const char* op) {
  os << 'X' << x << 'Y' << y << op << "*\n";
}

std::string header() {
  return
      "%FSLAX24Y24*%\n"
      "%MOIN*%\n";
}

}  // namespace

std::string gerber_signal_layer(const Board& board, const RouteDB& db,
                                const ConnectionList& conns, LayerId layer,
                                bool mitered) {
  const GridSpec& spec = board.spec();
  const LayerStack& stack = board.stack();
  const DesignRules& rules = board.rules();
  std::ostringstream os;
  os << "G04 grr signal layer " << static_cast<int>(layer) << "*\n"
     << header();
  // Aperture 10: the trace; aperture 11: the via/pin pad.
  os << "%ADD10C," << rules.trace_width_mils / 1000.0 << "*%\n";
  os << "%ADD11C," << rules.via_pad_mils / 1000.0 << "*%\n";

  auto gx = [&](Coord g) { return gerber_units(spec.mils_of_grid(g)); };

  // Pads: every drill hole has a pad on every layer.
  os << "D11*\n";
  const int nl = stack.num_layers();
  for (Coord vy = 0; vy < spec.ny_vias(); ++vy) {
    for (Coord vx = 0; vx < spec.nx_vias(); ++vx) {
      if (stack.via_use_count({vx, vy}) < nl) continue;
      coord(os, gerber_units(vx * spec.via_pitch_mils()),
            gerber_units(vy * spec.via_pitch_mils()), "D03");
    }
  }

  os << "D10*\n";
  for (const Connection& c : conns) {
    const RouteRecord& r = db.rec(c.id);
    if (r.status != RouteStatus::kRouted) continue;
    std::vector<Point> seq{c.a};
    seq.insert(seq.end(), r.geom.vias.begin(), r.geom.vias.end());
    seq.push_back(c.b);
    for (std::size_t j = 0; j < r.geom.hops.size(); ++j) {
      if (r.geom.hops[j].layer != layer) continue;
      HopPolyline poly =
          hop_polyline(spec, stack, r.geom.hops[j], seq[j], seq[j + 1]);
      if (mitered) poly = miter45(poly);
      if (poly.points.size() < 2) continue;
      coord(os, gx(poly.points[0].x), gx(poly.points[0].y), "D02");
      for (std::size_t i = 1; i < poly.points.size(); ++i) {
        coord(os, gx(poly.points[i].x), gx(poly.points[i].y), "D01");
      }
    }
  }
  os << "M02*\n";
  return os.str();
}

std::string gerber_power_plane(const Board& board,
                               const PowerPlaneArt& art) {
  const DesignRules& rules = board.rules();
  std::ostringstream os;
  os << "G04 grr power plane " << art.net_name << "*\n" << header();

  // Solid copper: a dark region over the whole board.
  os << "%LPD*%\nG36*\n";
  coord(os, 0, 0, "D02");
  coord(os, gerber_units(art.width_mils), 0, "D01");
  coord(os, gerber_units(art.width_mils), gerber_units(art.height_mils),
        "D01");
  coord(os, 0, gerber_units(art.height_mils), "D01");
  coord(os, 0, 0, "D01");
  os << "G37*\n";

  // Apertures per feature kind.
  os << "%ADD20C," << rules.plane_clearance_mils / 1000.0 << "*%\n";
  os << "%ADD21C," << rules.thermal_relief_outer_mils / 1000.0 << "*%\n";
  os << "%ADD22C," << rules.thermal_relief_outer_mils / 2000.0 << "*%\n";
  os << "%ADD23C," << rules.mounting_clearance_mils / 1000.0 << "*%\n";

  // Isolation and mounting clearances: clear-polarity flashes.
  os << "%LPC*%\nD20*\n";
  for (const PlaneDisk& d : art.disks) {
    if (d.feature == PlaneFeature::kClearance) {
      coord(os, gerber_units(d.center_mils.x),
            gerber_units(d.center_mils.y), "D03");
    }
  }
  os << "D23*\n";
  for (const PlaneDisk& d : art.disks) {
    if (d.feature == PlaneFeature::kMountClearance) {
      coord(os, gerber_units(d.center_mils.x),
            gerber_units(d.center_mils.y), "D03");
    }
  }

  // Thermal reliefs: clear the annulus, restore the pad (the spokes of
  // Fig 22 come out of the pad restoration overlapping the clearance).
  os << "D21*\n";
  for (const PlaneDisk& d : art.disks) {
    if (d.feature == PlaneFeature::kThermalRelief) {
      coord(os, gerber_units(d.center_mils.x),
            gerber_units(d.center_mils.y), "D03");
    }
  }
  os << "%LPD*%\nD22*\n";
  for (const PlaneDisk& d : art.disks) {
    if (d.feature == PlaneFeature::kThermalRelief) {
      coord(os, gerber_units(d.center_mils.x),
            gerber_units(d.center_mils.y), "D03");
    }
  }
  os << "M02*\n";
  return os.str();
}

}  // namespace grr
