// RS-274X (Extended Gerber) photoplot output — the modern equivalent of
// the photoplots in the paper's appendix (Figs 21-22). Signal layers are
// emitted as draws with a round trace aperture plus pad flashes; power
// planes as a dark region with clear flashes for isolation and mounting
// clearances and a simple two-polarity thermal relief at member pins.
//
// Coordinates use inch units with 2.4 format (0.1 mil resolution), which
// represents the 100/42/16-mil grid exactly.
#pragma once

#include <string>

#include "board/power_plane.hpp"
#include "route/route_db.hpp"
#include "route/router.hpp"

namespace grr {

/// One routed signal layer as a Gerber photoplot. With `mitered`, staircase
/// corners are drawn as 45-degree segments (footnote 2's postprocessing).
std::string gerber_signal_layer(const Board& board, const RouteDB& db,
                                const ConnectionList& conns, LayerId layer,
                                bool mitered = true);

/// A power plane as a Gerber photoplot (positive polarity: copper is what
/// is drawn; clearances are clear-polarity flashes).
std::string gerber_power_plane(const Board& board,
                               const PowerPlaneArt& art);

}  // namespace grr
