#include "report/html_report.hpp"

#include <sstream>

#include "check/registry.hpp"
#include "report/pattern_stats.hpp"
#include "report/svg.hpp"

namespace grr {
namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

}  // namespace

std::string html_board_report(const Board& board, Router& router,
                              const ConnectionList& conns,
                              const std::string& title) {
  const RouterStats& st = router.stats();
  std::ostringstream os;
  os << "<!DOCTYPE html>\n<html><head><meta charset='utf-8'>\n<title>"
     << escape(title) << "</title>\n"
     << "<style>body{font-family:sans-serif;max-width:1100px;margin:2em "
        "auto;}table{border-collapse:collapse}td,th{border:1px solid "
        "#999;padding:4px 10px;text-align:right}th{background:#eee}"
        ".art{border:1px solid #ccc;margin:1em 0;max-width:100%}"
        "</style></head>\n<body>\n";
  os << "<h1>" << escape(title) << "</h1>\n";

  os << "<h2>Board</h2>\n<table><tr><th>size</th><th>signal layers</th>"
     << "<th>parts</th><th>pins</th><th>pins/in&sup2;</th>"
     << "<th>connections</th></tr><tr>"
     << "<td>" << board.spec().board_width_inches() << "\" x "
     << board.spec().board_height_inches() << "\"</td>"
     << "<td>" << board.stack().num_layers() << "</td>"
     << "<td>" << board.parts().size() << "</td>"
     << "<td>" << board.total_pins() << "</td>"
     << "<td>" << board.pins_per_sq_inch() << "</td>"
     << "<td>" << conns.size() << "</td></tr></table>\n";

  os << "<h2>Routing</h2>\n<table><tr><th>routed</th><th>%optimal</th>"
     << "<th>%lee</th><th>rip-ups</th><th>vias/conn</th><th>passes</th>"
     << "</tr><tr>"
     << "<td>" << st.routed << "/" << st.total << "</td>"
     << "<td>" << st.pct_optimal() << "</td>"
     << "<td>" << st.pct_lee() << "</td>"
     << "<td>" << st.rip_ups << "</td>"
     << "<td>" << st.vias_per_conn() << "</td>"
     << "<td>" << st.passes << "</td></tr></table>\n";

  os << "<h2>Strategy profile</h2>\n<table><tr><th>zero-via</th>"
     << "<th>one-via</th><th>lee</th><th>rip-up</th><th>put-back</th>"
     << "</tr><tr>"
     << "<td>" << st.sec_zero_via << " s</td>"
     << "<td>" << st.sec_one_via << " s</td>"
     << "<td>" << st.sec_lee << " s</td>"
     << "<td>" << st.sec_ripup << " s</td>"
     << "<td>" << st.sec_putback << " s</td></tr></table>\n";

  PatternStats ps = analyze_patterns(board.stack(), router.db(), conns);
  os << "<h2>Pattern statistics</h2>\n<table><tr><th>layer</th>"
     << "<th>dir</th><th>segments</th><th>utilization %</th></tr>\n";
  for (const LayerUtilization& u : ps.layers) {
    os << "<tr><td>" << static_cast<int>(u.layer) << "</td><td>"
       << (u.orientation == Orientation::kHorizontal ? "H" : "V")
       << "</td><td>" << u.segments << "</td><td>" << u.utilization()
       << "</td></tr>\n";
  }
  os << "</table>\n<p>" << ps.total_trace_mils / 1000.0
     << " inches of trace, " << ps.avg_bends_per_conn
     << " bends/connection, detour ratio " << ps.avg_detour_ratio
     << ". Via histogram:";
  for (std::size_t i = 0; i < ps.via_histogram.size(); ++i) {
    os << ' ' << i << (i + 1 == ps.via_histogram.size() ? "+:" : ":")
       << ps.via_histogram[i];
  }
  os << "</p>\n";

  // Static analysis: run the full checker battery (lint, audits, DRC) and
  // list the findings; each finding with a location becomes a marker on
  // the layer artwork below.
  CheckContext ctx;
  ctx.board = &board;
  ctx.conns = &conns;
  ctx.db = &router.db();
  CheckReport checks = CheckSuite::standard().run(ctx);
  os << "<h2>Static analysis</h2>\n";
  if (checks.findings.empty()) {
    os << "<p>clean: " << checks.segments_checked << " segments and "
       << checks.connections_checked
       << " connections checked, no findings.</p>\n";
  } else {
    os << "<p>" << checks.error_count() << " errors, "
       << checks.warning_count() << " warnings.</p>\n"
       << "<table><tr><th>rule</th><th>severity</th><th>location</th>"
       << "<th>message</th></tr>\n";
    constexpr std::size_t kMaxRows = 200;
    for (std::size_t i = 0;
         i < checks.findings.size() && i < kMaxRows; ++i) {
      const Finding& f = checks.findings[i];
      os << "<tr><td>" << escape(f.rule) << "</td><td>"
         << to_string(f.severity) << "</td><td>" << escape(f.where)
         << "</td><td style='text-align:left'>" << escape(f.message)
         << "</td></tr>\n";
    }
    os << "</table>\n";
    if (checks.findings.size() > kMaxRows) {
      os << "<p>(" << checks.findings.size() - kMaxRows
         << " further findings omitted)</p>\n";
    }
  }

  os << "<h2>Routing problem</h2>\n<div class='art'>"
     << svg_string_art(board, conns) << "</div>\n";
  for (int l = 0; l < board.stack().num_layers(); ++l) {
    os << "<h2>Signal layer " << l << " ("
       << (board.stack().layer(static_cast<LayerId>(l)).orientation() ==
                   Orientation::kHorizontal
               ? "horizontal"
               : "vertical")
       << ")</h2>\n<div class='art'>"
       << svg_signal_layer(board, router.db(), conns,
                           static_cast<LayerId>(l), /*mitered=*/true,
                           &checks)
       << "</div>\n";
  }
  os << "</body></html>\n";
  return os.str();
}

}  // namespace grr
