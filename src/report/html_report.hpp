// Self-contained HTML board report: routing statistics, per-strategy
// profile, pattern statistics and the inline SVG artwork (problem string
// art plus every signal layer) in one file — the artifact to attach to a
// design review.
#pragma once

#include <string>

#include "board/board.hpp"
#include "route/router.hpp"

namespace grr {

std::string html_board_report(const Board& board, Router& router,
                              const ConnectionList& conns,
                              const std::string& title);

}  // namespace grr
