#include "report/pattern_stats.hpp"

#include <iomanip>

#include "postprocess/miter.hpp"

namespace grr {

PatternStats analyze_patterns(const LayerStack& stack, const RouteDB& db,
                              const ConnectionList& conns) {
  const GridSpec& spec = stack.spec();
  const SegmentPool& pool = stack.pool();
  PatternStats stats;

  for (int li = 0; li < stack.num_layers(); ++li) {
    const Layer& layer = stack.layer(static_cast<LayerId>(li));
    LayerUtilization u;
    u.layer = static_cast<LayerId>(li);
    u.orientation = layer.orientation();
    u.capacity = static_cast<long>(layer.across_extent().length()) *
                 layer.along_extent().length();
    const Interval across = layer.across_extent();
    for (Coord c = across.lo; c <= across.hi; ++c) {
      for (SegId s = layer.channel(c).head(); s != kNoSeg;
           s = pool[s].next) {
        ++u.segments;
        if (pool[s].is_via) {
          u.via_cells += pool[s].span.length();
        } else {
          u.used_track += pool[s].span.length();
        }
      }
    }
    stats.layers.push_back(u);
  }

  double detour_sum = 0;
  for (const Connection& c : conns) {
    const RouteRecord& r = db.rec(c.id);
    if (r.status != RouteStatus::kRouted) continue;
    ++stats.routed;

    const int vias = static_cast<int>(r.geom.vias.size());
    stats.max_vias_on_conn = std::max(stats.max_vias_on_conn, vias);
    ++stats.via_histogram[static_cast<std::size_t>(
        std::min(vias, static_cast<int>(stats.via_histogram.size()) - 1))];

    long mils = db.length_mils(spec, stack, c.id);
    stats.total_trace_mils += mils;
    long manhattan_mils =
        static_cast<long>(manhattan(c.a, c.b)) * spec.via_pitch_mils();
    if (manhattan_mils > 0) {
      detour_sum += static_cast<double>(mils) / manhattan_mils;
    } else {
      detour_sum += 1.0;
    }

    // Bends: interior corners of every hop polyline.
    std::vector<Point> seq{c.a};
    seq.insert(seq.end(), r.geom.vias.begin(), r.geom.vias.end());
    seq.push_back(c.b);
    for (std::size_t j = 0; j < r.geom.hops.size(); ++j) {
      HopPolyline poly =
          hop_polyline(spec, stack, r.geom.hops[j], seq[j], seq[j + 1]);
      if (poly.points.size() >= 3) {
        stats.total_bends += static_cast<long>(poly.points.size()) - 2;
      }
    }
  }
  if (stats.routed > 0) {
    stats.avg_bends_per_conn =
        static_cast<double>(stats.total_bends) / stats.routed;
    stats.avg_detour_ratio = detour_sum / stats.routed;
  }
  return stats;
}

void print_pattern_stats(std::ostream& os, const PatternStats& stats) {
  os << "routing pattern statistics:\n";
  os << "  layer  dir  segments  track-use%  (track + via cells / "
        "capacity)\n";
  for (const LayerUtilization& u : stats.layers) {
    os << "  " << std::setw(5) << static_cast<int>(u.layer) << "  "
       << (u.orientation == Orientation::kHorizontal ? "  H" : "  V")
       << "  " << std::setw(8) << u.segments << "  " << std::fixed
       << std::setprecision(1) << std::setw(9) << u.utilization() << "   ("
       << u.used_track << " + " << u.via_cells << " / " << u.capacity
       << ")\n";
  }
  os << "  routed " << stats.routed << " connections, "
     << stats.total_trace_mils / 1000.0 << " inches of trace, "
     << std::setprecision(2) << stats.avg_bends_per_conn
     << " bends/conn, detour ratio " << stats.avg_detour_ratio << "\n";
  os << "  vias/conn histogram:";
  for (std::size_t i = 0; i < stats.via_histogram.size(); ++i) {
    os << ' ' << i << (i + 1 == stats.via_histogram.size() ? "+:" : ":")
       << stats.via_histogram[i];
  }
  os << "\n";
}

}  // namespace grr
