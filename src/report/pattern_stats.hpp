// Statistical measures of routing patterns (paper Sec 12: "The most
// effective tools for improving program performance were careful analysis
// of the router output to find inefficient routing patterns, statistical
// measures of routing patterns, and profiles of the CPU usage...").
//
// analyze_patterns() summarizes a routed board: per-layer track
// utilization, bend counts, via-count histogram and detour ratios.
#pragma once

#include <array>
#include <ostream>
#include <vector>

#include "route/route_db.hpp"
#include "route/router.hpp"

namespace grr {

struct LayerUtilization {
  LayerId layer = 0;
  Orientation orientation = Orientation::kHorizontal;
  long used_track = 0;  // grid units covered by trace metal (vias excluded)
  long via_cells = 0;   // grid cells covered by via/pin pads
  long capacity = 0;    // channels x channel length
  long segments = 0;

  double utilization() const {
    return capacity ? 100.0 * (used_track + via_cells) / capacity : 0.0;
  }
};

struct PatternStats {
  std::vector<LayerUtilization> layers;
  int routed = 0;
  long total_trace_mils = 0;
  long total_bends = 0;  // right-angle corners across all hops
  double avg_bends_per_conn = 0.0;
  /// Routed length over the Manhattan lower bound, averaged over routed
  /// connections (1.0 = every route is minimal).
  double avg_detour_ratio = 0.0;
  /// Connections by intermediate-via count; the last bucket is "7+".
  std::array<int, 8> via_histogram{};
  int max_vias_on_conn = 0;
};

PatternStats analyze_patterns(const LayerStack& stack, const RouteDB& db,
                              const ConnectionList& conns);

void print_pattern_stats(std::ostream& os, const PatternStats& stats);

}  // namespace grr
