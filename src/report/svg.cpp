#include "report/svg.hpp"

#include <fstream>
#include <sstream>

#include "postprocess/miter.hpp"

namespace grr {
namespace {

constexpr double kScale = 0.1;  // 1 px per 10 mils

double px_of_grid(const GridSpec& spec, Coord g) {
  return spec.mils_of_grid(g) * kScale;
}

double px_of_via(const GridSpec& spec, Coord v) {
  return v * spec.via_pitch_mils() * kScale;
}

std::string svg_open(double w_px, double h_px, const char* bg) {
  std::ostringstream os;
  os << "<svg xmlns='http://www.w3.org/2000/svg' width='" << w_px
     << "' height='" << h_px << "' viewBox='0 0 " << w_px << ' ' << h_px
     << "'>\n<rect width='100%' height='100%' fill='" << bg << "'/>\n";
  return os.str();
}

void board_frame(std::ostringstream& os, const GridSpec& spec) {
  os << "<rect x='0' y='0' width='"
     << px_of_via(spec, spec.nx_vias() - 1) << "' height='"
     << px_of_via(spec, spec.ny_vias() - 1)
     << "' fill='none' stroke='#888' stroke-width='1'/>\n";
}

}  // namespace

std::string svg_placement(const Board& board) {
  const GridSpec& spec = board.spec();
  std::ostringstream os;
  os << svg_open(px_of_via(spec, spec.nx_vias() - 1) + 2,
                 px_of_via(spec, spec.ny_vias() - 1) + 2, "white");
  board_frame(os, spec);
  for (std::size_t pi = 0; pi < board.parts().size(); ++pi) {
    const Part& part = board.parts()[pi];
    const Footprint& fp = board.footprint(part.footprint);
    // Outline: bounding box of the pins, slightly inflated.
    Coord min_x = fp.pin_offsets[0].x, max_x = min_x;
    Coord min_y = fp.pin_offsets[0].y, max_y = min_y;
    for (Point p : fp.pin_offsets) {
      min_x = std::min(min_x, p.x);
      max_x = std::max(max_x, p.x);
      min_y = std::min(min_y, p.y);
      max_y = std::max(max_y, p.y);
    }
    os << "<rect x='" << px_of_via(spec, part.origin.x + min_x) - 3
       << "' y='" << px_of_via(spec, part.origin.y + min_y) - 3
       << "' width='" << px_of_via(spec, max_x - min_x) + 6 << "' height='"
       << px_of_via(spec, max_y - min_y) + 6
       << "' fill='none' stroke='#444' stroke-width='0.6'/>\n";
    for (int pin = 0; pin < fp.pin_count(); ++pin) {
      Point v = board.pin_via(static_cast<PartId>(pi), pin);
      os << "<circle cx='" << px_of_via(spec, v.x) << "' cy='"
         << px_of_via(spec, v.y)
         << "' r='1.6' fill='none' stroke='#222' stroke-width='0.5'/>\n";
    }
  }
  os << "</svg>\n";
  return os.str();
}

std::string svg_string_art(const Board& board, const ConnectionList& conns) {
  const GridSpec& spec = board.spec();
  std::ostringstream os;
  os << svg_open(px_of_via(spec, spec.nx_vias() - 1) + 2,
                 px_of_via(spec, spec.ny_vias() - 1) + 2, "white");
  board_frame(os, spec);
  os << "<g stroke='#333' stroke-width='0.3'>\n";
  for (const Connection& c : conns) {
    os << "<line x1='" << px_of_via(spec, c.a.x) << "' y1='"
       << px_of_via(spec, c.a.y) << "' x2='" << px_of_via(spec, c.b.x)
       << "' y2='" << px_of_via(spec, c.b.y) << "'/>\n";
  }
  os << "</g>\n</svg>\n";
  return os.str();
}

std::string svg_signal_layer(const Board& board, const RouteDB& db,
                             const ConnectionList& conns, LayerId layer,
                             bool mitered, const CheckReport* findings) {
  const GridSpec& spec = board.spec();
  const LayerStack& stack = board.stack();
  std::ostringstream os;
  os << svg_open(px_of_via(spec, spec.nx_vias() - 1) + 2,
                 px_of_via(spec, spec.ny_vias() - 1) + 2, "white");
  board_frame(os, spec);

  // Pads: every drill hole (pin or via) has a pad on every layer.
  os << "<g fill='black'>\n";
  const int nl = stack.num_layers();
  for (Coord vy = 0; vy < spec.ny_vias(); ++vy) {
    for (Coord vx = 0; vx < spec.nx_vias(); ++vx) {
      if (stack.via_use_count({vx, vy}) < nl) continue;
      os << "<circle cx='" << px_of_via(spec, vx) << "' cy='"
         << px_of_via(spec, vy) << "' r='"
         << board.rules().via_pad_mils * kScale / 2 << "'/>\n";
    }
  }
  os << "</g>\n";

  os << "<g stroke='black' fill='none' stroke-linejoin='round' "
        "stroke-width='"
     << board.rules().trace_width_mils * kScale << "'>\n";
  for (const Connection& c : conns) {
    const RouteRecord& r = db.rec(c.id);
    if (r.status != RouteStatus::kRouted) continue;
    std::vector<Point> seq;
    seq.push_back(c.a);
    seq.insert(seq.end(), r.geom.vias.begin(), r.geom.vias.end());
    seq.push_back(c.b);
    for (std::size_t j = 0; j < r.geom.hops.size(); ++j) {
      if (r.geom.hops[j].layer != layer) continue;
      HopPolyline poly =
          hop_polyline(spec, stack, r.geom.hops[j], seq[j], seq[j + 1]);
      if (mitered) poly = miter45(poly);
      os << "<polyline points='";
      for (Point p : poly.points) {
        os << px_of_grid(spec, p.x) << ',' << px_of_grid(spec, p.y) << ' ';
      }
      os << "'/>\n";
    }
  }
  os << "</g>\n";

  // Violation overlay: findings anchored to this layer (or to none in
  // particular, e.g. opens) marked over the artwork.
  if (findings != nullptr) {
    for (const Finding& f : findings->findings) {
      if (!f.has_overlay()) continue;
      if (f.layer >= 0 && f.layer != layer) continue;
      const char* color =
          f.severity == CheckSeverity::kError ? "#e00" : "#e80";
      const double x0 = px_of_grid(spec, f.rect.x.lo) - 2;
      const double y0 = px_of_grid(spec, f.rect.y.lo) - 2;
      const double x1 = px_of_grid(spec, f.rect.x.hi) + 2;
      const double y1 = px_of_grid(spec, f.rect.y.hi) + 2;
      os << "<rect x='" << x0 << "' y='" << y0 << "' width='" << x1 - x0
         << "' height='" << y1 - y0 << "' fill='" << color
         << "' fill-opacity='0.25' stroke='" << color
         << "' stroke-width='0.8'><title>" << f.rule << ": " << f.message
         << "</title></rect>\n";
    }
  }
  os << "</svg>\n";
  return os.str();
}

std::string svg_power_plane(const PowerPlaneArt& art) {
  std::ostringstream os;
  // Photographic negative: copper is etched away where the image is black.
  os << svg_open(art.width_mils * kScale + 2, art.height_mils * kScale + 2,
                 "#c88330");
  for (const PlaneDisk& d : art.disks) {
    const char* fill = "black";
    os << "<circle cx='" << d.center_mils.x * kScale << "' cy='"
       << d.center_mils.y * kScale << "' r='" << d.radius_mils * kScale
       << "' fill='" << fill << "'";
    if (d.feature == PlaneFeature::kThermalRelief) {
      // Spoked ring: draw the annulus then copper spokes back in.
      os << " stroke='none'/>\n";
      os << "<circle cx='" << d.center_mils.x * kScale << "' cy='"
         << d.center_mils.y * kScale << "' r='" << d.radius_mils * kScale / 2
         << "' fill='#c88330'/>\n";
      os << "<path d='M " << (d.center_mils.x - d.radius_mils) * kScale
         << ' ' << d.center_mils.y * kScale << " H "
         << (d.center_mils.x + d.radius_mils) * kScale
         << "' stroke='#c88330' stroke-width='1'/>\n";
      continue;
    }
    os << "/>\n";
  }
  os << "</svg>\n";
  return os.str();
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream f(path);
  if (!f) return false;
  f << content;
  return static_cast<bool>(f);
}

}  // namespace grr
