// SVG rendering of boards, routing problems (Fig 20 string art), routed
// signal layers (Fig 21, optionally 45-degree mitered) and power planes
// (Fig 22).
#pragma once

#include <string>

#include "board/power_plane.hpp"
#include "check/check_report.hpp"
#include "route/route_db.hpp"
#include "route/router.hpp"
#include "workload/board_gen.hpp"

namespace grr {

/// Placement view: part outlines and pins (Fig 19).
std::string svg_placement(const Board& board);

/// The routing problem: one straight line per pin-to-pin connection
/// (Fig 20).
std::string svg_string_art(const Board& board, const ConnectionList& conns);

/// One routed signal layer: traces of that layer plus all via/pin pads
/// (Fig 21). With `mitered`, staircase corners are drawn as 45-degree
/// diagonals, as in the photoplot postprocessing. When `findings` is given,
/// every finding that carries an overlay rect on this layer (or on no
/// particular layer) is drawn as a translucent red (error) or orange
/// (warning) marker over the artwork.
std::string svg_signal_layer(const Board& board, const RouteDB& db,
                             const ConnectionList& conns, LayerId layer,
                             bool mitered = true,
                             const CheckReport* findings = nullptr);

/// A power plane negative (Fig 22): etched disks on solid copper.
std::string svg_power_plane(const PowerPlaneArt& art);

/// Write a string to a file; returns false on I/O failure.
bool write_file(const std::string& path, const std::string& content);

}  // namespace grr
