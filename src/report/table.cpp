#include "report/table.hpp"

#include <iomanip>

namespace grr {

Table1Row Table1Row::from_run(const GeneratedBoard& gb,
                              const RouterStats& stats, double cpu_sec) {
  Table1Row row;
  row.board = gb.params.name;
  row.layers = gb.params.layers;
  row.conn = static_cast<int>(gb.strung.connections.size());
  row.pins_in2 = gb.board->pins_per_sq_inch();
  row.pct_chan = gb.pct_chan;
  row.pct_lee = stats.pct_lee();
  row.rip_ups = stats.rip_ups;
  row.vias_per_conn = stats.vias_per_conn();
  row.cpu_sec = cpu_sec;
  row.pct_routed =
      stats.total ? 100.0 * stats.routed / stats.total : 100.0;
  return row;
}

void print_table1(std::ostream& os, const std::vector<Table1Row>& rows) {
  os << std::left << std::setw(11) << "board" << std::right  //
     << std::setw(7) << "layers" << std::setw(7) << "conn"   //
     << std::setw(9) << "pins/in2" << std::setw(8) << "%chan" //
     << std::setw(7) << "%lee" << std::setw(8) << "ripups"    //
     << std::setw(7) << "vias" << std::setw(9) << "CPU s"     //
     << std::setw(9) << "%routed" << '\n';
  os << std::string(82, '-') << '\n';
  for (const Table1Row& r : rows) {
    os << std::left << std::setw(11) << r.board << std::right  //
       << std::setw(7) << r.layers << std::setw(7) << r.conn   //
       << std::fixed << std::setprecision(1)                   //
       << std::setw(9) << r.pins_in2 << std::setw(8) << r.pct_chan
       << std::setw(7) << r.pct_lee << std::setw(8) << r.rip_ups
       << std::setprecision(2) << std::setw(7) << r.vias_per_conn
       << std::setw(9) << r.cpu_sec << std::setprecision(1)
       << std::setw(8) << r.pct_routed
       << (r.pct_routed < 100.0 ? " FAIL" : "") << '\n';
  }
}

}  // namespace grr
