// Table 1 formatting: the per-board results table of the paper's Sec 9.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "route/router.hpp"
#include "workload/board_gen.hpp"

namespace grr {

struct Table1Row {
  std::string board;
  int layers = 0;
  int conn = 0;
  double pins_in2 = 0;
  double pct_chan = 0;
  double pct_lee = 0;
  long rip_ups = 0;
  double vias_per_conn = 0;
  double cpu_sec = 0;
  double pct_routed = 100.0;  // < 100 marks a failure, as in row 1

  static Table1Row from_run(const GeneratedBoard& gb,
                            const RouterStats& stats, double cpu_sec);
};

void print_table1(std::ostream& os, const std::vector<Table1Row>& rows);

}  // namespace grr
