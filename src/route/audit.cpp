#include "route/audit.hpp"

#include <sstream>

namespace grr {
namespace {

std::string str(Point p) {
  std::ostringstream os;
  os << p;
  return os.str();
}

std::string chan_loc(int layer, Coord channel) {
  return "layer " + std::to_string(layer) + " ch " + std::to_string(channel);
}

/// Does a span in `channel` touch grid point p (channel space pc, pv)?
/// Touching = abutting it in its own channel or covering its along
/// coordinate from an adjacent channel (one crossing step away).
bool span_touches(Coord ch, Interval s, Coord pc, Coord pv) {
  if (ch == pc) return s.hi == pv - 1 || s.lo == pv + 1;
  if (ch == pc - 1 || ch == pc + 1) return s.contains(pv);
  return false;
}

}  // namespace

CheckReport audit_stack(const LayerStack& stack) {
  CheckReport rep;
  const GridSpec& spec = stack.spec();
  const SegmentPool& pool = stack.pool();

  // Recount via coverings while walking every channel.
  std::vector<int> recount(
      static_cast<std::size_t>(spec.nx_vias()) * spec.ny_vias(), 0);

  for (int li = 0; li < stack.num_layers(); ++li) {
    const Layer& layer = stack.layer(static_cast<LayerId>(li));
    const Interval along = layer.along_extent();
    const Interval across = layer.across_extent();
    for (Coord c = across.lo; c <= across.hi; ++c) {
      const Channel& ch = layer.channel(c);
      if (!ch.store_consistent(pool)) {
        rep.add("AUDIT-CHAN-STORE", CheckSeverity::kError, chan_loc(li, c),
                "flat store arrays/bitmap out of sync with the pool");
      }
      SegId prev = kNoSeg;
      for (SegId s = ch.head(); s != kNoSeg; s = pool[s].next) {
        const Segment& seg = pool[s];
        ++rep.segments_checked;
        if (seg.prev != prev) {
          rep.add("AUDIT-CHAN-LINK", CheckSeverity::kError, chan_loc(li, c),
                  "channel back-link broken at layer " + std::to_string(li));
        }
        if (seg.channel != c || seg.layer != li) {
          rep.add("AUDIT-CHAN-BOOK", CheckSeverity::kError, chan_loc(li, c),
                  "segment/channel bookkeeping mismatch");
        }
        if (seg.span.empty() || !along.contains(seg.span.lo) ||
            !along.contains(seg.span.hi)) {
          rep.add("AUDIT-CHAN-EXTENT", CheckSeverity::kError, chan_loc(li, c),
                  "segment span outside channel extent");
        }
        if (prev != kNoSeg && pool[prev].span.hi >= seg.span.lo) {
          rep.add("AUDIT-CHAN-ORDER", CheckSeverity::kError, chan_loc(li, c),
                  "overlapping/unsorted segments in channel " +
                      std::to_string(c) + " layer " + std::to_string(li));
        }
        if (c % spec.period() == 0) {
          Coord first =
              ((seg.span.lo + spec.period() - 1) / spec.period()) *
              spec.period();
          for (Coord g = first; g <= seg.span.hi; g += spec.period()) {
            Point via = spec.via_of_grid(layer.point_of(c, g));
            recount[static_cast<std::size_t>(via.y) * spec.nx_vias() +
                    via.x]++;
          }
        }
        prev = s;
      }
    }
  }

  if (stack.use_via_map()) {
    for (Coord vy = 0; vy < spec.ny_vias(); ++vy) {
      for (Coord vx = 0; vx < spec.nx_vias(); ++vx) {
        Point v{vx, vy};
        int want =
            recount[static_cast<std::size_t>(vy) * spec.nx_vias() + vx];
        if (stack.via_map().count(v) != want) {
          Finding& f = rep.add(
              "AUDIT-VIAMAP-STALE", CheckSeverity::kError, "via " + str(v),
              "via map stale at " + str(v) + ": map says " +
                  std::to_string(stack.via_map().count(v)) +
                  ", layers say " + std::to_string(want));
          Point g = spec.grid_of_via(v);
          f.rect = Rect{{g.x, g.x}, {g.y, g.y}};
        }
      }
    }
  }
  return rep;
}

CheckReport audit_routes(const LayerStack& stack, const RouteDB& db,
                         const ConnectionList& conns) {
  CheckReport rep;
  const GridSpec& spec = stack.spec();
  const SegmentPool& pool = stack.pool();

  for (const Connection& c : conns) {
    const RouteRecord& r = db.rec(c.id);
    if (r.status != RouteStatus::kRouted) continue;
    ++rep.connections_checked;
    const std::string loc =
        "conn " + std::to_string(c.id) + " " + str(c.a) + "->" + str(c.b);
    auto fail = [&](const char* rule, const std::string& msg) -> Finding& {
      Finding& f = rep.add(rule, CheckSeverity::kError, loc, msg);
      Rect box = Rect::bounding(spec.grid_of_via(c.a), spec.grid_of_via(c.b));
      f.rect = box;
      return f;
    };

    if (c.a == c.b) continue;  // trivial

    // Every live segment belongs to this connection and the trace_next
    // chain mirrors the record's segment list (Sec 4's trace link).
    for (std::size_t i = 0; i < r.segs.size(); ++i) {
      const Segment& seg = pool[r.segs[i]];
      if (seg.conn != c.id) {
        fail("AUDIT-TRACE-OWNER", "segment owned by someone else");
      }
      SegId want_next = (i + 1 < r.segs.size()) ? r.segs[i + 1] : kNoSeg;
      if (seg.trace_next != want_next) {
        fail("AUDIT-TRACE-LINK", "trace link chain broken");
      }
    }

    // Vias drilled on all layers with the right owner.
    for (Point v : r.geom.vias) {
      Point g = spec.grid_of_via(v);
      for (int li = 0; li < stack.num_layers(); ++li) {
        if (stack.conn_at(static_cast<LayerId>(li), g) != c.id) {
          fail("AUDIT-VIA-COVER", "via at " + str(v) + " not covering layer " +
                                      std::to_string(li));
        }
      }
    }

    // Electrical continuity through the via sequence.
    std::vector<Point> seq;
    seq.push_back(c.a);
    seq.insert(seq.end(), r.geom.vias.begin(), r.geom.vias.end());
    seq.push_back(c.b);
    if (r.geom.hops.size() != seq.size() - 1) {
      fail("AUDIT-HOP-CHAIN",
           "hop count " + std::to_string(r.geom.hops.size()) +
               " does not chain " + std::to_string(seq.size()) + " vias");
      continue;
    }
    for (std::size_t j = 0; j < r.geom.hops.size(); ++j) {
      const RouteHop& hop = r.geom.hops[j];
      const Layer& layer = stack.layer(hop.layer);
      Point ug = spec.grid_of_via(seq[j]);
      Point wg = spec.grid_of_via(seq[j + 1]);
      Coord uc = layer.across_of(ug), uv = layer.along_of(ug);
      Coord wc = layer.across_of(wg), wv = layer.along_of(wg);
      if (hop.spans.empty()) {
        if (manhattan(ug, wg) != 1) {
          fail("AUDIT-HOP-ENDS", "empty hop between distant vias");
        }
        continue;
      }
      if (!span_touches(hop.spans.front().channel, hop.spans.front().span,
                        uc, uv)) {
        fail("AUDIT-HOP-ENDS",
             "hop " + std::to_string(j) + " start does not touch its via")
            .layer = hop.layer;
      }
      if (!span_touches(hop.spans.back().channel, hop.spans.back().span, wc,
                        wv)) {
        fail("AUDIT-HOP-ENDS",
             "hop " + std::to_string(j) + " end does not touch its via")
            .layer = hop.layer;
      }
      for (std::size_t k = 0; k + 1 < hop.spans.size(); ++k) {
        const ChannelSpan& s0 = hop.spans[k];
        const ChannelSpan& s1 = hop.spans[k + 1];
        if (std::abs(s0.channel - s1.channel) != 1 ||
            !s0.span.overlaps(s1.span)) {
          fail("AUDIT-HOP-CONT", "hop " + std::to_string(j) +
                                     " discontinuous at span " +
                                     std::to_string(k))
              .layer = hop.layer;
        }
      }
    }
  }
  return rep;
}

CheckReport audit_tiles(const LayerStack& stack, const RouteDB& db,
                        const ConnectionList& conns, const TileMap& tiles) {
  CheckReport rep;
  const GridSpec& spec = stack.spec();
  for (const Connection& c : conns) {
    const RouteRecord& r = db.rec(c.id);
    if (r.status != RouteStatus::kRouted) continue;
    ++rep.connections_checked;
    for (const RouteHop& hop : r.geom.hops) {
      const Layer& layer = stack.layer(hop.layer);
      const bool horiz = layer.orientation() == Orientation::kHorizontal;
      for (const ChannelSpan& cs : hop.spans) {
        Rect span_rect =
            horiz ? Rect{cs.span, {cs.channel, cs.channel}}
                  : Rect{{cs.channel, cs.channel}, cs.span};
        for (const Tile& t : tiles.tiles()) {
          if (t.layer == hop.layer && t.klass != c.klass &&
              t.rect.overlaps(span_rect)) {
            Finding& f = rep.add("AUDIT-TILE-TRACE", CheckSeverity::kError,
                                 "conn " + std::to_string(c.id),
                                 "conn " + std::to_string(c.id) +
                                     " trespasses a foreign tile");
            f.layer = hop.layer;
            f.rect = span_rect;
          }
        }
      }
    }
    for (Point v : r.geom.vias) {
      Point g = spec.grid_of_via(v);
      for (const Tile& t : tiles.tiles()) {
        if (t.klass != c.klass && t.rect.contains(g)) {
          Finding& f = rep.add("AUDIT-TILE-VIA", CheckSeverity::kError,
                               "conn " + std::to_string(c.id),
                               "conn " + std::to_string(c.id) +
                                   " via inside a foreign tile");
          f.rect = Rect{{g.x, g.x}, {g.y, g.y}};
        }
      }
    }
  }
  return rep;
}

CheckReport audit_all(const LayerStack& stack, const RouteDB& db,
                      const ConnectionList& conns, const TileMap* tiles) {
  CheckReport rep = audit_stack(stack);
  CheckReport routes = audit_routes(stack, db, conns);
  rep.connections_checked = routes.connections_checked;
  rep.findings.insert(rep.findings.end(),
                      std::make_move_iterator(routes.findings.begin()),
                      std::make_move_iterator(routes.findings.end()));
  if (tiles) {
    rep.merge(audit_tiles(stack, db, conns, *tiles));
  }
  return rep;
}

}  // namespace grr
