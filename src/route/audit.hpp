// Route auditor: re-checks every invariant of the paper's data
// representation after routing. Used by integration and property tests.
//
//  * channel lists are sorted, non-overlapping and correctly linked;
//  * the via map equals a recount of per-layer coverings;
//  * every routed connection is electrically continuous from a to b through
//    its hop/via chain (abutment in a channel, or a one-step crossing
//    between adjacent channels);
//  * every drilled via covers its site on all layers with the right owner;
//  * ECL/TTL routes stay out of foreign tiles (Sec 10.2).
//
// Findings are reported through the unified CheckReport (rule IDs
// AUDIT-*, documented in doc/DRC.md).
#pragma once

#include "board/tile_map.hpp"
#include "check/check_report.hpp"
#include "route/route_db.hpp"
#include "route/router.hpp"

namespace grr {

/// Structural invariants of the layer stack (channel lists + via map).
CheckReport audit_stack(const LayerStack& stack);

/// Per-connection invariants for all routed connections.
CheckReport audit_routes(const LayerStack& stack, const RouteDB& db,
                         const ConnectionList& conns);

/// Tesselation conformance: no segment or via of a connection lies inside a
/// declared tile of the other signal class.
CheckReport audit_tiles(const LayerStack& stack, const RouteDB& db,
                        const ConnectionList& conns, const TileMap& tiles);

/// Convenience: run all audits and merge reports.
CheckReport audit_all(const LayerStack& stack, const RouteDB& db,
                      const ConnectionList& conns,
                      const TileMap* tiles = nullptr);

}  // namespace grr
