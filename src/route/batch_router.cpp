#include "route/batch_router.hpp"

#include <algorithm>
#include <memory>

#include "layer/access_log.hpp"
#include "route/boxes.hpp"
#include "route/planner.hpp"
#include "route/shard_map.hpp"
#include "route/thread_pool.hpp"
#include "timing/scoped_timer.hpp"

namespace grr {
namespace {

/// Smallest admitted prefix worth a wave barrier; shorter prefixes take the
/// ordered per-plan path (a wave over two or three installs costs more in
/// synchronization than it buys).
constexpr std::size_t kMinWaveRun = 4;

/// One admitted plan of a wave run: its exact write cover (the rectangles
/// try_install will journal), the ShardMap cell that cover falls in, and
/// the install's private journal/counters, merged back in batch order.
struct AdmittedPlan {
  std::size_t pos = 0;  // index into the batch's plan array
  int shard = ShardMap::kCross;
  std::vector<Rect> cover;
  MutationJournal local;
  TxnCounters counters;
  bool installed = false;
};

void merge_counters(TxnCounters& into, const TxnCounters& from) {
  into.begins += from.begins;
  into.vias += from.vias;
  into.hops += from.hops;
  into.commits += from.commits;
  into.rollbacks += from.rollbacks;
  into.rips += from.rips;
  into.putbacks += from.putbacks;
  into.putback_failures += from.putback_failures;
  into.installs += from.installs;
  into.install_conflicts += from.install_conflicts;
}

}  // namespace

BatchRouter::BatchRouter(LayerStack& stack, RouterConfig cfg)
    : stack_(stack), cfg_(cfg), serial_(stack, cfg) {}

bool BatchRouter::access_audit_enabled() const {
  return cfg_.access_audit || access_audit_env();
}

bool BatchRouter::route_all(const ConnectionList& conns) {
  batch_stats_ = BatchStats{};
  foot_log_.clear();
  foot_log_.extent = stack_.spec().extent();
  // The two-via ablation threads uncommitted state through nested helpers;
  // it exists to reproduce the paper's rejection of it, so it stays serial.
  if (cfg_.threads <= 1 || cfg_.enable_two_via) {
    return serial_.route_all(conns);
  }
  return route_parallel(conns);
}

bool BatchRouter::route_parallel(const ConnectionList& conns) {
  const GridSpec& spec = stack_.spec();
  const bool audit = access_audit_enabled();
  // Region-parallel commit needs shards to group by and threads to run
  // waves on; otherwise the commit phase degenerates to the ordered
  // per-plan walk of PR 2, bit for bit.
  const bool sharded = cfg_.shards > 1 && cfg_.threads > 1;
  ThreadPool pool(cfg_.threads);
  std::vector<std::unique_ptr<ConnectionPlanner>> planners;
  planners.reserve(static_cast<std::size_t>(pool.size()));
  RouterConfig worker_cfg = cfg_;
  worker_cfg.access_audit = audit;  // env opt-in reaches the workers too
  if (sharded && cfg_.shard_plan_lee_budget > 0) {
    // Bound speculative Lee waste; outcome-neutral (see config.hpp).
    worker_cfg.max_lee_expansions =
        std::min(worker_cfg.max_lee_expansions, cfg_.shard_plan_lee_budget);
  }
  for (int i = 0; i < pool.size(); ++i) {
    planners.push_back(
        std::make_unique<ConnectionPlanner>(stack_, worker_cfg));
  }

  serial_.prepare(conns);
  MutationJournal journal;
  serial_.set_journal(&journal);
  const ConnectionList& order = serial_.connections();
  ShardMap smap(spec.extent(), sharded ? cfg_.shards : 1);
  if (sharded) {
    batch_stats_.shard_rows = smap.rows();
    batch_stats_.shard_cols = smap.cols();
    batch_stats_.per_shard.assign(static_cast<std::size_t>(smap.count()),
                                  ShardStats{});
  }
  // Sharded batches are wider: admission — not the batch window — decides
  // what installs concurrently, so the window no longer needs disjointness
  // and profits from giving admission a longer prefix to work with.
  const std::size_t max_batch =
      sharded ? std::max<std::size_t>(
                    static_cast<std::size_t>(cfg_.threads) * 32, 256)
              : std::max<std::size_t>(
                    static_cast<std::size_t>(cfg_.threads) * 8, 32);

  // Same outer loop and progress rule as the serial route_all (Sec 8.4).
  std::size_t prev_unrouted = order.size() + 1;
  for (int pass = 0; pass < cfg_.max_passes; ++pass) {
    const std::size_t unrouted = serial_.count_unrouted();
    if (unrouted == 0 || unrouted >= prev_unrouted) break;
    prev_unrouted = unrouted;
    ++serial_.stats().passes;

    // The work list is dynamic, exactly like the serial pass loop's
    // routed-status check at each position: a rip-up victim whose put-back
    // fails regresses to unrouted and must be re-routed later in the SAME
    // pass when its position is reached.
    std::size_t idx = 0;
    std::vector<std::size_t> batch;  // positions in `order`
    std::vector<RoutePlan> plans;
    std::vector<Rect> boxes;
    std::vector<char> plan_mask;    // batch members to speculatively plan
    std::vector<std::size_t> to_plan;
    while (idx < order.size()) {
      if (serial_.db().routed(order[idx].id)) {
        ++idx;
        continue;
      }
      // Greedy batch: the longest run of currently-unrouted connections
      // from the front of the remaining order. Order matters — commits must
      // stay in the global sorted order. Without shards the run is bounded
      // by pairwise-disjoint zero-via boxes, a heuristic to raise the
      // install rate; with shards the window is contiguous but only the
      // box-disjoint subset is speculatively planned (plan_mask): the
      // plans of overlapping connections — bus runs, mostly — would claim
      // the same channels against the frozen board, conflict, and waste a
      // full search each, so those members defer to their ordered serial
      // turn unplanned. Either way the journal check below is what
      // guarantees serial equivalence.
      batch.clear();
      boxes.clear();
      plan_mask.clear();
      std::size_t scan = idx;
      while (scan < order.size() && batch.size() < max_batch) {
        const Connection& c = order[scan];
        if (serial_.db().routed(c.id)) {
          ++scan;
          continue;
        }
        Rect b = zero_via_box(spec, c.a, c.b, cfg_.radius);
        bool disjoint = true;
        for (const Rect& r : boxes) {
          if (r.overlaps(b)) {
            disjoint = false;
            break;
          }
        }
        if (!sharded && !disjoint) break;
        if (disjoint) boxes.push_back(b);
        plan_mask.push_back(disjoint ? 1 : 0);
        batch.push_back(scan);
        ++scan;
      }
      const std::size_t n = batch.size();
      ++batch_stats_.batches;
      to_plan.clear();
      for (std::size_t i = 0; i < n; ++i) {
        if (plan_mask[i]) to_plan.push_back(i);
      }
      batch_stats_.planned += static_cast<long>(to_plan.size());

      plans.assign(n, RoutePlan{});
      {
        // Feed the previous commit phase's mutation footprints to every
        // worker's reachability cache before the workers run again. The
        // journal has collected every rectangle since its last clear() —
        // nothing mutates the board between fan-outs except the commit
        // phase, so this broadcast is exhaustive and each worker's cache
        // stays synchronized with the stack's mutation sequence (any gap
        // would be caught by the cache's own sequence backstop anyway).
        for (auto& planner : planners) {
          planner->invalidate_search_cache(journal.touched);
        }
        // Workers only read the board; nothing mutates it until the pool
        // returns.
        ScopedTimer t(batch_stats_.sec_plan);
        pool.for_indices(to_plan.size(), [&](int worker, std::size_t i) {
          plans[to_plan[i]] = planners[static_cast<std::size_t>(worker)]->plan(
              order[batch[to_plan[i]]]);
        });
      }

      // Ordered commit. The journal collects every rectangle of metal
      // added or removed from here on (installs, rips, put-backs); a plan
      // is installed verbatim only if nothing so far touched its reads.
      ScopedTimer t(batch_stats_.sec_commit);
      journal.clear();
      std::size_t next_idx = batch.back() + 1;
      std::size_t i = 0;
      std::size_t no_admit = 0;  // positions to walk without re-admitting
      // Set when a put-back failure regressed some routed connection to
      // unrouted: a regressed connection whose position falls between two
      // batch members must be re-routed at ITS ordered turn, before the
      // later member. The serial walk would see it when scanning; the batch
      // must therefore check the position gap before each subsequent member
      // and abandon from the first regressed position found. (The legacy
      // non-sharded path abandons the whole batch on any failure instead —
      // equivalent, and cheap at its small batch sizes, but wasteful at
      // sharded widths: re-planning abandoned plans dominated the wall
      // time of rip-heavy giant boards.)
      bool regressed = false;
      while (i < n) {
        if (sharded && regressed && i > 0) {
          bool stop = false;
          for (std::size_t p = batch[i - 1] + 1; p < batch[i]; ++p) {
            if (!serial_.db().routed(order[p].id)) {
              next_idx = p;
              stop = true;
              break;
            }
          }
          if (stop) break;
        }
        if (sharded && !regressed && no_admit == 0) {
          // Fast path: admit the longest conflict-free prefix from here and
          // install it in channel-exclusive waves. Zero means the prefix
          // was not worth a wave — fall through to the ordered per-plan
          // walk, and don't re-run admission until past the positions this
          // attempt already classified (re-admitting at every step is
          // quadratic in the batch and was measured to dominate the commit
          // on rip-heavy giant boards).
          std::size_t skip = 0;
          std::size_t consumed = commit_wave_run(order, batch, plans, i, smap,
                                                 journal, pool, audit, &skip);
          if (consumed > 0) {
            i += consumed;
            continue;
          }
          no_admit = skip;
        }
        if (no_admit > 0) --no_admit;
        const Connection& c = order[batch[i]];
        const RoutePlan& plan = plans[i];
        bool dirty = !plan.found;
        if (!dirty) {
          for (const Rect& r : journal.touched) {
            if (plan.footprint.intersects(r)) {
              dirty = true;
              ++batch_stats_.conflicts;
              break;
            }
          }
        }
        bool handled = false;
        // Footprint evidence: declared vs. actual reads for every plan, and
        // — once installed below — journalled writes vs. the plan's own
        // geometry. `journal` observes every install rect via the chain, so
        // slicing it around try_install isolates this plan's writes.
        // Batch members that were never speculatively planned (plan_mask
        // off) leave no evidence — there was no planner run to audit.
        const std::size_t journal_mark = journal.touched.size();
        if (audit && plan_mask[i]) {
          PlanAuditRecord rec;
          rec.id = plan.id;
          rec.found = plan.found;
          rec.declared = plan.footprint;
          rec.reads = plan.reads;
          for (Point v : plan.vias) {
            rec.cover.push_back(stack_.grid_rect_of_via(v));
          }
          for (const RouteHop& hop : plan.hops) {
            for (const ChannelSpan& cs : hop.spans) {
              rec.cover.push_back(
                  stack_.grid_rect_of({hop.layer, cs.channel, cs.span}));
            }
          }
          foot_log_.records.push_back(std::move(rec));
        }
        if (!dirty) {
          // Journal through the serial router's feed: the rectangles reach
          // `journal` via the chain (set_journal above) for the conflict
          // checks, and the serial router's own reachability cache sees
          // them too, so a later serial redo searches against fresh state.
          RouteTransaction txn(stack_, serial_.db(), c.id,
                               &serial_.txn_counters_,
                               serial_.mutation_feed());
          if (txn.try_install(plan)) {
            handled = true;
            ++batch_stats_.installed;
            if (sharded) ++batch_stats_.direct_installs;
            if (audit) {
              PlanAuditRecord& rec = foot_log_.records.back();
              rec.installed = true;
              rec.writes.assign(journal.touched.begin() +
                                    static_cast<std::ptrdiff_t>(journal_mark),
                                journal.touched.end());
            }
            // The plan's search effort is what the serial router would
            // have spent at this position; a discarded plan's effort is
            // recounted by the serial redo instead.
            RouterStats& st = serial_.stats();
            st.lee_searches += plan.lee_searches;
            st.lee_expansions += plan.lee_expansions;
            st.lee_gap_nodes += plan.lee_gap_nodes;
            st.sec_zero_via += plan.sec_zero_via;
            st.sec_one_via += plan.sec_one_via;
            st.sec_lee += plan.sec_lee;
          }
          // An install miss is impossible while the footprint covers the
          // read set; the serial redo below keeps it correct regardless.
        }
        if (!handled) {
          ++batch_stats_.serial_reroutes;
          const long pb_failures = serial_.txn_counters().putback_failures;
          serial_.route_connection(c);
          serial_.put_back();
          if (serial_.txn_counters().putback_failures != pb_failures) {
            // A rip-up victim could not be put back: a connection at a
            // later position may have regressed to unrouted, and the
            // serial loop would re-examine every later position.
            if (sharded) {
              // Keep going, but gap-scan before each later member (above)
              // and stop at the first regressed position.
              regressed = true;
            } else {
              // Discard the rest of the batch, rescan from the next
              // position.
              next_idx = batch[i] + 1;
              break;
            }
          }
        }
        ++i;
      }
      idx = next_idx;
    }
  }

  serial_.set_journal(nullptr);
  serial_.finish();
  return serial_.stats().failed == 0;
}

std::size_t BatchRouter::commit_wave_run(
    const ConnectionList& order, const std::vector<std::size_t>& batch,
    const std::vector<RoutePlan>& plans, std::size_t start,
    const ShardMap& smap, MutationJournal& journal, ThreadPool& pool,
    bool audit, std::size_t* skip_hint) {
  // Admission: extend the prefix while each plan was found and its read
  // footprint is untouched by this commit's journal AND by the write covers
  // of everything already admitted. That is exactly the check the ordered
  // walk would run at the plan's turn — the journal at that turn is the
  // current journal plus the covers of the installs before it — so every
  // admitted plan is one the serial walk would install verbatim, and every
  // admitted plan's validation reads are provably untouched by the other
  // admitted installs: the installs commute.
  *skip_hint = 1;
  std::vector<AdmittedPlan> run;
  for (std::size_t j = start; j < batch.size(); ++j) {
    const RoutePlan& plan = plans[j];
    if (!plan.found) break;
    bool clean = true;
    for (const Rect& r : journal.touched) {
      if (plan.footprint.intersects(r)) {
        clean = false;
        break;
      }
    }
    for (std::size_t k = 0; clean && k < run.size(); ++k) {
      for (const Rect& r : run[k].cover) {
        if (plan.footprint.intersects(r)) {
          clean = false;
          break;
        }
      }
    }
    if (!clean) break;
    AdmittedPlan a;
    a.pos = j;
    // The cover is the exact rectangle set try_install journals: one via
    // rect per drill, one span rect per hop span, in that order.
    for (Point v : plan.vias) a.cover.push_back(stack_.grid_rect_of_via(v));
    for (const RouteHop& hop : plan.hops) {
      for (const ChannelSpan& cs : hop.spans) {
        a.cover.push_back(
            stack_.grid_rect_of({hop.layer, cs.channel, cs.span}));
      }
    }
    a.shard = a.cover.empty() ? ShardMap::kCross
                              : smap.shard_of(ShardMap::bbox_of(a.cover));
    run.push_back(std::move(a));
  }

  // Group by cell; cross-shard plans install serially after the waves.
  std::vector<std::vector<AdmittedPlan*>> groups(
      static_cast<std::size_t>(smap.count()));
  std::vector<AdmittedPlan*> residual;
  int distinct = 0;
  for (AdmittedPlan& a : run) {
    if (a.shard == ShardMap::kCross) {
      residual.push_back(&a);
    } else {
      auto& g = groups[static_cast<std::size_t>(a.shard)];
      if (g.empty()) ++distinct;
      g.push_back(&a);
    }
  }
  if (run.size() < kMinWaveRun || distinct < 2) {
    *skip_hint = run.size() + 1;
    return 0;
  }
  ++batch_stats_.admitted_runs;

  // The segment pool must not grow while install tasks hold references into
  // it: pre-create every slot the run can need, then switch the free list
  // to locked handout for the waves.
  std::size_t need = 0;
  for (const AdmittedPlan& a : run) {
    const RoutePlan& plan = plans[a.pos];
    need += plan.vias.size() * static_cast<std::size_t>(stack_.num_layers());
    for (const RouteHop& hop : plan.hops) need += hop.spans.size();
  }
  stack_.pool().reserve_free(need);
  stack_.pool().set_concurrent(true);
  {
    ScopedTimer t(batch_stats_.sec_wave);
    std::vector<int> wave_cells;
    std::vector<int> active;
    for (int w = 0; w < smap.num_waves(); ++w) {
      smap.wave_shards(w, &wave_cells);
      active.clear();
      for (int s : wave_cells) {
        if (!groups[static_cast<std::size_t>(s)].empty()) active.push_back(s);
      }
      if (active.empty()) continue;
      ++batch_stats_.wave_rounds;
      // Cells of one wave share no row or column band, hence no Channel,
      // no ViaMap cell and no RouteDB record; the pool hands out slots
      // under its lock. Each task writes only its own AdmittedPlans and
      // its own ShardStats element.
      pool.for_indices(active.size(), [&](int, std::size_t g) {
        const int s = active[g];
        ScopedTimer st(
            batch_stats_.per_shard[static_cast<std::size_t>(s)].sec);
        for (AdmittedPlan* a : groups[static_cast<std::size_t>(s)]) {
          RouteTransaction txn(stack_, serial_.db(), order[batch[a->pos]].id,
                               &a->counters, &a->local);
          a->installed = txn.try_install(plans[a->pos]);
        }
      });
    }
  }
  stack_.pool().set_concurrent(false);
  for (AdmittedPlan* a : residual) {
    RouteTransaction txn(stack_, serial_.db(), order[batch[a->pos]].id,
                         &a->counters, &a->local);
    a->installed = txn.try_install(plans[a->pos]);
  }

  // An install miss is impossible — admission re-proved each plan's reads
  // clean, and the footprint covers the validation reads (FOOT-* checks) —
  // but stay correct anyway: undo every install at or after the earliest
  // miss, keep the still-serial-equivalent prefix before it, and let the
  // ordered walk reprocess the rest. The rips perturb only wall times and
  // conflict counts, never geometry; repair_rollbacks records that this
  // never happens.
  std::size_t keep = run.size();
  for (std::size_t k = 0; k < run.size(); ++k) {
    if (!run[k].installed) {
      keep = k;
      break;
    }
  }
  for (std::size_t k = keep; k < run.size(); ++k) {
    if (!run[k].installed) continue;
    ++batch_stats_.repair_rollbacks;
    RouteTransaction::rip_out(stack_, serial_.db(), order[batch[run[k].pos]].id,
                              &serial_.txn_counters_, serial_.mutation_feed());
  }

  // Replay, in batch order, everything the ordered walk would have done
  // per install: journal the writes through the serial router's feed (the
  // reachability cache and the conflict journal both see them), merge the
  // transaction counters and the plan's search effort, and emit the audit
  // record. After this the board, the journal and every statistic are
  // exactly as if the ordered walk had installed the prefix itself.
  for (std::size_t k = 0; k < keep; ++k) {
    AdmittedPlan& a = run[k];
    const RoutePlan& plan = plans[a.pos];
    for (const Rect& r : a.local.touched) serial_.mutation_feed()->log(r);
    merge_counters(serial_.txn_counters_, a.counters);
    ++batch_stats_.installed;
    if (a.shard == ShardMap::kCross) {
      ++batch_stats_.residual_installs;
    } else {
      ++batch_stats_.wave_installs;
      ++batch_stats_.per_shard[static_cast<std::size_t>(a.shard)].installs;
    }
    RouterStats& st = serial_.stats();
    st.lee_searches += plan.lee_searches;
    st.lee_expansions += plan.lee_expansions;
    st.lee_gap_nodes += plan.lee_gap_nodes;
    st.sec_zero_via += plan.sec_zero_via;
    st.sec_one_via += plan.sec_one_via;
    st.sec_lee += plan.sec_lee;
    if (audit) {
      PlanAuditRecord rec;
      rec.id = plan.id;
      rec.found = plan.found;
      rec.declared = plan.footprint;
      rec.reads = plan.reads;
      rec.cover = std::move(a.cover);
      rec.installed = true;
      rec.writes = std::move(a.local.touched);
      foot_log_.records.push_back(std::move(rec));
    }
  }
  return keep;
}

}  // namespace grr
