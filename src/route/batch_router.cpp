#include "route/batch_router.hpp"

#include <algorithm>
#include <memory>

#include "layer/access_log.hpp"
#include "route/boxes.hpp"
#include "route/planner.hpp"
#include "route/thread_pool.hpp"
#include "timing/scoped_timer.hpp"

namespace grr {

BatchRouter::BatchRouter(LayerStack& stack, RouterConfig cfg)
    : stack_(stack), cfg_(cfg), serial_(stack, cfg) {}

bool BatchRouter::access_audit_enabled() const {
  return cfg_.access_audit || access_audit_env();
}

bool BatchRouter::route_all(const ConnectionList& conns) {
  batch_stats_ = BatchStats{};
  foot_log_.clear();
  foot_log_.extent = stack_.spec().extent();
  // The two-via ablation threads uncommitted state through nested helpers;
  // it exists to reproduce the paper's rejection of it, so it stays serial.
  if (cfg_.threads <= 1 || cfg_.enable_two_via) {
    return serial_.route_all(conns);
  }
  return route_parallel(conns);
}

bool BatchRouter::route_parallel(const ConnectionList& conns) {
  const GridSpec& spec = stack_.spec();
  const bool audit = access_audit_enabled();
  ThreadPool pool(cfg_.threads);
  std::vector<std::unique_ptr<ConnectionPlanner>> planners;
  planners.reserve(static_cast<std::size_t>(pool.size()));
  RouterConfig worker_cfg = cfg_;
  worker_cfg.access_audit = audit;  // env opt-in reaches the workers too
  for (int i = 0; i < pool.size(); ++i) {
    planners.push_back(
        std::make_unique<ConnectionPlanner>(stack_, worker_cfg));
  }

  serial_.prepare(conns);
  MutationJournal journal;
  serial_.set_journal(&journal);
  const ConnectionList& order = serial_.connections();
  const std::size_t max_batch = std::max<std::size_t>(
      static_cast<std::size_t>(cfg_.threads) * 8, 32);

  // Same outer loop and progress rule as the serial route_all (Sec 8.4).
  std::size_t prev_unrouted = order.size() + 1;
  for (int pass = 0; pass < cfg_.max_passes; ++pass) {
    const std::size_t unrouted = serial_.count_unrouted();
    if (unrouted == 0 || unrouted >= prev_unrouted) break;
    prev_unrouted = unrouted;
    ++serial_.stats().passes;

    // The work list is dynamic, exactly like the serial pass loop's
    // routed-status check at each position: a rip-up victim whose put-back
    // fails regresses to unrouted and must be re-routed later in the SAME
    // pass when its position is reached.
    std::size_t idx = 0;
    std::vector<std::size_t> batch;  // positions in `order`
    std::vector<RoutePlan> plans;
    std::vector<Rect> boxes;
    while (idx < order.size()) {
      if (serial_.db().routed(order[idx].id)) {
        ++idx;
        continue;
      }
      // Greedy batch: the longest run of currently-unrouted connections,
      // from the front of the remaining order, whose zero-via boxes are
      // pairwise disjoint. Order matters — commits must stay in the global
      // sorted order — and disjointness is only a heuristic to raise the
      // install rate: the journal check below is what guarantees serial
      // equivalence.
      batch.clear();
      boxes.clear();
      std::size_t scan = idx;
      while (scan < order.size() && batch.size() < max_batch) {
        const Connection& c = order[scan];
        if (serial_.db().routed(c.id)) {
          ++scan;
          continue;
        }
        Rect b = zero_via_box(spec, c.a, c.b, cfg_.radius);
        bool disjoint = true;
        for (const Rect& r : boxes) {
          if (r.overlaps(b)) {
            disjoint = false;
            break;
          }
        }
        if (!disjoint) break;
        batch.push_back(scan);
        boxes.push_back(b);
        ++scan;
      }
      const std::size_t n = batch.size();
      ++batch_stats_.batches;
      batch_stats_.planned += static_cast<long>(n);

      plans.assign(n, RoutePlan{});
      {
        // Feed the previous commit phase's mutation footprints to every
        // worker's reachability cache before the workers run again. The
        // journal has collected every rectangle since its last clear() —
        // nothing mutates the board between fan-outs except the commit
        // phase, so this broadcast is exhaustive and each worker's cache
        // stays synchronized with the stack's mutation sequence (any gap
        // would be caught by the cache's own sequence backstop anyway).
        for (auto& planner : planners) {
          planner->invalidate_search_cache(journal.touched);
        }
        // Workers only read the board; nothing mutates it until the pool
        // returns.
        ScopedTimer t(batch_stats_.sec_plan);
        pool.for_indices(n, [&](int worker, std::size_t i) {
          plans[i] = planners[static_cast<std::size_t>(worker)]->plan(
              order[batch[i]]);
        });
      }

      // Ordered commit. The journal collects every rectangle of metal
      // added or removed from here on (installs, rips, put-backs); a plan
      // is installed verbatim only if nothing so far touched its reads.
      ScopedTimer t(batch_stats_.sec_commit);
      journal.clear();
      std::size_t next_idx = batch.back() + 1;
      for (std::size_t i = 0; i < n; ++i) {
        const Connection& c = order[batch[i]];
        const RoutePlan& plan = plans[i];
        bool dirty = !plan.found;
        if (!dirty) {
          for (const Rect& r : journal.touched) {
            if (plan.footprint.intersects(r)) {
              dirty = true;
              ++batch_stats_.conflicts;
              break;
            }
          }
        }
        bool handled = false;
        // Footprint evidence: declared vs. actual reads for every plan, and
        // — once installed below — journalled writes vs. the plan's own
        // geometry. `journal` observes every install rect via the chain, so
        // slicing it around try_install isolates this plan's writes.
        const std::size_t journal_mark = journal.touched.size();
        if (audit) {
          PlanAuditRecord rec;
          rec.id = plan.id;
          rec.found = plan.found;
          rec.declared = plan.footprint;
          rec.reads = plan.reads;
          for (Point v : plan.vias) {
            rec.cover.push_back(stack_.grid_rect_of_via(v));
          }
          for (const RouteHop& hop : plan.hops) {
            for (const ChannelSpan& cs : hop.spans) {
              rec.cover.push_back(
                  stack_.grid_rect_of({hop.layer, cs.channel, cs.span}));
            }
          }
          foot_log_.records.push_back(std::move(rec));
        }
        if (!dirty) {
          // Journal through the serial router's feed: the rectangles reach
          // `journal` via the chain (set_journal above) for the conflict
          // checks, and the serial router's own reachability cache sees
          // them too, so a later serial redo searches against fresh state.
          RouteTransaction txn(stack_, serial_.db(), c.id,
                               &serial_.txn_counters_,
                               serial_.mutation_feed());
          if (txn.try_install(plan)) {
            handled = true;
            ++batch_stats_.installed;
            if (audit) {
              PlanAuditRecord& rec = foot_log_.records.back();
              rec.installed = true;
              rec.writes.assign(journal.touched.begin() +
                                    static_cast<std::ptrdiff_t>(journal_mark),
                                journal.touched.end());
            }
            // The plan's search effort is what the serial router would
            // have spent at this position; a discarded plan's effort is
            // recounted by the serial redo instead.
            RouterStats& st = serial_.stats();
            st.lee_searches += plan.lee_searches;
            st.lee_expansions += plan.lee_expansions;
            st.lee_gap_nodes += plan.lee_gap_nodes;
            st.sec_zero_via += plan.sec_zero_via;
            st.sec_one_via += plan.sec_one_via;
            st.sec_lee += plan.sec_lee;
          }
          // An install miss is impossible while the footprint covers the
          // read set; the serial redo below keeps it correct regardless.
        }
        if (!handled) {
          ++batch_stats_.serial_reroutes;
          const long pb_failures = serial_.txn_counters().putback_failures;
          serial_.route_connection(c);
          serial_.put_back();
          if (serial_.txn_counters().putback_failures != pb_failures) {
            // A rip-up victim could not be put back: a connection at a
            // later position may have regressed to unrouted, and the
            // serial loop would re-examine every later position. Discard
            // the rest of the batch and rescan from the next position.
            next_idx = batch[i] + 1;
            break;
          }
        }
      }
      idx = next_idx;
    }
  }

  serial_.set_journal(nullptr);
  serial_.finish();
  return serial_.stats().failed == 0;
}

}  // namespace grr
