// The parallel batch routing engine (search/commit split).
//
// Each pass's unrouted connections are processed, in the serial sorted
// order, as contiguous batches of bounding-box-disjoint connections.
// Workers plan every connection of a batch concurrently against the frozen
// board (ConnectionPlanner, read-only); the main thread then commits the
// plans strictly in order, installing a plan verbatim only if no earlier
// commit or rip of the batch touched its read footprint (MutationJournal).
// A conflicted, failed or rip-needing connection is re-routed serially
// inline at its ordered turn, so the board evolves exactly as a one-thread
// run: the routed set, every route's geometry, and all discrete statistics
// are identical for any thread count. threads <= 1 delegates outright to
// the untouched serial Router — the paper-faithful reference.
#pragma once

#include "route/footprint_audit.hpp"
#include "route/router.hpp"

namespace grr {

struct BatchStats {
  long batches = 0;
  long planned = 0;           // plans computed by workers
  long installed = 0;         // plans installed verbatim
  long conflicts = 0;         // plans discarded by the footprint check
  long serial_reroutes = 0;   // connections re-routed inline
  double sec_plan = 0;        // wall time in parallel planning
  double sec_commit = 0;      // wall time in ordered commit + reroutes
};

class BatchRouter {
 public:
  explicit BatchRouter(LayerStack& stack, RouterConfig cfg = {});

  /// Route a whole problem. Same contract as Router::route_all.
  bool route_all(const ConnectionList& conns);

  Router& router() { return serial_; }
  const Router& router() const { return serial_; }
  RouteDB& db() { return serial_.db(); }
  const RouteDB& db() const { return serial_.db(); }
  const RouterStats& stats() const { return serial_.stats(); }
  const BatchStats& batch_stats() const { return batch_stats_; }

  /// True when this run collects footprint evidence: the config flag or the
  /// GRR_ACCESS_AUDIT environment opt-in.
  bool access_audit_enabled() const;
  /// Declared-vs-actual footprint evidence from the last route_all run with
  /// auditing on (empty otherwise). Feed to check_footprints / CheckContext.
  const FootprintAuditLog& footprint_log() const { return foot_log_; }

 private:
  bool route_parallel(const ConnectionList& conns);

  LayerStack& stack_;
  RouterConfig cfg_;
  Router serial_;
  BatchStats batch_stats_;
  FootprintAuditLog foot_log_;
};

}  // namespace grr
