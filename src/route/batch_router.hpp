// The parallel batch routing engine (search/commit split).
//
// Each pass's unrouted connections are processed, in the serial sorted
// order, as contiguous batches of bounding-box-disjoint connections.
// Workers plan every connection of a batch concurrently against the frozen
// board (ConnectionPlanner, read-only); the main thread then commits the
// plans strictly in order, installing a plan verbatim only if no earlier
// commit or rip of the batch touched its read footprint (MutationJournal).
// A conflicted, failed or rip-needing connection is re-routed serially
// inline at its ordered turn, so the board evolves exactly as a one-thread
// run: the routed set, every route's geometry, and all discrete statistics
// are identical for any thread count. threads <= 1 delegates outright to
// the untouched serial Router — the paper-faithful reference.
//
// With RouterConfig::shards >= 2 (and threads >= 2) the commit phase is
// region-parallel as well: the commit thread admits the longest prefix of
// plans whose read footprints are pairwise disjoint from the journal and
// from each other's write covers, then installs the admitted plans
// concurrently, grouped by ShardMap cell in channel-exclusive waves (cells
// of one wave share no row or column band, hence no Channel object).
// Admission proves every admitted plan's reads untouched by every other
// admitted plan's writes, so the installs commute: per-plan validation
// outcomes and the final board state are independent of install order, and
// the post-wave replay (journals, counters, statistics, audit records —
// merged in batch order) restores the exact serial accounting. Cross-shard
// plans install serially after the waves; conflicted or unfound plans end
// the prefix and take the ordered serial path above. The bit-identical
// contract therefore holds at every shard and thread count.
#pragma once

#include <vector>

#include "route/footprint_audit.hpp"
#include "route/router.hpp"

namespace grr {

/// Per-ShardMap-cell activity of the region-parallel commit phase.
struct ShardStats {
  long installs = 0;  // plans installed under this cell's waves
  double sec = 0;     // wall time this cell's install tasks ran
};

struct BatchStats {
  long batches = 0;
  long planned = 0;           // plans computed by workers
  long installed = 0;         // plans installed verbatim
  long conflicts = 0;         // plans discarded by the footprint check
  long serial_reroutes = 0;   // connections re-routed inline
  double sec_plan = 0;        // wall time in parallel planning
  double sec_commit = 0;      // wall time in ordered commit + reroutes

  /// Region-parallel commit (shards >= 2 and threads >= 2; zero otherwise).
  int shard_rows = 0;          // ShardMap grid actually used
  int shard_cols = 0;
  long admitted_runs = 0;      // conflict-free prefixes installed in waves
  long wave_rounds = 0;        // wave barriers executed (with >= 1 cell)
  long wave_installs = 0;      // installs performed inside waves
  long residual_installs = 0;  // admitted cross-shard plans, serial install
  long direct_installs = 0;    // installs via the per-plan ordered path
  /// Wave installs undone because a later admitted install missed. The
  /// footprint contract (FOOT-* checks) makes a miss impossible — the
  /// repair path exists for defence in depth and this counter proves it
  /// never ran (SuiteDeterminism asserts 0).
  long repair_rollbacks = 0;
  double sec_wave = 0;  // wall time inside install waves
  std::vector<ShardStats> per_shard;  // indexed by ShardMap cell
};

class BatchRouter {
 public:
  explicit BatchRouter(LayerStack& stack, RouterConfig cfg = {});

  /// Route a whole problem. Same contract as Router::route_all.
  bool route_all(const ConnectionList& conns);

  Router& router() { return serial_; }
  const Router& router() const { return serial_; }
  RouteDB& db() { return serial_.db(); }
  const RouteDB& db() const { return serial_.db(); }
  const RouterStats& stats() const { return serial_.stats(); }
  const BatchStats& batch_stats() const { return batch_stats_; }

  /// True when this run collects footprint evidence: the config flag or the
  /// GRR_ACCESS_AUDIT environment opt-in.
  bool access_audit_enabled() const;
  /// Declared-vs-actual footprint evidence from the last route_all run with
  /// auditing on (empty otherwise). Feed to check_footprints / CheckContext.
  const FootprintAuditLog& footprint_log() const { return foot_log_; }

 private:
  bool route_parallel(const ConnectionList& conns);
  /// Sharded commit step: admit the longest conflict-free prefix of plans
  /// starting at batch position `start`, install it in channel-exclusive
  /// waves, and replay the per-install journals/counters in batch order.
  /// Returns the number of batch positions consumed; 0 means the prefix
  /// was too small to be worth a wave (nothing was installed) and the
  /// caller takes the ordered per-plan path for position `start`. In that
  /// case `*skip_hint` is the admitted-prefix length plus one: that many
  /// upcoming positions need no new admission attempt (the prefix was just
  /// proven conflict-free — each will install on the ordered path — and
  /// the position after it is the barrier that ended the prefix). Purely
  /// a performance hint; the ordered path re-checks everything.
  std::size_t commit_wave_run(const ConnectionList& order,
                              const std::vector<std::size_t>& batch,
                              const std::vector<RoutePlan>& plans,
                              std::size_t start, const class ShardMap& smap,
                              MutationJournal& journal, class ThreadPool& pool,
                              bool audit, std::size_t* skip_hint);

  LayerStack& stack_;
  RouterConfig cfg_;
  Router serial_;
  BatchStats batch_stats_;
  FootprintAuditLog foot_log_;
};

}  // namespace grr
