// Search boxes derived from the radius control parameter (paper Sec 8.1,
// Figs 9 and 11). Radius is measured in via-grid units; boxes are returned
// in routing-grid coordinates, clamped to the board.
#pragma once

#include "grid/grid_spec.hpp"

namespace grr {

/// Box for a direct (zero-via) connection attempt between a and b: their
/// bounding rectangle inflated by radius via pitches on all sides (Fig 9's
/// strip of accessible vias).
inline Rect zero_via_box(const GridSpec& spec, Point a_via, Point b_via,
                         int radius) {
  Rect r = Rect::bounding(spec.grid_of_via(a_via), spec.grid_of_via(b_via))
               .inflated(radius * spec.period());
  return r.intersect(spec.extent());
}

/// Box for neighbor enumeration from a wavefront point on one layer: a strip
/// radius via pitches wide in the orthogonal direction, running the full
/// length of the board in the layer's direction (one arm of Fig 11's cross).
inline Rect strip_box(const GridSpec& spec, Orientation orient,
                      Point center_via, int radius) {
  Point g = spec.grid_of_via(center_via);
  Coord rg = radius * spec.period();
  Rect r = spec.extent();
  if (orient == Orientation::kHorizontal) {
    r.y = Interval{g.y - rg, g.y + rg}.intersect(r.y);
  } else {
    r.x = Interval{g.x - rg, g.x + rg}.intersect(r.x);
  }
  return r;
}

/// Box covering the strips of both hop end points (used when re-tracing a
/// Lee path: the neighbor relation was discovered from one end's strip, so
/// the union certainly contains a path).
inline Rect hull_strip_box(const GridSpec& spec, Orientation orient,
                           Point u_via, Point w_via, int radius) {
  Point gu = spec.grid_of_via(u_via);
  Point gw = spec.grid_of_via(w_via);
  Coord rg = radius * spec.period();
  Rect r = spec.extent();
  if (orient == Orientation::kHorizontal) {
    r.y = Interval{std::min(gu.y, gw.y) - rg, std::max(gu.y, gw.y) + rg}
              .intersect(r.y);
  } else {
    r.x = Interval{std::min(gu.x, gw.x) - rg, std::max(gu.x, gw.x) + rg}
              .intersect(r.x);
  }
  return r;
}

}  // namespace grr
