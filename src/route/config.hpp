// Router control parameters (paper Secs 8.1-8.4) and ablation switches for
// the experiments of Secs 6, 8.2 and 12.
#pragma once

#include <cstddef>
#include <cstdint>

#include "layer/free_space.hpp"

namespace grr {

/// Mod 3 cost functions (Sec 8.2). kDistTimesHops is the one grr shipped
/// with: each via used in a path must bring progress towards the target.
enum class CostFn : std::uint8_t {
  kUnitHops,       // cost(n) = cost(p) + 1: original Lee, minimizes vias
  kDistance,       // cost(n) = distance(n, target): greedy, via-happy
  kDistTimesHops,  // cost(n) = distance(n, target) * hops(n, source)
};

struct RouterConfig {
  /// Orthogonal freedom in via-grid units (Sec 8.1). Typical values are 1
  /// or 2; larger values reach more vias but block more channels and are
  /// counterproductive (bench_radius reproduces this).
  int radius = 1;
  CostFn cost_fn = CostFn::kDistTimesHops;

  /// Budgets.
  std::size_t max_lee_expansions = 100000;
  std::size_t max_trace_nodes = kDefaultMaxFreeNodes;
  int max_rip_rounds = 25;  // per-connection rip-up rounds before giving up
  int max_passes = 50;      // outer passes (the progress rule usually stops
                            // far earlier)
  /// Half-size of the Obstructions box around a rip-up point, in via units.
  int rip_box_vias = 2;

  /// Strategy/ablation switches.
  /// Sec 6 ordering: false routes connections in the order given
  /// (bench_sorting measures what that costs).
  bool sort_connections = true;
  bool enable_zero_via = true;
  bool enable_one_via = true;
  /// The rejected two-via divide-and-conquer extension (Sec 8.1): "there
  /// are usually too many possibilities to examine exhaustively... a
  /// pre-determined order without concern for local congestion". Off by
  /// default; bench_two_via reproduces why.
  bool enable_two_via = false;
  /// Candidate budget per connection for the two-via strategy.
  int two_via_max_candidates = 2000;
  bool enable_lee = true;
  bool enable_ripup = true;
  /// Mod 2: spread wavefronts from both ends (false = single wavefront).
  bool bidirectional = true;
  /// Goal-oriented (A*) wavefront ordering: fold an admissible lower bound
  /// on the remaining hops into each entry's priority (see lee.cpp). False
  /// (the default) keeps the seed's Dijkstra-like expansion order bit for
  /// bit — the reference the equivalence test compares against. True cuts
  /// expansions on congested boards (~15% on kdj11-2L) but, because the
  /// default cost function is a guidance heuristic rather than a path
  /// metric, it changes which routes are found first and can shift the
  /// outcome by a few connections on over-capacity boards (bench_lee
  /// records the tradeoff); it is an opt-in, not the default.
  bool lee_astar = false;
  /// Journal-invalidated reachability cache: replay previously walked
  /// radius strips instead of re-enumerating them. Routed geometry and all
  /// discrete search statistics except gap_nodes are bit-identical on or
  /// off (SuiteDeterminism). Off (the default) additionally dedups gap
  /// walks across the expansions of one search — the faster mode when the
  /// board mutates between searches (serial routing); on pays off when many
  /// searches run against a frozen board (speculative planning fan-outs,
  /// improvement passes).
  bool lee_cache = false;
  /// Total gap budget of the per-worker reachability cache; exceeding it
  /// flushes the cache (deterministically) rather than evicting piecemeal.
  std::size_t lee_cache_max_gaps = 1u << 22;
  /// Steer traces away from via rows/columns so drill sites stay available
  /// ("running over a via site... is avoided where possible in practice",
  /// Sec 4). bench_via_avoidance measures what this buys.
  bool via_avoidance = true;

  /// Worker threads for the speculative BatchRouter. 1 runs the untouched
  /// serial engine; any value produces the identical routed set, geometry
  /// and discrete statistics (only wall times differ).
  int threads = 1;

  /// Spatial shards for the BatchRouter's region-parallel commit phase
  /// (ShardMap). 0 or 1 keeps the serial ordered commit of PR 2; with
  /// shards >= 2 and threads >= 2 the commit thread admits the longest
  /// prefix of conflict-free plans per batch and installs the admitted
  /// plans concurrently, grouped by shard cell, in channel-exclusive
  /// waves. Cross-shard plans and conflicted plans fall back to the
  /// ordered serial path. Outcomes are bit-identical to serial at any
  /// shard/thread count (SuiteDeterminism holds it to that).
  int shards = 0;

  /// Lee-expansion budget for speculative planning under the sharded
  /// commit; 0 means the full max_lee_expansions. Congested boards make
  /// frozen-board Lee searches expensive and mostly doomed (the serial
  /// engine would rip up at that turn instead); capping them changes no
  /// outcome — a capped-out search returns not-found and the connection
  /// takes its ordered serial turn, while a search that completes under
  /// the cap is expansion-for-expansion identical to the uncapped one —
  /// but it bounds the speculative waste. Ignored when shards < 2.
  std::size_t shard_plan_lee_budget = 10000;

  /// Footprint soundness audit: attach a shadow AccessLog to every planner
  /// so each plan carries its *actual* read regions alongside the declared
  /// ReadFootprint, and have the BatchRouter collect a FootprintAuditLog
  /// (declared vs. actual reads, install cover vs. journalled writes) for
  /// the FOOT-* checkers. Routing outcomes are bit-identical on or off; the
  /// GRR_ACCESS_AUDIT environment variable forces it on (see access_log).
  bool access_audit = false;
};

}  // namespace grr
