#include "route/connection.hpp"

// Header-only; this file anchors the translation unit for the library.
