// The router's unit of work: one pin-to-pin connection (paper Sec 3).
//
// Stringing reduces every net to a list of pin-to-pin connections that can
// be considered independently and in any order; any realization that makes
// all of them connects the nets correctly.
#pragma once

#include <vector>

#include "board/netlist.hpp"
#include "geom/geom.hpp"
#include "layer/segment_pool.hpp"

namespace grr {

struct Connection {
  ConnId id = kNoConn;
  Point a;  // via-grid coordinates of the two end pins
  Point b;
  NetId net = -1;
  SignalClass klass = SignalClass::kECL;
  /// Target propagation delay for length tuning (Sec 10.1); 0 = untuned.
  double target_delay_ns = 0.0;

  /// Via-grid deltas.
  Coord dx() const { return std::abs(a.x - b.x); }
  Coord dy() const { return std::abs(a.y - b.y); }
};

using ConnectionList = std::vector<Connection>;

}  // namespace grr
