// Footprint audit evidence (search/commit split, soundness analysis).
//
// With RouterConfig::access_audit on, the BatchRouter records one
// PlanAuditRecord per speculative plan: the declared ReadFootprint next to
// the regions the shadow AccessLog saw the search actually read, and — for
// plans installed verbatim — the mutation journal's write rects next to the
// plan's own geometry. The FOOT-* checkers (check/footprint_check) consume
// this log; keeping the structs here lets the route layer produce evidence
// without depending on the check layer.
#pragma once

#include <vector>

#include "route/plan.hpp"

namespace grr {

/// Declared-vs-actual evidence for one speculative plan.
struct PlanAuditRecord {
  ConnId id = kNoConn;
  bool found = false;      // plan.found (failed plans declare everything)
  bool installed = false;  // installed verbatim by the commit thread
  ReadFootprint declared;
  std::vector<Rect> reads;   // actual read regions (shadow AccessLog)
  std::vector<Rect> writes;  // journal rects logged during the install
  std::vector<Rect> cover;   // install cover: the plan's own geometry
};

/// Everything the batch router saw while routing with auditing on.
struct FootprintAuditLog {
  Rect extent;  // board grid extent (band -> rect conversion)
  std::vector<PlanAuditRecord> records;

  void clear() { records.clear(); }
};

}  // namespace grr
