#include "route/improve.hpp"

#include <algorithm>

namespace grr {
namespace {

struct Cost {
  std::size_t vias;
  long mils;

  friend bool operator<(const Cost& a, const Cost& b) {
    return std::tie(a.vias, a.mils) < std::tie(b.vias, b.mils);
  }
};

Cost cost_of(Router& router, ConnId id) {
  const RouteDB& db = router.db();
  return {db.rec(id).geom.vias.size(),
          db.length_mils(router.stack().spec(), router.stack(), id)};
}

}  // namespace

ImproveStats improve_routes(Router& router, const ConnectionList& conns,
                            int rounds) {
  ImproveStats stats;
  RouteDB& db = router.db();
  LayerStack& stack = router.stack();

  // Totals before.
  for (const Connection& c : conns) {
    if (!db.routed(c.id)) continue;
    Cost cost = cost_of(router, c.id);
    stats.vias_before += static_cast<long>(cost.vias);
    stats.mils_before += cost.mils;
  }

  // The improvement pass must not cannibalize other connections.
  RouterConfig cfg = router.config();
  cfg.enable_ripup = false;

  for (int round = 0; round < rounds; ++round) {
    // Worst first: most vias, then longest.
    std::vector<const Connection*> order;
    for (const Connection& c : conns) {
      if (db.routed(c.id) && !db.rec(c.id).geom.hops.empty()) {
        order.push_back(&c);
      }
    }
    std::sort(order.begin(), order.end(),
              [&](const Connection* x, const Connection* y) {
                return cost_of(router, y->id) < cost_of(router, x->id);
              });

    bool any = false;
    for (const Connection* c : order) {
      ++stats.examined;
      const Cost before = cost_of(router, c->id);
      const RouteGeom snapshot = db.rec(c->id).geom;
      const RouteStrategy snap_strategy = db.rec(c->id).strategy;

      router.unroute(c->id);
      bool rerouted;
      {
        // Route without rip-up under a temporary config.
        RouterConfig saved = router.config();
        router.set_config(cfg);
        rerouted = router.route_connection(*c);
        router.set_config(saved);
      }
      if (rerouted && cost_of(router, c->id) < before) {
        ++stats.improved;
        any = true;
        continue;
      }
      // Not better (or failed): restore the original realization.
      if (rerouted) router.unroute(c->id);
      RouteTransaction::adopt_geometry(db, c->id, snapshot, snap_strategy);
      bool restored = RouteTransaction::putback(stack, db, c->id, nullptr,
                                                router.mutation_feed());
      (void)restored;
    }
    if (!any) break;
  }

  for (const Connection& c : conns) {
    if (!db.routed(c.id)) continue;
    Cost cost = cost_of(router, c.id);
    stats.vias_after += static_cast<long>(cost.vias);
    stats.mils_after += cost.mils;
  }
  return stats;
}

}  // namespace grr
