// Post-route cleanup: re-route the ugliest connections and keep the better
// realization.
//
// The paper's tuning methodology was "careful analysis of the router output
// to find inefficient routing patterns" (Sec 12). Early connections are
// routed on an empty board and later rip-ups can leave detours behind;
// once everything is in place, many of them can be re-done better. Each
// pass unroutes one connection at a time, re-routes it against the now
// final board, and keeps whichever realization has fewer vias (then less
// length). Monotone by construction: a worse re-route is rolled back.
#pragma once

#include "route/router.hpp"

namespace grr {

struct ImproveStats {
  int examined = 0;
  int improved = 0;
  long vias_before = 0;
  long vias_after = 0;
  long mils_before = 0;
  long mils_after = 0;
};

/// Run `rounds` improvement passes over the routed connections of `conns`.
/// Connections are processed worst-first (most vias, then longest).
ImproveStats improve_routes(Router& router, const ConnectionList& conns,
                            int rounds = 1);

}  // namespace grr
