#include "route/lee.hpp"

#include <algorithm>

#include "route/boxes.hpp"

namespace grr {
namespace {

// Wavefront priority. With astar=false this is the seed's cost function
// verbatim; with astar=true the hop count is replaced by an admissible
// lower bound on the *total* hops of any completion through this via
// (hops so far + min_hops_lb, see below):
//
//   kUnitHops       g = hops               f = hops + h
//   kDistance       already a pure estimate of remaining work; unchanged
//   kDistTimesHops  d * hops               f = d * (hops + h)
//
// For kUnitHops the claim is the classical A* one: h never overestimates
// the remaining hops, so f never overestimates the final hop count of any
// path through the entry, and the first time the target side is reached it
// is reached with the minimum hop count — the same count Dijkstra order
// finds, with far fewer expansions. For kDistance and kDistTimesHops the
// seed's cost is a guidance heuristic, not an additive path cost, so there
// is no optimality to preserve; folding the same lower bound into the
// product keeps the ordering goal-directed in the currency the seed used
// (an entry whose every completion needs k more hops is priced as if it
// already had them).
std::int64_t priority_of(CostFn fn, Coord dist_to_target, int hops,
                         int min_remaining) {
  switch (fn) {
    case CostFn::kUnitHops:
      return hops + min_remaining;
    case CostFn::kDistance:
      return dist_to_target;
    case CostFn::kDistTimesHops:
      return static_cast<std::int64_t>(dist_to_target) *
             (hops + min_remaining);
  }
  return 0;
}

}  // namespace

LeeSearch::LeeSearch(const LayerStack& stack) : stack_(stack) {
  const std::size_t n = static_cast<std::size_t>(stack.spec().nx_vias()) *
                        stack.spec().ny_vias();
  marks_[0].resize(n);
  marks_[1].resize(n);
  seen_.resize(2 * static_cast<std::size_t>(stack.num_layers()));
  for (int i = 0; i < stack.num_layers(); ++i) {
    if (stack.layer(static_cast<LayerId>(i)).orientation() ==
        Orientation::kHorizontal) {
      has_h_ = true;
    } else {
      has_v_ = true;
    }
  }
}

std::size_t LeeSearch::via_index(Point v) const {
  return static_cast<std::size_t>(v.y) * stack_.spec().nx_vias() + v.x;
}

bool LeeSearch::marked(int side, Point v) const {
  return marks_[side][via_index(v)].epoch == epoch_;
}

const LeeSearch::Mark& LeeSearch::mark_of(int side, Point v) const {
  return marks_[side][via_index(v)];
}

void LeeSearch::set_mark(int side, Point v, Point parent, LayerId layer,
                         std::uint16_t hops) {
  Mark& m = marks_[side][via_index(v)];
  // Preserve popped_epoch: it is compared against epoch_, and a stale value
  // from a previous search can never equal the current epoch.
  m.epoch = epoch_;
  m.parent = parent;
  m.layer = layer;
  m.hops = hops;
}

// Admissible lower bound on the hops remaining from via v to via t, implied
// by the layer orientations. A hop (Mod 1) runs a one-layer trace inside the
// expansion point's radius strip: on a horizontal layer the strip spans the
// full board in x but only `radius` via pitches in y, so a single hop moves
// x freely while |Δy| <= radius — and symmetrically for vertical layers.
// Hence, for any realizable via sequence from v to t:
//
//   * both orientations present: one hop suffices in principle only if the
//     displacement fits a single strip — dx == 0 or dy == 0 (pick the layer
//     running along the move), or min(dx, dy) <= radius (the short axis is
//     the strip's across direction). Otherwise no single hop reaches t and
//     at least 2 are needed (2 is also attainable in free space: an H hop
//     to (t.x, y') with |y'-v.y| <= radius, then a V hop down column t.x,
//     so the bound cannot be raised without inspecting metal).
//   * one orientation only: every hop advances the across axis by at most
//     radius, so at least ceil(across / radius) hops are needed, and at
//     least 1 if anything moves at all.
//
// The bound never exceeds the hop count of any path from v to t, so adding
// it to the hops already taken never overestimates any completion's total —
// the A* admissibility condition.
int LeeSearch::min_hops_lb(Point v, Point t, int radius) const {
  const Coord dx = std::abs(v.x - t.x);
  const Coord dy = std::abs(v.y - t.y);
  if (dx == 0 && dy == 0) return 0;
  if (radius <= 0) radius = 1;
  if (has_h_ && has_v_) {
    if (dx == 0 || dy == 0) return 1;
    return std::min(dx, dy) <= radius ? 1 : 2;
  }
  const Coord across = has_h_ ? dy : dx;  // capped at radius per hop
  const Coord along = has_h_ ? dx : dy;   // free within one hop
  const auto k = static_cast<int>((across + radius - 1) / radius);
  return std::max(k, along > 0 ? 1 : 0);
}

void LeeSearch::search(const Connection& c, const RouterConfig& cfg,
                       LeeResult* out, CursorCache* cursors,
                       std::vector<Point>* expanded_log) {
  const GridSpec& spec = stack_.spec();
  ++epoch_;
  if (epoch_ == 0) {  // epoch wrap: stamp every mark stale for real
    for (auto& side_marks : marks_) {
      std::fill(side_marks.begin(), side_marks.end(), Mark{});
    }
    epoch_ = 1;
  }

  LeeResult& res = *out;
  res.found = false;
  res.via_seq.clear();
  res.hop_layers.clear();
  res.rip_center = {};
  res.budget_exceeded = false;
  res.expansions = 0;
  res.marks = 0;
  res.gap_nodes = 0;
  res.stale_skips = 0;
  res.cache_hits = 0;
  res.cache_misses = 0;

  const bool use_cache = cfg.lee_cache;
  if (use_cache) {
    cache_.set_params(cfg.radius, cfg.max_trace_nodes,
                      cfg.lee_cache_max_gaps);
    cache_.ensure_synced(stack_.mutation_seq());
  } else {
    // Fresh per-search dedup state: each (side, layer) walks a gap at most
    // once per search, no matter how many expansion strips cover it.
    for (detail::VisitedSet& vs : seen_) vs.begin();
  }

  queue_[0].clear();
  queue_[1].clear();
  const Point src[2] = {c.a, c.b};
  const Point tgt[2] = {c.b, c.a};
  std::uint64_t seq = 0;

  set_mark(0, c.a, c.a, 0, 0);
  set_mark(1, c.b, c.b, 0, 0);
  queue_[0].push(0, seq++, c.a);
  queue_[1].push(0, seq++, c.b);

  // Most-progress record per wavefront (Sec 8.3's rip-up point).
  Coord best_d[2] = {manhattan(c.a, c.b), manhattan(c.a, c.b)};
  Point best_p[2] = {c.a, c.b};

  bool meet = false;
  bool meet_src = false;  // p connects directly to the opposite source
  Point meet_p{}, meet_v{};
  LayerId meet_layer = 0;
  int meet_side = 0;

  // Replay a cached strip walk: re-derive the via emissions and the touch
  // test from the stored accepted-node list, in the original visit order —
  // the externally visible effects of reachable_vias, minus the walk.
  auto replay = [&](const Layer& layer, const FreeSpaceCache::Entry& ce,
                    Point touch, auto&& on_via) {
    FreeSpaceStats st;
    st.nodes = ce.gaps.size();
    const int period = spec.period();
    const Coord tc = layer.across_of(touch), tv = layer.along_of(touch);
    for (const ChannelSpan& cs : ce.gaps) {
      if (cs.channel % period == 0) {
        Coord first = ((cs.span.lo + period - 1) / period) * period;
        for (Coord v = first; v <= cs.span.hi; v += period) {
          on_via(layer.point_of(cs.channel, v));
        }
      }
      if (detail::FreeSpaceQuery<Layer>::touches(cs.channel, cs.span, tc,
                                                 tv)) {
        st.touched = true;
      }
    }
    return st;
  };

  int side = 0;
  while (!meet) {
    if (!cfg.bidirectional) side = 0;
    Point p{};
    for (;;) {
      if (queue_[side].empty()) {
        res.rip_center = best_p[side];
        return;  // blocked: this wavefront is exhausted
      }
      const LeeQueue::Entry e = queue_[side].pop();
      Mark& m = marks_[side][via_index(e.p)];
      if (m.popped_epoch == epoch_) {
        ++res.stale_skips;  // duplicate entry for an expanded via
        continue;
      }
      m.popped_epoch = epoch_;
      p = e.p;
      break;
    }
    if (++res.expansions > cfg.max_lee_expansions) {
      res.budget_exceeded = true;
      res.rip_center = (best_d[0] <= best_d[1]) ? best_p[0] : best_p[1];
      return;
    }
    if (expanded_log != nullptr) expanded_log->push_back(p);
    const std::uint16_t p_hops = mark_of(side, p).hops;
    const Point pg = spec.grid_of_via(p);
    const Point og = spec.grid_of_via(src[1 - side]);

    for (int li = 0; li < stack_.num_layers() && !meet; ++li) {
      const auto lid = static_cast<LayerId>(li);
      const Layer& layer = stack_.layer(lid);
      Rect box = strip_box(spec, layer.orientation(), p, cfg.radius);
      if (access_ != nullptr) access_->note(box);
      auto on_via = [&](Point g) {
        if (meet) return;
        Point v = spec.via_of_grid(g);
        if (v == p) return;
        if (!stack_.via_free(v)) return;  // not drillable here
        if (marked(1 - side, v)) {
          meet = true;
          meet_p = p;
          meet_v = v;
          meet_layer = lid;
          meet_side = side;
          return;
        }
        if (marked(side, v)) return;
        set_mark(side, v, p, lid, static_cast<std::uint16_t>(p_hops + 1));
        ++res.marks;
        Coord d = manhattan(v, tgt[side]);
        const int rem =
            cfg.lee_astar ? min_hops_lb(v, tgt[side], cfg.radius) : 0;
        queue_[side].push(priority_of(cfg.cost_fn, d, p_hops + 1, rem),
                          seq++, v);
        if (d < best_d[side]) {
          best_d[side] = d;
          best_p[side] = v;
        }
      };
      FreeSpaceStats st;
      if (use_cache) {
        if (const FreeSpaceCache::Entry* ce = cache_.lookup(p, lid)) {
          ++res.cache_hits;
          st = replay(layer, *ce, og, on_via);
        } else {
          ++res.cache_misses;
          std::vector<ChannelSpan>* log = cache_.begin_insert(p, lid, box);
          st = reachable_vias(layer, stack_.pool(), spec.period(), pg, box,
                              on_via, cfg.max_trace_nodes, &og, cursors,
                              &fs_, log);
          cache_.finish_insert();
        }
      } else {
        // The dedup context is the strip's across coordinate: expansions of
        // the same wavefront in the same via row/column of this layer share
        // an identical strip box, so their walks may dedup against each
        // other (and only against each other — see reachable_vias).
        st = reachable_vias(
            layer, stack_.pool(), spec.period(), pg, box, on_via,
            cfg.max_trace_nodes, &og, cursors, &fs_, nullptr,
            &seen_[static_cast<std::size_t>(side) * stack_.num_layers() +
                   static_cast<std::size_t>(li)],
            static_cast<std::uint64_t>(
                static_cast<std::uint32_t>(layer.across_of(pg))));
      }
      res.gap_nodes += st.nodes;
      if (!meet && st.touched) {
        // The free space around p touches the opposite source itself: a
        // direct trace p -> opposite source exists on this layer.
        meet = true;
        meet_src = true;
        meet_p = p;
        meet_layer = lid;
        meet_side = side;
      }
    }
    side = cfg.bidirectional ? 1 - side : 0;
  }

  // Assemble the via sequence: source_s .. meet_p, [meet_v .. source_o],
  // directly into the caller's reused vectors (no scratch, no copies).
  {
    // Walk meet_p back to its source (reversed), then flip in place.
    Point cur = meet_p;
    while (true) {
      res.via_seq.push_back(cur);
      const Mark& m = mark_of(meet_side, cur);
      if (m.parent == cur) break;  // reached the wavefront source
      res.hop_layers.push_back(m.layer);
      cur = m.parent;
    }
    std::reverse(res.via_seq.begin(), res.via_seq.end());
    std::reverse(res.hop_layers.begin(), res.hop_layers.end());
  }
  res.hop_layers.push_back(meet_layer);
  if (meet_src) {
    res.via_seq.push_back(src[1 - meet_side]);
  } else {
    // The opposite chain is needed meet_v-first, which is exactly the
    // order the parent walk produces.
    Point cur = meet_v;
    while (true) {
      res.via_seq.push_back(cur);
      const Mark& m = mark_of(1 - meet_side, cur);
      if (m.parent == cur) break;
      res.hop_layers.push_back(m.layer);
      cur = m.parent;
    }
  }
  if (meet_side == 1) {
    // Normalize to a -> b order.
    std::reverse(res.via_seq.begin(), res.via_seq.end());
    std::reverse(res.hop_layers.begin(), res.hop_layers.end());
  }
  res.found = true;
}

}  // namespace grr
