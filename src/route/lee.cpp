#include "route/lee.hpp"

#include <algorithm>
#include <queue>

#include "route/boxes.hpp"

namespace grr {
namespace {

std::int64_t cost_of(CostFn fn, Coord dist_to_target, int hops) {
  switch (fn) {
    case CostFn::kUnitHops:
      return hops;
    case CostFn::kDistance:
      return dist_to_target;
    case CostFn::kDistTimesHops:
      return static_cast<std::int64_t>(dist_to_target) * hops;
  }
  return 0;
}

struct QEntry {
  std::int64_t cost;
  std::uint64_t seq;  // FIFO tiebreak: equal-cost points expand in order
  Point p;
};

struct QGreater {
  bool operator()(const QEntry& x, const QEntry& y) const {
    return std::tie(x.cost, x.seq) > std::tie(y.cost, y.seq);
  }
};

}  // namespace

LeeSearch::LeeSearch(const LayerStack& stack) : stack_(stack) {}

std::size_t LeeSearch::via_index(Point v) const {
  return static_cast<std::size_t>(v.y) * stack_.spec().nx_vias() + v.x;
}

bool LeeSearch::marked(int side, Point v) const {
  return marks_[side][via_index(v)].epoch == epoch_;
}

const LeeSearch::Mark& LeeSearch::mark_of(int side, Point v) const {
  return marks_[side][via_index(v)];
}

void LeeSearch::set_mark(int side, Point v, Point parent, LayerId layer,
                         std::uint16_t hops) {
  marks_[side][via_index(v)] = {epoch_, parent, layer, hops};
}

std::vector<Point> LeeSearch::chain(int side, Point from,
                                    std::vector<LayerId>* layers) const {
  std::vector<Point> pts;
  std::vector<LayerId> lyr;
  Point cur = from;
  while (true) {
    pts.push_back(cur);
    const Mark& m = mark_of(side, cur);
    if (m.parent == cur) break;  // reached the wavefront source
    lyr.push_back(m.layer);
    cur = m.parent;
  }
  std::reverse(pts.begin(), pts.end());
  std::reverse(lyr.begin(), lyr.end());
  if (layers) *layers = std::move(lyr);
  return pts;
}

LeeResult LeeSearch::search(const Connection& c, const RouterConfig& cfg,
                            CursorCache* cursors,
                            std::vector<Point>* expanded_log) {
  const GridSpec& spec = stack_.spec();
  ++epoch_;
  const std::size_t n =
      static_cast<std::size_t>(spec.nx_vias()) * spec.ny_vias();
  marks_[0].resize(n);
  marks_[1].resize(n);

  using Queue = std::priority_queue<QEntry, std::vector<QEntry>, QGreater>;
  Queue q[2];
  const Point src[2] = {c.a, c.b};
  const Point tgt[2] = {c.b, c.a};
  std::uint64_t seq = 0;

  set_mark(0, c.a, c.a, 0, 0);
  set_mark(1, c.b, c.b, 0, 0);
  q[0].push({0, seq++, c.a});
  q[1].push({0, seq++, c.b});

  // Most-progress record per wavefront (Sec 8.3's rip-up point).
  Coord best_d[2] = {manhattan(c.a, c.b), manhattan(c.a, c.b)};
  Point best_p[2] = {c.a, c.b};

  LeeResult res;
  bool meet = false;
  bool meet_src = false;  // p connects directly to the opposite source
  Point meet_p{}, meet_v{};
  LayerId meet_layer = 0;
  int meet_side = 0;

  int side = 0;
  while (!meet) {
    if (!cfg.bidirectional) side = 0;
    if (q[side].empty()) {
      res.rip_center = best_p[side];
      return res;  // blocked: this wavefront is exhausted
    }
    const QEntry e = q[side].top();
    q[side].pop();
    if (++res.expansions > cfg.max_lee_expansions) {
      res.budget_exceeded = true;
      res.rip_center = (best_d[0] <= best_d[1]) ? best_p[0] : best_p[1];
      return res;
    }
    const Point p = e.p;
    if (expanded_log != nullptr) expanded_log->push_back(p);
    const std::uint16_t p_hops = mark_of(side, p).hops;
    const Point pg = spec.grid_of_via(p);
    const Point og = spec.grid_of_via(src[1 - side]);

    for (int li = 0; li < stack_.num_layers() && !meet; ++li) {
      const Layer& layer = stack_.layer(static_cast<LayerId>(li));
      Rect box = strip_box(spec, layer.orientation(), p, cfg.radius);
      FreeSpaceStats st = reachable_vias(
          layer, stack_.pool(), spec.period(), pg, box,
          [&](Point g) {
            if (meet) return;
            Point v = spec.via_of_grid(g);
            if (v == p) return;
            if (!stack_.via_free(v)) return;  // not drillable here
            if (marked(1 - side, v)) {
              meet = true;
              meet_p = p;
              meet_v = v;
              meet_layer = static_cast<LayerId>(li);
              meet_side = side;
              return;
            }
            if (marked(side, v)) return;
            set_mark(side, v, p, static_cast<LayerId>(li),
                     static_cast<std::uint16_t>(p_hops + 1));
            ++res.marks;
            Coord d = manhattan(v, tgt[side]);
            q[side].push({cost_of(cfg.cost_fn, d, p_hops + 1), seq++, v});
            if (d < best_d[side]) {
              best_d[side] = d;
              best_p[side] = v;
            }
          },
          cfg.max_trace_nodes, &og, cursors);
      if (!meet && st.touched) {
        // The free space around p touches the opposite source itself: a
        // direct trace p -> opposite source exists on this layer.
        meet = true;
        meet_src = true;
        meet_p = p;
        meet_layer = static_cast<LayerId>(li);
        meet_side = side;
      }
    }
    side = cfg.bidirectional ? 1 - side : 0;
  }

  // Assemble the via sequence: source_s .. meet_p, [meet_v .. source_o].
  std::vector<LayerId> layers_s;
  res.via_seq = chain(meet_side, meet_p, &layers_s);
  res.hop_layers = std::move(layers_s);
  res.hop_layers.push_back(meet_layer);
  if (meet_src) {
    res.via_seq.push_back(src[1 - meet_side]);
  } else {
    std::vector<LayerId> layers_o;
    std::vector<Point> chain_o = chain(1 - meet_side, meet_v, &layers_o);
    // chain_o is [source_o .. meet_v]; append it reversed.
    for (auto it = chain_o.rbegin(); it != chain_o.rend(); ++it) {
      res.via_seq.push_back(*it);
    }
    for (auto it = layers_o.rbegin(); it != layers_o.rend(); ++it) {
      res.hop_layers.push_back(*it);
    }
  }
  if (meet_side == 1) {
    // Normalize to a -> b order.
    std::reverse(res.via_seq.begin(), res.via_seq.end());
    std::reverse(res.hop_layers.begin(), res.hop_layers.end());
  }
  res.found = true;
  return res;
}

}  // namespace grr
