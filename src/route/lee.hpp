// The generalized Lee's algorithm (paper Sec 8.2) with its three
// modifications:
//
//   Mod 1 — the neighbors of a via are the via sites directly connectable to
//           it by a one-layer trace (found with Vias per layer, within the
//           radius strip: the cross of Fig 11);
//   Mod 2 — wavefronts spread from both ends simultaneously; an exhausted
//           wavefront signals a blocked connection and identifies the
//           congested end;
//   Mod 3 — wavefront lists are kept in increasing cost order, with
//           cost(n) = distance(n, target) * hops(n, source) by default.
//
// This implementation layers four accelerations on the seed engine:
//
//   * cross-expansion walk dedup: per-(side, layer) visited sets persist
//     across all expansions of one search, so overlapping radius strips
//     never re-enumerate a gap — every skipped re-visit is provably a
//     no-op (see the dedup contract on reachable_vias), which makes this
//     bit-identical to the seed and the engine's default fast path;
//   * a bucketed wavefront queue (LeeQueue) and per-worker scratch replace
//     the seed's per-search priority_queue / hash set — after warm-up a
//     search performs no heap allocation;
//   * goal-oriented ordering (RouterConfig::lee_astar, opt-in): an
//     admissible lower bound on the remaining hops (derived from the layer
//     orientations — see min_hops_lb in lee.cpp) is folded into each
//     entry's priority, so wavefronts grow towards each other instead of
//     in circles;
//   * a journal-invalidated reachability cache (RouterConfig::lee_cache,
//     opt-in; FreeSpaceCache) replays previously walked radius strips
//     instead of re-enumerating them — for workloads that search a frozen
//     board many times.
//
// With lee_astar=false (the default) the engine reproduces the seed's
// (cost, seq) pop order bit for bit (lee_equivalence_test.cpp proves this
// against a reference priority_queue implementation), and cache on/off
// yields identical geometry and counts apart from gap_nodes
// (SuiteDeterminism).
//
// The search is read-only: it returns the via sequence and per-hop layers;
// the router realizes them with Trace and records them in the RouteDB.
#pragma once

#include <vector>

#include "layer/access_log.hpp"
#include "layer/cursor_cache.hpp"
#include "layer/free_space_cache.hpp"
#include "layer/layer_stack.hpp"
#include "route/config.hpp"
#include "route/connection.hpp"
#include "route/lee_queue.hpp"

namespace grr {

struct LeeResult {
  bool found = false;
  /// On success: the via sequence a..b inclusive and the layer of each hop.
  std::vector<Point> via_seq;       // via coordinates
  std::vector<LayerId> hop_layers;  // size via_seq.size()-1

  /// On failure: where to rip up — the point of the exhausted wavefront
  /// that made the most progress towards its target (Sec 8.3).
  Point rip_center;
  bool budget_exceeded = false;

  std::size_t expansions = 0;  // wavefront points expanded
  std::size_t marks = 0;       // via sites marked
  /// Free gaps examined (walked fresh, or replayed from cache) across all
  /// expansions — the work metric of the gap walks. Deterministic for a
  /// fixed configuration at any thread count, but legitimately smaller with
  /// the cross-expansion dedup (cache off) than with full logged walks
  /// (cache on), while all other fields stay bit-identical.
  std::size_t gap_nodes = 0;
  /// Queue entries discarded because their via was already expanded. Under
  /// the push-once discipline (a via is pushed only when first marked) this
  /// stays 0; the skip is the contract that keeps a future decrease-key
  /// variant safe.
  std::size_t stale_skips = 0;
  /// Reachability-cache counters for this search. NOT part of the
  /// determinism-compared statistics: they legitimately differ between
  /// cache-on and cache-off runs while all geometry and counts above are
  /// bit-identical.
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
};

class LeeSearch {
 public:
  explicit LeeSearch(const LayerStack& stack);

  /// Run the search into `*out`, reusing its vectors' capacity (the
  /// steady-state zero-allocation entry point). The board is only read.
  /// `cursors`, when given, carries the caller's channel walk-start hints.
  /// `expanded_log`, when given, records every wavefront point expanded —
  /// each expansion reads one radius strip per layer, so the log determines
  /// the search's read footprint for speculative (batch) routing.
  void search(const Connection& c, const RouterConfig& cfg, LeeResult* out,
              CursorCache* cursors = nullptr,
              std::vector<Point>* expanded_log = nullptr);

  /// Convenience overload returning the result by value (tests/tools).
  LeeResult search(const Connection& c, const RouterConfig& cfg,
                   CursorCache* cursors = nullptr,
                   std::vector<Point>* expanded_log = nullptr) {
    LeeResult res;
    search(c, cfg, &res, cursors, expanded_log);
    return res;
  }

  /// Journal feed for the reachability cache: evict cached strips touched
  /// by the given mutation footprints (grid coordinates) and mark the cache
  /// synchronized with the stack's current mutation sequence. Callers pass
  /// the rectangles a MutationJournal accumulated since the last feed; any
  /// mutation that bypasses the feed is caught by the sequence backstop at
  /// the next search (the whole cache is then dropped — see FreeSpaceCache).
  void invalidate_cache(const std::vector<Rect>& touched) {
    cache_.apply(touched, stack_.mutation_seq());
  }

  const FreeSpaceCache& cache() const { return cache_; }

  /// Attach (or detach, with nullptr) a shadow access tracker. Each
  /// expansion records the radius strip it reads on each layer — the strip
  /// bounds every gap walked and every via-map probe emitted from it, on
  /// the fresh-walk, dedup and cache-replay paths alike (a replayed entry
  /// was logged under the identical box).
  void set_access_log(AccessLog* log) { access_ = log; }

 private:
  struct Mark {
    std::uint32_t epoch = 0;
    std::uint32_t popped_epoch = 0;  // stale-entry skip (see LeeResult)
    Point parent;
    LayerId layer = 0;
    std::uint16_t hops = 0;
  };

  std::size_t via_index(Point v) const;
  bool marked(int side, Point v) const;
  const Mark& mark_of(int side, Point v) const;
  void set_mark(int side, Point v, Point parent, LayerId layer,
                std::uint16_t hops);
  int min_hops_lb(Point v, Point t, int radius) const;

  const LayerStack& stack_;
  std::vector<Mark> marks_[2];
  std::uint32_t epoch_ = 0;
  LeeQueue queue_[2];
  FreeSpaceScratch fs_;
  /// Per-(side, layer) visited sets spanning all expansions of one search:
  /// overlapping radius strips stop re-walking gaps an earlier expansion of
  /// the same wavefront already enumerated (every such re-visit is a no-op —
  /// see the dedup contract on reachable_vias). Indexed side * layers + li.
  /// Used on the cache-off path only: logged walks must stay self-contained.
  std::vector<detail::VisitedSet> seen_;
  FreeSpaceCache cache_;
  AccessLog* access_ = nullptr;  // shadow access tracker (audits only)
  bool has_h_ = false;  // any horizontal layer in the stack
  bool has_v_ = false;  // any vertical layer in the stack
};

}  // namespace grr
