// The generalized Lee's algorithm (paper Sec 8.2) with its three
// modifications:
//
//   Mod 1 — the neighbors of a via are the via sites directly connectable to
//           it by a one-layer trace (found with Vias per layer, within the
//           radius strip: the cross of Fig 11);
//   Mod 2 — wavefronts spread from both ends simultaneously; an exhausted
//           wavefront signals a blocked connection and identifies the
//           congested end;
//   Mod 3 — wavefront lists are kept in increasing cost order, with
//           cost(n) = distance(n, target) * hops(n, source) by default.
//
// The search is read-only: it returns the via sequence and per-hop layers;
// the router realizes them with Trace and records them in the RouteDB.
#pragma once

#include <vector>

#include "layer/cursor_cache.hpp"
#include "layer/layer_stack.hpp"
#include "route/config.hpp"
#include "route/connection.hpp"

namespace grr {

struct LeeResult {
  bool found = false;
  /// On success: the via sequence a..b inclusive and the layer of each hop.
  std::vector<Point> via_seq;       // via coordinates
  std::vector<LayerId> hop_layers;  // size via_seq.size()-1

  /// On failure: where to rip up — the point of the exhausted wavefront
  /// that made the most progress towards its target (Sec 8.3).
  Point rip_center;
  bool budget_exceeded = false;

  std::size_t expansions = 0;  // wavefront points expanded
  std::size_t marks = 0;       // via sites marked
};

class LeeSearch {
 public:
  explicit LeeSearch(const LayerStack& stack);

  /// Run the search. The board is only read. `cursors`, when given, carries
  /// the caller's channel walk-start hints. `expanded_log`, when given,
  /// records every wavefront point expanded — each expansion reads one
  /// radius strip per layer, so the log determines the search's read
  /// footprint for speculative (batch) routing.
  LeeResult search(const Connection& c, const RouterConfig& cfg,
                   CursorCache* cursors = nullptr,
                   std::vector<Point>* expanded_log = nullptr);

 private:
  struct Mark {
    std::uint32_t epoch = 0;
    Point parent;
    LayerId layer = 0;
    std::uint16_t hops = 0;
  };

  std::size_t via_index(Point v) const;
  bool marked(int side, Point v) const;
  const Mark& mark_of(int side, Point v) const;
  void set_mark(int side, Point v, Point parent, LayerId layer,
                std::uint16_t hops);
  /// Chain from `from` back to the side's source, returned source-first.
  std::vector<Point> chain(int side, Point from,
                           std::vector<LayerId>* layers) const;

  const LayerStack& stack_;
  std::vector<Mark> marks_[2];
  std::uint32_t epoch_ = 0;
};

}  // namespace grr
