// Bucketed wavefront queue for the generalized Lee search.
//
// The seed kept each wavefront in a std::priority_queue<QEntry> that was
// constructed (and heap-allocated) on every search. This queue is the
// zero-allocation replacement: it is owned by the per-worker LeeSearch,
// reset in O(1) amortized between searches, and performs no heap allocation
// once its buckets and overflow heap have grown to the search's working set
// (the counting-allocator test in lee_alloc_test.cpp enforces this).
//
// Ordering contract: pops follow the exact total order (cost, seq) — the
// same order the seed's std::priority_queue produced — so a search driven
// by this queue is bit-identical to one driven by the heap. Two tiers keep
// that exact while staying allocation-free:
//
//   * costs < kSmallCosts land in a dense bucket array, one FIFO per cost
//     (entries of equal cost arrive in increasing seq, so FIFO == seq
//     order). A cursor tracks the smallest possibly-non-empty bucket; it
//     moves backward when a smaller cost is pushed (Lee costs are not
//     monotone: dist(n, target) shrinks as the wavefront advances, so a
//     child's cost can undercut its parent's).
//   * costs >= kSmallCosts go to a binary heap ordered by (cost, seq).
//
// The two tiers partition the cost axis, so the merge at pop time never
// ties: whenever any bucket is non-empty its cost is strictly below every
// heap cost. Buckets are reset lazily via epoch stamps — clearing the queue
// does not walk the 4096 buckets.
#pragma once

#include <cstdint>
#include <vector>

#include "geom/geom.hpp"

namespace grr {

class LeeQueue {
 public:
  struct Entry {
    std::int64_t cost = 0;
    std::uint64_t seq = 0;
    Point p;
  };

  /// Upper bound (exclusive) of the dense bucket tier. kUnitHops costs and
  /// near-goal kDistance / kDistTimesHops costs live here; the long tail of
  /// large products overflows to the heap.
  static constexpr std::int64_t kSmallCosts = 4096;

  LeeQueue() : buckets_(static_cast<std::size_t>(kSmallCosts)) {}

  void clear() {
    ++epoch_;
    if (epoch_ == 0) {  // epoch wrap: stamp everything stale for real
      for (Bucket& b : buckets_) b.epoch = 0;
      epoch_ = 1;
    }
    small_count_ = 0;
    cursor_ = kSmallCosts;
    heap_.clear();
  }

  bool empty() const { return small_count_ == 0 && heap_.empty(); }

  std::size_t size() const { return small_count_ + heap_.size(); }

  void push(std::int64_t cost, std::uint64_t seq, Point p) {
    if (cost < kSmallCosts) {
      Bucket& b = buckets_[static_cast<std::size_t>(cost)];
      if (b.epoch != epoch_) {
        b.epoch = epoch_;
        b.head = 0;
        b.items.clear();  // keeps capacity
      }
      b.items.push_back(p);
      ++small_count_;
      if (cost < cursor_) cursor_ = cost;
    } else {
      heap_.push_back({cost, seq, p});
      sift_up(heap_.size() - 1);
    }
  }

  /// Pop the (cost, seq)-minimal entry. Precondition: !empty(). The seq of
  /// bucket-tier entries is not stored (FIFO within a bucket is seq order);
  /// the returned Entry carries seq 0 for them, which no caller consumes.
  Entry pop() {
    if (small_count_ > 0) {
      while (true) {
        Bucket& b = buckets_[static_cast<std::size_t>(cursor_)];
        if (b.epoch == epoch_ && b.head < b.items.size()) break;
        ++cursor_;
      }
      Bucket& b = buckets_[static_cast<std::size_t>(cursor_)];
      Entry e{cursor_, 0, b.items[b.head]};
      ++b.head;
      --small_count_;
      return e;
    }
    Entry top = heap_.front();
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
    return top;
  }

 private:
  struct Bucket {
    std::uint32_t epoch = 0;
    std::size_t head = 0;
    std::vector<Point> items;
  };

  static bool less(const Entry& a, const Entry& b) {
    return a.cost != b.cost ? a.cost < b.cost : a.seq < b.seq;
  }

  void sift_up(std::size_t i) {
    while (i > 0) {
      std::size_t parent = (i - 1) / 2;
      if (!less(heap_[i], heap_[parent])) break;
      std::swap(heap_[i], heap_[parent]);
      i = parent;
    }
  }

  void sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    while (true) {
      std::size_t best = i;
      std::size_t l = 2 * i + 1, r = 2 * i + 2;
      if (l < n && less(heap_[l], heap_[best])) best = l;
      if (r < n && less(heap_[r], heap_[best])) best = r;
      if (best == i) break;
      std::swap(heap_[i], heap_[best]);
      i = best;
    }
  }

  std::vector<Bucket> buckets_;
  std::vector<Entry> heap_;
  std::size_t small_count_ = 0;
  std::int64_t cursor_ = kSmallCosts;  // lower bound on min non-empty bucket
  std::uint32_t epoch_ = 1;
};

}  // namespace grr
