#include "route/mixed.hpp"

namespace grr {

MixedRouteResult route_mixed(LayerStack& stack, const TileMap& tiles,
                             const ConnectionList& conns,
                             const RouterConfig& cfg) {
  MixedRouteResult result;
  for (const Connection& c : conns) {
    (c.klass == SignalClass::kECL ? result.ecl_conns : result.ttl_conns)
        .push_back(c);
  }

  result.ok = true;
  // ECL first: fill TTL tiles, route, unfill (Sec 10.2's order).
  result.ecl = std::make_unique<Router>(stack, cfg);
  if (!result.ecl_conns.empty()) {
    auto filler = tiles.fill_foreign(stack, SignalClass::kECL);
    result.ok = result.ecl->route_all(result.ecl_conns) && result.ok;
    TileMap::unfill(stack, filler);
  }

  result.ttl = std::make_unique<Router>(stack, cfg);
  if (!result.ttl_conns.empty()) {
    auto filler = tiles.fill_foreign(stack, SignalClass::kTTL);
    result.ok = result.ttl->route_all(result.ttl_conns) && result.ok;
    TileMap::unfill(stack, filler);
  }
  return result;
}

}  // namespace grr
