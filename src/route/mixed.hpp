// Two-pass routing of mixed ECL/TTL boards (paper Sec 10.2).
//
// The board is treated as two separate but superimposed routing problems.
// Before the ECL pass, all empty space in TTL tiles is filled, making it
// unavailable for traces or vias; after the pass the filler is removed,
// and the procedure repeats with the roles swapped.
#pragma once

#include <memory>

#include "board/tile_map.hpp"
#include "route/router.hpp"

namespace grr {

struct MixedRouteResult {
  bool ok = false;
  /// Per-class routers (and their route databases); index by SignalClass.
  std::unique_ptr<Router> ecl;
  std::unique_ptr<Router> ttl;
  ConnectionList ecl_conns;
  ConnectionList ttl_conns;

  const Router& router_for(SignalClass k) const {
    return k == SignalClass::kECL ? *ecl : *ttl;
  }
};

/// Split `conns` by signal class and route each class with the other
/// class's tiles filled. The ECL pass runs first, as in the paper.
MixedRouteResult route_mixed(LayerStack& stack, const TileMap& tiles,
                             const ConnectionList& conns,
                             const RouterConfig& cfg = {});

}  // namespace grr
