// Optimal connection strategies (paper Sec 8.1): zero-via and one-via
// solutions under the radius constraint. About 90% of the connections of a
// completable problem should route here.
#include <algorithm>
#include <unordered_set>

#include "route/boxes.hpp"
#include "route/router.hpp"

namespace grr {

bool Router::place_direct(RouteTransaction& txn, Point a_via, Point b_via) {
  const GridSpec& spec = stack_.spec();
  const Coord dx = std::abs(a_via.x - b_via.x);
  const Coord dy = std::abs(a_via.y - b_via.y);
  const Orientation preferred =
      dx >= dy ? Orientation::kHorizontal : Orientation::kVertical;

  const Point ag = spec.grid_of_via(a_via);
  const Point bg = spec.grid_of_via(b_via);
  const Rect box = zero_via_box(spec, a_via, b_via, cfg_.radius);

  // Layers whose orientation matches the dominant direction first.
  for (int round = 0; round < 2; ++round) {
    for (int li = 0; li < stack_.num_layers(); ++li) {
      const Layer& layer = stack_.layer(static_cast<LayerId>(li));
      const bool is_preferred = layer.orientation() == preferred;
      if ((round == 0) != is_preferred) continue;
      // Radius constraint: orthogonal movement on this layer is bounded.
      const Coord orth =
          layer.orientation() == Orientation::kHorizontal ? dy : dx;
      if (orth > cfg_.radius) continue;
      auto spans = trace_path(layer, stack_.pool(), ag, bg, box,
                              cfg_.max_trace_nodes, nullptr,
                              cfg_.via_avoidance ? spec.period() : 0,
                              &cursors_, nullptr, &fs_);
      if (spans) {
        txn.add_hop(static_cast<LayerId>(li), std::move(*spans));
        return true;
      }
    }
  }
  return false;
}

bool Router::try_zero_via(RouteTransaction& txn, const Connection& c) {
  if (!place_direct(txn, c.a, c.b)) return false;
  txn.commit(RouteStrategy::kZeroVia);
  return true;
}

bool Router::one_via_between(RouteTransaction& txn, Point a, Point b) {
  const GridSpec& spec = stack_.spec();
  const int r = cfg_.radius;

  // Candidate intermediate vias live in the (2r+1)^2 squares at the two
  // diagonally opposite corners of the bounding rectangle (Fig 10),
  // enumerated best-to-worst: square centers block the fewest channels.
  struct Cand {
    int ring;     // Chebyshev distance from its square's center
    long detour;  // total Manhattan length a->v->b
    Point v;
  };
  std::vector<Cand> cands;
  const Point corners[2] = {{b.x, a.y}, {a.x, b.y}};
  for (const Point& corner : corners) {
    for (Coord dx2 = -r; dx2 <= r; ++dx2) {
      for (Coord dy2 = -r; dy2 <= r; ++dy2) {
        Point v{corner.x + dx2, corner.y + dy2};
        if (!spec.via_in_board(v)) continue;
        if (v == a || v == b) continue;
        if (!stack_.via_free(v)) continue;
        cands.push_back({static_cast<int>(chebyshev(v, corner)),
                         static_cast<long>(manhattan(a, v)) + manhattan(v, b),
                         v});
      }
    }
  }
  std::sort(cands.begin(), cands.end(), [](const Cand& x, const Cand& y) {
    return std::tie(x.ring, x.detour, x.v.x, x.v.y) <
           std::tie(y.ring, y.detour, y.v.x, y.v.y);
  });

  std::unordered_set<Point> tried;  // the two squares can overlap
  for (const Cand& cand : cands) {
    if (!tried.insert(cand.v).second) continue;
    txn.add_via(cand.v);
    if (place_direct(txn, a, cand.v) && place_direct(txn, cand.v, b)) {
      return true;
    }
    txn.rollback();
  }
  return false;
}

bool Router::try_one_via(RouteTransaction& txn, const Connection& c) {
  if (!one_via_between(txn, c.a, c.b)) return false;
  txn.commit(RouteStrategy::kOneVia);
  return true;
}

bool Router::try_two_via(RouteTransaction& txn, const Connection& c) {
  // Sec 8.1: "When a one-via solution can't be found, one might choose an
  // intermediate via and attempt a zero-via connection to one of the pins
  // and a one-via connection to the other... Unfortunately there are
  // usually too many possibilities to examine exhaustively. The problem is
  // that the large number of candidate vias is tried in a pre-determined
  // order without concern for local congestion."
  const GridSpec& spec = stack_.spec();
  const int r = cfg_.radius;
  Rect box = Rect::bounding(c.a, c.b).inflated(r);

  struct Cand {
    long detour;
    Point v;
  };
  std::vector<Cand> cands;
  for (Coord vy = std::max<Coord>(box.y.lo, 0);
       vy <= std::min(box.y.hi, spec.ny_vias() - 1); ++vy) {
    for (Coord vx = std::max<Coord>(box.x.lo, 0);
         vx <= std::min(box.x.hi, spec.nx_vias() - 1); ++vx) {
      Point v{vx, vy};
      if (v == c.a || v == c.b) continue;
      if (!stack_.via_free(v)) continue;
      cands.push_back(
          {static_cast<long>(manhattan(c.a, v)) + manhattan(v, c.b), v});
    }
  }
  // Pre-determined order: by detour length only — no congestion knowledge.
  std::sort(cands.begin(), cands.end(), [](const Cand& x, const Cand& y) {
    return std::tie(x.detour, x.v.x, x.v.y) <
           std::tie(y.detour, y.v.x, y.v.y);
  });

  int budget = cfg_.two_via_max_candidates;
  for (const Cand& cand : cands) {
    if (budget-- <= 0) break;
    // Zero-via from pin a to the candidate, one-via from it to pin b
    // (built in a-to-b order so the realized chain stays canonical).
    ++stats_.two_via_candidates;
    txn.add_via(cand.v);
    if (place_direct(txn, c.a, cand.v) &&
        one_via_between(txn, cand.v, c.b)) {
      txn.commit(RouteStrategy::kTwoVia);
      return true;
    }
    txn.rollback();
  }
  return false;
}

}  // namespace grr
