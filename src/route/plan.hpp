// A speculative route plan (search/commit split).
//
// A plan is the complete output of a read-only search worker: the geometry
// that would be installed, plus the *read footprint* — a conservative cover
// of every board location the search examined. The commit thread installs
// plans in the serial order; a plan is installed verbatim only if no commit
// or rip since the plan was taken touched its footprint, in which case the
// plan is byte-identical to what the serial router would have produced at
// that position. Otherwise the plan is discarded and the connection is
// re-routed serially at its ordered turn, so the board evolves exactly as a
// one-thread run for any worker count.
#pragma once

#include <algorithm>
#include <vector>

#include "route/route_db.hpp"

namespace grr {

/// Conservative cover of a search's read set, in grid coordinates. Optimal
/// strategies read inside bounded rectangles; Lee expansions read full-length
/// radius strips, which project to an interval on one axis only (a horizontal
/// strip spans all x, so only its y-interval constrains it — a "band").
struct ReadFootprint {
  std::vector<Rect> rects;
  std::vector<Interval> xbands;  // vertical strips: constrain x, any y
  std::vector<Interval> ybands;  // horizontal strips: constrain y, any x
  bool everything = false;       // unbounded read set (failed searches)

  void add_rect(const Rect& r) { rects.push_back(r); }
  void add_xband(Interval b) { xbands.push_back(b); }
  void add_yband(Interval b) { ybands.push_back(b); }

  /// Coalesce overlapping/adjacent bands (a Lee search adds one band per
  /// expansion per layer; merged they collapse to a handful of intervals).
  void normalize() {
    auto merge = [](std::vector<Interval>& v) {
      std::sort(v.begin(), v.end(),
                [](Interval a, Interval b) { return a.lo < b.lo; });
      std::size_t out = 0;
      for (const Interval& b : v) {
        if (out > 0 && b.lo <= v[out - 1].hi + 1) {
          if (b.hi > v[out - 1].hi) v[out - 1].hi = b.hi;
        } else {
          v[out++] = b;
        }
      }
      v.resize(out);
    };
    merge(xbands);
    merge(ybands);
  }

  bool intersects(const Rect& r) const {
    if (everything) return true;
    for (const Interval& b : ybands) {
      if (b.overlaps(r.y)) return true;
    }
    for (const Interval& b : xbands) {
      if (b.overlaps(r.x)) return true;
    }
    for (const Rect& q : rects) {
      if (q.overlaps(r)) return true;
    }
    return false;
  }
};

/// Planned realization of one connection, computed without touching the
/// board. Geometry is stored exactly as the serial router would install it:
/// vias in drill order, hops in a-to-b order.
struct RoutePlan {
  ConnId id = kNoConn;
  bool found = false;
  RouteStrategy strategy = RouteStrategy::kNone;
  std::vector<Point> vias;     // intermediate vias (via coordinates)
  std::vector<RouteHop> hops;  // traces in a-to-b order
  ReadFootprint footprint;

  /// Shadow access tracker output (RouterConfig::access_audit only; empty
  /// otherwise): the grid regions the search *actually* read, recorded by
  /// the instrumented query layer. The FOOT-READ-ESCAPE checker proves
  /// every one of them is covered by `footprint`.
  std::vector<Rect> reads;

  /// Search-effort counters, merged into RouterStats only when the plan is
  /// installed verbatim; a discarded plan's effort is recounted by the
  /// serial re-route so discrete stats match a serial run exactly.
  long lee_searches = 0;
  long lee_expansions = 0;
  long lee_gap_nodes = 0;
  double sec_zero_via = 0;
  double sec_one_via = 0;
  double sec_lee = 0;
};

}  // namespace grr
