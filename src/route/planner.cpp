#include "route/planner.hpp"

#include <algorithm>
#include <unordered_set>

#include "layer/free_space.hpp"
#include "route/boxes.hpp"
#include "timing/scoped_timer.hpp"

namespace grr {

ConnectionPlanner::ConnectionPlanner(const LayerStack& stack,
                                     RouterConfig cfg)
    : view_(stack), cfg_(cfg), scratch_(stack) {
  if (cfg_.access_audit) {
    // One log covers the planner's whole query surface: the view's point
    // and span probes, the trace walks through the scratch, and the Lee
    // engine's radius strips all record into it.
    view_.set_access_log(&access_);
    scratch_.free_space.access = &access_;
    scratch_.lee.set_access_log(&access_);
  }
}

bool ConnectionPlanner::plan_direct(RoutePlan& plan, Point a_via,
                                    Point b_via) {
  const GridSpec& spec = view_.spec();
  const Coord dx = std::abs(a_via.x - b_via.x);
  const Coord dy = std::abs(a_via.y - b_via.y);
  const Orientation preferred =
      dx >= dy ? Orientation::kHorizontal : Orientation::kVertical;

  const Point ag = spec.grid_of_via(a_via);
  const Point bg = spec.grid_of_via(b_via);
  const Rect box = zero_via_box(spec, a_via, b_via, cfg_.radius);

  for (int round = 0; round < 2; ++round) {
    for (int li = 0; li < view_.num_layers(); ++li) {
      const Layer& layer = view_.layer(static_cast<LayerId>(li));
      const bool is_preferred = layer.orientation() == preferred;
      if ((round == 0) != is_preferred) continue;
      const Coord orth =
          layer.orientation() == Orientation::kHorizontal ? dy : dx;
      if (orth > cfg_.radius) continue;
      auto spans = trace_path(layer, view_.pool(), ag, bg, box,
                              cfg_.max_trace_nodes, nullptr,
                              cfg_.via_avoidance ? spec.period() : 0,
                              &scratch_.cursors, &scratch_.overlay,
                              &scratch_.free_space);
      if (spans) {
        for (const ChannelSpan& cs : *spans) {
          scratch_.overlay.add(static_cast<LayerId>(li), cs.channel,
                               cs.span);
        }
        plan.hops.push_back({static_cast<LayerId>(li), std::move(*spans)});
        return true;
      }
    }
  }
  return false;
}

bool ConnectionPlanner::plan_zero_via(RoutePlan& plan, const Connection& c) {
  plan.footprint.add_rect(
      zero_via_box(view_.spec(), c.a, c.b, cfg_.radius));
  if (!plan_direct(plan, c.a, c.b)) return false;
  plan.found = true;
  plan.strategy = RouteStrategy::kZeroVia;
  return true;
}

bool ConnectionPlanner::plan_one_via(RoutePlan& plan, Point a, Point b) {
  const GridSpec& spec = view_.spec();
  const int r = cfg_.radius;

  // Read footprint: the candidate via_free probes sit within radius via
  // units of the corners, and each leg's trace box inflates a sub-rectangle
  // of the a-b bounding box by another radius — 2r via pitches covers all.
  plan.footprint.add_rect(
      Rect::bounding(spec.grid_of_via(a), spec.grid_of_via(b))
          .inflated(2 * r * spec.period())
          .intersect(spec.extent()));

  struct Cand {
    int ring;
    long detour;
    Point v;
  };
  std::vector<Cand> cands;
  const Point corners[2] = {{b.x, a.y}, {a.x, b.y}};
  for (const Point& corner : corners) {
    for (Coord dx = -r; dx <= r; ++dx) {
      for (Coord dy = -r; dy <= r; ++dy) {
        Point v{corner.x + dx, corner.y + dy};
        if (!spec.via_in_board(v)) continue;
        if (v == a || v == b) continue;
        if (!view_.via_free(v)) continue;
        cands.push_back({static_cast<int>(chebyshev(v, corner)),
                         static_cast<long>(manhattan(a, v)) + manhattan(v, b),
                         v});
      }
    }
  }
  std::sort(cands.begin(), cands.end(), [](const Cand& x, const Cand& y) {
    return std::tie(x.ring, x.detour, x.v.x, x.v.y) <
           std::tie(y.ring, y.detour, y.v.x, y.v.y);
  });

  std::unordered_set<Point> tried;
  for (const Cand& cand : cands) {
    if (!tried.insert(cand.v).second) continue;
    const std::size_t ov_mark = scratch_.overlay.size();
    const std::size_t hop_mark = plan.hops.size();
    // The serial router drills the candidate before tracing either leg;
    // here the drill is tentative metal in the overlay.
    for (int l = 0; l < view_.num_layers(); ++l) {
      PlacedSpan ps = view_.via_span(static_cast<LayerId>(l), cand.v);
      scratch_.overlay.add(ps.layer, ps.channel, ps.span);
    }
    if (plan_direct(plan, a, cand.v) && plan_direct(plan, cand.v, b)) {
      plan.vias.push_back(cand.v);
      plan.found = true;
      plan.strategy = RouteStrategy::kOneVia;
      return true;
    }
    scratch_.overlay.truncate(ov_mark);
    plan.hops.resize(hop_mark);
  }
  return false;
}

bool ConnectionPlanner::plan_lee(RoutePlan& plan, const Connection& c) {
  const GridSpec& spec = view_.spec();
  plan.lee_searches = 1;
  scratch_.expanded.clear();
  scratch_.lee.search(c, cfg_, &scratch_.lee_res, &scratch_.cursors,
                      &scratch_.expanded);
  const LeeResult& res = scratch_.lee_res;
  plan.lee_expansions += static_cast<long>(res.expansions);
  plan.lee_gap_nodes += static_cast<long>(res.gap_nodes);

  // Read footprint: each expansion reads one full-length radius strip per
  // layer (plus via_free probes inside it), which projects to a band on the
  // strip's constrained axis.
  for (Point p : scratch_.expanded) {
    for (int li = 0; li < view_.num_layers(); ++li) {
      const Layer& layer = view_.layer(static_cast<LayerId>(li));
      Rect box = strip_box(spec, layer.orientation(), p, cfg_.radius);
      if (layer.orientation() == Orientation::kHorizontal) {
        plan.footprint.add_yband(box.y);
      } else {
        plan.footprint.add_xband(box.x);
      }
    }
  }
  if (!res.found) return false;

  // Realize the tentative path into the overlay exactly as the serial
  // router realizes it onto the board: vias first, then hop by hop, each
  // trace seeing everything placed before it.
  for (std::size_t i = 1; i + 1 < res.via_seq.size(); ++i) {
    plan.vias.push_back(res.via_seq[i]);
    for (int l = 0; l < view_.num_layers(); ++l) {
      PlacedSpan ps =
          view_.via_span(static_cast<LayerId>(l), res.via_seq[i]);
      scratch_.overlay.add(ps.layer, ps.channel, ps.span);
    }
  }
  for (std::size_t j = 0; j + 1 < res.via_seq.size(); ++j) {
    const Point u = res.via_seq[j];
    const Point w = res.via_seq[j + 1];
    const Layer& layer = view_.layer(res.hop_layers[j]);
    Rect box = hull_strip_box(spec, layer.orientation(), u, w, cfg_.radius);
    if (layer.orientation() == Orientation::kHorizontal) {
      plan.footprint.add_yband(box.y);
    } else {
      plan.footprint.add_xband(box.x);
    }
    auto spans = trace_path(layer, view_.pool(), spec.grid_of_via(u),
                            spec.grid_of_via(w), box, cfg_.max_trace_nodes,
                            nullptr,
                            cfg_.via_avoidance ? spec.period() : 0,
                            &scratch_.cursors, &scratch_.overlay,
                            &scratch_.free_space);
    if (!spans) {
      // Serial would roll back and fall through to rip-up.
      plan.vias.clear();
      plan.hops.clear();
      return false;
    }
    for (const ChannelSpan& cs : *spans) {
      scratch_.overlay.add(layer.id(), cs.channel, cs.span);
    }
    plan.hops.push_back({res.hop_layers[j], std::move(*spans)});
  }
  plan.found = true;
  plan.strategy = RouteStrategy::kLee;
  return true;
}

void ConnectionPlanner::plan_strategies(RoutePlan& plan,
                                        const Connection& c) {
  {
    ScopedTimer t(plan.sec_zero_via);
    if (cfg_.enable_zero_via && plan_zero_via(plan, c)) return;
  }
  {
    ScopedTimer t(plan.sec_one_via);
    if (cfg_.enable_one_via && plan_one_via(plan, c.a, c.b)) {
      plan.footprint.normalize();
      return;
    }
  }
  if (cfg_.enable_lee) {
    ScopedTimer t(plan.sec_lee);
    if (plan_lee(plan, c)) {
      plan.footprint.normalize();
      return;
    }
  }
  // The serial ladder would now fail outright or enter rip-up; either way
  // the outcome depends on state a worker must not touch.
  plan.footprint.everything = true;
  plan.footprint.normalize();
}

RoutePlan ConnectionPlanner::plan(const Connection& c) {
  RoutePlan plan;
  plan.id = c.id;
  scratch_.overlay.clear();

  if (c.a == c.b) {
    plan.found = true;
    plan.strategy = RouteStrategy::kTrivial;
    return plan;  // no reads, no metal: installs under any board state
  }

  if (cfg_.access_audit) access_.clear();
  plan_strategies(plan, c);
  if (cfg_.access_audit) plan.reads = access_.rects();
  return plan;
}

}  // namespace grr
