// Read-only route planning (search/commit split).
//
// A ConnectionPlanner computes what the serial router *would* do for one
// connection — the same strategy ladder, candidate orders and traces — but
// against a BoardView, without touching the board. Metal the serial router
// would have placed mid-construction (a drilled candidate via, the first
// leg of a one-via route, earlier hops of a Lee path) is recorded in the
// worker's PlanOverlay, and the free-space queries subtract it from every
// gap they report, so the plan's geometry is byte-identical to the serial
// result whenever the board the plan was taken against still matches the
// plan's read footprint at commit time.
//
// Rip-up is deliberately not planned: it mutates other connections, which a
// speculative worker must never do. A connection whose plan comes back
// found == false is re-routed serially at its ordered turn.
#pragma once

#include "layer/board_view.hpp"
#include "route/config.hpp"
#include "route/connection.hpp"
#include "route/plan.hpp"
#include "route/search_scratch.hpp"

namespace grr {

class ConnectionPlanner {
 public:
  /// With cfg.access_audit set, a shadow AccessLog is attached to the
  /// planner's whole query surface (BoardView, the free-space walks, the
  /// Lee engine) and every plan returned carries its actual read regions
  /// in RoutePlan::reads. Off — the default — the log stays detached and
  /// the recording sites cost one never-taken pointer test each.
  ConnectionPlanner(const LayerStack& stack, RouterConfig cfg);

  /// Plan one connection against the current board state. Reads the board,
  /// mutates only this planner's scratch.
  RoutePlan plan(const Connection& c);

  /// Feed the mutation footprints committed since this planner last ran to
  /// its reachability cache (called by the batch commit thread between
  /// commit and the next planning fan-out; see BatchRouter).
  void invalidate_search_cache(const std::vector<Rect>& touched) {
    scratch_.lee.invalidate_cache(touched);
  }

 private:
  /// Mirror of Router::place_direct: one direct trace between two via
  /// points, preferred-orientation layers first, appended to the plan and
  /// the overlay on success.
  bool plan_direct(RoutePlan& plan, Point a_via, Point b_via);
  bool plan_zero_via(RoutePlan& plan, const Connection& c);
  bool plan_one_via(RoutePlan& plan, Point a, Point b);
  bool plan_lee(RoutePlan& plan, const Connection& c);
  void plan_strategies(RoutePlan& plan, const Connection& c);

  BoardView view_;
  RouterConfig cfg_;
  SearchScratch scratch_;
  AccessLog access_;  // shadow read log (cfg_.access_audit only)
};

}  // namespace grr
