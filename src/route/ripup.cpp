// Rip-up and put-back (paper Sec 8.3). When both optimal strategies and
// Lee's algorithm fail, the connections immediately obstructing the point
// that made the most progress are ripped up; after the blocked connection
// routes, the victims are re-inserted exactly where they were, and the few
// that no longer fit are marked for re-routing in a later pass.
#include <unordered_set>

#include "route/router.hpp"
#include "timing/scoped_timer.hpp"

namespace grr {

int Router::rip_up(RouteTransaction& txn, const Connection& c,
                   Point center_via) {
  const GridSpec& spec = stack_.spec();
  const Point g = spec.grid_of_via(center_via);
  const Coord rb = cfg_.rip_box_vias * spec.period();
  const Rect box =
      Rect{{g.x - rb, g.x + rb}, {g.y - rb, g.y + rb}}.intersect(
          spec.extent());

  std::unordered_set<ConnId> victims;
  for (int li = 0; li < stack_.num_layers(); ++li) {
    obstructions(stack_.layer(static_cast<LayerId>(li)), stack_.pool(), g,
                 box,
                 [&](ConnId id) {
                   if (is_rippable(id) && id != c.id && db_->routed(id)) {
                     victims.insert(id);
                   }
                 },
                 kDefaultMaxFreeNodes, &cursors_, &fs_);
  }
  for (ConnId id : victims) {
    txn.rip(id);
    ripped_.push_back(id);
    ++stats_.rip_ups;
  }
  return static_cast<int>(victims.size());
}

void Router::put_back() {
  ScopedTimer t(stats_.sec_putback);
  for (ConnId id : ripped_) {
    // Most victims re-insert verbatim; the rest stay unrouted and are
    // re-routed by a later pass.
    RouteTransaction::putback(stack_, *db_, id, &txn_counters_,
                              &cache_feed_);
  }
  ripped_.clear();
}

}  // namespace grr
