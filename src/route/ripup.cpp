// Rip-up and put-back (paper Sec 8.3). When both optimal strategies and
// Lee's algorithm fail, the connections immediately obstructing the point
// that made the most progress are ripped up; after the blocked connection
// routes, the victims are re-inserted exactly where they were, and the few
// that no longer fit are marked for re-routing in a later pass.
#include <chrono>
#include <unordered_set>

#include "route/router.hpp"

namespace grr {

int Router::rip_up(const Connection& c, Point center_via) {
  const GridSpec& spec = stack_.spec();
  const Point g = spec.grid_of_via(center_via);
  const Coord rb = cfg_.rip_box_vias * spec.period();
  const Rect box =
      Rect{{g.x - rb, g.x + rb}, {g.y - rb, g.y + rb}}.intersect(
          spec.extent());

  std::unordered_set<ConnId> victims;
  for (int li = 0; li < stack_.num_layers(); ++li) {
    obstructions(stack_.layer(static_cast<LayerId>(li)), stack_.pool(), g,
                 box, [&](ConnId id) {
                   if (is_rippable(id) && id != c.id && db_->routed(id)) {
                     victims.insert(id);
                   }
                 });
  }
  for (ConnId id : victims) {
    db_->rip(stack_, id);
    ripped_.push_back(id);
    ++stats_.rip_ups;
  }
  return static_cast<int>(victims.size());
}

void Router::put_back() {
  auto start = std::chrono::steady_clock::now();
  for (ConnId id : ripped_) {
    // Most victims re-insert verbatim; the rest stay unrouted and are
    // re-routed by a later pass.
    db_->try_putback(stack_, id);
  }
  ripped_.clear();
  stats_.sec_putback += std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
}

}  // namespace grr
