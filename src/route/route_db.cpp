#include "route/route_db.hpp"

#include <cassert>

namespace grr {

void RouteDB::link_tail(LayerStack& stack, RouteRecord& r, SegId s) {
  if (!r.segs.empty()) stack.pool()[r.segs.back()].trace_next = s;
  r.segs.push_back(s);
}

void RouteDB::begin(ConnId id) {
  RouteRecord& r = mut(id);
  assert(r.segs.empty());
  r.geom = RouteGeom{};
  r.strategy = RouteStrategy::kNone;
  r.status = RouteStatus::kUnrouted;
}

void RouteDB::add_via(LayerStack& stack, ConnId id, Point via) {
  RouteRecord& r = mut(id);
  for (SegId s : stack.drill_via(via, id)) link_tail(stack, r, s);
  r.geom.vias.push_back(via);
}

void RouteDB::add_hop(LayerStack& stack, ConnId id, LayerId layer,
                      std::vector<ChannelSpan> spans) {
  RouteRecord& r = mut(id);
  for (const ChannelSpan& cs : spans) {
    link_tail(stack, r,
              stack.insert_span({layer, cs.channel, cs.span}, id));
  }
  r.geom.hops.push_back({layer, std::move(spans)});
}

void RouteDB::commit(ConnId id, RouteStrategy strategy) {
  RouteRecord& r = mut(id);
  r.status = RouteStatus::kRouted;
  r.strategy = strategy;
}

void RouteDB::abort(LayerStack& stack, ConnId id) {
  RouteRecord& r = mut(id);
  for (SegId s : r.segs) stack.erase_segment(s);
  r.segs.clear();
  r.geom = RouteGeom{};
  r.status = RouteStatus::kUnrouted;
  r.strategy = RouteStrategy::kNone;
}

void RouteDB::rip(LayerStack& stack, ConnId id) {
  RouteRecord& r = mut(id);
  assert(r.status == RouteStatus::kRouted);
  for (SegId s : r.segs) stack.erase_segment(s);
  r.segs.clear();
  r.status = RouteStatus::kUnrouted;
  ++r.rip_count;
  // r.geom is kept for try_putback.
}

void RouteDB::install_geom(LayerStack& stack, ConnId id) {
  RouteRecord& r = mut(id);
  for (Point v : r.geom.vias) {
    for (SegId s : stack.drill_via(v, id)) link_tail(stack, r, s);
  }
  for (const RouteHop& hop : r.geom.hops) {
    for (const ChannelSpan& cs : hop.spans) {
      link_tail(stack, r,
                stack.insert_span({hop.layer, cs.channel, cs.span}, id));
    }
  }
}

bool RouteDB::try_putback(LayerStack& stack, ConnId id) {
  RouteRecord& r = mut(id);
  if (r.status == RouteStatus::kRouted) return true;
  if (r.strategy == RouteStrategy::kNone) return false;  // never routed
  for (Point v : r.geom.vias) {
    if (!stack.via_free(v)) return false;
  }
  for (const RouteHop& hop : r.geom.hops) {
    for (const ChannelSpan& cs : hop.spans) {
      if (!stack.span_free({hop.layer, cs.channel, cs.span})) return false;
    }
  }
  install_geom(stack, id);
  r.status = RouteStatus::kRouted;
  return true;
}

void RouteDB::adopt_geometry(ConnId id, RouteGeom geom,
                             RouteStrategy strategy) {
  RouteRecord& r = mut(id);
  assert(r.status == RouteStatus::kUnrouted && r.segs.empty());
  r.geom = std::move(geom);
  r.strategy = strategy;
}

long RouteDB::total_vias() const {
  long n = 0;
  for (const RouteRecord& r : recs_) {
    if (r.status == RouteStatus::kRouted) {
      n += static_cast<long>(r.geom.vias.size());
    }
  }
  return n;
}

long RouteDB::length_mils(const GridSpec& spec, const LayerStack& stack,
                          ConnId id) const {
  const RouteRecord& r = rec(id);
  long mils = 0;
  for (const RouteHop& hop : r.geom.hops) {
    (void)stack;
    for (std::size_t i = 0; i < hop.spans.size(); ++i) {
      const ChannelSpan& cs = hop.spans[i];
      mils += spec.mils_between(cs.span.lo, cs.span.hi);
      if (i + 1 < hop.spans.size()) {
        mils += spec.mils_between(cs.channel, hop.spans[i + 1].channel);
      }
    }
  }
  return mils;
}

}  // namespace grr
