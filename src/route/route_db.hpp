// The route database: per-connection realization state.
//
// A realized connection is a chain of traces joined by vias (paper Sec 8).
// The database records both the live segments (for rip-up) and the abstract
// geometry (so ripped connections can be re-inserted exactly where they
// were, at very low cost — Sec 8.3). Segments of one connection are chained
// through their trace_next links, the paper's "link through each segment
// [that] connects the segments of a single trace".
#pragma once

#include <vector>

#include "layer/free_space.hpp"
#include "layer/layer_stack.hpp"
#include "route/connection.hpp"

namespace grr {

enum class RouteStatus : std::uint8_t { kUnrouted, kRouted };

enum class RouteStrategy : std::uint8_t {
  kNone,
  kTrivial,  // zero-length connection
  kZeroVia,
  kOneVia,
  kLee,
  kTuned,   // rebuilt by the length tuner (Sec 10.1)
  kTwoVia,  // the rejected divide-and-conquer extension (Sec 8.1 ablation)
};
inline constexpr int kNumRouteStrategies = 7;

/// One trace of a chain: contiguous spans on a single layer.
struct RouteHop {
  LayerId layer = 0;
  std::vector<ChannelSpan> spans;
};

struct RouteGeom {
  std::vector<Point> vias;     // intermediate drilled vias (via coordinates)
  std::vector<RouteHop> hops;  // traces in a-to-b order
};

struct RouteRecord {
  RouteStatus status = RouteStatus::kUnrouted;
  RouteStrategy strategy = RouteStrategy::kNone;
  RouteGeom geom;
  std::vector<SegId> segs;  // all live segments (via units + trace spans)
  int rip_count = 0;        // times this connection has been ripped up
};

class RouteDB {
 public:
  explicit RouteDB(std::size_t num_connections) : recs_(num_connections) {}

  std::size_t size() const { return recs_.size(); }
  const RouteRecord& rec(ConnId id) const {
    return recs_[static_cast<std::size_t>(id)];
  }
  RouteStatus status(ConnId id) const { return rec(id).status; }
  bool routed(ConnId id) const {
    return rec(id).status == RouteStatus::kRouted;
  }

  /// Total intermediate vias over all routed connections.
  long total_vias() const;
  /// Physical trace length of a routed connection in mils (spans plus the
  /// orthogonal crossing steps between adjacent channels within each hop).
  long length_mils(const GridSpec& spec, const LayerStack& stack,
                   ConnId id) const;

 private:
  /// All mutation is reserved to the RouteTransaction choke point, which
  /// journals and counts every board change (engine layering; DESIGN.md).
  friend class RouteTransaction;

  /// Start (re)constructing a connection: clear any stale geometry left
  /// from an earlier rip. The connection must have no live segments.
  void begin(ConnId id);
  /// Drill an intermediate via for a connection under construction.
  void add_via(LayerStack& stack, ConnId id, Point via);
  /// Place one trace (hop) for a connection under construction.
  void add_hop(LayerStack& stack, ConnId id, LayerId layer,
               std::vector<ChannelSpan> spans);
  /// Finish a successful construction.
  void commit(ConnId id, RouteStrategy strategy);
  /// Remove everything placed so far for an uncommitted construction.
  void abort(LayerStack& stack, ConnId id);

  /// Rip up a routed connection: erase its metal but remember its geometry.
  void rip(LayerStack& stack, ConnId id);
  /// Try to re-insert a ripped connection exactly where it was.
  bool try_putback(LayerStack& stack, ConnId id);

  /// Replace an unrouted connection's remembered geometry (used by the
  /// length tuner to restore a snapshot before try_putback).
  void adopt_geometry(ConnId id, RouteGeom geom, RouteStrategy strategy);

  RouteRecord& mut(ConnId id) { return recs_[static_cast<std::size_t>(id)]; }
  void link_tail(LayerStack& stack, RouteRecord& r, SegId s);
  void install_geom(LayerStack& stack, ConnId id);

  std::vector<RouteRecord> recs_;
};

}  // namespace grr
