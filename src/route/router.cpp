#include "route/router.hpp"

#include <algorithm>
#include <cassert>

#include "route/boxes.hpp"
#include "timing/scoped_timer.hpp"

namespace grr {

Router::Router(LayerStack& stack, RouterConfig cfg)
    : stack_(stack), cfg_(cfg), lee_(stack) {}

bool Router::try_lee(RouteTransaction& txn, const Connection& c,
                     Point* rip_center) {
  ++stats_.lee_searches;
  // Drain the mutation feed into the reachability cache: every rectangle a
  // transaction journalled since the last search precisely invalidates the
  // cached strips it touches.
  lee_.invalidate_cache(cache_feed_.touched);
  cache_feed_.clear();
  lee_.search(c, cfg_, &lee_res_, &cursors_);
  const LeeResult& res = lee_res_;
  stats_.lee_expansions += static_cast<long>(res.expansions);
  stats_.lee_gap_nodes += static_cast<long>(res.gap_nodes);
  if (!res.found) {
    *rip_center = res.rip_center;
    return false;
  }

  // Realize the tentative path: drill the intermediate vias, then construct
  // each hop with Trace (the links "may all be on different layers").
  const GridSpec& spec = stack_.spec();
  for (std::size_t i = 1; i + 1 < res.via_seq.size(); ++i) {
    txn.add_via(res.via_seq[i]);
  }
  for (std::size_t j = 0; j + 1 < res.via_seq.size(); ++j) {
    const Point u = res.via_seq[j];
    const Point w = res.via_seq[j + 1];
    const Layer& layer = stack_.layer(res.hop_layers[j]);
    Rect box =
        hull_strip_box(spec, layer.orientation(), u, w, cfg_.radius);
    auto spans =
        trace_path(layer, stack_.pool(), spec.grid_of_via(u),
                   spec.grid_of_via(w), box, cfg_.max_trace_nodes, nullptr,
                   cfg_.via_avoidance ? spec.period() : 0, &cursors_,
                   nullptr, &fs_);
    if (!spans) {
      // Rare self-interference between hops of this very path: abandon the
      // attempt; the caller falls through to rip-up around the hop start.
      txn.rollback();
      *rip_center = u;
      return false;
    }
    txn.add_hop(res.hop_layers[j], std::move(*spans));
  }
  txn.commit(RouteStrategy::kLee);
  return true;
}

bool Router::route_connection(const Connection& c) {
  assert(db_.has_value());
  if (db_->routed(c.id)) return true;  // already routed (Sec 8.4)

  RouteTransaction txn(stack_, *db_, c.id, &txn_counters_, &cache_feed_);
  if (c.a == c.b) {
    txn.commit(RouteStrategy::kTrivial);
    return true;
  }

  int rounds = 0;
  while (true) {
    {
      ScopedTimer t(stats_.sec_zero_via);
      if (cfg_.enable_zero_via && try_zero_via(txn, c)) return true;
    }
    {
      ScopedTimer t(stats_.sec_one_via);
      if (cfg_.enable_one_via && try_one_via(txn, c)) return true;
      if (cfg_.enable_two_via && try_two_via(txn, c)) return true;
    }
    if (!cfg_.enable_lee) return false;
    Point rip_center{};
    {
      ScopedTimer t(stats_.sec_lee);
      if (try_lee(txn, c, &rip_center)) return true;
    }
    if (!cfg_.enable_ripup || rounds >= cfg_.max_rip_rounds) return false;
    ScopedTimer t(stats_.sec_ripup);
    if (rip_up(txn, c, rip_center) == 0) return false;  // nothing to remove
    ++rounds;
    // Restart the attempt from the beginning (Sec 8.3).
  }
}

void Router::unroute(ConnId id) {
  if (db_->routed(id)) {
    RouteTransaction::rip_out(stack_, *db_, id, &txn_counters_,
                              &cache_feed_);
  }
  // Open and drop a transaction: clears the remembered geometry so the
  // caller rebuilds from scratch.
  RouteTransaction txn(stack_, *db_, id, &txn_counters_, &cache_feed_);
}

void Router::prepare(const ConnectionList& conns) {
  conns_ = conns;
  if (cfg_.sort_connections) sort_connections(conns_);

  ConnId max_id = -1;
  for (const Connection& c : conns_) max_id = std::max(max_id, c.id);
  db_.emplace(static_cast<std::size_t>(max_id + 1));
  stats_ = RouterStats{};
  stats_.total = static_cast<int>(conns_.size());
  txn_counters_ = TxnCounters{};
  ripped_.clear();
}

std::size_t Router::count_unrouted() const {
  std::size_t n = 0;
  for (const Connection& c : conns_) {
    if (!db_->routed(c.id)) ++n;
  }
  return n;
}

void Router::finish() { recompute_final_stats(); }

bool Router::route_all(const ConnectionList& conns) {
  prepare(conns);

  // One pass suffices in the absence of rip-ups; otherwise further passes
  // re-do the ripped connections. `progress` is true only while each pass
  // leaves fewer unrouted connections — this stops infinite looping on
  // impossible problems (Sec 8.4).
  std::size_t prev_unrouted = conns_.size() + 1;
  for (int pass = 0; pass < cfg_.max_passes; ++pass) {
    const std::size_t unrouted = count_unrouted();
    if (unrouted == 0 || unrouted >= prev_unrouted) break;
    prev_unrouted = unrouted;
    ++stats_.passes;
    for (const Connection& c : conns_) {
      if (db_->routed(c.id)) continue;
      route_connection(c);
      put_back();
    }
  }

  finish();
  return stats_.failed == 0;
}

void Router::recompute_final_stats() {
  stats_.routed = 0;
  stats_.failed = 0;
  for (int i = 0; i < kNumRouteStrategies; ++i) stats_.by_strategy[i] = 0;
  for (const Connection& c : conns_) {
    const RouteRecord& r = db_->rec(c.id);
    if (r.status == RouteStatus::kRouted) {
      ++stats_.routed;
      ++stats_.by_strategy[static_cast<int>(r.strategy)];
    } else {
      ++stats_.failed;
    }
  }
  stats_.vias_added = db_->total_vias();
}

}  // namespace grr
