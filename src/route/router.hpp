// The complete router (paper Secs 5-8): connection sorting, optimal zero-
// and one-via strategies, the generalized Lee's algorithm, and rip-up with
// put-back, applied as "a collection of strategies of increasing
// desperation" under a multi-pass loop with the progress rule of Sec 8.4.
//
// All board mutation flows through RouteTransaction; all board reads go
// through const queries with a per-router CursorCache carrying the paper's
// moving-cursor locality hints. This is the serial reference engine; the
// parallel BatchRouter drives the same machinery batch-wise.
#pragma once

#include <optional>

#include "layer/cursor_cache.hpp"
#include "layer/layer_stack.hpp"
#include "route/config.hpp"
#include "route/connection.hpp"
#include "route/lee.hpp"
#include "route/route_db.hpp"
#include "route/sorting.hpp"
#include "route/transaction.hpp"

namespace grr {

struct RouterStats {
  int total = 0;
  int routed = 0;
  int failed = 0;
  int by_strategy[kNumRouteStrategies] = {};  // indexed by RouteStrategy
  long rip_ups = 0;         // connections ripped up (rip events)
  long vias_added = 0;      // intermediate vias in the final routing
  long lee_searches = 0;
  long lee_expansions = 0;
  long lee_gap_nodes = 0;  // free gaps visited/replayed by Lee expansions
  long two_via_candidates = 0;  // intermediate vias tried by the ablation
  int passes = 0;

  /// Per-strategy wall time — the paper's tuning methodology leaned on
  /// "profiles of the CPU usage of each procedure" (Sec 12); on difficult
  /// boards Lee's algorithm should dominate ("well over 90% of CPU time").
  double sec_zero_via = 0;
  double sec_one_via = 0;
  double sec_lee = 0;
  double sec_ripup = 0;
  double sec_putback = 0;

  /// Percentage of routed connections completed by Lee's algorithm.
  double pct_lee() const {
    return routed ? 100.0 *
                        by_strategy[static_cast<int>(RouteStrategy::kLee)] /
                        routed
                  : 0.0;
  }
  double vias_per_conn() const {
    return routed ? static_cast<double>(vias_added) / routed : 0.0;
  }
  /// Percentage routed by the optimal (zero-/one-via) strategies; the paper
  /// wants this around 90% for completable problems.
  double pct_optimal() const {
    int opt = by_strategy[static_cast<int>(RouteStrategy::kZeroVia)] +
              by_strategy[static_cast<int>(RouteStrategy::kOneVia)] +
              by_strategy[static_cast<int>(RouteStrategy::kTrivial)];
    return routed ? 100.0 * opt / routed : 0.0;
  }
};

class Router {
 public:
  explicit Router(LayerStack& stack, RouterConfig cfg = {});

  /// Route a whole problem: sorts the connections, then runs passes until
  /// everything is routed or a pass makes no progress. Returns true iff all
  /// connections routed.
  bool route_all(const ConnectionList& conns);

  /// Route (or re-route) a single connection with the full strategy ladder.
  /// Rip-up victims are left for put_back(); route_all calls it after every
  /// connection, external callers (e.g. the length tuner) should too.
  bool route_connection(const Connection& c);

  /// Re-insert as many ripped-up connections as possible (Sec 8.3).
  void put_back();

  /// The pieces of route_all, exposed so an alternative driver (the batch
  /// router) can reuse the setup and the final accounting around its own
  /// pass loop: prepare() sorts and resets, count_unrouted() feeds the
  /// progress rule, finish() recomputes the final statistics.
  void prepare(const ConnectionList& conns);
  std::size_t count_unrouted() const;
  void finish();

  RouteDB& db() { return *db_; }
  const RouteDB& db() const { return *db_; }
  LayerStack& stack() { return stack_; }
  const RouterConfig& config() const { return cfg_; }
  /// Swap the active configuration (used by the improvement pass to
  /// disable rip-up temporarily).
  void set_config(const RouterConfig& cfg) { cfg_ = cfg; }
  RouterStats& stats() { return stats_; }
  const RouterStats& stats() const { return stats_; }

  /// Reachability-cache counters of the serial engine (diagnostics).
  const FreeSpaceCache::Stats& lee_cache_stats() const {
    return lee_.cache().stats();
  }
  const ConnectionList& connections() const { return conns_; }

  /// Mutation-layer activity since prepare().
  const TxnCounters& txn_counters() const { return txn_counters_; }
  /// Journal receiving the grid rectangles of all metal this router adds or
  /// removes (the batch router's conflict detector). May be null. The
  /// router's own feed journal stays interposed in front of it, so the
  /// reachability cache keeps seeing every mutation either way.
  void set_journal(MutationJournal* journal) { cache_feed_.next = journal; }
  /// The router's mutation feed: out-of-band mutators (the improvement
  /// pass's putback) log here so the reachability cache stays precise.
  MutationJournal* mutation_feed() { return &cache_feed_; }

  /// Remove a routed connection's metal entirely (used by the length tuner
  /// to rebuild hops). Geometry memory is cleared.
  void unroute(ConnId id);

 private:
  friend class LengthTuner;
  friend class CostFnTuner;
  friend class BatchRouter;

  /// Zero-via attempt (Sec 8.1): on each layer whose orientation satisfies
  /// the radius constraint, try a direct Trace. Places and commits.
  bool try_zero_via(RouteTransaction& txn, const Connection& c);
  /// Place a direct trace between two via points under an open transaction
  /// (building block of one-via and tuning).
  bool place_direct(RouteTransaction& txn, Point a_via, Point b_via);
  /// One-via attempt (Sec 8.1): enumerate candidate intermediate vias in
  /// the two corner squares, best-to-worst. Places and commits.
  bool try_one_via(RouteTransaction& txn, const Connection& c);
  /// One-via placement between arbitrary end points without committing
  /// (building block of try_one_via and the two-via ablation).
  bool one_via_between(RouteTransaction& txn, Point a_via, Point b_via);
  /// The rejected two-via divide-and-conquer extension (Sec 8.1): pick an
  /// intermediate via, try zero-via to one pin and one-via to the other,
  /// over a pre-determined candidate order. Kept for bench_two_via.
  bool try_two_via(RouteTransaction& txn, const Connection& c);
  /// Lee attempt: search then realize (drill + Trace per hop).
  bool try_lee(RouteTransaction& txn, const Connection& c, Point* rip_center);
  /// Rip up the rippable connections near a point (Sec 8.3); returns the
  /// number of victims.
  int rip_up(RouteTransaction& txn, const Connection& c, Point center_via);

  void recompute_final_stats();

  LayerStack& stack_;
  RouterConfig cfg_;
  std::optional<RouteDB> db_;
  LeeSearch lee_;
  LeeResult lee_res_;    // reused across searches (zero-alloc steady state)
  FreeSpaceScratch fs_;  // reused by this router's trace/obstruction walks
  CursorCache cursors_;  // the paper's moving-cursor hints (Secs 4, 12)
  ConnectionList conns_;
  std::vector<ConnId> ripped_;  // pending put-back
  RouterStats stats_;
  TxnCounters txn_counters_;
  /// Feed for lee_'s reachability cache: every transaction this router
  /// opens journals here; try_lee drains it into the cache before each
  /// search. Chains to the externally registered journal (set_journal).
  MutationJournal cache_feed_;
};

}  // namespace grr
