// Per-worker mutable search state (search/commit split).
//
// Planning is read-only with respect to the shared board, but searching is
// not stateless: the moving-cursor hints (Secs 4, 12), the Lee mark arrays,
// and the tentative metal of the plan under construction all mutate as the
// search runs. Bundling them per worker keeps the shared LayerStack free of
// any mutable search state, which is what lets many planners run against
// one board concurrently.
#pragma once

#include <vector>

#include "layer/cursor_cache.hpp"
#include "layer/plan_overlay.hpp"
#include "route/lee.hpp"

namespace grr {

struct SearchScratch {
  CursorCache cursors;   // channel walk-start hints
  PlanOverlay overlay;   // tentative metal of the plan being built
  LeeSearch lee;         // owns the per-search mark arrays + strip cache
  LeeResult lee_res;     // reused search result (zero-alloc steady state)
  FreeSpaceScratch free_space;  // reused by the planner's trace walks
  std::vector<Point> expanded;  // wavefront log -> read footprint

  explicit SearchScratch(const LayerStack& stack) : lee(stack) {}
};

}  // namespace grr
