#include "route/shard_map.hpp"

#include <algorithm>
#include <cmath>

namespace grr {

ShardMap::ShardMap(Rect extent, int target_shards) : extent_(extent) {
  const Coord w = extent.x.empty() ? 0 : extent.x.length();
  const Coord h = extent.y.empty() ? 0 : extent.y.length();
  if (target_shards >= 2 && w > 0 && h > 0) {
    // R <= C with R * C near the target. The Latin-square wave schedule
    // runs R shards concurrently for C waves, so R is the parallelism and
    // a square-ish grid maximizes it for a given shard count.
    int r = std::max(1, static_cast<int>(std::sqrt(
                            static_cast<double>(target_shards))));
    int c = std::max(r, (target_shards + r - 1) / r);
    // A cell narrower than a few grid lines would put almost every cover
    // on a boundary; clamp to the extent.
    rows_ = std::min(r, static_cast<int>(std::max<Coord>(1, h / 4)));
    cols_ = std::min(c, static_cast<int>(std::max<Coord>(1, w / 4)));
    if (rows_ > cols_) std::swap(rows_, cols_);
  }
  row_lo_.resize(static_cast<std::size_t>(rows_) + 1);
  col_lo_.resize(static_cast<std::size_t>(cols_) + 1);
  for (int i = 0; i <= rows_; ++i) {
    row_lo_[static_cast<std::size_t>(i)] =
        extent.y.lo + static_cast<Coord>((static_cast<long>(h) * i) / rows_);
  }
  for (int j = 0; j <= cols_; ++j) {
    col_lo_[static_cast<std::size_t>(j)] =
        extent.x.lo + static_cast<Coord>((static_cast<long>(w) * j) / cols_);
  }
}

Rect ShardMap::cell(int shard) const {
  const int r = row_of(shard);
  const int c = col_of(shard);
  return {{col_lo_[static_cast<std::size_t>(c)],
           col_lo_[static_cast<std::size_t>(c) + 1] - 1},
          {row_lo_[static_cast<std::size_t>(r)],
           row_lo_[static_cast<std::size_t>(r) + 1] - 1}};
}

int ShardMap::row_band(Coord y) const {
  if (!extent_.y.contains(y)) return -1;
  // Bands are near-equal; a binary search over rows_ + 1 cuts is plenty.
  const auto it = std::upper_bound(row_lo_.begin() + 1, row_lo_.end(), y);
  return static_cast<int>(it - row_lo_.begin()) - 1;
}

int ShardMap::col_band(Coord x) const {
  if (!extent_.x.contains(x)) return -1;
  const auto it = std::upper_bound(col_lo_.begin() + 1, col_lo_.end(), x);
  return static_cast<int>(it - col_lo_.begin()) - 1;
}

int ShardMap::shard_of(const Rect& r) const {
  if (r.x.empty() || r.y.empty()) return kCross;
  const int r0 = row_band(r.y.lo);
  const int c0 = col_band(r.x.lo);
  if (r0 < 0 || c0 < 0) return kCross;
  if (row_band(r.y.hi) != r0 || col_band(r.x.hi) != c0) return kCross;
  return r0 * cols_ + c0;
}

Rect ShardMap::bbox_of(const std::vector<Rect>& rects) {
  Rect box{{0, -1}, {0, -1}};  // empty
  for (const Rect& r : rects) {
    if (r.x.empty() || r.y.empty()) continue;
    if (box.x.empty()) {
      box = r;
    } else {
      box.x = box.x.hull(r.x);
      box.y = box.y.hull(r.y);
    }
  }
  return box;
}

void ShardMap::wave_shards(int wave, std::vector<int>* out) const {
  out->clear();
  for (int r = 0; r < rows_; ++r) {
    out->push_back(r * cols_ + (r + wave) % cols_);
  }
}

}  // namespace grr
