// Spatial shard map for the batch router's region-parallel commit phase.
//
// The board extent is cut into an R x C grid of rectangular cells
// (R rows by C columns, R <= C). A plan whose write cover fits inside one
// cell belongs to that shard; anything that straddles a cell boundary is
// "cross-shard" and falls back to the ordered serial commit path.
//
// The point of the grid shape is physical channel exclusivity, not mere
// rectangle disjointness: a horizontal channel object spans the full board
// width at one y, a vertical channel the full height at one x, so two
// shards can mutate the board concurrently only when their cells share no
// row band (their horizontal channels are distinct objects) and no column
// band (ditto vertical channels). The wave schedule below is a Latin
// square over the grid — wave w holds cells {(r, (r + w) mod C)}, one per
// row, all in distinct columns — so every cell is installed in exactly one
// of C waves and the shards inside one wave never touch the same Channel,
// via-map cell, or pool slot.
#pragma once

#include <vector>

#include "geom/geom.hpp"

namespace grr {

class ShardMap {
 public:
  /// A cover that straddles cell boundaries (or is empty) maps here.
  static constexpr int kCross = -1;

  /// Cut `extent` (grid coordinates) into about `target_shards` cells,
  /// R x C with R <= C. Degenerate extents or target_shards < 2 produce a
  /// single cell (everything lands in shard 0).
  ShardMap(Rect extent, int target_shards);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int count() const { return rows_ * cols_; }
  const Rect& extent() const { return extent_; }

  /// Cell rectangle of one shard. Cells tile the extent exactly.
  Rect cell(int shard) const;

  int row_of(int shard) const { return shard / cols_; }
  int col_of(int shard) const { return shard % cols_; }

  /// Shard whose cell wholly contains `r`, or kCross. An empty rect is
  /// kCross too (the caller installs coverless plans serially).
  int shard_of(const Rect& r) const;

  /// Bounding box of a set of rectangles (empty rect for an empty set) —
  /// the binning key for a plan's write cover.
  static Rect bbox_of(const std::vector<Rect>& rects);

  /// Number of waves in the Latin-square schedule (= cols).
  int num_waves() const { return cols_; }

  /// The shards of wave w: one per row, pairwise distinct rows AND columns.
  void wave_shards(int wave, std::vector<int>* out) const;

 private:
  /// Row band index of a y coordinate / column band index of an x
  /// coordinate, or -1 if outside the extent.
  int row_band(Coord y) const;
  int col_band(Coord x) const;

  Rect extent_;
  int rows_ = 1;
  int cols_ = 1;
  // Interior cut coordinates: row i covers y in [row_lo_[i], row_lo_[i+1]).
  std::vector<Coord> row_lo_;  // size rows_ + 1
  std::vector<Coord> col_lo_;  // size cols_ + 1
};

}  // namespace grr
