#include "route/sorting.hpp"

#include <algorithm>
#include <limits>

namespace grr {

void sort_connections(ConnectionList& conns) {
  std::sort(conns.begin(), conns.end(),
            [](const Connection& x, const Connection& y) {
              return sort_key(x) < sort_key(y);
            });
}

long long minimal_path_count(Coord dx, Coord dy) {
  // C(dx+dy, dx) with saturation.
  const long long kMax = std::numeric_limits<long long>::max();
  long long r = 1;
  Coord k = std::min(dx, dy);
  Coord n = dx + dy;
  for (Coord i = 1; i <= k; ++i) {
    // r = r * (n - k + i) / i, guarding overflow.
    long long factor = n - k + i;
    if (r > kMax / factor) return kMax;
    r = r * factor / i;
  }
  return r;
}

}  // namespace grr
