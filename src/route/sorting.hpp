// Connection sorting (paper Sec 6).
//
// The easiest connection is the one with the fewest minimal Manhattan paths
// between its end points — C(dx+dy, dx) of them. An approximation of that
// ordering sorts by min(dx,dy) first (straightness) and max(dx,dy) second
// (length within straightness): the shortest straight connections first,
// the longest diagonal connections last.
#pragma once

#include "route/connection.hpp"

namespace grr {

struct ConnectionSortKey {
  Coord straightness;  // min(dx, dy)
  Coord length;        // max(dx, dy)
  ConnId id;           // deterministic tiebreak

  friend auto operator<=>(const ConnectionSortKey&,
                          const ConnectionSortKey&) = default;
};

inline ConnectionSortKey sort_key(const Connection& c) {
  Coord dx = c.dx(), dy = c.dy();
  return {std::min(dx, dy), std::max(dx, dy), c.id};
}

/// Sort easiest-first.
void sort_connections(ConnectionList& conns);

/// Exact number of minimal Manhattan paths C(dx+dy, dx), saturating at
/// INT64_MAX (used by tests to validate the approximation).
long long minimal_path_count(Coord dx, Coord dy);

}  // namespace grr
