// A small reusable worker pool for the batch router's planning phase.
//
// The batch router alternates strictly between a parallel planning phase
// and a serial commit phase, so the pool's job is only to run one indexed
// loop at a time: for_indices(n, fn) hands out indices to the workers and
// blocks until all are done. The generation counter and the done count are
// both guarded by the mutex, which gives the two barriers the batch router
// needs: board mutations made before for_indices happen-before the
// workers' reads, and the workers' plan writes happen-before the caller's
// return.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace grr {

class ThreadPool {
 public:
  using Job = std::function<void(int worker, std::size_t index)>;

  explicit ThreadPool(int threads) {
    workers_.reserve(static_cast<std::size_t>(threads));
    for (int i = 0; i < threads; ++i) {
      workers_.emplace_back([this, i] { worker_loop(i); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Run fn(worker, i) for every i in [0, count); workers claim indices
  /// dynamically. Blocks until the whole range is done. If any invocation
  /// threw, the first exception (in completion order) is rethrown here
  /// after the drain — the remaining indices still run, and the pool stays
  /// usable for the next call.
  void for_indices(std::size_t count, const Job& fn) {
    if (count == 0) return;
    std::unique_lock<std::mutex> lk(mu_);
    job_ = &fn;
    count_ = count;
    error_ = nullptr;
    next_.store(0, std::memory_order_relaxed);
    pending_ = workers_.size();
    ++generation_;
    work_cv_.notify_all();
    done_cv_.wait(lk, [this] { return pending_ == 0; });
    job_ = nullptr;
    if (error_ != nullptr) {
      std::exception_ptr e = error_;
      error_ = nullptr;
      lk.unlock();
      std::rethrow_exception(e);
    }
  }

 private:
  void worker_loop(int id) {
    std::uint64_t seen = 0;
    while (true) {
      const Job* job = nullptr;
      std::size_t count = 0;
      {
        std::unique_lock<std::mutex> lk(mu_);
        work_cv_.wait(lk, [&] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
        job = job_;
        count = count_;
      }
      for (std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
           i < count;
           i = next_.fetch_add(1, std::memory_order_relaxed)) {
        try {
          (*job)(id, i);
        } catch (...) {
          std::lock_guard<std::mutex> lk(mu_);
          if (error_ == nullptr) error_ = std::current_exception();
        }
      }
      {
        std::lock_guard<std::mutex> lk(mu_);
        if (--pending_ == 0) done_cv_.notify_one();
      }
    }
  }

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const Job* job_ = nullptr;
  std::size_t count_ = 0;
  std::size_t pending_ = 0;
  std::uint64_t generation_ = 0;
  std::exception_ptr error_ = nullptr;
  bool stop_ = false;
  std::atomic<std::size_t> next_{0};
};

}  // namespace grr
