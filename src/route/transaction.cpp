#include "route/transaction.hpp"

#include <cassert>

namespace grr {
namespace {

void log_geom(MutationJournal* journal, const LayerStack& stack,
              const RouteGeom& geom) {
  if (journal == nullptr) return;
  for (Point v : geom.vias) journal->log(stack.grid_rect_of_via(v));
  for (const RouteHop& hop : geom.hops) {
    for (const ChannelSpan& cs : hop.spans) {
      journal->log(stack.grid_rect_of({hop.layer, cs.channel, cs.span}));
    }
  }
}

void log_live_segs(MutationJournal* journal, const LayerStack& stack,
                   const std::vector<SegId>& segs) {
  if (journal == nullptr) return;
  for (SegId s : segs) {
    journal->log(stack.grid_rect_of(stack.placed_span(s)));
  }
}

}  // namespace

RouteTransaction::RouteTransaction(LayerStack& stack, RouteDB& db, ConnId id,
                                   TxnCounters* counters,
                                   MutationJournal* journal)
    : stack_(stack), db_(db), id_(id), counters_(counters),
      journal_(journal) {
  db_.begin(id_);
  if (counters_ != nullptr) ++counters_->begins;
}

RouteTransaction::~RouteTransaction() {
  if (!committed_) rollback();
}

void RouteTransaction::log_via(Point via) {
  if (journal_ != nullptr) {
    journal_->log(stack_.grid_rect_of_via(via));
  }
}

void RouteTransaction::log_spans(LayerId layer,
                                 const std::vector<ChannelSpan>& spans) {
  if (journal_ == nullptr) return;
  for (const ChannelSpan& cs : spans) {
    journal_->log(stack_.grid_rect_of({layer, cs.channel, cs.span}));
  }
}

void RouteTransaction::add_via(Point via) {
  assert(!committed_);
  log_via(via);
  db_.add_via(stack_, id_, via);
  if (counters_ != nullptr) ++counters_->vias;
}

void RouteTransaction::add_hop(LayerId layer, std::vector<ChannelSpan> spans) {
  assert(!committed_);
  log_spans(layer, spans);
  db_.add_hop(stack_, id_, layer, std::move(spans));
  if (counters_ != nullptr) ++counters_->hops;
}

void RouteTransaction::commit(RouteStrategy strategy) {
  assert(!committed_);
  db_.commit(id_, strategy);
  committed_ = true;
  if (counters_ != nullptr) ++counters_->commits;
}

void RouteTransaction::rollback() {
  assert(!committed_);
  // Removed metal was already journalled when it was added.
  db_.abort(stack_, id_);
  if (counters_ != nullptr) ++counters_->rollbacks;
}

void RouteTransaction::rip(ConnId victim) {
  rip_out(stack_, db_, victim, counters_, journal_);
}

bool RouteTransaction::try_install(const RoutePlan& plan) {
  assert(plan.found);
  for (Point v : plan.vias) {
    if (!stack_.via_free(v)) {
      rollback();
      if (counters_ != nullptr) ++counters_->install_conflicts;
      return false;
    }
    add_via(v);
  }
  for (const RouteHop& hop : plan.hops) {
    for (const ChannelSpan& cs : hop.spans) {
      if (!stack_.span_free({hop.layer, cs.channel, cs.span})) {
        rollback();
        if (counters_ != nullptr) ++counters_->install_conflicts;
        return false;
      }
    }
    add_hop(hop.layer, hop.spans);
  }
  commit(plan.strategy);
  if (counters_ != nullptr) ++counters_->installs;
  return true;
}

bool RouteTransaction::putback(LayerStack& stack, RouteDB& db, ConnId id,
                               TxnCounters* counters,
                               MutationJournal* journal) {
  bool ok = db.try_putback(stack, id);
  if (ok) {
    log_geom(journal, stack, db.rec(id).geom);
    if (counters != nullptr) ++counters->putbacks;
  } else if (counters != nullptr) {
    ++counters->putback_failures;
  }
  return ok;
}

void RouteTransaction::rip_out(LayerStack& stack, RouteDB& db, ConnId id,
                               TxnCounters* counters,
                               MutationJournal* journal) {
  log_live_segs(journal, stack, db.rec(id).segs);
  db.rip(stack, id);
  if (counters != nullptr) ++counters->rips;
}

void RouteTransaction::adopt_geometry(RouteDB& db, ConnId id, RouteGeom geom,
                                      RouteStrategy strategy) {
  db.adopt_geometry(id, std::move(geom), strategy);
}

}  // namespace grr
