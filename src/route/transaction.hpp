// RouteTransaction: the single choke point for board mutation.
//
// Every change to the shared wiring state — drilling, placing, committing,
// aborting, ripping up, putting back — flows through this class, which
// journals what it touches and counts what it does. Search code (the
// planner, LeeSearch, the free-space algorithms) is read-only by
// construction; RouteDB's mutators are private and befriend only this
// class. The journal is what makes speculative parallel routing safe: the
// commit thread replays plans in serial order and uses the journal's
// touched-rectangle log to detect when a plan's read footprint has been
// invalidated by an earlier commit.
#pragma once

#include <vector>

#include "layer/layer_stack.hpp"
#include "route/plan.hpp"
#include "route/route_db.hpp"

namespace grr {

/// Running tally of mutation-layer activity (observability; cheap).
struct TxnCounters {
  long begins = 0;
  long vias = 0;       // vias drilled (including later aborted ones)
  long hops = 0;       // hops placed (including later aborted ones)
  long commits = 0;
  long rollbacks = 0;
  long rips = 0;
  long putbacks = 0;
  long putback_failures = 0;
  long installs = 0;           // whole plans installed verbatim
  long install_conflicts = 0;  // plans rejected by the live-board check
};

/// Grid-coordinate rectangles of all metal added or removed since the last
/// clear(). Removal is logged too: a rip frees space a speculative plan did
/// not see, which invalidates the plan just as surely as new metal does.
///
/// Journals chain: a rectangle logged here is forwarded to `next` (and so
/// on down the chain). The router interposes its own journal — the feed for
/// the per-worker reachability caches — in front of whatever journal the
/// caller registered, so both observe every mutation without the mutation
/// sites knowing about either. clear() drains only this journal; the chain
/// is left alone.
struct MutationJournal {
  std::vector<Rect> touched;
  MutationJournal* next = nullptr;

  void log(const Rect& r) {
    touched.push_back(r);
    for (MutationJournal* j = next; j != nullptr; j = j->next) {
      j->touched.push_back(r);
    }
  }
  void clear() { touched.clear(); }
};

class RouteTransaction {
 public:
  /// Opens a construction for `id` (the old RouteDB::begin). The connection
  /// must have no live segments.
  RouteTransaction(LayerStack& stack, RouteDB& db, ConnId id,
                   TxnCounters* counters = nullptr,
                   MutationJournal* journal = nullptr);
  /// Rolls back automatically if neither committed nor rolled back.
  ~RouteTransaction();

  RouteTransaction(const RouteTransaction&) = delete;
  RouteTransaction& operator=(const RouteTransaction&) = delete;

  /// Drill an intermediate via for the connection under construction.
  void add_via(Point via);
  /// Place one trace (hop) for the connection under construction.
  void add_hop(LayerId layer, std::vector<ChannelSpan> spans);
  /// Finish a successful construction.
  void commit(RouteStrategy strategy);
  /// Remove everything placed so far; the transaction stays open and can
  /// place again (the one-via candidate loop does exactly this).
  void rollback();
  /// Rip up another routed connection blocking this one (Sec 8.3).
  void rip(ConnId victim);

  /// Validate a precomputed plan against the live board and install it:
  /// every via site and span is re-checked before placement. On any miss
  /// the partial placement is rolled back, the transaction stays open, and
  /// false is returned (the caller re-routes serially).
  bool try_install(const RoutePlan& plan);

  bool committed() const { return committed_; }
  ConnId id() const { return id_; }

  /// Out-of-band mutations that do not construct a route but still must
  /// flow through the choke point.
  /// Re-insert a ripped connection exactly where it was (Sec 8.3).
  static bool putback(LayerStack& stack, RouteDB& db, ConnId id,
                      TxnCounters* counters = nullptr,
                      MutationJournal* journal = nullptr);
  /// Rip a routed connection outside any construction (tuners).
  static void rip_out(LayerStack& stack, RouteDB& db, ConnId id,
                      TxnCounters* counters = nullptr,
                      MutationJournal* journal = nullptr);
  /// Replace an unrouted connection's remembered geometry (snapshot
  /// restore before putback; mutates the database only, not the board).
  static void adopt_geometry(RouteDB& db, ConnId id, RouteGeom geom,
                             RouteStrategy strategy);

 private:
  void log_via(Point via);
  void log_spans(LayerId layer, const std::vector<ChannelSpan>& spans);

  LayerStack& stack_;
  RouteDB& db_;
  ConnId id_;
  TxnCounters* counters_;
  MutationJournal* journal_;
  bool committed_ = false;
};

}  // namespace grr
