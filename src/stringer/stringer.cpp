#include "stringer/stringer.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

namespace grr {
namespace {

struct Chain {
  std::vector<Point> points;  // via coordinates, in chain order
  int terminator = -1;        // index into board.terminators(), or -1
  long length = 0;
};

long chain_length(const std::vector<Point>& pts) {
  long len = 0;
  for (std::size_t i = 0; i + 1 < pts.size(); ++i) {
    len += manhattan(pts[i], pts[i + 1]);
  }
  return len;
}

/// Spatial index over the board's terminator pins for the greedy chain's
/// nearest-unused-terminator query. The linear scan it replaces is O(all
/// terminators) per net — the dominant cost of stringing a giant board,
/// where every net is an ECL transmission line needing a terminator.
/// nearest() reproduces the scan's selection exactly: the lexicographic
/// minimum of (manhattan distance, terminator index) over unused entries,
/// found by examining bucket rings outward until no closer bucket can
/// exist. Positions are fixed for a board; only the used flags move.
class TermIndex {
 public:
  TermIndex(const Board& board, const std::vector<char>& term_used)
      : used_(term_used) {
    const auto& terms = board.terminators();
    pos_.reserve(terms.size());
    for (const NetPin& t : terms) pos_.push_back(board.pin_via(t));
    if (pos_.empty()) return;
    lo_ = pos_[0];
    Point hi = pos_[0];
    for (Point p : pos_) {
      lo_.x = std::min(lo_.x, p.x);
      lo_.y = std::min(lo_.y, p.y);
      hi.x = std::max(hi.x, p.x);
      hi.y = std::max(hi.y, p.y);
    }
    bx_ = (hi.x - lo_.x) / kBucket + 1;
    by_ = (hi.y - lo_.y) / kBucket + 1;
    buckets_.resize(static_cast<std::size_t>(bx_) *
                    static_cast<std::size_t>(by_));
    for (std::size_t t = 0; t < pos_.size(); ++t) {
      buckets_[bucket_of(pos_[t])].push_back(t);
    }
  }

  /// Index of the unused terminator minimizing (manhattan(p, pos), index),
  /// or -1 if all are used. Identical to the full linear scan.
  int nearest(Point p) const {
    if (pos_.empty()) return -1;
    long best = std::numeric_limits<long>::max();
    int best_t = -1;
    const Coord cx = clamp_bx((p.x - lo_.x) / kBucket);
    const Coord cy = clamp_by((p.y - lo_.y) / kBucket);
    const Coord max_ring = std::max(bx_, by_);
    for (Coord ring = 0; ring < max_ring; ++ring) {
      // Any point of a ring-k bucket is at least (k-1)*kBucket away, so
      // once that bound passes the incumbent no closer (or equal-distance,
      // lower-index) candidate remains undiscovered: equal-distance ones
      // sit in rings the bound has not excluded yet.
      if (best_t >= 0 && static_cast<long>(ring - 1) * kBucket > best) break;
      const Coord x0 = clamp_bx(cx - ring), x1 = clamp_bx(cx + ring);
      const Coord y0 = clamp_by(cy - ring), y1 = clamp_by(cy + ring);
      for (Coord gy = y0; gy <= y1; ++gy) {
        for (Coord gx = x0; gx <= x1; ++gx) {
          // Ring interior was examined by earlier rings.
          if (gx != x0 && gx != x1 && gy != y0 && gy != y1 &&
              ring > 0) {
            continue;
          }
          // Clamping can re-map an outer ring onto border buckets already
          // visited; the (d, t) minimum is idempotent, so revisits only
          // cost time, and only at the board edge.
          for (std::size_t t :
               buckets_[static_cast<std::size_t>(gy) *
                            static_cast<std::size_t>(bx_) +
                        static_cast<std::size_t>(gx)]) {
            if (used_[t]) continue;
            const long d = manhattan(p, pos_[t]);
            if (d < best ||
                (d == best && static_cast<int>(t) < best_t)) {
              best = d;
              best_t = static_cast<int>(t);
            }
          }
        }
      }
    }
    return best_t;
  }

 private:
  static constexpr Coord kBucket = 4;  // via-coordinate units

  std::size_t bucket_of(Point p) const {
    return static_cast<std::size_t>((p.y - lo_.y) / kBucket) *
               static_cast<std::size_t>(bx_) +
           static_cast<std::size_t>((p.x - lo_.x) / kBucket);
  }
  Coord clamp_bx(Coord v) const {
    return std::max<Coord>(0, std::min<Coord>(bx_ - 1, v));
  }
  Coord clamp_by(Coord v) const {
    return std::max<Coord>(0, std::min<Coord>(by_ - 1, v));
  }

  const std::vector<char>& used_;
  std::vector<Point> pos_;
  Point lo_{0, 0};
  Coord bx_ = 1;
  Coord by_ = 1;
  std::vector<std::vector<std::size_t>> buckets_;
};

/// Greedy nearest-neighbor chain from a fixed starting pin. `eligible`
/// enforces the all-outputs-before-inputs rule for ECL nets.
Chain greedy_chain(const Board& board, const Net& net, std::size_t start,
                   const TermIndex& tindex) {
  const std::size_t n = net.pins.size();
  std::vector<char> visited(n, 0);
  std::vector<Point> vias(n);
  std::size_t outputs_left = 0;
  for (std::size_t i = 0; i < n; ++i) {
    vias[i] = board.pin_via(net.pins[i]);
    if (net.pins[i].role == PinRole::kOutput) ++outputs_left;
  }

  Chain chain;
  chain.points.push_back(vias[start]);
  visited[start] = 1;
  if (net.pins[start].role == PinRole::kOutput) --outputs_left;

  for (std::size_t step = 1; step < n; ++step) {
    Point cur = chain.points.back();
    long best = std::numeric_limits<long>::max();
    std::size_t best_i = n;
    for (std::size_t i = 0; i < n; ++i) {
      if (visited[i]) continue;
      // While unvisited outputs remain, only outputs may be appended.
      if (outputs_left > 0 && net.pins[i].role != PinRole::kOutput) continue;
      long d = manhattan(cur, vias[i]);
      if (d < best) {
        best = d;
        best_i = i;
      }
    }
    visited[best_i] = 1;
    if (net.pins[best_i].role == PinRole::kOutput) --outputs_left;
    chain.points.push_back(vias[best_i]);
  }

  if (net.needs_terminator && !board.terminators().empty()) {
    chain.terminator = tindex.nearest(chain.points.back());
    if (chain.terminator >= 0) {
      chain.points.push_back(
          board.pin_via(board.terminators()[static_cast<std::size_t>(
              chain.terminator)]));
    }
  }
  chain.length = chain_length(chain.points);
  return chain;
}

Chain random_chain(const Board& board, const Net& net,
                   const std::vector<char>& term_used, std::mt19937& rng) {
  std::vector<std::size_t> outs, ins;
  for (std::size_t i = 0; i < net.pins.size(); ++i) {
    (net.pins[i].role == PinRole::kOutput ? outs : ins).push_back(i);
  }
  std::shuffle(outs.begin(), outs.end(), rng);
  std::shuffle(ins.begin(), ins.end(), rng);

  Chain chain;
  for (std::size_t i : outs) chain.points.push_back(board.pin_via(net.pins[i]));
  for (std::size_t i : ins) chain.points.push_back(board.pin_via(net.pins[i]));

  if (net.needs_terminator && !board.terminators().empty()) {
    std::vector<std::size_t> free_terms;
    for (std::size_t t = 0; t < board.terminators().size(); ++t) {
      if (!term_used[t]) free_terms.push_back(t);
    }
    if (!free_terms.empty()) {
      std::uniform_int_distribution<std::size_t> pick(0,
                                                      free_terms.size() - 1);
      chain.terminator = static_cast<int>(free_terms[pick(rng)]);
      chain.points.push_back(
          board.pin_via(board.terminators()[static_cast<std::size_t>(
              chain.terminator)]));
    }
  }
  chain.length = chain_length(chain.points);
  return chain;
}

/// Prim's minimum spanning tree over the net's pins; the edges become the
/// pin-to-pin connections. Strictly no longer than any chain through the
/// same pins.
std::vector<std::pair<Point, Point>> spanning_tree_edges(
    const std::vector<Point>& pts) {
  std::vector<std::pair<Point, Point>> edges;
  if (pts.size() < 2) return edges;
  std::vector<char> in_tree(pts.size(), 0);
  std::vector<long> best(pts.size(), std::numeric_limits<long>::max());
  std::vector<std::size_t> parent(pts.size(), 0);
  in_tree[0] = 1;
  for (std::size_t i = 1; i < pts.size(); ++i) {
    best[i] = manhattan(pts[0], pts[i]);
  }
  for (std::size_t added = 1; added < pts.size(); ++added) {
    std::size_t pick = 0;
    long pick_d = std::numeric_limits<long>::max();
    for (std::size_t i = 0; i < pts.size(); ++i) {
      if (!in_tree[i] && best[i] < pick_d) {
        pick = i;
        pick_d = best[i];
      }
    }
    in_tree[pick] = 1;
    edges.emplace_back(pts[parent[pick]], pts[pick]);
    for (std::size_t i = 0; i < pts.size(); ++i) {
      if (in_tree[i]) continue;
      long d = manhattan(pts[pick], pts[i]);
      if (d < best[i]) {
        best[i] = d;
        parent[i] = pick;
      }
    }
  }
  return edges;
}

}  // namespace

StringingResult string_nets(const Board& board, StringingMethod method,
                            std::uint32_t seed) {
  const Netlist& nl = board.netlist();
  StringingResult result;
  result.terminators.assign(nl.nets.size(), NetPin{-1, 0, PinRole::kInput});
  std::vector<char> term_used(board.terminators().size(), 0);
  TermIndex tindex(board, term_used);
  std::mt19937 rng(seed);
  ConnId next_id = 0;

  for (std::size_t ni = 0; ni < nl.nets.size(); ++ni) {
    const Net& net = nl.nets[ni];
    if (net.pins.empty()) continue;

    // Tree stringing applies only where pin order is unimportant; ECL
    // transmission lines must stay chains.
    if (method == StringingMethod::kSpanningTree &&
        net.klass == SignalClass::kTTL) {
      std::vector<Point> pts;
      pts.reserve(net.pins.size());
      for (const NetPin& np : net.pins) pts.push_back(board.pin_via(np));
      for (const auto& [a, b] : spanning_tree_edges(pts)) {
        Connection c;
        c.id = next_id++;
        c.a = a;
        c.b = b;
        c.net = static_cast<NetId>(ni);
        c.klass = net.klass;
        result.connections.push_back(c);
        result.total_manhattan += manhattan(a, b);
      }
      continue;
    }

    Chain best;
    if (method == StringingMethod::kRandom) {
      best = random_chain(board, net, term_used, rng);
    } else {
      // Legal starts: any output pin; any pin if the net has no outputs
      // (TTL nets where pin order is unimportant).
      bool has_output = std::any_of(
          net.pins.begin(), net.pins.end(),
          [](const NetPin& p) { return p.role == PinRole::kOutput; });
      best.length = std::numeric_limits<long>::max();
      for (std::size_t s = 0; s < net.pins.size(); ++s) {
        if (has_output && net.pins[s].role != PinRole::kOutput) continue;
        Chain c = greedy_chain(board, net, s, tindex);
        if (c.length < best.length) best = std::move(c);
      }
    }

    if (best.terminator >= 0) {
      term_used[static_cast<std::size_t>(best.terminator)] = 1;
      result.terminators[ni] =
          board.terminators()[static_cast<std::size_t>(best.terminator)];
    }
    result.total_manhattan += best.length;

    for (std::size_t i = 0; i + 1 < best.points.size(); ++i) {
      Connection c;
      c.id = next_id++;
      c.a = best.points[i];
      c.b = best.points[i + 1];
      c.net = static_cast<NetId>(ni);
      c.klass = net.klass;
      result.connections.push_back(c);
    }
  }
  return result;
}

}  // namespace grr
