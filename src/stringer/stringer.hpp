// The stringer (paper Sec 3): converts nets into chains of pin-to-pin
// connections before routing.
//
// Starting at an output pin, the next nearest input pin is repeatedly added
// to the chain; for ECL nets the nearest free terminating resistor is
// appended at the end. Nets with multiple outputs may start at any output
// but all outputs must precede the inputs; for TTL nets any pin may start.
// The stringing is repeated for each legal starting pin and the shortest
// overall chain is kept.
//
// Random stringing is also provided: the paper reports a factor-of-25 run
// time difference between greedy and random stringing of the same problem.
#pragma once

#include <cstdint>
#include <random>

#include "board/board.hpp"
#include "route/connection.hpp"

namespace grr {

enum class StringingMethod {
  kGreedy,  // the paper's nearest-neighbor chaining
  kRandom,  // random pin order (outputs still precede inputs)
  /// Minimum spanning tree over the pins. The paper notes its chain
  /// stringer "is suboptimal. TTL allows nets to be joined by trees, not
  /// just chains" — this implements that improvement. ECL nets (which
  /// must remain transmission-line chains) still use the greedy chain.
  kSpanningTree,
};

struct StringingResult {
  ConnectionList connections;
  /// Terminator pins claimed per net (index = net id; {-1,0,...} if none).
  std::vector<NetPin> terminators;
  /// Total Manhattan length of all chains, in via units.
  long total_manhattan = 0;
};

StringingResult string_nets(const Board& board,
                            StringingMethod method = StringingMethod::kGreedy,
                            std::uint32_t seed = 1);

}  // namespace grr
