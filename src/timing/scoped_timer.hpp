// Scoped wall-clock accumulation. Hoisted out of the router so every
// engine phase (strategy ladders, batch planning, commit serialization)
// reports through the same utility; the paper's tuning methodology leaned
// on "profiles of the CPU usage of each procedure" (Sec 12).
#pragma once

#include <chrono>

namespace grr {

/// Accumulates wall time into a double (seconds) while in scope.
class ScopedTimer {
 public:
  explicit ScopedTimer(double& sink)
      : sink_(sink), start_(std::chrono::steady_clock::now()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    sink_ += std::chrono::duration<double>(
                 std::chrono::steady_clock::now() - start_)
                 .count();
  }

 private:
  double& sink_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace grr
