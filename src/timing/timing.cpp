#include "timing/timing.hpp"

#include <algorithm>
#include <deque>
#include <limits>

namespace grr {
namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

std::uint64_t pin_key(PartId part, int pin) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(part))
          << 32) |
         static_cast<std::uint32_t>(pin);
}

}  // namespace

std::vector<std::vector<double>> net_pin_delays(
    const Board& board, const StringingResult& strung, const RouteDB* db,
    const DelayModel& model) {
  const GridSpec& spec = board.spec();
  const Netlist& nl = board.netlist();

  // Connections per net, in stringer order.
  std::vector<std::vector<const Connection*>> by_net(nl.nets.size());
  for (const Connection& c : strung.connections) {
    if (c.net >= 0 && static_cast<std::size_t>(c.net) < by_net.size()) {
      by_net[static_cast<std::size_t>(c.net)].push_back(&c);
    }
  }

  auto conn_delay = [&](const Connection& c) {
    if (db != nullptr && db->routed(c.id) &&
        !db->rec(c.id).geom.hops.empty()) {
      return model.route_delay_ns(spec, db->rec(c.id).geom);
    }
    // Pre-routing estimate: Manhattan length at inner-layer speed.
    return manhattan(c.a, c.b) * spec.via_pitch_mils() /
           model.inner_mils_per_ns;
  };

  std::vector<std::vector<double>> delays(nl.nets.size());
  for (std::size_t ni = 0; ni < nl.nets.size(); ++ni) {
    const Net& net = nl.nets[ni];
    delays[ni].assign(net.pins.size(), 0.0);
    if (by_net[ni].empty() || net.pins.empty()) continue;

    // Accumulate delay from the chain/tree start by relaxation over the
    // net's connection graph (handles chain and spanning-tree stringing).
    std::unordered_map<Point, double> at;
    at[by_net[ni].front()->a] = 0.0;
    bool grew = true;
    while (grew) {
      grew = false;
      for (const Connection* c : by_net[ni]) {
        auto ia = at.find(c->a);
        auto ib = at.find(c->b);
        double d = conn_delay(*c);
        if (ia != at.end() && ib == at.end()) {
          at[c->b] = ia->second + d;
          grew = true;
        } else if (ib != at.end() && ia == at.end()) {
          at[c->a] = ib->second + d;
          grew = true;
        }
      }
    }
    for (std::size_t pi = 0; pi < net.pins.size(); ++pi) {
      auto it = at.find(board.pin_via(net.pins[pi]));
      delays[ni][pi] = it != at.end() ? it->second : 0.0;
    }
  }
  return delays;
}

TimingReport verify_timing(const Board& board, const StringingResult& strung,
                           const RouteDB* db, const DelayModel& model,
                           const TimingSpec& spec) {
  TimingReport report;
  const Netlist& nl = board.netlist();

  // Node table: every (part, pin) seen in arcs, nets or spec pins.
  std::unordered_map<std::uint64_t, int> node_of;
  std::vector<NetPin> pin_of_node;
  auto node = [&](PartId part, int pin) {
    auto [it, fresh] =
        node_of.try_emplace(pin_key(part, pin),
                            static_cast<int>(pin_of_node.size()));
    if (fresh) pin_of_node.push_back({part, pin, PinRole::kInput});
    return it->second;
  };

  // Register the spec's end points first so the graph and the topological
  // order cover them even when they touch no arc or net.
  for (const NetPin& p : spec.launch_pins) node(p.part, p.pin);
  for (const NetPin& p : spec.capture_pins) node(p.part, p.pin);

  struct Edge {
    int to;
    double delay;
    bool net;
  };
  std::vector<std::vector<Edge>> out;
  auto add_edge = [&](int from, int to, double delay, bool is_net) {
    out.resize(pin_of_node.size());
    out[static_cast<std::size_t>(from)].push_back({to, delay, is_net});
  };

  for (const TimingArc& arc : spec.arcs) {
    add_edge(node(arc.part, arc.from_pin), node(arc.part, arc.to_pin),
             arc.delay_ns, false);
  }

  std::vector<std::vector<double>> ndel =
      net_pin_delays(board, strung, db, model);
  for (std::size_t ni = 0; ni < nl.nets.size(); ++ni) {
    const Net& net = nl.nets[ni];
    if (net.pins.size() < 2) continue;
    // The driver is the first output pin (the stringer's chain start).
    std::size_t drv = 0;
    for (std::size_t pi = 0; pi < net.pins.size(); ++pi) {
      if (net.pins[pi].role == PinRole::kOutput) {
        drv = pi;
        break;
      }
    }
    int from = node(net.pins[drv].part, net.pins[drv].pin);
    for (std::size_t pi = 0; pi < net.pins.size(); ++pi) {
      if (pi == drv) continue;
      add_edge(from, node(net.pins[pi].part, net.pins[pi].pin),
               ndel[ni][pi] - ndel[ni][drv], true);
    }
  }

  const std::size_t n = pin_of_node.size();
  out.resize(n);

  // Kahn topological order; a cycle means combinational feedback.
  std::vector<int> indeg(n, 0);
  for (const auto& edges : out) {
    for (const Edge& e : edges) ++indeg[static_cast<std::size_t>(e.to)];
  }
  std::deque<int> ready;
  for (std::size_t i = 0; i < n; ++i) {
    if (indeg[i] == 0) ready.push_back(static_cast<int>(i));
  }
  std::vector<int> topo;
  while (!ready.empty()) {
    int v = ready.front();
    ready.pop_front();
    topo.push_back(v);
    for (const Edge& e : out[static_cast<std::size_t>(v)]) {
      if (--indeg[static_cast<std::size_t>(e.to)] == 0) {
        ready.push_back(e.to);
      }
    }
  }
  if (topo.size() != n) {
    report.error = "combinational cycle in the timing graph";
    return report;
  }

  // Longest arrival from the launch pins.
  std::vector<double> arrival(n, kNegInf);
  std::vector<int> parent(n, -1);
  std::vector<char> via_net(n, 0);
  for (const NetPin& lp : spec.launch_pins) {
    arrival[static_cast<std::size_t>(node(lp.part, lp.pin))] = 0.0;
  }

  for (int v : topo) {
    if (arrival[static_cast<std::size_t>(v)] == kNegInf) continue;
    for (const Edge& e : out[static_cast<std::size_t>(v)]) {
      double t = arrival[static_cast<std::size_t>(v)] + e.delay;
      if (t > arrival[static_cast<std::size_t>(e.to)]) {
        arrival[static_cast<std::size_t>(e.to)] = t;
        parent[static_cast<std::size_t>(e.to)] = v;
        via_net[static_cast<std::size_t>(e.to)] = e.net;
      }
    }
  }

  int worst_node = -1;
  for (const NetPin& cp : spec.capture_pins) {
    int v = node(cp.part, cp.pin);
    double t = arrival[static_cast<std::size_t>(v)];
    if (t != kNegInf && (worst_node < 0 || t > report.worst_ns)) {
      report.worst_ns = t;
      worst_node = v;
    }
  }
  if (worst_node < 0) {
    report.error = "no capture pin is reachable from a launch pin";
    return report;
  }

  for (int v = worst_node; v >= 0; v = parent[static_cast<std::size_t>(v)]) {
    report.critical_path.push_back(
        {pin_of_node[static_cast<std::size_t>(v)].part,
         pin_of_node[static_cast<std::size_t>(v)].pin,
         arrival[static_cast<std::size_t>(v)],
         static_cast<bool>(via_net[static_cast<std::size_t>(v)])});
  }
  std::reverse(report.critical_path.begin(), report.critical_path.end());
  report.worst_slack_ns =
      spec.clock_period_ns > 0 ? spec.clock_period_ns - report.worst_ns : 0;
  report.ok = true;
  return report;
}

}  // namespace grr
