// Static timing verification.
//
// The Titan placement effort was "devoted to shortening the critical
// timing paths found by the timing verifier" (paper Sec 13), and length
// tuning exists because trace delay is delay (Sec 10.1). This module is
// that verifier: combinational delays propagate through part arcs
// (pin-to-pin, from a component library) and through nets (trace delay of
// the realized routing, via the DelayModel; Manhattan estimates before
// routing). Longest arrival times are computed over the timing graph and
// reported against a clock period as slack, with the critical path
// retraced pin by pin.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "board/board.hpp"
#include "route/route_db.hpp"
#include "stringer/stringer.hpp"
#include "tune/delay_model.hpp"

namespace grr {

/// A combinational delay arc through a part (input pin -> output pin).
struct TimingArc {
  PartId part = -1;
  int from_pin = 0;
  int to_pin = 0;
  double delay_ns = 0;
};

struct TimingSpec {
  std::vector<TimingArc> arcs;
  /// Path start points (register outputs / primary inputs): (part, pin).
  std::vector<NetPin> launch_pins;
  /// Path end points (register inputs / primary outputs).
  std::vector<NetPin> capture_pins;
  double clock_period_ns = 0;  // 0 = report delays only, no slack check
};

struct TimingPathStep {
  PartId part = -1;
  int pin = 0;
  double arrival_ns = 0;
  bool through_net = false;  // reached over a net (vs a part arc)
};

struct TimingReport {
  bool ok = false;       // graph acyclic and spec resolvable
  std::string error;
  double worst_ns = 0;   // latest arrival at any capture pin
  double worst_slack_ns = 0;  // clock period minus worst arrival
  std::vector<TimingPathStep> critical_path;  // launch -> capture
};

/// Delay of every net pin relative to the net's chain start, derived from
/// the stringer's chain order and the realized routing (`db` may be null:
/// Manhattan estimates are used for unrouted connections).
std::vector<std::vector<double>> net_pin_delays(
    const Board& board, const StringingResult& strung, const RouteDB* db,
    const DelayModel& model);

TimingReport verify_timing(const Board& board, const StringingResult& strung,
                           const RouteDB* db, const DelayModel& model,
                           const TimingSpec& spec);

}  // namespace grr
