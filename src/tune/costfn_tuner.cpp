#include "tune/costfn_tuner.hpp"

#include <cmath>
#include <queue>
#include <unordered_map>

#include "route/boxes.hpp"

namespace grr {
namespace {

std::uint64_t key_of(Point v) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(v.x))
          << 32) |
         static_cast<std::uint32_t>(v.y);
}

struct Node {
  Point parent;
  LayerId layer = 0;
  double delay_ns = 0.0;  // estimated delay from the source
};

struct QEntry {
  double cost;
  std::uint64_t seq;
  Point p;
};

struct QGreater {
  bool operator()(const QEntry& x, const QEntry& y) const {
    return std::tie(x.cost, x.seq) > std::tie(y.cost, y.seq);
  }
};

}  // namespace

bool CostFnTuner::realize(const Connection& c,
                          const std::vector<Point>& seq) {
  LayerStack& stack = router_.stack();
  RouteTransaction txn(stack, router_.db(), c.id, &router_.txn_counters_,
                       router_.mutation_feed());
  for (std::size_t i = 1; i + 1 < seq.size(); ++i) {
    if (!stack.via_free(seq[i])) return false;  // dtor rolls back
    txn.add_via(seq[i]);
  }
  for (std::size_t j = 0; j + 1 < seq.size(); ++j) {
    if (!router_.place_direct(txn, seq[j], seq[j + 1])) return false;
  }
  txn.commit(RouteStrategy::kTuned);
  return true;
}

CostFnTuneResult CostFnTuner::tune(const Connection& c,
                                   std::size_t max_expansions,
                                   int max_candidates) {
  LayerStack& stack = router_.stack();
  const GridSpec& spec = stack.spec();
  const RouterConfig& cfg = router_.config();

  CostFnTuneResult res;
  res.target_ns = c.target_delay_ns;
  if (router_.db().routed(c.id)) router_.unroute(c.id);

  // The estimate has to assume some propagation speed; inner-layer speed is
  // as good a guess as any — and exactly the guess that goes wrong when the
  // realized path lands on outer layers (the paper's observation).
  const double est_speed = model_.inner_mils_per_ns;
  auto est_hop_ns = [&](Point u, Point v) {
    return manhattan(u, v) * spec.via_pitch_mils() / est_speed;
  };
  auto remaining_ns = [&](Point v) { return est_hop_ns(v, c.b); };

  std::unordered_map<std::uint64_t, Node> marks;
  std::priority_queue<QEntry, std::vector<QEntry>, QGreater> q;
  std::uint64_t seq_no = 0;

  marks[key_of(c.a)] = {c.a, 0, 0.0};
  q.push({std::abs(res.target_ns - remaining_ns(c.a)), seq_no++, c.a});

  int candidates = 0;
  while (!q.empty() && res.expansions < max_expansions &&
         candidates < max_candidates) {
    Point p = q.top().p;
    q.pop();
    ++res.expansions;
    const double p_delay = marks[key_of(p)].delay_ns;
    const Point pg = spec.grid_of_via(p);
    const Point bg = spec.grid_of_via(c.b);

    for (int li = 0; li < stack.num_layers(); ++li) {
      const Layer& layer = stack.layer(static_cast<LayerId>(li));
      Rect box = strip_box(spec, layer.orientation(), p, cfg.radius);
      FreeSpaceStats st = reachable_vias(
          layer, stack.pool(), spec.period(), pg, box,
          [&](Point g) {
            Point v = spec.via_of_grid(g);
            if (v == p || !stack.via_free(v)) return;
            auto k = key_of(v);
            if (marks.contains(k)) return;
            double d = p_delay + est_hop_ns(p, v);
            marks[k] = {p, static_cast<LayerId>(li), d};
            q.push({std::abs(res.target_ns - (d + remaining_ns(v))),
                    seq_no++, v});
          },
          cfg.max_trace_nodes, &bg);
      if (st.touched) {
        // Candidate complete path: retrace and realize it, then check the
        // *actual* delay against the target.
        std::vector<Point> chain;
        Point cur = p;
        while (true) {
          chain.insert(chain.begin(), cur);
          const Node& n = marks[key_of(cur)];
          if (n.parent == cur) break;
          cur = n.parent;
        }
        chain.push_back(c.b);
        ++candidates;
        if (realize(c, chain)) {
          double actual =
              model_.route_delay_ns(spec, router_.db().rec(c.id).geom);
          if (std::abs(actual - res.target_ns) <= tol_) {
            res.success = true;
            res.achieved_ns = actual;
            return res;
          }
          res.achieved_ns = actual;
          router_.unroute(c.id);  // plausible but unacceptable
        }
        ++res.false_solutions;
      }
    }
  }
  return res;
}

}  // namespace grr
