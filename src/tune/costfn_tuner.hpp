// The first, rejected implementation of length tuning (paper Sec 10.1):
// a modified Lee cost function selecting points whose total path delay from
// the source plus estimated delay to the destination is close to the target
// delay.
//
// The paper reports that the estimate is unreliable — a path may be built on
// fast layers, slow layers or a mixture, and need not be close to Manhattan
// length — so the search is overwhelmed with plausible but unacceptable
// solutions and runs unacceptably slowly. This implementation is kept so
// bench_tuning can reproduce that comparison against the detour method.
#pragma once

#include "route/router.hpp"
#include "tune/delay_model.hpp"

namespace grr {

struct CostFnTuneResult {
  bool success = false;
  double achieved_ns = 0.0;
  double target_ns = 0.0;
  std::size_t expansions = 0;
  int false_solutions = 0;  // candidate paths whose realized delay missed
};

class CostFnTuner {
 public:
  CostFnTuner(Router& router, DelayModel model, double tolerance_ns = 0.02)
      : router_(router), model_(model), tol_(tolerance_ns) {}

  /// Tune one (currently unrouted) connection by delay-targeted search.
  CostFnTuneResult tune(const Connection& c,
                        std::size_t max_expansions = 20000,
                        int max_candidates = 64);

 private:
  bool realize(const Connection& c, const std::vector<Point>& seq);

  Router& router_;
  DelayModel model_;
  double tol_;
};

}  // namespace grr
