#include "tune/delay_model.hpp"

namespace grr {

double DelayModel::hop_delay_ns(const GridSpec& spec,
                                const RouteHop& hop) const {
  long mils = 0;
  for (std::size_t i = 0; i < hop.spans.size(); ++i) {
    const ChannelSpan& cs = hop.spans[i];
    mils += spec.mils_between(cs.span.lo, cs.span.hi);
    if (i + 1 < hop.spans.size()) {
      mils += spec.mils_between(cs.channel, hop.spans[i + 1].channel);
    }
  }
  return mils / mils_per_ns(hop.layer);
}

double DelayModel::route_delay_ns(const GridSpec& spec,
                                  const RouteGeom& geom) const {
  double ns = 0;
  for (const RouteHop& hop : geom.hops) ns += hop_delay_ns(spec, hop);
  return ns;
}

double DelayModel::min_delay_ns(const GridSpec& spec, Point a_via,
                                Point b_via) const {
  double fastest = inner_mils_per_ns;
  for (int l = 0; l < num_layers; ++l) {
    fastest = std::max(fastest, mils_per_ns(static_cast<LayerId>(l)));
  }
  long mils =
      static_cast<long>(manhattan(a_via, b_via)) * spec.via_pitch_mils();
  return mils / fastest;
}

}  // namespace grr
