// Signal propagation delay model (paper Sec 10.1).
//
// In epoxy/glass boards signals propagate at about six inches per
// nanosecond; the two outer layers are about 10% faster than inner layers,
// which is precisely what made the cost-function approach to length tuning
// unreliable.
#pragma once

#include "grid/grid_spec.hpp"
#include "route/route_db.hpp"

namespace grr {

struct DelayModel {
  double inner_mils_per_ns = 6000.0;  // six inches per nanosecond
  double outer_speedup = 1.10;        // outer layers are ~10% faster
  int num_layers = 2;

  bool is_outer(LayerId l) const {
    return l == 0 || static_cast<int>(l) == num_layers - 1;
  }
  double mils_per_ns(LayerId l) const {
    return is_outer(l) ? inner_mils_per_ns * outer_speedup
                       : inner_mils_per_ns;
  }

  /// Delay of one hop: trace length on its layer at that layer's speed.
  double hop_delay_ns(const GridSpec& spec, const RouteHop& hop) const;

  /// Delay of a whole realized connection.
  double route_delay_ns(const GridSpec& spec, const RouteGeom& geom) const;

  /// Lower bound: the Manhattan path on the fastest layer. Target delays
  /// below this are unachievable.
  double min_delay_ns(const GridSpec& spec, Point a_via, Point b_via) const;
};

}  // namespace grr
