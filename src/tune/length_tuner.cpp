#include "tune/length_tuner.hpp"

#include <algorithm>
#include <cassert>

namespace grr {

bool LengthTuner::place_via_path(const Connection& c,
                                 const std::vector<Point>& seq) {
  LayerStack& stack = router_.stack();
  RouteTransaction txn(stack, router_.db(), c.id, &router_.txn_counters_,
                       router_.mutation_feed());
  for (std::size_t i = 1; i + 1 < seq.size(); ++i) {
    if (!stack.via_free(seq[i])) return false;  // dtor rolls back
    txn.add_via(seq[i]);
  }
  for (std::size_t j = 0; j + 1 < seq.size(); ++j) {
    if (!router_.place_direct(txn, seq[j], seq[j + 1])) return false;
  }
  txn.commit(RouteStrategy::kTuned);
  return true;
}

TuneResult LengthTuner::tune(const Connection& c, int max_iterations) {
  RouteDB& db = router_.db();
  LayerStack& stack = router_.stack();
  const GridSpec& spec = stack.spec();
  const int r = router_.config().radius;

  TuneResult res;
  res.target_ns = c.target_delay_ns;
  if (!db.routed(c.id)) {
    if (!router_.route_connection(c)) return res;
    router_.put_back();
  }

  for (int iter = 0; iter < max_iterations; ++iter) {
    res.iterations = iter + 1;
    const RouteGeom snapshot = db.rec(c.id).geom;
    const RouteStrategy snap_strategy = db.rec(c.id).strategy;
    const double cur = model_.route_delay_ns(spec, snapshot);
    res.achieved_ns = cur;
    if (cur >= res.target_ns - tol_) {
      res.success = cur <= res.target_ns + tol_;
      return res;  // tuned, or already too slow to fix by stretching
    }

    // Between every pair of adjacent pins/vias in the shorter path, attempt
    // a two-via detour jogging `d` via units orthogonally to the hop.
    std::vector<Point> seq;
    seq.push_back(c.a);
    seq.insert(seq.end(), snapshot.vias.begin(), snapshot.vias.end());
    seq.push_back(c.b);

    bool improved = false;
    for (std::size_t j = 0; !improved && j < snapshot.hops.size(); ++j) {
      const Orientation o =
          stack.layer(snapshot.hops[j].layer).orientation();
      for (int d = 1; !improved && d <= r; ++d) {
        for (int sign : {+1, -1}) {
          Point off = (o == Orientation::kHorizontal)
                          ? Point{0, sign * d}
                          : Point{sign * d, 0};
          Point v1{seq[j].x + off.x, seq[j].y + off.y};
          Point v2{seq[j + 1].x + off.x, seq[j + 1].y + off.y};
          if (!spec.via_in_board(v1) || !spec.via_in_board(v2)) continue;
          if (v1 == v2) continue;
          if (!stack.via_free(v1) || !stack.via_free(v2)) continue;

          std::vector<Point> trial = seq;
          trial.insert(trial.begin() + static_cast<std::ptrdiff_t>(j + 1),
                       {v1, v2});

          router_.unroute(c.id);
          bool placed = place_via_path(c, trial);
          if (placed) {
            double nd = model_.route_delay_ns(spec, db.rec(c.id).geom);
            if (nd > cur + 1e-9 && nd <= res.target_ns + tol_) {
              ++res.detours_added;
              improved = true;
              break;
            }
            router_.unroute(c.id);  // overshoot or no gain: roll back
          }
          RouteTransaction::adopt_geometry(db, c.id, snapshot,
                                           snap_strategy);
          bool restored = RouteTransaction::putback(
              stack, db, c.id, &router_.txn_counters_,
              router_.mutation_feed());
          assert(restored);
          (void)restored;
        }
      }
    }
    if (!improved) return res;  // no acceptable detour exists
  }
  return res;
}

int LengthTuner::tune_all(const ConnectionList& tuned, int max_iterations) {
  int ok = 0;
  for (const Connection& c : tuned) {
    if (tune(c, max_iterations).success) ++ok;
  }
  return ok;
}

int equalize_delays(Router& router, ConnectionList& conns,
                    const DelayModel& model, double tolerance_ns,
                    int max_iterations) {
  const GridSpec& spec = router.stack().spec();
  RouteDB& db = router.db();
  for (const Connection& c : conns) {
    if (!db.routed(c.id)) {
      router.route_connection(c);
      router.put_back();
    }
  }
  double slowest = 0;
  for (const Connection& c : conns) {
    if (!db.routed(c.id)) continue;
    slowest =
        std::max(slowest, model.route_delay_ns(spec, db.rec(c.id).geom));
  }
  LengthTuner tuner(router, model, tolerance_ns);
  int ok = 0;
  for (Connection& c : conns) {
    c.target_delay_ns = slowest + tolerance_ns;
    if (tuner.tune(c, max_iterations).success) ++ok;
  }
  return ok;
}

}  // namespace grr
