// Length tuning by detour (paper Sec 10.1, Fig 17) — the second and shipped
// implementation.
//
// Starting from a path created by the standard router, the tuner stretches
// it by adding two-via detours between pairs of adjacent pins/vias in the
// path. If a detour lengthens the path but not enough, the process repeats
// using the newly added vias. Only a small class of detours is searched
// (offsets of at most `radius` via units), which is what makes tuning run in
// acceptable time for a few tens of tuned wires per board.
#pragma once

#include "route/router.hpp"
#include "tune/delay_model.hpp"

namespace grr {

struct TuneResult {
  bool success = false;
  double achieved_ns = 0.0;
  double target_ns = 0.0;
  int detours_added = 0;
  int iterations = 0;
};

class LengthTuner {
 public:
  LengthTuner(Router& router, DelayModel model, double tolerance_ns = 0.02)
      : router_(router), model_(model), tol_(tolerance_ns) {}

  /// Tune one connection to c.target_delay_ns. Routes it first if needed.
  TuneResult tune(const Connection& c, int max_iterations = 64);

  /// Tune a batch; returns the number tuned successfully.
  int tune_all(const ConnectionList& tuned, int max_iterations = 64);

  const DelayModel& model() const { return model_; }

 private:
  /// Realize a connection as an explicit via chain, one direct trace per
  /// hop. Commits kTuned on success; aborts on failure.
  bool place_via_path(const Connection& c, const std::vector<Point>& seq);

  Router& router_;
  DelayModel model_;
  double tol_;
};

/// Equalize a group of connections to its slowest member (clock-tree skew
/// matching, Fig 16: "the delays from the root of the tree to each leaf
/// must be the same"). Members are routed if needed, the worst delay plus
/// `tolerance_ns` becomes every member's target, and each is stretched to
/// it. Returns the number of members within tolerance afterwards.
int equalize_delays(Router& router, ConnectionList& conns,
                    const DelayModel& model, double tolerance_ns = 0.02,
                    int max_iterations = 64);

}  // namespace grr
