#include "workload/board_gen.hpp"

#include <algorithm>
#include <cmath>
#include <random>

namespace grr {

double percent_channel_demand(const Board& board,
                              const ConnectionList& conns) {
  const GridSpec& spec = board.spec();
  long demand = 0;
  for (const Connection& c : conns) {
    demand += manhattan(spec.grid_of_via(c.a), spec.grid_of_via(c.b));
  }
  double supply = 0;
  for (int li = 0; li < board.stack().num_layers(); ++li) {
    const Layer& l = board.stack().layer(static_cast<LayerId>(li));
    supply += static_cast<double>(l.across_extent().length()) *
              l.along_extent().length();
  }
  return supply > 0 ? 100.0 * demand / supply : 0.0;
}

GeneratedBoard generate_board(const BoardGenParams& p) {
  GeneratedBoard out;
  out.params = p;

  const Coord nx = static_cast<Coord>(std::lround(p.width_in * 10)) + 1;
  const Coord ny = static_cast<Coord>(std::lround(p.height_in * 10)) + 1;
  GridSpec spec(nx, ny);
  out.board = std::make_unique<Board>(spec, p.layers,
                                      DesignRules::paper_process(),
                                      std::vector<Orientation>{},
                                      p.channel_store);
  Board& board = *out.board;

  const int fp_dip = board.add_footprint(Footprint::dip(24, 3));
  const int fp_sip = board.add_footprint(Footprint::sip(12));

  std::mt19937 rng(p.seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);

  // Mounting holes in the corners (for the power-plane artwork).
  for (Point m : {Point{1, 1}, Point{nx - 2, 1}, Point{1, ny - 2},
                  Point{nx - 2, ny - 2}}) {
    board.add_obstacle(m);
  }

  // A grid of part cells: DIP-24 flanked by a SIP-12 resistor pack, as on
  // the Titan coprocessor (Sec 13).
  constexpr Coord kMargin = 3;
  constexpr Coord kCellW = 7;
  constexpr Coord kCellH = 13;
  const Coord cells_x = (nx - 2 * kMargin) / kCellW;
  const Coord cells_y = (ny - 2 * kMargin) / kCellH;

  struct PinRef {
    PartId part;
    int pin;
    Point via;
  };
  std::vector<PinRef> pool;
  std::vector<std::vector<std::size_t>> by_part;  // pool indices per DIP
  std::vector<Point> part_center;
  int part_no = 0;
  for (Coord cy = 0; cy < cells_y; ++cy) {
    for (Coord cx = 0; cx < cells_x; ++cx) {
      if (coin(rng) > p.fill) continue;
      Point origin{kMargin + cx * kCellW, kMargin + cy * kCellH};
      PartId dip = board.add_part("U" + std::to_string(part_no), fp_dip,
                                  origin);
      PartId sip = board.add_part("R" + std::to_string(part_no), fp_sip,
                                  {origin.x + 5, origin.y});
      ++part_no;
      by_part.emplace_back();
      part_center.push_back({origin.x + 1, origin.y + 6});
      for (int pin = 0; pin < 24; ++pin) {
        // Corner pins are power/ground, served by the power planes.
        if (pin == 0 || pin == 23) {
          board.assign_power_pin(pin == 0 ? "VEE" : "VCC", dip, pin);
          continue;
        }
        if (pin == 11 || pin == 12) {
          board.assign_power_pin("GND", dip, pin);
          continue;
        }
        by_part.back().push_back(pool.size());
        pool.push_back({dip, pin, board.pin_via(dip, pin)});
      }
      for (int pin = 0; pin < 12; ++pin) board.add_terminator(sip, pin);
    }
  }
  if (by_part.size() < 2) {
    out.strung = string_nets(board, StringingMethod::kGreedy, p.seed);
    out.pct_chan = percent_channel_demand(board, out.strung.connections);
    return out;
  }

  std::vector<char> used(pool.size(), 0);
  const Coord base_window = static_cast<Coord>(
      std::max(4.0, p.locality * (nx + ny) / 2.0));

  // Spatial index over the pin pool for the fanout-input search: pins
  // bucketed by via position, gathered per net from the buckets inside the
  // window's bounding box, then re-sorted into pool order so the selection
  // ("first k unused pins by pool index within the window") is exactly the
  // linear scan's. The scan is O(pool) per net — at the giant tier that is
  // a ~126k-pin walk for each of ~10k nets and dominates generation.
  constexpr Coord kBucket = 32;
  const Coord bx = (nx + kBucket - 1) / kBucket;
  const Coord by = (ny + kBucket - 1) / kBucket;
  std::vector<std::vector<std::size_t>> buckets(
      static_cast<std::size_t>(bx) * static_cast<std::size_t>(by));
  if (p.fanout_bucket_grid) {
    for (std::size_t i = 0; i < pool.size(); ++i) {
      const Point v = pool[i].via;
      buckets[static_cast<std::size_t>(v.y / kBucket) *
                  static_cast<std::size_t>(bx) +
              static_cast<std::size_t>(v.x / kBucket)]
          .push_back(i);
    }
  }
  std::vector<std::size_t> cand;  // reused per fanout net
  auto gather_window = [&](Point center, Coord window) {
    cand.clear();
    const Coord x0 = std::max<Coord>(0, center.x - window) / kBucket;
    const Coord x1 = std::min<Coord>(nx - 1, center.x + window) / kBucket;
    const Coord y0 = std::max<Coord>(0, center.y - window) / kBucket;
    const Coord y1 = std::min<Coord>(ny - 1, center.y + window) / kBucket;
    for (Coord gy = y0; gy <= y1; ++gy) {
      for (Coord gx = x0; gx <= x1; ++gx) {
        for (std::size_t i :
             buckets[static_cast<std::size_t>(gy) *
                         static_cast<std::size_t>(bx) +
                     static_cast<std::size_t>(gx)]) {
          if (!used[i] && manhattan(pool[i].via, center) <= window) {
            cand.push_back(i);
          }
        }
      }
    }
    std::sort(cand.begin(), cand.end());
  };

  auto take_unused = [&](std::size_t part, int want,
                         std::vector<std::size_t>* outv) {
    for (std::size_t idx : by_part[part]) {
      if (static_cast<int>(outv->size()) >= want) break;
      if (!used[idx]) outv->push_back(idx);
    }
  };

  std::uniform_int_distribution<std::size_t> pick_part(0,
                                                       by_part.size() - 1);
  std::uniform_int_distribution<int> pick_bus_w(4, 8);
  std::uniform_int_distribution<int> pick_fanin(p.net_pins_min - 1,
                                                p.net_pins_max - 1);

  long expected_conns = 0;
  int dry_spells = 0;
  while (expected_conns < p.target_connections && dry_spells < 200) {
    const bool ecl = coin(rng) < p.ecl_fraction;
    if (coin(rng) < p.bus_fraction) {
      // A bus: bit-parallel two-pin nets between a nearby part pair.
      std::size_t pa = pick_part(rng);
      std::size_t pb = by_part.size();
      Coord window = base_window;
      for (int widen = 0; widen < 3 && pb == by_part.size();
           ++widen, window *= 2) {
        std::size_t start = pick_part(rng);
        for (std::size_t k = 0; k < by_part.size(); ++k) {
          std::size_t cand = (start + k) % by_part.size();
          if (cand == pa) continue;
          if (manhattan(part_center[cand], part_center[pa]) <= window) {
            pb = cand;
            break;
          }
        }
      }
      if (pb == by_part.size()) {
        ++dry_spells;
        continue;
      }
      std::vector<std::size_t> apins, bpins;
      const int w = pick_bus_w(rng);
      take_unused(pa, w, &apins);
      take_unused(pb, w, &bpins);
      const std::size_t bits = std::min(apins.size(), bpins.size());
      if (bits == 0) {
        ++dry_spells;
        continue;
      }
      dry_spells = 0;
      for (std::size_t i = 0; i < bits; ++i) {
        used[apins[i]] = used[bpins[i]] = 1;
        Net net;
        net.name = "N" + std::to_string(board.netlist().nets.size());
        net.klass = ecl ? SignalClass::kECL : SignalClass::kTTL;
        net.needs_terminator = ecl;
        net.pins.push_back(
            {pool[apins[i]].part, pool[apins[i]].pin, PinRole::kOutput});
        net.pins.push_back(
            {pool[bpins[i]].part, pool[bpins[i]].pin, PinRole::kInput});
        expected_conns += 1 + (ecl ? 1 : 0);
        board.netlist().add(std::move(net));
      }
    } else {
      // A fanout net: one output, a few locality-biased inputs.
      std::size_t out_idx = pool.size();
      for (std::size_t tries = 0; tries < pool.size(); ++tries) {
        std::size_t i = std::uniform_int_distribution<std::size_t>(
            0, pool.size() - 1)(rng);
        if (!used[i]) {
          out_idx = i;
          break;
        }
      }
      if (out_idx == pool.size()) {
        ++dry_spells;
        continue;
      }
      used[out_idx] = 1;
      const int want_inputs = pick_fanin(rng);
      std::vector<std::size_t> inputs;
      Coord window = base_window;
      for (int widen = 0;
           widen < 4 && static_cast<int>(inputs.size()) < want_inputs;
           ++widen, window *= 2) {
        if (p.fanout_bucket_grid) {
          gather_window(pool[out_idx].via, window);
          for (std::size_t i : cand) {
            if (static_cast<int>(inputs.size()) >= want_inputs) break;
            used[i] = 1;
            inputs.push_back(i);
          }
          continue;
        }
        for (std::size_t i = 0;
             i < pool.size() &&
             static_cast<int>(inputs.size()) < want_inputs;
             ++i) {
          if (used[i]) continue;
          if (manhattan(pool[i].via, pool[out_idx].via) <= window) {
            used[i] = 1;
            inputs.push_back(i);
          }
        }
      }
      if (inputs.empty()) {
        ++dry_spells;
        continue;
      }
      dry_spells = 0;
      Net net;
      net.name = "N" + std::to_string(board.netlist().nets.size());
      net.klass = ecl ? SignalClass::kECL : SignalClass::kTTL;
      net.needs_terminator = ecl;
      net.pins.push_back(
          {pool[out_idx].part, pool[out_idx].pin, PinRole::kOutput});
      for (std::size_t i : inputs) {
        net.pins.push_back({pool[i].part, pool[i].pin, PinRole::kInput});
      }
      expected_conns += static_cast<long>(net.pins.size()) - 1 +
                        (net.needs_terminator ? 1 : 0);
      board.netlist().add(std::move(net));
    }
  }

  out.strung = string_nets(board, StringingMethod::kGreedy, p.seed);
  out.pct_chan = percent_channel_demand(board, out.strung.connections);
  return out;
}

}  // namespace grr
