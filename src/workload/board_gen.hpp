// Synthetic board generator.
//
// The paper's netlists (Titan boards, kdj11, nmc) are not available, so we
// generate boards with the same character: a grid of DIP-24 ECL parts, each
// flanked by a SIP-12 termination-resistor pack (Sec 13), power pins that
// occupy via sites but are served by power planes, and locality-biased
// multi-pin nets strung into pin-to-pin connections. The knobs let the
// Table 1 suite match each paper row's board size, layer count, connection
// count and channel demand (%chan).
#pragma once

#include <memory>
#include <string>

#include "board/board.hpp"
#include "stringer/stringer.hpp"

namespace grr {

struct BoardGenParams {
  std::string name = "board";
  double width_in = 10.0;
  double height_in = 8.0;
  int layers = 4;
  int target_connections = 1000;
  /// Fraction of part cells actually populated (controls pins/in^2).
  double fill = 1.0;
  /// Net spread as a fraction of the board diagonal (controls %chan).
  double locality = 0.18;
  int net_pins_min = 2;  // output + inputs
  int net_pins_max = 5;
  double ecl_fraction = 1.0;  // remainder are TTL nets (no terminator)
  /// Fraction of connections generated as buses: groups of bit-parallel
  /// two-pin nets between a part pair, like the datapath and cache boards'
  /// real wiring. The rest are random fanout nets.
  double bus_fraction = 0.6;
  std::uint32_t seed = 1;
  /// Channel representation the board is built with (outcome-identical;
  /// the ablation benches and equivalence tests flip it).
  ChannelStore channel_store = kDefaultChannelStore;
  /// Gather fanout-net input candidates from a spatial bucket grid instead
  /// of scanning the whole pin pool per net. Selection is identical (the
  /// gathered candidates are re-sorted into pool order, which is what the
  /// linear scan consumes); only generation time changes — the scan is
  /// O(pool) per net and dominates board generation at the giant tier.
  /// BoardGenDeterminism holds the two paths to identical output.
  bool fanout_bucket_grid = true;
};

struct GeneratedBoard {
  BoardGenParams params;
  std::unique_ptr<Board> board;
  StringingResult strung;
  /// Channel demand / channel supply (the %chan estimate of Table 1).
  double pct_chan = 0.0;
};

/// %chan: total Manhattan length of all connections divided by the total
/// available channel space on all layers (both in routing-grid units).
double percent_channel_demand(const Board& board, const ConnectionList& conns);

GeneratedBoard generate_board(const BoardGenParams& params);

}  // namespace grr
