#include "workload/suite.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace grr {

std::vector<BoardGenParams> table1_suite(double scale) {
  // name, w_in, h_in, layers, conns, fill, locality (calibrated so the
  // generated suite lands near the paper's pins/in^2 and %chan columns).
  struct Row {
    const char* name;
    double w, h;
    int layers, conns;
    double fill, locality;
  };
  // The kdj11 and nmc rows are the same physical problem routed with a
  // different layer count, exactly as in the paper.
  static constexpr Row kRows[] = {
      {"kdj11-2L", 10, 8, 2, 1184, 0.95, 0.80},
      {"nmc-4L", 12, 10, 4, 2253, 0.95, 0.40},
      {"dpath-6L", 16, 22, 6, 5533, 1.00, 0.28},
      {"coproc-6L", 16, 22, 6, 5937, 1.00, 0.25},
      {"kdj11-4L", 10, 8, 4, 1184, 0.95, 0.80},
      {"icache-6L", 16, 22, 6, 5795, 1.00, 0.22},
      {"nmc-6L", 12, 10, 6, 2253, 0.95, 0.40},
      {"dcache-6L", 16, 22, 6, 5738, 1.00, 0.19},
      {"tna-6L", 11, 16, 6, 2789, 1.00, 0.35},
  };

  std::vector<BoardGenParams> suite;
  for (const Row& r : kRows) {
    BoardGenParams p;
    p.name = r.name;
    p.width_in = r.w * scale;
    p.height_in = r.h * scale;
    p.layers = r.layers;
    p.target_connections =
        static_cast<int>(std::lround(r.conns * scale * scale));
    p.fill = r.fill;
    p.locality = r.locality;
    p.seed = 1987;
    suite.push_back(p);
  }
  return suite;
}

BoardGenParams table1_board(const std::string& name, double scale) {
  for (const BoardGenParams& p : table1_suite(scale)) {
    if (p.name == name) return p;
  }
  std::fprintf(stderr, "unknown table1 board: %s\n", name.c_str());
  std::abort();
}

std::vector<BoardGenParams> giant_suite(double scale) {
  // Base row, giant multiplier. dpath-6L at 4.3x lands at ~102k
  // connections, nmc-4L at 6.7x at ~101k. kdj11-2L stays out: it is over
  // capacity at any scale (Table 1's point), and a giant tier board must
  // route to completion.
  struct GiantRow {
    const char* name;
    const char* base;
    double gscale;
    double demand_trim;
  };
  // demand_trim shrinks the wiring window below its 1x absolute size.
  // Holding the window exactly at 1x keeps the base row's density, but a
  // density that one base-sized board routes with a handful of rip-ups is
  // not automatically completable eleven times over: every giant board
  // multiplies the chances of a locally over-subscribed pocket, and
  // nmc-4L — the paper's near-capacity row — accumulates enough of them
  // to strand ~7% of its connections at trim 1.0. The completion boundary
  // is a cliff, not a slope: trims up to ~1.7 still strand a final 2-7
  // connections (measured across a dozen generator seeds — short runs
  // that route fine on an empty board but sit inside congestion knots the
  // rip-up heuristics never untangle), while ≥1.75 completes cleanly with
  // a few hundred rip-ups. 1.8 sits above that cliff with margin, making
  // nmc-4L-giant the tier's capacity/throughput row; dpath-6L-giant at
  // trim 1.0 stays the congested, rip-up-heavy row (~5.5k rip-ups, ~90%
  // of strategy time in Lee).
  static constexpr GiantRow kRows[] = {
      {"dpath-6L-giant", "dpath-6L", 4.3, 1.0},
      {"nmc-4L-giant", "nmc-4L", 6.7, 1.8},
  };

  std::vector<BoardGenParams> suite;
  for (const GiantRow& r : kRows) {
    const double s = r.gscale * scale;
    BoardGenParams p = table1_board(r.base, s);
    p.name = r.name;
    // Hold the wiring window at its 1x absolute size (see giant_suite's
    // declaration): demand then tracks area and density stays at the base
    // row's routable level instead of growing with scale.
    p.locality /= s * r.demand_trim;
    suite.push_back(p);
  }
  return suite;
}

BoardGenParams giant_board(const std::string& name, double scale) {
  for (const BoardGenParams& p : giant_suite(scale)) {
    if (p.name == name) return p;
  }
  std::fprintf(stderr, "unknown giant board: %s\n", name.c_str());
  std::abort();
}

}  // namespace grr
