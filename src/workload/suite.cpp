#include "workload/suite.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace grr {

std::vector<BoardGenParams> table1_suite(double scale) {
  // name, w_in, h_in, layers, conns, fill, locality (calibrated so the
  // generated suite lands near the paper's pins/in^2 and %chan columns).
  struct Row {
    const char* name;
    double w, h;
    int layers, conns;
    double fill, locality;
  };
  // The kdj11 and nmc rows are the same physical problem routed with a
  // different layer count, exactly as in the paper.
  static constexpr Row kRows[] = {
      {"kdj11-2L", 10, 8, 2, 1184, 0.95, 0.80},
      {"nmc-4L", 12, 10, 4, 2253, 0.95, 0.40},
      {"dpath-6L", 16, 22, 6, 5533, 1.00, 0.28},
      {"coproc-6L", 16, 22, 6, 5937, 1.00, 0.25},
      {"kdj11-4L", 10, 8, 4, 1184, 0.95, 0.80},
      {"icache-6L", 16, 22, 6, 5795, 1.00, 0.22},
      {"nmc-6L", 12, 10, 6, 2253, 0.95, 0.40},
      {"dcache-6L", 16, 22, 6, 5738, 1.00, 0.19},
      {"tna-6L", 11, 16, 6, 2789, 1.00, 0.35},
  };

  std::vector<BoardGenParams> suite;
  for (const Row& r : kRows) {
    BoardGenParams p;
    p.name = r.name;
    p.width_in = r.w * scale;
    p.height_in = r.h * scale;
    p.layers = r.layers;
    p.target_connections =
        static_cast<int>(std::lround(r.conns * scale * scale));
    p.fill = r.fill;
    p.locality = r.locality;
    p.seed = 1987;
    suite.push_back(p);
  }
  return suite;
}

BoardGenParams table1_board(const std::string& name, double scale) {
  for (const BoardGenParams& p : table1_suite(scale)) {
    if (p.name == name) return p;
  }
  std::fprintf(stderr, "unknown table1 board: %s\n", name.c_str());
  std::abort();
}

}  // namespace grr
