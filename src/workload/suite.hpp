// The Table 1 board suite: nine synthetic boards shaped like the paper's
// (board dimensions, layer count, connection count, pin density and channel
// demand), in the paper's order of decreasing difficulty.
#pragma once

#include <vector>

#include "workload/board_gen.hpp"

namespace grr {

/// The nine rows of Table 1. `scale` shrinks the boards linearly (and the
/// connection counts quadratically) for fast test runs while preserving
/// density; 1.0 is full size.
std::vector<BoardGenParams> table1_suite(double scale = 1.0);

/// Look up one row by name (e.g. "coproc-6L"); aborts on unknown name.
BoardGenParams table1_board(const std::string& name, double scale = 1.0);

/// The giant tier: Table 1 rows blown up past 4x linear scale to ~100k+
/// connections per board. Scaling a Table 1 row naively is hopeless — the
/// generator's wiring window grows with the board, so channel demand rises
/// with scale^3 against scale^2 of supply and the board goes over capacity
/// (dpath-6L already fails at 2x). The giant rows instead hold the
/// *absolute* wiring window at its 1x size (locality divided by the total
/// scale, further trimmed per row — see demand_trim in suite.cpp): a
/// giant board is a large board with locally concentrated wiring,
/// constant in density, which routes to completion — and is exactly the
/// workload spatial sharding exists for. `scale`
/// multiplies the per-row giant scale (1.0 is the full ~100k-connection
/// tier; tests run a reduced fraction).
std::vector<BoardGenParams> giant_suite(double scale = 1.0);

/// Look up one giant row by name (e.g. "dpath-6L-giant").
BoardGenParams giant_board(const std::string& name, double scale = 1.0);

}  // namespace grr
