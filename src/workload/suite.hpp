// The Table 1 board suite: nine synthetic boards shaped like the paper's
// (board dimensions, layer count, connection count, pin density and channel
// demand), in the paper's order of decreasing difficulty.
#pragma once

#include <vector>

#include "workload/board_gen.hpp"

namespace grr {

/// The nine rows of Table 1. `scale` shrinks the boards linearly (and the
/// connection counts quadratically) for fast test runs while preserving
/// density; 1.0 is full size.
std::vector<BoardGenParams> table1_suite(double scale = 1.0);

/// Look up one row by name (e.g. "coproc-6L"); aborts on unknown name.
BoardGenParams table1_board(const std::string& name, double scale = 1.0);

}  // namespace grr
