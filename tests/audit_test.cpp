// Tests for the auditor itself: deliberately corrupted boards and route
// records must be detected (a checker that can't fail is no checker).
#include "route/audit.hpp"

#include "route/transaction.hpp"

#include <gtest/gtest.h>

namespace grr {
namespace {

class AuditTest : public ::testing::Test {
 protected:
  AuditTest() : spec_(13, 13), stack_(spec_, 2), db_(4) {}

  Connection make_conn(ConnId id, Point a, Point b) {
    if (stack_.via_free(a)) stack_.drill_via(a, kPinConn);
    if (stack_.via_free(b)) stack_.drill_via(b, kPinConn);
    Connection c;
    c.id = id;
    c.a = a;
    c.b = b;
    return c;
  }

  GridSpec spec_;
  LayerStack stack_;
  RouteDB db_;
};

TEST_F(AuditTest, CleanBoardPasses) {
  make_conn(0, {2, 2}, {8, 2});
  EXPECT_TRUE(audit_stack(stack_).ok());
}

TEST_F(AuditTest, DetectsStaleViaMap) {
  // Insert metal over a via row while the incremental map is off, then
  // turn it back on: the map now under-counts.
  stack_.set_use_via_map(false);
  stack_.insert_span({0, 6, {5, 8}}, 1);  // channel y=6 is a via row
  stack_.set_use_via_map(true);
  CheckReport rep = audit_stack(stack_);
  ASSERT_FALSE(rep.ok());
  EXPECT_NE(rep.first_error().find("via map stale"), std::string::npos);
}

TEST_F(AuditTest, DetectsChannelBookkeepingCorruption) {
  SegId s = stack_.insert_span({0, 6, {5, 8}}, 1);
  stack_.pool()[s].channel = 7;  // lie about the channel
  CheckReport rep = audit_stack(stack_);
  ASSERT_FALSE(rep.ok());
  EXPECT_NE(rep.first_error().find("bookkeeping"), std::string::npos);
}

TEST_F(AuditTest, DetectsBrokenTraceLinks) {
  Connection c = make_conn(0, {2, 2}, {8, 2});
  {
    RouteTransaction txn(stack_, db_, 0);
    txn.add_hop(0, {{7, {7, 10}}, {8, {10, 14}}});
    txn.commit(RouteStrategy::kZeroVia);
  }
  // Sever the trace_next chain.
  stack_.pool()[db_.rec(0).segs.front()].trace_next = kNoSeg;
  CheckReport rep = audit_routes(stack_, db_, {c});
  ASSERT_FALSE(rep.ok());
  EXPECT_NE(rep.first_error().find("trace link"), std::string::npos);
}

TEST_F(AuditTest, DetectsForeignSegmentOwnership) {
  Connection c = make_conn(0, {2, 2}, {8, 2});
  {
    RouteTransaction txn(stack_, db_, 0);
    txn.add_hop(0, {{7, {7, 10}}});
    txn.commit(RouteStrategy::kZeroVia);
  }
  stack_.pool()[db_.rec(0).segs.front()].conn = 3;  // stolen segment
  CheckReport rep = audit_routes(stack_, db_, {c});
  ASSERT_FALSE(rep.ok());
  EXPECT_NE(rep.first_error().find("owned by someone else"),
            std::string::npos);
}

TEST_F(AuditTest, DetectsHopViaMismatch) {
  Connection c = make_conn(0, {2, 2}, {8, 2});
  {
    RouteTransaction txn(stack_, db_, 0);
    txn.add_via({5, 5});  // a via with no hops chaining it
    txn.commit(RouteStrategy::kOneVia);
  }
  CheckReport rep = audit_routes(stack_, db_, {c});
  ASSERT_FALSE(rep.ok());
  EXPECT_NE(rep.first_error().find("does not chain"), std::string::npos);
}

TEST_F(AuditTest, DetectsDetachedHopEnds) {
  Connection c = make_conn(0, {2, 2}, {8, 2});
  {
    RouteTransaction txn(stack_, db_, 0);
    // A span nowhere near either end point. a=(2,2)->grid (6,6).
    txn.add_hop(0, {{20, {20, 26}}});
    txn.commit(RouteStrategy::kZeroVia);
  }
  CheckReport rep = audit_routes(stack_, db_, {c});
  ASSERT_FALSE(rep.ok());
  EXPECT_NE(rep.first_error().find("does not touch its via"),
            std::string::npos);
}

TEST_F(AuditTest, DetectsDiscontinuousHop) {
  Connection c = make_conn(0, {2, 2}, {2, 4});
  // a = grid (6,6), b = grid (6,12): spans touching both ends but with a
  // gap in the middle chain (channels 7 and 11 are not adjacent).
  {
    RouteTransaction txn(stack_, db_, 0);
    txn.add_hop(0, {{7, {5, 7}}, {11, {5, 7}}});
    txn.commit(RouteStrategy::kZeroVia);
  }
  CheckReport rep = audit_routes(stack_, db_, {c});
  ASSERT_FALSE(rep.ok());
  bool found = false;
  for (const std::string& e : rep.errors()) {
    if (e.find("discontinuous") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(AuditTest, DetectsMissingViaCoverage) {
  Connection c = make_conn(0, {2, 2}, {8, 2});
  {
    RouteTransaction txn(stack_, db_, 0);
    txn.add_via({5, 5});
    txn.add_hop(0, {{7, {7, 14}}});
    txn.add_hop(1, {{15, {7, 14}}});
    txn.commit(RouteStrategy::kOneVia);
  }
  // Erase the via's unit segment on layer 1 behind the database's back.
  const RouteRecord& r = db_.rec(0);
  for (SegId s : r.segs) {
    if (stack_.pool()[s].is_via && stack_.pool()[s].layer == 1) {
      stack_.layer(1).erase(stack_.pool(), s);
      break;
    }
  }
  CheckReport rep = audit_routes(stack_, db_, {c});
  ASSERT_FALSE(rep.ok());
  bool found = false;
  for (const std::string& e : rep.errors()) {
    if (e.find("not covering layer") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(AuditTest, DetectsTileTrespass) {
  TileMap tiles(SignalClass::kECL);
  tiles.add_tile(0, {{0, 36}, {0, 36}}, SignalClass::kTTL);
  Connection c = make_conn(0, {2, 2}, {8, 2});
  c.klass = SignalClass::kECL;
  {
    RouteTransaction txn(stack_, db_, 0);
    txn.add_hop(0, {{7, {7, 10}}});  // inside the TTL tile
    txn.commit(RouteStrategy::kZeroVia);
  }
  CheckReport rep = audit_tiles(stack_, db_, {c}, tiles);
  ASSERT_FALSE(rep.ok());
  EXPECT_NE(rep.first_error().find("trespasses"), std::string::npos);
}

}  // namespace
}  // namespace grr
