// Tests for the classic Lee/Moore unit-step baseline (paper Sec 8.2's
// starting point, before the three modifications).
#include "baseline/lee_grid_router.hpp"

#include <gtest/gtest.h>

#include "baseline/line_search_router.hpp"
#include "route/lee.hpp"

namespace grr {
namespace {

class BaselineTest : public ::testing::Test {
 protected:
  BaselineTest() : spec_(13, 13), stack_(spec_, 2) {}

  Connection make_conn(ConnId id, Point a, Point b) {
    if (stack_.via_free(a)) stack_.drill_via(a, kPinConn);
    if (stack_.via_free(b)) stack_.drill_via(b, kPinConn);
    Connection c;
    c.id = id;
    c.a = a;
    c.b = b;
    return c;
  }

  GridSpec spec_;
  LayerStack stack_;
};

TEST_F(BaselineTest, FindsStraightPath) {
  Connection c = make_conn(0, {1, 5}, {10, 5});
  LeeGridRouter lee(stack_);
  LeeGridResult r = lee.search(c.a, c.b);
  ASSERT_TRUE(r.found);
  // Minimum path: 27 grid steps minus the two endpoint pads.
  EXPECT_GE(r.path_grid_steps, manhattan(spec_.grid_of_via(c.a),
                                         spec_.grid_of_via(c.b)) -
                                   2);
}

TEST_F(BaselineTest, DetoursAroundWall) {
  Connection c = make_conn(0, {1, 5}, {10, 5});
  for (Coord y = 3; y <= 36; ++y) {
    stack_.insert_span({0, y, {18, 18}}, kObstacleConn);
    stack_.insert_span({1, 18, {y, y}}, kObstacleConn);
  }
  LeeGridRouter lee(stack_);
  LeeGridResult r = lee.search(c.a, c.b);
  ASSERT_TRUE(r.found);
  EXPECT_GT(r.path_grid_steps, 27);  // forced around the wall
}

TEST_F(BaselineTest, ReportsUnreachable) {
  Connection c = make_conn(0, {1, 5}, {10, 5});
  // Full-height double wall on both layers, and no free via column.
  for (Coord y = 0; y <= 36; ++y) {
    stack_.insert_span({0, y, {18, 18}}, kObstacleConn);
  }
  for (Coord x = 0; x <= 36; ++x) {
    if (!stack_.occupied(1, {18, x})) {
      // Vertical layer: channel = x = 18.
      stack_.insert_span({1, 18, {x, x}}, kObstacleConn);
    }
  }
  LeeGridRouter lee(stack_);
  LeeGridResult r = lee.search(c.a, c.b);
  EXPECT_FALSE(r.found);
}

TEST_F(BaselineTest, UsesViasToChangeLayers) {
  // Layer 0 is walled at x=18 and layer 1 at x=24: no single layer crosses
  // both walls, so the path must change layers through a free via site in
  // between.
  Connection c = make_conn(0, {1, 5}, {10, 5});
  for (Coord y = 0; y <= 36; ++y) {
    stack_.insert_span({0, y, {18, 18}}, kObstacleConn);
  }
  for (Coord x = 0; x <= 36; ++x) {
    stack_.insert_span({1, 24, {x, x}}, kObstacleConn);
  }
  LeeGridRouter lee(stack_);
  LeeGridResult r = lee.search(c.a, c.b);
  ASSERT_TRUE(r.found);
  EXPECT_GE(r.vias_used, 1);
}

TEST_F(BaselineTest, ExpandsFarMoreCellsThanGeneralizedLee) {
  // Mod 1's whole point: unit-step neighbors scan many grid points to
  // advance a small distance (Sec 8.2).
  Connection c = make_conn(0, {1, 5}, {11, 7});
  LeeGridRouter base(stack_);
  LeeGridResult rb = base.search(c.a, c.b);
  LeeSearch gen(stack_);
  RouterConfig cfg;
  LeeResult rg = gen.search(c, cfg);
  ASSERT_TRUE(rb.found);
  ASSERT_TRUE(rg.found);
  EXPECT_GT(rb.expansions, 10 * (rg.expansions + rg.marks));
}

TEST_F(BaselineTest, ExpansionBudget) {
  Connection c = make_conn(0, {1, 5}, {10, 5});
  LeeGridRouter lee(stack_);
  LeeGridResult r = lee.search(c.a, c.b, /*max_expansions=*/3);
  EXPECT_FALSE(r.found);
  EXPECT_LE(r.expansions, 3u);
}

TEST_F(BaselineTest, LineSearchFindsStraightConnection) {
  Connection c = make_conn(0, {1, 5}, {10, 5});
  LineSearchRouter ls(stack_);
  LineSearchResult r = ls.search(c.a, c.b);
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.depth, 0);  // one shared escape line, no via needed
}

TEST_F(BaselineTest, LineSearchCrossesLayersThroughVias) {
  // Diagonal connection: needs at least one perpendicular escape.
  Connection c = make_conn(0, {2, 2}, {10, 9});
  LineSearchRouter ls(stack_);
  LineSearchResult r = ls.search(c.a, c.b);
  EXPECT_TRUE(r.found);
  EXPECT_GE(r.depth, 0);
  EXPECT_GT(r.lines, 2u);
}

TEST_F(BaselineTest, LineSearchReportsUnreachable) {
  Connection c = make_conn(0, {1, 5}, {10, 5});
  for (Coord y = 0; y <= 36; ++y) {
    stack_.insert_span({0, y, {18, 18}}, kObstacleConn);
  }
  for (Coord x = 0; x <= 36; ++x) {
    if (!stack_.occupied(1, {18, x})) {
      stack_.insert_span({1, 18, {x, x}}, kObstacleConn);
    }
  }
  LineSearchRouter ls(stack_);
  LineSearchResult r = ls.search(c.a, c.b);
  EXPECT_FALSE(r.found);
}

TEST_F(BaselineTest, LineSearchBudget) {
  Connection c = make_conn(0, {1, 5}, {10, 5});
  LineSearchRouter ls(stack_);
  LineSearchResult r = ls.search(c.a, c.b, /*max_lines=*/1);
  EXPECT_LE(r.lines, 1u);
}

TEST_F(BaselineTest, LineSearchScansFewerNodesThanUnitLee) {
  // The whole point of line search: lines jump obstacles' extents instead
  // of crawling cell by cell.
  Connection c = make_conn(0, {1, 5}, {11, 7});
  LeeGridRouter unit(stack_);
  LineSearchRouter ls(stack_);
  LeeGridResult ru = unit.search(c.a, c.b);
  LineSearchResult rl = ls.search(c.a, c.b);
  ASSERT_TRUE(ru.found);
  ASSERT_TRUE(rl.found);
  EXPECT_LT(rl.lines + rl.sites_scanned, ru.expansions / 5);
}

TEST_F(BaselineTest, SnapshotIgnoresLaterEdits) {
  Connection c = make_conn(0, {1, 5}, {10, 5});
  LeeGridRouter lee(stack_);
  // Wall built AFTER the snapshot is invisible to the router.
  for (Coord y = 0; y <= 36; ++y) {
    stack_.insert_span({0, y, {18, 18}}, kObstacleConn);
    stack_.insert_span({1, 18, {y, y}}, kObstacleConn);
  }
  EXPECT_TRUE(lee.search(c.a, c.b).found);
}

}  // namespace
}  // namespace grr
