// The batch router's contract: for ANY thread count it produces the exact
// serial result — same routed set, same per-connection geometry, same
// discrete statistics — because plans are committed in serial order and
// installed only when provably identical to what the serial router would
// have done (otherwise the connection is re-routed serially in place).
#include "route/batch_router.hpp"

#include <gtest/gtest.h>

#include "route/audit.hpp"
#include "workload/suite.hpp"

namespace grr {
namespace {

GeneratedBoard make_board(int layers, double locality, int conns,
                          std::uint32_t seed = 5) {
  BoardGenParams p;
  p.name = "batch";
  p.width_in = 6;
  p.height_in = 5;
  p.layers = layers;
  p.target_connections = conns;
  p.locality = locality;
  p.seed = seed;
  return generate_board(p);
}

/// Discrete statistics that must be bit-equal between runs (wall times and
/// cursor behavior legitimately differ).
void expect_stats_equal(const RouterStats& a, const RouterStats& b) {
  EXPECT_EQ(a.total, b.total);
  EXPECT_EQ(a.routed, b.routed);
  EXPECT_EQ(a.failed, b.failed);
  for (int i = 0; i < kNumRouteStrategies; ++i) {
    EXPECT_EQ(a.by_strategy[i], b.by_strategy[i]) << "strategy " << i;
  }
  EXPECT_EQ(a.rip_ups, b.rip_ups);
  EXPECT_EQ(a.vias_added, b.vias_added);
  EXPECT_EQ(a.lee_searches, b.lee_searches);
  EXPECT_EQ(a.lee_expansions, b.lee_expansions);
  EXPECT_EQ(a.passes, b.passes);
}

/// Every connection's realized geometry must match exactly.
void expect_geometry_equal(const RouteDB& a, const RouteDB& b,
                           const ConnectionList& conns) {
  for (const Connection& c : conns) {
    const RouteRecord& ra = a.rec(c.id);
    const RouteRecord& rb = b.rec(c.id);
    ASSERT_EQ(ra.status, rb.status) << "conn " << c.id;
    ASSERT_EQ(ra.strategy, rb.strategy) << "conn " << c.id;
    ASSERT_EQ(ra.geom.vias, rb.geom.vias) << "conn " << c.id;
    ASSERT_EQ(ra.geom.hops.size(), rb.geom.hops.size()) << "conn " << c.id;
    for (std::size_t h = 0; h < ra.geom.hops.size(); ++h) {
      EXPECT_EQ(ra.geom.hops[h].layer, rb.geom.hops[h].layer)
          << "conn " << c.id << " hop " << h;
      EXPECT_EQ(ra.geom.hops[h].spans, rb.geom.hops[h].spans)
          << "conn " << c.id << " hop " << h;
    }
  }
}

TEST(BatchRouterTest, OneThreadIsTheSerialEngine) {
  GeneratedBoard serial = make_board(4, 0.3, 300);
  GeneratedBoard batch = make_board(4, 0.3, 300);

  Router sr(serial.board->stack(), RouterConfig{});
  sr.route_all(serial.strung.connections);

  RouterConfig cfg;
  cfg.threads = 1;
  BatchRouter br(batch.board->stack(), cfg);
  br.route_all(batch.strung.connections);

  EXPECT_EQ(br.batch_stats().planned, 0);  // no speculation at 1 thread
  expect_stats_equal(sr.stats(), br.stats());
  expect_geometry_equal(sr.db(), br.db(), serial.strung.connections);
}

TEST(BatchRouterTest, FourThreadsMatchSerialExactly) {
  GeneratedBoard serial = make_board(4, 0.3, 400);
  GeneratedBoard batch = make_board(4, 0.3, 400);

  Router sr(serial.board->stack(), RouterConfig{});
  sr.route_all(serial.strung.connections);

  RouterConfig cfg;
  cfg.threads = 4;
  BatchRouter br(batch.board->stack(), cfg);
  br.route_all(batch.strung.connections);

  EXPECT_GT(br.batch_stats().planned, 0);
  EXPECT_GT(br.batch_stats().installed, 0);  // speculation actually paid off
  expect_stats_equal(sr.stats(), br.stats());
  expect_geometry_equal(sr.db(), br.db(), serial.strung.connections);

  CheckReport audit = audit_all(batch.board->stack(), br.db(),
                                batch.strung.connections);
  EXPECT_TRUE(audit.ok()) << audit.first_error();
}

TEST(BatchRouterTest, ThreadCountsAgreeWithEachOther) {
  GeneratedBoard two = make_board(4, 0.35, 350, 9);
  GeneratedBoard eight = make_board(4, 0.35, 350, 9);

  RouterConfig c2;
  c2.threads = 2;
  BatchRouter b2(two.board->stack(), c2);
  b2.route_all(two.strung.connections);

  RouterConfig c8;
  c8.threads = 8;
  BatchRouter b8(eight.board->stack(), c8);
  b8.route_all(eight.strung.connections);

  expect_stats_equal(b2.stats(), b8.stats());
  expect_geometry_equal(b2.db(), b8.db(), two.strung.connections);
}

TEST(BatchRouterTest, OverCapacityBoardStillMatchesSerial) {
  // Failures, rip-ups and multiple passes all take the serial-redo path;
  // the equivalence must survive them.
  GeneratedBoard serial = make_board(2, 0.5, 400, 11);
  GeneratedBoard batch = make_board(2, 0.5, 400, 11);

  Router sr(serial.board->stack(), RouterConfig{});
  bool sok = sr.route_all(serial.strung.connections);

  RouterConfig cfg;
  cfg.threads = 4;
  BatchRouter br(batch.board->stack(), cfg);
  bool bok = br.route_all(batch.strung.connections);

  EXPECT_EQ(sok, bok);
  expect_stats_equal(sr.stats(), br.stats());
  expect_geometry_equal(sr.db(), br.db(), serial.strung.connections);

  CheckReport audit = audit_all(batch.board->stack(), br.db(),
                                batch.strung.connections);
  EXPECT_TRUE(audit.ok()) << audit.first_error();
}

TEST(BatchRouterTest, TwoViaAblationFallsBackToSerial) {
  GeneratedBoard gb = make_board(4, 0.3, 200);
  RouterConfig cfg;
  cfg.threads = 4;
  cfg.enable_two_via = true;
  BatchRouter br(gb.board->stack(), cfg);
  br.route_all(gb.strung.connections);
  EXPECT_EQ(br.batch_stats().planned, 0);
  EXPECT_EQ(br.stats().routed + br.stats().failed, br.stats().total);
}

TEST(BatchRouterTest, UnsortedOrderAlsoMatches) {
  GeneratedBoard serial = make_board(4, 0.3, 300, 7);
  GeneratedBoard batch = make_board(4, 0.3, 300, 7);

  RouterConfig scfg;
  scfg.sort_connections = false;
  Router sr(serial.board->stack(), scfg);
  sr.route_all(serial.strung.connections);

  RouterConfig bcfg;
  bcfg.sort_connections = false;
  bcfg.threads = 3;
  BatchRouter br(batch.board->stack(), bcfg);
  br.route_all(batch.strung.connections);

  expect_stats_equal(sr.stats(), br.stats());
  expect_geometry_equal(sr.db(), br.db(), serial.strung.connections);
}

}  // namespace
}  // namespace grr
