#include "board/board.hpp"

#include <gtest/gtest.h>

#include "board/footprint.hpp"

namespace grr {
namespace {

TEST(FootprintTest, DipPinNumbering) {
  Footprint dip = Footprint::dip(16, 3);
  EXPECT_EQ(dip.pin_count(), 16);
  // Down the left column...
  EXPECT_EQ(dip.pin_offsets[0], (Point{0, 0}));
  EXPECT_EQ(dip.pin_offsets[7], (Point{0, 7}));
  // ...and up the right column.
  EXPECT_EQ(dip.pin_offsets[8], (Point{3, 7}));
  EXPECT_EQ(dip.pin_offsets[15], (Point{3, 0}));
}

TEST(FootprintTest, SipAndConnector) {
  Footprint sip = Footprint::sip(12);
  EXPECT_EQ(sip.pin_count(), 12);
  EXPECT_EQ(sip.pin_offsets[11], (Point{0, 11}));
  Footprint conn = Footprint::connector(3, 4);
  EXPECT_EQ(conn.pin_count(), 12);
  EXPECT_EQ(conn.pin_offsets.back(), (Point{2, 3}));
}

class BoardTest : public ::testing::Test {
 protected:
  BoardTest() : spec_(21, 17), board_(spec_, 4) {}
  GridSpec spec_;
  Board board_;
};

TEST_F(BoardTest, AddPartDrillsAllPins) {
  int fp = board_.add_footprint(Footprint::dip(16, 3));
  PartId u1 = board_.add_part("U1", fp, {4, 4});
  EXPECT_EQ(board_.total_pins(), 16);
  EXPECT_EQ(board_.pin_via(u1, 0), (Point{4, 4}));
  EXPECT_EQ(board_.pin_via(u1, 15), (Point{7, 4}));
  // Every pin's via site is used on all layers.
  for (int pin = 0; pin < 16; ++pin) {
    Point v = board_.pin_via(u1, pin);
    EXPECT_FALSE(board_.stack().via_free(v));
    EXPECT_EQ(board_.stack().via_use_count(v), 4);
    Point g = spec_.grid_of_via(v);
    EXPECT_EQ(board_.stack().conn_at(0, g), kPinConn);
  }
}

TEST_F(BoardTest, PinDensity) {
  int fp = board_.add_footprint(Footprint::dip(16, 3));
  board_.add_part("U1", fp, {4, 4});
  board_.add_part("U2", fp, {12, 4});
  // Board is 2.0 x 1.6 inches.
  EXPECT_NEAR(board_.pins_per_sq_inch(), 32.0 / (2.0 * 1.6), 1e-9);
}

TEST_F(BoardTest, Obstacles) {
  board_.add_obstacle({1, 1});
  EXPECT_FALSE(board_.stack().via_free({1, 1}));
  EXPECT_EQ(board_.stack().conn_at(0, spec_.grid_of_via({1, 1})),
            kObstacleConn);
  EXPECT_EQ(board_.obstacles().size(), 1u);
}

TEST_F(BoardTest, Terminators) {
  int fp = board_.add_footprint(Footprint::sip(8));
  PartId r1 = board_.add_part("R1", fp, {18, 2});
  for (int pin = 0; pin < 8; ++pin) board_.add_terminator(r1, pin);
  EXPECT_EQ(board_.terminators().size(), 8u);
  EXPECT_EQ(board_.pin_via(board_.terminators()[3]), (Point{18, 5}));
}

TEST_F(BoardTest, PowerAssignments) {
  int fp = board_.add_footprint(Footprint::dip(16, 3));
  PartId u1 = board_.add_part("U1", fp, {4, 4});
  board_.assign_power_pin("GND", u1, 0);
  board_.assign_power_pin("GND", u1, 8);
  board_.assign_power_pin("VCC", u1, 15);
  auto gnd = board_.power_pin_vias("GND");
  ASSERT_EQ(gnd.size(), 2u);
  EXPECT_EQ(gnd[0], board_.pin_via(u1, 0));
  EXPECT_EQ(board_.power_pin_vias("VCC").size(), 1u);
  EXPECT_TRUE(board_.power_pin_vias("VDD").empty());
}

TEST_F(BoardTest, NetlistRoundTrip) {
  Net net;
  net.name = "CLK";
  net.klass = SignalClass::kECL;
  net.pins.push_back({0, 1, PinRole::kOutput});
  NetId id = board_.netlist().add(std::move(net));
  EXPECT_EQ(id, 0);
  EXPECT_EQ(board_.netlist().nets[0].name, "CLK");
}

}  // namespace
}  // namespace grr
