// Tests for the radius-derived search boxes (paper Sec 8.1, Figs 9-11).
#include "route/boxes.hpp"

#include <gtest/gtest.h>

namespace grr {
namespace {

TEST(BoxesTest, ZeroViaBoxInflatesTheBoundingRect) {
  GridSpec spec(21, 17);
  Rect box = zero_via_box(spec, {4, 4}, {10, 5}, /*radius=*/2);
  // Grid hull: x [12,30], y [12,15]; inflated by 2*3=6 each side.
  EXPECT_EQ(box.x, (Interval{6, 36}));
  EXPECT_EQ(box.y, (Interval{6, 21}));
}

TEST(BoxesTest, ZeroViaBoxClampsToBoard) {
  GridSpec spec(21, 17);
  Rect box = zero_via_box(spec, {0, 0}, {1, 1}, 2);
  EXPECT_EQ(box.x.lo, 0);
  EXPECT_EQ(box.y.lo, 0);
  Rect far = zero_via_box(spec, {19, 15}, {20, 16}, 2);
  EXPECT_EQ(far.x.hi, spec.extent().x.hi);
  EXPECT_EQ(far.y.hi, spec.extent().y.hi);
}

TEST(BoxesTest, StripBoxIsOneArmOfTheCross) {
  GridSpec spec(21, 17);
  // Horizontal layer: the strip limits y, x runs the whole board.
  Rect h = strip_box(spec, Orientation::kHorizontal, {10, 8}, 1);
  EXPECT_EQ(h.x, spec.extent().x);
  EXPECT_EQ(h.y, (Interval{24 - 3, 24 + 3}));
  // Vertical layer: the strip limits x.
  Rect v = strip_box(spec, Orientation::kVertical, {10, 8}, 1);
  EXPECT_EQ(v.y, spec.extent().y);
  EXPECT_EQ(v.x, (Interval{30 - 3, 30 + 3}));
}

TEST(BoxesTest, StripBoxRadiusScalesInViaUnits) {
  GridSpec spec(21, 17);
  Rect r1 = strip_box(spec, Orientation::kHorizontal, {10, 8}, 1);
  Rect r2 = strip_box(spec, Orientation::kHorizontal, {10, 8}, 2);
  EXPECT_EQ(r2.y.length() - r1.y.length(), 2 * spec.period());
}

TEST(BoxesTest, HullStripCoversBothEnds) {
  GridSpec spec(21, 17);
  Rect box =
      hull_strip_box(spec, Orientation::kHorizontal, {3, 2}, {15, 9}, 1);
  EXPECT_EQ(box.x, spec.extent().x);
  EXPECT_TRUE(box.y.contains(6));   // around via y=2 (grid 6)
  EXPECT_TRUE(box.y.contains(27));  // around via y=9 (grid 27)
  // It contains the individual strips of both end points.
  Rect sa = strip_box(spec, Orientation::kHorizontal, {3, 2}, 1);
  Rect sb = strip_box(spec, Orientation::kHorizontal, {15, 9}, 1);
  EXPECT_TRUE(box.y.contains(sa.y));
  EXPECT_TRUE(box.y.contains(sb.y));
}

TEST(BoxesTest, ZeroRadiusDegeneratesToTheLine) {
  GridSpec spec(21, 17);
  Rect strip = strip_box(spec, Orientation::kHorizontal, {10, 8}, 0);
  EXPECT_EQ(strip.y, (Interval{24, 24}));
}

}  // namespace
}  // namespace grr
