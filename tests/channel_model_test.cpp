// Model-based testing: the channel implementations are checked against a
// brute-force bitmap reference through long random insert/erase/query
// sequences. Any divergence in occupancy, gap geometry or enumeration
// order is a bug in the clever structure.
#include <gtest/gtest.h>

#include <map>
#include <random>
#include <vector>

#include "layer/channel.hpp"
#include "layer/tree_channel.hpp"

namespace grr {
namespace {

constexpr Coord kExtentHi = 199;
constexpr Interval kExtent{0, kExtentHi};

/// The dumb reference: one bool per coordinate.
struct BitmapModel {
  std::array<bool, kExtentHi + 1> used{};

  bool can_insert(Interval s) const {
    for (Coord v = s.lo; v <= s.hi; ++v) {
      if (used[static_cast<std::size_t>(v)]) return false;
    }
    return true;
  }
  void insert(Interval s) {
    for (Coord v = s.lo; v <= s.hi; ++v) {
      used[static_cast<std::size_t>(v)] = true;
    }
  }
  void erase(Interval s) {
    for (Coord v = s.lo; v <= s.hi; ++v) {
      used[static_cast<std::size_t>(v)] = false;
    }
  }
  Interval gap_at(Coord v) const {
    if (used[static_cast<std::size_t>(v)]) return {};
    Coord lo = v, hi = v;
    while (lo > 0 && !used[static_cast<std::size_t>(lo - 1)]) --lo;
    while (hi < kExtentHi && !used[static_cast<std::size_t>(hi + 1)]) ++hi;
    return {lo, hi};
  }
  std::vector<Interval> gaps_overlapping(Interval range) const {
    std::vector<Interval> out;
    Coord v = 0;
    while (v <= kExtentHi) {
      if (used[static_cast<std::size_t>(v)]) {
        ++v;
        continue;
      }
      Interval g = gap_at(v);
      if (g.overlaps(range)) out.push_back(g);
      v = g.hi + 1;
    }
    return out;
  }
};

template <typename ChannelT>
class ChannelModelTest : public ::testing::Test {};

using ChannelTypes = ::testing::Types<Channel, TreeChannel>;
TYPED_TEST_SUITE(ChannelModelTest, ChannelTypes);

TYPED_TEST(ChannelModelTest, AgreesWithBitmapUnderRandomOps) {
  for (std::uint32_t seed = 1; seed <= 6; ++seed) {
    SegmentPool pool;
    TypeParam ch;
    BitmapModel model;
    std::map<Coord, SegId> live;  // span.lo -> id, mirrors the channel
    std::mt19937 rng(seed);
    auto rnd = [&](Coord lo, Coord hi) {
      return std::uniform_int_distribution<Coord>(lo, hi)(rng);
    };

    for (int op = 0; op < 2000; ++op) {
      int kind = static_cast<int>(rng() % 10);
      if (kind < 4) {  // insert attempt
        Coord lo = rnd(0, kExtentHi - 4);
        Interval span{lo, std::min<Coord>(lo + rnd(0, 9), kExtentHi)};
        if (model.can_insert(span)) {
          Segment s;
          s.span = span;
          s.conn = 1;
          live[span.lo] = ch.insert(pool, s);
          model.insert(span);
        }
      } else if (kind < 6 && !live.empty()) {  // erase a random live seg
        auto it = live.begin();
        std::advance(it, static_cast<long>(rng() % live.size()));
        model.erase(pool[it->second].span);
        ch.erase(pool, it->second);
        live.erase(it);
      } else if (kind < 8) {  // point queries
        Coord v = rnd(0, kExtentHi);
        ASSERT_EQ(ch.occupied(pool, v),
                  model.used[static_cast<std::size_t>(v)])
            << "seed " << seed << " op " << op << " at " << v;
        ASSERT_EQ(ch.free_gap_at(pool, kExtent, v), model.gap_at(v))
            << "seed " << seed << " op " << op << " at " << v;
      } else {  // gap enumeration over a random window
        Coord lo = rnd(0, kExtentHi - 1);
        Interval range{lo, std::min<Coord>(lo + rnd(1, 60), kExtentHi)};
        std::vector<Interval> got;
        ch.for_gaps_overlapping(pool, kExtent, range,
                                [&](Interval g) { got.push_back(g); });
        ASSERT_EQ(got, model.gaps_overlapping(range))
            << "seed " << seed << " op " << op << " range [" << range.lo
            << "," << range.hi << "]";
      }
    }
    // Final sweep: full agreement at every coordinate.
    for (Coord v = 0; v <= kExtentHi; ++v) {
      ASSERT_EQ(ch.occupied(pool, v),
                model.used[static_cast<std::size_t>(v)]);
    }
    EXPECT_EQ(ch.count(), live.size());
  }
}

}  // namespace
}  // namespace grr
