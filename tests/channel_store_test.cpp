// Property test holding the two channel stores bit-identical under fire:
// randomized insert/erase/rip/put-back sequences are mirrored onto a
// list-store and a flat-store instance, and after every step the two must
// agree on every observable — segment sets, seeks (with and without hints),
// free gaps, gap/segment enumerations, via counts — while the flat store's
// internal arrays, bitmap and summary stay consistent.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "layer/channel.hpp"
#include "layer/layer_stack.hpp"
#include "route/audit.hpp"

namespace grr {
namespace {

constexpr Interval kExtent{0, 1499};

struct StorePair {
  SegmentPool list_pool;
  SegmentPool flat_pool;
  Channel list;
  Channel flat;
  std::vector<SegId> live;  // same ids in both pools (mirrored op order)

  StorePair() {
    list.configure(kExtent, ChannelStore::kList);
    flat.configure(kExtent, ChannelStore::kFlat);
  }
};

/// Every observable of the two stores, compared at one probe coordinate.
void expect_probe_equal(const StorePair& sp, Coord v, SegId hint_list,
                        SegId hint_flat) {
  ASSERT_EQ(sp.list.occupied(sp.list_pool, v),
            sp.flat.occupied(sp.flat_pool, v))
      << "occupied at " << v;
  ASSERT_EQ(sp.list.free_gap_at(sp.list_pool, kExtent, v),
            sp.flat.free_gap_at(sp.flat_pool, kExtent, v))
      << "free_gap_at " << v;
  ASSERT_EQ(sp.list.conn_at(sp.list_pool, v),
            sp.flat.conn_at(sp.flat_pool, v))
      << "conn_at " << v;

  // Seeks return ids; compare the spans they name (ids match too because
  // the pools saw identical allocation orders, but spans are the claim).
  const SegId sl = sp.list.seek(sp.list_pool, v, hint_list);
  const SegId sf = sp.flat.seek(sp.flat_pool, v, hint_flat);
  ASSERT_EQ(sl == kNoSeg, sf == kNoSeg) << "seek at " << v;
  if (sl != kNoSeg) {
    ASSERT_EQ(sp.list_pool[sl].span, sp.flat_pool[sf].span)
        << "seek span at " << v;
  }
  const SegId fl = sp.list.find_at(sp.list_pool, v, hint_list);
  const SegId ff = sp.flat.find_at(sp.flat_pool, v, hint_flat);
  ASSERT_EQ(fl == kNoSeg, ff == kNoSeg) << "find_at " << v;
  if (fl != kNoSeg) {
    ASSERT_EQ(sp.list_pool[fl].span, sp.flat_pool[ff].span);
  }
}

void expect_stores_equal(const StorePair& sp, std::mt19937& rng) {
  ASSERT_EQ(sp.list.count(), sp.flat.count());
  ASSERT_EQ(sp.list.empty(), sp.flat.empty());
  ASSERT_TRUE(sp.flat.store_consistent(sp.flat_pool));
  ASSERT_TRUE(sp.list.store_consistent(sp.list_pool));

  // Full enumerations must match span for span, conn for conn.
  std::vector<Interval> spans_l, spans_f;
  std::vector<ConnId> conns_l, conns_f;
  sp.list.for_segs_overlapping(sp.list_pool, kExtent, [&](SegId s) {
    spans_l.push_back(sp.list_pool[s].span);
    conns_l.push_back(sp.list_pool[s].conn);
  });
  sp.flat.for_segs_overlapping(sp.flat_pool, kExtent, [&](SegId s) {
    spans_f.push_back(sp.flat_pool[s].span);
    conns_f.push_back(sp.flat_pool[s].conn);
  });
  ASSERT_EQ(spans_l, spans_f);
  ASSERT_EQ(conns_l, conns_f);

  std::vector<Interval> gaps_l, gaps_f;
  sp.list.for_gaps_overlapping(sp.list_pool, kExtent, kExtent,
                               [&](Interval g) { gaps_l.push_back(g); });
  sp.flat.for_gaps_overlapping(sp.flat_pool, kExtent, kExtent,
                               [&](Interval g) { gaps_f.push_back(g); });
  ASSERT_EQ(gaps_l, gaps_f);

  // Random sub-range enumerations (the shape free-space walks produce).
  std::uniform_int_distribution<Coord> coord(kExtent.lo, kExtent.hi);
  for (int i = 0; i < 8; ++i) {
    Coord a = coord(rng), b = coord(rng);
    Interval range{std::min(a, b), std::max(a, b)};
    gaps_l.clear();
    gaps_f.clear();
    sp.list.for_gaps_overlapping(sp.list_pool, kExtent, range,
                                 [&](Interval g) { gaps_l.push_back(g); });
    sp.flat.for_gaps_overlapping(sp.flat_pool, kExtent, range,
                                 [&](Interval g) { gaps_f.push_back(g); });
    ASSERT_EQ(gaps_l, gaps_f) << "gaps over " << range;
    spans_l.clear();
    spans_f.clear();
    sp.list.for_segs_overlapping(sp.list_pool, range, [&](SegId s) {
      spans_l.push_back(sp.list_pool[s].span);
    });
    sp.flat.for_segs_overlapping(sp.flat_pool, range, [&](SegId s) {
      spans_f.push_back(sp.flat_pool[s].span);
    });
    ASSERT_EQ(spans_l, spans_f) << "segs over " << range;
  }

  // Random point probes, unhinted and hinted from a random live segment
  // (hints must never change a result, only where a walk starts).
  for (int i = 0; i < 16; ++i) {
    const Coord v = coord(rng);
    SegId hint_l = kNoSeg, hint_f = kNoSeg;
    if (!sp.live.empty() && (rng() & 1u)) {
      const SegId h = sp.live[rng() % sp.live.size()];
      hint_l = h;
      hint_f = h;
    }
    ASSERT_NO_FATAL_FAILURE(expect_probe_equal(sp, v, hint_l, hint_f));
  }
}

TEST(ChannelStoreTest, RandomizedChurnKeepsStoresIdentical) {
  std::mt19937 rng(20260807);
  std::uniform_int_distribution<Coord> coord(kExtent.lo, kExtent.hi);
  std::uniform_int_distribution<Coord> len(1, 40);

  for (int seq = 0; seq < 3; ++seq) {
    StorePair sp;
    for (int op = 0; op < 1200; ++op) {
      const bool do_insert = sp.live.empty() || (rng() % 100) < 62;
      if (do_insert) {
        const Coord lo = coord(rng);
        const Interval span{lo, std::min<Coord>(lo + len(rng), kExtent.hi)};
        // Both stores must agree the span is placeable before we try.
        const Interval gap =
            sp.list.free_gap_at(sp.list_pool, kExtent, span.lo);
        ASSERT_EQ(gap, sp.flat.free_gap_at(sp.flat_pool, kExtent, span.lo));
        if (!gap.contains(span)) continue;
        Segment seg;
        seg.span = span;
        seg.conn = static_cast<ConnId>(op % 97);
        const SegId il = sp.list.insert(sp.list_pool, seg);
        const SegId if_ = sp.flat.insert(sp.flat_pool, seg);
        ASSERT_EQ(il, if_);  // identical allocation histories
        sp.live.push_back(il);
      } else {
        const std::size_t pick = rng() % sp.live.size();
        const SegId id = sp.live[pick];
        sp.list.erase(sp.list_pool, id);
        sp.flat.erase(sp.flat_pool, id);
        sp.live[pick] = sp.live.back();
        sp.live.pop_back();
      }
      if (op % 16 == 0) {
        ASSERT_NO_FATAL_FAILURE(expect_stores_equal(sp, rng));
      }
    }
    ASSERT_NO_FATAL_FAILURE(expect_stores_equal(sp, rng));

    // Rip/put-back: tear out a random half of the survivors (recording
    // geometry), re-insert it, and require full agreement again — the
    // transaction layer's core loop in miniature.
    std::vector<Segment> ripped;
    for (std::size_t i = 0; i < sp.live.size();) {
      if (rng() & 1u) {
        const SegId id = sp.live[i];
        ripped.push_back(sp.list_pool[id]);
        sp.list.erase(sp.list_pool, id);
        sp.flat.erase(sp.flat_pool, id);
        sp.live[i] = sp.live.back();
        sp.live.pop_back();
      } else {
        ++i;
      }
    }
    ASSERT_NO_FATAL_FAILURE(expect_stores_equal(sp, rng));
    for (const Segment& seg : ripped) {
      Segment fresh;
      fresh.span = seg.span;
      fresh.conn = seg.conn;
      const SegId il = sp.list.insert(sp.list_pool, fresh);
      const SegId if_ = sp.flat.insert(sp.flat_pool, fresh);
      ASSERT_EQ(il, if_);
      sp.live.push_back(il);
    }
    ASSERT_NO_FATAL_FAILURE(expect_stores_equal(sp, rng));
  }
}

TEST(ChannelStoreTest, StackLevelChurnKeepsViaCountsIdentical) {
  // Mirror random span/via churn onto two whole stacks — one per store —
  // and require identical via counts, span probes and clean audits. This
  // is the level where the incremental via map, the bitmap maintenance and
  // the pool links all have to stay in lockstep.
  GridSpec spec(61, 49);
  LayerStack list_stack(spec, 4, {}, ChannelStore::kList);
  LayerStack flat_stack(spec, 4, {}, ChannelStore::kFlat);
  std::mt19937 rng(7);

  std::vector<SegId> live;
  auto rnd = [&](Coord lo, Coord hi) {
    return std::uniform_int_distribution<Coord>(lo, hi)(rng);
  };

  for (int op = 0; op < 1500; ++op) {
    const int kind = static_cast<int>(rng() % 100);
    if (kind < 50) {  // insert a random span if free in both
      const LayerId l = static_cast<LayerId>(rng() % 4);
      const Layer& layer = flat_stack.layer(l);
      const Coord ch = rnd(layer.across_extent().lo, layer.across_extent().hi);
      const Coord lo = rnd(layer.along_extent().lo, layer.along_extent().hi);
      const Coord hi = std::min(lo + rnd(0, 12), layer.along_extent().hi);
      const PlacedSpan ps{l, ch, {lo, hi}};
      ASSERT_EQ(list_stack.span_free(ps), flat_stack.span_free(ps));
      if (!flat_stack.span_free(ps)) continue;
      const SegId a = list_stack.insert_span(ps, op);
      const SegId b = flat_stack.insert_span(ps, op);
      ASSERT_EQ(a, b);
      live.push_back(a);
    } else if (kind < 75 && !live.empty()) {  // erase
      const std::size_t pick = rng() % live.size();
      list_stack.erase_segment(live[pick]);
      flat_stack.erase_segment(live[pick]);
      live[pick] = live.back();
      live.pop_back();
    } else {  // drill a via if the site is free in both
      const Point via{rnd(0, spec.nx_vias() - 1), rnd(0, spec.ny_vias() - 1)};
      ASSERT_EQ(list_stack.via_free(via), flat_stack.via_free(via));
      if (!flat_stack.via_free(via)) continue;
      const std::vector<SegId> a = list_stack.drill_via(via, op);
      const std::vector<SegId> b = flat_stack.drill_via(via, op);
      ASSERT_EQ(a, b);
      live.insert(live.end(), a.begin(), a.end());
    }

    if (op % 50 == 0) {
      for (int i = 0; i < 12; ++i) {
        const Point via{rnd(0, spec.nx_vias() - 1),
                        rnd(0, spec.ny_vias() - 1)};
        ASSERT_EQ(list_stack.via_use_count(via),
                  flat_stack.via_use_count(via));
        const Point g{rnd(spec.extent().x.lo, spec.extent().x.hi),
                      rnd(spec.extent().y.lo, spec.extent().y.hi)};
        for (LayerId l = 0; l < 4; ++l) {
          ASSERT_EQ(list_stack.occupied(l, g), flat_stack.occupied(l, g));
          ASSERT_EQ(list_stack.conn_at(l, g), flat_stack.conn_at(l, g));
        }
      }
    }
  }

  EXPECT_TRUE(audit_stack(list_stack).ok());
  EXPECT_TRUE(audit_stack(flat_stack).ok());
  EXPECT_EQ(list_stack.segment_count(), flat_stack.segment_count());
}

}  // namespace
}  // namespace grr
