// Typed tests run against every channel implementation: the linked list
// with moving cursor (the paper's), the flat SoA + bitmap store (the
// shipped default), and the binary tree (the Sec 12 ablation variant).
// All must expose identical semantics.
#include "layer/channel.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "layer/tree_channel.hpp"

namespace grr {
namespace {

template <typename ChannelT>
class ChannelTest : public ::testing::Test {
 protected:
  SegId insert(Coord lo, Coord hi, ConnId conn = 7) {
    Segment seg;
    seg.span = {lo, hi};
    seg.conn = conn;
    return ch_.insert(pool_, seg);
  }

  std::vector<Interval> gaps(Interval extent, Interval range) {
    std::vector<Interval> out;
    ch_.for_gaps_overlapping(pool_, extent, range,
                             [&](Interval g) { out.push_back(g); });
    return out;
  }

  std::vector<Interval> segs(Interval range) {
    std::vector<Interval> out;
    ch_.for_segs_overlapping(pool_, range,
                             [&](SegId s) { out.push_back(pool_[s].span); });
    return out;
  }

  SegmentPool pool_;
  ChannelT ch_;
};

/// Channel pre-configured with the flat store (a default-constructed
/// Channel is the legacy list). The extent is deliberately larger than the
/// probe ranges the tests use, as a layer's always is.
struct FlatChannel : Channel {
  FlatChannel() { configure({0, 4095}, ChannelStore::kFlat); }
};

using ChannelTypes = ::testing::Types<Channel, FlatChannel, TreeChannel>;
TYPED_TEST_SUITE(ChannelTest, ChannelTypes);

TYPED_TEST(ChannelTest, EmptyChannel) {
  EXPECT_TRUE(this->ch_.empty());
  EXPECT_EQ(this->ch_.head(), kNoSeg);
  EXPECT_EQ(this->ch_.seek(this->pool_, 5), kNoSeg);
  EXPECT_FALSE(this->ch_.occupied(this->pool_, 5));
  EXPECT_EQ(this->ch_.free_gap_at(this->pool_, {0, 99}, 5),
            (Interval{0, 99}));
}

TYPED_TEST(ChannelTest, InsertAndFind) {
  this->insert(10, 20);
  this->insert(30, 35);
  this->insert(0, 4);
  EXPECT_EQ(this->ch_.count(), 3u);
  EXPECT_TRUE(this->ch_.occupied(this->pool_, 0));
  EXPECT_TRUE(this->ch_.occupied(this->pool_, 15));
  EXPECT_TRUE(this->ch_.occupied(this->pool_, 35));
  EXPECT_FALSE(this->ch_.occupied(this->pool_, 5));
  EXPECT_FALSE(this->ch_.occupied(this->pool_, 25));
  EXPECT_FALSE(this->ch_.occupied(this->pool_, 36));
}

TYPED_TEST(ChannelTest, SeekSemantics) {
  SegId a = this->insert(10, 20);
  SegId b = this->insert(30, 35);
  EXPECT_EQ(this->ch_.seek(this->pool_, 5), kNoSeg);
  EXPECT_EQ(this->ch_.seek(this->pool_, 10), a);
  EXPECT_EQ(this->ch_.seek(this->pool_, 25), a);
  EXPECT_EQ(this->ch_.seek(this->pool_, 30), b);
  EXPECT_EQ(this->ch_.seek(this->pool_, 99), b);
  // Alternating far/near probes exercise the cursor walk in both
  // directions.
  EXPECT_EQ(this->ch_.seek(this->pool_, 11), a);
  EXPECT_EQ(this->ch_.seek(this->pool_, 95), b);
  EXPECT_EQ(this->ch_.seek(this->pool_, 3), kNoSeg);
}

TYPED_TEST(ChannelTest, FreeGaps) {
  this->insert(10, 20);
  this->insert(30, 35);
  Interval extent{0, 99};
  EXPECT_EQ(this->ch_.free_gap_at(this->pool_, extent, 5),
            (Interval{0, 9}));
  EXPECT_EQ(this->ch_.free_gap_at(this->pool_, extent, 25),
            (Interval{21, 29}));
  EXPECT_EQ(this->ch_.free_gap_at(this->pool_, extent, 50),
            (Interval{36, 99}));
  EXPECT_TRUE(this->ch_.free_gap_at(this->pool_, extent, 15).empty());
  // Outside the extent.
  EXPECT_TRUE(this->ch_.free_gap_at(this->pool_, extent, 120).empty());
}

TYPED_TEST(ChannelTest, GapsAreReportedInFull) {
  this->insert(10, 20);
  this->insert(30, 35);
  // Gaps overlapping [15, 32] are reported in their full extent, not
  // clipped to the probe range: a gap has one canonical identity.
  auto gaps = this->gaps({0, 99}, {15, 32});
  ASSERT_EQ(gaps.size(), 1u);
  EXPECT_EQ(gaps[0], (Interval{21, 29}));

  gaps = this->gaps({0, 99}, {0, 99});
  ASSERT_EQ(gaps.size(), 3u);
  EXPECT_EQ(gaps[0], (Interval{0, 9}));
  EXPECT_EQ(gaps[1], (Interval{21, 29}));
  EXPECT_EQ(gaps[2], (Interval{36, 99}));
}

TYPED_TEST(ChannelTest, GapEnumerationEdges) {
  this->insert(0, 5);   // flush against the low extent edge
  this->insert(95, 99); // flush against the high extent edge
  auto gaps = this->gaps({0, 99}, {0, 99});
  ASSERT_EQ(gaps.size(), 1u);
  EXPECT_EQ(gaps[0], (Interval{6, 94}));
  // A fully occupied probe range yields nothing.
  EXPECT_TRUE(this->gaps({0, 99}, {1, 4}).empty());
}

TYPED_TEST(ChannelTest, SegOverlapEnumeration) {
  this->insert(10, 20);
  this->insert(30, 35);
  this->insert(50, 60);
  auto segs = this->segs({18, 52});
  ASSERT_EQ(segs.size(), 3u);
  EXPECT_EQ(segs[0], (Interval{10, 20}));
  EXPECT_EQ(segs[2], (Interval{50, 60}));
  EXPECT_TRUE(this->segs({21, 29}).empty());
  EXPECT_EQ(this->segs({35, 35}).size(), 1u);
}

TYPED_TEST(ChannelTest, EraseRelinksAndFreesGap) {
  SegId a = this->insert(10, 20);
  SegId b = this->insert(30, 35);
  SegId c = this->insert(50, 60);
  this->ch_.erase(this->pool_, b);
  EXPECT_EQ(this->ch_.count(), 2u);
  EXPECT_EQ(this->ch_.free_gap_at(this->pool_, {0, 99}, 30),
            (Interval{21, 49}));
  EXPECT_EQ(this->pool_[a].next, c);
  EXPECT_EQ(this->pool_[c].prev, a);
  this->ch_.erase(this->pool_, a);
  this->ch_.erase(this->pool_, c);
  EXPECT_TRUE(this->ch_.empty());
  EXPECT_EQ(this->pool_.size(), 0u);
}

TYPED_TEST(ChannelTest, EraseHeadAndCursorSurvives) {
  SegId a = this->insert(10, 20);
  this->insert(30, 35);
  ASSERT_EQ(this->ch_.seek(this->pool_, 12), a);  // cursor on a
  this->ch_.erase(this->pool_, a);
  // The cursor must not dangle: further probes still work.
  EXPECT_TRUE(this->ch_.occupied(this->pool_, 32));
  EXPECT_FALSE(this->ch_.occupied(this->pool_, 10));
}

TYPED_TEST(ChannelTest, AbuttingSegmentsStayDistinct) {
  this->insert(10, 20, 1);
  this->insert(21, 30, 2);  // abuts, different connection
  EXPECT_EQ(this->ch_.count(), 2u);
  SegId at20 = this->ch_.find_at(this->pool_, 20);
  SegId at21 = this->ch_.find_at(this->pool_, 21);
  EXPECT_NE(at20, at21);
  EXPECT_EQ(this->pool_[at20].conn, 1);
  EXPECT_EQ(this->pool_[at21].conn, 2);
  EXPECT_TRUE(this->ch_.free_gap_at(this->pool_, {0, 99}, 15).empty());
}

TYPED_TEST(ChannelTest, UnitSegments) {
  this->insert(5, 5);
  EXPECT_TRUE(this->ch_.occupied(this->pool_, 5));
  EXPECT_EQ(this->ch_.free_gap_at(this->pool_, {0, 9}, 4),
            (Interval{0, 4}));
  EXPECT_EQ(this->ch_.free_gap_at(this->pool_, {0, 9}, 6),
            (Interval{6, 9}));
}

TYPED_TEST(ChannelTest, ManyInterleavedInsertsStaySorted) {
  // Insert in shuffled order; the list must come out sorted.
  for (Coord base : {40, 0, 80, 20, 60}) {
    this->insert(base, base + 5);
  }
  auto segs = this->segs({0, 99});
  ASSERT_EQ(segs.size(), 5u);
  for (std::size_t i = 0; i + 1 < segs.size(); ++i) {
    EXPECT_LT(segs[i].hi, segs[i + 1].lo);
  }
}

TEST(SegmentPoolTest, ReusesFreedSlots) {
  SegmentPool pool;
  Segment s;
  s.span = {0, 1};
  SegId a = pool.allocate(s);
  SegId b = pool.allocate(s);
  EXPECT_EQ(pool.size(), 2u);
  pool.release(a);
  EXPECT_EQ(pool.size(), 1u);
  SegId c = pool.allocate(s);
  EXPECT_EQ(c, a);  // slot reused
  EXPECT_EQ(pool.size(), 2u);
  (void)b;
}

}  // namespace
}  // namespace grr
