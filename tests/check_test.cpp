// Tests for the static-analysis layer: the geometric DRC engine on
// deliberately corrupted claims (each seeded violation must fire its rule
// exactly once), the negative case (routed boards are DRC-clean), and the
// CheckSuite registry plumbing (applicability, severity overrides,
// machine-readable finding format).
#include <gtest/gtest.h>

#include "check/drc.hpp"
#include "check/registry.hpp"
#include "route/router.hpp"
#include "workload/suite.hpp"

namespace grr {
namespace {

// Geometry used throughout: GridSpec(13, 13) with the paper process —
// period 3, via rows at grid coords 0,3,...,36, mils offsets 0/42/58.
// Layer 0 is horizontal (channel = y), layer 1 vertical (channel = x).
class DrcTest : public ::testing::Test {
 protected:
  DrcTest() : spec_(13, 13), board_(spec_, 2) {
    board_.netlist().add({"alpha", SignalClass::kECL, false, {}});
    board_.netlist().add({"beta", SignalClass::kECL, false, {}});
  }

  Connection conn(ConnId id, NetId net, Point a, Point b) {
    Connection c;
    c.id = id;
    c.net = net;
    c.a = a;
    c.b = b;
    conns_.push_back(c);
    return c;
  }

  static SavedRoute claim(ConnId id, std::vector<Point> vias,
                          std::vector<RouteHop> hops) {
    SavedRoute sr;
    sr.id = id;
    sr.strategy = RouteStrategy::kZeroVia;
    sr.geom.vias = std::move(vias);
    sr.geom.hops = std::move(hops);
    return sr;
  }

  CheckReport run(const std::vector<SavedRoute>& routes,
                  const DrcOptions& opts = {}) {
    return drc_check(board_, conns_, routes, opts);
  }

  GridSpec spec_;
  Board board_;
  ConnectionList conns_;
};

TEST_F(DrcTest, CleanClaimHasNoFindings) {
  // a=(2,2)->grid(6,6), b=(8,2)->grid(24,6): one abutting span in the via
  // row between them.
  conn(0, 0, {2, 2}, {8, 2});
  CheckReport rep = run({claim(0, {}, {{0, {{6, {7, 23}}}}})});
  EXPECT_TRUE(rep.findings.empty()) << format_finding(rep.findings.front());
  EXPECT_TRUE(rep.ok());
  EXPECT_EQ(rep.connections_checked, 1u);
  EXPECT_GT(rep.segments_checked, 0u);
}

TEST_F(DrcTest, DetectsCrossNetShort) {
  // Net 'alpha' runs a trace along via row y=6; net 'beta' drills a via at
  // (4,2) = grid (12,6), right through that trace.
  conn(0, 0, {2, 2}, {8, 2});
  conn(1, 1, {4, 1}, {4, 3});
  CheckReport rep = run({
      claim(0, {}, {{0, {{6, {7, 23}}}}}),
      claim(1, {{4, 2}},
            {{1, {{12, {4, 5}}}}, {1, {{12, {7, 8}}}}}),
  });
  ASSERT_EQ(rep.findings.size(), 1u) << format_finding(rep.findings[1]);
  EXPECT_EQ(rep.count_rule("DRC-SHORT"), 1u);
  EXPECT_FALSE(rep.ok());
  EXPECT_NE(rep.first_error().find("overlaps"), std::string::npos);
}

TEST_F(DrcTest, DetectsSubClearanceParallelTraces) {
  // With a 20-mil gap rule, two traces in adjacent routing channels (16
  // mils center-to-center, 8 mils of air between 8-mil traces) violate.
  DesignRules rules = DesignRules::paper_process();
  rules.trace_gap_mils = 20;
  Board tight(spec_, 2, rules);
  ConnectionList conns;
  Connection c0;
  c0.id = 0;
  c0.net = 0;
  c0.a = {2, 2};
  c0.b = {8, 2};
  conns.push_back(c0);
  Connection c1;
  c1.id = 1;
  c1.net = 1;
  c1.a = {2, 3};
  c1.b = {8, 3};
  conns.push_back(c1);
  std::vector<SavedRoute> routes = {
      claim(0, {}, {{0, {{7, {6, 24}}}}}),  // channel y=7, fed from row 6
      claim(1, {}, {{0, {{8, {6, 24}}}}}),  // channel y=8, fed from row 9
  };
  CheckReport rep = drc_check(tight, conns, routes);
  ASSERT_EQ(rep.findings.size(), 1u) << format_finding(rep.findings[1]);
  EXPECT_EQ(rep.count_rule("DRC-CLEARANCE"), 1u);
  EXPECT_NE(rep.first_error().find("gap 8 mils < 20 mils"),
            std::string::npos);

  // The same artwork under the paper's 8-mil rule is legal.
  CheckReport ok = drc_check(board_, conns, routes);
  EXPECT_TRUE(ok.findings.empty()) << format_finding(ok.findings.front());
}

TEST_F(DrcTest, DetectsOrphanVia) {
  conn(0, 0, {2, 2}, {8, 2});
  // Valid trace, plus a drilled via at (5,4) that no trace touches.
  CheckReport rep = run({claim(0, {{5, 4}}, {{0, {{6, {7, 23}}}}})});
  ASSERT_EQ(rep.findings.size(), 1u) << format_finding(rep.findings[1]);
  EXPECT_EQ(rep.count_rule("DRC-VIA-ORPHAN"), 1u);
  EXPECT_EQ(rep.findings.front().severity, CheckSeverity::kWarning);
  EXPECT_TRUE(rep.ok());  // a warning, not an error
}

TEST_F(DrcTest, DetectsUnroutedConnectionAsOpen) {
  conn(0, 0, {2, 2}, {8, 2});
  CheckReport rep = run({});
  ASSERT_EQ(rep.findings.size(), 1u);
  EXPECT_EQ(rep.count_rule("DRC-OPEN"), 1u);
  EXPECT_NE(rep.first_error().find("unrouted"), std::string::npos);
}

TEST_F(DrcTest, DetectsDisconnectedClaimAsOpenPlusStub) {
  // The trace starts at a but stops half way: unreachable b (an error)
  // and a dangling span (a warning).
  conn(0, 0, {2, 2}, {8, 2});
  CheckReport rep = run({claim(0, {}, {{0, {{6, {7, 15}}}}})});
  EXPECT_EQ(rep.count_rule("DRC-OPEN"), 1u);
  EXPECT_EQ(rep.count_rule("DRC-STUB"), 1u);
  EXPECT_EQ(rep.findings.size(), 2u);
  EXPECT_FALSE(rep.ok());
}

TEST_F(DrcTest, DetectsOutOfBoardClaim) {
  // A valid route plus a hop span claiming a channel beyond the board.
  conn(0, 0, {2, 2}, {8, 2});
  CheckReport rep = run({claim(
      0, {}, {{0, {{6, {7, 23}}}}, {0, {{50, {5, 8}}}}})});
  ASSERT_EQ(rep.findings.size(), 1u) << format_finding(rep.findings[1]);
  EXPECT_EQ(rep.count_rule("DRC-BOUNDS"), 1u);
}

TEST_F(DrcTest, SameNetOverlapIsNotAShort) {
  // Two connections of the same net may share copper (a T junction).
  conn(0, 0, {2, 2}, {8, 2});
  conn(1, 0, {2, 2}, {6, 2});
  CheckReport rep = run({
      claim(0, {}, {{0, {{6, {7, 23}}}}}),
      claim(1, {}, {{0, {{6, {7, 17}}}}}),
  });
  EXPECT_EQ(rep.count_rule("DRC-SHORT"), 0u);
  EXPECT_TRUE(rep.ok()) << rep.first_error();
}

TEST_F(DrcTest, FindingCapTruncatesReport) {
  for (int i = 0; i < 6; ++i) {
    conn(i, 0, {2, static_cast<Coord>(2 + i)},
         {8, static_cast<Coord>(2 + i)});
  }
  DrcOptions opts;
  opts.max_findings = 3;
  CheckReport rep = run({}, opts);  // six opens, capped at three
  EXPECT_EQ(rep.count_rule("DRC-OPEN"), 3u);
  EXPECT_EQ(rep.count_rule("DRC-TRUNCATED"), 1u);
}

TEST_F(DrcTest, RoutedWorkloadBoardIsDrcCleanBothPaths) {
  // The negative test the whole engine is calibrated against: a board the
  // router finished must be clean — via the RouteDB and via a routes-file
  // round trip.
  BoardGenParams p;
  p.name = "drc-neg";
  p.width_in = 4;
  p.height_in = 4;
  p.layers = 4;
  p.target_connections = 150;
  p.seed = 11;
  GeneratedBoard gb = generate_board(p);
  Router router(gb.board->stack(), RouterConfig{});
  ASSERT_TRUE(router.route_all(gb.strung.connections));

  CheckReport via_db =
      drc_check(*gb.board, gb.strung.connections, router.db());
  EXPECT_TRUE(via_db.findings.empty())
      << format_finding(via_db.findings.front());

  RoutesReadResult rr = read_routes_string(
      write_routes_string(router.db(), gb.strung.connections));
  ASSERT_TRUE(rr.ok()) << rr.error;
  CheckReport via_file =
      drc_check(*gb.board, gb.strung.connections, rr.routes);
  EXPECT_TRUE(via_file.findings.empty())
      << format_finding(via_file.findings.front());
}

TEST(CheckReportTest, MachineReadableFindingFormat) {
  Finding f;
  f.rule = "DRC-SHORT";
  f.severity = CheckSeverity::kError;
  f.where = "layer 0 ch 6 [10,12]";
  f.message = "trace overlaps via";
  EXPECT_EQ(format_finding(f),
            "DRC-SHORT:error:layer 0 ch 6 [10,12]: trace overlaps via");
}

TEST(CheckReportTest, MergeAndCounts) {
  CheckReport a;
  a.add("X-ONE", CheckSeverity::kError, "here", "boom");
  a.segments_checked = 3;
  CheckReport b;
  b.add("X-TWO", CheckSeverity::kWarning, "there", "hmm");
  b.connections_checked = 2;
  a.merge(std::move(b));
  EXPECT_EQ(a.findings.size(), 2u);
  EXPECT_EQ(a.error_count(), 1u);
  EXPECT_EQ(a.warning_count(), 1u);
  EXPECT_EQ(a.segments_checked, 3u);
  EXPECT_EQ(a.connections_checked, 2u);
  EXPECT_FALSE(a.ok());
  EXPECT_EQ(a.count_rule("X-ONE"), 1u);
}

TEST(CheckSuiteTest, StandardRegistersAllCheckers) {
  CheckSuite suite = CheckSuite::standard();
  for (const char* name : {"lint", "audit.stack", "audit.routes",
                           "audit.tiles", "footprint", "drc"}) {
    EXPECT_NE(suite.find(name), nullptr) << name;
  }
  EXPECT_EQ(suite.checkers().size(), 6u);
}

TEST(CheckSuiteTest, RunsOnlyApplicableCheckers) {
  // A context with just a board: lint runs, everything else is skipped.
  GridSpec spec(13, 13);
  Board board(spec, 2);
  CheckContext ctx;
  ctx.board = &board;
  CheckReport rep = CheckSuite::standard().run(ctx);
  EXPECT_TRUE(rep.ok()) << rep.first_error();
  EXPECT_EQ(rep.connections_checked, 0u);
}

TEST(CheckSuiteTest, UnknownCheckerNameIsAnError) {
  CheckContext ctx;
  CheckReport rep = CheckSuite::standard().run(ctx, {"no-such-checker"});
  EXPECT_EQ(rep.count_rule("CHECK-UNKNOWN"), 1u);
  EXPECT_FALSE(rep.ok());
}

TEST(CheckSuiteTest, SeverityOverridePromotesWarning) {
  GridSpec spec(13, 13);
  Board board(spec, 2);
  ConnectionList conns;
  Connection c;
  c.id = 0;
  c.net = 0;
  c.a = {2, 2};
  c.b = {8, 2};
  conns.push_back(c);
  // An orphan via is normally a warning; promote it to an error.
  SavedRoute sr;
  sr.id = 0;
  sr.geom.vias = {{5, 4}};
  sr.geom.hops = {{0, {{6, {7, 23}}}}};
  std::vector<SavedRoute> routes = {sr};
  CheckContext ctx;
  ctx.board = &board;
  ctx.conns = &conns;
  ctx.routes = &routes;

  CheckSuite strict = CheckSuite::standard();
  strict.override_severity("DRC-VIA-ORPHAN", CheckSeverity::kError);
  CheckReport rep = strict.run(ctx, {"drc"});
  EXPECT_EQ(rep.count_rule("DRC-VIA-ORPHAN"), 1u);
  EXPECT_FALSE(rep.ok());
  EXPECT_TRUE(CheckSuite::standard().run(ctx, {"drc"}).ok());
}

}  // namespace
}  // namespace grr
