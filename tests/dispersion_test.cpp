// Tests for surface-mount dispersion patterns (paper Sec 11).
#include "board/dispersion.hpp"

#include <gtest/gtest.h>

#include "route/audit.hpp"
#include "route/router.hpp"

namespace grr {
namespace {

class DispersionTest : public ::testing::Test {
 protected:
  DispersionTest() : spec_(21, 17), stack_(spec_, 4) {}
  GridSpec spec_;
  LayerStack stack_;
};

TEST_F(DispersionTest, PadsFanOutToVias) {
  // Off-via-grid pads, as fine-pitch SMD packages have.
  std::vector<Point> pads = {{13, 10}, {13, 13}, {13, 16}};
  DispersionResult r = build_dispersion(stack_, pads);
  ASSERT_TRUE(r.ok()) << r.error;
  ASSERT_EQ(r.pins.size(), 3u);
  for (const DispersedPin& pin : r.pins) {
    // The via end point is drilled through all layers and usable by the
    // router.
    EXPECT_EQ(stack_.via_use_count(pin.via), stack_.num_layers());
    // The pad exists only on the surface layer.
    EXPECT_TRUE(stack_.occupied(0, pin.pad_grid));
    for (int l = 1; l < stack_.num_layers(); ++l) {
      EXPECT_FALSE(stack_.occupied(static_cast<LayerId>(l), pin.pad_grid));
    }
    // All fan-out metal is on the surface layer.
    for (SegId s : pin.segs) {
      if (!stack_.pool()[s].is_via) {
        EXPECT_EQ(stack_.pool()[s].layer, 0);
      }
    }
  }
  // Distinct pads use distinct vias.
  EXPECT_FALSE(r.pins[0].via == r.pins[1].via);
  EXPECT_FALSE(r.pins[1].via == r.pins[2].via);
  EXPECT_TRUE(audit_stack(stack_).ok());
}

TEST_F(DispersionTest, RouterUsesDispersedEndpoints) {
  std::vector<Point> pads = {{13, 10}, {40, 28}};
  DispersionResult r = build_dispersion(stack_, pads);
  ASSERT_TRUE(r.ok()) << r.error;
  Connection c;
  c.id = 0;
  c.a = r.pins[0].via;
  c.b = r.pins[1].via;
  Router router(stack_);
  ASSERT_TRUE(router.route_all({c}));
  CheckReport audit = audit_all(stack_, router.db(), {c});
  EXPECT_TRUE(audit.ok()) << audit.first_error();
}

TEST_F(DispersionTest, RemoveRestoresEmptyBoard) {
  std::vector<Point> pads = {{13, 10}, {13, 13}};
  DispersionResult r = build_dispersion(stack_, pads);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(stack_.segment_count(), 0u);
  remove_dispersion(stack_, r.pins);
  EXPECT_EQ(stack_.segment_count(), 0u);
  EXPECT_TRUE(audit_stack(stack_).ok());
}

TEST_F(DispersionTest, FailsAtomicallyWhenNoViaFree) {
  // Occupy every via site near the pad so no fan-out target exists.
  Point pad{13, 10};
  Point center = spec_.nearest_via(pad);
  for (Coord dx = -2; dx <= 2; ++dx) {
    for (Coord dy = -2; dy <= 2; ++dy) {
      Point v{center.x + dx, center.y + dy};
      if (spec_.via_in_board(v) && stack_.via_free(v)) {
        stack_.drill_via(v, kObstacleConn);
      }
    }
  }
  std::size_t before = stack_.segment_count();
  DispersionResult r = build_dispersion(stack_, {pad});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(stack_.segment_count(), before);  // nothing leaked
}

TEST_F(DispersionTest, FailureRollsBackEarlierPins) {
  // First pad disperses fine; second pad is hopeless. The whole batch must
  // roll back.
  Point bad{40, 28};
  Point center = spec_.nearest_via(bad);
  for (Coord dx = -2; dx <= 2; ++dx) {
    for (Coord dy = -2; dy <= 2; ++dy) {
      Point v{center.x + dx, center.y + dy};
      if (spec_.via_in_board(v) && stack_.via_free(v)) {
        stack_.drill_via(v, kObstacleConn);
      }
    }
  }
  std::size_t before = stack_.segment_count();
  DispersionResult r = build_dispersion(stack_, {{13, 10}, bad});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(stack_.segment_count(), before);
}

TEST_F(DispersionTest, ThroughHoleOffGridPins) {
  // Sec 11's off-grid through-hole pins: the hole occupies every layer and
  // the fan-out trace may use any layer.
  std::vector<Point> pins = {{13, 10}, {16, 14}};
  DispersionResult r = build_dispersion(stack_, pins, /*surface=*/0,
                                        /*search_radius=*/2,
                                        /*through_hole=*/true);
  ASSERT_TRUE(r.ok()) << r.error;
  for (const DispersedPin& pin : r.pins) {
    for (int l = 0; l < stack_.num_layers(); ++l) {
      EXPECT_TRUE(stack_.occupied(static_cast<LayerId>(l), pin.pad_grid));
    }
    EXPECT_EQ(stack_.via_use_count(pin.via), stack_.num_layers());
  }
  EXPECT_TRUE(audit_stack(stack_).ok());
  remove_dispersion(stack_, r.pins);
  EXPECT_EQ(stack_.segment_count(), 0u);
}

TEST_F(DispersionTest, ThroughHoleUsesAnotherLayerWhenSurfaceBlocked) {
  // Wall the surface layer around the pin so the surface fan-out fails;
  // a through-hole pin can still fan out on a deeper layer.
  Point pin{13, 10};
  for (Coord x = 7; x <= 19; ++x) {
    for (Coord y = 7; y <= 13; ++y) {
      if (Point{x, y} == pin) continue;
      if (!stack_.occupied(0, {x, y})) {
        stack_.insert_span({0, y, {x, x}}, kObstacleConn);
      }
    }
  }
  DispersionResult smd = build_dispersion(stack_, {pin}, 0, 2, false);
  EXPECT_FALSE(smd.ok());
  DispersionResult th = build_dispersion(stack_, {pin}, 0, 2, true);
  ASSERT_TRUE(th.ok()) << th.error;
  // The fan-out trace sits on a non-surface layer.
  bool deep_metal = false;
  for (SegId s : th.pins[0].segs) {
    if (!stack_.pool()[s].is_via && stack_.pool()[s].layer != 0) {
      deep_metal = true;
    }
  }
  EXPECT_TRUE(deep_metal);
}

TEST_F(DispersionTest, RejectsOccupiedPad) {
  stack_.insert_span({0, 10, {13, 13}}, kObstacleConn);
  DispersionResult r = build_dispersion(stack_, {{13, 10}});
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("occupied"), std::string::npos);
}

}  // namespace
}  // namespace grr
