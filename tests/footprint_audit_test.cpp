// Footprint soundness: the shadow access tracker, the FOOT-* checkers, and
// the neutrality of the whole apparatus.
//
// Three layers of proof:
//   1. seeded violations — hand-built audit logs with a deliberately shrunk
//      footprint / an out-of-cover write make each FOOT-* rule fire (a
//      checker that cannot fail proves nothing);
//   2. live evidence — routing Table 1 boards with auditing on yields a
//      non-trivial log with zero read/write escapes, on both channel stores
//      and through the standard CheckSuite front door;
//   3. neutrality — auditing changes no routing outcome: stats and realized
//      geometry are bit-identical with the tracker on and off.
#include <gtest/gtest.h>

#include "check/footprint_check.hpp"
#include "check/registry.hpp"
#include "route/batch_router.hpp"
#include "workload/suite.hpp"

namespace grr {
namespace {

// ---------------------------------------------------------------------------
// Rect algebra the checker is built on.

TEST(FootprintAlgebraTest, UncoveredPieces) {
  const Rect r{{0, 9}, {0, 9}};
  EXPECT_TRUE(uncovered_pieces(r, {{{0, 9}, {0, 9}}}).empty());
  EXPECT_TRUE(uncovered_pieces(r, {{{-5, 20}, {-5, 20}}}).empty());
  // Split cover: two halves leave nothing.
  EXPECT_TRUE(
      uncovered_pieces(r, {{{0, 4}, {0, 9}}, {{5, 9}, {0, 9}}}).empty());
  // A hole remains.
  auto pieces = uncovered_pieces(r, {{{0, 9}, {0, 8}}});
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0], (Rect{{0, 9}, {9, 9}}));
  // Disjoint cover leaves the whole rect.
  pieces = uncovered_pieces(r, {{{20, 30}, {20, 30}}});
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0], r);
}

TEST(FootprintAlgebraTest, UnionArea) {
  EXPECT_EQ(union_area({}), 0);
  EXPECT_EQ(union_area({{{0, 9}, {0, 9}}}), 100);
  // Overlap counted once.
  EXPECT_EQ(union_area({{{0, 9}, {0, 9}}, {{5, 14}, {0, 9}}}), 150);
  // Duplicate counted once.
  EXPECT_EQ(union_area({{{0, 9}, {0, 9}}, {{0, 9}, {0, 9}}}), 100);
}

TEST(FootprintAlgebraTest, CoverRectsExpandBandsToStrips) {
  const Rect extent{{0, 99}, {0, 49}};
  ReadFootprint fp;
  fp.add_rect({{10, 20}, {10, 20}});
  fp.add_xband({30, 35});
  fp.add_yband({40, 45});
  auto cover = footprint_cover_rects(fp, extent);
  ASSERT_EQ(cover.size(), 3u);
  EXPECT_EQ(cover[0], (Rect{{10, 20}, {10, 20}}));
  EXPECT_EQ(cover[1], (Rect{{30, 35}, {0, 49}}));   // xband: any y
  EXPECT_EQ(cover[2], (Rect{{0, 99}, {40, 45}}));   // yband: any x

  ReadFootprint everything;
  everything.everything = true;
  auto all = footprint_cover_rects(everything, extent);
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0], extent);
}

// ---------------------------------------------------------------------------
// Seeded violations: every FOOT-* rule must be able to fire.

FootprintAuditLog seed_log() {
  FootprintAuditLog log;
  log.extent = {{0, 199}, {0, 199}};
  PlanAuditRecord rec;
  rec.id = 7;
  rec.found = true;
  rec.installed = true;
  rec.declared.add_rect({{0, 49}, {0, 49}});
  rec.reads = {{{10, 20}, {10, 20}}};
  rec.cover = {{{12, 18}, {15, 15}}};
  rec.writes = {{{12, 18}, {15, 15}}};
  log.records.push_back(std::move(rec));
  return log;
}

TEST(FootprintCheckTest, CleanLogPasses) {
  CheckReport rep = check_footprints(seed_log());
  EXPECT_TRUE(rep.ok()) << rep.first_error();
  EXPECT_EQ(rep.findings.size(), 0u);
}

TEST(FootprintCheckTest, ReadEscapeFires) {
  FootprintAuditLog log = seed_log();
  // Shrink the declaration so the actual read sticks out.
  log.records[0].declared.rects[0] = {{0, 14}, {0, 49}};
  CheckReport rep = check_footprints(log);
  EXPECT_FALSE(rep.ok());
  EXPECT_EQ(rep.count_rule("FOOT-READ-ESCAPE"), 1u);
}

TEST(FootprintCheckTest, ReadEscapeSeesThroughBands) {
  // A band covers the full board on one axis; the checker must honor that
  // (no false escape) yet still catch a read off the band.
  FootprintAuditLog log = seed_log();
  PlanAuditRecord& rec = log.records[0];
  rec.declared = ReadFootprint{};
  rec.declared.add_yband({10, 20});
  rec.reads = {{{0, 199}, {12, 18}}};  // inside the horizontal strip
  EXPECT_TRUE(check_footprints(log).ok());
  rec.reads.push_back({{50, 60}, {25, 30}});  // off the strip
  CheckReport rep = check_footprints(log);
  EXPECT_EQ(rep.count_rule("FOOT-READ-ESCAPE"), 1u);
}

TEST(FootprintCheckTest, WriteEscapeFires) {
  FootprintAuditLog log = seed_log();
  // The install touched a rect the plan's geometry does not contain.
  log.records[0].writes.push_back({{100, 104}, {100, 100}});
  CheckReport rep = check_footprints(log);
  EXPECT_FALSE(rep.ok());
  EXPECT_EQ(rep.count_rule("FOOT-WRITE-ESCAPE"), 1u);
  // Uninstalled plans have no write obligation.
  log.records[0].installed = false;
  EXPECT_TRUE(check_footprints(log).ok());
}

TEST(FootprintCheckTest, SlackFires) {
  FootprintAuditLog log = seed_log();
  FootprintCheckOptions opts;
  opts.slack_ratio = 4.0;
  opts.slack_min_area = 100;
  // Declared 2500 cells, read 121: ratio ~20.7 > 4.
  CheckReport rep = check_footprints(log, opts);
  EXPECT_TRUE(rep.ok());  // slack is a warning, not an error
  EXPECT_EQ(rep.count_rule("FOOT-SLACK"), 1u);
  // Failed plans declare everything; that is policy, not slack.
  log.records[0].found = false;
  log.records[0].declared = ReadFootprint{};
  log.records[0].declared.everything = true;
  EXPECT_EQ(check_footprints(log, opts).count_rule("FOOT-SLACK"), 0u);
}

// ---------------------------------------------------------------------------
// Live evidence over the Table 1 suite.

class FootprintAuditSuite
    : public ::testing::TestWithParam<BoardGenParams> {};

TEST_P(FootprintAuditSuite, NoEscapesOnEitherStore) {
  for (ChannelStore store : {ChannelStore::kList, ChannelStore::kFlat}) {
    BoardGenParams params = GetParam();
    params.channel_store = store;
    GeneratedBoard gb = generate_board(params);

    RouterConfig cfg;
    cfg.threads = 4;
    cfg.access_audit = true;
    BatchRouter br(gb.board->stack(), cfg);
    br.route_all(gb.strung.connections);

    const FootprintAuditLog& log = br.footprint_log();
    ASSERT_GT(log.records.size(), 0u) << "no speculative plans audited";
    bool any_reads = false;
    for (const PlanAuditRecord& rec : log.records) {
      if (!rec.reads.empty()) any_reads = true;
    }
    EXPECT_TRUE(any_reads) << "tracker recorded nothing";

    CheckReport rep = check_footprints(log);
    EXPECT_EQ(rep.count_rule("FOOT-READ-ESCAPE"), 0u)
        << rep.first_error();
    EXPECT_EQ(rep.count_rule("FOOT-WRITE-ESCAPE"), 0u)
        << rep.first_error();
    EXPECT_TRUE(rep.ok()) << rep.first_error();
  }
}

TEST_P(FootprintAuditSuite, StandardSuiteRunsFootprintChecker) {
  GeneratedBoard gb = generate_board(GetParam());
  RouterConfig cfg;
  cfg.threads = 4;
  cfg.access_audit = true;
  BatchRouter br(gb.board->stack(), cfg);
  br.route_all(gb.strung.connections);

  CheckContext ctx;
  ctx.board = gb.board.get();
  ctx.conns = &gb.strung.connections;
  ctx.db = &br.db();
  ctx.footprints = &br.footprint_log();
  CheckReport rep = CheckSuite::standard().run(ctx, {"footprint"});
  EXPECT_TRUE(rep.ok()) << rep.first_error();

  // The same evidence, tampered with, must fail through the same front
  // door: shrink the first bounded declaration that actually read
  // something.
  FootprintAuditLog tampered = br.footprint_log();
  bool shrunk = false;
  for (PlanAuditRecord& rec : tampered.records) {
    if (rec.declared.everything || rec.reads.empty()) continue;
    rec.declared = ReadFootprint{};
    rec.declared.add_rect({{0, 0}, {0, 0}});
    shrunk = true;
    break;
  }
  ASSERT_TRUE(shrunk);
  ctx.footprints = &tampered;
  CheckReport bad = CheckSuite::standard().run(ctx, {"footprint"});
  EXPECT_FALSE(bad.ok());
  EXPECT_GT(bad.count_rule("FOOT-READ-ESCAPE"), 0u);
}

// ---------------------------------------------------------------------------
// Neutrality: auditing must not change what gets routed.

void expect_same_outcome(const std::vector<Connection>& conns,
                         const BatchRouter& a, const BatchRouter& b) {
  EXPECT_EQ(a.stats().routed, b.stats().routed);
  EXPECT_EQ(a.stats().failed, b.stats().failed);
  EXPECT_EQ(a.stats().rip_ups, b.stats().rip_ups);
  EXPECT_EQ(a.stats().vias_added, b.stats().vias_added);
  EXPECT_EQ(a.stats().lee_searches, b.stats().lee_searches);
  EXPECT_EQ(a.stats().lee_expansions, b.stats().lee_expansions);
  for (const Connection& c : conns) {
    const RouteRecord& ra = a.db().rec(c.id);
    const RouteRecord& rb = b.db().rec(c.id);
    ASSERT_EQ(ra.status, rb.status) << "conn " << c.id;
    ASSERT_EQ(ra.strategy, rb.strategy) << "conn " << c.id;
    ASSERT_EQ(ra.geom.vias, rb.geom.vias) << "conn " << c.id;
    ASSERT_EQ(ra.geom.hops.size(), rb.geom.hops.size()) << "conn " << c.id;
    for (std::size_t h = 0; h < ra.geom.hops.size(); ++h) {
      ASSERT_EQ(ra.geom.hops[h].spans, rb.geom.hops[h].spans)
          << "conn " << c.id << " hop " << h;
    }
  }
}

TEST(FootprintNeutralityTest, AuditOnIsBitIdenticalToOff) {
  BoardGenParams params = table1_board("nmc-4L", 0.35);
  GeneratedBoard on = generate_board(params);
  GeneratedBoard off = generate_board(params);

  RouterConfig cfg_on;
  cfg_on.threads = 4;
  cfg_on.access_audit = true;
  BatchRouter br_on(on.board->stack(), cfg_on);
  br_on.route_all(on.strung.connections);

  RouterConfig cfg_off;
  cfg_off.threads = 4;
  BatchRouter br_off(off.board->stack(), cfg_off);
  br_off.route_all(off.strung.connections);

  EXPECT_GT(br_on.footprint_log().records.size(), 0u);
  EXPECT_EQ(br_off.footprint_log().records.size(), 0u);
  ASSERT_NO_FATAL_FAILURE(
      expect_same_outcome(on.strung.connections, br_on, br_off));
}

std::string row_name(
    const ::testing::TestParamInfo<BoardGenParams>& info) {
  std::string n = info.param.name;
  for (char& c : n) {
    if (c == '-') c = '_';
  }
  return n;
}

INSTANTIATE_TEST_SUITE_P(Table1, FootprintAuditSuite,
                         ::testing::ValuesIn(table1_suite(0.4)), row_name);

}  // namespace
}  // namespace grr
