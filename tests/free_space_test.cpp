// Tests for the three single-layer algorithms (paper Sec 7): Trace, Vias,
// Obstructions.
#include "layer/free_space.hpp"

#include <gtest/gtest.h>

#include <set>

#include "layer/layer_stack.hpp"

namespace grr {
namespace {

class FreeSpaceTest : public ::testing::Test {
 protected:
  FreeSpaceTest() : spec_(11, 9), stack_(spec_, 2) {}

  Point drill(Coord vx, Coord vy, ConnId conn = kPinConn) {
    stack_.drill_via({vx, vy}, conn);
    return spec_.grid_of_via({vx, vy});
  }

  /// Validate the paper's trimming invariants on a returned span list and
  /// its end points.
  void check_spans(const Layer& layer, const std::vector<ChannelSpan>& spans,
                   Point a, Point b) {
    ASSERT_FALSE(spans.empty());
    auto touches = [&](const ChannelSpan& cs, Point p) {
      Coord pc = layer.across_of(p), pv = layer.along_of(p);
      if (cs.channel == pc) {
        return cs.span.hi == pv - 1 || cs.span.lo == pv + 1;
      }
      return std::abs(cs.channel - pc) == 1 && cs.span.contains(pv);
    };
    EXPECT_TRUE(touches(spans.front(), a));
    EXPECT_TRUE(touches(spans.back(), b));
    for (std::size_t i = 0; i + 1 < spans.size(); ++i) {
      EXPECT_EQ(std::abs(spans[i].channel - spans[i + 1].channel), 1);
      EXPECT_TRUE(spans[i].span.overlaps(spans[i + 1].span));
    }
  }

  GridSpec spec_;
  LayerStack stack_;
};

TEST_F(FreeSpaceTest, StraightTraceOnEmptyLayer) {
  Point a = drill(1, 1), b = drill(8, 1);
  const Layer& h = stack_.layer(0);
  auto spans = trace_path(h, stack_.pool(), a, b, spec_.extent());
  ASSERT_TRUE(spans.has_value());
  check_spans(h, *spans, a, b);
}

TEST_F(FreeSpaceTest, StraightTraceAvoidsViaRow) {
  // Between two vias in the same via row, the trace should prefer an
  // adjacent non-via channel so intermediate via sites stay drillable.
  Point a = drill(1, 2), b = drill(9, 2);
  const Layer& h = stack_.layer(0);
  auto spans =
      trace_path(h, stack_.pool(), a, b, spec_.extent(),
                 kDefaultMaxFreeNodes, nullptr, spec_.period());
  ASSERT_TRUE(spans.has_value());
  check_spans(h, *spans, a, b);
  long via_row_len = 0, total_len = 0;
  for (const ChannelSpan& cs : *spans) {
    total_len += cs.span.length();
    if (cs.channel % spec_.period() == 0) via_row_len += cs.span.length();
  }
  EXPECT_LT(via_row_len, total_len / 2)
      << "most of the trace should run off the via row";
}

TEST_F(FreeSpaceTest, TraceDetoursAroundWall) {
  // A vertical wall of used space between a and b, with a hole at the top.
  Point a = drill(1, 4), b = drill(8, 4);
  const Layer& h = stack_.layer(0);
  // Wall at x=15 spanning y=3..24 on layer 0 (channels are y).
  std::vector<SegId> wall;
  for (Coord y = 3; y <= 24; ++y) {
    wall.push_back(stack_.insert_span({0, y, {15, 15}}, 99));
  }
  auto spans = trace_path(h, stack_.pool(), a, b, spec_.extent());
  ASSERT_TRUE(spans.has_value());
  check_spans(h, *spans, a, b);
  // The trace must pass above the wall (y <= 2).
  bool passes_gap = false;
  for (const ChannelSpan& cs : *spans) {
    if (cs.channel <= 2 && cs.span.contains(15)) passes_gap = true;
  }
  EXPECT_TRUE(passes_gap);
}

TEST_F(FreeSpaceTest, TraceFailsWhenWalledIn) {
  Point a = drill(2, 2), b = drill(8, 2);
  // Seal a (grid (6,6)) in a ring of used space on layer 0.
  for (Coord y = 5; y <= 7; ++y) {
    stack_.insert_span({0, y, {5, 5}}, 99);  // left wall (x=5)
    stack_.insert_span({0, y, {7, 7}}, 99);  // right wall (x=7)
  }
  stack_.insert_span({0, 4, {5, 7}}, 99);  // below
  stack_.insert_span({0, 8, {5, 7}}, 99);  // above
  auto spans =
      trace_path(stack_.layer(0), stack_.pool(), a, b, spec_.extent());
  EXPECT_FALSE(spans.has_value());
}

TEST_F(FreeSpaceTest, TraceRespectsBox) {
  Point a = drill(1, 4), b = drill(8, 4);
  // Wall with the only hole far above the box.
  for (Coord y = 3; y <= 24; ++y) {
    stack_.insert_span({0, y, {15, 15}}, 99);
  }
  Rect tight{{0, 30}, {6, 18}};  // excludes the y<=2 gap
  auto spans = trace_path(stack_.layer(0), stack_.pool(), a, b, tight);
  EXPECT_FALSE(spans.has_value());
}

TEST_F(FreeSpaceTest, AdjacentEndpointsNeedNoMetal) {
  GridSpec dense(5, 5, /*tracks_between_vias=*/0);
  LayerStack st(dense, 2);
  st.drill_via({1, 1}, kPinConn);
  st.drill_via({2, 1}, kPinConn);
  auto spans = trace_path(st.layer(0), st.pool(), dense.grid_of_via({1, 1}),
                          dense.grid_of_via({2, 1}), dense.extent());
  ASSERT_TRUE(spans.has_value());
  EXPECT_TRUE(spans->empty());
}

TEST_F(FreeSpaceTest, VerticalLayerTrace) {
  Point a = drill(3, 1), b = drill(3, 7);
  const Layer& v = stack_.layer(1);
  auto spans = trace_path(v, stack_.pool(), a, b, spec_.extent());
  ASSERT_TRUE(spans.has_value());
  check_spans(v, *spans, a, b);
}

TEST_F(FreeSpaceTest, ReachableViasOnEmptyBoard) {
  Point a = drill(5, 4);
  std::set<std::pair<Coord, Coord>> seen;
  reachable_vias(stack_.layer(0), stack_.pool(), spec_.period(), a,
                 spec_.extent(), [&](Point g) {
                   Point v = spec_.via_of_grid(g);
                   seen.insert({v.x, v.y});
                 });
  // On an empty layer every via site except a's own is reachable.
  EXPECT_EQ(seen.size(),
            static_cast<std::size_t>(11 * 9 - 1));
  EXPECT_FALSE(seen.contains({5, 4}));
}

TEST_F(FreeSpaceTest, ReachableViasRespectsStripBox) {
  Point a = drill(5, 4);
  // Horizontal strip of one via row: y in [9-3, 9+3] grid.
  Rect strip{{0, 30}, {9, 15}};
  std::set<std::pair<Coord, Coord>> seen;
  reachable_vias(stack_.layer(0), stack_.pool(), spec_.period(), a, strip,
                 [&](Point g) {
                   Point v = spec_.via_of_grid(g);
                   seen.insert({v.x, v.y});
                 });
  for (auto& [vx, vy] : seen) {
    EXPECT_GE(vy * 3, 9);
    EXPECT_LE(vy * 3, 15);
    (void)vx;
  }
  EXPECT_FALSE(seen.empty());
}

TEST_F(FreeSpaceTest, ReachableViasExcludesWalledRegion) {
  Point a = drill(2, 4);
  // Full-height wall at x=15 (no holes) on layer 0.
  for (Coord y = 0; y <= 24; ++y) {
    stack_.insert_span({0, y, {15, 15}}, 99);
  }
  std::set<Coord> xs;
  reachable_vias(stack_.layer(0), stack_.pool(), spec_.period(), a,
                 spec_.extent(),
                 [&](Point g) { xs.insert(spec_.via_of_grid(g).x); });
  for (Coord x : xs) EXPECT_LT(x * 3, 15);
  EXPECT_FALSE(xs.empty());
}

TEST_F(FreeSpaceTest, TouchDetectsOppositeEndpoint) {
  Point a = drill(1, 4);
  Point b = drill(8, 4);
  FreeSpaceStats st = reachable_vias(
      stack_.layer(0), stack_.pool(), spec_.period(), a, spec_.extent(),
      [](Point) {}, kDefaultMaxFreeNodes, &b);
  EXPECT_TRUE(st.touched);
  // Wall b off completely on this layer.
  Point bg = b;
  for (Coord y = bg.y - 1; y <= bg.y + 1; ++y) {
    for (Coord x = bg.x - 1; x <= bg.x + 1; ++x) {
      if (Point{x, y} == b) continue;
      if (!stack_.occupied(0, {x, y})) {
        stack_.insert_span({0, y, {x, x}}, 99);
      }
    }
  }
  FreeSpaceStats st2 = reachable_vias(
      stack_.layer(0), stack_.pool(), spec_.period(), a, spec_.extent(),
      [](Point) {}, kDefaultMaxFreeNodes, &b);
  EXPECT_FALSE(st2.touched);
}

TEST_F(FreeSpaceTest, ObstructionsFindsNeighbors) {
  Point a = drill(5, 4);
  Point g = a;
  stack_.insert_span({0, g.y, {g.x + 2, g.x + 4}}, 7);
  stack_.insert_span({0, g.y + 1, {g.x - 3, g.x + 3}}, 8);
  std::set<ConnId> found;
  obstructions(stack_.layer(0), stack_.pool(), g,
               Rect{{g.x - 6, g.x + 6}, {g.y - 6, g.y + 6}},
               [&](ConnId c) { found.insert(c); });
  EXPECT_TRUE(found.contains(7));
  EXPECT_TRUE(found.contains(8));
}

TEST_F(FreeSpaceTest, ObstructionsSeesWallsWhenFullyEnclosed) {
  Point a = drill(5, 4);
  Point g = a;
  // Seal all four neighbors of a.
  stack_.insert_span({0, g.y, {g.x - 1, g.x - 1}}, 11);
  stack_.insert_span({0, g.y, {g.x + 1, g.x + 1}}, 12);
  stack_.insert_span({0, g.y - 1, {g.x, g.x}}, 13);
  stack_.insert_span({0, g.y + 1, {g.x, g.x}}, 14);
  std::set<ConnId> found;
  obstructions(stack_.layer(0), stack_.pool(), g,
               Rect{{g.x - 3, g.x + 3}, {g.y - 3, g.y + 3}},
               [&](ConnId c) { found.insert(c); });
  EXPECT_TRUE(found.contains(11));
  EXPECT_TRUE(found.contains(12));
  EXPECT_TRUE(found.contains(13));
  EXPECT_TRUE(found.contains(14));
}

TEST_F(FreeSpaceTest, TreeLayerTraceParity) {
  // The binary-tree channel must support identical searches.
  GridSpec spec(11, 9);
  SegmentPool pool;
  TreeLayer tl(0, Orientation::kHorizontal, spec.extent());
  // Drill endpoints by hand.
  auto drill_tl = [&](Point v) {
    Point g = spec.grid_of_via(v);
    Segment s;
    s.span = {g.x, g.x};
    s.conn = kPinConn;
    tl.channel(g.y).insert(pool, s);
    return g;
  };
  Point a = drill_tl({1, 1});
  Point b = drill_tl({8, 5});
  auto spans = trace_path(tl, pool, a, b, spec.extent());
  ASSERT_TRUE(spans.has_value());
  EXPECT_FALSE(spans->empty());
}

TEST_F(FreeSpaceTest, NodeBudgetAborts) {
  Point a = drill(1, 1), b = drill(9, 7);
  auto spans = trace_path(stack_.layer(0), stack_.pool(), a, b,
                          spec_.extent(), /*max_nodes=*/1);
  EXPECT_FALSE(spans.has_value());
}

}  // namespace
}  // namespace grr
