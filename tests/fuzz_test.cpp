// Robustness fuzzing: the parsers and the router must survive garbage and
// adversarial inputs without crashing or corrupting state.
#include <gtest/gtest.h>

#include <random>
#include <string>

#include "io/problem_io.hpp"
#include "io/route_io.hpp"
#include "route/audit.hpp"
#include "route/router.hpp"

namespace grr {
namespace {

std::string random_text(std::mt19937& rng, std::size_t len) {
  static constexpr char kAlphabet[] =
      "abcdefghijklmnop 0123456789:;,.-#\n\t%xXyY";
  std::string s;
  s.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    s.push_back(kAlphabet[rng() % (sizeof(kAlphabet) - 1)]);
  }
  return s;
}

TEST(FuzzTest, ProblemParserSurvivesGarbage) {
  std::mt19937 rng(1234);
  for (int trial = 0; trial < 200; ++trial) {
    std::string text = random_text(rng, 200 + rng() % 400);
    ProblemReadResult r = read_problem_string(text);
    // Garbage essentially never parses; if it does, the board is usable.
    if (r.ok()) {
      EXPECT_GE(r.board->spec().nx_vias(), 2);
    } else {
      EXPECT_FALSE(r.error.empty());
    }
  }
}

TEST(FuzzTest, ProblemParserSurvivesMutatedValidInput) {
  const std::string valid =
      "board 41 31 4 2 100\n"
      "footprint dip DIP16 16 3\n"
      "footprint sip SIP8 8\n"
      "part U1 DIP16 5 8\n"
      "part U2 DIP16 20 12\n"
      "part R1 SIP8 30 8\n"
      "terminator R1 0\n"
      "power GND U1 0\n"
      "net NET0 ecl term U1:2:out U2:3:in\n";
  std::mt19937 rng(77);
  for (int trial = 0; trial < 300; ++trial) {
    std::string text = valid;
    // Flip a few characters.
    for (int k = 0; k < 3; ++k) {
      std::size_t pos = rng() % text.size();
      text[pos] = static_cast<char>('0' + rng() % 75);
    }
    ProblemReadResult r = read_problem_string(text);  // must not crash
    if (!r.ok()) {
      EXPECT_FALSE(r.error.empty());
    }
  }
}

TEST(FuzzTest, RouteParserSurvivesGarbage) {
  std::mt19937 rng(4321);
  for (int trial = 0; trial < 200; ++trial) {
    std::string text =
        "route " + random_text(rng, 100 + rng() % 200) + "\n";
    RoutesReadResult r = read_routes_string(text);  // must not crash
    if (!r.ok()) {
      EXPECT_FALSE(r.error.empty());
    }
  }
}

TEST(FuzzTest, InstallerRejectsHostileGeometry) {
  // Saved routes with out-of-range layers/channels/spans must be refused
  // (or cleanly skipped), never corrupt the stack.
  GridSpec spec(11, 9);
  LayerStack stack(spec, 2);
  RouteDB db(4);
  std::vector<SavedRoute> hostile;
  {
    SavedRoute sr;
    sr.id = 0;
    sr.strategy = RouteStrategy::kZeroVia;
    sr.geom.vias.push_back({500, 500});  // far off board
    hostile.push_back(sr);
  }
  {
    SavedRoute sr;
    sr.id = 1;
    sr.strategy = RouteStrategy::kZeroVia;
    sr.geom.hops.push_back({0, {{9999, {0, 5}}}});  // bad channel
    hostile.push_back(sr);
  }
  {
    SavedRoute sr;
    sr.id = 2;
    sr.strategy = RouteStrategy::kZeroVia;
    sr.geom.hops.push_back({0, {{5, {-50, 9999}}}});  // bad span
    hostile.push_back(sr);
  }
  {
    SavedRoute sr;
    sr.id = 99;  // out-of-range connection id
    sr.strategy = RouteStrategy::kZeroVia;
    hostile.push_back(sr);
  }
  {
    SavedRoute sr;
    sr.id = 3;
    sr.strategy = RouteStrategy::kZeroVia;
    // Self-overlapping spans: must be rejected before any insert.
    sr.geom.hops.push_back({0, {{5, {2, 8}}, {5, {6, 12}}}});
    hostile.push_back(sr);
  }
  int installed = install_routes(stack, db, hostile);
  EXPECT_EQ(installed, 0);
  EXPECT_EQ(stack.segment_count(), 0u);
  EXPECT_TRUE(audit_stack(stack).ok());
}

}  // namespace
}  // namespace grr
