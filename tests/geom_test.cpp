#include "geom/geom.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace grr {
namespace {

TEST(PointTest, ManhattanAndChebyshev) {
  EXPECT_EQ(manhattan({0, 0}, {3, 4}), 7);
  EXPECT_EQ(manhattan({-2, 5}, {1, 1}), 7);
  EXPECT_EQ(manhattan({2, 2}, {2, 2}), 0);
  EXPECT_EQ(chebyshev({0, 0}, {3, 4}), 4);
  EXPECT_EQ(chebyshev({-2, 5}, {1, 1}), 4);
}

TEST(IntervalTest, EmptyAndLength) {
  Interval def;
  EXPECT_TRUE(def.empty());
  EXPECT_EQ(def.length(), 0);
  Interval unit{5, 5};
  EXPECT_FALSE(unit.empty());
  EXPECT_EQ(unit.length(), 1);
  EXPECT_EQ((Interval{2, 7}.length()), 6);
}

TEST(IntervalTest, ContainsAndOverlaps) {
  Interval iv{3, 8};
  EXPECT_TRUE(iv.contains(3));
  EXPECT_TRUE(iv.contains(8));
  EXPECT_FALSE(iv.contains(2));
  EXPECT_TRUE(iv.contains(Interval{4, 6}));
  EXPECT_FALSE(iv.contains(Interval{4, 9}));
  EXPECT_TRUE(iv.overlaps({8, 12}));
  EXPECT_TRUE(iv.overlaps({0, 3}));
  EXPECT_FALSE(iv.overlaps({9, 12}));
  EXPECT_FALSE(iv.overlaps({0, 2}));
}

TEST(IntervalTest, IntersectHullClamp) {
  Interval a{2, 9}, b{5, 14};
  EXPECT_EQ(a.intersect(b), (Interval{5, 9}));
  EXPECT_TRUE(a.intersect(Interval{10, 12}).empty());
  EXPECT_EQ(a.hull(b), (Interval{2, 14}));
  EXPECT_EQ(a.clamp(0), 2);
  EXPECT_EQ(a.clamp(20), 9);
  EXPECT_EQ(a.clamp(5), 5);
}

TEST(RectTest, BoundingContainsOverlap) {
  Rect r = Rect::bounding({5, 1}, {2, 7});
  EXPECT_EQ(r.x, (Interval{2, 5}));
  EXPECT_EQ(r.y, (Interval{1, 7}));
  EXPECT_TRUE(r.contains(Point{3, 4}));
  EXPECT_FALSE(r.contains(Point{6, 4}));
  EXPECT_TRUE(r.overlaps(Rect{{5, 9}, {7, 9}}));
  EXPECT_FALSE(r.overlaps(Rect{{6, 9}, {0, 9}}));
}

TEST(RectTest, InflatedAndArea) {
  Rect r{{2, 4}, {3, 5}};
  Rect big = r.inflated(2);
  EXPECT_EQ(big.x, (Interval{0, 6}));
  EXPECT_EQ(big.y, (Interval{1, 7}));
  EXPECT_EQ(r.area(), 9);
  EXPECT_EQ(r.width(), 3);
  EXPECT_EQ(r.height(), 3);
}

TEST(OrientationTest, ChannelSpaceMapping) {
  Point p{7, 11};
  EXPECT_EQ(along(Orientation::kHorizontal, p), 7);
  EXPECT_EQ(across(Orientation::kHorizontal, p), 11);
  EXPECT_EQ(along(Orientation::kVertical, p), 11);
  EXPECT_EQ(across(Orientation::kVertical, p), 7);
  EXPECT_EQ(from_channel(Orientation::kHorizontal, 11, 7), p);
  EXPECT_EQ(from_channel(Orientation::kVertical, 7, 11), p);
  EXPECT_EQ(other(Orientation::kHorizontal), Orientation::kVertical);
}

TEST(GeomTest, Streaming) {
  std::ostringstream os;
  os << Point{1, 2} << ' ' << Interval{3, 4} << ' ' << Rect{{0, 1}, {2, 3}};
  EXPECT_EQ(os.str(), "(1,2) [3,4] [0,1]x[2,3]");
}

TEST(PointTest, HashDistinguishesCoords) {
  std::hash<Point> h;
  EXPECT_NE(h({1, 2}), h({2, 1}));
  EXPECT_EQ(h({3, 4}), h({3, 4}));
}

}  // namespace
}  // namespace grr
