// Tests for RS-274X Gerber output.
#include "report/gerber.hpp"

#include <gtest/gtest.h>

#include "workload/board_gen.hpp"

namespace grr {
namespace {

GeneratedBoard tiny_board() {
  BoardGenParams p;
  p.name = "gerber";
  p.width_in = 3;
  p.height_in = 3;
  p.layers = 2;
  p.target_connections = 30;
  p.seed = 12;
  return generate_board(p);
}

TEST(GerberTest, SignalLayerStructure) {
  GeneratedBoard gb = tiny_board();
  Router router(gb.board->stack());
  ASSERT_TRUE(router.route_all(gb.strung.connections));
  std::string g =
      gerber_signal_layer(*gb.board, router.db(), gb.strung.connections, 0);

  // Mandatory RS-274X framing.
  EXPECT_EQ(g.find("G04"), 0u);
  EXPECT_NE(g.find("%FSLAX24Y24*%"), std::string::npos);
  EXPECT_NE(g.find("%MOIN*%"), std::string::npos);
  EXPECT_NE(g.find("%ADD10C,0.008*%"), std::string::npos);  // 8 mil trace
  EXPECT_NE(g.find("%ADD11C,0.06*%"), std::string::npos);   // 60 mil pad
  EXPECT_NE(g.find("D03*"), std::string::npos);             // pad flashes
  EXPECT_NE(g.find("D01*"), std::string::npos);             // trace draws
  EXPECT_NE(g.find("D02*"), std::string::npos);             // moves
  // Exactly one end-of-file marker, at the end.
  EXPECT_EQ(g.rfind("M02*\n"), g.size() - 5);

  // Every draw is preceded somewhere by a move (crude but catches a layer
  // emitted with no D02 at all).
  EXPECT_LT(g.find("D02*"), g.find("D01*"));
}

TEST(GerberTest, CoordinatesAreTenthMils) {
  GeneratedBoard gb = tiny_board();
  Router router(gb.board->stack());
  ASSERT_TRUE(router.route_all(gb.strung.connections));
  std::string g =
      gerber_signal_layer(*gb.board, router.db(), gb.strung.connections, 0);
  // A pad at via (1,1) = (100 mil, 100 mil) = 1000 units.
  EXPECT_NE(g.find("X1000Y1000D03*"), std::string::npos);
}

TEST(GerberTest, PowerPlanePolarity) {
  GeneratedBoard gb = tiny_board();
  PowerPlaneArt art = generate_power_plane(*gb.board, "GND");
  std::string g = gerber_power_plane(*gb.board, art);
  // Region fill for the copper, then clear-polarity clearances, then the
  // two-polarity thermal reliefs.
  std::size_t region = g.find("G36*");
  std::size_t clear = g.find("%LPC*%");
  std::size_t dark_again = g.rfind("%LPD*%");
  ASSERT_NE(region, std::string::npos);
  ASSERT_NE(clear, std::string::npos);
  ASSERT_NE(dark_again, std::string::npos);
  EXPECT_LT(region, clear);
  EXPECT_LT(clear, dark_again);
  EXPECT_EQ(g.rfind("M02*\n"), g.size() - 5);
  // The generator assigned GND pins, so thermal flashes exist.
  EXPECT_NE(g.find("D21*"), std::string::npos);
  EXPECT_NE(g.find("D22*"), std::string::npos);
}

TEST(GerberTest, EmptyBoardStillWellFormed) {
  GridSpec spec(5, 5);
  Board board(spec, 2);
  RouteDB db(0);
  std::string g = gerber_signal_layer(board, db, {}, 0);
  EXPECT_NE(g.find("%MOIN*%"), std::string::npos);
  EXPECT_EQ(g.rfind("M02*\n"), g.size() - 5);
}

}  // namespace
}  // namespace grr
