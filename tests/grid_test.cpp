#include "grid/grid_spec.hpp"

#include <gtest/gtest.h>

namespace grr {
namespace {

TEST(GridSpecTest, PaperEmbedding) {
  // Fig 3: 100-mil via pitch, two routing tracks between via points.
  GridSpec spec(11, 9);
  EXPECT_EQ(spec.period(), 3);
  EXPECT_EQ(spec.extent(), (Rect{{0, 30}, {0, 24}}));
  EXPECT_EQ(spec.via_extent(), (Rect{{0, 10}, {0, 8}}));
}

TEST(GridSpecTest, ViaGridConversions) {
  GridSpec spec(11, 9);
  EXPECT_EQ(spec.grid_of_via(Point{2, 3}), (Point{6, 9}));
  EXPECT_EQ(spec.via_of_grid(Point{6, 9}), (Point{2, 3}));
  EXPECT_TRUE(spec.is_via_site({6, 9}));
  EXPECT_FALSE(spec.is_via_site({7, 9}));
  EXPECT_FALSE(spec.is_via_site({6, 8}));
}

TEST(GridSpecTest, FloorCeilNearest) {
  GridSpec spec(11, 9);
  EXPECT_EQ(spec.via_floor(7), 2);
  EXPECT_EQ(spec.via_ceil(7), 3);
  EXPECT_EQ(spec.via_floor(6), 2);
  EXPECT_EQ(spec.via_ceil(6), 2);
  // Grid 7 is one step (42 mils) above via 2 and two steps below via 3.
  EXPECT_EQ(spec.nearest_via({7, 8}), (Point{2, 3}));
  // Clamped to the board.
  EXPECT_EQ(spec.nearest_via({30, 24}), (Point{10, 8}));
}

TEST(GridSpecTest, IrregularMilSpacing) {
  // Fig 1/3: via point, 42 mils, routing point, 16 mils, routing point,
  // 42 mils, next via point.
  GridSpec spec(11, 9);
  EXPECT_EQ(spec.mils_of_grid(0), 0);
  EXPECT_EQ(spec.mils_of_grid(1), 42);
  EXPECT_EQ(spec.mils_of_grid(2), 58);
  EXPECT_EQ(spec.mils_of_grid(3), 100);
  EXPECT_EQ(spec.mils_of_grid(4), 142);
  EXPECT_EQ(spec.mils_between(1, 2), 16);
  EXPECT_EQ(spec.mils_between(0, 3), 100);
}

TEST(GridSpecTest, UniformSpacingForOtherPeriods) {
  GridSpec spec(5, 5, /*tracks_between_vias=*/1, /*via_pitch_mils=*/50);
  EXPECT_EQ(spec.period(), 2);
  EXPECT_EQ(spec.mils_of_grid(0), 0);
  EXPECT_EQ(spec.mils_of_grid(1), 25);
  EXPECT_EQ(spec.mils_of_grid(2), 50);
}

TEST(GridSpecTest, BoardInches) {
  GridSpec spec(161, 221);  // 16 x 22 inch, like the Titan coproc
  EXPECT_DOUBLE_EQ(spec.board_width_inches(), 16.0);
  EXPECT_DOUBLE_EQ(spec.board_height_inches(), 22.0);
}

TEST(GridSpecTest, InBoard) {
  GridSpec spec(11, 9);
  EXPECT_TRUE(spec.in_board({0, 0}));
  EXPECT_TRUE(spec.in_board({30, 24}));
  EXPECT_FALSE(spec.in_board({31, 0}));
  EXPECT_TRUE(spec.via_in_board({10, 8}));
  EXPECT_FALSE(spec.via_in_board({11, 8}));
}

TEST(GridSpecTest, FloorCeilOnNegativeCoordinates) {
  // Boxes inflated past the board edge produce negative grid coordinates;
  // the quotients must still floor/ceil correctly.
  GridSpec spec(11, 9);
  EXPECT_EQ(spec.via_floor(-1), -1);
  EXPECT_EQ(spec.via_ceil(-1), 0);
  EXPECT_EQ(spec.via_floor(-3), -1);
  EXPECT_EQ(spec.via_ceil(-3), -1);
  EXPECT_EQ(spec.via_floor(-4), -2);
}

TEST(GridSpecTest, DegenerateTracksBetweenVias) {
  GridSpec spec(5, 5, /*tracks_between_vias=*/0);
  EXPECT_EQ(spec.period(), 1);
  EXPECT_TRUE(spec.is_via_site({3, 2}));  // every grid point is a via site
}

}  // namespace
}  // namespace grr
