// Tests for the post-route improvement pass.
#include "route/improve.hpp"

#include <gtest/gtest.h>

#include "route/audit.hpp"
#include "workload/board_gen.hpp"

namespace grr {
namespace {

TEST(ImproveTest, NeverMakesThingsWorse) {
  BoardGenParams p;
  p.width_in = 5;
  p.height_in = 4;
  p.layers = 4;
  p.target_connections = 400;
  p.locality = 0.5;
  p.seed = 21;
  GeneratedBoard gb = generate_board(p);
  Router router(gb.board->stack());
  ASSERT_TRUE(router.route_all(gb.strung.connections));

  ImproveStats st = improve_routes(router, gb.strung.connections, 2);
  EXPECT_GT(st.examined, 0);
  EXPECT_LE(st.vias_after, st.vias_before);
  // Every connection is still routed and the board is still consistent.
  for (const Connection& c : gb.strung.connections) {
    EXPECT_TRUE(router.db().routed(c.id));
  }
  CheckReport audit =
      audit_all(gb.board->stack(), router.db(), gb.strung.connections);
  EXPECT_TRUE(audit.ok()) << audit.first_error();
}

TEST(ImproveTest, RemovesRipupScars) {
  // Force a detour: a and b share a row but the corridor is blocked while
  // the first route is made, then unblocked before the improvement pass.
  GridSpec spec(21, 17);
  LayerStack stack(spec, 2);
  stack.drill_via({2, 8}, kPinConn);
  stack.drill_via({18, 8}, kPinConn);
  Connection c;
  c.id = 0;
  c.a = {2, 8};
  c.b = {18, 8};

  // Temporary wall so the first route needs vias to climb around it.
  std::vector<SegId> wall;
  for (Coord y = 15; y <= 48; ++y) {
    wall.push_back(stack.insert_span({0, y, {28, 32}}, kObstacleConn));
    // And the vertical layer in the same window.
    for (Coord x = 28; x <= 32; ++x) {
      if (!stack.occupied(1, {x, y})) {
        wall.push_back(stack.insert_span({1, x, {y, y}}, kObstacleConn));
      }
    }
  }
  Router router(stack);
  ASSERT_TRUE(router.route_all({c}));
  const std::size_t vias_before = router.db().rec(0).geom.vias.size();
  ASSERT_GT(vias_before, 0u) << "the wall should have forced vias";

  for (SegId s : wall) stack.erase_segment(s);
  ImproveStats st = improve_routes(router, {c});
  EXPECT_EQ(st.improved, 1);
  EXPECT_EQ(router.db().rec(0).geom.vias.size(), 0u);
  EXPECT_LT(st.vias_after, st.vias_before);
  CheckReport audit = audit_all(stack, router.db(), {c});
  EXPECT_TRUE(audit.ok()) << audit.first_error();
}

TEST(ImproveTest, RestoresWhenRerouteIsWorse) {
  // Nothing to gain on an open board: the pass must leave the (already
  // optimal) route in place.
  GridSpec spec(21, 17);
  LayerStack stack(spec, 2);
  stack.drill_via({2, 8}, kPinConn);
  stack.drill_via({18, 8}, kPinConn);
  Connection c;
  c.id = 0;
  c.a = {2, 8};
  c.b = {18, 8};
  Router router(stack);
  ASSERT_TRUE(router.route_all({c}));
  long mils = router.db().length_mils(spec, stack, 0);
  ImproveStats st = improve_routes(router, {c}, 3);
  EXPECT_TRUE(router.db().routed(0));
  EXPECT_EQ(router.db().length_mils(spec, stack, 0), mils);
  EXPECT_EQ(st.vias_after, st.vias_before);
}

}  // namespace
}  // namespace grr
