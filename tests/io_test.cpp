// Tests for problem/route file I/O.
#include <gtest/gtest.h>

#include "io/problem_io.hpp"
#include "io/route_io.hpp"
#include "route/audit.hpp"
#include "route/router.hpp"
#include "stringer/stringer.hpp"
#include "workload/board_gen.hpp"

namespace grr {
namespace {

constexpr const char* kProblem = R"(# sample
board 41 31 4 2 100
footprint dip DIP16 16 3
footprint sip SIP8 8
part U1 DIP16 5 8
part U2 DIP16 20 12
part R1 SIP8 30 8
terminator R1 0
terminator R1 1
obstacle 1 1
power GND U1 0
net NET0 ecl term U1:2:out U2:3:in
net NET1 ttl noterm U1:3:out U2:4:in U2:12:in
)";

TEST(ProblemIoTest, ParsesSample) {
  ProblemReadResult r = read_problem_string(kProblem);
  ASSERT_TRUE(r.ok()) << r.error;
  Board& b = *r.board;
  EXPECT_EQ(b.spec().nx_vias(), 41);
  EXPECT_EQ(b.stack().num_layers(), 4);
  EXPECT_EQ(b.parts().size(), 3u);
  EXPECT_EQ(b.total_pins(), 40);
  EXPECT_EQ(b.terminators().size(), 2u);
  EXPECT_EQ(b.obstacles().size(), 1u);
  ASSERT_EQ(b.netlist().nets.size(), 2u);
  EXPECT_EQ(b.netlist().nets[0].klass, SignalClass::kECL);
  EXPECT_TRUE(b.netlist().nets[0].needs_terminator);
  EXPECT_EQ(b.netlist().nets[1].pins.size(), 3u);
  // Pins really are drilled.
  EXPECT_FALSE(b.stack().via_free({5, 8}));
}

TEST(ProblemIoTest, RoundTrip) {
  ProblemReadResult first = read_problem_string(kProblem);
  ASSERT_TRUE(first.ok());
  std::string text = write_problem_string(*first.board);
  ProblemReadResult second = read_problem_string(text);
  ASSERT_TRUE(second.ok()) << second.error;
  // The rebuilt board is structurally identical.
  EXPECT_EQ(write_problem_string(*second.board), text);
  EXPECT_EQ(second.board->total_pins(), first.board->total_pins());
  EXPECT_EQ(second.board->netlist().nets.size(),
            first.board->netlist().nets.size());
  // And routes the same way.
  auto s1 = string_nets(*first.board);
  auto s2 = string_nets(*second.board);
  ASSERT_EQ(s1.connections.size(), s2.connections.size());
  for (std::size_t i = 0; i < s1.connections.size(); ++i) {
    EXPECT_EQ(s1.connections[i].a, s2.connections[i].a);
    EXPECT_EQ(s1.connections[i].b, s2.connections[i].b);
  }
}

TEST(ProblemIoTest, GeneratedBoardRoundTrips) {
  BoardGenParams p;
  p.width_in = 4;
  p.height_in = 3;
  p.layers = 4;
  p.target_connections = 120;
  p.seed = 6;
  GeneratedBoard gb = generate_board(p);
  std::string text = write_problem_string(*gb.board);
  ProblemReadResult r = read_problem_string(text);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.board->total_pins(), gb.board->total_pins());
  EXPECT_EQ(write_problem_string(*r.board), text);
}

TEST(ProblemIoTest, ErrorsCarryLineNumbers) {
  EXPECT_NE(read_problem_string("part U1 X 1 1\n").error.find("line 1"),
            std::string::npos);
  EXPECT_NE(read_problem_string("board 41 31 4\nfrobnicate\n")
                .error.find("line 2"),
            std::string::npos);
  EXPECT_FALSE(read_problem_string("").ok());
  // Colliding parts are rejected, not asserted.
  ProblemReadResult r = read_problem_string(
      "board 41 31 2\nfootprint sip S 4\npart A S 5 5\npart B S 5 5\n");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("collides"), std::string::npos);
  // Off-board part.
  r = read_problem_string(
      "board 10 10 2\nfootprint sip S 4\npart A S 9 9\n");
  EXPECT_FALSE(r.ok());
  // Unknown pin.
  r = read_problem_string(
      "board 41 31 2\nfootprint sip S 4\npart A S 5 5\n"
      "net N ecl noterm A:9:out\n");
  EXPECT_FALSE(r.ok());
}

TEST(ProblemIoTest, TilesRoundTrip) {
  constexpr const char* kTiled = R"(board 41 31 2
footprint sip S 2
part A S 5 8
part B S 30 8
tile 0 0 0 59 90 ecl
tile 0 60 0 120 90 ttl
tile 1 0 0 120 90 ecl
net N1 ecl noterm A:0:out A:1:in
net N2 ttl noterm B:0:out B:1:in
)";
  ProblemReadResult r = read_problem_string(kTiled);
  ASSERT_TRUE(r.ok()) << r.error;
  ASSERT_EQ(r.tiles.tiles().size(), 3u);
  EXPECT_EQ(r.tiles.class_at(0, {10, 10}), SignalClass::kECL);
  EXPECT_EQ(r.tiles.class_at(0, {80, 10}), SignalClass::kTTL);
  // Round trip preserves the tesselation.
  std::string text = write_problem_string(*r.board, &r.tiles);
  ProblemReadResult again = read_problem_string(text);
  ASSERT_TRUE(again.ok()) << again.error;
  EXPECT_EQ(again.tiles.tiles().size(), 3u);
  EXPECT_EQ(write_problem_string(*again.board, &again.tiles), text);
}

TEST(ProblemIoTest, RejectsBadTiles) {
  EXPECT_FALSE(read_problem_string("board 41 31 2\n"
                                   "tile 5 0 0 10 10 ecl\n")
                   .ok());  // no such layer
  EXPECT_FALSE(read_problem_string("board 41 31 2\n"
                                   "tile 0 0 0 500 10 ecl\n")
                   .ok());  // off board
  EXPECT_FALSE(read_problem_string("board 41 31 2\n"
                                   "tile 0 0 0 10 10 cmos\n")
                   .ok());  // unknown class
}

TEST(RouteIoTest, RoundTripAndInstall) {
  ProblemReadResult pr = read_problem_string(kProblem);
  ASSERT_TRUE(pr.ok());
  auto strung = string_nets(*pr.board);
  Router router(pr.board->stack());
  ASSERT_TRUE(router.route_all(strung.connections));
  std::string text = write_routes_string(router.db(), strung.connections);

  RoutesReadResult rr = read_routes_string(text);
  ASSERT_TRUE(rr.ok()) << rr.error;
  EXPECT_EQ(rr.routes.size(), strung.connections.size());

  // Install into a freshly parsed board: identical metal, audit clean.
  ProblemReadResult fresh = read_problem_string(kProblem);
  ASSERT_TRUE(fresh.ok());
  RouteDB db(strung.connections.size());
  int installed = install_routes(fresh.board->stack(), db, rr.routes);
  EXPECT_EQ(installed, static_cast<int>(rr.routes.size()));
  EXPECT_EQ(fresh.board->stack().segment_count(),
            pr.board->stack().segment_count());
  CheckReport audit =
      audit_all(fresh.board->stack(), db, strung.connections);
  EXPECT_TRUE(audit.ok()) << audit.first_error();
  // Round-trip fixpoint.
  EXPECT_EQ(write_routes_string(db, strung.connections), text);
}

TEST(RouteIoTest, InstallSkipsCollisions) {
  ProblemReadResult pr = read_problem_string(kProblem);
  ASSERT_TRUE(pr.ok());
  auto strung = string_nets(*pr.board);
  Router router(pr.board->stack());
  ASSERT_TRUE(router.route_all(strung.connections));
  RoutesReadResult rr = read_routes_string(
      write_routes_string(router.db(), strung.connections));

  // Installing on the SAME board (metal already present) restores nothing.
  RouteDB db(strung.connections.size());
  EXPECT_EQ(install_routes(pr.board->stack(), db, rr.routes), 0);
}

TEST(RouteIoTest, RejectsMalformedInput) {
  EXPECT_FALSE(read_routes_string("route x\n").ok());
  EXPECT_FALSE(read_routes_string("route 1 bogus vias hops\n").ok());
  EXPECT_FALSE(read_routes_string("banana\n").ok());
  EXPECT_TRUE(read_routes_string("# just a comment\n").ok());
}

}  // namespace
}  // namespace grr
