#include "layer/layer_stack.hpp"

#include <gtest/gtest.h>

namespace grr {
namespace {

class LayerStackTest : public ::testing::Test {
 protected:
  LayerStackTest() : spec_(11, 9), stack_(spec_, 4) {}
  GridSpec spec_;
  LayerStack stack_;
};

TEST_F(LayerStackTest, DefaultOrientationsAlternate) {
  EXPECT_EQ(stack_.num_layers(), 4);
  EXPECT_EQ(stack_.layer(0).orientation(), Orientation::kHorizontal);
  EXPECT_EQ(stack_.layer(1).orientation(), Orientation::kVertical);
  EXPECT_EQ(stack_.layer(2).orientation(), Orientation::kHorizontal);
  EXPECT_EQ(stack_.layer(3).orientation(), Orientation::kVertical);
}

TEST_F(LayerStackTest, ChannelGeometryPerOrientation) {
  // Horizontal layer: channels indexed by y, running in x.
  const Layer& h = stack_.layer(0);
  EXPECT_EQ(h.along_extent(), (Interval{0, 30}));
  EXPECT_EQ(h.across_extent(), (Interval{0, 24}));
  EXPECT_EQ(h.along_of({7, 3}), 7);
  EXPECT_EQ(h.across_of({7, 3}), 3);
  // Vertical layer: channels indexed by x, running in y.
  const Layer& v = stack_.layer(1);
  EXPECT_EQ(v.along_extent(), (Interval{0, 24}));
  EXPECT_EQ(v.across_extent(), (Interval{0, 30}));
  EXPECT_EQ(v.along_of({7, 3}), 3);
  EXPECT_EQ(v.across_of({7, 3}), 7);
}

TEST_F(LayerStackTest, DrillViaCoversAllLayers) {
  Point via{2, 3};
  EXPECT_TRUE(stack_.via_free(via));
  auto segs = stack_.drill_via(via, 42);
  EXPECT_EQ(segs.size(), 4u);
  EXPECT_FALSE(stack_.via_free(via));
  EXPECT_EQ(stack_.via_use_count(via), 4);
  Point g = spec_.grid_of_via(via);
  for (int l = 0; l < 4; ++l) {
    EXPECT_TRUE(stack_.occupied(static_cast<LayerId>(l), g));
    EXPECT_EQ(stack_.conn_at(static_cast<LayerId>(l), g), 42);
  }
  for (SegId s : segs) stack_.erase_segment(s);
  EXPECT_TRUE(stack_.via_free(via));
  EXPECT_EQ(stack_.segment_count(), 0u);
}

TEST_F(LayerStackTest, TraceOverViaSiteBlocksDrilling) {
  // A horizontal trace through via (2,3)'s grid point on one layer blocks
  // the hole (the drill would hit it), even though other layers are clear.
  Point via{2, 3};
  Point g = spec_.grid_of_via(via);  // (6, 9)
  SegId s = stack_.insert_span({0, /*channel=*/g.y, {g.x - 2, g.x + 2}}, 7);
  EXPECT_FALSE(stack_.via_free(via));
  EXPECT_EQ(stack_.via_use_count(via), 1);
  stack_.erase_segment(s);
  EXPECT_TRUE(stack_.via_free(via));
}

TEST_F(LayerStackTest, TraceBetweenViaRowsDoesNotBlock) {
  // Channel y=10 is not a via row (period 3): no via site is covered.
  SegId s = stack_.insert_span({0, 10, {0, 30}}, 7);
  for (Coord vx = 0; vx < spec_.nx_vias(); ++vx) {
    for (Coord vy = 0; vy < spec_.ny_vias(); ++vy) {
      EXPECT_TRUE(stack_.via_free({vx, vy}));
    }
  }
  stack_.erase_segment(s);
}

TEST_F(LayerStackTest, ViaMapCountsMultipleCoverings) {
  Point via{2, 3};
  Point g = spec_.grid_of_via(via);
  SegId s0 = stack_.insert_span({0, g.y, {g.x, g.x + 3}}, 1);
  SegId s1 = stack_.insert_span({1, g.x, {g.y - 1, g.y + 1}}, 2);
  EXPECT_EQ(stack_.via_use_count(via), 2);
  stack_.erase_segment(s0);
  EXPECT_EQ(stack_.via_use_count(via), 1);
  stack_.erase_segment(s1);
  EXPECT_EQ(stack_.via_use_count(via), 0);
}

TEST_F(LayerStackTest, DisabledViaMapFallsBackToProbing) {
  stack_.set_use_via_map(false);
  Point via{4, 4};
  EXPECT_TRUE(stack_.via_free(via));
  Point g = spec_.grid_of_via(via);
  SegId s = stack_.insert_span({2, g.y, {g.x, g.x}}, 9);
  EXPECT_FALSE(stack_.via_free(via));
  EXPECT_EQ(stack_.via_use_count(via), 1);
  stack_.erase_segment(s);
  EXPECT_TRUE(stack_.via_free(via));
}

TEST_F(LayerStackTest, SpanFree) {
  stack_.insert_span({0, 5, {10, 20}}, 3);
  EXPECT_FALSE(stack_.span_free({0, 5, {15, 25}}));
  EXPECT_FALSE(stack_.span_free({0, 5, {20, 20}}));
  EXPECT_TRUE(stack_.span_free({0, 5, {21, 30}}));
  EXPECT_TRUE(stack_.span_free({1, 5, {10, 20}}));  // other layer clear
}

TEST_F(LayerStackTest, PlacedSpanRoundTrip) {
  PlacedSpan ps{1, 6, {3, 12}};
  SegId s = stack_.insert_span(ps, 5);
  EXPECT_EQ(stack_.placed_span(s), ps);
}

TEST_F(LayerStackTest, CustomOrientations) {
  LayerStack s(spec_, 3,
               {Orientation::kVertical, Orientation::kVertical,
                Orientation::kHorizontal});
  EXPECT_EQ(s.layer(0).orientation(), Orientation::kVertical);
  EXPECT_EQ(s.layer(1).orientation(), Orientation::kVertical);
  EXPECT_EQ(s.layer(2).orientation(), Orientation::kHorizontal);
}

}  // namespace
}  // namespace grr
