// Zero-allocation proof for the steady-state Lee search.
//
// The rebuilt engine claims that after a warm-up pass every reusable buffer
// — the bucketed wavefront queues, the free-space walk scratch, the result
// vectors, the cursor hints, the reachability-cache slots — has reached its
// steady-state capacity, and that repeating the same searches performs no
// heap allocation at all. This test replaces the global allocator with a
// counting one and holds the engine to exactly zero, on both the cache-hit
// path (replay) and the cache-off path (fresh walks through the epoch
// scratch).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "layer/cursor_cache.hpp"
#include "route/lee.hpp"
#include "route/router.hpp"
#include "workload/suite.hpp"

namespace {
// Constant-initialized so counting is valid even for allocations made
// during static initialization, before main().
std::atomic<long> g_allocs{0};

void* counted_alloc(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(n ? n : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* counted_alloc(std::size_t n, std::align_val_t al) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  const auto a = static_cast<std::size_t>(al);
  void* p = std::aligned_alloc(a, (n + a - 1) / a * a);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  return counted_alloc(n, al);
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return counted_alloc(n, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace grr {
namespace {

constexpr int kSearchCap = 64;

/// Run up to kSearchCap searches and return the number of heap allocations
/// they performed.
long allocs_during_searches(LeeSearch& engine, const RouterConfig& cfg,
                            const std::vector<Connection>& conns,
                            LeeResult* res, CursorCache* cursors,
                            std::vector<Point>* expanded) {
  const long before = g_allocs.load(std::memory_order_relaxed);
  int n = 0;
  for (const Connection& c : conns) {
    if (c.a == c.b) continue;
    expanded->clear();
    engine.search(c, cfg, res, cursors, expanded);
    if (++n >= kSearchCap) break;
  }
  return g_allocs.load(std::memory_order_relaxed) - before;
}

TEST(LeeAllocTest, SteadyStateSearchAllocatesNothing) {
  // The guarantee is store-independent: flat-store queries are pure array
  // scans and the legacy list walks pooled nodes, so neither may allocate
  // once the engine's buffers are warm.
  for (ChannelStore store : {ChannelStore::kList, ChannelStore::kFlat}) {
    BoardGenParams params = table1_board("nmc-4L", 0.3);
    params.channel_store = store;
    GeneratedBoard gb = generate_board(params);
    LayerStack& stack = gb.board->stack();
    // Route the board first so the gap walks run over real metal, not just
    // pin fields — the steady state the claim is about.
    {
      Router router(stack, RouterConfig{});
      router.route_all(gb.strung.connections);
    }

    for (bool cache : {true, false}) {
      RouterConfig cfg;
      cfg.lee_cache = cache;
      LeeSearch engine(stack);
      LeeResult res;
      CursorCache cursors;
      std::vector<Point> expanded;

      // Warm pass: grows every reusable buffer (queue tiers, walk scratch,
      // result vectors, cache slots and gap logs) to steady-state size.
      (void)allocs_during_searches(engine, cfg, gb.strung.connections, &res,
                                   &cursors, &expanded);
      // Steady state: identical work on an unchanged board must allocate
      // nothing at all.
      const long allocs = allocs_during_searches(
          engine, cfg, gb.strung.connections, &res, &cursors, &expanded);
      EXPECT_EQ(allocs, 0)
          << (cache ? "cache on" : "cache off") << ", "
          << (store == ChannelStore::kFlat ? "flat" : "list") << " store";
      if (cache) {
        // Make sure the measured pass actually took the replay path.
        EXPECT_GT(engine.cache().stats().hits, 0);
      }
    }
  }
}

}  // namespace
}  // namespace grr
