// Equivalence proofs for the rebuilt Lee search stack.
//
// The rewritten engine (bucketed LeeQueue, per-worker scratch, reachability
// cache) claims bit-identical behavior to the seed implementation whenever
// goal-oriented ordering is off: the seed kept each wavefront in a
// std::priority_queue popped in exact (cost, seq) order, and every layer of
// the rewrite preserves that order. This file holds the engine to it:
//
//   * reference_search below IS the seed algorithm — std::priority_queue,
//     per-call mark vectors, no scratch, no cache — kept as an executable
//     specification;
//   * with lee_astar=false the production engine must reproduce its output
//     field for field (via_seq, hop_layers, expansions, marks, gap_nodes,
//     rip_center) on every connection of real generated boards;
//   * the reachability cache must never change any output, hit or miss;
//   * with lee_astar=true the ordering changes by design, so the claim
//     weakens to outcome equivalence: the same connections route, the
//     result audits clean, and the goal-oriented order does not expand
//     more than the reference order in aggregate.
#include <gtest/gtest.h>

#include <algorithm>
#include <queue>
#include <tuple>
#include <vector>

#include "route/audit.hpp"
#include "route/boxes.hpp"
#include "route/lee.hpp"
#include "route/router.hpp"
#include "workload/suite.hpp"

namespace grr {
namespace {

std::int64_t ref_cost_of(CostFn fn, Coord dist_to_target, int hops) {
  switch (fn) {
    case CostFn::kUnitHops:
      return hops;
    case CostFn::kDistance:
      return dist_to_target;
    case CostFn::kDistTimesHops:
      return static_cast<std::int64_t>(dist_to_target) * hops;
  }
  return 0;
}

/// The seed's search, verbatim (modulo the gap_nodes tally, which the seed
/// did not report): Dijkstra-like expansion in exact (cost, seq) order from
/// a freshly constructed priority queue, per-call mark vectors.
LeeResult reference_search(const LayerStack& stack, const Connection& c,
                           const RouterConfig& cfg) {
  struct RefMark {
    bool set = false;
    Point parent;
    LayerId layer = 0;
    std::uint16_t hops = 0;
  };
  struct QEntry {
    std::int64_t cost;
    std::uint64_t seq;
    Point p;
  };
  struct QGreater {
    bool operator()(const QEntry& x, const QEntry& y) const {
      return std::tie(x.cost, x.seq) > std::tie(y.cost, y.seq);
    }
  };

  const GridSpec& spec = stack.spec();
  const std::size_t n =
      static_cast<std::size_t>(spec.nx_vias()) * spec.ny_vias();
  std::vector<RefMark> marks[2] = {std::vector<RefMark>(n),
                                   std::vector<RefMark>(n)};
  auto index = [&](Point v) {
    return static_cast<std::size_t>(v.y) * spec.nx_vias() + v.x;
  };
  auto chain = [&](int side, Point from, std::vector<LayerId>* layers) {
    std::vector<Point> pts;
    std::vector<LayerId> lyr;
    Point cur = from;
    while (true) {
      pts.push_back(cur);
      const RefMark& m = marks[side][index(cur)];
      if (m.parent == cur) break;
      lyr.push_back(m.layer);
      cur = m.parent;
    }
    std::reverse(pts.begin(), pts.end());
    std::reverse(lyr.begin(), lyr.end());
    if (layers) *layers = std::move(lyr);
    return pts;
  };

  using Queue = std::priority_queue<QEntry, std::vector<QEntry>, QGreater>;
  Queue q[2];
  const Point src[2] = {c.a, c.b};
  const Point tgt[2] = {c.b, c.a};
  std::uint64_t seq = 0;

  marks[0][index(c.a)] = {true, c.a, 0, 0};
  marks[1][index(c.b)] = {true, c.b, 0, 0};
  q[0].push({0, seq++, c.a});
  q[1].push({0, seq++, c.b});

  Coord best_d[2] = {manhattan(c.a, c.b), manhattan(c.a, c.b)};
  Point best_p[2] = {c.a, c.b};

  LeeResult res;
  bool meet = false;
  bool meet_src = false;
  Point meet_p{}, meet_v{};
  LayerId meet_layer = 0;
  int meet_side = 0;

  int side = 0;
  while (!meet) {
    if (!cfg.bidirectional) side = 0;
    if (q[side].empty()) {
      res.rip_center = best_p[side];
      return res;
    }
    const QEntry e = q[side].top();
    q[side].pop();
    if (++res.expansions > cfg.max_lee_expansions) {
      res.budget_exceeded = true;
      res.rip_center = (best_d[0] <= best_d[1]) ? best_p[0] : best_p[1];
      return res;
    }
    const Point p = e.p;
    const std::uint16_t p_hops = marks[side][index(p)].hops;
    const Point pg = spec.grid_of_via(p);
    const Point og = spec.grid_of_via(src[1 - side]);

    for (int li = 0; li < stack.num_layers() && !meet; ++li) {
      const Layer& layer = stack.layer(static_cast<LayerId>(li));
      Rect box = strip_box(spec, layer.orientation(), p, cfg.radius);
      FreeSpaceStats st = reachable_vias(
          layer, stack.pool(), spec.period(), pg, box,
          [&](Point g) {
            if (meet) return;
            Point v = spec.via_of_grid(g);
            if (v == p) return;
            if (!stack.via_free(v)) return;
            if (marks[1 - side][index(v)].set) {
              meet = true;
              meet_p = p;
              meet_v = v;
              meet_layer = static_cast<LayerId>(li);
              meet_side = side;
              return;
            }
            if (marks[side][index(v)].set) return;
            marks[side][index(v)] = {true, p, static_cast<LayerId>(li),
                                     static_cast<std::uint16_t>(p_hops + 1)};
            ++res.marks;
            Coord d = manhattan(v, tgt[side]);
            q[side].push({ref_cost_of(cfg.cost_fn, d, p_hops + 1), seq++, v});
            if (d < best_d[side]) {
              best_d[side] = d;
              best_p[side] = v;
            }
          },
          cfg.max_trace_nodes, &og);
      res.gap_nodes += st.nodes;
      if (!meet && st.touched) {
        meet = true;
        meet_src = true;
        meet_p = p;
        meet_layer = static_cast<LayerId>(li);
        meet_side = side;
      }
    }
    side = cfg.bidirectional ? 1 - side : 0;
  }

  std::vector<LayerId> layers_s;
  res.via_seq = chain(meet_side, meet_p, &layers_s);
  res.hop_layers = std::move(layers_s);
  res.hop_layers.push_back(meet_layer);
  if (meet_src) {
    res.via_seq.push_back(src[1 - meet_side]);
  } else {
    std::vector<LayerId> layers_o;
    std::vector<Point> chain_o = chain(1 - meet_side, meet_v, &layers_o);
    for (auto it = chain_o.rbegin(); it != chain_o.rend(); ++it) {
      res.via_seq.push_back(*it);
    }
    for (auto it = layers_o.rbegin(); it != layers_o.rend(); ++it) {
      res.hop_layers.push_back(*it);
    }
  }
  if (meet_side == 1) {
    std::reverse(res.via_seq.begin(), res.via_seq.end());
    std::reverse(res.hop_layers.begin(), res.hop_layers.end());
  }
  res.found = true;
  return res;
}

void expect_same(const LeeResult& got, const LeeResult& ref,
                 const Connection& c, const char* what,
                 bool same_gap_nodes) {
  ASSERT_EQ(got.found, ref.found) << what << " conn " << c.id;
  ASSERT_EQ(got.via_seq, ref.via_seq) << what << " conn " << c.id;
  ASSERT_EQ(got.hop_layers, ref.hop_layers) << what << " conn " << c.id;
  ASSERT_EQ(got.expansions, ref.expansions) << what << " conn " << c.id;
  ASSERT_EQ(got.marks, ref.marks) << what << " conn " << c.id;
  if (same_gap_nodes) {
    // Full (logged) walks examine exactly the gaps the seed examined.
    ASSERT_EQ(got.gap_nodes, ref.gap_nodes) << what << " conn " << c.id;
  } else {
    // Deduped walks skip no-op re-visits: never more work than the seed.
    ASSERT_LE(got.gap_nodes, ref.gap_nodes) << what << " conn " << c.id;
  }
  ASSERT_EQ(got.rip_center, ref.rip_center) << what << " conn " << c.id;
  ASSERT_EQ(got.budget_exceeded, ref.budget_exceeded)
      << what << " conn " << c.id;
  ASSERT_EQ(got.stale_skips, 0u) << what << " conn " << c.id;
}

class LeeEquivalenceTest : public ::testing::TestWithParam<const char*> {};

TEST_P(LeeEquivalenceTest, DijkstraOrderMatchesReferenceBitForBit) {
  GeneratedBoard gb = generate_board(table1_board(GetParam(), 0.3));
  LayerStack& stack = gb.board->stack();

  RouterConfig cfg;
  cfg.lee_astar = false;  // the strong claim holds for the seed's order
  cfg.lee_cache = true;
  RouterConfig cfg_nc = cfg;
  cfg_nc.lee_cache = false;

  LeeSearch engine(stack);     // cache on: later connections replay strips
  LeeSearch engine_nc(stack);  // cache off: deduped fresh walks
  LeeResult got, got_nc;

  int compared = 0;
  for (const Connection& c : gb.strung.connections) {
    if (c.a == c.b) continue;
    LeeResult ref = reference_search(stack, c, cfg);
    engine.search(c, cfg, &got);
    engine_nc.search(c, cfg_nc, &got_nc);
    expect_same(got, ref, c, "cache-on vs reference", true);
    expect_same(got_nc, ref, c, "cache-off vs reference", false);
    if (++compared >= 150) break;  // bounded runtime; mix of hits + misses
  }
  ASSERT_GT(compared, 20) << "board too small to be a meaningful check";
  // The cache must actually have been exercised for this to prove replay
  // equivalence, not just miss-path equivalence.
  EXPECT_GT(engine.cache().stats().hits, 0);
}

TEST_P(LeeEquivalenceTest, FlatStoreMatchesLegacyListBitForBit) {
  // The flat SoA + bitmap channel store claims representation invisibility:
  // every seek, gap probe and strip walk returns exactly what the legacy
  // linked list returns, so the search produces the same output field for
  // field — including gap_nodes, because both stores enumerate the same
  // canonical gaps.
  BoardGenParams list_params = table1_board(GetParam(), 0.3);
  list_params.channel_store = ChannelStore::kList;
  BoardGenParams flat_params = table1_board(GetParam(), 0.3);
  flat_params.channel_store = ChannelStore::kFlat;
  GeneratedBoard list_gb = generate_board(list_params);
  GeneratedBoard flat_gb = generate_board(flat_params);

  RouterConfig cfg;
  cfg.lee_astar = false;
  cfg.lee_cache = false;

  LeeSearch list_engine(list_gb.board->stack());
  LeeSearch flat_engine(flat_gb.board->stack());
  LeeResult got_list, got_flat;

  int compared = 0;
  for (const Connection& c : list_gb.strung.connections) {
    if (c.a == c.b) continue;
    list_engine.search(c, cfg, &got_list);
    flat_engine.search(c, cfg, &got_flat);
    expect_same(got_flat, got_list, c, "flat vs list", true);
    if (++compared >= 150) break;
  }
  ASSERT_GT(compared, 20) << "board too small to be a meaningful check";
}

INSTANTIATE_TEST_SUITE_P(Boards, LeeEquivalenceTest,
                         ::testing::Values("kdj11-2L", "nmc-4L", "tna-6L"));

TEST(LeeAstarTest, GoalOrientedOrderRoutesTheSameSet) {
  // With lee_astar on, the expansion order changes by design; the routed
  // outcome must not degrade and the realized board must stay legal.
  for (const char* name : {"nmc-4L", "tna-6L"}) {
    GeneratedBoard ref_gb = generate_board(table1_board(name, 0.3));
    RouterConfig ref_cfg;
    ref_cfg.lee_astar = false;
    Router ref_router(ref_gb.board->stack(), ref_cfg);
    ref_router.route_all(ref_gb.strung.connections);

    GeneratedBoard gb = generate_board(table1_board(name, 0.3));
    RouterConfig cfg;
    cfg.lee_astar = true;
    Router router(gb.board->stack(), cfg);
    router.route_all(gb.strung.connections);

    for (const Connection& c : gb.strung.connections) {
      EXPECT_EQ(router.db().routed(c.id), ref_router.db().routed(c.id))
          << name << " conn " << c.id;
    }
    CheckReport audit =
        audit_all(gb.board->stack(), router.db(), gb.strung.connections);
    EXPECT_TRUE(audit.ok()) << name << ": " << audit.first_error();

    // The point of goal-oriented ordering: never more total search work
    // than the undirected order on these suite boards.
    EXPECT_LE(router.stats().lee_expansions,
              ref_router.stats().lee_expansions)
        << name;
  }
}

}  // namespace
}  // namespace grr
