// Tests for the generalized Lee's algorithm (paper Sec 8.2) and its three
// modifications.
#include "route/lee.hpp"

#include <gtest/gtest.h>

#include "route/audit.hpp"
#include "route/router.hpp"

namespace grr {
namespace {

class LeeTest : public ::testing::Test {
 protected:
  LeeTest() : spec_(13, 13), stack_(spec_, 2) {}

  Connection make_conn(ConnId id, Point a, Point b) {
    if (stack_.via_free(a)) stack_.drill_via(a, kPinConn);
    if (stack_.via_free(b)) stack_.drill_via(b, kPinConn);
    Connection c;
    c.id = id;
    c.a = a;
    c.b = b;
    return c;
  }

  /// Seal a via point inside a ring of obstacle metal on every layer.
  void wall_in(Point via) {
    Point g = spec_.grid_of_via(via);
    for (int li = 0; li < stack_.num_layers(); ++li) {
      const Layer& layer = stack_.layer(static_cast<LayerId>(li));
      Coord c = layer.across_of(g), v = layer.along_of(g);
      for (Coord dc : {Coord{-1}, Coord{1}}) {
        if (!stack_.occupied(static_cast<LayerId>(li),
                             layer.point_of(c + dc, v))) {
          stack_.insert_span({static_cast<LayerId>(li), c + dc, {v, v}},
                             kObstacleConn);
        }
      }
      for (Coord dv : {Coord{-1}, Coord{1}}) {
        if (!stack_.occupied(static_cast<LayerId>(li),
                             layer.point_of(c, v + dv))) {
          stack_.insert_span({static_cast<LayerId>(li), c, {v + dv, v + dv}},
                             kObstacleConn);
        }
      }
    }
  }

  GridSpec spec_;
  LayerStack stack_;
};

TEST_F(LeeTest, FindsDirectNeighborPath) {
  Connection c = make_conn(0, {1, 5}, {10, 5});
  LeeSearch lee(stack_);
  RouterConfig cfg;
  LeeResult res = lee.search(c, cfg);
  ASSERT_TRUE(res.found);
  EXPECT_EQ(res.via_seq.front(), c.a);
  EXPECT_EQ(res.via_seq.back(), c.b);
  EXPECT_EQ(res.hop_layers.size(), res.via_seq.size() - 1);
  // Same row: reachable in one hop, no intermediate vias.
  EXPECT_EQ(res.via_seq.size(), 2u);
}

TEST_F(LeeTest, MultiHopPathUsesFreeVias) {
  // Diagonal connection: needs at least one intermediate via.
  Connection c = make_conn(0, {2, 2}, {10, 9});
  LeeSearch lee(stack_);
  RouterConfig cfg;
  cfg.radius = 1;
  LeeResult res = lee.search(c, cfg);
  ASSERT_TRUE(res.found);
  ASSERT_GE(res.via_seq.size(), 3u);
  for (std::size_t i = 1; i + 1 < res.via_seq.size(); ++i) {
    EXPECT_TRUE(stack_.via_free(res.via_seq[i]));
  }
  // Consecutive hops respect the radius constraint on their layer.
  for (std::size_t j = 0; j + 1 < res.via_seq.size(); ++j) {
    const Layer& layer = stack_.layer(res.hop_layers[j]);
    Coord orth = layer.orientation() == Orientation::kHorizontal
                     ? std::abs(res.via_seq[j].y - res.via_seq[j + 1].y)
                     : std::abs(res.via_seq[j].x - res.via_seq[j + 1].x);
    EXPECT_LE(orth, cfg.radius);
  }
}

TEST_F(LeeTest, BlockedAtCongestedEndReportsThatEnd) {
  Connection c = make_conn(0, {2, 6}, {10, 6});
  wall_in(c.a);
  LeeSearch lee(stack_);
  RouterConfig cfg;
  LeeResult res = lee.search(c, cfg);
  ASSERT_FALSE(res.found);
  // Mod 2: the exhausted wavefront is a's; the rip-up point is the point
  // that made the most progress — here the walled source itself.
  EXPECT_EQ(res.rip_center, c.a);
}

TEST_F(LeeTest, BidirectionalDetectsBlockageCheaply) {
  // The free end would flood the whole board before noticing; the dual
  // wavefront stops as soon as the walled end is exhausted (Mod 2).
  Connection c = make_conn(0, {2, 6}, {10, 6});
  wall_in(c.b);
  RouterConfig bidir;
  RouterConfig unidir;
  unidir.bidirectional = false;
  LeeSearch lee(stack_);
  LeeResult rb = lee.search(c, bidir);
  LeeResult ru = lee.search(c, unidir);
  EXPECT_FALSE(rb.found);
  EXPECT_FALSE(ru.found);
  EXPECT_LT(rb.expansions + rb.marks, ru.expansions + ru.marks);
}

TEST_F(LeeTest, UnidirectionalStillFindsPaths) {
  Connection c = make_conn(0, {2, 2}, {10, 9});
  RouterConfig cfg;
  cfg.bidirectional = false;
  LeeSearch lee(stack_);
  LeeResult res = lee.search(c, cfg);
  ASSERT_TRUE(res.found);
  EXPECT_EQ(res.via_seq.front(), c.a);
  EXPECT_EQ(res.via_seq.back(), c.b);
}

TEST_F(LeeTest, CostFunctionTradesViasForSearchTime) {
  // cost = hops (original Lee) guarantees the minimum via count but
  // explores more; cost = dist*hops explores less (Mod 3).
  Connection c = make_conn(0, {2, 2}, {10, 10});
  RouterConfig unit;
  unit.cost_fn = CostFn::kUnitHops;
  RouterConfig dh;
  dh.cost_fn = CostFn::kDistTimesHops;
  LeeSearch lee(stack_);
  LeeResult r_unit = lee.search(c, unit);
  LeeResult r_dh = lee.search(c, dh);
  ASSERT_TRUE(r_unit.found);
  ASSERT_TRUE(r_dh.found);
  EXPECT_LE(r_unit.via_seq.size(), r_dh.via_seq.size());
  EXPECT_LE(r_dh.expansions, r_unit.expansions);
}

TEST_F(LeeTest, BudgetExceededReportsBestProgress) {
  Connection c = make_conn(0, {1, 1}, {11, 11});
  RouterConfig cfg;
  cfg.max_lee_expansions = 1;
  LeeSearch lee(stack_);
  LeeResult res = lee.search(c, cfg);
  EXPECT_FALSE(res.found);
  EXPECT_TRUE(res.budget_exceeded);
}

TEST_F(LeeTest, SearchIsReadOnly) {
  Connection c = make_conn(0, {2, 2}, {10, 9});
  std::size_t before = stack_.segment_count();
  LeeSearch lee(stack_);
  RouterConfig cfg;
  lee.search(c, cfg);
  EXPECT_EQ(stack_.segment_count(), before);
}

TEST_F(LeeTest, RouterRealizesLeePath) {
  // Force Lee (disable optimal strategies) and check the realized metal.
  Connection c = make_conn(0, {2, 2}, {10, 9});
  RouterConfig cfg;
  cfg.enable_zero_via = false;
  cfg.enable_one_via = false;
  Router router(stack_, cfg);
  ASSERT_TRUE(router.route_all({c}));
  const RouteRecord& r = router.db().rec(0);
  EXPECT_EQ(r.strategy, RouteStrategy::kLee);
  EXPECT_EQ(r.geom.hops.size(), r.geom.vias.size() + 1);
  CheckReport audit = audit_all(stack_, router.db(), {c});
  EXPECT_TRUE(audit.ok()) << audit.first_error();
}

TEST_F(LeeTest, ReusedSearcherIsEpochSafe) {
  // Run many searches through one LeeSearch: stale marks must never leak.
  LeeSearch lee(stack_);
  RouterConfig cfg;
  Connection c1 = make_conn(0, {1, 1}, {5, 5});
  Connection c2 = make_conn(1, {11, 11}, {6, 6});
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(lee.search(i % 2 ? c1 : c2, cfg).found);
  }
}

}  // namespace
}  // namespace grr
