// Tests for the netlist lint.
#include "board/lint.hpp"

#include <gtest/gtest.h>

#include "workload/board_gen.hpp"

namespace grr {
namespace {

class LintTest : public ::testing::Test {
 protected:
  LintTest() : spec_(41, 31), board_(spec_, 2) {
    dip_ = board_.add_footprint(Footprint::dip(16, 3));
    u1_ = board_.add_part("U1", dip_, {4, 4});
    u2_ = board_.add_part("U2", dip_, {20, 4});
  }

  Net two_pin(int out_pin, int in_pin) {
    Net net;
    net.name = "N";
    net.klass = SignalClass::kTTL;
    net.pins.push_back({u1_, out_pin, PinRole::kOutput});
    net.pins.push_back({u2_, in_pin, PinRole::kInput});
    return net;
  }

  GridSpec spec_;
  Board board_;
  int dip_;
  PartId u1_, u2_;
};

TEST_F(LintTest, CleanNetlistPasses) {
  board_.netlist().add(two_pin(1, 2));
  board_.netlist().add(two_pin(3, 4));
  CheckReport rep = lint_netlist(board_);
  EXPECT_TRUE(rep.ok());
  EXPECT_TRUE(rep.warnings().empty());
}

TEST_F(LintTest, DetectsBadPartAndPin) {
  Net net = two_pin(1, 2);
  net.pins.push_back({99, 0, PinRole::kInput});
  board_.netlist().add(std::move(net));
  Net net2 = two_pin(3, 4);
  net2.pins.push_back({u1_, 40, PinRole::kInput});
  board_.netlist().add(std::move(net2));
  CheckReport rep = lint_netlist(board_);
  ASSERT_EQ(rep.error_count(), 2u);
  EXPECT_NE(rep.errors()[0].find("nonexistent part"), std::string::npos);
  EXPECT_NE(rep.errors()[1].find("only 16 pins"), std::string::npos);
}

TEST_F(LintTest, DetectsSharedAndDuplicatePins) {
  Net net = two_pin(1, 2);
  net.pins.push_back({u2_, 2, PinRole::kInput});  // duplicate within net
  board_.netlist().add(std::move(net));
  board_.netlist().add(two_pin(1, 3));  // U1:1 shared with first net
  CheckReport rep = lint_netlist(board_);
  ASSERT_GE(rep.error_count(), 2u);
  EXPECT_NE(rep.errors()[0].find("twice"), std::string::npos);
  bool shared = false;
  for (const auto& e : rep.errors()) {
    if (e.find("shares") != std::string::npos) shared = true;
  }
  EXPECT_TRUE(shared);
}

TEST_F(LintTest, DetectsOutputAfterInput) {
  Net net;
  net.name = "BAD";
  net.klass = SignalClass::kECL;
  net.pins.push_back({u1_, 1, PinRole::kInput});
  net.pins.push_back({u1_, 2, PinRole::kOutput});
  board_.netlist().add(std::move(net));
  CheckReport rep = lint_netlist(board_);
  ASSERT_FALSE(rep.ok());
  EXPECT_NE(rep.errors()[0].find("precede"), std::string::npos);
}

TEST_F(LintTest, DetectsPowerPinAbuse) {
  board_.assign_power_pin("GND", u1_, 0);
  board_.netlist().add(two_pin(0, 2));  // drives from the ground pin
  CheckReport rep = lint_netlist(board_);
  ASSERT_FALSE(rep.ok());
  EXPECT_NE(rep.errors()[0].find("power pin"), std::string::npos);
}

TEST_F(LintTest, DetectsTerminatorShortage) {
  Net net = two_pin(1, 2);
  net.klass = SignalClass::kECL;
  net.needs_terminator = true;
  board_.netlist().add(std::move(net));
  CheckReport rep = lint_netlist(board_);  // no terminators registered
  ASSERT_FALSE(rep.ok());
  EXPECT_NE(rep.errors()[0].find("terminating resistors"),
            std::string::npos);
}

TEST_F(LintTest, WarnsAboutDegenerateNets) {
  board_.netlist().add(Net{});
  Net single;
  single.name = "S";
  single.pins.push_back({u1_, 5, PinRole::kInput});
  board_.netlist().add(std::move(single));
  Net ecl_no_out;
  ecl_no_out.name = "E";
  ecl_no_out.klass = SignalClass::kECL;
  ecl_no_out.pins.push_back({u1_, 6, PinRole::kInput});
  ecl_no_out.pins.push_back({u2_, 6, PinRole::kInput});
  board_.netlist().add(std::move(ecl_no_out));
  CheckReport rep = lint_netlist(board_);
  EXPECT_TRUE(rep.ok());
  // no-pins, single-pin, and two ECL-without-output warnings ("S" defaults
  // to ECL).
  EXPECT_EQ(rep.warning_count(), 4u);
}

TEST_F(LintTest, GeneratedWorkloadsAreClean) {
  BoardGenParams p;
  p.width_in = 4;
  p.height_in = 3;
  p.layers = 4;
  p.target_connections = 200;
  p.seed = 4;
  GeneratedBoard gb = generate_board(p);
  CheckReport rep = lint_netlist(*gb.board);
  EXPECT_TRUE(rep.ok()) << rep.first_error();
}

}  // namespace
}  // namespace grr
