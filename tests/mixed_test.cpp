// Tests for the two-pass mixed ECL/TTL driver (paper Sec 10.2) and the
// rejected two-via strategy (Sec 8.1 ablation).
#include "route/mixed.hpp"

#include <gtest/gtest.h>

#include "route/audit.hpp"

namespace grr {
namespace {

class MixedTest : public ::testing::Test {
 protected:
  MixedTest() : spec_(41, 31), stack_(spec_, 4) {
    // Left half ECL, right half TTL on every layer.
    const Coord split = spec_.grid_of_via(20);
    for (int l = 0; l < 4; ++l) {
      tiles_.add_tile(static_cast<LayerId>(l),
                      {{0, split - 1}, {0, spec_.extent().y.hi}},
                      SignalClass::kECL);
      tiles_.add_tile(static_cast<LayerId>(l),
                      {{split, spec_.extent().x.hi}, {0, spec_.extent().y.hi}},
                      SignalClass::kTTL);
    }
  }

  Connection make_conn(ConnId id, Point a, Point b, SignalClass k) {
    if (stack_.via_free(a)) stack_.drill_via(a, kPinConn);
    if (stack_.via_free(b)) stack_.drill_via(b, kPinConn);
    Connection c;
    c.id = id;
    c.a = a;
    c.b = b;
    c.klass = k;
    return c;
  }

  GridSpec spec_;
  LayerStack stack_;
  TileMap tiles_;
};

TEST_F(MixedTest, RoutesBothClassesInTheirTiles) {
  ConnectionList conns;
  conns.push_back(make_conn(0, {2, 5}, {15, 20}, SignalClass::kECL));
  conns.push_back(make_conn(1, {3, 8}, {12, 3}, SignalClass::kECL));
  conns.push_back(make_conn(2, {25, 5}, {38, 20}, SignalClass::kTTL));
  conns.push_back(make_conn(3, {26, 8}, {35, 3}, SignalClass::kTTL));

  MixedRouteResult r = route_mixed(stack_, tiles_, conns);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.ecl_conns.size(), 2u);
  EXPECT_EQ(r.ttl_conns.size(), 2u);
  EXPECT_EQ(r.ecl->stats().routed, 2);
  EXPECT_EQ(r.ttl->stats().routed, 2);
  // No filler is left behind.
  CheckReport a1 = audit_all(stack_, r.ecl->db(), r.ecl_conns, &tiles_);
  CheckReport a2 = audit_all(stack_, r.ttl->db(), r.ttl_conns, &tiles_);
  EXPECT_TRUE(a1.ok()) << a1.first_error();
  EXPECT_TRUE(a2.ok()) << a2.first_error();
}

TEST_F(MixedTest, CrossTileConnectionFailsItsPass) {
  // An ECL connection whose far pin sits deep in TTL territory cannot be
  // routed without trespassing; the pass reports failure rather than
  // violating the tesselation.
  ConnectionList conns;
  conns.push_back(make_conn(0, {2, 5}, {38, 20}, SignalClass::kECL));
  MixedRouteResult r = route_mixed(stack_, tiles_, conns);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.ecl->stats().failed, 1);
  CheckReport audit = audit_all(stack_, r.ecl->db(), r.ecl_conns, &tiles_);
  EXPECT_TRUE(audit.ok());
}

TEST_F(MixedTest, EmptyClassIsFine) {
  ConnectionList conns;
  conns.push_back(make_conn(0, {2, 5}, {15, 20}, SignalClass::kECL));
  MixedRouteResult r = route_mixed(stack_, tiles_, conns);
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.ttl_conns.empty());
}

class TwoViaTest : public ::testing::Test {
 protected:
  TwoViaTest() : spec_(21, 17), stack_(spec_, 2) {}

  Connection make_conn(ConnId id, Point a, Point b) {
    if (stack_.via_free(a)) stack_.drill_via(a, kPinConn);
    if (stack_.via_free(b)) stack_.drill_via(b, kPinConn);
    Connection c;
    c.id = id;
    c.a = a;
    c.b = b;
    return c;
  }

  GridSpec spec_;
  LayerStack stack_;
};

TEST_F(TwoViaTest, RoutesWhatOneViaCannot) {
  // A staircase connection needing two jogs with radius 1; block the
  // one-via corner squares so only a two-via (or Lee) solution exists.
  Connection c = make_conn(0, {2, 2}, {14, 12});
  for (Coord dx = -1; dx <= 1; ++dx) {
    for (Coord dy = -1; dy <= 1; ++dy) {
      for (Point corner : {Point{14, 2}, Point{2, 12}}) {
        Point v{corner.x + dx, corner.y + dy};
        if (spec_.via_in_board(v) && stack_.via_free(v)) {
          stack_.drill_via(v, kObstacleConn);
        }
      }
    }
  }
  RouterConfig cfg;
  cfg.radius = 1;
  cfg.enable_two_via = true;
  cfg.enable_lee = false;
  cfg.enable_ripup = false;
  Router router(stack_, cfg);
  ASSERT_TRUE(router.route_all({c}));
  const RouteRecord& r = router.db().rec(0);
  EXPECT_EQ(r.strategy, RouteStrategy::kTwoVia);
  EXPECT_EQ(r.geom.vias.size(), 2u);
  EXPECT_GT(router.stats().two_via_candidates, 0);
  CheckReport audit = audit_all(stack_, router.db(), {c});
  EXPECT_TRUE(audit.ok()) << audit.first_error();
}

TEST_F(TwoViaTest, DisabledByDefault) {
  Connection c = make_conn(0, {2, 2}, {14, 12});
  Router router(stack_);
  ASSERT_TRUE(router.route_all({c}));
  EXPECT_EQ(router.stats().two_via_candidates, 0);
}

TEST_F(TwoViaTest, CandidateBudgetIsHonored) {
  Connection c = make_conn(0, {2, 2}, {14, 12});
  RouterConfig cfg;
  cfg.radius = 1;
  cfg.enable_zero_via = false;
  cfg.enable_one_via = false;
  cfg.enable_two_via = true;
  cfg.enable_lee = false;
  cfg.enable_ripup = false;
  cfg.two_via_max_candidates = 3;
  // Block enough space that the first three candidates fail.
  for (Coord vx = 1; vx <= 15; ++vx) {
    for (Coord vy = 5; vy <= 9; ++vy) {
      if (stack_.via_free({vx, vy})) stack_.drill_via({vx, vy}, kObstacleConn);
    }
  }
  Router router(stack_, cfg);
  router.route_all({c});
  EXPECT_LE(router.stats().two_via_candidates, 3);
}

}  // namespace
}  // namespace grr
