// Tests for the optimal zero-via and one-via strategies (paper Sec 8.1).
#include <gtest/gtest.h>

#include "route/audit.hpp"
#include "route/router.hpp"

namespace grr {
namespace {

class OptimalTest : public ::testing::Test {
 protected:
  OptimalTest() : spec_(13, 13), stack_(spec_, 2) {}

  Connection make_conn(ConnId id, Point a, Point b) {
    if (stack_.via_free(a)) stack_.drill_via(a, kPinConn);
    if (stack_.via_free(b)) stack_.drill_via(b, kPinConn);
    Connection c;
    c.id = id;
    c.a = a;
    c.b = b;
    return c;
  }

  GridSpec spec_;
  LayerStack stack_;
};

TEST_F(OptimalTest, SameRowRoutesZeroVia) {
  Connection c = make_conn(0, {1, 5}, {10, 5});
  Router router(stack_);
  ASSERT_TRUE(router.route_all({c}));
  const RouteRecord& r = router.db().rec(0);
  EXPECT_EQ(r.strategy, RouteStrategy::kZeroVia);
  EXPECT_TRUE(r.geom.vias.empty());
  ASSERT_EQ(r.geom.hops.size(), 1u);
  // The direct trace lands on the horizontal layer.
  EXPECT_EQ(stack_.layer(r.geom.hops[0].layer).orientation(),
            Orientation::kHorizontal);
  EXPECT_TRUE(audit_all(stack_, router.db(), {c}).ok());
}

TEST_F(OptimalTest, SameColumnRoutesZeroViaVertically) {
  Connection c = make_conn(0, {5, 1}, {5, 10});
  Router router(stack_);
  ASSERT_TRUE(router.route_all({c}));
  const RouteRecord& r = router.db().rec(0);
  EXPECT_EQ(r.strategy, RouteStrategy::kZeroVia);
  EXPECT_EQ(stack_.layer(r.geom.hops[0].layer).orientation(),
            Orientation::kVertical);
}

TEST_F(OptimalTest, WithinRadiusJogRoutesZeroVia) {
  // dy = 1 <= radius: still a zero-via solution on a horizontal layer.
  Connection c = make_conn(0, {1, 5}, {10, 6});
  RouterConfig cfg;
  cfg.radius = 1;
  Router router(stack_, cfg);
  ASSERT_TRUE(router.route_all({c}));
  EXPECT_EQ(router.db().rec(0).strategy, RouteStrategy::kZeroVia);
}

TEST_F(OptimalTest, DiagonalRoutesOneVia) {
  // dx and dy both exceed the radius: no single-layer solution; the
  // optimal one-via solution drills near a corner of the bounding box.
  Connection c = make_conn(0, {2, 2}, {10, 9});
  RouterConfig cfg;
  cfg.radius = 1;
  Router router(stack_, cfg);
  ASSERT_TRUE(router.route_all({c}));
  const RouteRecord& r = router.db().rec(0);
  EXPECT_EQ(r.strategy, RouteStrategy::kOneVia);
  ASSERT_EQ(r.geom.vias.size(), 1u);
  ASSERT_EQ(r.geom.hops.size(), 2u);
  // The via sits within radius of one of the two corners (Fig 10).
  Point v = r.geom.vias[0];
  bool near_c1 = chebyshev(v, {10, 2}) <= 1;
  bool near_c2 = chebyshev(v, {2, 9}) <= 1;
  EXPECT_TRUE(near_c1 || near_c2) << "via at (" << v.x << "," << v.y << ")";
  EXPECT_TRUE(audit_all(stack_, router.db(), {c}).ok());
}

TEST_F(OptimalTest, CenterCandidateIsPreferred) {
  // On an empty board the best (first) candidate is a square center —
  // exactly a corner of the bounding rectangle.
  Connection c = make_conn(0, {2, 2}, {10, 9});
  Router router(stack_);
  ASSERT_TRUE(router.route_all({c}));
  Point v = router.db().rec(0).geom.vias[0];
  const bool at_corner = v == Point{10, 2} || v == Point{2, 9};
  EXPECT_TRUE(at_corner);
}

TEST_F(OptimalTest, OccupiedCornerShiftsCandidate) {
  // Both square centers are taken: the next ring must be used.
  stack_.drill_via({10, 2}, kObstacleConn);
  stack_.drill_via({2, 9}, kObstacleConn);
  Connection c = make_conn(0, {2, 2}, {10, 9});
  Router router(stack_);
  ASSERT_TRUE(router.route_all({c}));
  const RouteRecord& r = router.db().rec(0);
  EXPECT_EQ(r.strategy, RouteStrategy::kOneVia);
  Point v = r.geom.vias[0];
  EXPECT_NE(v, (Point{10, 2}));
  EXPECT_NE(v, (Point{2, 9}));
  EXPECT_TRUE(chebyshev(v, {10, 2}) <= 2 || chebyshev(v, {2, 9}) <= 2);
}

TEST_F(OptimalTest, ZeroViaDetoursAroundObstacle) {
  // An obstacle in the direct corridor, but the radius allows a jog.
  Connection c = make_conn(0, {1, 5}, {10, 5});
  // Wall the straight band y in [15-2, 15+2] at x=15..17, all within the
  // zero-via box; a radius-2 jog still fits.
  for (Coord y = 13; y <= 17; ++y) {
    stack_.insert_span({0, y, {15, 17}}, kObstacleConn);
  }
  RouterConfig cfg;
  cfg.radius = 2;
  Router router(stack_, cfg);
  ASSERT_TRUE(router.route_all({c}));
  EXPECT_EQ(router.db().rec(0).strategy, RouteStrategy::kZeroVia);
  EXPECT_TRUE(audit_all(stack_, router.db(), {c}).ok());
}

TEST_F(OptimalTest, StrategiesCanBeDisabled) {
  Connection c = make_conn(0, {1, 5}, {10, 5});
  RouterConfig cfg;
  cfg.enable_zero_via = false;
  cfg.enable_one_via = false;
  cfg.enable_lee = false;
  Router router(stack_, cfg);
  EXPECT_FALSE(router.route_all({c}));
  EXPECT_EQ(router.stats().failed, 1);
}

TEST_F(OptimalTest, LeePicksUpWhenOptimalDisabled) {
  Connection c = make_conn(0, {1, 5}, {10, 5});
  RouterConfig cfg;
  cfg.enable_zero_via = false;
  cfg.enable_one_via = false;
  Router router(stack_, cfg);
  ASSERT_TRUE(router.route_all({c}));
  EXPECT_EQ(router.db().rec(0).strategy, RouteStrategy::kLee);
  EXPECT_TRUE(audit_all(stack_, router.db(), {c}).ok());
}

TEST_F(OptimalTest, TrivialConnection) {
  Connection c = make_conn(0, {4, 4}, {4, 4});
  Router router(stack_);
  ASSERT_TRUE(router.route_all({c}));
  EXPECT_EQ(router.db().rec(0).strategy, RouteStrategy::kTrivial);
}

TEST_F(OptimalTest, AlreadyRoutedIsIdempotent) {
  Connection c = make_conn(0, {1, 5}, {10, 5});
  Router router(stack_);
  ASSERT_TRUE(router.route_all({c}));
  std::size_t live = stack_.segment_count();
  EXPECT_TRUE(router.route_connection(c));  // "alreadyrouted"
  EXPECT_EQ(stack_.segment_count(), live);
}

}  // namespace
}  // namespace grr
