// Tests for routing-pattern statistics (paper Sec 12's methodology).
#include "report/pattern_stats.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "workload/board_gen.hpp"

namespace grr {
namespace {

TEST(PatternStatsTest, EmptyBoard) {
  GridSpec spec(11, 9);
  LayerStack stack(spec, 2);
  RouteDB db(0);
  PatternStats s = analyze_patterns(stack, db, {});
  ASSERT_EQ(s.layers.size(), 2u);
  EXPECT_EQ(s.layers[0].used_track, 0);
  EXPECT_EQ(s.layers[0].capacity, 31 * 25);
  EXPECT_EQ(s.routed, 0);
  EXPECT_DOUBLE_EQ(s.layers[0].utilization(), 0.0);
}

TEST(PatternStatsTest, SingleStraightRoute) {
  GridSpec spec(21, 17);
  LayerStack stack(spec, 2);
  stack.drill_via({2, 5}, kPinConn);
  stack.drill_via({15, 5}, kPinConn);
  Connection c;
  c.id = 0;
  c.a = {2, 5};
  c.b = {15, 5};
  Router router(stack);
  ASSERT_TRUE(router.route_all({c}));

  PatternStats s = analyze_patterns(stack, router.db(), {c});
  EXPECT_EQ(s.routed, 1);
  EXPECT_EQ(s.via_histogram[0], 1);  // zero-via route
  EXPECT_EQ(s.max_vias_on_conn, 0);
  // A same-row route is near-minimal; allow for the off-via-row jog.
  EXPECT_GE(s.avg_detour_ratio, 0.95);
  EXPECT_LT(s.avg_detour_ratio, 1.3);
  // Some track is used on exactly one layer, plus the two pins everywhere.
  long track = 0;
  for (const LayerUtilization& u : s.layers) {
    track += u.used_track;
    EXPECT_EQ(u.via_cells, 2);  // two pin pads per layer
  }
  EXPECT_GT(track, 0);
}

TEST(PatternStatsTest, GeneratedBoardSummary) {
  BoardGenParams p;
  p.width_in = 4;
  p.height_in = 3;
  p.layers = 4;
  p.target_connections = 200;
  p.seed = 8;
  GeneratedBoard gb = generate_board(p);
  Router router(gb.board->stack());
  ASSERT_TRUE(router.route_all(gb.strung.connections));
  PatternStats s =
      analyze_patterns(gb.board->stack(), router.db(), gb.strung.connections);
  EXPECT_EQ(s.routed, router.stats().routed);
  // Histogram sums to the routed count.
  int sum = 0;
  for (int n : s.via_histogram) sum += n;
  EXPECT_EQ(sum, s.routed);
  // Routed length always meets the Manhattan lower bound.
  // Trace metal stops at the pad edges (~42 mils per end), so the ratio
  // can dip slightly below the center-to-center Manhattan bound.
  EXPECT_GE(s.avg_detour_ratio, 0.85);
  EXPECT_GT(s.total_trace_mils, 0);
  for (const LayerUtilization& u : s.layers) {
    EXPECT_LE(u.used_track + u.via_cells, u.capacity);
  }

  std::ostringstream os;
  print_pattern_stats(os, s);
  EXPECT_NE(os.str().find("pattern statistics"), std::string::npos);
  EXPECT_NE(os.str().find("histogram"), std::string::npos);
}

}  // namespace
}  // namespace grr
