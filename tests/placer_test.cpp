// Tests for the simulated-annealing placer.
#include "place/placer.hpp"

#include <gtest/gtest.h>

#include <random>
#include <set>

namespace grr {
namespace {

TEST(PlacerTest, EmptyAndSingleCell) {
  PlacementProblem p;
  p.sites_x = 4;
  p.sites_y = 4;
  p.num_cells = 0;
  PlacementResult r = place_anneal(p);
  EXPECT_TRUE(r.site_of_cell.empty());

  p.num_cells = 1;
  r = place_anneal(p);
  ASSERT_EQ(r.site_of_cell.size(), 1u);
  EXPECT_DOUBLE_EQ(r.final_hpwl, 0.0);
}

TEST(PlacerTest, HpwlIsTheBoundingHalfPerimeter) {
  PlacementProblem p;
  p.nets.push_back({{0, 1, 2}, 1.0});
  std::vector<Point> pos = {{0, 0}, {4, 0}, {4, 3}};
  EXPECT_DOUBLE_EQ(placement_hpwl(p, pos), 7.0);
  p.nets[0].weight = 2.5;
  EXPECT_DOUBLE_EQ(placement_hpwl(p, pos), 17.5);
}

TEST(PlacerTest, PullsConnectedCellsTogether) {
  // A chain of 10 cells on a 10x10 grid with pathological initial order:
  // the annealer must find a placement far shorter than the start.
  PlacementProblem p;
  p.sites_x = 10;
  p.sites_y = 10;
  p.num_cells = 10;
  // Connect cell i to cell i+1 — but the initial layout (index order along
  // a row) is permuted badly by wiring i to (i*7)%10.
  for (int i = 0; i + 1 < 10; ++i) {
    p.nets.push_back({{(i * 7) % 10, ((i + 1) * 7) % 10}, 1.0});
  }
  PlacementResult r = place_anneal(p);
  EXPECT_LT(r.final_hpwl, r.initial_hpwl);
  // The optimum is a path of adjacent cells: HPWL 9.
  EXPECT_LE(r.final_hpwl, 15.0);
  EXPECT_GT(r.moves_accepted, 0);
}

TEST(PlacerTest, DeterministicForSeed) {
  PlacementProblem p;
  p.sites_x = 8;
  p.sites_y = 8;
  p.num_cells = 20;
  std::mt19937 rng(3);
  for (int n = 0; n < 25; ++n) {
    PlaceNet net;
    for (int k = 0; k < 3; ++k) {
      net.cells.push_back(static_cast<int>(rng() % 20));
    }
    p.nets.push_back(net);
  }
  PlacementResult a = place_anneal(p);
  PlacementResult b = place_anneal(p);
  EXPECT_EQ(a.site_of_cell, b.site_of_cell);
  EXPECT_DOUBLE_EQ(a.final_hpwl, b.final_hpwl);
  PlacementParams other;
  other.seed = 99;
  PlacementResult c = place_anneal(p, other);
  EXPECT_TRUE(c.site_of_cell != a.site_of_cell ||
              c.final_hpwl != a.final_hpwl);
}

TEST(PlacerTest, ResultIsAValidAssignment) {
  PlacementProblem p;
  p.sites_x = 5;
  p.sites_y = 4;
  p.num_cells = 17;
  for (int i = 0; i + 1 < 17; i += 2) p.nets.push_back({{i, i + 1}, 1.0});
  PlacementResult r = place_anneal(p);
  ASSERT_EQ(r.site_of_cell.size(), 17u);
  std::set<std::pair<Coord, Coord>> used;
  for (Point s : r.site_of_cell) {
    EXPECT_GE(s.x, 0);
    EXPECT_LT(s.x, 5);
    EXPECT_GE(s.y, 0);
    EXPECT_LT(s.y, 4);
    EXPECT_TRUE(used.insert({s.x, s.y}).second) << "two cells on one site";
  }
  // Internal accounting matches a recomputation.
  EXPECT_NEAR(r.final_hpwl, placement_hpwl(p, r.site_of_cell), 1e-6);
}

TEST(PlacerTest, CriticalNetWeightingShortensThatNet) {
  // Two competing nets share cells; weighting one heavily must make it the
  // short one.
  PlacementProblem p;
  p.sites_x = 9;
  p.sites_y = 1;
  p.num_cells = 3;
  // Net A: 0-1, net B: 1-2; on a 1-row board one of them must be long
  // when 0 and 2 sit on opposite sides of 1... weight decides the layout
  // indirectly. Use a sharper construction: cells 0,1 heavily connected,
  // 1,2 lightly.
  p.nets.push_back({{0, 1}, 10.0});
  p.nets.push_back({{1, 2}, 1.0});
  PlacementParams params;
  params.moves_per_cell = 2000;
  PlacementResult r = place_anneal(p, params);
  long d01 = manhattan(r.site_of_cell[0], r.site_of_cell[1]);
  long d12 = manhattan(r.site_of_cell[1], r.site_of_cell[2]);
  EXPECT_LE(d01, d12);
  EXPECT_EQ(d01, 1);  // the heavy net ends up adjacent
}

}  // namespace
}  // namespace grr
