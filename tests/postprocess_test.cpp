// Tests for photoplot postprocessing (paper footnote 2): rectilinear
// polyline reconstruction and 45-degree mitering.
#include "postprocess/miter.hpp"

#include <gtest/gtest.h>

#include "route/audit.hpp"
#include "route/router.hpp"

namespace grr {
namespace {

class PostprocessTest : public ::testing::Test {
 protected:
  PostprocessTest() : spec_(13, 13), stack_(spec_, 2) {}

  Connection route(ConnId id, Point a, Point b) {
    if (stack_.via_free(a)) stack_.drill_via(a, kPinConn);
    if (stack_.via_free(b)) stack_.drill_via(b, kPinConn);
    Connection c;
    c.id = id;
    c.a = a;
    c.b = b;
    return c;
  }

  GridSpec spec_;
  LayerStack stack_;
};

TEST_F(PostprocessTest, PolylineConnectsEndpoints) {
  Connection c = route(0, {1, 5}, {10, 7});
  Router router(stack_);
  ASSERT_TRUE(router.route_all({c}));
  const RouteRecord& r = router.db().rec(0);
  std::vector<Point> seq{c.a};
  seq.insert(seq.end(), r.geom.vias.begin(), r.geom.vias.end());
  seq.push_back(c.b);
  for (std::size_t j = 0; j < r.geom.hops.size(); ++j) {
    HopPolyline poly =
        hop_polyline(spec_, stack_, r.geom.hops[j], seq[j], seq[j + 1]);
    ASSERT_GE(poly.points.size(), 2u);
    EXPECT_EQ(poly.points.front(), spec_.grid_of_via(seq[j]));
    EXPECT_EQ(poly.points.back(), spec_.grid_of_via(seq[j + 1]));
    // Rectilinear: consecutive points share a coordinate.
    for (std::size_t i = 0; i + 1 < poly.points.size(); ++i) {
      const Point p = poly.points[i], q = poly.points[i + 1];
      EXPECT_TRUE(p.x == q.x || p.y == q.y);
      EXPECT_FALSE(p == q);
    }
  }
}

TEST_F(PostprocessTest, MiterCutsCorners) {
  HopPolyline poly;
  poly.points = {{0, 0}, {10, 0}, {10, 10}};
  HopPolyline cut = miter45(poly, 2);
  // The right-angle corner becomes two 45-degree corner points.
  ASSERT_EQ(cut.points.size(), 4u);
  EXPECT_EQ(cut.points[1], (Point{8, 0}));
  EXPECT_EQ(cut.points[2], (Point{10, 2}));
  EXPECT_EQ(cut.points.front(), poly.points.front());
  EXPECT_EQ(cut.points.back(), poly.points.back());
}

TEST_F(PostprocessTest, MiterSkipsTinyArms) {
  HopPolyline poly;
  poly.points = {{0, 0}, {1, 0}, {1, 10}};  // one-step arm: nothing to cut
  HopPolyline cut = miter45(poly, 2);
  EXPECT_EQ(cut.points, poly.points);
}

TEST_F(PostprocessTest, MiterShortensLength) {
  HopPolyline poly;
  poly.points = {{0, 0}, {9, 0}, {9, 9}, {18, 9}};
  HopPolyline cut = miter45(poly, 2);
  double straight = polyline_length_mils(spec_, poly);
  double mitered = polyline_length_mils(spec_, cut);
  EXPECT_LT(mitered, straight);
  // Straight-line length: 9+9+9 pitches/3... measured in mils via spec.
  EXPECT_NEAR(straight,
              spec_.mils_between(0, 9) * 2 + spec_.mils_between(0, 9), 1);
}

TEST_F(PostprocessTest, RoutedBoardMitersEverywhere) {
  // Route a handful of connections, miter every hop, and confirm the
  // mitered artwork is never longer than the rectilinear artwork.
  ConnectionList conns;
  conns.push_back(route(0, {1, 1}, {10, 3}));
  conns.push_back(route(1, {1, 4}, {10, 8}));
  conns.push_back(route(2, {2, 10}, {11, 2}));
  Router router(stack_);
  ASSERT_TRUE(router.route_all(conns));
  for (const Connection& c : conns) {
    const RouteRecord& r = router.db().rec(c.id);
    std::vector<Point> seq{c.a};
    seq.insert(seq.end(), r.geom.vias.begin(), r.geom.vias.end());
    seq.push_back(c.b);
    for (std::size_t j = 0; j < r.geom.hops.size(); ++j) {
      HopPolyline poly =
          hop_polyline(spec_, stack_, r.geom.hops[j], seq[j], seq[j + 1]);
      HopPolyline cut = miter45(poly);
      EXPECT_LE(polyline_length_mils(spec_, cut) - 1e-6,
                polyline_length_mils(spec_, poly));
    }
  }
}

}  // namespace
}  // namespace grr
