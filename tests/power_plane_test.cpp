// Tests for power-plane etch generation (paper Sec 2 + Appendix, Fig 22).
#include "board/power_plane.hpp"

#include <gtest/gtest.h>

namespace grr {
namespace {

TEST(PowerPlaneTest, ClassifiesHoles) {
  GridSpec spec(11, 9);
  Board board(spec, 2);
  int sip = board.add_footprint(Footprint::sip(2));
  PartId p = board.add_part("U1", sip, {3, 3});  // pins at (3,3) and (3,4)
  board.add_obstacle({1, 1});                    // mounting screw
  board.stack().drill_via({7, 7}, 5);            // a signal via

  // Pin (3,3) belongs to the VEE plane; pin (3,4) does not.
  PowerPlaneArt art =
      generate_power_plane(board, "VEE", {board.pin_via(p, 0)});

  EXPECT_EQ(art.net_name, "VEE");
  EXPECT_EQ(art.width_mils, 1000);
  EXPECT_EQ(art.height_mils, 800);
  ASSERT_EQ(art.disks.size(), 4u);  // 2 pins + 1 via + 1 mount

  auto find = [&](Point mils) -> const PlaneDisk* {
    for (const PlaneDisk& d : art.disks) {
      if (d.center_mils == mils) return &d;
    }
    return nullptr;
  };
  const PlaneDisk* member = find({300, 300});
  ASSERT_NE(member, nullptr);
  EXPECT_EQ(member->feature, PlaneFeature::kThermalRelief);

  const PlaneDisk* other_pin = find({300, 400});
  ASSERT_NE(other_pin, nullptr);
  EXPECT_EQ(other_pin->feature, PlaneFeature::kClearance);

  const PlaneDisk* via = find({700, 700});
  ASSERT_NE(via, nullptr);
  EXPECT_EQ(via->feature, PlaneFeature::kClearance);

  const PlaneDisk* mount = find({100, 100});
  ASSERT_NE(mount, nullptr);
  EXPECT_EQ(mount->feature, PlaneFeature::kMountClearance);
  // Mounting clearance is the largest disk.
  EXPECT_GT(mount->radius_mils, member->radius_mils);
  EXPECT_GT(member->radius_mils, via->radius_mils);
}

TEST(PowerPlaneTest, TracesAreNotHoles) {
  GridSpec spec(11, 9);
  Board board(spec, 2);
  // A trace covering a via site on ONE layer is not a drill hole and gets
  // no clearance disk.
  Point g = spec.grid_of_via({4, 4});
  board.stack().insert_span({0, g.y, {g.x - 1, g.x + 1}}, 7);
  PowerPlaneArt art = generate_power_plane(board, "GND", {});
  EXPECT_TRUE(art.disks.empty());
}

TEST(PowerPlaneTest, EmptyBoard) {
  GridSpec spec(5, 5);
  Board board(spec, 2);
  PowerPlaneArt art = generate_power_plane(board, "VCC", {});
  EXPECT_TRUE(art.disks.empty());
}

}  // namespace
}  // namespace grr
