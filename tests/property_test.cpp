// Property-style parameterized sweeps: every configuration must uphold the
// data-representation invariants (via the auditor) and the router's
// bookkeeping identities, across seeds, layer counts, radii and cost
// functions.
#include <gtest/gtest.h>

#include <random>
#include <unordered_set>

#include "route/audit.hpp"
#include "route/router.hpp"
#include "route/transaction.hpp"
#include "stringer/stringer.hpp"
#include "workload/board_gen.hpp"

namespace grr {
namespace {

struct SweepParam {
  std::uint32_t seed;
  int layers;
  double locality;
  int radius;
  CostFn cost_fn;
  bool bidirectional;

  friend std::ostream& operator<<(std::ostream& os, const SweepParam& p) {
    return os << "seed" << p.seed << "_L" << p.layers << "_r" << p.radius
              << "_cf" << static_cast<int>(p.cost_fn)
              << (p.bidirectional ? "_bidir" : "_unidir");
  }
};

class RouteSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(RouteSweep, RoutesAuditCleanAndStatsBalance) {
  const SweepParam& sp = GetParam();
  BoardGenParams p;
  p.name = "sweep";
  p.width_in = 4;
  p.height_in = 3;
  p.layers = sp.layers;
  p.target_connections = 160;
  p.locality = sp.locality;
  p.seed = sp.seed;
  GeneratedBoard gb = generate_board(p);

  RouterConfig cfg;
  cfg.radius = sp.radius;
  cfg.cost_fn = sp.cost_fn;
  cfg.bidirectional = sp.bidirectional;
  Router router(gb.board->stack(), cfg);
  router.route_all(gb.strung.connections);

  // Whether or not everything routed, the board must be consistent.
  CheckReport audit =
      audit_all(gb.board->stack(), router.db(), gb.strung.connections);
  EXPECT_TRUE(audit.ok()) << audit.first_error();

  const RouterStats& st = router.stats();
  EXPECT_EQ(st.routed + st.failed, st.total);
  int by_strat = 0;
  for (int i = 0; i < kNumRouteStrategies; ++i) by_strat += st.by_strategy[i];
  EXPECT_EQ(by_strat, st.routed);

  // Unrouted connections must hold no metal.
  for (const Connection& c : gb.strung.connections) {
    if (!router.db().routed(c.id)) {
      EXPECT_TRUE(router.db().rec(c.id).segs.empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndLayers, RouteSweep,
    ::testing::Values(
        SweepParam{1, 2, 0.25, 1, CostFn::kDistTimesHops, true},
        SweepParam{2, 2, 0.25, 1, CostFn::kDistTimesHops, true},
        SweepParam{3, 4, 0.35, 1, CostFn::kDistTimesHops, true},
        SweepParam{4, 4, 0.35, 2, CostFn::kDistTimesHops, true},
        SweepParam{5, 6, 0.45, 1, CostFn::kDistTimesHops, true},
        SweepParam{6, 6, 0.45, 2, CostFn::kDistTimesHops, true},
        SweepParam{7, 4, 0.35, 3, CostFn::kDistTimesHops, true},
        SweepParam{8, 4, 0.35, 1, CostFn::kUnitHops, true},
        SweepParam{9, 4, 0.35, 1, CostFn::kDistance, true},
        SweepParam{10, 4, 0.35, 1, CostFn::kDistTimesHops, false},
        SweepParam{11, 3, 0.30, 1, CostFn::kDistTimesHops, true},
        SweepParam{12, 4, 0.60, 2, CostFn::kUnitHops, false}));

class RipPutbackSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(RipPutbackSweep, RipThenPutbackRestoresExactState) {
  BoardGenParams p;
  p.name = "rip";
  p.width_in = 4;
  p.height_in = 3;
  p.layers = 4;
  p.target_connections = 150;
  p.locality = 0.3;
  p.seed = GetParam();
  GeneratedBoard gb = generate_board(p);
  Router router(gb.board->stack(), RouterConfig{});
  ASSERT_TRUE(router.route_all(gb.strung.connections));
  LayerStack& stack = gb.board->stack();
  const std::size_t live = stack.segment_count();

  // Rip a pseudo-random subset and put everything back: the final state
  // must be byte-for-byte equivalent (same segment count, audit clean,
  // identical geometry).
  std::mt19937 rng(GetParam());
  std::vector<ConnId> ripped;
  for (const Connection& c : gb.strung.connections) {
    if (rng() % 4 == 0 && router.db().routed(c.id)) {
      RouteTransaction::rip_out(stack, router.db(), c.id);
      ripped.push_back(c.id);
    }
  }
  EXPECT_LT(stack.segment_count(), live);
  for (ConnId id : ripped) {
    EXPECT_TRUE(RouteTransaction::putback(stack, router.db(), id));
  }
  EXPECT_EQ(stack.segment_count(), live);
  CheckReport audit =
      audit_all(stack, router.db(), gb.strung.connections);
  EXPECT_TRUE(audit.ok()) << audit.first_error();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RipPutbackSweep,
                         ::testing::Range(1u, 9u));

class TraceSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(TraceSweep, RandomTracesKeepTheStackConsistent) {
  // Fuzz Trace against random clutter: every successful trace inserts
  // cleanly and the stack stays audit-clean throughout.
  GridSpec spec(17, 13);
  LayerStack stack(spec, 2);
  std::mt19937 rng(GetParam());
  auto rnd = [&](Coord lo, Coord hi) {
    return std::uniform_int_distribution<Coord>(lo, hi)(rng);
  };

  // Clutter: random obstacle spans on both layers.
  for (int i = 0; i < 60; ++i) {
    LayerId l = static_cast<LayerId>(rng() % 2);
    const Layer& layer = stack.layer(l);
    Coord ch = rnd(layer.across_extent().lo, layer.across_extent().hi);
    Coord lo = rnd(layer.along_extent().lo, layer.along_extent().hi - 3);
    Interval span{lo, std::min<Coord>(lo + rnd(0, 6),
                                      layer.along_extent().hi)};
    Interval gap = layer.channel(ch).free_gap_at(
        stack.pool(), layer.along_extent(), span.lo);
    if (!gap.contains(span)) continue;
    stack.insert_span({l, ch, span}, kObstacleConn);
  }

  int routed = 0;
  ConnId next = 0;
  for (int trial = 0; trial < 40; ++trial) {
    Point a{rnd(0, 16), rnd(0, 12)};
    Point b{rnd(0, 16), rnd(0, 12)};
    if (a == b || !stack.via_free(a) || !stack.via_free(b)) continue;
    stack.drill_via(a, kPinConn);
    stack.drill_via(b, kPinConn);
    LayerId l = static_cast<LayerId>(rng() % 2);
    auto spans = trace_path(stack.layer(l), stack.pool(),
                            spec.grid_of_via(a), spec.grid_of_via(b),
                            spec.extent(), kDefaultMaxFreeNodes, nullptr,
                            spec.period());
    if (!spans) continue;
    for (const ChannelSpan& cs : *spans) {
      // Every returned span must be free space right now.
      ASSERT_TRUE(stack.span_free({l, cs.channel, cs.span}))
          << "Trace returned an occupied span";
      stack.insert_span({l, cs.channel, cs.span}, next);
    }
    ++next;
    ++routed;
  }
  EXPECT_GT(routed, 0);
  CheckReport audit = audit_stack(stack);
  EXPECT_TRUE(audit.ok()) << audit.first_error();
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceSweep, ::testing::Range(1u, 13u));

/// Stringing-method generality: greedy chains, random chains and spanning
/// trees all produce routable, auditable problems from the same netlist.
class StringingSweep
    : public ::testing::TestWithParam<std::tuple<StringingMethod, int>> {};

TEST_P(StringingSweep, AllMethodsRouteAndAudit) {
  auto [method, seed] = GetParam();
  BoardGenParams p;
  p.name = "string";
  p.width_in = 4;
  p.height_in = 3;
  p.layers = 4;
  p.target_connections = 150;
  p.locality = 0.3;
  p.ecl_fraction = 0.5;  // mix: trees apply to the TTL half
  p.seed = static_cast<std::uint32_t>(seed);
  GeneratedBoard gb = generate_board(p);

  StringingResult strung = string_nets(*gb.board, method, p.seed);
  Router router(gb.board->stack());
  router.route_all(strung.connections);
  EXPECT_GT(router.stats().routed, 0);
  CheckReport audit =
      audit_all(gb.board->stack(), router.db(), strung.connections);
  EXPECT_TRUE(audit.ok()) << audit.first_error();

  // Every net's connections form a connected graph over its pins.
  const Netlist& nl = gb.board->netlist();
  std::vector<std::vector<const Connection*>> by_net(nl.nets.size());
  for (const Connection& c : strung.connections) {
    by_net[static_cast<std::size_t>(c.net)].push_back(&c);
  }
  for (std::size_t ni = 0; ni < nl.nets.size(); ++ni) {
    if (nl.nets[ni].pins.size() < 2) continue;
    std::unordered_set<Point> reached;
    reached.insert(gb.board->pin_via(nl.nets[ni].pins[0]));
    bool grew = true;
    while (grew) {
      grew = false;
      for (const Connection* c : by_net[ni]) {
        bool ha = reached.contains(c->a), hb = reached.contains(c->b);
        if (ha != hb) {
          reached.insert(ha ? c->b : c->a);
          grew = true;
        }
      }
    }
    for (const NetPin& np : nl.nets[ni].pins) {
      EXPECT_TRUE(reached.contains(gb.board->pin_via(np)))
          << "net " << ni << " pin not connected by stringing";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Methods, StringingSweep,
    ::testing::Combine(::testing::Values(StringingMethod::kGreedy,
                                         StringingMethod::kRandom,
                                         StringingMethod::kSpanningTree),
                       ::testing::Values(1, 2, 3)));

/// Grid-embedding generality: the whole pipeline must work for any number
/// of routing tracks between via points, not just the paper's 2.
class PeriodSweep : public ::testing::TestWithParam<int> {};

TEST_P(PeriodSweep, RoutesOnAnyGridEmbedding) {
  const int tracks = GetParam();
  GridSpec spec(31, 25, tracks, 50 * (tracks + 1));
  LayerStack stack(spec, 4);
  std::mt19937 rng(static_cast<std::uint32_t>(tracks) + 7);
  auto rnd = [&](Coord lo, Coord hi) {
    return std::uniform_int_distribution<Coord>(lo, hi)(rng);
  };

  ConnectionList conns;
  for (int i = 0; i < 60; ++i) {
    Point a{rnd(0, 30), rnd(0, 24)};
    Point b{rnd(0, 30), rnd(0, 24)};
    if (!stack.via_free(a)) continue;
    stack.drill_via(a, kPinConn);
    if (!stack.via_free(b)) {
      continue;  // keep a as a stray pin; realistic enough
    }
    stack.drill_via(b, kPinConn);
    Connection c;
    c.id = static_cast<ConnId>(conns.size());
    c.a = a;
    c.b = b;
    conns.push_back(c);
  }

  Router router(stack);
  router.route_all(conns);
  // A sparse random problem on an open board must route completely for
  // every practical embedding (with zero tracks between vias every trace
  // cell is a drill site, so via starvation is inherent — there we only
  // require consistency and a mostly-routed result).
  if (tracks >= 1) {
    EXPECT_EQ(router.stats().failed, 0)
        << router.stats().failed << " failed at period " << tracks + 1;
  } else {
    EXPECT_LT(router.stats().failed, router.stats().total / 2);
  }
  CheckReport audit = audit_all(stack, router.db(), conns);
  EXPECT_TRUE(audit.ok()) << audit.first_error();
}

INSTANTIATE_TEST_SUITE_P(TracksBetweenVias, PeriodSweep,
                         ::testing::Values(0, 1, 2, 3));

}  // namespace
}  // namespace grr
