// Tests for Table 1 formatting and SVG rendering.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "report/html_report.hpp"
#include "report/svg.hpp"
#include "report/table.hpp"
#include "route/router.hpp"
#include "workload/board_gen.hpp"

namespace grr {
namespace {

GeneratedBoard tiny_board() {
  BoardGenParams p;
  p.name = "svg";
  p.width_in = 3;
  p.height_in = 3;
  p.layers = 2;
  p.target_connections = 40;
  p.locality = 0.3;
  p.seed = 9;
  return generate_board(p);
}

TEST(TableTest, FormatsRowsAndFailureMarker) {
  Table1Row ok;
  ok.board = "coproc-6L";
  ok.layers = 6;
  ok.conn = 5937;
  ok.pct_routed = 100.0;
  Table1Row bad;
  bad.board = "kdj11-2L";
  bad.layers = 2;
  bad.conn = 1184;
  bad.pct_routed = 79.9;
  std::ostringstream os;
  print_table1(os, {bad, ok});
  std::string out = os.str();
  EXPECT_NE(out.find("kdj11-2L"), std::string::npos);
  EXPECT_NE(out.find("FAIL"), std::string::npos);
  EXPECT_NE(out.find("coproc-6L"), std::string::npos);
  EXPECT_NE(out.find("%chan"), std::string::npos);
}

TEST(TableTest, FromRunFillsColumns) {
  GeneratedBoard gb = tiny_board();
  Router router(gb.board->stack(), RouterConfig{});
  router.route_all(gb.strung.connections);
  Table1Row row = Table1Row::from_run(gb, router.stats(), 1.5);
  EXPECT_EQ(row.board, "svg");
  EXPECT_EQ(row.layers, 2);
  EXPECT_EQ(row.conn, static_cast<int>(gb.strung.connections.size()));
  EXPECT_DOUBLE_EQ(row.cpu_sec, 1.5);
  EXPECT_GT(row.pins_in2, 0.0);
}

TEST(SvgTest, RendersAllViews) {
  GeneratedBoard gb = tiny_board();
  Router router(gb.board->stack(), RouterConfig{});
  router.route_all(gb.strung.connections);

  std::string placement = svg_placement(*gb.board);
  EXPECT_NE(placement.find("<svg"), std::string::npos);
  EXPECT_NE(placement.find("<circle"), std::string::npos);  // pins

  std::string art = svg_string_art(*gb.board, gb.strung.connections);
  EXPECT_NE(art.find("<line"), std::string::npos);

  std::string layer =
      svg_signal_layer(*gb.board, router.db(), gb.strung.connections, 0);
  EXPECT_NE(layer.find("<polyline"), std::string::npos);

  PowerPlaneArt pp = generate_power_plane(*gb.board, "GND", {});
  std::string plane = svg_power_plane(pp);
  EXPECT_NE(plane.find("<svg"), std::string::npos);
}

TEST(SvgTest, MiteredLayerDiffersFromRectilinear) {
  GeneratedBoard gb = tiny_board();
  Router router(gb.board->stack(), RouterConfig{});
  router.route_all(gb.strung.connections);
  std::string rect = svg_signal_layer(*gb.board, router.db(),
                                      gb.strung.connections, 0, false);
  std::string mitered = svg_signal_layer(*gb.board, router.db(),
                                         gb.strung.connections, 0, true);
  EXPECT_NE(rect, mitered);
}

TEST(HtmlReportTest, SelfContainedDocument) {
  GeneratedBoard gb = tiny_board();
  Router router(gb.board->stack(), RouterConfig{});
  router.route_all(gb.strung.connections);
  std::string html = html_board_report(*gb.board, router,
                                       gb.strung.connections, "t <& test>");
  EXPECT_EQ(html.find("<!DOCTYPE html>"), 0u);
  // The title is escaped.
  EXPECT_NE(html.find("t &lt;&amp; test&gt;"), std::string::npos);
  EXPECT_EQ(html.find("<& test>"), std::string::npos);
  // One problem SVG plus one per layer, all inline.
  EXPECT_NE(html.find("Routing problem"), std::string::npos);
  EXPECT_NE(html.find("Signal layer 1"), std::string::npos);
  std::size_t svgs = 0;
  for (std::size_t at = html.find("<svg"); at != std::string::npos;
       at = html.find("<svg", at + 1)) {
    ++svgs;
  }
  EXPECT_EQ(svgs, 1u + static_cast<std::size_t>(
                           gb.board->stack().num_layers()));
  EXPECT_NE(html.find("</html>"), std::string::npos);
}

TEST(SvgTest, WriteFile) {
  std::string path = testing::TempDir() + "/grr_svg_test.svg";
  EXPECT_TRUE(write_file(path, "<svg/>"));
  FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_FALSE(write_file("/nonexistent-dir/x.svg", "y"));
}

}  // namespace
}  // namespace grr
