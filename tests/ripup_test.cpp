// Tests for rip-up and put-back (paper Sec 8.3).
#include <gtest/gtest.h>

#include "route/audit.hpp"
#include "route/router.hpp"
#include "workload/board_gen.hpp"

namespace grr {
namespace {

class RipupTest : public ::testing::Test {
 protected:
  RipupTest() : spec_(13, 13), stack_(spec_, 1) {}  // one H layer only

  Connection make_conn(ConnId id, Point a, Point b) {
    if (stack_.via_free(a)) stack_.drill_via(a, kPinConn);
    if (stack_.via_free(b)) stack_.drill_via(b, kPinConn);
    Connection c;
    c.id = id;
    c.a = a;
    c.b = b;
    return c;
  }

  /// Leave only a narrow horizontal corridor of `tracks` grid rows around
  /// grid row `y0` open between x=xlo and x=xhi on layer 0.
  void corridor(Coord y0, int tracks, Coord xlo, Coord xhi) {
    for (Coord y = 0; y <= spec_.extent().y.hi; ++y) {
      if (y >= y0 && y < y0 + tracks) continue;
      // Leave the pin columns outside [xlo, xhi] open.
      std::vector<Interval> gaps;
      stack_.layer(0).channel(y).for_gaps_overlapping(
          stack_.pool(), stack_.layer(0).along_extent(), {xlo, xhi},
          [&](Interval g) { gaps.push_back(g.intersect({xlo, xhi})); });
      for (Interval g : gaps) {
        if (!g.empty()) stack_.insert_span({0, y, g}, kObstacleConn);
      }
    }
  }

  GridSpec spec_;
  LayerStack stack_;
};

TEST_F(RipupTest, BlockedConnectionRipsTheObstructor) {
  // A single one-track corridor: whoever holds it blocks the other.
  Connection first = make_conn(0, {1, 6}, {11, 6});
  Connection second = make_conn(1, {1, 4}, {11, 8});
  corridor(19, 1, 9, 27);  // one free row at grid y=19 between the pins

  Router router(stack_);
  router.route_all({first, second});
  // The corridor can only carry one of them; a rip-up must have happened
  // while the router tried to make room.
  EXPECT_GE(router.stats().rip_ups, 1);
  EXPECT_EQ(router.stats().routed, 1);
  EXPECT_EQ(router.stats().failed, 1);
  // No corrupted state despite the fight over the corridor.
  CheckReport audit =
      audit_all(stack_, router.db(), {first, second});
  EXPECT_TRUE(audit.ok()) << audit.first_error();
}

TEST_F(RipupTest, PutbackRestoresUntouchedVictims) {
  // Two-track corridor: after ripping, both fit — the victim is put back
  // or re-routed, and everything completes.
  Connection first = make_conn(0, {1, 6}, {11, 6});
  Connection second = make_conn(1, {1, 4}, {11, 8});
  corridor(19, 2, 9, 27);
  Router router(stack_);
  bool ok = router.route_all({first, second});
  EXPECT_TRUE(ok) << router.stats().failed << " failed";
  CheckReport audit =
      audit_all(stack_, router.db(), {first, second});
  EXPECT_TRUE(audit.ok()) << audit.first_error();
}

TEST_F(RipupTest, RipupDisabledFailsFast) {
  Connection first = make_conn(0, {1, 6}, {11, 6});
  Connection second = make_conn(1, {1, 4}, {11, 8});
  corridor(19, 1, 9, 27);
  RouterConfig cfg;
  cfg.enable_ripup = false;
  Router router(stack_, cfg);
  router.route_all({first, second});
  EXPECT_EQ(router.stats().rip_ups, 0);
  EXPECT_EQ(router.stats().failed, 1);
}

TEST_F(RipupTest, PinsAreNeverRipped) {
  // A connection that cannot be routed because pins and obstacles seal it:
  // rip-up finds no victims and the router gives up cleanly.
  Connection c = make_conn(0, {2, 6}, {10, 6});
  Point g = spec_.grid_of_via(c.a);
  for (Coord d : {-1, 1}) {
    stack_.insert_span({0, static_cast<Coord>(g.y + d), {g.x, g.x}},
                       kObstacleConn);
    stack_.insert_span({0, g.y, {g.x + d, g.x + d}}, kObstacleConn);
  }
  Router router(stack_);
  EXPECT_FALSE(router.route_all({c}));
  EXPECT_EQ(router.stats().rip_ups, 0);
  // The pin vias are intact.
  EXPECT_EQ(stack_.conn_at(0, g), kPinConn);
}

TEST(RipupIntegrationTest, CongestedBoardCompletesWithRipups) {
  BoardGenParams p;
  p.name = "dense";
  p.width_in = 7;
  p.height_in = 6;
  p.layers = 4;
  p.target_connections = 800;
  p.locality = 0.6;
  p.seed = 11;
  GeneratedBoard gb = generate_board(p);
  Router router(gb.board->stack(), RouterConfig{});
  bool ok = router.route_all(gb.strung.connections);
  EXPECT_TRUE(ok) << router.stats().failed << " failed";
  EXPECT_GT(router.stats().rip_ups, 0) << "board not congested enough";
  // rip_count bookkeeping matches the stats.
  long rip_events = 0;
  for (const Connection& c : gb.strung.connections) {
    rip_events += router.db().rec(c.id).rip_count;
  }
  EXPECT_EQ(rip_events, router.stats().rip_ups);
  CheckReport audit =
      audit_all(gb.board->stack(), router.db(), gb.strung.connections);
  EXPECT_TRUE(audit.ok()) << audit.first_error();
}

}  // namespace
}  // namespace grr
