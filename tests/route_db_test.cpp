// Tests for the route database: construction, abort, rip-up and put-back
// (paper Secs 4 and 8.3).
#include "route/route_db.hpp"

#include <gtest/gtest.h>

namespace grr {
namespace {

class RouteDBTest : public ::testing::Test {
 protected:
  RouteDBTest() : spec_(11, 9), stack_(spec_, 2), db_(4) {}

  GridSpec spec_;
  LayerStack stack_;
  RouteDB db_;
};

TEST_F(RouteDBTest, BuildCommitAndTraceLinks) {
  db_.begin(0);
  db_.add_via(stack_, 0, {5, 4});
  db_.add_hop(stack_, 0, 0, {{12, {3, 14}}});
  db_.add_hop(stack_, 0, 1, {{15, {13, 20}}});
  db_.commit(0, RouteStrategy::kOneVia);

  const RouteRecord& r = db_.rec(0);
  EXPECT_EQ(r.status, RouteStatus::kRouted);
  EXPECT_EQ(r.strategy, RouteStrategy::kOneVia);
  EXPECT_EQ(r.geom.vias.size(), 1u);
  EXPECT_EQ(r.geom.hops.size(), 2u);
  // 2 via unit segments + 2 trace segments.
  EXPECT_EQ(r.segs.size(), 4u);
  // The trace_next chain mirrors the list.
  for (std::size_t i = 0; i < r.segs.size(); ++i) {
    SegId want = i + 1 < r.segs.size() ? r.segs[i + 1] : kNoSeg;
    EXPECT_EQ(stack_.pool()[r.segs[i]].trace_next, want);
  }
  EXPECT_EQ(db_.total_vias(), 1);
}

TEST_F(RouteDBTest, AbortRemovesEverything) {
  db_.begin(1);
  db_.add_via(stack_, 1, {5, 4});
  db_.add_hop(stack_, 1, 0, {{12, {3, 14}}});
  db_.abort(stack_, 1);
  EXPECT_EQ(stack_.segment_count(), 0u);
  EXPECT_TRUE(stack_.via_free({5, 4}));
  EXPECT_EQ(db_.rec(1).status, RouteStatus::kUnrouted);
  EXPECT_TRUE(db_.rec(1).geom.vias.empty());
}

TEST_F(RouteDBTest, RipKeepsGeometryAndPutbackRestores) {
  db_.begin(0);
  db_.add_via(stack_, 0, {5, 4});
  db_.add_hop(stack_, 0, 0, {{12, {3, 14}}});
  db_.commit(0, RouteStrategy::kOneVia);
  const std::size_t live = stack_.segment_count();

  db_.rip(stack_, 0);
  EXPECT_EQ(stack_.segment_count(), 0u);
  EXPECT_TRUE(stack_.via_free({5, 4}));
  EXPECT_EQ(db_.rec(0).status, RouteStatus::kUnrouted);
  EXPECT_EQ(db_.rec(0).rip_count, 1);
  EXPECT_EQ(db_.rec(0).geom.vias.size(), 1u);  // geometry remembered

  EXPECT_TRUE(db_.try_putback(stack_, 0));
  EXPECT_EQ(db_.rec(0).status, RouteStatus::kRouted);
  EXPECT_EQ(stack_.segment_count(), live);
  EXPECT_FALSE(stack_.via_free({5, 4}));
}

TEST_F(RouteDBTest, PutbackFailsWhenSpaceTaken) {
  db_.begin(0);
  db_.add_hop(stack_, 0, 0, {{12, {3, 14}}});
  db_.commit(0, RouteStrategy::kZeroVia);
  db_.rip(stack_, 0);
  // Another connection takes part of the corridor.
  SegId blocker = stack_.insert_span({0, 12, {10, 10}}, 3);
  EXPECT_FALSE(db_.try_putback(stack_, 0));
  EXPECT_EQ(db_.rec(0).status, RouteStatus::kUnrouted);
  stack_.erase_segment(blocker);
  EXPECT_TRUE(db_.try_putback(stack_, 0));
}

TEST_F(RouteDBTest, PutbackFailsWhenViaSiteTaken) {
  db_.begin(0);
  db_.add_via(stack_, 0, {5, 4});
  db_.commit(0, RouteStrategy::kOneVia);
  db_.rip(stack_, 0);
  auto other = stack_.drill_via({5, 4}, 2);
  EXPECT_FALSE(db_.try_putback(stack_, 0));
  for (SegId s : other) stack_.erase_segment(s);
  EXPECT_TRUE(db_.try_putback(stack_, 0));
}

TEST_F(RouteDBTest, PutbackOnNeverRoutedFails) {
  EXPECT_FALSE(db_.try_putback(stack_, 2));
}

TEST_F(RouteDBTest, PutbackOnRoutedIsNoop) {
  db_.begin(0);
  db_.commit(0, RouteStrategy::kTrivial);
  EXPECT_TRUE(db_.try_putback(stack_, 0));
}

TEST_F(RouteDBTest, AdoptGeometryThenPutback) {
  RouteGeom geom;
  geom.vias.push_back({5, 4});
  geom.hops.push_back({0, {{12, {3, 14}}}});
  db_.adopt_geometry(2, geom, RouteStrategy::kTuned);
  EXPECT_TRUE(db_.try_putback(stack_, 2));
  EXPECT_EQ(db_.rec(2).strategy, RouteStrategy::kTuned);
  EXPECT_FALSE(stack_.via_free({5, 4}));
}

TEST_F(RouteDBTest, LengthMilsCountsSpansAndCrossings) {
  db_.begin(0);
  // Two spans in adjacent channels joined at grid 10: along lengths plus
  // one crossing step.
  db_.add_hop(stack_, 0, 0, {{12, {4, 10}}, {13, {10, 16}}});
  db_.commit(0, RouteStrategy::kZeroVia);
  long want = spec_.mils_between(4, 10) + spec_.mils_between(12, 13) +
              spec_.mils_between(10, 16);
  EXPECT_EQ(db_.length_mils(spec_, stack_, 0), want);
}

}  // namespace
}  // namespace grr
