// Tests for the route database and its mutation choke point: construction,
// rollback, rip-up and put-back (paper Secs 4 and 8.3). All mutation goes
// through RouteTransaction — RouteDB's raw mutators are private.
#include "route/route_db.hpp"

#include <gtest/gtest.h>

#include "route/transaction.hpp"

namespace grr {
namespace {

class RouteDBTest : public ::testing::Test {
 protected:
  RouteDBTest() : spec_(11, 9), stack_(spec_, 2), db_(4) {}

  GridSpec spec_;
  LayerStack stack_;
  RouteDB db_;
  TxnCounters counters_;
  MutationJournal journal_;
};

TEST_F(RouteDBTest, BuildCommitAndTraceLinks) {
  RouteTransaction txn(stack_, db_, 0, &counters_);
  txn.add_via({5, 4});
  txn.add_hop(0, {{12, {3, 14}}});
  txn.add_hop(1, {{15, {13, 20}}});
  txn.commit(RouteStrategy::kOneVia);

  const RouteRecord& r = db_.rec(0);
  EXPECT_EQ(r.status, RouteStatus::kRouted);
  EXPECT_EQ(r.strategy, RouteStrategy::kOneVia);
  EXPECT_EQ(r.geom.vias.size(), 1u);
  EXPECT_EQ(r.geom.hops.size(), 2u);
  // 2 via unit segments + 2 trace segments.
  EXPECT_EQ(r.segs.size(), 4u);
  // The trace_next chain mirrors the list.
  for (std::size_t i = 0; i < r.segs.size(); ++i) {
    SegId want = i + 1 < r.segs.size() ? r.segs[i + 1] : kNoSeg;
    EXPECT_EQ(stack_.pool()[r.segs[i]].trace_next, want);
  }
  EXPECT_EQ(db_.total_vias(), 1);
  EXPECT_EQ(counters_.begins, 1);
  EXPECT_EQ(counters_.vias, 1);
  EXPECT_EQ(counters_.hops, 2);
  EXPECT_EQ(counters_.commits, 1);
  EXPECT_EQ(counters_.rollbacks, 0);
}

TEST_F(RouteDBTest, RollbackRemovesEverything) {
  {
    RouteTransaction txn(stack_, db_, 1, &counters_);
    txn.add_via({5, 4});
    txn.add_hop(0, {{12, {3, 14}}});
    // Dropped uncommitted: the destructor rolls back.
  }
  EXPECT_EQ(stack_.segment_count(), 0u);
  EXPECT_TRUE(stack_.via_free({5, 4}));
  EXPECT_EQ(db_.rec(1).status, RouteStatus::kUnrouted);
  EXPECT_TRUE(db_.rec(1).geom.vias.empty());
  EXPECT_EQ(counters_.rollbacks, 1);
}

TEST_F(RouteDBTest, ExplicitRollbackLeavesTransactionOpen) {
  RouteTransaction txn(stack_, db_, 1, &counters_);
  txn.add_via({5, 4});
  txn.rollback();
  EXPECT_EQ(stack_.segment_count(), 0u);
  // The transaction can place again after a rollback (the one-via
  // candidate loop relies on this).
  txn.add_via({6, 4});
  txn.commit(RouteStrategy::kOneVia);
  EXPECT_EQ(db_.rec(1).status, RouteStatus::kRouted);
  EXPECT_FALSE(stack_.via_free({6, 4}));
  EXPECT_TRUE(stack_.via_free({5, 4}));
}

TEST_F(RouteDBTest, RipKeepsGeometryAndPutbackRestores) {
  {
    RouteTransaction txn(stack_, db_, 0, &counters_);
    txn.add_via({5, 4});
    txn.add_hop(0, {{12, {3, 14}}});
    txn.commit(RouteStrategy::kOneVia);
  }
  const std::size_t live = stack_.segment_count();

  RouteTransaction::rip_out(stack_, db_, 0, &counters_);
  EXPECT_EQ(stack_.segment_count(), 0u);
  EXPECT_TRUE(stack_.via_free({5, 4}));
  EXPECT_EQ(db_.rec(0).status, RouteStatus::kUnrouted);
  EXPECT_EQ(db_.rec(0).rip_count, 1);
  EXPECT_EQ(db_.rec(0).geom.vias.size(), 1u);  // geometry remembered
  EXPECT_EQ(counters_.rips, 1);

  EXPECT_TRUE(RouteTransaction::putback(stack_, db_, 0, &counters_));
  EXPECT_EQ(db_.rec(0).status, RouteStatus::kRouted);
  EXPECT_EQ(stack_.segment_count(), live);
  EXPECT_FALSE(stack_.via_free({5, 4}));
  EXPECT_EQ(counters_.putbacks, 1);
}

TEST_F(RouteDBTest, PutbackFailsWhenSpaceTaken) {
  {
    RouteTransaction txn(stack_, db_, 0, &counters_);
    txn.add_hop(0, {{12, {3, 14}}});
    txn.commit(RouteStrategy::kZeroVia);
  }
  RouteTransaction::rip_out(stack_, db_, 0, &counters_);
  // Another connection takes part of the corridor.
  SegId blocker = stack_.insert_span({0, 12, {10, 10}}, 3);
  EXPECT_FALSE(RouteTransaction::putback(stack_, db_, 0, &counters_));
  EXPECT_EQ(db_.rec(0).status, RouteStatus::kUnrouted);
  EXPECT_EQ(counters_.putback_failures, 1);
  stack_.erase_segment(blocker);
  EXPECT_TRUE(RouteTransaction::putback(stack_, db_, 0, &counters_));
}

TEST_F(RouteDBTest, PutbackFailsWhenViaSiteTaken) {
  {
    RouteTransaction txn(stack_, db_, 0);
    txn.add_via({5, 4});
    txn.commit(RouteStrategy::kOneVia);
  }
  RouteTransaction::rip_out(stack_, db_, 0);
  auto other = stack_.drill_via({5, 4}, 2);
  EXPECT_FALSE(RouteTransaction::putback(stack_, db_, 0));
  for (SegId s : other) stack_.erase_segment(s);
  EXPECT_TRUE(RouteTransaction::putback(stack_, db_, 0));
}

TEST_F(RouteDBTest, PutbackOnNeverRoutedFails) {
  EXPECT_FALSE(RouteTransaction::putback(stack_, db_, 2));
}

TEST_F(RouteDBTest, PutbackOnRoutedIsNoop) {
  {
    RouteTransaction txn(stack_, db_, 0);
    txn.commit(RouteStrategy::kTrivial);
  }
  EXPECT_TRUE(RouteTransaction::putback(stack_, db_, 0));
}

TEST_F(RouteDBTest, AdoptGeometryThenPutback) {
  RouteGeom geom;
  geom.vias.push_back({5, 4});
  geom.hops.push_back({0, {{12, {3, 14}}}});
  RouteTransaction::adopt_geometry(db_, 2, geom, RouteStrategy::kTuned);
  EXPECT_TRUE(RouteTransaction::putback(stack_, db_, 2));
  EXPECT_EQ(db_.rec(2).strategy, RouteStrategy::kTuned);
  EXPECT_FALSE(stack_.via_free({5, 4}));
}

TEST_F(RouteDBTest, LengthMilsCountsSpansAndCrossings) {
  {
    RouteTransaction txn(stack_, db_, 0);
    // Two spans in adjacent channels joined at grid 10: along lengths plus
    // one crossing step.
    txn.add_hop(0, {{12, {4, 10}}, {13, {10, 16}}});
    txn.commit(RouteStrategy::kZeroVia);
  }
  long want = spec_.mils_between(4, 10) + spec_.mils_between(12, 13) +
              spec_.mils_between(10, 16);
  EXPECT_EQ(db_.length_mils(spec_, stack_, 0), want);
}

TEST_F(RouteDBTest, JournalRecordsTouchedRects) {
  {
    RouteTransaction txn(stack_, db_, 0, &counters_, &journal_);
    txn.add_via({5, 4});               // one grid point on every layer
    txn.add_hop(0, {{12, {3, 14}}});   // layer 0 is horizontal: y=12
    txn.commit(RouteStrategy::kOneVia);
  }
  ASSERT_EQ(journal_.touched.size(), 2u);
  const Point g = spec_.grid_of_via({5, 4});
  EXPECT_EQ(journal_.touched[0], (Rect{{g.x, g.x}, {g.y, g.y}}));
  EXPECT_EQ(journal_.touched[1], (Rect{{3, 14}, {12, 12}}));

  // A rip journals the removed metal too: freed space invalidates
  // speculative plans just as new metal does.
  journal_.clear();
  RouteTransaction::rip_out(stack_, db_, 0, &counters_, &journal_);
  EXPECT_EQ(journal_.touched.size(), 3u);  // 2 via units + 1 span
}

}  // namespace
}  // namespace grr
