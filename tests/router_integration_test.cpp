// Whole-board integration tests: generate boards, route them, audit every
// invariant, and check the paper's qualitative claims (Secs 8.4 and 9).
#include <gtest/gtest.h>

#include "check/drc.hpp"
#include "route/audit.hpp"
#include "route/batch_router.hpp"
#include "route/router.hpp"
#include "workload/suite.hpp"

namespace grr {
namespace {

GeneratedBoard small_board(int layers, double locality, int conns,
                           std::uint32_t seed = 5) {
  BoardGenParams p;
  p.name = "it";
  p.width_in = 6;
  p.height_in = 5;
  p.layers = layers;
  p.target_connections = conns;
  p.locality = locality;
  p.seed = seed;
  return generate_board(p);
}

TEST(RouterIntegrationTest, RoutesModerateBoardCompletely) {
  GeneratedBoard gb = small_board(4, 0.3, 500);
  Router router(gb.board->stack(), RouterConfig{});
  ASSERT_TRUE(router.route_all(gb.strung.connections))
      << router.stats().failed << " of " << router.stats().total
      << " failed";
  CheckReport audit =
      audit_all(gb.board->stack(), router.db(), gb.strung.connections);
  EXPECT_TRUE(audit.ok()) << audit.first_error();
  EXPECT_GT(audit.connections_checked, 0u);
  // The geometric DRC agrees: the routed board is manufacturable as-is.
  CheckReport drc =
      drc_check(*gb.board, gb.strung.connections, router.db());
  EXPECT_TRUE(drc.findings.empty())
      << format_finding(drc.findings.front());
}

TEST(RouterIntegrationTest, StatsAreConsistent) {
  GeneratedBoard gb = small_board(4, 0.3, 500);
  Router router(gb.board->stack(), RouterConfig{});
  router.route_all(gb.strung.connections);
  const RouterStats& st = router.stats();
  EXPECT_EQ(st.total, static_cast<int>(gb.strung.connections.size()));
  EXPECT_EQ(st.routed + st.failed, st.total);
  int by_strat = 0;
  for (int i = 0; i < kNumRouteStrategies; ++i) by_strat += st.by_strategy[i];
  EXPECT_EQ(by_strat, st.routed);
  EXPECT_EQ(st.vias_added, router.db().total_vias());
  EXPECT_GE(st.passes, 1);
}

TEST(RouterIntegrationTest, MostConnectionsRouteOptimally) {
  // Sec 8.1: "it is essential that about 90% of the connections be routed
  // with these optimal strategies" — at moderate density ours are.
  GeneratedBoard gb = small_board(4, 0.25, 400);
  Router router(gb.board->stack(), RouterConfig{});
  ASSERT_TRUE(router.route_all(gb.strung.connections));
  EXPECT_GE(router.stats().pct_optimal(), 80.0);
}

TEST(RouterIntegrationTest, ViasPerConnectionBelowOne) {
  // Table 1: the vias column is below 1 for all completed boards.
  GeneratedBoard gb = small_board(4, 0.25, 400);
  Router router(gb.board->stack(), RouterConfig{});
  ASSERT_TRUE(router.route_all(gb.strung.connections));
  EXPECT_LT(router.stats().vias_per_conn(), 1.0);
}

TEST(RouterIntegrationTest, TooFewLayersFailsGracefully) {
  // The same problem on 2 layers fails (Table 1's first row) but leaves a
  // consistent board behind.
  GeneratedBoard gb = small_board(2, 0.6, 600);
  Router router(gb.board->stack(), RouterConfig{});
  bool ok = router.route_all(gb.strung.connections);
  EXPECT_FALSE(ok);
  EXPECT_GT(router.stats().failed, 0);
  EXPECT_LE(router.stats().passes, router.config().max_passes);
  CheckReport audit =
      audit_all(gb.board->stack(), router.db(), gb.strung.connections);
  EXPECT_TRUE(audit.ok()) << audit.first_error();
}

TEST(RouterIntegrationTest, MoreLayersSolveTheSameProblem) {
  GeneratedBoard hard = small_board(2, 0.6, 600);
  Router r2(hard.board->stack(), RouterConfig{});
  bool ok2 = r2.route_all(hard.strung.connections);

  GeneratedBoard easy = small_board(4, 0.6, 600);
  Router r4(easy.board->stack(), RouterConfig{});
  bool ok4 = r4.route_all(easy.strung.connections);

  EXPECT_FALSE(ok2);
  EXPECT_TRUE(ok4) << r4.stats().failed << " failed";
}

TEST(RouterIntegrationTest, DeterministicAcrossRuns) {
  GeneratedBoard a = small_board(4, 0.3, 300);
  GeneratedBoard b = small_board(4, 0.3, 300);
  Router ra(a.board->stack(), RouterConfig{});
  Router rb(b.board->stack(), RouterConfig{});
  ra.route_all(a.strung.connections);
  rb.route_all(b.strung.connections);
  EXPECT_EQ(ra.stats().routed, rb.stats().routed);
  EXPECT_EQ(ra.stats().rip_ups, rb.stats().rip_ups);
  EXPECT_EQ(ra.stats().vias_added, rb.stats().vias_added);
  EXPECT_EQ(ra.stats().lee_expansions, rb.stats().lee_expansions);
}

TEST(RouterIntegrationTest, DenserBoardsUseMoreLee) {
  // Sec 9: "in denser boards with lower free space ratios, the percentage
  // is higher, since congestion prevents optimal solutions".
  GeneratedBoard sparse = small_board(4, 0.15, 250);
  GeneratedBoard dense = small_board(4, 0.5, 550);
  Router rs(sparse.board->stack(), RouterConfig{});
  Router rd(dense.board->stack(), RouterConfig{});
  rs.route_all(sparse.strung.connections);
  rd.route_all(dense.strung.connections);
  EXPECT_LT(rs.stats().pct_lee(), rd.stats().pct_lee());
}

TEST(RouterIntegrationTest, UnsortedOrderStillRoutesAndAudits) {
  GeneratedBoard gb = small_board(4, 0.3, 400);
  RouterConfig cfg;
  cfg.sort_connections = false;
  Router router(gb.board->stack(), cfg);
  // The list arrives in stringer order; Sec 6's sort is an optimization,
  // not a correctness requirement.
  ASSERT_TRUE(router.route_all(gb.strung.connections));
  CheckReport audit =
      audit_all(gb.board->stack(), router.db(), gb.strung.connections);
  EXPECT_TRUE(audit.ok()) << audit.first_error();
}

TEST(RouterIntegrationTest, MaxPassesBoundsTheLoop) {
  GeneratedBoard gb = small_board(2, 0.6, 600);  // over capacity
  RouterConfig cfg;
  cfg.max_passes = 1;
  Router router(gb.board->stack(), cfg);
  router.route_all(gb.strung.connections);
  EXPECT_EQ(router.stats().passes, 1);
}

TEST(RouterIntegrationTest, ParallelRoutedBoardPassesAuditAndDrc) {
  // The batch router's output goes through the same static-analysis
  // gauntlet as the serial router's: every invariant checker and the
  // geometric DRC must come back clean on a parallel-routed board.
  GeneratedBoard gb = small_board(4, 0.3, 500);
  RouterConfig cfg;
  cfg.threads = 4;
  BatchRouter router(gb.board->stack(), cfg);
  ASSERT_TRUE(router.route_all(gb.strung.connections))
      << router.stats().failed << " of " << router.stats().total
      << " failed";
  EXPECT_GT(router.batch_stats().installed, 0);
  CheckReport audit =
      audit_all(gb.board->stack(), router.db(), gb.strung.connections);
  EXPECT_TRUE(audit.ok()) << audit.first_error();
  CheckReport drc =
      drc_check(*gb.board, gb.strung.connections, router.db());
  EXPECT_TRUE(drc.findings.empty())
      << format_finding(drc.findings.front());
}

TEST(RouterIntegrationTest, ScaledTable1RowRoutes) {
  // A quarter-scale coproc board routes completely and audits clean.
  GeneratedBoard gb = generate_board(table1_board("coproc-6L", 0.5));
  Router router(gb.board->stack(), RouterConfig{});
  ASSERT_TRUE(router.route_all(gb.strung.connections));
  CheckReport audit =
      audit_all(gb.board->stack(), router.db(), gb.strung.connections);
  EXPECT_TRUE(audit.ok()) << audit.first_error();
  CheckReport drc =
      drc_check(*gb.board, gb.strung.connections, router.db());
  EXPECT_TRUE(drc.findings.empty())
      << format_finding(drc.findings.front());
}

}  // namespace
}  // namespace grr
