// ShardMap invariants the region-parallel commit phase depends on: the
// cells tile the extent exactly, shard_of bins only wholly-contained
// rectangles, and the wave schedule is a Latin square (each shard in
// exactly one wave; within a wave all rows and all columns distinct).
#include "route/shard_map.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace grr {
namespace {

TEST(ShardMap, CellsTileExtentExactly) {
  const Rect extent{{0, 199}, {0, 99}};
  for (int target : {2, 4, 8, 16}) {
    ShardMap smap(extent, target);
    ASSERT_GE(smap.count(), 1);
    EXPECT_LE(smap.rows(), smap.cols());

    // Every point of the extent lies in exactly one cell.
    long long cell_area = 0;
    for (int s = 0; s < smap.count(); ++s) {
      const Rect c = smap.cell(s);
      EXPECT_FALSE(c.empty());
      EXPECT_TRUE(extent.contains(c));
      cell_area += c.area();
      for (int t = s + 1; t < smap.count(); ++t) {
        EXPECT_FALSE(c.overlaps(smap.cell(t)))
            << "cells " << s << " and " << t << " overlap at target "
            << target;
      }
    }
    EXPECT_EQ(cell_area, extent.area()) << "target " << target;
  }
}

TEST(ShardMap, DegenerateInputsCollapseToOneCell) {
  const Rect extent{{0, 99}, {0, 99}};
  for (int target : {0, 1}) {
    ShardMap smap(extent, target);
    EXPECT_EQ(smap.count(), 1);
    EXPECT_EQ(smap.cell(0), extent);
    EXPECT_EQ(smap.shard_of(extent), 0);
  }
  // A sliver too thin to cut still yields a working single-cell map.
  ShardMap thin(Rect{{0, 2}, {0, 2}}, 8);
  EXPECT_EQ(thin.count(), 1);
  EXPECT_EQ(thin.shard_of(Rect{{1, 1}, {1, 1}}), 0);
}

TEST(ShardMap, ShardOfBinsContainedRectsAndCrossesBoundaries) {
  const Rect extent{{0, 199}, {0, 199}};
  ShardMap smap(extent, 8);
  ASSERT_GE(smap.count(), 2);

  // A rect strictly inside a cell maps to that cell.
  for (int s = 0; s < smap.count(); ++s) {
    const Rect c = smap.cell(s);
    const Rect inner{{c.x.lo, c.x.lo}, {c.y.lo, c.y.lo}};
    EXPECT_EQ(smap.shard_of(inner), s);
    EXPECT_EQ(smap.shard_of(c), s) << "whole cell is contained in itself";
  }

  // A rect spanning two horizontally adjacent cells is cross-shard.
  const Rect c0 = smap.cell(0);
  if (smap.cols() > 1) {
    const Rect spanning{{c0.x.hi, c0.x.hi + 1}, {c0.y.lo, c0.y.lo}};
    EXPECT_EQ(smap.shard_of(spanning), ShardMap::kCross);
  }
  if (smap.rows() > 1) {
    const Rect spanning{{c0.x.lo, c0.x.lo}, {c0.y.hi, c0.y.hi + 1}};
    EXPECT_EQ(smap.shard_of(spanning), ShardMap::kCross);
  }

  // Empty and out-of-extent rects are cross-shard (serial install path).
  EXPECT_EQ(smap.shard_of(Rect{}), ShardMap::kCross);
  EXPECT_EQ(smap.shard_of(Rect{{-5, -1}, {0, 0}}), ShardMap::kCross);
  EXPECT_EQ(smap.shard_of(Rect{{0, 0}, {199, 205}}), ShardMap::kCross);
}

TEST(ShardMap, BboxOfSkipsEmptiesAndHullsTheRest) {
  EXPECT_TRUE(ShardMap::bbox_of({}).empty());
  EXPECT_TRUE(ShardMap::bbox_of({Rect{}}).empty());

  const std::vector<Rect> rects{{{2, 5}, {10, 12}},
                                Rect{},  // empty member is ignored
                                {{0, 1}, {11, 20}}};
  const Rect hull = ShardMap::bbox_of(rects);
  EXPECT_EQ(hull, (Rect{{0, 5}, {10, 20}}));
}

TEST(ShardMap, WaveScheduleIsALatinSquare) {
  const Rect extent{{0, 399}, {0, 299}};
  for (int target : {2, 4, 8, 16}) {
    ShardMap smap(extent, target);
    std::set<int> seen;
    std::vector<int> wave;
    for (int w = 0; w < smap.num_waves(); ++w) {
      smap.wave_shards(w, &wave);
      // One cell per row, all rows and all columns pairwise distinct.
      ASSERT_EQ(static_cast<int>(wave.size()), smap.rows());
      std::set<int> rows, cols;
      for (int s : wave) {
        ASSERT_GE(s, 0);
        ASSERT_LT(s, smap.count());
        EXPECT_TRUE(rows.insert(smap.row_of(s)).second);
        EXPECT_TRUE(cols.insert(smap.col_of(s)).second);
        EXPECT_TRUE(seen.insert(s).second)
            << "shard " << s << " scheduled twice (target " << target << ")";
      }
    }
    // Across all waves, every shard is scheduled exactly once.
    EXPECT_EQ(static_cast<int>(seen.size()), smap.count());
  }
}

TEST(ShardMap, WaveShardsClearsOutputVector) {
  ShardMap smap(Rect{{0, 99}, {0, 99}}, 4);
  std::vector<int> wave{123, 456};
  smap.wave_shards(0, &wave);
  for (int s : wave) EXPECT_LT(s, smap.count());
}

}  // namespace
}  // namespace grr
