// Tests for connection sorting (paper Sec 6): sort by straightness
// min(dx,dy), then by length max(dx,dy) — an approximation of ordering by
// the number of minimal Manhattan paths C(dx+dy, dx).
#include "route/sorting.hpp"

#include <gtest/gtest.h>

#include <random>

namespace grr {
namespace {

Connection conn(ConnId id, Coord dx, Coord dy) {
  Connection c;
  c.id = id;
  c.a = {10, 10};
  c.b = {10 + dx, 10 + dy};
  return c;
}

TEST(SortingTest, StraightBeforeDiagonal) {
  ConnectionList l = {conn(0, 5, 5), conn(1, 20, 0), conn(2, 3, 1)};
  sort_connections(l);
  // Straight 20-long first key is min=0; then min=1; then min=5.
  EXPECT_EQ(l[0].id, 1);
  EXPECT_EQ(l[1].id, 2);
  EXPECT_EQ(l[2].id, 0);
}

TEST(SortingTest, LengthBreaksTiesWithinStraightness) {
  ConnectionList l = {conn(0, 12, 0), conn(1, 4, 0), conn(2, 0, 8)};
  sort_connections(l);
  EXPECT_EQ(l[0].id, 1);
  EXPECT_EQ(l[1].id, 2);
  EXPECT_EQ(l[2].id, 0);
}

TEST(SortingTest, DeterministicTiebreakById) {
  ConnectionList l = {conn(5, 3, 7), conn(2, 7, 3), conn(9, 3, 7)};
  sort_connections(l);
  EXPECT_EQ(l[0].id, 2);
  EXPECT_EQ(l[1].id, 5);
  EXPECT_EQ(l[2].id, 9);
}

TEST(SortingTest, MinimalPathCountExact) {
  EXPECT_EQ(minimal_path_count(0, 10), 1);   // straight: one path
  EXPECT_EQ(minimal_path_count(1, 1), 2);
  EXPECT_EQ(minimal_path_count(2, 2), 6);    // C(4,2)
  EXPECT_EQ(minimal_path_count(3, 4), 35);   // C(7,3)
  EXPECT_EQ(minimal_path_count(10, 10), 184756);
}

TEST(SortingTest, MinimalPathCountSaturates) {
  EXPECT_EQ(minimal_path_count(200, 200),
            std::numeric_limits<long long>::max());
}

// Property: the key ordering never ranks a connection with strictly more
// minimal paths (and no shorter extent) ahead of one with fewer — i.e. the
// approximation agrees with the exact count whenever the exact counts
// differ in the same direction as both keys.
TEST(SortingTest, KeyApproximatesPathCountOrdering) {
  std::mt19937 rng(42);
  std::uniform_int_distribution<Coord> d(0, 20);
  for (int trial = 0; trial < 2000; ++trial) {
    Coord dx1 = d(rng), dy1 = d(rng), dx2 = d(rng), dy2 = d(rng);
    Connection c1 = conn(1, dx1, dy1), c2 = conn(2, dx2, dy2);
    if (sort_key(c1) < sort_key(c2)) {
      long long p1 = minimal_path_count(dx1, dy1);
      long long p2 = minimal_path_count(dx2, dy2);
      // The earlier connection never has MORE minimal paths unless it is
      // also longer overall (the known approximation error case).
      if (dx1 + dy1 <= dx2 + dy2) {
        EXPECT_LE(p1, p2) << dx1 << ',' << dy1 << " vs " << dx2 << ','
                          << dy2;
      }
    }
  }
}

}  // namespace
}  // namespace grr
