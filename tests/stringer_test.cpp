// Tests for the stringer (paper Sec 3).
#include "stringer/stringer.hpp"

#include <gtest/gtest.h>

namespace grr {
namespace {

class StringerTest : public ::testing::Test {
 protected:
  StringerTest() : spec_(41, 31), board_(spec_, 2) {
    fp_sip_ = board_.add_footprint(Footprint::sip(4));
  }

  /// A 1-pin "part" at a via site, so tests can place pins anywhere.
  NetPin pin_at(Coord vx, Coord vy) {
    PartId p = board_.add_part("P", fp_sip_, {vx, vy});
    return {p, 0, PinRole::kInput};
  }

  GridSpec spec_;
  Board board_;
  int fp_sip_;
};

TEST_F(StringerTest, GreedyChainsNearestFirst) {
  // Output at x=2; inputs at x=10, x=5, x=20 (same row). The greedy chain
  // must visit them in nearness order: 2 -> 5 -> 10 -> 20.
  Net net;
  net.klass = SignalClass::kTTL;
  NetPin out = pin_at(2, 2);
  out.role = PinRole::kOutput;
  net.pins.push_back(out);
  net.pins.push_back(pin_at(10, 2));
  net.pins.push_back(pin_at(5, 2));
  net.pins.push_back(pin_at(20, 2));
  board_.netlist().add(std::move(net));

  StringingResult r = string_nets(board_);
  ASSERT_EQ(r.connections.size(), 3u);
  EXPECT_EQ(r.connections[0].a, (Point{2, 2}));
  EXPECT_EQ(r.connections[0].b, (Point{5, 2}));
  EXPECT_EQ(r.connections[1].b, (Point{10, 2}));
  EXPECT_EQ(r.connections[2].b, (Point{20, 2}));
  EXPECT_EQ(r.total_manhattan, 18);
}

TEST_F(StringerTest, EclNetGetsNearestFreeTerminator) {
  PartId r1 = board_.add_part("R1", fp_sip_, {30, 2});
  PartId r2 = board_.add_part("R2", fp_sip_, {30, 20});
  for (int i = 0; i < 4; ++i) {
    board_.add_terminator(r1, i);
    board_.add_terminator(r2, i);
  }
  Net net;
  net.klass = SignalClass::kECL;
  net.needs_terminator = true;
  NetPin out = pin_at(2, 2);
  out.role = PinRole::kOutput;
  net.pins.push_back(out);
  net.pins.push_back(pin_at(10, 2));
  board_.netlist().add(std::move(net));

  StringingResult r = string_nets(board_);
  ASSERT_EQ(r.connections.size(), 2u);
  // The chain tail (10,2) is nearest to R1's pin 0 at (30,2).
  EXPECT_EQ(r.connections[1].b, (Point{30, 2}));
  EXPECT_EQ(r.terminators[0].part, r1);
}

TEST_F(StringerTest, TerminatorsAreNotReused) {
  PartId r1 = board_.add_part("R1", fp_sip_, {30, 2});
  board_.add_terminator(r1, 0);
  board_.add_terminator(r1, 1);
  for (int n = 0; n < 2; ++n) {
    Net net;
    net.klass = SignalClass::kECL;
    net.needs_terminator = true;
    NetPin out = pin_at(2, 2 + 10 * n);
    out.role = PinRole::kOutput;
    net.pins.push_back(out);
    board_.netlist().add(std::move(net));
  }
  StringingResult r = string_nets(board_);
  ASSERT_EQ(r.connections.size(), 2u);
  EXPECT_NE(r.connections[0].b, r.connections[1].b);
}

TEST_F(StringerTest, OutputsPrecedeInputs) {
  // Two outputs and two inputs; outputs must come first in the chain even
  // when an input is nearer.
  Net net;
  net.klass = SignalClass::kECL;
  NetPin o1 = pin_at(2, 2);
  o1.role = PinRole::kOutput;
  NetPin o2 = pin_at(20, 2);
  o2.role = PinRole::kOutput;
  net.pins.push_back(o1);
  net.pins.push_back(o2);
  net.pins.push_back(pin_at(4, 2));   // input very near o1
  net.pins.push_back(pin_at(24, 2));  // input near o2
  board_.netlist().add(std::move(net));

  StringingResult r = string_nets(board_);
  ASSERT_EQ(r.connections.size(), 3u);
  // First hop must be output -> output, whichever output starts. (Starting
  // at o2 gives the shorter chain: 20 -> 2 -> 4 -> 24.)
  EXPECT_EQ(r.connections[0].a, (Point{20, 2}));
  EXPECT_EQ(r.connections[0].b, (Point{2, 2}));
  EXPECT_EQ(r.connections[1].b, (Point{4, 2}));
}

TEST_F(StringerTest, BestStartingPinWins) {
  // TTL net, no outputs: every pin is a legal start; the shortest chain
  // starts from an end of the row, not the middle.
  Net net;
  net.klass = SignalClass::kTTL;
  net.pins.push_back(pin_at(10, 2));
  net.pins.push_back(pin_at(2, 2));
  net.pins.push_back(pin_at(20, 2));
  board_.netlist().add(std::move(net));
  StringingResult r = string_nets(board_);
  EXPECT_EQ(r.total_manhattan, 18);  // 2 -> 10 -> 20
}

TEST_F(StringerTest, RandomStringingIsLongerOnAverage) {
  // Build a handful of spread-out multi-pin nets; the paper reports a 25x
  // run-time difference from stringing quality, driven by chain length.
  int idx = 0;
  for (int n = 0; n < 10; ++n) {
    Net net;
    net.klass = SignalClass::kTTL;
    for (int p = 0; p < 5; ++p, ++idx) {
      NetPin np = pin_at(1 + (idx % 20) * 2,
                         1 + (idx / 20) * 8 + ((idx * 7) % 3));
      np.role = p == 0 ? PinRole::kOutput : PinRole::kInput;
      net.pins.push_back(np);
    }
    board_.netlist().add(std::move(net));
  }
  long greedy =
      string_nets(board_, StringingMethod::kGreedy).total_manhattan;
  long random =
      string_nets(board_, StringingMethod::kRandom, 3).total_manhattan;
  EXPECT_LT(greedy, random);
}

TEST_F(StringerTest, SpanningTreeBeatsChainOnStarNets) {
  // A star: center pin plus satellites. A chain must zig-zag through the
  // satellites; the tree connects each directly to the center.
  Net net;
  net.klass = SignalClass::kTTL;
  net.pins.push_back(pin_at(20, 15));  // center
  net.pins.push_back(pin_at(20, 5));
  net.pins.push_back(pin_at(20, 25));
  net.pins.push_back(pin_at(10, 15));
  net.pins.push_back(pin_at(30, 15));
  board_.netlist().add(std::move(net));

  long chain =
      string_nets(board_, StringingMethod::kGreedy).total_manhattan;
  StringingResult tree =
      string_nets(board_, StringingMethod::kSpanningTree);
  EXPECT_LT(tree.total_manhattan, chain);
  EXPECT_EQ(tree.total_manhattan, 40);  // four direct spokes
  EXPECT_EQ(tree.connections.size(), 4u);
}

TEST_F(StringerTest, SpanningTreeNeverLongerThanChain) {
  int idx = 0;
  for (int n = 0; n < 8; ++n) {
    Net net;
    net.klass = SignalClass::kTTL;
    for (int p = 0; p < 4 + n % 3; ++p, ++idx) {
      net.pins.push_back(pin_at(1 + (idx % 19) * 2,
                                1 + (idx / 19) * 9 + ((idx * 5) % 4)));
    }
    board_.netlist().add(std::move(net));
  }
  long chain =
      string_nets(board_, StringingMethod::kGreedy).total_manhattan;
  long tree =
      string_nets(board_, StringingMethod::kSpanningTree).total_manhattan;
  EXPECT_LE(tree, chain);
}

TEST_F(StringerTest, SpanningTreeKeepsEclAsChains) {
  PartId r1 = board_.add_part("R1", fp_sip_, {38, 2});
  board_.add_terminator(r1, 0);
  Net net;
  net.klass = SignalClass::kECL;
  net.needs_terminator = true;
  NetPin out = pin_at(2, 2);
  out.role = PinRole::kOutput;
  net.pins.push_back(out);
  net.pins.push_back(pin_at(10, 2));
  board_.netlist().add(std::move(net));
  StringingResult r = string_nets(board_, StringingMethod::kSpanningTree);
  // Chain of 2 pins + terminator = 2 connections ending at the resistor.
  ASSERT_EQ(r.connections.size(), 2u);
  EXPECT_EQ(r.connections[1].b, (Point{38, 2}));
}

TEST_F(StringerTest, ConnectionMetadata) {
  Net net;
  net.klass = SignalClass::kTTL;
  NetPin out = pin_at(2, 2);
  out.role = PinRole::kOutput;
  net.pins.push_back(out);
  net.pins.push_back(pin_at(6, 2));
  board_.netlist().add(std::move(net));
  StringingResult r = string_nets(board_);
  ASSERT_EQ(r.connections.size(), 1u);
  EXPECT_EQ(r.connections[0].id, 0);
  EXPECT_EQ(r.connections[0].net, 0);
  EXPECT_EQ(r.connections[0].klass, SignalClass::kTTL);
}

TEST_F(StringerTest, EmptyAndSinglePinNets) {
  board_.netlist().add(Net{});  // empty net: no connections
  Net one;
  one.klass = SignalClass::kTTL;
  one.pins.push_back(pin_at(5, 5));
  board_.netlist().add(std::move(one));
  StringingResult r = string_nets(board_);
  EXPECT_TRUE(r.connections.empty());
}

}  // namespace
}  // namespace grr
