// Regression net over the Table 1 suite at reduced scale: every board
// generates, routes and audits; the relative difficulty ordering that the
// full-scale bench reproduces must already be visible.
#include <gtest/gtest.h>

#include "check/drc.hpp"
#include "route/audit.hpp"
#include "route/batch_router.hpp"
#include "route/router.hpp"
#include "workload/suite.hpp"

namespace grr {
namespace {

class SuiteRegression
    : public ::testing::TestWithParam<BoardGenParams> {};

TEST_P(SuiteRegression, GeneratesRoutesAndAudits) {
  GeneratedBoard gb = generate_board(GetParam());
  ASSERT_NE(gb.board, nullptr);
  EXPECT_GT(gb.strung.connections.size(), 10u);

  Router router(gb.board->stack(), RouterConfig{});
  bool ok = router.route_all(gb.strung.connections);
  // At scale 0.4 the demand shrinks linearly: every board completes —
  // except the over-capacity 2-layer kdj11, which stays marginal at any
  // scale (that is Table 1's point).
  if (GetParam().layers == 2) {
    EXPECT_GE(router.stats().routed, router.stats().total * 95 / 100);
  } else {
    EXPECT_TRUE(ok) << GetParam().name << ": " << router.stats().failed
                    << " failed";
  }
  CheckReport audit =
      audit_all(gb.board->stack(), router.db(), gb.strung.connections);
  EXPECT_TRUE(audit.ok()) << audit.first_error();
  // Every suite board is DRC-clean: what was routed is geometrically
  // manufacturable (opens are only demanded of completed boards).
  DrcOptions opts;
  opts.opens = ok;
  CheckReport drc =
      drc_check(*gb.board, gb.strung.connections, router.db(), opts);
  EXPECT_TRUE(drc.findings.empty())
      << GetParam().name << ": " << format_finding(drc.findings.front());
  // Table 1's vias-per-connection stays below 1 on completed boards.
  if (ok) {
    EXPECT_LT(router.stats().vias_per_conn(), 1.0);
  }
}

class SuiteDeterminism
    : public ::testing::TestWithParam<BoardGenParams> {};

TEST_P(SuiteDeterminism, ParallelMatchesSerialAndPassesDrc) {
  // The batch router's contract over the whole Table 1 suite: threads=4
  // produces the identical routed set and discrete statistics as
  // threads=1, and the parallel-routed board is DRC-clean.
  GeneratedBoard one = generate_board(GetParam());
  GeneratedBoard four = generate_board(GetParam());

  RouterConfig c1;
  c1.threads = 1;
  BatchRouter b1(one.board->stack(), c1);
  bool ok1 = b1.route_all(one.strung.connections);

  RouterConfig c4;
  c4.threads = 4;
  BatchRouter b4(four.board->stack(), c4);
  bool ok4 = b4.route_all(four.strung.connections);

  EXPECT_EQ(ok1, ok4);
  const RouterStats& s1 = b1.stats();
  const RouterStats& s4 = b4.stats();
  EXPECT_EQ(s1.total, s4.total);
  EXPECT_EQ(s1.routed, s4.routed);
  EXPECT_EQ(s1.failed, s4.failed);
  for (int i = 0; i < kNumRouteStrategies; ++i) {
    EXPECT_EQ(s1.by_strategy[i], s4.by_strategy[i]) << "strategy " << i;
  }
  EXPECT_EQ(s1.rip_ups, s4.rip_ups);
  EXPECT_EQ(s1.vias_added, s4.vias_added);
  EXPECT_EQ(s1.lee_searches, s4.lee_searches);
  EXPECT_EQ(s1.lee_expansions, s4.lee_expansions);
  EXPECT_EQ(s1.passes, s4.passes);

  CheckReport audit =
      audit_all(four.board->stack(), b4.db(), four.strung.connections);
  EXPECT_TRUE(audit.ok()) << audit.first_error();
  DrcOptions opts;
  opts.opens = ok4;
  CheckReport drc =
      drc_check(*four.board, four.strung.connections, b4.db(), opts);
  EXPECT_TRUE(drc.findings.empty())
      << GetParam().name << ": " << format_finding(drc.findings.front());
}

std::string row_name(
    const ::testing::TestParamInfo<BoardGenParams>& info) {
  std::string n = info.param.name;
  for (char& c : n) {
    if (c == '-') c = '_';
  }
  return n;
}

INSTANTIATE_TEST_SUITE_P(Table1, SuiteRegression,
                         ::testing::ValuesIn(table1_suite(0.4)), row_name);

INSTANTIATE_TEST_SUITE_P(Table1, SuiteDeterminism,
                         ::testing::ValuesIn(table1_suite(0.4)), row_name);

TEST(SuiteRegressionTest, FullScaleHardestRowFailsSoftly) {
  // The paper's first row: kdj11 on two layers is beyond capacity. At
  // full scale our reproduction gives up, as the paper's router did, with
  // the board left consistent and most of the work done.
  GeneratedBoard gb = generate_board(table1_board("kdj11-2L", 1.0));
  Router router(gb.board->stack(), RouterConfig{});
  bool ok = router.route_all(gb.strung.connections);
  EXPECT_FALSE(ok);
  double routed_frac =
      static_cast<double>(router.stats().routed) / router.stats().total;
  EXPECT_GT(routed_frac, 0.6);  // the paper reports ~80%
  EXPECT_LT(routed_frac, 1.0);
  CheckReport audit =
      audit_all(gb.board->stack(), router.db(), gb.strung.connections);
  EXPECT_TRUE(audit.ok()) << audit.first_error();
}

}  // namespace
}  // namespace grr
