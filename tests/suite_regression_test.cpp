// Regression net over the Table 1 suite at reduced scale: every board
// generates, routes and audits; the relative difficulty ordering that the
// full-scale bench reproduces must already be visible.
#include <gtest/gtest.h>

#include <memory>

#include "check/drc.hpp"
#include "route/audit.hpp"
#include "route/batch_router.hpp"
#include "route/router.hpp"
#include "workload/suite.hpp"

namespace grr {
namespace {

class SuiteRegression
    : public ::testing::TestWithParam<BoardGenParams> {};

TEST_P(SuiteRegression, GeneratesRoutesAndAudits) {
  GeneratedBoard gb = generate_board(GetParam());
  ASSERT_NE(gb.board, nullptr);
  EXPECT_GT(gb.strung.connections.size(), 10u);

  Router router(gb.board->stack(), RouterConfig{});
  bool ok = router.route_all(gb.strung.connections);
  // At scale 0.4 the demand shrinks linearly: every board completes —
  // except the over-capacity 2-layer kdj11, which stays marginal at any
  // scale (that is Table 1's point).
  if (GetParam().layers == 2) {
    EXPECT_GE(router.stats().routed, router.stats().total * 95 / 100);
  } else {
    EXPECT_TRUE(ok) << GetParam().name << ": " << router.stats().failed
                    << " failed";
  }
  CheckReport audit =
      audit_all(gb.board->stack(), router.db(), gb.strung.connections);
  EXPECT_TRUE(audit.ok()) << audit.first_error();
  // Every suite board is DRC-clean: what was routed is geometrically
  // manufacturable (opens are only demanded of completed boards).
  DrcOptions opts;
  opts.opens = ok;
  CheckReport drc =
      drc_check(*gb.board, gb.strung.connections, router.db(), opts);
  EXPECT_TRUE(drc.findings.empty())
      << GetParam().name << ": " << format_finding(drc.findings.front());
  // Table 1's vias-per-connection stays below 1 on completed boards.
  if (ok) {
    EXPECT_LT(router.stats().vias_per_conn(), 1.0);
  }
}

class SuiteDeterminism
    : public ::testing::TestWithParam<BoardGenParams> {};

/// Full realized-geometry equality: status, strategy, via chain and every
/// trace span of every connection. This is the bit-identical contract the
/// search-acceleration work is held to (cache on/off, any thread count).
void expect_same_routes(const std::vector<Connection>& conns,
                        const RouteDB& a, const RouteDB& b,
                        const char* what) {
  for (const Connection& c : conns) {
    const RouteRecord& ra = a.rec(c.id);
    const RouteRecord& rb = b.rec(c.id);
    ASSERT_EQ(ra.status, rb.status) << what << " conn " << c.id;
    ASSERT_EQ(ra.strategy, rb.strategy) << what << " conn " << c.id;
    ASSERT_EQ(ra.geom.vias, rb.geom.vias) << what << " conn " << c.id;
    ASSERT_EQ(ra.geom.hops.size(), rb.geom.hops.size())
        << what << " conn " << c.id;
    for (std::size_t i = 0; i < ra.geom.hops.size(); ++i) {
      ASSERT_EQ(ra.geom.hops[i].layer, rb.geom.hops[i].layer)
          << what << " conn " << c.id << " hop " << i;
      ASSERT_EQ(ra.geom.hops[i].spans, rb.geom.hops[i].spans)
          << what << " conn " << c.id << " hop " << i;
    }
  }
}

TEST_P(SuiteDeterminism, ParallelMatchesSerialAndPassesDrc) {
  // The batch router's contract over the whole Table 1 suite: threads=4
  // produces the identical routed set and discrete statistics as
  // threads=1, and the parallel-routed board is DRC-clean.
  GeneratedBoard one = generate_board(GetParam());
  GeneratedBoard four = generate_board(GetParam());

  RouterConfig c1;
  c1.threads = 1;
  BatchRouter b1(one.board->stack(), c1);
  bool ok1 = b1.route_all(one.strung.connections);

  RouterConfig c4;
  c4.threads = 4;
  BatchRouter b4(four.board->stack(), c4);
  bool ok4 = b4.route_all(four.strung.connections);

  EXPECT_EQ(ok1, ok4);
  const RouterStats& s1 = b1.stats();
  const RouterStats& s4 = b4.stats();
  EXPECT_EQ(s1.total, s4.total);
  EXPECT_EQ(s1.routed, s4.routed);
  EXPECT_EQ(s1.failed, s4.failed);
  for (int i = 0; i < kNumRouteStrategies; ++i) {
    EXPECT_EQ(s1.by_strategy[i], s4.by_strategy[i]) << "strategy " << i;
  }
  EXPECT_EQ(s1.rip_ups, s4.rip_ups);
  EXPECT_EQ(s1.vias_added, s4.vias_added);
  EXPECT_EQ(s1.lee_searches, s4.lee_searches);
  EXPECT_EQ(s1.lee_expansions, s4.lee_expansions);
  EXPECT_EQ(s1.lee_gap_nodes, s4.lee_gap_nodes);
  EXPECT_EQ(s1.passes, s4.passes);
  // Not just the same counts: the same metal, span for span.
  ASSERT_NO_FATAL_FAILURE(expect_same_routes(one.strung.connections, b1.db(),
                                             b4.db(), "threads 1 vs 4"));

  CheckReport audit =
      audit_all(four.board->stack(), b4.db(), four.strung.connections);
  EXPECT_TRUE(audit.ok()) << audit.first_error();
  DrcOptions opts;
  opts.opens = ok4;
  CheckReport drc =
      drc_check(*four.board, four.strung.connections, b4.db(), opts);
  EXPECT_TRUE(drc.findings.empty())
      << GetParam().name << ": " << format_finding(drc.findings.front());
}

TEST_P(SuiteDeterminism, FlatStoreMatchesLegacyList) {
  // The channel_store switch may change only the speed of a run, never its
  // outcome: legacy list and flat SoA boards must route identically —
  // every discrete statistic and every span of realized metal, serial and
  // parallel alike. Baseline: legacy list, one thread.
  struct Combo {
    ChannelStore store;
    int threads;
    const char* what;
  };
  const Combo kCombos[] = {
      {ChannelStore::kList, 1, "list/1t"},
      {ChannelStore::kList, 4, "list/4t"},
      {ChannelStore::kFlat, 1, "flat/1t"},
      {ChannelStore::kFlat, 4, "flat/4t"},
  };

  GeneratedBoard boards[4];
  std::unique_ptr<BatchRouter> routers[4];
  for (int i = 0; i < 4; ++i) {
    BoardGenParams params = GetParam();
    params.channel_store = kCombos[i].store;
    boards[i] = generate_board(params);
    RouterConfig cfg;
    cfg.threads = kCombos[i].threads;
    routers[i] =
        std::make_unique<BatchRouter>(boards[i].board->stack(), cfg);
    routers[i]->route_all(boards[i].strung.connections);
  }

  const RouterStats& base = routers[0]->stats();
  for (int i = 1; i < 4; ++i) {
    const RouterStats& s = routers[i]->stats();
    EXPECT_EQ(base.total, s.total) << kCombos[i].what;
    EXPECT_EQ(base.routed, s.routed) << kCombos[i].what;
    EXPECT_EQ(base.failed, s.failed) << kCombos[i].what;
    for (int j = 0; j < kNumRouteStrategies; ++j) {
      EXPECT_EQ(base.by_strategy[j], s.by_strategy[j])
          << kCombos[i].what << " strategy " << j;
    }
    EXPECT_EQ(base.rip_ups, s.rip_ups) << kCombos[i].what;
    EXPECT_EQ(base.vias_added, s.vias_added) << kCombos[i].what;
    EXPECT_EQ(base.lee_searches, s.lee_searches) << kCombos[i].what;
    EXPECT_EQ(base.lee_expansions, s.lee_expansions) << kCombos[i].what;
    EXPECT_EQ(base.lee_gap_nodes, s.lee_gap_nodes) << kCombos[i].what;
    EXPECT_EQ(base.passes, s.passes) << kCombos[i].what;
    ASSERT_NO_FATAL_FAILURE(expect_same_routes(boards[0].strung.connections,
                                               routers[0]->db(),
                                               routers[i]->db(),
                                               kCombos[i].what));
  }

  // The flat-routed board audits clean — including the new store
  // consistency check (arrays, bitmap and summary against the pool).
  CheckReport audit = audit_all(boards[3].board->stack(), routers[3]->db(),
                                boards[3].strung.connections);
  EXPECT_TRUE(audit.ok()) << audit.first_error();
}

/// The spatial-sharding matrix: serial baseline against shard counts
/// {1, 2, 8} x both channel stores at four threads — identical discrete
/// statistics, identical metal span for span, and the wave-repair path
/// provably never taken. Shared by the Table 1 and giant-tier fixtures.
void run_shard_matrix(const BoardGenParams& param) {
  struct Combo {
    int shards;
    ChannelStore store;
    const char* what;
  };
  const Combo kCombos[] = {
      {1, ChannelStore::kList, "shards1/list"},
      {2, ChannelStore::kList, "shards2/list"},
      {8, ChannelStore::kList, "shards8/list"},
      {1, ChannelStore::kFlat, "shards1/flat"},
      {2, ChannelStore::kFlat, "shards2/flat"},
      {8, ChannelStore::kFlat, "shards8/flat"},
  };

  GeneratedBoard base_board = generate_board(param);
  RouterConfig base_cfg;
  base_cfg.threads = 1;
  BatchRouter base(base_board.board->stack(), base_cfg);
  bool base_ok = base.route_all(base_board.strung.connections);
  const RouterStats& bs = base.stats();

  for (const Combo& combo : kCombos) {
    BoardGenParams p = param;
    p.channel_store = combo.store;
    GeneratedBoard gb = generate_board(p);
    RouterConfig cfg;
    cfg.threads = 4;
    cfg.shards = combo.shards;
    BatchRouter br(gb.board->stack(), cfg);
    bool ok = br.route_all(gb.strung.connections);

    EXPECT_EQ(base_ok, ok) << combo.what;
    const RouterStats& s = br.stats();
    EXPECT_EQ(bs.total, s.total) << combo.what;
    EXPECT_EQ(bs.routed, s.routed) << combo.what;
    EXPECT_EQ(bs.failed, s.failed) << combo.what;
    for (int j = 0; j < kNumRouteStrategies; ++j) {
      EXPECT_EQ(bs.by_strategy[j], s.by_strategy[j])
          << combo.what << " strategy " << j;
    }
    EXPECT_EQ(bs.rip_ups, s.rip_ups) << combo.what;
    EXPECT_EQ(bs.vias_added, s.vias_added) << combo.what;
    EXPECT_EQ(bs.lee_searches, s.lee_searches) << combo.what;
    EXPECT_EQ(bs.lee_expansions, s.lee_expansions) << combo.what;
    EXPECT_EQ(bs.lee_gap_nodes, s.lee_gap_nodes) << combo.what;
    EXPECT_EQ(bs.passes, s.passes) << combo.what;
    ASSERT_NO_FATAL_FAILURE(expect_same_routes(
        base_board.strung.connections, base.db(), br.db(), combo.what));

    // The footprint contract makes a wave-install miss impossible; the
    // repair path must never have run.
    EXPECT_EQ(br.batch_stats().repair_rollbacks, 0) << combo.what;
    if (combo.shards > 1) {
      EXPECT_GE(br.batch_stats().shard_rows, 1) << combo.what;
      EXPECT_GE(br.batch_stats().shard_cols, 1) << combo.what;
    }

    // The sharded board is audit- and DRC-clean like any other.
    CheckReport audit =
        audit_all(gb.board->stack(), br.db(), gb.strung.connections);
    EXPECT_TRUE(audit.ok()) << combo.what << ": " << audit.first_error();
    DrcOptions opts;
    opts.opens = ok;
    CheckReport drc = drc_check(*gb.board, gb.strung.connections, br.db(), opts);
    EXPECT_TRUE(drc.findings.empty())
        << combo.what << ": " << format_finding(drc.findings.front());
  }
}

TEST_P(SuiteDeterminism, ShardedCommitMatchesSerial) {
  run_shard_matrix(GetParam());
}

class GiantTierDeterminism
    : public ::testing::TestWithParam<BoardGenParams> {};

TEST_P(GiantTierDeterminism, ShardedCommitMatchesSerial) {
  // The giant tier at reduced scale: the workload spatial sharding exists
  // for, held to the same bit-identical contract.
  run_shard_matrix(GetParam());
}

TEST_P(SuiteDeterminism, ReachabilityCacheIsInvisible) {
  // The journal-invalidated free-space cache may change only the speed of a
  // run, never its outcome: cache on vs off must agree on every discrete
  // statistic and every span of realized metal — serial and parallel alike.
  GeneratedBoard on1 = generate_board(GetParam());
  GeneratedBoard off1 = generate_board(GetParam());
  GeneratedBoard off4 = generate_board(GetParam());

  RouterConfig c_on;
  c_on.lee_cache = true;  // opt-in: exercise the replay path explicitly
  c_on.threads = 1;
  BatchRouter b_on(on1.board->stack(), c_on);
  bool ok_on = b_on.route_all(on1.strung.connections);

  RouterConfig c_off = c_on;
  c_off.lee_cache = false;
  BatchRouter b_off(off1.board->stack(), c_off);
  bool ok_off = b_off.route_all(off1.strung.connections);

  RouterConfig c_off4 = c_off;
  c_off4.threads = 4;
  BatchRouter b_off4(off4.board->stack(), c_off4);
  bool ok_off4 = b_off4.route_all(off4.strung.connections);

  EXPECT_EQ(ok_on, ok_off);
  EXPECT_EQ(ok_on, ok_off4);
  const RouterStats& s_on = b_on.stats();
  const RouterStats& s_off = b_off.stats();
  const RouterStats& s_off4 = b_off4.stats();
  for (const RouterStats* s : {&s_off, &s_off4}) {
    EXPECT_EQ(s_on.routed, s->routed);
    EXPECT_EQ(s_on.failed, s->failed);
    EXPECT_EQ(s_on.rip_ups, s->rip_ups);
    EXPECT_EQ(s_on.vias_added, s->vias_added);
    EXPECT_EQ(s_on.lee_searches, s->lee_searches);
    EXPECT_EQ(s_on.lee_expansions, s->lee_expansions);
    EXPECT_EQ(s_on.passes, s->passes);
  }
  // gap_nodes is deliberately NOT compared across cache modes: cache-off
  // walks are deduped across expansions, cache-on walks are full so their
  // logs stay replayable — same marks and geometry, different work counts.
  // Within one mode it is deterministic at any thread count:
  EXPECT_EQ(s_off.lee_gap_nodes, s_off4.lee_gap_nodes);
  ASSERT_NO_FATAL_FAILURE(expect_same_routes(
      on1.strung.connections, b_on.db(), b_off.db(), "cache on vs off"));
  ASSERT_NO_FATAL_FAILURE(expect_same_routes(on1.strung.connections,
                                             b_on.db(), b_off4.db(),
                                             "cache on/1t vs off/4t"));
}

std::string row_name(
    const ::testing::TestParamInfo<BoardGenParams>& info) {
  std::string n = info.param.name;
  for (char& c : n) {
    if (c == '-') c = '_';
  }
  return n;
}

INSTANTIATE_TEST_SUITE_P(Table1, SuiteRegression,
                         ::testing::ValuesIn(table1_suite(0.4)), row_name);

INSTANTIATE_TEST_SUITE_P(Table1, SuiteDeterminism,
                         ::testing::ValuesIn(table1_suite(0.4)), row_name);

INSTANTIATE_TEST_SUITE_P(Giant, GiantTierDeterminism,
                         ::testing::ValuesIn(giant_suite(0.15)), row_name);

TEST(SuiteRegressionTest, FullScaleHardestRowFailsSoftly) {
  // The paper's first row: kdj11 on two layers is beyond capacity. At
  // full scale our reproduction gives up, as the paper's router did, with
  // the board left consistent and most of the work done.
  GeneratedBoard gb = generate_board(table1_board("kdj11-2L", 1.0));
  Router router(gb.board->stack(), RouterConfig{});
  bool ok = router.route_all(gb.strung.connections);
  EXPECT_FALSE(ok);
  double routed_frac =
      static_cast<double>(router.stats().routed) / router.stats().total;
  EXPECT_GT(routed_frac, 0.6);  // the paper reports ~80%
  EXPECT_LT(routed_frac, 1.0);
  CheckReport audit =
      audit_all(gb.board->stack(), router.db(), gb.strung.connections);
  EXPECT_TRUE(audit.ok()) << audit.first_error();
}

}  // namespace
}  // namespace grr
