// ThreadPool contract the batch router leans on: every index runs exactly
// once, the pool is reusable across calls, and a throwing job surfaces its
// exception from for_indices without poisoning later calls.
#include "route/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <vector>

namespace grr {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  constexpr std::size_t kCount = 10000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.for_indices(kCount, [&](int worker, std::size_t i) {
    EXPECT_GE(worker, 0);
    EXPECT_LT(worker, 4);
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ZeroCountIsANoOp) {
  ThreadPool pool(2);
  bool ran = false;
  pool.for_indices(0, [&](int, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ReusableAcrossManyCalls) {
  // The batch router alternates plan fan-outs and install waves on one
  // pool; the generation counter must keep the rounds apart.
  ThreadPool pool(3);
  std::atomic<long> total{0};
  for (int round = 0; round < 50; ++round) {
    const std::size_t n = static_cast<std::size_t>(round % 7);
    pool.for_indices(n, [&](int, std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  long expected = 0;
  for (int round = 0; round < 50; ++round) expected += round % 7;
  EXPECT_EQ(total.load(), expected);
}

TEST(ThreadPool, ExceptionPropagatesAndPoolStaysUsable) {
  ThreadPool pool(4);
  constexpr std::size_t kCount = 64;
  std::vector<std::atomic<int>> hits(kCount);
  EXPECT_THROW(pool.for_indices(kCount,
                                [&](int, std::size_t i) {
                                  hits[i].fetch_add(
                                      1, std::memory_order_relaxed);
                                  if (i == 7) {
                                    throw std::runtime_error("index 7");
                                  }
                                }),
               std::runtime_error);
  // The drain still ran every index, including those after the throw.
  for (std::size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }

  // The next call starts clean: no stale error, all indices run.
  std::atomic<long> total{0};
  pool.for_indices(kCount, [&](int, std::size_t) {
    total.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(total.load(), static_cast<long>(kCount));
}

TEST(ThreadPool, OnlyFirstExceptionIsRethrown) {
  ThreadPool pool(4);
  std::atomic<int> thrown{0};
  try {
    pool.for_indices(32, [&](int, std::size_t) {
      thrown.fetch_add(1, std::memory_order_relaxed);
      throw std::runtime_error("each index throws");
    });
    FAIL() << "for_indices swallowed the exceptions";
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(thrown.load(), 32);
}

TEST(ThreadPool, SingleWorkerCoversTheWholeRange) {
  ThreadPool pool(1);
  std::vector<char> hit(100, 0);
  pool.for_indices(hit.size(), [&](int worker, std::size_t i) {
    EXPECT_EQ(worker, 0);
    hit[i] = 1;
  });
  for (std::size_t i = 0; i < hit.size(); ++i) {
    EXPECT_EQ(hit[i], 1) << "index " << i;
  }
}

}  // namespace
}  // namespace grr
