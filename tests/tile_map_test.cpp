// Tests for ECL/TTL tesselation (paper Sec 10.2, Fig 18).
#include "board/tile_map.hpp"

#include <gtest/gtest.h>

namespace grr {
namespace {

class TileMapTest : public ::testing::Test {
 protected:
  TileMapTest() : spec_(11, 9), stack_(spec_, 2) {}
  GridSpec spec_;
  LayerStack stack_;
};

TEST_F(TileMapTest, ClassAtLastTileWins) {
  TileMap tiles(SignalClass::kECL);
  tiles.add_tile(0, {{0, 30}, {0, 24}}, SignalClass::kECL);
  tiles.add_tile(0, {{0, 15}, {0, 24}}, SignalClass::kTTL);
  EXPECT_EQ(tiles.class_at(0, {5, 5}), SignalClass::kTTL);
  EXPECT_EQ(tiles.class_at(0, {20, 5}), SignalClass::kECL);
  EXPECT_EQ(tiles.class_at(1, {5, 5}), SignalClass::kECL);  // default
}

TEST_F(TileMapTest, FillForeignBlocksTracesAndVias) {
  TileMap tiles(SignalClass::kECL);
  // Left half of layer 0 (and only layer 0) is TTL.
  tiles.add_tile(0, {{0, 14}, {0, 24}}, SignalClass::kTTL);
  tiles.add_tile(0, {{15, 30}, {0, 24}}, SignalClass::kECL);
  tiles.add_tile(1, {{0, 30}, {0, 24}}, SignalClass::kECL);

  auto filler = tiles.fill_foreign(stack_, SignalClass::kECL);
  EXPECT_FALSE(filler.empty());
  // Everything in the TTL region of layer 0 is occupied...
  EXPECT_TRUE(stack_.occupied(0, {5, 5}));
  EXPECT_TRUE(stack_.occupied(0, {14, 20}));
  // ...but the ECL region and the other layer stay free.
  EXPECT_FALSE(stack_.occupied(0, {20, 5}));
  EXPECT_FALSE(stack_.occupied(1, {5, 5}));
  // Via sites under the filled tile are not drillable (the filler covers
  // the hole location on layer 0).
  EXPECT_FALSE(stack_.via_free({2, 2}));
  EXPECT_TRUE(stack_.via_free({7, 2}));

  TileMap::unfill(stack_, filler);
  EXPECT_FALSE(stack_.occupied(0, {5, 5}));
  EXPECT_TRUE(stack_.via_free({2, 2}));
  EXPECT_EQ(stack_.segment_count(), 0u);
}

TEST_F(TileMapTest, FillSkipsUsedSpace) {
  TileMap tiles(SignalClass::kECL);
  tiles.add_tile(0, {{0, 30}, {0, 24}}, SignalClass::kTTL);
  SegId pre = stack_.insert_span({0, 5, {10, 20}}, 3);
  auto filler = tiles.fill_foreign(stack_, SignalClass::kECL);
  // The pre-existing segment is untouched and everything else filled.
  EXPECT_EQ(stack_.conn_at(0, {15, 5}), 3);
  EXPECT_EQ(stack_.conn_at(0, {9, 5}), kFillerConn);
  EXPECT_EQ(stack_.conn_at(0, {21, 5}), kFillerConn);
  TileMap::unfill(stack_, filler);
  stack_.erase_segment(pre);
  EXPECT_EQ(stack_.segment_count(), 0u);
}

TEST_F(TileMapTest, DefaultClassAppliesToUntiledSpace) {
  TileMap tiles(SignalClass::kECL);  // no tiles at all
  auto filler = tiles.fill_foreign(stack_, SignalClass::kTTL);
  // Everything is (default) ECL, so a TTL pass fills the whole board.
  EXPECT_TRUE(stack_.occupied(0, {5, 5}));
  EXPECT_TRUE(stack_.occupied(1, {20, 20}));
  auto none = tiles.fill_foreign(stack_, SignalClass::kECL);
  EXPECT_TRUE(none.empty());  // ECL pass: nothing foreign... and no space
  TileMap::unfill(stack_, filler);
  EXPECT_EQ(stack_.segment_count(), 0u);
}

}  // namespace
}  // namespace grr
