// Tests for the static timing verifier.
#include "timing/timing.hpp"

#include <gtest/gtest.h>

#include "route/router.hpp"

namespace grr {
namespace {

class TimingTest : public ::testing::Test {
 protected:
  TimingTest() : spec_(61, 41), board_(spec_, 4) {
    sip2_ = board_.add_footprint(Footprint::sip(2));
    model_.num_layers = 4;
  }

  PartId part(Coord vx, Coord vy) {
    return board_.add_part("P" + std::to_string(board_.parts().size()),
                           sip2_, {vx, vy});
  }

  /// A two-pin net from (pa, out_pin=1) to (pb, in_pin=0).
  NetId wire(PartId pa, PartId pb) {
    Net net;
    net.klass = SignalClass::kTTL;
    net.pins.push_back({pa, 1, PinRole::kOutput});
    net.pins.push_back({pb, 0, PinRole::kInput});
    return board_.netlist().add(std::move(net));
  }

  GridSpec spec_;
  Board board_;
  int sip2_;
  DelayModel model_;
};

TEST_F(TimingTest, NetDelaysFollowChainOrder) {
  PartId a = part(2, 2), b = part(12, 2), c = part(32, 2);
  Net net;
  net.klass = SignalClass::kTTL;
  net.pins.push_back({a, 1, PinRole::kOutput});
  net.pins.push_back({b, 0, PinRole::kInput});
  net.pins.push_back({c, 0, PinRole::kInput});
  board_.netlist().add(std::move(net));
  StringingResult strung = string_nets(board_);

  auto delays = net_pin_delays(board_, strung, nullptr, model_);
  ASSERT_EQ(delays.size(), 1u);
  ASSERT_EQ(delays[0].size(), 3u);
  EXPECT_DOUBLE_EQ(delays[0][0], 0.0);
  // Manhattan estimates: a->b is 11 pitches (10 across, 1 down from the
  // output pin), then b->c adds 20 more.
  EXPECT_NEAR(delays[0][1], 1100.0 / 6000.0, 1e-9);
  EXPECT_NEAR(delays[0][2], 3100.0 / 6000.0, 1e-9);
}

TEST_F(TimingTest, TreeStrungNetsGetBranchDelays) {
  // A star net strung as a spanning tree: each sink's delay is its own
  // branch, not a chain prefix through the other sinks.
  PartId hub = part(30, 20), s1 = part(30, 10), s2 = part(20, 20),
         s3 = part(44, 20);
  Net net;
  net.klass = SignalClass::kTTL;
  net.pins.push_back({hub, 1, PinRole::kOutput});
  net.pins.push_back({s1, 0, PinRole::kInput});
  net.pins.push_back({s2, 0, PinRole::kInput});
  net.pins.push_back({s3, 0, PinRole::kInput});
  board_.netlist().add(std::move(net));
  StringingResult strung =
      string_nets(board_, StringingMethod::kSpanningTree);

  auto delays = net_pin_delays(board_, strung, nullptr, model_);
  ASSERT_EQ(delays[0].size(), 4u);
  EXPECT_DOUBLE_EQ(delays[0][0], 0.0);
  // Every sink's estimated delay equals its direct Manhattan distance from
  // the hub (spokes, not a chain).
  for (std::size_t i = 1; i < 4; ++i) {
    long d = manhattan(board_.pin_via(board_.netlist().nets[0].pins[0]),
                       board_.pin_via(board_.netlist().nets[0].pins[i]));
    EXPECT_NEAR(delays[0][i], d * 100.0 / 6000.0, 1e-9) << "sink " << i;
  }
}

TEST_F(TimingTest, RoutedDelaysComeFromTheRealizedMetal) {
  PartId a = part(2, 2), b = part(22, 2);
  wire(a, b);
  StringingResult strung = string_nets(board_);
  Router router(board_.stack());
  ASSERT_TRUE(router.route_all(strung.connections));

  auto est = net_pin_delays(board_, strung, nullptr, model_);
  auto real = net_pin_delays(board_, strung, &router.db(), model_);
  // Routed delay is in the same ballpark as the estimate but not equal
  // (irregular grid spacing, pad-edge anchors, layer speed).
  EXPECT_GT(real[0][1], 0.0);
  EXPECT_NEAR(real[0][1], est[0][1], est[0][1] * 0.3);
  EXPECT_NE(real[0][1], est[0][1]);
}

TEST_F(TimingTest, PipelineCriticalPath) {
  // REG1 -(net)-> U1 -(arc 1ns)-> U1.out -(net)-> REG2.
  PartId reg1 = part(2, 2), u1 = part(20, 2), reg2 = part(40, 2);
  wire(reg1, u1);
  wire(u1, reg2);
  StringingResult strung = string_nets(board_);

  TimingSpec ts;
  ts.arcs.push_back({u1, 0, 1, 1.0});
  ts.launch_pins.push_back({reg1, 1, PinRole::kOutput});
  ts.capture_pins.push_back({reg2, 0, PinRole::kInput});
  ts.clock_period_ns = 2.0;

  TimingReport rep =
      verify_timing(board_, strung, nullptr, model_, ts);
  ASSERT_TRUE(rep.ok) << rep.error;
  // The two net estimates plus the 1 ns part arc.
  double net1 = manhattan(board_.pin_via(reg1, 1), board_.pin_via(u1, 0)) *
                100.0 / 6000.0;
  double net2 = manhattan(board_.pin_via(u1, 1), board_.pin_via(reg2, 0)) *
                100.0 / 6000.0;
  EXPECT_NEAR(rep.worst_ns, 1.0 + net1 + net2, 1e-6);
  EXPECT_NEAR(rep.worst_slack_ns, 2.0 - rep.worst_ns, 1e-9);
  // The path runs launch -> u1.in -> u1.out -> capture.
  ASSERT_EQ(rep.critical_path.size(), 4u);
  EXPECT_EQ(rep.critical_path.front().part, reg1);
  EXPECT_EQ(rep.critical_path.back().part, reg2);
  EXPECT_TRUE(rep.critical_path[1].through_net);
  EXPECT_FALSE(rep.critical_path[2].through_net);
}

TEST_F(TimingTest, PicksTheSlowerOfTwoPaths) {
  PartId reg1 = part(2, 2), fast = part(8, 2), slow = part(8, 10),
         reg2 = part(30, 6);
  wire(reg1, fast);
  wire(reg1, slow);  // second net from the same launch part
  wire(fast, reg2);
  wire(slow, reg2);

  StringingResult strung = string_nets(board_);
  TimingSpec ts;
  ts.arcs.push_back({fast, 0, 1, 0.5});
  ts.arcs.push_back({slow, 0, 1, 3.0});
  ts.launch_pins.push_back({reg1, 1, PinRole::kOutput});
  ts.capture_pins.push_back({reg2, 0, PinRole::kInput});
  TimingReport rep =
      verify_timing(board_, strung, nullptr, model_, ts);
  ASSERT_TRUE(rep.ok) << rep.error;
  EXPECT_GT(rep.worst_ns, 3.0);
  bool through_slow = false;
  for (const TimingPathStep& s : rep.critical_path) {
    if (s.part == slow) through_slow = true;
  }
  EXPECT_TRUE(through_slow);
}

TEST_F(TimingTest, DetectsCombinationalCycle) {
  PartId u1 = part(2, 2), u2 = part(12, 2);
  wire(u1, u2);
  wire(u2, u1);
  StringingResult strung = string_nets(board_);
  TimingSpec ts;
  ts.arcs.push_back({u1, 0, 1, 1.0});
  ts.arcs.push_back({u2, 0, 1, 1.0});
  ts.launch_pins.push_back({u1, 1, PinRole::kOutput});
  ts.capture_pins.push_back({u2, 0, PinRole::kInput});
  TimingReport rep =
      verify_timing(board_, strung, nullptr, model_, ts);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.error.find("cycle"), std::string::npos);
}

TEST_F(TimingTest, UnreachableCaptureIsAnError) {
  PartId a = part(2, 2), b = part(12, 2), lonely = part(30, 10);
  wire(a, b);
  StringingResult strung = string_nets(board_);
  TimingSpec ts;
  ts.launch_pins.push_back({a, 1, PinRole::kOutput});
  ts.capture_pins.push_back({lonely, 0, PinRole::kInput});
  TimingReport rep =
      verify_timing(board_, strung, nullptr, model_, ts);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.error.find("reachable"), std::string::npos);
}

}  // namespace
}  // namespace grr
