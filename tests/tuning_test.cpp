// Tests for length tuning (paper Sec 10.1): the delay model, the shipped
// detour-based tuner, and the rejected cost-function tuner.
#include <gtest/gtest.h>

#include "route/audit.hpp"
#include "tune/costfn_tuner.hpp"
#include "tune/delay_model.hpp"
#include "tune/length_tuner.hpp"

namespace grr {
namespace {

class TuningTest : public ::testing::Test {
 protected:
  TuningTest() : spec_(21, 21), stack_(spec_, 4), router_(stack_) {
    model_.num_layers = 4;
  }

  Connection make_conn(ConnId id, Point a, Point b, double target_ns = 0) {
    if (stack_.via_free(a)) stack_.drill_via(a, kPinConn);
    if (stack_.via_free(b)) stack_.drill_via(b, kPinConn);
    Connection c;
    c.id = id;
    c.a = a;
    c.b = b;
    c.target_delay_ns = target_ns;
    return c;
  }

  GridSpec spec_;
  LayerStack stack_;
  Router router_;
  DelayModel model_;
};

TEST_F(TuningTest, DelayModelLayerSpeeds) {
  DelayModel m;
  m.num_layers = 6;
  EXPECT_TRUE(m.is_outer(0));
  EXPECT_TRUE(m.is_outer(5));
  EXPECT_FALSE(m.is_outer(2));
  // Outer layers are 10% faster (Sec 10.1).
  EXPECT_DOUBLE_EQ(m.mils_per_ns(0), 6600.0);
  EXPECT_DOUBLE_EQ(m.mils_per_ns(3), 6000.0);
}

TEST_F(TuningTest, HopDelayUsesPhysicalLength) {
  DelayModel m;
  m.num_layers = 4;
  // One 10-via-pitch span on an inner layer: 1000 mils at 6 in/ns.
  RouteHop hop{1, {{6, {0, 30}}}};
  EXPECT_NEAR(m.hop_delay_ns(GridSpec(21, 21), hop), 1000.0 / 6000.0, 1e-9);
}

TEST_F(TuningTest, MinDelayIsManhattanOnFastestLayer) {
  DelayModel m;
  m.num_layers = 4;
  // 10 pitches = 1000 mils on an outer layer at 6600 mils/ns.
  EXPECT_NEAR(m.min_delay_ns(spec_, {0, 0}, {10, 0}), 1000.0 / 6600.0,
              1e-9);
}

TEST_F(TuningTest, DetourTunerStretchesToTarget) {
  // Direct route is ~1000 mils (~0.15-0.17 ns); ask for 0.5 ns.
  Connection c = make_conn(0, {3, 10}, {13, 10}, 0.5);
  ASSERT_TRUE(router_.route_all({c}));
  LengthTuner tuner(router_, model_, /*tolerance_ns=*/0.02);
  TuneResult r = tuner.tune(c);
  EXPECT_TRUE(r.success) << "achieved " << r.achieved_ns;
  EXPECT_NEAR(r.achieved_ns, 0.5, 0.02);
  EXPECT_GT(r.detours_added, 0);
  // The tuned realization still audits clean.
  CheckReport audit = audit_all(stack_, router_.db(), {c});
  EXPECT_TRUE(audit.ok()) << audit.first_error();
}

TEST_F(TuningTest, RepeatedDetoursForLargerTargets) {
  Connection c = make_conn(0, {3, 10}, {13, 10}, 1.0);
  ASSERT_TRUE(router_.route_all({c}));
  LengthTuner tuner(router_, model_, 0.03);
  TuneResult r = tuner.tune(c);
  EXPECT_TRUE(r.success) << "achieved " << r.achieved_ns;
  EXPECT_GE(r.detours_added, 2);  // one jog cannot triple the length
}

TEST_F(TuningTest, AlreadySlowEnoughIsReported) {
  // Target below the achievable minimum: stretching cannot help; the tuner
  // reports the current delay without success.
  Connection c = make_conn(0, {3, 10}, {13, 10}, 0.05);
  ASSERT_TRUE(router_.route_all({c}));
  LengthTuner tuner(router_, model_, 0.005);
  TuneResult r = tuner.tune(c);
  EXPECT_FALSE(r.success);
  EXPECT_GT(r.achieved_ns, 0.05);
}

TEST_F(TuningTest, TuneAllCountsSuccesses) {
  ConnectionList conns = {make_conn(0, {3, 5}, {13, 5}, 0.4),
                          make_conn(1, {3, 15}, {13, 15}, 0.4)};
  ASSERT_TRUE(router_.route_all(conns));
  LengthTuner tuner(router_, model_, 0.02);
  EXPECT_EQ(tuner.tune_all(conns), 2);
}

TEST_F(TuningTest, TunerRoutesUnroutedConnections) {
  Connection c = make_conn(0, {3, 10}, {13, 10}, 0.4);
  // Initialize the router's database without routing c.
  Connection other = make_conn(1, {3, 3}, {6, 3});
  ASSERT_TRUE(router_.route_all({other}));
  // Give the tuner an unrouted connection (id 0 < db size is required).
  LengthTuner tuner(router_, model_, 0.02);
  TuneResult r = tuner.tune(c);
  EXPECT_TRUE(r.success) << "achieved " << r.achieved_ns;
}

TEST_F(TuningTest, EqualizeDelaysMatchesSlowestMember) {
  // Three branches of very different lengths from one source region.
  ConnectionList conns = {make_conn(0, {3, 5}, {8, 5}),
                          make_conn(1, {3, 10}, {15, 10}),
                          make_conn(2, {3, 15}, {19, 15})};
  ASSERT_TRUE(router_.route_all(conns));
  const double tol = 0.02;
  int ok = equalize_delays(router_, conns, model_, tol);
  EXPECT_EQ(ok, 3);
  double lo = 1e9, hi = 0;
  for (const Connection& c : conns) {
    double ns =
        model_.route_delay_ns(spec_, router_.db().rec(c.id).geom);
    lo = std::min(lo, ns);
    hi = std::max(hi, ns);
  }
  EXPECT_LE(hi - lo, 2 * tol);
  CheckReport audit = audit_all(stack_, router_.db(), conns);
  EXPECT_TRUE(audit.ok()) << audit.first_error();
}

TEST_F(TuningTest, CostFnTunerFindsButWastesEffort) {
  // The rejected implementation sometimes succeeds but generates false
  // solutions / large searches — the paper's reason for abandoning it.
  Connection c = make_conn(0, {3, 10}, {13, 10}, 0.35);
  Connection seed = make_conn(1, {3, 3}, {6, 3});
  ASSERT_TRUE(router_.route_all({seed}));

  CostFnTuner cheap(router_, model_, /*tolerance_ns=*/0.02);
  CostFnTuneResult r = cheap.tune(c);
  if (r.success) {
    EXPECT_NEAR(r.achieved_ns, 0.35, 0.02);
  }
  EXPECT_GT(r.expansions, 0u);
}

TEST_F(TuningTest, RollbackRestoresOriginalWhenStuck) {
  // Fence the connection so no detour fits: after tuning fails, the
  // original route must still be in place and consistent.
  Connection c = make_conn(0, {3, 10}, {6, 10}, 2.0);
  ASSERT_TRUE(router_.route_all({c}));
  // Occupy every via site around the corridor so no detour via is free.
  for (Coord vx = 1; vx <= 8; ++vx) {
    for (Coord vy = 7; vy <= 13; ++vy) {
      if (stack_.via_free({vx, vy})) {
        stack_.drill_via({vx, vy}, kObstacleConn);
      }
    }
  }
  LengthTuner tuner(router_, model_, 0.01);
  TuneResult r = tuner.tune(c);
  EXPECT_FALSE(r.success);
  EXPECT_TRUE(router_.db().routed(0));
  CheckReport audit = audit_all(stack_, router_.db(), {c});
  EXPECT_TRUE(audit.ok()) << audit.first_error();
}

}  // namespace
}  // namespace grr
