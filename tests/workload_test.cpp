// Tests for the synthetic board generator and the Table 1 suite.
#include "workload/suite.hpp"

#include <gtest/gtest.h>

#include <set>

namespace grr {
namespace {

BoardGenParams small_params() {
  BoardGenParams p;
  p.name = "t";
  p.width_in = 6;
  p.height_in = 5;
  p.layers = 4;
  p.target_connections = 300;
  p.locality = 0.3;
  p.seed = 3;
  return p;
}

TEST(BoardGenTest, ProducesRequestedShape) {
  GeneratedBoard gb = generate_board(small_params());
  const GridSpec& spec = gb.board->spec();
  EXPECT_EQ(spec.nx_vias(), 61);
  EXPECT_EQ(spec.ny_vias(), 51);
  EXPECT_EQ(gb.board->stack().num_layers(), 4);
  // Connection count lands near the target (nets are quantized).
  EXPECT_GE(gb.strung.connections.size(), 300u);
  EXPECT_LE(gb.strung.connections.size(), 340u);
  EXPECT_GT(gb.pct_chan, 0.0);
  EXPECT_GT(gb.board->pins_per_sq_inch(), 10.0);
}

TEST(BoardGenTest, DeterministicForSeed) {
  GeneratedBoard a = generate_board(small_params());
  GeneratedBoard b = generate_board(small_params());
  ASSERT_EQ(a.strung.connections.size(), b.strung.connections.size());
  for (std::size_t i = 0; i < a.strung.connections.size(); ++i) {
    EXPECT_EQ(a.strung.connections[i].a, b.strung.connections[i].a);
    EXPECT_EQ(a.strung.connections[i].b, b.strung.connections[i].b);
  }
  BoardGenParams p2 = small_params();
  p2.seed = 4;
  GeneratedBoard c = generate_board(p2);
  bool differs = c.strung.connections.size() != a.strung.connections.size();
  for (std::size_t i = 0;
       !differs && i < std::min(a.strung.connections.size(),
                                c.strung.connections.size());
       ++i) {
    differs = !(a.strung.connections[i].a == c.strung.connections[i].a) ||
              !(a.strung.connections[i].b == c.strung.connections[i].b);
  }
  EXPECT_TRUE(differs);
}

TEST(BoardGenTest, PinsAreNeverSharedBetweenNets) {
  GeneratedBoard gb = generate_board(small_params());
  std::set<std::pair<PartId, int>> seen;
  for (const Net& net : gb.board->netlist().nets) {
    for (const NetPin& np : net.pins) {
      EXPECT_TRUE(seen.insert({np.part, np.pin}).second)
          << "pin shared between nets";
    }
  }
}

TEST(BoardGenTest, EclNetsAreTerminated) {
  GeneratedBoard gb = generate_board(small_params());
  const Netlist& nl = gb.board->netlist();
  int checked = 0;
  for (std::size_t ni = 0; ni < nl.nets.size(); ++ni) {
    if (nl.nets[ni].klass != SignalClass::kECL) continue;
    EXPECT_GE(gb.strung.terminators[ni].part, 0)
        << "ECL net without terminator";
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

TEST(BoardGenTest, LocalityBoundsNetLength) {
  BoardGenParams tight = small_params();
  tight.locality = 0.08;
  BoardGenParams loose = small_params();
  loose.locality = 0.8;
  GeneratedBoard a = generate_board(tight);
  GeneratedBoard b = generate_board(loose);
  EXPECT_LT(a.pct_chan, b.pct_chan);
}

TEST(BoardGenTest, BusFractionShapesNets) {
  BoardGenParams buses = small_params();
  buses.bus_fraction = 1.0;
  GeneratedBoard gb = generate_board(buses);
  // All nets are two-pin bus bits.
  for (const Net& net : gb.board->netlist().nets) {
    EXPECT_EQ(net.pins.size(), 2u);
  }
  BoardGenParams fan = small_params();
  fan.bus_fraction = 0.0;
  fan.net_pins_min = 3;
  GeneratedBoard gf = generate_board(fan);
  for (const Net& net : gf.board->netlist().nets) {
    EXPECT_GE(net.pins.size(), 2u);  // >= 1 output + >= 1 input
  }
}

TEST(Table1SuiteTest, HasAllNineRows) {
  auto suite = table1_suite();
  ASSERT_EQ(suite.size(), 9u);
  EXPECT_EQ(suite[0].name, "kdj11-2L");
  EXPECT_EQ(suite[0].layers, 2);
  EXPECT_EQ(suite[8].name, "tna-6L");
  // kdj11 pair: same problem, different layer count.
  BoardGenParams k2 = table1_board("kdj11-2L");
  BoardGenParams k4 = table1_board("kdj11-4L");
  EXPECT_EQ(k2.width_in, k4.width_in);
  EXPECT_EQ(k2.locality, k4.locality);
  EXPECT_EQ(k2.seed, k4.seed);
  EXPECT_NE(k2.layers, k4.layers);
}

TEST(Table1SuiteTest, ScaleShrinksQuadratically) {
  BoardGenParams full = table1_board("coproc-6L", 1.0);
  BoardGenParams half = table1_board("coproc-6L", 0.5);
  EXPECT_DOUBLE_EQ(half.width_in, full.width_in / 2);
  EXPECT_NEAR(half.target_connections, full.target_connections / 4.0, 1.0);
}

TEST(Table1SuiteTest, ChanOrderingMatchesPaper) {
  // The suite is listed in decreasing order of difficulty; the generated
  // %chan (normalized per layer count) must be highest for the first row.
  auto suite = table1_suite(0.5);
  double first = 0, last = 0;
  {
    GeneratedBoard gb = generate_board(suite.front());
    first = gb.pct_chan;
  }
  {
    GeneratedBoard gb = generate_board(suite.back());
    last = gb.pct_chan;
  }
  EXPECT_GT(first, last);
}

}  // namespace
}  // namespace grr
