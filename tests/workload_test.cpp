// Tests for the synthetic board generator and the Table 1 suite.
#include "workload/suite.hpp"

#include <gtest/gtest.h>

#include <set>

namespace grr {
namespace {

BoardGenParams small_params() {
  BoardGenParams p;
  p.name = "t";
  p.width_in = 6;
  p.height_in = 5;
  p.layers = 4;
  p.target_connections = 300;
  p.locality = 0.3;
  p.seed = 3;
  return p;
}

TEST(BoardGenTest, ProducesRequestedShape) {
  GeneratedBoard gb = generate_board(small_params());
  const GridSpec& spec = gb.board->spec();
  EXPECT_EQ(spec.nx_vias(), 61);
  EXPECT_EQ(spec.ny_vias(), 51);
  EXPECT_EQ(gb.board->stack().num_layers(), 4);
  // Connection count lands near the target (nets are quantized).
  EXPECT_GE(gb.strung.connections.size(), 300u);
  EXPECT_LE(gb.strung.connections.size(), 340u);
  EXPECT_GT(gb.pct_chan, 0.0);
  EXPECT_GT(gb.board->pins_per_sq_inch(), 10.0);
}

TEST(BoardGenTest, DeterministicForSeed) {
  GeneratedBoard a = generate_board(small_params());
  GeneratedBoard b = generate_board(small_params());
  ASSERT_EQ(a.strung.connections.size(), b.strung.connections.size());
  for (std::size_t i = 0; i < a.strung.connections.size(); ++i) {
    EXPECT_EQ(a.strung.connections[i].a, b.strung.connections[i].a);
    EXPECT_EQ(a.strung.connections[i].b, b.strung.connections[i].b);
  }
  BoardGenParams p2 = small_params();
  p2.seed = 4;
  GeneratedBoard c = generate_board(p2);
  bool differs = c.strung.connections.size() != a.strung.connections.size();
  for (std::size_t i = 0;
       !differs && i < std::min(a.strung.connections.size(),
                                c.strung.connections.size());
       ++i) {
    differs = !(a.strung.connections[i].a == c.strung.connections[i].a) ||
              !(a.strung.connections[i].b == c.strung.connections[i].b);
  }
  EXPECT_TRUE(differs);
}

TEST(BoardGenTest, PinsAreNeverSharedBetweenNets) {
  GeneratedBoard gb = generate_board(small_params());
  std::set<std::pair<PartId, int>> seen;
  for (const Net& net : gb.board->netlist().nets) {
    for (const NetPin& np : net.pins) {
      EXPECT_TRUE(seen.insert({np.part, np.pin}).second)
          << "pin shared between nets";
    }
  }
}

TEST(BoardGenTest, EclNetsAreTerminated) {
  GeneratedBoard gb = generate_board(small_params());
  const Netlist& nl = gb.board->netlist();
  int checked = 0;
  for (std::size_t ni = 0; ni < nl.nets.size(); ++ni) {
    if (nl.nets[ni].klass != SignalClass::kECL) continue;
    EXPECT_GE(gb.strung.terminators[ni].part, 0)
        << "ECL net without terminator";
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

TEST(BoardGenTest, LocalityBoundsNetLength) {
  BoardGenParams tight = small_params();
  tight.locality = 0.08;
  BoardGenParams loose = small_params();
  loose.locality = 0.8;
  GeneratedBoard a = generate_board(tight);
  GeneratedBoard b = generate_board(loose);
  EXPECT_LT(a.pct_chan, b.pct_chan);
}

TEST(BoardGenTest, BusFractionShapesNets) {
  BoardGenParams buses = small_params();
  buses.bus_fraction = 1.0;
  GeneratedBoard gb = generate_board(buses);
  // All nets are two-pin bus bits.
  for (const Net& net : gb.board->netlist().nets) {
    EXPECT_EQ(net.pins.size(), 2u);
  }
  BoardGenParams fan = small_params();
  fan.bus_fraction = 0.0;
  fan.net_pins_min = 3;
  GeneratedBoard gf = generate_board(fan);
  for (const Net& net : gf.board->netlist().nets) {
    EXPECT_GE(net.pins.size(), 2u);  // >= 1 output + >= 1 input
  }
}

/// Full structural equality of two generated boards: netlist shape, pin
/// identities, terminator assignments and the exact connection order the
/// router will consume. This is the reproducibility contract the giant
/// tier's benchmarks rest on.
void expect_same_generated(const GeneratedBoard& a, const GeneratedBoard& b,
                           const char* what) {
  const Netlist& na = a.board->netlist();
  const Netlist& nb = b.board->netlist();
  ASSERT_EQ(na.nets.size(), nb.nets.size()) << what;
  for (std::size_t ni = 0; ni < na.nets.size(); ++ni) {
    ASSERT_EQ(na.nets[ni].pins.size(), nb.nets[ni].pins.size())
        << what << " net " << ni;
    ASSERT_EQ(na.nets[ni].klass, nb.nets[ni].klass) << what << " net " << ni;
    for (std::size_t pi = 0; pi < na.nets[ni].pins.size(); ++pi) {
      ASSERT_EQ(na.nets[ni].pins[pi].part, nb.nets[ni].pins[pi].part)
          << what << " net " << ni << " pin " << pi;
      ASSERT_EQ(na.nets[ni].pins[pi].pin, nb.nets[ni].pins[pi].pin)
          << what << " net " << ni << " pin " << pi;
      ASSERT_EQ(na.nets[ni].pins[pi].role, nb.nets[ni].pins[pi].role)
          << what << " net " << ni << " pin " << pi;
    }
  }
  ASSERT_EQ(a.strung.terminators.size(), b.strung.terminators.size()) << what;
  for (std::size_t ni = 0; ni < a.strung.terminators.size(); ++ni) {
    ASSERT_EQ(a.strung.terminators[ni].part, b.strung.terminators[ni].part)
        << what << " terminator of net " << ni;
    ASSERT_EQ(a.strung.terminators[ni].pin, b.strung.terminators[ni].pin)
        << what << " terminator of net " << ni;
  }
  ASSERT_EQ(a.strung.connections.size(), b.strung.connections.size()) << what;
  for (std::size_t i = 0; i < a.strung.connections.size(); ++i) {
    const Connection& ca = a.strung.connections[i];
    const Connection& cb = b.strung.connections[i];
    ASSERT_EQ(ca.id, cb.id) << what << " conn " << i;
    ASSERT_EQ(ca.a, cb.a) << what << " conn " << i;
    ASSERT_EQ(ca.b, cb.b) << what << " conn " << i;
    ASSERT_EQ(ca.net, cb.net) << what << " conn " << i;
    ASSERT_EQ(ca.klass, cb.klass) << what << " conn " << i;
  }
}

TEST(BoardGenDeterminism, GiantTierSeedStable) {
  // Same seed, same params: identical netlist, terminators, and connection
  // order — the giant benches and the sharded determinism suite depend on
  // regenerating the exact same problem in every process.
  for (const BoardGenParams& p : giant_suite(0.12)) {
    GeneratedBoard a = generate_board(p);
    GeneratedBoard b = generate_board(p);
    ASSERT_NO_FATAL_FAILURE(expect_same_generated(a, b, p.name.c_str()));
  }
}

TEST(BoardGenDeterminism, FanoutBucketGridIsInvisible) {
  // The bucket-grid candidate gather is a generation-time optimization
  // only: it must pick the very same pins as the linear pool scan.
  for (const BoardGenParams& base : giant_suite(0.12)) {
    BoardGenParams on = base;
    on.fanout_bucket_grid = true;
    BoardGenParams off = base;
    off.fanout_bucket_grid = false;
    GeneratedBoard a = generate_board(on);
    GeneratedBoard b = generate_board(off);
    ASSERT_NO_FATAL_FAILURE(
        expect_same_generated(a, b, base.name.c_str()));
  }
}

TEST(GiantSuiteTest, TargetsHundredThousandConnections) {
  auto suite = giant_suite();
  ASSERT_GE(suite.size(), 2u);
  for (const BoardGenParams& p : suite) {
    EXPECT_GE(p.target_connections, 100000) << p.name;
    // The giant rows hold the absolute wiring window constant: locality
    // shrinks as the board grows, keeping demand within capacity.
    EXPECT_LT(p.locality, table1_board("dpath-6L").locality) << p.name;
  }
  // Reduced scale shrinks the problem like the Table 1 suite does.
  auto small = giant_suite(0.25);
  EXPECT_LT(small[0].target_connections, suite[0].target_connections / 8);
}

TEST(Table1SuiteTest, HasAllNineRows) {
  auto suite = table1_suite();
  ASSERT_EQ(suite.size(), 9u);
  EXPECT_EQ(suite[0].name, "kdj11-2L");
  EXPECT_EQ(suite[0].layers, 2);
  EXPECT_EQ(suite[8].name, "tna-6L");
  // kdj11 pair: same problem, different layer count.
  BoardGenParams k2 = table1_board("kdj11-2L");
  BoardGenParams k4 = table1_board("kdj11-4L");
  EXPECT_EQ(k2.width_in, k4.width_in);
  EXPECT_EQ(k2.locality, k4.locality);
  EXPECT_EQ(k2.seed, k4.seed);
  EXPECT_NE(k2.layers, k4.layers);
}

TEST(Table1SuiteTest, ScaleShrinksQuadratically) {
  BoardGenParams full = table1_board("coproc-6L", 1.0);
  BoardGenParams half = table1_board("coproc-6L", 0.5);
  EXPECT_DOUBLE_EQ(half.width_in, full.width_in / 2);
  EXPECT_NEAR(half.target_connections, full.target_connections / 4.0, 1.0);
}

TEST(Table1SuiteTest, ChanOrderingMatchesPaper) {
  // The suite is listed in decreasing order of difficulty; the generated
  // %chan (normalized per layer count) must be highest for the first row.
  auto suite = table1_suite(0.5);
  double first = 0, last = 0;
  {
    GeneratedBoard gb = generate_board(suite.front());
    first = gb.pct_chan;
  }
  {
    GeneratedBoard gb = generate_board(suite.back());
    last = gb.pct_chan;
  }
  EXPECT_GT(first, last);
}

}  // namespace
}  // namespace grr
